// gccfragment reproduces the paper's running example (Figures 3–6): the
// invalidate_for_call fragment from gcc. It prints the register dependence
// graph with its split load/store nodes, the basic partitioning (Figure 4:
// only the reg_tick increment component reaches FPa), and the advanced
// partitioning (Figures 5/6: a copy/duplicate of the induction variable
// lets both branch slices execute in FPa), followed by the partitioned
// assembly.
package main

import (
	"fmt"
	"log"

	"fpint/internal/codegen"
	"fpint/internal/core"
)

const src = `
int regs_invalidated_by_call = 12297829382473034410;
int reg_tick[66];
int deleted;

void delete_equiv_reg(int regno) { deleted += regno; }

void invalidate_for_call() {
	for (int regno = 0; regno < 66; regno++) {
		if (regs_invalidated_by_call & (1 << regno)) {
			delete_equiv_reg(regno);
			if (reg_tick[regno] >= 0) reg_tick[regno]++;
		}
	}
}

int main() {
	for (int i = 0; i < 66; i++) reg_tick[i] = i - 3;
	invalidate_for_call();
	return deleted;
}
`

func main() {
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		log.Fatal(err)
	}
	fn := mod.Lookup("invalidate_for_call")
	g := core.BuildGraph(fn, prof)

	fmt.Println("== register dependence graph (loads/stores split into address/value nodes) ==")
	fmt.Print(g.String())

	show := func(p *core.Partition) {
		fpa := 0
		for _, n := range g.Nodes {
			where := "FP "
			if n.Class != core.ClassFixedFP {
				where = p.Assign[n.ID].String()
				if p.InFPa(n.ID) {
					fpa++
				}
			}
			marks := ""
			if p.CopyNodes[n.ID] {
				marks += " <- copy inserted (cp2fp)"
			}
			if p.DupNodes[n.ID] {
				marks += " <- duplicated into FPa"
			}
			desc := "param"
			if n.Instr != nil {
				desc = n.Instr.String()
			}
			fmt.Printf("  n%-3d [%s] %-10s %s%s\n", n.ID, where, n.Kind, desc, marks)
		}
		fmt.Printf("  => %d of %d partitionable nodes in FPa\n", fpa, len(p.Assign))
	}

	fmt.Println("\n== basic partitioning (Figure 4) ==")
	basic := core.BasicPartition(g)
	show(basic)

	fmt.Println("\n== advanced partitioning (Figures 5/6) ==")
	adv := core.AdvancedPartition(g, core.DefaultCostParams())
	show(adv)

	fmt.Println("\n== partitioned assembly (advanced) ==")
	res, err := codegen.Compile(mod, codegen.Options{Scheme: codegen.SchemeAdvanced, Profile: prof})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Prog.Disassemble())
}
