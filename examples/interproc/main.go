// interproc demonstrates the §6.6 interprocedural extension: passing
// integer arguments in floating-point registers when both the producer (at
// every call site) and the consumer (inside the callee) live in FPa. The
// demo compiles the same call-dense kernel with the extension off and on
// and reports copies, offload, and cycles on the 4-way machine.
package main

import (
	"fmt"
	"log"

	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

const src = `
int out[256];

// classify consumes its argument in pure branch computation — FPa work.
int classify(int v) {
	int c = 0;
	if (v > 192) c = 3;
	else if (v > 128) c = 2;
	else if (v > 64) c = 1;
	return c;
}

int main() {
	int s = 0;
	for (int rep = 0; rep < 30; rep++) {
		for (int i = 0; i < 256; i++) {
			int x = out[i];
			int y = (x ^ ((rep << 5) + rep)) + (x >> 2); // produced in FPa
			s += classify(y & 255);       // §6.4 forces copies... unless FP-passed
			out[i] = y & 1023;
		}
	}
	return s & 1048575;
}
`

func main() {
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calling convention for classify(v):")
	for _, ipa := range []bool{false, true} {
		res, err := codegen.Compile(mod, codegen.Options{
			Scheme: codegen.SchemeAdvanced, Profile: prof, InterprocFPArgs: ipa,
		})
		if err != nil {
			log.Fatal(err)
		}
		out, st, err := uarch.Run(res.Prog, uarch.Config4Way())
		if err != nil {
			log.Fatal(err)
		}
		mode := "integer registers (paper's §6.4 baseline)"
		if ipa {
			mode = "FP registers   (§6.6 interprocedural extension)"
		}
		fmt.Printf("\n  %s\n", mode)
		fmt.Printf("    exit=%d  dynamic copies=%d  offload=%.1f%%  cycles=%d  IPC=%.2f\n",
			out.Ret, out.Stats.Copies, 100*out.Stats.OffloadFraction(), st.Cycles, st.IPC())
	}
	fmt.Println("\nThe FPa→INT copy at each call site and the INT→FPa copy at each")
	fmt.Println("entry collapse into one FP-file move (mov,a), so copy traffic and")
	fmt.Println("cycles both drop while the offloaded fraction grows.")
}
