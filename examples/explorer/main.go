// explorer sweeps design parameters around the paper's two machine
// configurations on one workload: machine width (the Figure 9 vs Figure 10
// contrast) and the cost-model constants o_copy/o_dupl (the §6.1 empirical
// ranges), showing how offload and speedup respond.
package main

import (
	"fmt"
	"log"
	"os"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/uarch"
)

func main() {
	name := "gcc"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w := bench.Lookup(name)
	if w == nil {
		log.Fatalf("unknown workload %q", name)
	}
	mod, prof, err := codegen.FrontendPipeline(w.Src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%s)\n\n", w.Name, w.Input)

	fmt.Println("== machine-width sweep (advanced scheme) ==")
	fmt.Printf("%-8s %12s %12s %9s %9s\n", "config", "base cycles", "adv cycles", "speedup", "IPC(adv)")
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		base := timeIt(mod, prof, codegen.Options{Scheme: codegen.SchemeNone}, cfg)
		adv := timeIt(mod, prof, codegen.Options{Scheme: codegen.SchemeAdvanced}, cfg)
		fmt.Printf("%-8s %12d %12d %+8.1f%% %9.2f\n", cfg.Name,
			base.cycles, adv.cycles, 100*(float64(base.cycles)/float64(adv.cycles)-1), adv.ipc)
	}

	fmt.Println("\n== cost-model sweep (o_copy × o_dupl, 4-way, advanced scheme) ==")
	fmt.Printf("%-14s %9s %9s %8s %8s\n", "o_copy/o_dupl", "offload", "speedup", "copies", "dups")
	base := timeIt(mod, prof, codegen.Options{Scheme: codegen.SchemeNone}, uarch.Config4Way())
	for _, oc := range []float64{3, 4, 6} {
		for _, od := range []float64{1.5, 2, 3} {
			opts := codegen.Options{Scheme: codegen.SchemeAdvanced, Cost: core.CostParams{OCopy: oc, ODupl: od}}
			r := timeIt(mod, prof, opts, uarch.Config4Way())
			fmt.Printf("%4.1f / %-6.1f %8.1f%% %+8.1f%% %8d %8d\n",
				oc, od, 100*r.offload, 100*(float64(base.cycles)/float64(r.cycles)-1), r.copies, r.dups)
		}
	}
}

type timing struct {
	cycles  int64
	ipc     float64
	offload float64
	copies  int64
	dups    int64
}

func timeIt(mod *ir.Module, prof *interp.Profile, opts codegen.Options, cfg uarch.Config) timing {
	opts.Profile = prof
	res, err := codegen.Compile(mod, opts)
	if err != nil {
		log.Fatal(err)
	}
	out, st, err := uarch.Run(res.Prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return timing{
		cycles:  st.Cycles,
		ipc:     st.IPC(),
		offload: out.Stats.OffloadFraction(),
		copies:  out.Stats.Copies,
		dups:    out.Stats.Dups,
	}
}
