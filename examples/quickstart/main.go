// Quickstart: compile the paper's introductory example (Figure 2's vector
// sum, in integer form) with the advanced partitioning scheme, run it on
// the functional simulator and on the 4-way timing model, and report the
// offloaded fraction and the speedup over a conventional machine.
package main

import (
	"fmt"
	"log"

	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

const src = `
int a[1024];
int b[1024];
int c[1024];

// The paper opens with fp_vector_sum; this is the integer variant that
// motivates the whole idea: on a conventional machine every instruction
// below competes for the INT subsystem while the FP units idle.
void vector_sum(int n) {
	for (int i = 0; i < n; i++)
		c[i] = a[i] + b[i];
}

int main() {
	for (int i = 0; i < 1024; i++) { a[i] = i * 3; b[i] = 1024 - i; }
	for (int rep = 0; rep < 40; rep++) vector_sum(1024);
	int s = 0;
	for (int i = 0; i < 1024; i++) s += c[i];
	return s & 1048575;
}
`

func main() {
	cfg := uarch.Config4Way()

	fmt.Println("== conventional compilation ==")
	base := runScheme(codegen.SchemeNone, cfg)

	fmt.Println("\n== advanced partitioning ==")
	adv := runScheme(codegen.SchemeAdvanced, cfg)

	fmt.Printf("\nspeedup over the conventional machine: %+.1f%%\n",
		100*(float64(base)/float64(adv)-1))
}

func runScheme(scheme codegen.Scheme, cfg uarch.Config) int64 {
	res, _, err := codegen.CompileSource(src, codegen.Options{Scheme: scheme})
	if err != nil {
		log.Fatal(err)
	}
	out, st, err := uarch.Run(res.Prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exit=%d  dynamic instructions=%d  offloaded to FPa=%.1f%%\n",
		out.Ret, out.Stats.Total, 100*out.Stats.OffloadFraction())
	fmt.Printf("cycles=%d  IPC=%.2f\n", st.Cycles, st.IPC())
	return st.Cycles
}
