package fpint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/interp"
	"fpint/internal/uarch"
)

// TestOracleAcceptance is the ISSUE's root acceptance bar for the exact
// partition oracle: every testdata program, on both Table 1 machine
// configurations, must (1) produce an oracle partition the static
// verifier accepts, (2) execute bit-identically to the IR interpreter,
// and (3) respect the profit dominance chain optimal ≥ advanced ≥ basic
// per function — the branch-and-bound seeds its incumbent with the
// greedy result, so it can never return something worse.
func TestOracleAcceptance(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			mod, prof, err := codegen.FrontendPipeline(string(data))
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}
			ref, err := interp.New(mod).Run()
			if err != nil {
				t.Fatalf("interp: %v", err)
			}

			profits := map[codegen.Scheme]map[string]float64{}
			var optRes *codegen.Result
			for _, scheme := range []codegen.Scheme{codegen.SchemeBasic, codegen.SchemeAdvanced, codegen.SchemeOptimal} {
				res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme, Profile: prof})
				if err != nil {
					t.Fatalf("%v: compile: %v", scheme, err)
				}
				fn := map[string]float64{}
				for fname, p := range res.Partitions {
					if p == nil || p.Audit == nil {
						continue
					}
					var sum float64
					for _, d := range p.Audit.Components {
						if d.Accepted {
							sum += d.Profit
						}
					}
					fn[fname] = sum
				}
				profits[scheme] = fn
				if scheme == codegen.SchemeOptimal {
					optRes = res
				}
			}

			// (1) Verifier-clean, and the oracle certified every component.
			for fname, p := range optRes.Partitions {
				if p == nil {
					continue
				}
				if err := core.VerifyPartition(p); err != nil {
					t.Errorf("%s: oracle partition rejected by verifier: %v", fname, err)
				}
			}
			for fname, rep := range optRes.Oracle {
				if rep.Degraded > 0 {
					t.Errorf("%s: oracle degraded on %d component(s): %v", fname, rep.Degraded, rep.Err())
				}
			}

			// (2) Interpreter-equal on both Table 1 machines.
			for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
				out, st, err := uarch.Run(optRes.Prog, cfg)
				if err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				if out.Ret != ref.Ret || out.Output != ref.Output {
					t.Errorf("%s: ret=%d want %d", cfg.Name, out.Ret, ref.Ret)
				}
				if st.Cycles <= 0 {
					t.Errorf("%s: no cycles", cfg.Name)
				}
			}

			// (3) Dominance per function: optimal ≥ advanced ≥ basic.
			const eps = 1e-6
			for fname, adv := range profits[codegen.SchemeAdvanced] {
				if bas, ok := profits[codegen.SchemeBasic][fname]; ok && adv+eps < bas {
					t.Errorf("%s: advanced profit %g below basic %g", fname, adv, bas)
				}
				if opt, ok := profits[codegen.SchemeOptimal][fname]; ok && opt+eps < adv {
					t.Errorf("%s: optimal profit %g below advanced %g", fname, opt, adv)
				}
			}
		})
	}
}
