// Small integer matrix multiply (shift-scaled to stay FPa-friendly).
int a[256];
int b[256];
int c[256];
int main() {
	for (int i = 0; i < 256; i++) { a[i] = (i * 7) % 31; b[i] = (i * 5) % 29; }
	for (int i = 0; i < 16; i++)
		for (int j = 0; j < 16; j++) {
			int s = 0;
			for (int k = 0; k < 16; k++)
				s += a[i*16+k] * b[k*16+j];
			c[i*16+j] = s;
		}
	int check = 0;
	for (int i = 0; i < 256; i++) check = (check * 31 + c[i]) & 16777215;
	return check;
}
