// Insertion sort + binary search: branch slices over loaded values.
int v[300];
int seed;
int rnd() { seed = seed * 69069 + 7; return (seed >> 16) & 4095; }
int main() {
	seed = 99;
	for (int i = 0; i < 300; i++) v[i] = rnd();
	for (int i = 1; i < 300; i++) {
		int key = v[i];
		int j = i - 1;
		while (j >= 0 && v[j] > key) { v[j+1] = v[j]; j--; }
		v[j+1] = key;
	}
	int found = 0;
	for (int probe = 0; probe < 64; probe++) {
		int want = v[(probe * 37) % 300];
		int lo = 0; int hi = 299;
		while (lo < hi) {
			int mid = (lo + hi) / 2;
			if (v[mid] < want) lo = mid + 1; else hi = mid;
		}
		if (v[lo] == want) found++;
	}
	return found * 1000 + v[150];
}
