// fpifuzz reproducer (seed 2)
// difftest mismatch [output basic]: exit value 1047977, interp 1048216
int gacc;
int main() {
  int x = 0;
  (gacc -= 615);
  return (gacc ^ x);
}
