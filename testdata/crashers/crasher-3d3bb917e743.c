// fpifuzz reproducer (seed 144)
// analysis: on
// range analysis hang: infeasible-edge refinement produced non-canonical
// bottom intervals ([101..2] vs [101..0]) that the fixpoint loop saw as a
// change on every join, so the worklist never drained
int gacc;
int garr0[16];
float gfarr[8] = {1.5, 0.25};
int h0(float p0, int p1) {
for (int i1 = 0; i1 < 8; i1++) {
print((p1 | p1));
p1 |= ((i1 <= p1) || ((!(i1)) == i1));
p1 ^= i1;
}
for (int i2 = 0; i2 < 12; i2++) {
int v3 = (garr0[(p1) & 15] << 8);
}
return p1;
}
int main() {
int x = 101;
int y = 48;
float fx = 2.5;
gfarr[(y) & 7] = ((0.125 * fx) * (fx / 0.5));
garr0[(x) & 15] = (((0 - y) << 2) ^ ((x >= -557) && (-226 > x)));
int w4 = 0;
while (w4 < 4) {
w4++;
if (w4 > x) {
for (int i5 = 0; i5 < 10; i5++) {
gfarr[((0 - i5)) & 7] = ((10.0 + fx) / ((w4 > 2) ? fx : fx));
int d6 = 0;
do {
d6++;
gacc += d6;
} while (d6 < 3);
gacc -= ((0 - 72) << 0);
}
} else {
gfarr[((-919 * x)) & 7] = ((fx / fx) * ((w4 != 39) ? 3.5 : 0.5));
}
garr0[(((w4 != 49) ? w4 : x)) & 15] = y;
}
y = x;
int w7 = 0;
while (w7 < 4) {
w7++;
y = 821;
}
int w8 = 0;
while (w8 < 5) {
w8++;
if (y >= 254) {
fx -= (fx - ((1.25 + 0.5) + ((x < 52) ? fx : fx)));
if (y < -793) { break; }
}
fx -= fx;
}
printf_(fx);
print(gacc);
return (gacc ^ x ^ y) & 1048575;
}
