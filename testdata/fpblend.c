// Mixed float/int kernel: float accumulation with integer thresholding —
// the §7.5 shape where only the integer control is offloadable.
float signal[512];
int hist[8];
int main() {
	for (int i = 0; i < 512; i++) signal[i] = (float)((i * 37) % 100) * 0.02 - 1.0;
	float acc = 0.0;
	for (int i = 0; i < 512; i++) {
		acc += signal[i] * signal[i];
		int bucket = 0;
		if (signal[i] > 0.5) bucket = 3;
		else if (signal[i] > 0.0) bucket = 2;
		else if (signal[i] > -0.5) bucket = 1;
		hist[bucket]++;
	}
	int s = (int)(acc * 100.0);
	for (int b = 0; b < 8; b++) s = (s * 31 + hist[b]) & 16777215;
	return s;
}
