// Population count over a table, checked against the shift-and-mask
// identity. Exercises shifts, masks, and branch slices.
int words[128];
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }
int popcount(int x) {
	int n = 0;
	for (int i = 0; i < 63; i++) {
		if ((x >> i) & 1) n++;
	}
	return n;
}
int main() {
	seed = 321;
	int total = 0;
	for (int i = 0; i < 128; i++) {
		words[i] = rnd() * 65536 + rnd();
		total += popcount(words[i]);
	}
	return total;
}
