// Fixed-point Mandelbrot iteration counts: mixed int control + arithmetic.
int counts[64];
int main() {
	int total = 0;
	for (int p = 0; p < 64; p++) {
		int cx = (p % 8) * 96 - 512;   // Q8 fixed point
		int cy = (p / 8) * 96 - 384;
		int x = 0; int y = 0;
		int it = 0;
		while (it < 48) {
			int x2 = (x * x) >> 8;
			int y2 = (y * y) >> 8;
			if (x2 + y2 > 1024) break;
			int xy = (x * y) >> 8;
			x = x2 - y2 + cx;
			y = xy + xy + cy;
			it++;
		}
		counts[p] = it;
		total += it;
	}
	return total;
}
