// Sieve of Eratosthenes: store-value heavy, paper-friendly kernel.
int composite[2000];
int main() {
	int count = 0;
	for (int i = 2; i < 2000; i++) {
		if (composite[i] == 0) {
			count++;
			for (int j = i + i; j < 2000; j += i) composite[j] = 1;
		}
	}
	return count; // number of primes below 2000
}
