package fpint

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fpint/internal/obs"
	"fpint/internal/service"
	"fpint/internal/service/loadgen"
)

// startService builds a daemon core plus listener; cleanup drains the
// pool so no workers outlive the test.
func startService(t *testing.T, opts service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	svc := service.New(opts)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Drain()
	})
	return svc, ts
}

// TestServiceLoadgenGolden drives the deterministic slice of the load
// harness — one loadgen worker, fixed seed — through a real HTTP
// round-trip and pins the normalized fpint-load/v1 document byte for
// byte. Sequential execution makes every outcome (statuses, cache hits,
// mix) reproducible; Normalize zeroes the wall-clock fields. Regenerate
// with `go test -run TestServiceLoadgenGolden -update .`.
func TestServiceLoadgenGolden(t *testing.T) {
	_, ts := startService(t, service.Options{Workers: 2, Chaos: true})
	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:  ts.URL,
		Label:    "inprocess",
		Requests: 60,
		Workers:  1,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	rep.Normalize()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("encode report: %v", err)
	}
	compareGoldenFile(t, filepath.Join("testdata", "golden", "fpiload.json"), buf.String())
}

// TestServiceLoadgenChaos is the in-process load/chaos acceptance run:
// concurrent clients, every chaos flavor in the mix (panics, blown
// budgets, malformed jobs), against a daemon that must survive all of it.
// Run under -race in CI, this is the robustness headline: zero transport
// errors (no process death), a warm cache, recovered panics, and a
// healthy endpoint afterwards.
func TestServiceLoadgenChaos(t *testing.T) {
	_, ts := startService(t, service.Options{Workers: 4, Chaos: true})
	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:  ts.URL,
		Requests: 150,
		Workers:  8,
		Seed:     2,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if rep.TransportErrors != 0 {
		t.Errorf("transport errors = %d, want 0 (a dropped connection means a job killed the daemon)", rep.TransportErrors)
	}
	if rep.Requests != 150 {
		t.Errorf("responses = %d, want 150", rep.Requests)
	}
	if rep.CacheHits == 0 {
		t.Error("cache hit rate is zero; repeated identical jobs are not being served from the artifact cache")
	}

	// Every chaos flavor must have produced its contracted status.
	wantStatus := map[int]string{200: "none", 400: "usage", 422: "input", 500: "internal"}
	seen := map[int]bool{}
	for _, o := range rep.Outcomes {
		seen[o.Status] = true
		if want, ok := wantStatus[o.Status]; ok && o.Class != want && !(o.Status == 200 && o.Class == "degraded") {
			t.Errorf("status %d carried class %q, want %q", o.Status, o.Class, want)
		}
	}
	for status := range wantStatus {
		if !seen[status] {
			t.Errorf("no response with status %d; the chaos mix did not exercise that path", status)
		}
	}

	// The daemon is still healthy after the chaos run.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after chaos: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz after chaos = %d, want 200", resp.StatusCode)
	}

	// /statsz keeps its key set stable regardless of traffic — the
	// monitoring contract. Values vary with interleaving; the keys are
	// pinned as a golden. Regenerate with -update.
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters   map[string]json.Number `json:"counters"`
		Gauges     map[string]json.Number `json:"gauges"`
		Histograms map[string]any         `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	var keys []string
	for k := range doc.Counters {
		keys = append(keys, "counter "+k)
	}
	for k := range doc.Gauges {
		keys = append(keys, "gauge "+k)
	}
	sort.Strings(keys)
	compareGoldenFile(t, filepath.Join("testdata", "golden", "fpintd.statsz.keys.txt"), strings.Join(keys, "\n")+"\n")

	// And the counters tell the story the report told.
	if doc.Counters[obs.PrefixService+obs.MetricServicePanicsRecovered] == "0" {
		t.Error("statsz shows zero recovered panics after a chaos run that sent panic jobs")
	}
}

// compareGoldenFile compares got against the golden file, rewriting it
// under -update.
func compareGoldenFile(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
