package fpint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/obs/timeline"
	"fpint/internal/uarch"
)

// TestTimelineClosedAcceptance is the flight recorder's contract: on
// EVERY testdata program, under BOTH Table 1 machine configurations, the
// recorded timeline must close against the run's independently
// accumulated ledger — per-window cycles sum to the run's total cycles,
// per-window instructions to retired instructions, and the per-window
// stall mixes reproduce the closed stall ledger cell by cell. The same
// recording, segmented with the shared defaults, must partition the
// windows exactly. The fast-mode variant checks the sampled recorder the
// same way against the detailed (measured) counters it covers.
func TestTimelineClosedAcceptance(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	configs := []uarch.Config{uarch.Config4Way(), uarch.Config8Way()}
	const width = 512

	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := codegen.CompileSource(string(data), codegen.Options{
				Scheme: codegen.SchemeAdvanced, Analysis: true,
			})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, cfg := range configs {
				t.Run(cfg.Name, func(t *testing.T) {
					m := uarch.NewMachine(cfg)
					m.SetTimelineWidth(width)
					_, st, err := m.Run(res.Prog)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					tl := m.Timeline(name)
					checkTimelineClosed(t, tl, st.Cycles, st.Instructions, st.IssueActiveCycles, st.StallBySub)
					checkSegmentation(t, tl)

					// Fast mode: the recorder covers the detailed
					// (warmup+measured) cycles and must close against them.
					fm := uarch.NewMachine(cfg)
					fm.SetTimelineWidth(width)
					_, ss, err := fm.RunSampled(res.Prog, uarch.DefaultSampleConfig())
					if err != nil {
						t.Fatalf("fast run: %v", err)
					}
					ftl := fm.Timeline(name)
					if ftl == nil {
						t.Fatal("fast mode recorded no timeline")
					}
					if !ss.Exact {
						ftl.Estimated = true
						ftl.SampledFraction = ss.SampledFraction
						if ftl.TotalCycles >= ss.Cycles {
							t.Errorf("fast timeline covers %d cycles, not fewer than the %d-cycle estimate",
								ftl.TotalCycles, ss.Cycles)
						}
					}
					if err := ftl.Validate(); err != nil {
						t.Fatalf("fast timeline invalid: %v", err)
					}
					checkSegmentation(t, ftl)
				})
			}
		})
	}
}

// checkTimelineClosed cross-checks a timeline document against the run's
// ledger totals.
func checkTimelineClosed(t *testing.T, tl *timeline.Timeline, cycles, instrs, issueActive int64, stalls [3][uarch.NumStallCauses]int64) {
	t.Helper()
	if tl == nil {
		t.Fatal("no timeline recorded")
	}
	if err := tl.Validate(); err != nil {
		t.Fatalf("timeline invalid: %v", err)
	}
	if tl.TotalCycles != cycles {
		t.Errorf("timeline covers %d cycles, run took %d", tl.TotalCycles, cycles)
	}
	if tl.TotalInstructions != instrs {
		t.Errorf("timeline covers %d instructions, run retired %d", tl.TotalInstructions, instrs)
	}
	nc := len(tl.StallCauses)
	for sub := 0; sub < len(tl.Subsystems); sub++ {
		for c := 0; c < nc; c++ {
			var got int64
			for i := range tl.Windows {
				got += tl.Windows[i].Stalls[sub*nc+c]
			}
			if got != stalls[sub][c] {
				t.Fatalf("stall[%s][%s]: windows sum to %d, ledger says %d",
					tl.Subsystems[sub], tl.StallCauses[c], got, stalls[sub][c])
			}
		}
	}
	var active int64
	for i := range tl.Windows {
		active += tl.Windows[i].IssueActive
	}
	if active != issueActive {
		t.Errorf("window issue-active sums to %d, ledger says %d", active, issueActive)
	}
}

// checkSegmentation verifies the phase table partitions the windows:
// contiguous, in order, covering every window exactly once, with phase
// cycle counts that are exact window sums.
func checkSegmentation(t *testing.T, tl *timeline.Timeline) {
	t.Helper()
	phases := tl.Segment(timeline.DefaultSegConfig())
	if len(tl.Windows) == 0 {
		if len(phases) != 0 {
			t.Fatalf("empty timeline segmented into %d phases", len(phases))
		}
		return
	}
	next := 0
	var cycles int64
	for i, p := range phases {
		if p.ID != i {
			t.Fatalf("phase %d has ID %d", i, p.ID)
		}
		if p.FirstWindow != next {
			t.Fatalf("phase %d starts at window %d, want %d", i, p.FirstWindow, next)
		}
		if p.LastWindow < p.FirstWindow {
			t.Fatalf("phase %d range inverted: %d-%d", i, p.FirstWindow, p.LastWindow)
		}
		var want int64
		for w := p.FirstWindow; w <= p.LastWindow; w++ {
			want += tl.Windows[w].Cycles
		}
		if p.Cycles != want {
			t.Fatalf("phase %d claims %d cycles, its windows hold %d", i, p.Cycles, want)
		}
		cycles += p.Cycles
		next = p.LastWindow + 1
	}
	if next != len(tl.Windows) {
		t.Fatalf("phases cover windows up to %d, timeline has %d", next, len(tl.Windows))
	}
	if cycles != tl.TotalCycles {
		t.Fatalf("phase cycles sum to %d, timeline covers %d", cycles, tl.TotalCycles)
	}
}
