module fpint

go 1.22
