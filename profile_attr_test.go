package fpint

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/obs/profile"
	"fpint/internal/uarch"
)

// TestProfileAttributionClosed is the profiler's acceptance test: for every
// sample program, on both Table 1 machine configurations, the per-line cycle
// attribution must sum exactly to the simulator's total cycle count. The
// profiler never invents or drops cycles — the closed stall ledger the
// pipeline maintains per PC survives the join with the debug line table.
func TestProfileAttributionClosed(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := codegen.CompileSource(string(data), codegen.Options{Scheme: codegen.SchemeAdvanced})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
				t.Run(cfg.Name, func(t *testing.T) {
					_, st, cp, err := uarch.RunProfiled(res.Prog, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if got := st.StallAccountingError(); got != 0 {
						t.Fatalf("stall ledger not closed: error=%d", got)
					}
					if cp.TotalAttributed() != st.Cycles {
						t.Fatalf("per-PC attribution %d != total cycles %d",
							cp.TotalAttributed(), st.Cycles)
					}
					pr := profile.Build(res.Prog, cp)
					if pr.TotalCycles != st.Cycles {
						t.Fatalf("profile total %d != simulator cycles %d", pr.TotalCycles, st.Cycles)
					}
					if sum := pr.LineCycleSum(); sum != st.Cycles {
						t.Fatalf("per-line cycle sum %d != total cycles %d", sum, st.Cycles)
					}
					if pr.Instructions != st.Instructions {
						t.Fatalf("retired attribution %d != instruction count %d",
							pr.Instructions, st.Instructions)
					}
					// Every line bucket is internally consistent: the
					// active/stall split and subsystem split both cover it.
					for k, s := range pr.Lines {
						if s.Active+s.StallTotal() != s.Cycles {
							t.Errorf("%s:L%d active %d + stall %d != cycles %d",
								k.Func, k.Line, s.Active, s.StallTotal(), s.Cycles)
						}
						var bySub int64
						for _, n := range s.BySub {
							bySub += n
						}
						if bySub != s.Cycles {
							t.Errorf("%s:L%d subsystem split %d != cycles %d",
								k.Func, k.Line, bySub, s.Cycles)
						}
					}
					// main must have attributed lines with real source numbers.
					fs := pr.Funcs["main"]
					if fs == nil || fs.Cycles == 0 {
						t.Fatalf("no cycles attributed to main")
					}
					hasLine := false
					for k := range pr.Lines {
						if k.Func == "main" && k.Line > 0 && pr.Lines[k].Cycles > 0 {
							hasLine = true
							break
						}
					}
					if !hasLine {
						t.Fatalf("main has no per-line attribution")
					}
				})
			}
		})
	}
}

// TestProfileFoldedGolden pins the folded-stack export byte-for-byte for one
// representative program. Regenerate with
// `go test -run TestProfileFoldedGolden -update .` after an intentional
// timing-model or compiler change.
func TestProfileFoldedGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/matmul.c")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := codegen.CompileSource(string(data), codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		t.Fatal(err)
	}
	_, _, cp, err := uarch.RunProfiled(res.Prog, uarch.Config4Way())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	profile.WriteFolded(&buf, profile.Build(res.Prog, cp))
	got := buf.String()

	goldenPath := filepath.Join("testdata", "golden", "matmul.folded.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("folded output diverges from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Independently of the exact bytes: the folded total equals the cycle
	// count and every row parses as "stack cycles".
	var total int64
	for _, ln := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		var stack string
		var cycles int64
		if _, err := fmt.Sscanf(ln, "%s %d", &stack, &cycles); err != nil {
			t.Fatalf("unparseable folded row %q: %v", ln, err)
		}
		total += cycles
	}
	pr := profile.Build(res.Prog, cp)
	if total != pr.TotalCycles {
		t.Errorf("folded total %d != profile total %d", total, pr.TotalCycles)
	}
}

// TestProfilePprofWireFormat decodes the gzipped pprof output with a minimal
// protobuf walker and checks the pieces `go tool pprof` depends on: two
// sample types, samples whose first value sums to the total cycle count, and
// a string table carrying the function names.
func TestProfilePprofWireFormat(t *testing.T) {
	data, err := os.ReadFile("testdata/bitcount.c")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := codegen.CompileSource(string(data), codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		t.Fatal(err)
	}
	_, st, cp, err := uarch.RunProfiled(res.Prog, uarch.Config4Way())
	if err != nil {
		t.Fatal(err)
	}
	pr := profile.Build(res.Prog, cp)

	var buf bytes.Buffer
	if err := profile.WritePprof(&buf, pr, "bitcount.c"); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzipped: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}

	var (
		sampleTypes int
		cycleSum    int64
		strTable    []string
	)
	walkFields(t, raw, func(field int, wire int, varint uint64, sub []byte) {
		switch field {
		case 1: // ValueType sample_type
			sampleTypes++
		case 2: // Sample
			walkFields(t, sub, func(f, w int, v uint64, s []byte) {
				if f == 2 { // packed repeated value
					vals := unpackVarints(t, s)
					if len(vals) != 2 {
						t.Fatalf("sample has %d values, want 2", len(vals))
					}
					cycleSum += int64(vals[0])
				}
			})
		case 6: // string_table
			strTable = append(strTable, string(sub))
		}
	})
	if sampleTypes != 2 {
		t.Errorf("sample_type count = %d, want 2 (cycles, instructions)", sampleTypes)
	}
	if cycleSum != st.Cycles {
		t.Errorf("pprof cycle sum %d != simulator cycles %d", cycleSum, st.Cycles)
	}
	if len(strTable) == 0 || strTable[0] != "" {
		t.Fatalf("string table must start with the empty string, got %q", strTable)
	}
	want := map[string]bool{"cycles": false, "count": false, "main": false, "bitcount.c": false}
	for _, s := range strTable {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("string table missing %q", s)
		}
	}
}

// walkFields iterates the top-level fields of a protobuf message, passing
// varint fields by value and length-delimited fields by subslice.
func walkFields(t *testing.T, b []byte, fn func(field, wire int, varint uint64, sub []byte)) {
	t.Helper()
	for len(b) > 0 {
		key, n := decodeVarint(b)
		if n == 0 {
			t.Fatalf("truncated field key")
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n := decodeVarint(b)
			if n == 0 {
				t.Fatalf("truncated varint in field %d", field)
			}
			b = b[n:]
			fn(field, wire, v, nil)
		case 2:
			l, n := decodeVarint(b)
			if n == 0 || uint64(len(b)-n) < l {
				t.Fatalf("truncated length-delimited field %d", field)
			}
			fn(field, wire, 0, b[n:n+int(l)])
			b = b[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
}

func unpackVarints(t *testing.T, b []byte) []uint64 {
	t.Helper()
	var out []uint64
	for len(b) > 0 {
		v, n := decodeVarint(b)
		if n == 0 {
			t.Fatalf("truncated packed varint")
		}
		out = append(out, v)
		b = b[n:]
	}
	return out
}

func decodeVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
