package fpint

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/interp"
	"fpint/internal/uarch"
)

// fastModeErrorBound is the acceptance bound on the sampled-timing cycle
// estimate, relative to the detailed model. README's "Fast mode" section
// quotes this number; keep them in sync.
const fastModeErrorBound = 0.05

// TestFastModeAcceptance is the fast mode's contract: on EVERY testdata
// program, under BOTH Table 1 machine configurations and ALL partitioning
// schemes, RunSampled with default sampling parameters must (a) produce
// functional output bit-identical to the IR interpreter and (b) estimate
// total cycles within fastModeErrorBound of the detailed model, with a
// closed extrapolated stall ledger. Setting FPINT_FASTMODE_REPORT to a
// file path additionally writes the full per-case error table (the CI
// error-bound artifact).
func TestFastModeAcceptance(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	schemes := []struct {
		name string
		opts codegen.Options
	}{
		{"none", codegen.Options{Scheme: codegen.SchemeNone}},
		{"basic", codegen.Options{Scheme: codegen.SchemeBasic}},
		{"advanced", codegen.Options{Scheme: codegen.SchemeAdvanced}},
		{"balanced", codegen.Options{Scheme: codegen.SchemeBalanced, MaxFPaFraction: 0.3}},
	}
	configs := []uarch.Config{uarch.Config4Way(), uarch.Config8Way()}

	type row struct {
		program, scheme, config string
		detailed, estimated     int64
		errPct                  float64
		sampledFraction         float64
		exact                   bool
	}
	var report []row

	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			mod, prof, err := codegen.FrontendPipeline(string(data))
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}
			ref, err := interp.New(mod).Run()
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			for _, sc := range schemes {
				opts := sc.opts
				opts.Profile = prof
				res, err := codegen.Compile(mod, opts)
				if err != nil {
					t.Fatalf("%s: compile: %v", sc.name, err)
				}
				for _, cfg := range configs {
					_, det, err := uarch.Run(res.Prog, cfg)
					if err != nil {
						t.Fatalf("%s/%s: detailed: %v", sc.name, cfg.Name, err)
					}
					out, est, err := uarch.RunSampled(res.Prog, cfg, uarch.DefaultSampleConfig())
					if err != nil {
						t.Fatalf("%s/%s: sampled: %v", sc.name, cfg.Name, err)
					}
					// (a) Fast mode is full-fidelity functionally: output must
					// be bit-identical to the interpreter reference.
					if out.Ret != ref.Ret || out.Output != ref.Output {
						t.Errorf("%s/%s: fast-mode functional result diverges from interpreter: ret=%d want %d",
							sc.name, cfg.Name, out.Ret, ref.Ret)
					}
					// (b) Cycle estimate within the bound.
					errFrac := math.Abs(float64(est.Cycles)-float64(det.Cycles)) / float64(det.Cycles)
					if errFrac > fastModeErrorBound {
						t.Errorf("%s/%s: cycle estimate error %.2f%% exceeds %.0f%% bound (detailed %d, estimated %d, sampled %.0f%%)",
							sc.name, cfg.Name, errFrac*100, fastModeErrorBound*100,
							det.Cycles, est.Cycles, est.SampledFraction*100)
					}
					// Extrapolated ledger must close like the detailed one.
					if lerr := est.StallAccountingError(); lerr != 0 {
						t.Errorf("%s/%s: sampled stall ledger not closed: error %d", sc.name, cfg.Name, lerr)
					}
					if est.Instructions != det.Instructions {
						t.Errorf("%s/%s: instruction count %d, want exact %d", sc.name, cfg.Name, est.Instructions, det.Instructions)
					}
					report = append(report, row{
						program: name, scheme: sc.name, config: cfg.Name,
						detailed: det.Cycles, estimated: est.Cycles,
						errPct:          errFrac * 100,
						sampledFraction: est.SampledFraction,
						exact:           est.Exact,
					})
				}
			}
		})
	}

	if path := os.Getenv("FPINT_FASTMODE_REPORT"); path != "" && len(report) > 0 {
		sort.Slice(report, func(i, j int) bool { return report[i].errPct > report[j].errPct })
		var b strings.Builder
		fmt.Fprintf(&b, "fast-mode cycle-estimate error report (bound %.0f%%)\n", fastModeErrorBound*100)
		fmt.Fprintf(&b, "%-10s %-9s %-6s %12s %12s %8s %9s %6s\n",
			"program", "scheme", "config", "detailed", "estimated", "err%", "sampled%", "exact")
		for _, r := range report {
			fmt.Fprintf(&b, "%-10s %-9s %-6s %12d %12d %8.2f %9.1f %6v\n",
				r.program, r.scheme, r.config, r.detailed, r.estimated, r.errPct, r.sampledFraction*100, r.exact)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Errorf("write report: %v", err)
		}
	}
}
