package fpint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/interp"
	"fpint/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenFor renders the observable behavior of a program run: its exit
// value and everything it printed. This is the contract the golden files
// pin — any semantic drift in the frontend, a partition scheme, or the
// simulator shows up as a golden diff rather than only as a differential
// mismatch between two components that may have drifted together.
func goldenFor(ret int64, output string) string {
	return fmt.Sprintf("ret: %d\noutput:\n%s", ret, output)
}

// TestGoldenOutputs checks every testdata program against its checked-in
// golden file under every partition scheme. Regenerate with
// `go test -run TestGoldenOutputs -update .` after an intentional change.
func TestGoldenOutputs(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			mod, prof, err := codegen.FrontendPipeline(string(data))
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}
			ref, err := interp.New(mod).Run()
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			got := goldenFor(ref.Ret, ref.Output)

			goldenPath := filepath.Join("testdata", "golden", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("interpreter output diverges from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}

			// Every scheme must reproduce the golden behavior exactly.
			optsList := []codegen.Options{
				{Scheme: codegen.SchemeNone},
				{Scheme: codegen.SchemeBasic},
				{Scheme: codegen.SchemeAdvanced},
				{Scheme: codegen.SchemeAdvanced, InterprocFPArgs: true},
				{Scheme: codegen.SchemeBalanced, MaxFPaFraction: 0.3},
			}
			for _, opts := range optsList {
				opts.Profile = prof
				res, err := codegen.Compile(mod, opts)
				if err != nil {
					t.Fatalf("%v: compile: %v", opts.Scheme, err)
				}
				out, err := sim.New(res.Prog).Run()
				if err != nil {
					t.Fatalf("%v: run: %v", opts.Scheme, err)
				}
				if g := goldenFor(out.Ret, out.Output); g != string(want) {
					t.Errorf("%v (interproc=%v): simulated output diverges from golden file:\n--- got ---\n%s\n--- want ---\n%s",
						opts.Scheme, opts.InterprocFPArgs, g, want)
				}
			}
		})
	}
}
