package fpint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/fperr"
	"fpint/internal/obs/runstore"
	"fpint/internal/uarch"
)

// Acceptance tests for the performance observatory: every testdata program,
// run on both Table 1 machine configurations through the same measurement
// path `fpistat record` uses, must produce a record whose cycle ledger
// closes, whose host metrics are present, and whose content hash is stable
// across repeated sealing.
func TestObservatoryRecordsCloseAndHashStably(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	sort.Strings(files)
	const repeat = 2
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
			cfg := cfg
			t.Run(name+"/"+cfg.Name, func(t *testing.T) {
				guest, host, err := bench.MeasureSource(name, string(src), codegen.SchemeAdvanced, true, cfg, repeat)
				if err != nil {
					t.Fatalf("measure: %v", err)
				}
				if !guest.LedgerClosed() {
					t.Errorf("cycle ledger not closed: cycles=%d issueActive=%d stalls=%d",
						guest.Cycles, guest.IssueActive, guest.StallTotal())
				}
				if guest.Cycles <= 0 || guest.DynInstrs <= 0 {
					t.Errorf("degenerate guest block: %+v", guest)
				}
				if host == nil || len(host.Samples) != repeat {
					t.Fatalf("want %d host samples, got %+v", repeat, host)
				}
				for i, s := range host.Samples {
					if s.WallNS <= 0 {
						t.Errorf("sample %d: nonpositive wall time %d", i, s.WallNS)
					}
				}
				rec := runstore.Record{
					Kind: runstore.KindSim, Rev: "feedfacecafe", Program: name,
					SourceSHA: runstore.SourceHash(src),
					Config:    cfg.Name, Scheme: codegen.SchemeAdvanced.String(), Analysis: true,
					Guest: guest, Host: host,
				}
				rec.Seal()
				first := rec.Hash
				// Re-sealing after mutating only host-noise fields must not
				// move the hash.
				rec.CreatedAt = "2026-01-01T00:00:00Z"
				rec.Label = "second sealing"
				rec.Host = nil
				rec.Seal()
				if rec.Hash != first {
					t.Errorf("content hash not stable across sealing: %s vs %s", first, rec.Hash)
				}
			})
		}
	}
}

// TestObservatoryGateFlagsRegression pins the failure taxonomy end to end:
// a synthetically regressed record must gate to ClassRegression, which the
// CLIs map to exit code 5.
func TestObservatoryGateFlagsRegression(t *testing.T) {
	base := runstore.Record{
		Kind: runstore.KindSim, Rev: "aaaa1111bbbb", Program: "synthetic",
		Config: "4-way", Scheme: "advanced", Analysis: true,
		Guest: runstore.Guest{Cycles: 10_000, IssueActive: 10_000, DynInstrs: 20_000},
	}
	base.Seal()
	regressed := base
	regressed.Rev = "cccc2222dddd"
	regressed.Guest.Cycles = 11_000
	regressed.Guest.IssueActive = 11_000
	regressed.Seal()

	rep := runstore.Gate([]runstore.Record{base}, []runstore.Record{regressed}, runstore.GateOptions{})
	reg := rep.Regressions()
	if len(reg) != 1 || reg[0].Metric != "guest.cycles" {
		t.Fatalf("want exactly one guest.cycles regression, got %+v", reg)
	}
	err := fperr.New(fperr.ClassRegression, "%d metric(s) regressed beyond tolerance", len(reg))
	if fperr.ClassOf(err) != fperr.ClassRegression {
		t.Fatalf("class = %v, want ClassRegression", fperr.ClassOf(err))
	}
	if got := fperr.ExitCode(err); got != 5 {
		t.Fatalf("exit code = %d, want 5 (distinct from internal=3)", got)
	}
}
