package fpint

// One testing.B benchmark per table and figure of the paper's evaluation
// (DESIGN.md §4 maps each to its experiment). Each benchmark regenerates
// the corresponding result and reports the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` reproduces the evaluation.

import (
	"fmt"
	"testing"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/uarch"
)

// BenchmarkTable1Configs exercises both Table 1 machine configurations on a
// fixed workload, reporting their relative IPC.
func BenchmarkTable1Configs(b *testing.B) {
	s := bench.NewSuite()
	w := bench.Lookup("compress")
	for i := 0; i < b.N; i++ {
		m4, err := s.Measure(w, codegen.SchemeNone, uarch.Config4Way())
		if err != nil {
			b.Fatal(err)
		}
		m8, err := s.Measure(w, codegen.SchemeNone, uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m4.IPC, "ipc-4way")
		b.ReportMetric(m8.IPC, "ipc-8way")
	}
}

// BenchmarkTable2Workloads compiles every benchmark program (Table 2) under
// the advanced scheme.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite()
		for _, w := range bench.Workloads() {
			w := w
			if _, err := s.Compile(&w, codegen.SchemeAdvanced); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8PartitionSizes regenerates Figure 8: the size of the FPa
// partition under both schemes, reported as min/max percentages.
func BenchmarkFig8PartitionSizes(b *testing.B) {
	s := bench.NewSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.FigurePartitionSizes(bench.IntWorkloads())
		if err != nil {
			b.Fatal(err)
		}
		reportRange(b, "basic-%", func(j int) float64 { return rows[j].BasicPct }, len(rows))
		reportRange(b, "advanced-%", func(j int) float64 { return rows[j].AdvancedPct }, len(rows))
	}
}

// BenchmarkFig9Speedup4Way regenerates Figure 9: speedups on the 4-way
// machine.
func BenchmarkFig9Speedup4Way(b *testing.B) {
	benchmarkSpeedups(b, uarch.Config4Way())
}

// BenchmarkFig10Speedup8Way regenerates Figure 10: speedups on the 8-way
// machine.
func BenchmarkFig10Speedup8Way(b *testing.B) {
	benchmarkSpeedups(b, uarch.Config8Way())
}

func benchmarkSpeedups(b *testing.B, cfg uarch.Config) {
	s := bench.NewSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.FigureSpeedups(bench.IntWorkloads(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRange(b, "advspeedup-%", func(j int) float64 { return rows[j].AdvancedPct }, len(rows))
	}
}

// BenchmarkOverheads regenerates the §7.2 overhead numbers of the advanced
// scheme.
func BenchmarkOverheads(b *testing.B) {
	s := bench.NewSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Overheads(bench.IntWorkloads())
		if err != nil {
			b.Fatal(err)
		}
		reportRange(b, "dyngrowth-%", func(j int) float64 { return rows[j].DynGrowthPct }, len(rows))
	}
}

// BenchmarkFPPrograms regenerates §7.5: the schemes applied to
// floating-point programs.
func BenchmarkFPPrograms(b *testing.B) {
	s := bench.NewSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.FigureSpeedups(bench.FpWorkloads(), uarch.Config4Way())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.AdvancedPct, fmt.Sprintf("speedup-%s-%%", r.Workload))
		}
	}
}

// BenchmarkLoadChanges regenerates the §6.6 load-delta numbers.
func BenchmarkLoadChanges(b *testing.B) {
	s := bench.NewSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.LoadChanges(bench.IntWorkloads())
		if err != nil {
			b.Fatal(err)
		}
		reportRange(b, "loaddelta-%", func(j int) float64 { return rows[j].LoadDeltaPct }, len(rows))
	}
}

// BenchmarkSliceStats regenerates the §4 LdSt-slice measurement (~50% of
// dynamic instructions for integer codes).
func BenchmarkSliceStats(b *testing.B) {
	s := bench.NewSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.SliceStats(bench.IntWorkloads())
		if err != nil {
			b.Fatal(err)
		}
		reportRange(b, "ldst-%", func(j int) float64 { return rows[j].LdStPct }, len(rows))
	}
}

// --- component microbenchmarks ---

// BenchmarkAdvancedPartitioner measures the partitioning algorithm itself.
func BenchmarkAdvancedPartitioner(b *testing.B) {
	w := bench.Lookup("gcc")
	mod, prof, err := codegen.FrontendPipeline(w.Src)
	if err != nil {
		b.Fatal(err)
	}
	var graphs []*core.Graph
	for _, fn := range mod.Funcs {
		graphs = append(graphs, core.BuildGraph(fn, prof))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			p := core.AdvancedPartition(g, core.DefaultCostParams())
			if len(p.Assign) == 0 {
				b.Fatal("empty partition")
			}
		}
	}
}

// BenchmarkCompilePipeline measures frontend+codegen end to end.
func BenchmarkCompilePipeline(b *testing.B) {
	w := bench.Lookup("m88ksim")
	for i := 0; i < b.N; i++ {
		if _, _, err := codegen.CompileSource(w.Src, codegen.Options{Scheme: codegen.SchemeAdvanced}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimingSimulator measures the cycle-level model's throughput
// (simulated instructions per wall second appear as the custom metric).
func BenchmarkTimingSimulator(b *testing.B) {
	w := bench.Lookup("li")
	res, _, err := codegen.CompileSource(w.Src, codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		_, st, err := uarch.Run(res.Prog, uarch.Config4Way())
		if err != nil {
			b.Fatal(err)
		}
		insts = st.Instructions
	}
	b.ReportMetric(float64(insts*int64(b.N))/b.Elapsed().Seconds(), "sim-insts/s")
}

func reportRange(b *testing.B, label string, get func(int) float64, n int) {
	if n == 0 {
		return
	}
	minV, maxV := get(0), get(0)
	for j := 1; j < n; j++ {
		v := get(j)
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	b.ReportMetric(minV, "min-"+label)
	b.ReportMetric(maxV, "max-"+label)
}

// --- ablation benchmarks (design choices DESIGN.md calls out) ---

// BenchmarkAblationFPaLatency quantifies the §6.6 hardware assumption:
// single-cycle FPa integer ops vs. 2- and 3-cycle variants.
func BenchmarkAblationFPaLatency(b *testing.B) {
	w := bench.Lookup("m88ksim")
	base, _, err := codegen.CompileSource(w.Src, codegen.Options{Scheme: codegen.SchemeNone})
	if err != nil {
		b.Fatal(err)
	}
	adv, _, err := codegen.CompileSource(w.Src, codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := uarch.Config4Way()
		_, baseStats, err := uarch.Run(base.Prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for extra := 0; extra <= 2; extra++ {
			cfg.FPaExtraLatency = extra
			_, st, err := uarch.Run(adv.Prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*(float64(baseStats.Cycles)/float64(st.Cycles)-1),
				fmt.Sprintf("speedup-%dcycle-%%", 1+extra))
		}
	}
}

// BenchmarkAblationLoadBalance compares the greedy advanced scheme against
// the §6.6 load-balance extension on the memory-light compress workload.
func BenchmarkAblationLoadBalance(b *testing.B) {
	w := bench.Lookup("compress")
	for i := 0; i < b.N; i++ {
		for _, s := range []struct {
			name string
			opts codegen.Options
		}{
			{"greedy", codegen.Options{Scheme: codegen.SchemeAdvanced}},
			{"balanced", codegen.Options{Scheme: codegen.SchemeBalanced, MaxFPaFraction: 0.25}},
		} {
			res, _, err := codegen.CompileSource(w.Src, s.opts)
			if err != nil {
				b.Fatal(err)
			}
			out, st, err := uarch.Run(res.Prog, uarch.Config4Way())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*out.Stats.OffloadFraction(), "offload-"+s.name+"-%")
			b.ReportMetric(st.IPC(), "ipc-"+s.name)
		}
	}
}

// BenchmarkAblationCostParams sweeps the §6.1 empirical constants.
func BenchmarkAblationCostParams(b *testing.B) {
	w := bench.Lookup("gcc")
	mod, prof, err := codegen.FrontendPipeline(w.Src)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, oc := range []float64{3, 6} {
			res, err := codegen.Compile(mod, codegen.Options{
				Scheme: codegen.SchemeAdvanced, Profile: prof,
				Cost: core.CostParams{OCopy: oc, ODupl: 2},
			})
			if err != nil {
				b.Fatal(err)
			}
			out, _, err := uarch.Run(res.Prog, uarch.Config4Way())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*out.Stats.OffloadFraction(), fmt.Sprintf("offload-ocopy%.0f-%%", oc))
		}
	}
}

// BenchmarkAblationInterprocFPArgs measures the §6.6 interprocedural
// extension (integer arguments passed in FP registers) on a call-dense
// kernel whose argument values are produced and consumed in FPa. (On the li
// workload the plan correctly refuses to fire: its arguments are cons-cell
// indices used for addressing, which must stay in integer registers.)
func BenchmarkAblationInterprocFPArgs(b *testing.B) {
	src := `
int out[256];
int classify(int v) {
	int c = 0;
	if (v > 192) c = 3;
	else if (v > 128) c = 2;
	else if (v > 64) c = 1;
	return c;
}
int main() {
	int s = 0;
	for (int rep = 0; rep < 30; rep++) {
		for (int i = 0; i < 256; i++) {
			int x = out[i];
			int y = (x ^ ((rep << 5) + rep)) + (x >> 2);
			s += classify(y & 255);
			out[i] = y & 1023;
		}
	}
	return s & 1048575;
}`
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, ipa := range []bool{false, true} {
			res, err := codegen.Compile(mod, codegen.Options{
				Scheme: codegen.SchemeAdvanced, Profile: prof, InterprocFPArgs: ipa,
			})
			if err != nil {
				b.Fatal(err)
			}
			out, st, err := uarch.Run(res.Prog, uarch.Config4Way())
			if err != nil {
				b.Fatal(err)
			}
			tag := "off"
			if ipa {
				tag = "on"
			}
			b.ReportMetric(float64(out.Stats.Copies), "copies-"+tag)
			b.ReportMetric(100*out.Stats.OffloadFraction(), "offload-"+tag+"-%")
			b.ReportMetric(float64(st.Cycles), "cycles-"+tag)
		}
	}
}
