// Command fpintd is the compile-and-simulate daemon: an HTTP/JSON service
// accepting compile, partition, and simulate jobs over a sharded bounded
// worker pool with a content-addressed artifact cache.
//
// Usage:
//
//	fpintd [-addr :8080] [-workers 4] [-queue 16] [-cache 1024] [-chaos] [-grace 30s]
//
// Endpoints:
//
//	POST /v1/compile    {"source"|"workload", "scheme", "analysis", ...}
//	POST /v1/partition  same body; responds with the audit-trail view
//	POST /v1/simulate   adds "config" (4way|8way) and "timing"
//	                    (detailed|fast|functional)
//	GET  /healthz       liveness
//	GET  /statsz        operational counters (deterministic registry JSON)
//
// Robustness: worker panics are recovered into 500s; per-job deadlines
// ("deadlineMs") and step budgets ("stepBudget") abort runs cooperatively
// with 422; a full queue sheds with 503 + Retry-After. SIGTERM/SIGINT
// starts a graceful drain: in-flight jobs finish, queued jobs are shed,
// then the listener closes. A drain still running after -grace
// force-cancels in-flight jobs via their run hooks.
//
// -chaos enables the fault-injection surface ("panic": true jobs) used by
// the load harness to prove the recover barrier; never enable it facing
// untrusted clients.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpint/internal/fperr"
	"fpint/internal/service"
)

func main() {
	err := fpintdMain()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpintd: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

func fpintdMain() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers = flag.Int("workers", 4, "worker pool shards")
		queue   = flag.Int("queue", 16, "per-shard queue depth before shedding")
		cache   = flag.Int("cache", 1024, "artifact cache capacity (entries)")
		chaos   = flag.Bool("chaos", false, "honor panic-injection jobs (load-testing only)")
		grace   = flag.Duration("grace", 30*time.Second, "drain grace before force-cancelling in-flight jobs")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fperr.New(fperr.ClassUsage, "unexpected arguments %v", flag.Args())
	}

	svc := service.New(service.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheCap:   *cache,
		Chaos:      *chaos,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "fpintd: %v: draining (in-flight jobs finish, queued jobs shed)\n", sig)
		forceTimer := time.AfterFunc(*grace, func() {
			fmt.Fprintf(os.Stderr, "fpintd: drain exceeded %v: force-cancelling in-flight jobs\n", *grace)
			svc.Abort()
		})
		svc.Drain()
		forceTimer.Stop()
		// The pool is empty; give straggling response writes a moment, then
		// close the listener.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		close(drained)
	}()

	fmt.Fprintf(os.Stderr, "fpintd: listening on %s (workers=%d queue=%d cache=%d chaos=%v)\n",
		*addr, *workers, *queue, *cache, *chaos)
	err := httpSrv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		<-drained
		fmt.Fprintln(os.Stderr, "fpintd: drained, exiting")
		return nil
	}
	return fperr.Wrap(fperr.ClassUnavailable, err)
}
