// Command fpibench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	fpibench                 # run everything
//	fpibench -fig8 -fig9     # selected experiments only
//	fpibench -table1 -table2 # static tables
package main

import (
	"flag"
	"fmt"
	"os"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "print Table 1 (machine parameters)")
		table2    = flag.Bool("table2", false, "print Table 2 (benchmark programs)")
		fig8      = flag.Bool("fig8", false, "Figure 8: size of the FPa partition")
		fig9      = flag.Bool("fig9", false, "Figure 9: speedups on the 4-way machine")
		fig10     = flag.Bool("fig10", false, "Figure 10: speedups on the 8-way machine")
		overheads = flag.Bool("overheads", false, "§7.2 overhead statistics")
		fpprogs   = flag.Bool("fpprogs", false, "§7.5 floating-point programs")
		loads     = flag.Bool("loads", false, "§6.6 load-count changes")
		slices    = flag.Bool("slices", false, "§4 computational-slice weights")
		imbalance = flag.Bool("imbalance", false, "§7.3 load-imbalance statistics")
	)
	flag.Parse()
	all := !(*table1 || *table2 || *fig8 || *fig9 || *fig10 || *overheads || *fpprogs || *loads || *slices || *imbalance)

	s := bench.NewSuite()
	run := func(name string, f func(*bench.Suite) error) {
		fmt.Printf("\n================ %s ================\n", name)
		if err := f(s); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if all || *table1 {
		run("Table 1: machine parameters", printTable1)
	}
	if all || *table2 {
		run("Table 2: benchmark programs", printTable2)
	}
	if all || *slices {
		run("Computational slices (§4)", printSlices)
	}
	if all || *fig8 {
		run("Figure 8: size of the FPa partition", printFig8)
	}
	if all || *fig9 {
		run("Figure 9: speedups on the 4-way machine", printFig9)
	}
	if all || *fig10 {
		run("Figure 10: speedups on the 8-way machine", printFig10)
	}
	if all || *overheads {
		run("Overheads of the advanced scheme (§7.2)", printOverheads)
	}
	if all || *loads {
		run("Load-count changes from register pressure (§6.6)", printLoads)
	}
	if all || *imbalance {
		run("Load imbalance: INT idle while FPa busy (§7.3)", printImbalance)
	}
	if all || *fpprogs {
		run("Floating-point programs (§7.5)", printFpProgs)
	}
}

func printTable1(*bench.Suite) error {
	cfgs := []uarch.Config{uarch.Config4Way(), uarch.Config8Way()}
	var rows [][]string
	add := func(name string, f func(uarch.Config) string) {
		row := []string{name}
		for _, c := range cfgs {
			row = append(row, f(c))
		}
		rows = append(rows, row)
	}
	add("Fetch width", func(c uarch.Config) string { return fmt.Sprintf("any %d instructions", c.FetchWidth) })
	add("I-cache", func(c uarch.Config) string {
		return fmt.Sprintf("%dKB, %d-way, %dB lines, %dc hit, %dc miss", c.ICacheSize/1024, c.ICacheWays, c.ICacheLine, c.ICacheHit, c.ICacheMissPenalty)
	})
	add("Branch predictor", func(c uarch.Config) string {
		return fmt.Sprintf("gshare, %dK 2-bit counters, %d-bit history", c.BpredCounters/1024, c.BpredHistory)
	})
	add("Decode/rename width", func(c uarch.Config) string { return fmt.Sprintf("any %d instructions", c.DecodeWidth) })
	add("Issue window", func(c uarch.Config) string { return fmt.Sprintf("%d int + %d fp", c.IntWindow, c.FpWindow) })
	add("Max in-flight", func(c uarch.Config) string { return fmt.Sprintf("%d", c.MaxInFlight) })
	add("Retire width", func(c uarch.Config) string { return fmt.Sprintf("%d", c.RetireWidth) })
	add("Functional units", func(c uarch.Config) string { return fmt.Sprintf("%d int + %d fp", c.IntALUs, c.FpALUs) })
	add("FU latency", func(uarch.Config) string { return "6c mul, 12c div, 1c other int; FPa int ops 1c" })
	add("Issue mechanism", func(c uarch.Config) string { return fmt.Sprintf("up to %d ops/cycle, out-of-order", c.IssueWidth) })
	add("Physical registers", func(c uarch.Config) string { return fmt.Sprintf("%d int + %d fp", c.IntPhysRegs, c.FpPhysRegs) })
	add("D-cache", func(c uarch.Config) string {
		return fmt.Sprintf("%dKB, %d-way, %dB lines, WB/WA, %dc hit, %dc miss", c.DCacheSize/1024, c.DCacheWays, c.DCacheLine, c.DCacheHit, c.DCacheMissPenalty)
	})
	add("Load/store ports", func(c uarch.Config) string { return fmt.Sprintf("%d", c.LdStPorts) })
	fmt.Print(bench.FormatTable([]string{"Parameter", "4-way", "8-way"}, rows))
	return nil
}

func printTable2(*bench.Suite) error {
	var rows [][]string
	for _, w := range bench.Workloads() {
		rows = append(rows, []string{w.Name, w.Class, w.Input})
	}
	fmt.Print(bench.FormatTable([]string{"Benchmark", "Class", "Input"}, rows))
	return nil
}

func printSlices(s *bench.Suite) error {
	rows, err := s.SliceStats(bench.IntWorkloads())
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%5.1f%%", r.LdStPct),
			fmt.Sprintf("%5.1f%%", r.BranchPct),
			fmt.Sprintf("%5.1f%%", r.StoreValPct)})
	}
	fmt.Print(bench.FormatTable([]string{"Benchmark", "LdSt slice", "Branch slice", "StoreVal slice"}, out))
	fmt.Println("\nPaper: LdSt slices of integer programs account for close to 50% of dynamic instructions.")
	return nil
}

func printFig8(s *bench.Suite) error {
	rows, err := s.FigurePartitionSizes(bench.IntWorkloads())
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%5.1f%%", r.BasicPct),
			fmt.Sprintf("%5.1f%%", r.AdvancedPct),
			bar(r.BasicPct), bar(r.AdvancedPct)})
	}
	fmt.Print(bench.FormatTable([]string{"Benchmark", "Basic", "Advanced", "basic", "advanced"}, out))
	fmt.Println("\nPaper: basic offloads 5%–29%, advanced offloads 9%–41% of dynamic instructions.")
	return nil
}

func printFig9(s *bench.Suite) error { return printSpeedups(s, uarch.Config4Way(), "2.5%–23.1%") }

func printFig10(s *bench.Suite) error {
	return printSpeedups(s, uarch.Config8Way(), "smaller than on the 4-way machine")
}

func printSpeedups(s *bench.Suite, cfg uarch.Config, paper string) error {
	rows, err := s.FigureSpeedups(bench.IntWorkloads(), cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%+5.1f%%", r.BasicPct),
			fmt.Sprintf("%+5.1f%%", r.AdvancedPct),
			fmt.Sprintf("%d", r.BaseCycles),
			fmt.Sprintf("%d", r.AdvCycles)})
	}
	fmt.Print(bench.FormatTable([]string{"Benchmark", "Basic", "Advanced", "Base cycles", "Adv cycles"}, out))
	fmt.Printf("\nPaper (%s machine): improvements %s.\n", cfg.Name, paper)
	return nil
}

func printOverheads(s *bench.Suite) error {
	rows, err := s.Overheads(bench.IntWorkloads())
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%+5.2f%%", r.DynGrowthPct),
			fmt.Sprintf("%5.2f%%", r.CopyPct),
			fmt.Sprintf("%5.2f%%", r.DupPct),
			fmt.Sprintf("%+5.2f%%", r.StaticGrowthPct)})
	}
	fmt.Print(bench.FormatTable([]string{"Benchmark", "Dyn growth", "Copies", "Dups", "Static growth"}, out))
	fmt.Println("\nPaper: max dynamic increase 4% (compress: 3.4% copies + 0.6% dups); static growth negligible.")
	return nil
}

func printLoads(s *bench.Suite) error {
	rows, err := s.LoadChanges(bench.IntWorkloads())
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload, fmt.Sprintf("%+5.2f%%", r.LoadDeltaPct)})
	}
	fmt.Print(bench.FormatTable([]string{"Benchmark", "Load delta (adv vs base)"}, out))
	fmt.Println("\nPaper: loads decreased 3.7% for go, increased 2.6% for gcc.")
	return nil
}

func printImbalance(s *bench.Suite) error {
	cfg := uarch.Config4Way()
	var out [][]string
	for _, w := range bench.IntWorkloads() {
		w := w
		m, err := s.Measure(&w, codegen.SchemeAdvanced, cfg)
		if err != nil {
			return err
		}
		out = append(out, []string{w.Name,
			fmt.Sprintf("%5.1f%%", 100*m.OffloadFrac),
			fmt.Sprintf("%5.1f%%", 100*m.IntIdleFPaBusyFrac)})
	}
	fmt.Print(bench.FormatTable([]string{"Benchmark", "Offload", "INT idle & FPa busy (cycles)"}, out))
	fmt.Println("\nPaper: for m88ksim the INT subsystem is idle 12.4% of the cycles in which")
	fmt.Println("FPa executes — greedy partitioning does not balance load (§7.3/§6.6).")
	return nil
}

func printFpProgs(s *bench.Suite) error {
	ws := bench.FpWorkloads()
	parts, err := s.FigurePartitionSizes(ws)
	if err != nil {
		return err
	}
	speeds, err := s.FigureSpeedups(ws, uarch.Config4Way())
	if err != nil {
		return err
	}
	var out [][]string
	for i := range parts {
		out = append(out, []string{parts[i].Workload,
			fmt.Sprintf("%5.1f%%", parts[i].AdvancedPct),
			fmt.Sprintf("%+5.1f%%", speeds[i].AdvancedPct)})
	}
	fmt.Print(bench.FormatTable([]string{"Benchmark", "Advanced offload", "Advanced speedup (4-way)"}, out))
	fmt.Println("\nPaper: FP programs ~neutral, except ear: 18% offload and 18% speedup.")
	return nil
}

func bar(pct float64) string {
	n := int(pct / 2)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}
