// Command fpibench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	fpibench                 # run everything
//	fpibench -fig8 -fig9     # selected experiments only
//	fpibench -table1 -table2 # static tables
//	fpibench -json results.json  # machine-readable results ("-" for stdout)
//	fpibench -baseline BENCH_BASELINE.json  # regression check against a prior -json report
//	fpibench -write-baseline BENCH_BASELINE.json  # regenerate the checked-in baseline
//	fpibench -faultsweep     # per-scheme fault-sensitivity sweep (both configs)
//	fpibench -hostmetrics    # also print per-experiment host-side cost (wall, allocs, GC)
//	fpibench -fast -fig9     # sampled-timing sweep: bounded-error cycle estimates, much faster
//	fpibench -oracle-gap     # greedy-vs-optimal partition gap per workload, both configs (gated)
//	fpibench -calibrate -calib-out CALIB.json  # fit o_copy/o_dupl against measured cycles
//
// Exit codes: 0 success, 1 usage error, 2 input error (e.g. an unreadable
// baseline file), 3 an experiment failed, 5 a -baseline comparison found a
// cycle regression.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/faultinject"
	"fpint/internal/fperr"
	"fpint/internal/obs/hostmetrics"
	"fpint/internal/uarch"
)

func main() {
	err := fpibenchMain()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpibench: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

func fpibenchMain() error {
	var (
		table1        = flag.Bool("table1", false, "print Table 1 (machine parameters)")
		table2        = flag.Bool("table2", false, "print Table 2 (benchmark programs)")
		fig8          = flag.Bool("fig8", false, "Figure 8: size of the FPa partition")
		fig9          = flag.Bool("fig9", false, "Figure 9: speedups on the 4-way machine")
		fig10         = flag.Bool("fig10", false, "Figure 10: speedups on the 8-way machine")
		overheads     = flag.Bool("overheads", false, "§7.2 overhead statistics")
		fpprogs       = flag.Bool("fpprogs", false, "§7.5 floating-point programs")
		loads         = flag.Bool("loads", false, "§6.6 load-count changes")
		slices        = flag.Bool("slices", false, "§4 computational-slice weights")
		imbalance     = flag.Bool("imbalance", false, "§7.3 load-imbalance statistics")
		phases        = flag.Bool("phases", false, "per-benchmark phase timeline: segmented occupancy/stall phases on both configurations")
		phaseWidth    = flag.Int64("phase-width", 1024, "with -phases: timeline window width in cycles")
		jsonOut       = flag.String("json", "", "also write the selected experiments as JSON to the given file (\"-\" for stdout, suppressing the tables)")
		baseline      = flag.String("baseline", "", "compare cycle counts against a prior -json report and exit non-zero on regressions")
		tolerance     = flag.Float64("regress-tolerance", 2.0, "with -baseline: maximum tolerated cycle increase in percent")
		faultsw       = flag.Bool("faultsweep", false, "per-scheme fault-sensitivity sweep on both machine configurations")
		faultRate     = flag.Float64("fault-rate", 0.001, "with -faultsweep: per-instruction fault probability")
		faultSeed     = flag.Int64("fault-seed", 1, "with -faultsweep: fault plan seed")
		analysisDelta = flag.Bool("analysis-delta", false, "static-analysis payoff: offload and cycles with the address oracle off vs on, both configurations")
		writeBaseline = flag.String("write-baseline", "", "regenerate the checked-in cycle baseline: run the classic experiment set and write it as JSON to the given file")
		hostMetrics   = flag.Bool("hostmetrics", false, "also print a per-experiment host-side cost table (wall time, allocations, GC)")
		fastMode      = flag.Bool("fast", false, "run cycle experiments in the sampled-timing fast mode (bounded-error sweep; incompatible with baselines and fault sweeps)")
		fastPeriod    = flag.Int("fast-period", 0, "with -fast: sampling period in units, one in N measured (0 = default)")
		oracleGap     = flag.Bool("oracle-gap", false, "greedy-vs-optimal partition gap per workload on both configurations (gated: profit dominance must hold and the exact search must complete)")
		calibrate     = flag.Bool("calibrate", false, "fit the cost-model constants o_copy/o_dupl against measured cycle deltas on both configurations")
		calibOut      = flag.String("calib-out", "", "with -calibrate: write the fpint-calib/v1 JSON document to the given file (\"-\" for stdout)")
	)
	flag.Parse()
	if *faultRate <= 0 || *faultRate > 1 {
		return fperr.New(fperr.ClassUsage, "-fault-rate %g outside (0,1]", *faultRate)
	}
	if *fastMode {
		// Baselines are exact detailed-cycle contracts and the fault model
		// needs continuous detailed execution; neither mixes with sampling.
		if *baseline != "" || *writeBaseline != "" {
			return fperr.New(fperr.ClassUsage, "-fast produces estimated cycles and cannot be used with -baseline/-write-baseline")
		}
		if *faultsw {
			return fperr.New(fperr.ClassUsage, "-fast does not support -faultsweep; fault injection needs the detailed model")
		}
		if *oracleGap || *calibrate {
			return fperr.New(fperr.ClassUsage, "-fast does not support -oracle-gap/-calibrate; both gate on exact detailed cycles")
		}
	}
	if *calibOut != "" && !*calibrate {
		return fperr.New(fperr.ClassUsage, "-calib-out requires -calibrate")
	}
	all := !(*table1 || *table2 || *fig8 || *fig9 || *fig10 || *overheads || *fpprogs || *loads || *slices || *imbalance || *faultsw || *analysisDelta || *phases || *oracleGap || *calibrate)
	if *baseline != "" && all {
		// Baseline mode defaults to exactly the cycle-bearing experiments.
		all, *fig9, *fig10, *fpprogs = false, true, true, true
	}
	if *writeBaseline != "" {
		// The baseline is the classic experiment set BENCH_BASELINE.json
		// carries, in its checked-in order — deterministic regeneration, no
		// host-noise experiments.
		all = false
		*table1, *table2, *slices, *fig8, *fig9 = true, true, true, true, true
		*fig10, *overheads, *loads, *imbalance, *fpprogs = true, true, true, true, true
		*faultsw, *analysisDelta = false, false
	}

	c := &ctx{s: bench.NewSuite(), quiet: *jsonOut == "-" || *writeBaseline != ""}
	if *fastMode {
		sc := uarch.DefaultSampleConfig()
		if *fastPeriod > 0 {
			sc.Period = *fastPeriod
		}
		c.s.SetFast(sc)
		if !c.quiet {
			fmt.Printf("fast mode: sampled timing (period=%d width=%d warmup=%d) — cycle figures are bounded-error estimates\n",
				sc.Period, sc.Width, sc.Warmup)
		}
	}
	if *jsonOut != "" || *baseline != "" || *writeBaseline != "" {
		c.rep = bench.NewReport()
	}
	type hostRow struct {
		name   string
		sample hostmetrics.Sample
	}
	var hostRows []hostRow
	var runErr error
	run := func(name string, f func(*ctx) error) {
		if runErr != nil {
			return
		}
		if !c.quiet {
			fmt.Printf("\n================ %s ================\n", name)
		}
		var err error
		sample := hostmetrics.Measure(func() { err = f(c) })
		if *hostMetrics {
			hostRows = append(hostRows, hostRow{name, sample})
		}
		if err != nil {
			runErr = fperr.Wrapf(fperr.ClassInternal, err, "%s", name)
		}
	}

	if all || *table1 {
		run("Table 1: machine parameters", printTable1)
	}
	if all || *table2 {
		run("Table 2: benchmark programs", printTable2)
	}
	if all || *slices {
		run("Computational slices (§4)", printSlices)
	}
	if all || *fig8 {
		run("Figure 8: size of the FPa partition", printFig8)
	}
	if all || *fig9 {
		run("Figure 9: speedups on the 4-way machine", printFig9)
	}
	if all || *fig10 {
		run("Figure 10: speedups on the 8-way machine", printFig10)
	}
	if all || *overheads {
		run("Overheads of the advanced scheme (§7.2)", printOverheads)
	}
	if all || *loads {
		run("Load-count changes from register pressure (§6.6)", printLoads)
	}
	if all || *imbalance {
		run("Load imbalance: INT idle while FPa busy (§7.3)", printImbalance)
	}
	if all || *fpprogs {
		run("Floating-point programs (§7.5)", printFpProgs)
	}
	if all || *phases {
		run("Phase timeline (advanced scheme)", func(c *ctx) error {
			return printPhases(c, *phaseWidth)
		})
	}
	if all || *analysisDelta {
		run("Static-analysis payoff (analysis off vs on)", printAnalysisDelta)
	}
	if (all && !*fastMode) || *oracleGap {
		run("Greedy-vs-optimal partition gap (exact oracle)", printOracleGap)
	}
	if (all && !*fastMode) || *calibrate {
		run("Cost-model self-calibration (o_copy/o_dupl fit)", func(c *ctx) error {
			return printCalibration(c, *calibOut)
		})
	}
	if all || *faultsw {
		fc := faultinject.Config{Seed: *faultSeed, Kind: faultinject.KindAny, Rate: *faultRate}
		run("Fault sensitivity (robustness sweep)", func(c *ctx) error {
			return printFaultSweep(c, fc)
		})
	}
	if runErr != nil {
		return runErr
	}

	if *hostMetrics && !c.quiet {
		fmt.Printf("\n================ host-side cost (self-metrics) ================\n")
		var out [][]string
		for _, r := range hostRows {
			out = append(out, []string{r.name,
				fmt.Sprintf("%v", time.Duration(r.sample.WallNS)),
				fmt.Sprintf("%d", r.sample.Allocs),
				fmt.Sprintf("%d", r.sample.Bytes),
				fmt.Sprintf("%d", r.sample.GCCycles),
				fmt.Sprintf("%v", time.Duration(r.sample.GCPauseNS))})
		}
		fmt.Print(bench.FormatTable([]string{"Experiment", "Wall", "Allocs", "Bytes", "GC", "GC pause"}, out))
		fmt.Println("\nHost numbers measure this simulator process, not the modeled machine;\nthey are noisy — gate them with `fpistat gate`, never by eye.")
	}
	if c.rep != nil && *jsonOut != "" {
		if err := writeTo(*jsonOut, c.rep.WriteJSON); err != nil {
			return fperr.Wrap(fperr.ClassInput, err)
		}
	}
	if *writeBaseline != "" {
		if err := writeTo(*writeBaseline, c.rep.WriteJSON); err != nil {
			return fperr.Wrap(fperr.ClassInput, err)
		}
		fmt.Printf("wrote %d experiments to %s\n", len(c.rep.Experiments), *writeBaseline)
	}
	if *baseline != "" {
		if err := compareBaseline(c.rep, *baseline, *tolerance); err != nil {
			return fperr.Wrap(fperr.ClassInternal, err)
		}
	}
	return nil
}

// printAnalysisDelta reports what the alias/value-range address oracle buys
// per workload: static offload share and unpinned address nodes under the
// basic and advanced schemes, plus cycle counts on both Table 1 machines
// with the oracle off and on. Every run is functionally cross-checked
// against the IR interpreter.
func printAnalysisDelta(c *ctx) error {
	ws := append(bench.IntWorkloads(), bench.FpWorkloads()...)
	for _, scheme := range []codegen.Scheme{codegen.SchemeBasic, codegen.SchemeAdvanced} {
		rows, err := c.s.AnalysisDelta(ws, scheme)
		if err != nil {
			return err
		}
		c.record("analysis_delta_"+scheme.String(), "analysis", rows)
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Workload, scheme.String(),
				fmt.Sprintf("%5.1f%%", r.StaticOffPct),
				fmt.Sprintf("%5.1f%%", r.StaticOnPct),
				fmt.Sprintf("%d", r.Unpins),
				fmt.Sprintf("%d", r.Cycles4Off), fmt.Sprintf("%d", r.Cycles4On),
				fmt.Sprintf("%d", r.Cycles8Off), fmt.Sprintf("%d", r.Cycles8On)})
		}
		c.table([]string{"Benchmark", "Scheme", "Off(static)", "On(static)", "Unpins",
			"4way off", "4way on", "8way off", "8way on"}, out)
	}
	c.note("\nStatic %% is the profile-weighted FPa share of partitionable weight. The\nanalyses unpin provably in-bounds load/store addresses; the basic scheme\n(no copies) benefits most, the advanced cost model keeps only profitable\nslices. Functional results are interpreter-checked on every run.")
	return nil
}

// printOracleGap reports the greedy-vs-optimal partition gap per workload
// on both Table 1 machines and gates on the oracle's invariants: the
// exact search must complete within the default limits and the optimal
// profit must dominate the greedy profit on every row.
func printOracleGap(c *ctx) error {
	var all []bench.OracleGapRow
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		rows, err := c.s.OracleGaps(bench.IntWorkloads(), cfg)
		if err != nil {
			return err
		}
		c.record("oracle_gap_"+cfg.Name, "oracle", rows)
		if !c.quiet {
			fmt.Print(bench.OracleGapTable(rows))
		}
		all = append(all, rows...)
	}
	c.note("\nProfit is the §6.1 cost-model total (profile-weight units; configuration-\nindependent). A positive gap is offload the greedy heuristic missed; the\ncycle delta shows what the exact partition is worth on the detailed model.\nThe gate fails on any dominance violation or degraded (non-exact) search.")
	return bench.GateOracleGaps(all)
}

// printCalibration fits o_copy/o_dupl per machine configuration against
// measured simulator cycle deltas and reports the fpint-calib/v1 result.
func printCalibration(c *ctx, calibOut string) error {
	cfgs := []uarch.Config{uarch.Config4Way(), uarch.Config8Way()}
	calib, err := c.s.Calibrate(bench.IntWorkloads(), cfgs)
	if err != nil {
		return err
	}
	c.record("calibration", "cost model", calib.Configs)
	var out [][]string
	for _, f := range calib.Configs {
		rng := "outside paper range"
		if f.InPaperRange {
			rng = "in paper range"
		}
		out = append(out, []string{f.Config,
			fmt.Sprintf("%.1f", f.OCopy),
			fmt.Sprintf("%.1f", f.ODupl),
			fmt.Sprintf("%.3f", f.CyclesPerProfit),
			fmt.Sprintf("%.3f", f.R2),
			rng})
	}
	c.table([]string{"Config", "o_copy", "o_dupl", "cycles/profit", "R^2", "Paper: o_copy in [3,6], o_dupl in [1.5,3]"}, out)
	for _, f := range calib.Configs {
		if p, ok := calib.Params(f.Config); ok {
			c.note("%s: partitions built from this fit carry audit note %q", f.Config, "cost model: "+p.Provenance)
		}
	}
	if calibOut != "" {
		if err := writeTo(calibOut, calib.WriteJSON); err != nil {
			return fperr.Wrap(fperr.ClassInput, err)
		}
		if calibOut != "-" {
			c.note("wrote %s document to %s", bench.CalibVersion, calibOut)
		}
	}
	return nil
}

// printFaultSweep reports the per-scheme fault-sensitivity sweep: cycles
// lost to detection and recovery, per workload, scheme, and configuration.
func printFaultSweep(c *ctx, fc faultinject.Config) error {
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		rows, err := c.s.FaultSensitivity(bench.IntWorkloads(), cfg, fc)
		if err != nil {
			return err
		}
		c.record("fault_sensitivity_"+cfg.Name, "robustness", rows)
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Workload, r.Scheme, r.Config,
				fmt.Sprintf("%d", r.Faults),
				fmt.Sprintf("%d", r.RecoveryCycles),
				fmt.Sprintf("%d", r.CleanCycles),
				fmt.Sprintf("%d", r.FaultCycles),
				fmt.Sprintf("%+5.2f%%", r.SlowdownPct)})
		}
		c.table([]string{"Benchmark", "Scheme", "Config", "Faults", "Recovery cyc", "Clean cyc", "Fault cyc", "Slowdown"}, out)
	}
	c.note("\nEvery injected run is checked to produce the reference output with a closed\nstall ledger: faults cost recovery cycles, never correctness (seed=%d rate=%g).", fc.Seed, fc.Rate)
	return nil
}

// compareBaseline diffs the current report's cycle counts against a prior
// -json report and returns an error when any benchmark slowed down by more
// than tolerance percent.
func compareBaseline(rep *bench.Report, path string, tolerance float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := bench.LoadBaselineCycles(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	cur, err := bench.ExtractCycles(rep)
	if err != nil {
		return err
	}
	deltas := bench.CompareCycles(base, cur)
	if len(deltas) == 0 {
		return fmt.Errorf("%s: no cycle metrics in common with this run", path)
	}
	fmt.Printf("\n================ baseline comparison (%s) ================\n", path)
	fmt.Printf("%-22s %-10s %-11s %12s %12s %8s\n",
		"EXPERIMENT", "WORKLOAD", "METRIC", "BASELINE", "CURRENT", "DELTA")
	for _, d := range deltas {
		fmt.Printf("%-22s %-10s %-11s %12d %12d %+7.2f%%\n",
			d.Key.Experiment, d.Key.Workload, d.Key.Field, d.Old, d.New, d.Pct())
	}
	if reg := bench.Regressions(deltas, tolerance); len(reg) > 0 {
		return fperr.New(fperr.ClassRegression, "%d cycle regression(s) beyond %.1f%% tolerance", len(reg), tolerance)
	}
	fmt.Printf("no regressions beyond %.1f%% tolerance (%d metrics compared)\n", tolerance, len(deltas))
	return nil
}

// ctx carries the shared suite plus the optional JSON report each
// experiment contributes its rows to.
type ctx struct {
	s     *bench.Suite
	rep   *bench.Report
	quiet bool
}

// record adds one experiment's rows to the report, if one was requested.
func (c *ctx) record(name, section string, rows any) {
	if c.rep != nil {
		c.rep.Add(name, section, rows)
	}
}

// table prints a formatted table unless table output is suppressed.
func (c *ctx) table(header []string, rows [][]string) {
	if !c.quiet {
		fmt.Print(bench.FormatTable(header, rows))
	}
}

// note prints a trailing comparison-with-the-paper line.
func (c *ctx) note(format string, args ...any) {
	if !c.quiet {
		fmt.Printf(format+"\n", args...)
	}
}

func printTable1(c *ctx) error {
	cfgs := []uarch.Config{uarch.Config4Way(), uarch.Config8Way()}
	var rows [][]string
	add := func(name string, f func(uarch.Config) string) {
		row := []string{name}
		for _, cfg := range cfgs {
			row = append(row, f(cfg))
		}
		rows = append(rows, row)
	}
	add("Fetch width", func(c uarch.Config) string { return fmt.Sprintf("any %d instructions", c.FetchWidth) })
	add("I-cache", func(c uarch.Config) string {
		return fmt.Sprintf("%dKB, %d-way, %dB lines, %dc hit, %dc miss", c.ICacheSize/1024, c.ICacheWays, c.ICacheLine, c.ICacheHit, c.ICacheMissPenalty)
	})
	add("Branch predictor", func(c uarch.Config) string {
		return fmt.Sprintf("gshare, %dK 2-bit counters, %d-bit history", c.BpredCounters/1024, c.BpredHistory)
	})
	add("Decode/rename width", func(c uarch.Config) string { return fmt.Sprintf("any %d instructions", c.DecodeWidth) })
	add("Issue window", func(c uarch.Config) string { return fmt.Sprintf("%d int + %d fp", c.IntWindow, c.FpWindow) })
	add("Max in-flight", func(c uarch.Config) string { return fmt.Sprintf("%d", c.MaxInFlight) })
	add("Retire width", func(c uarch.Config) string { return fmt.Sprintf("%d", c.RetireWidth) })
	add("Functional units", func(c uarch.Config) string { return fmt.Sprintf("%d int + %d fp", c.IntALUs, c.FpALUs) })
	add("FU latency", func(uarch.Config) string { return "6c mul, 12c div, 1c other int; FPa int ops 1c" })
	add("Issue mechanism", func(c uarch.Config) string { return fmt.Sprintf("up to %d ops/cycle, out-of-order", c.IssueWidth) })
	add("Physical registers", func(c uarch.Config) string { return fmt.Sprintf("%d int + %d fp", c.IntPhysRegs, c.FpPhysRegs) })
	add("D-cache", func(c uarch.Config) string {
		return fmt.Sprintf("%dKB, %d-way, %dB lines, WB/WA, %dc hit, %dc miss", c.DCacheSize/1024, c.DCacheWays, c.DCacheLine, c.DCacheHit, c.DCacheMissPenalty)
	})
	add("Load/store ports", func(c uarch.Config) string { return fmt.Sprintf("%d", c.LdStPorts) })
	c.record("table1_machine_parameters", "§7/Table 1", rows)
	c.table([]string{"Parameter", "4-way", "8-way"}, rows)
	return nil
}

func printTable2(c *ctx) error {
	type row struct {
		Workload string `json:"workload"`
		Class    string `json:"class"`
		Input    string `json:"input"`
	}
	var jrows []row
	var rows [][]string
	for _, w := range bench.Workloads() {
		jrows = append(jrows, row{w.Name, w.Class, w.Input})
		rows = append(rows, []string{w.Name, w.Class, w.Input})
	}
	c.record("table2_benchmarks", "§7/Table 2", jrows)
	c.table([]string{"Benchmark", "Class", "Input"}, rows)
	return nil
}

func printSlices(c *ctx) error {
	rows, err := c.s.SliceStats(bench.IntWorkloads())
	if err != nil {
		return err
	}
	c.record("slice_weights", "§4", rows)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%5.1f%%", r.LdStPct),
			fmt.Sprintf("%5.1f%%", r.BranchPct),
			fmt.Sprintf("%5.1f%%", r.StoreValPct)})
	}
	c.table([]string{"Benchmark", "LdSt slice", "Branch slice", "StoreVal slice"}, out)
	c.note("\nPaper: LdSt slices of integer programs account for close to 50%% of dynamic instructions.")
	return nil
}

func printFig8(c *ctx) error {
	rows, err := c.s.FigurePartitionSizes(bench.IntWorkloads())
	if err != nil {
		return err
	}
	c.record("fig8_partition_sizes", "§7.1/Fig. 8", rows)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%5.1f%%", r.BasicPct),
			fmt.Sprintf("%5.1f%%", r.AdvancedPct),
			bar(r.BasicPct), bar(r.AdvancedPct)})
	}
	c.table([]string{"Benchmark", "Basic", "Advanced", "basic", "advanced"}, out)
	c.note("\nPaper: basic offloads 5%%–29%%, advanced offloads 9%%–41%% of dynamic instructions.")
	return nil
}

func printFig9(c *ctx) error {
	return printSpeedups(c, uarch.Config4Way(), "fig9_speedups_4way", "§7.1/Fig. 9", "2.5%–23.1%")
}

func printFig10(c *ctx) error {
	return printSpeedups(c, uarch.Config8Way(), "fig10_speedups_8way", "§7.4/Fig. 10", "smaller than on the 4-way machine")
}

func printSpeedups(c *ctx, cfg uarch.Config, name, section, paper string) error {
	rows, err := c.s.FigureSpeedups(bench.IntWorkloads(), cfg)
	if err != nil {
		return err
	}
	c.record(name, section, rows)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%+5.1f%%", r.BasicPct),
			fmt.Sprintf("%+5.1f%%", r.AdvancedPct),
			fmt.Sprintf("%d", r.BaseCycles),
			fmt.Sprintf("%d", r.AdvCycles)})
	}
	c.table([]string{"Benchmark", "Basic", "Advanced", "Base cycles", "Adv cycles"}, out)
	c.note("\nPaper (%s machine): improvements %s.", cfg.Name, paper)
	return nil
}

func printOverheads(c *ctx) error {
	rows, err := c.s.Overheads(bench.IntWorkloads())
	if err != nil {
		return err
	}
	c.record("overheads", "§7.2", rows)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%+5.2f%%", r.DynGrowthPct),
			fmt.Sprintf("%5.2f%%", r.CopyPct),
			fmt.Sprintf("%5.2f%%", r.DupPct),
			fmt.Sprintf("%+5.2f%%", r.StaticGrowthPct)})
	}
	c.table([]string{"Benchmark", "Dyn growth", "Copies", "Dups", "Static growth"}, out)
	c.note("\nPaper: max dynamic increase 4%% (compress: 3.4%% copies + 0.6%% dups); static growth negligible.")
	return nil
}

func printLoads(c *ctx) error {
	rows, err := c.s.LoadChanges(bench.IntWorkloads())
	if err != nil {
		return err
	}
	c.record("load_changes", "§6.6", rows)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload, fmt.Sprintf("%+5.2f%%", r.LoadDeltaPct)})
	}
	c.table([]string{"Benchmark", "Load delta (adv vs base)"}, out)
	c.note("\nPaper: loads decreased 3.7%% for go, increased 2.6%% for gcc.")
	return nil
}

func printImbalance(c *ctx) error {
	rows, err := c.s.Imbalance(bench.IntWorkloads(), uarch.Config4Way())
	if err != nil {
		return err
	}
	c.record("imbalance", "§7.3", rows)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%5.1f%%", r.OffloadPct),
			fmt.Sprintf("%5.1f%%", r.IntIdleFPaBusyPct)})
	}
	c.table([]string{"Benchmark", "Offload", "INT idle & FPa busy (cycles)"}, out)
	c.note("\nPaper: for m88ksim the INT subsystem is idle 12.4%% of the cycles in which\nFPa executes — greedy partitioning does not balance load (§7.3/§6.6).")
	return nil
}

// printPhases reports the segmented phase timeline of every integer
// workload under the advanced scheme: where each program's behaviour
// shifts, the FPa occupancy the dynamic-selection sensor would read, and
// which stall cause dominated. In fast mode the phases describe the
// sampled detailed windows and are marked estimated.
func printPhases(c *ctx, width int64) error {
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		rows, err := c.s.Phases(bench.IntWorkloads(), cfg, width)
		if err != nil {
			return err
		}
		c.record("phases_"+cfg.Name, "phase timeline", rows)
		var out [][]string
		for _, r := range rows {
			est := ""
			if r.Estimated {
				est = " (est)"
			}
			out = append(out, []string{r.Workload, r.Config,
				fmt.Sprintf("%d", r.Phase), r.Windows,
				fmt.Sprintf("%d%s", r.Cycles, est),
				fmt.Sprintf("%5.2f", r.IPC),
				fmt.Sprintf("%5.3f", r.FPaOcc),
				fmt.Sprintf("%5.1f%%", 100*r.OffloadRatio),
				fmt.Sprintf("%s %4.1f%%", r.DominantStall, 100*r.DominantStallFrac)})
		}
		c.table([]string{"Benchmark", "Config", "Phase", "Windows", "Cycles", "IPC", "FPa occ", "Offload", "Dominant stall"}, out)
	}
	c.note("\nPhases are change-points in the windowed occupancy/stall mix (width=%d\ncycles); FPa occ is the per-cycle FPa issue rate the dynamic scheme-selection\nsensor (ROADMAP item 3) reads. Diff two runs with `fpistat phasediff`.", width)
	return nil
}

func printFpProgs(c *ctx) error {
	rows, err := c.s.FPProgramRows()
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload,
			fmt.Sprintf("%5.1f%%", r.OffloadPct),
			fmt.Sprintf("%+5.1f%%", r.SpeedupPct)})
	}
	c.record("fp_programs", "§7.5", rows)
	c.table([]string{"Benchmark", "Advanced offload", "Advanced speedup (4-way)"}, out)
	c.note("\nPaper: FP programs ~neutral, except ear: 18%% offload and 18%% speedup.")
	return nil
}

func bar(pct float64) string {
	n := int(pct / 2)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}

// writeTo streams enc to path, with "-" meaning stdout.
func writeTo(path string, enc func(w io.Writer) error) error {
	if path == "-" {
		return enc(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := enc(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
