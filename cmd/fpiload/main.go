// Command fpiload is the fpintd load and chaos harness: it drives
// concurrent compile/partition/simulate requests — including malformed,
// trapping, over-budget, and (against a -chaos daemon) panic-inducing
// jobs — and reports latency percentiles, throughput, shed rate, and
// cache hit rate as a deterministic fpint-load/v1 JSON document.
//
// Usage:
//
//	fpiload -addr http://127.0.0.1:8080 [-n 1000] [-c 32] [-seed 1]
//	        [-mix ok=12,malformed=2,trap=2,over-budget=2,panic=2]
//	        [-json out.json]
//
// The request sequence is deterministic for a given seed and mix; only
// the wall-clock fields vary run to run. Exit codes follow the fperr
// contract: 0 on a completed run, 2 when every request failed at the
// transport (the daemon is unreachable), 6 when the daemon shed the
// entire run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fpint/internal/fperr"
	"fpint/internal/service/loadgen"
)

func main() {
	err := fpiloadMain()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpiload: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

func fpiloadMain() error {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "fpintd base URL")
		n       = flag.Int("n", 1000, "total requests")
		c       = flag.Int("c", 32, "concurrent workers")
		seed    = flag.Int64("seed", 1, "request-sequence seed")
		mixSpec = flag.String("mix", "", "flavor weights, e.g. ok=12,malformed=2,trap=2,over-budget=2,panic=2 (default: built-in chaos mix)")
		jsonOut = flag.String("json", "-", "write the fpint-load/v1 report to the given file (\"-\" for stdout)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fperr.New(fperr.ClassUsage, "unexpected arguments %v", flag.Args())
	}

	cfg := loadgen.Config{BaseURL: *addr, Requests: *n, Workers: *c, Seed: *seed}
	if *mixSpec != "" {
		mix, err := parseMix(*mixSpec)
		if err != nil {
			return err
		}
		cfg.Mix = mix
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		return fperr.Wrap(fperr.ClassInternal, err)
	}
	if err := writeTo(*jsonOut, rep.WriteJSON); err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	switch {
	case rep.Requests == 0 && rep.TransportErrors > 0:
		return fperr.New(fperr.ClassInput, "no request reached the daemon (%d transport errors)", rep.TransportErrors)
	case rep.Requests > 0 && rep.Shed == rep.Requests:
		return fperr.New(fperr.ClassUnavailable, "the daemon shed the entire run (%d/%d)", rep.Shed, rep.Requests)
	}
	return nil
}

// parseMix parses "flavor=weight,..." into loadgen mix weights.
func parseMix(spec string) (map[string]int, error) {
	known := map[string]bool{
		loadgen.FlavorOK: true, loadgen.FlavorMalformed: true, loadgen.FlavorTrap: true,
		loadgen.FlavorOverBudget: true, loadgen.FlavorPanic: true,
	}
	mix := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || !known[name] {
			return nil, fperr.New(fperr.ClassUsage, "bad mix entry %q (want flavor=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fperr.New(fperr.ClassUsage, "bad mix weight %q", val)
		}
		mix[name] = w
	}
	return mix, nil
}

// writeTo streams enc to path, with "-" meaning stdout.
func writeTo(path string, enc func(w io.Writer) error) error {
	if path == "-" {
		return enc(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := enc(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
