// Command fpisim compiles a mini-C program and runs it on the functional
// simulator and, optionally, the cycle-level timing model of both machine
// configurations.
//
// Usage:
//
//	fpisim [-scheme advanced] [-timing] [-config 4way|8way] file.c
//	fpisim -workload compress -timing -compare
//	fpisim -workload compress -timing -json -              # metrics as JSON
//	fpisim -workload compress -timing -pipetrace-json t.json  # Perfetto trace
//	fpisim -profile file.c                 # hot-function/hot-line tables
//	fpisim -annotate file.c                # source with per-line cycles
//	fpisim -folded out.folded file.c       # flamegraph folded stacks
//	fpisim -pprof out.pb.gz file.c         # pprof protobuf profile
//	fpisim -inject-fault seed=1,kind=any,rate=0.001 file.c  # fault injection
//	fpisim -timing -hostmetrics file.c     # simulator's own host-side cost
//	fpisim -fast file.c                    # sampled-timing fast mode
//	fpisim -fast -fast-period 20 file.c    # sparser sampling for long sweeps
//	fpisim -timeline file.c                # windowed phase timeline + table
//	fpisim -timeline-csv t.csv file.c      # plot-ready per-window CSV
//	fpisim -timeline-json t.json file.c    # fpint-timeline/v1 document
//
// The phase timeline (-timeline/-timeline-csv/-timeline-json, implying
// -timing) arms the pipeline's flight recorder: fixed-width cycle windows
// of occupancy, stall-mix, and offload telemetry, segmented into program
// phases by online change-point detection. With -pipetrace-json the
// windows also become Perfetto counter tracks merged into the trace
// alongside the per-instruction spans and the compiler's pass spans, so
// one compile+simulate job emits a single unified trace. Timelines work
// under -fast too: the windows then cover only the detailed sampling
// windows and the document is flagged as estimated.
//
// Fault injection (-inject-fault, implies -timing) drives the seeded
// transient-fault model of internal/faultinject: same seed, same program ⇒
// byte-identical fault trace (printable with -fault-trace). Faults cost
// recovery cycles, never correctness — the architectural output is computed
// by the functional simulator and is unaffected by timing-model faults.
//
// The fast mode (-fast, implies -timing) replaces the full detailed run
// with SMARTS-style periodic sampling: most instructions execute
// functionally (still training the branch predictor and caches) and only
// periodic detailed windows are timed, extrapolated to a total cycle
// estimate with a closed stall ledger. The functional output is
// bit-identical to the detailed model; cycles carry a bounded estimation
// error (see the root fast-mode acceptance test). Detailed-only surfaces —
// pipetraces, cycle attribution, fault injection — are rejected under
// -fast because the windows are discontinuous.
//
// Exit codes: 0 success, 1 usage error, 2 input error, 3 internal error,
// 4 ran successfully but with a degraded (fallen-back) compile scheme.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"fpint/internal/analysis"
	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/faultinject"
	"fpint/internal/fperr"
	"fpint/internal/obs"
	"fpint/internal/obs/hostmetrics"
	"fpint/internal/obs/profile"
	"fpint/internal/obs/timeline"
	"fpint/internal/sim"
	"fpint/internal/uarch"
)

func main() {
	err := fpisimMain()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpisim: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

func fpisimMain() error {
	var (
		schemeName   = flag.String("scheme", "advanced", "partitioning scheme: none, basic, advanced, balanced")
		analysisMode = flag.String("analysis", "off", "consult the alias/value-range analyses to unpin provably safe load/store addresses: on or off")
		timing       = flag.Bool("timing", false, "run the cycle-level timing model")
		configName   = flag.String("config", "4way", "machine configuration: 4way or 8way")
		compare      = flag.Bool("compare", false, "run all three schemes and report speedups")
		workload     = flag.String("workload", "", "run a named built-in workload instead of a file")
		pipetrace    = flag.Int("pipetrace", 0, "with -timing: dump the pipeline journal of the first N instructions")
		traceJSON    = flag.String("pipetrace-json", "", "with -timing: write the pipeline journal as Chrome trace-event JSON to the given file")
		jsonOut      = flag.String("json", "", "write run metrics as deterministic JSON to the given file (\"-\" for stdout, suppressing normal output)")
		csvOut       = flag.String("csv", "", "write run metrics as CSV to the given file (\"-\" for stdout, suppressing normal output)")
		interproc    = flag.Bool("interproc", false, "enable the §6.6 interprocedural FP-argument extension")
		profileOut   = flag.Bool("profile", false, "print hot-function and hot-line cycle-attribution tables (implies -timing)")
		annotate     = flag.Bool("annotate", false, "print the source annotated with per-line cycles, offload fraction, and copy/dup overhead (implies -timing)")
		foldedOut    = flag.String("folded", "", "write folded-stack cycle attribution for flamegraph tooling to the given file (\"-\" for stdout; implies -timing)")
		pprofOut     = flag.String("pprof", "", "write a gzipped pprof protobuf profile to the given file (implies -timing)")
		injectSpec   = flag.String("inject-fault", "", "inject transient faults: \"seed=N,kind=K,rate=R\" (implies -timing)")
		faultTrace   = flag.Bool("fault-trace", false, "with -inject-fault: print the deterministic fault trace")
		hostMetrics  = flag.Bool("hostmetrics", false, "measure the simulator's own host-side cost (wall time, allocations, GC) around the run")
		fast         = flag.Bool("fast", false, "sampled-timing fast mode: periodic detailed windows instead of the full cycle-level run (implies -timing)")
		fastPeriod   = flag.Int("fast-period", 0, "with -fast: sampling period in units, one in N measured (0 = default)")
		fastWidth    = flag.Int("fast-width", 0, "with -fast: sampling-unit width in instructions (0 = default)")
		fastWarmup   = flag.Int("fast-warmup", 0, "with -fast: detailed warmup instructions before each measured unit (0 = default, negative = none)")
		fastSeed     = flag.Uint64("fast-seed", 1, "with -fast: sampling phase seed")
		timelineOut  = flag.Bool("timeline", false, "record a windowed phase timeline and print the per-phase table (implies -timing)")
		tlWidth      = flag.Int64("timeline-width", 0, "timeline window width in cycles (0 = default 1024)")
		tlCSV        = flag.String("timeline-csv", "", "write the plot-ready per-window timeline CSV to the given file (\"-\" for stdout; implies -timing)")
		tlJSON       = flag.String("timeline-json", "", "write the fpint-timeline/v1 JSON document to the given file (\"-\" for stdout; implies -timing)")
	)
	flag.Parse()

	var src, srcName string
	if *workload != "" {
		w := bench.Lookup(*workload)
		if w == nil {
			return fperr.New(fperr.ClassUsage, "unknown workload %q", *workload)
		}
		src = w.Src
		srcName = *workload + ".c"
	} else {
		if flag.NArg() != 1 {
			return fperr.New(fperr.ClassUsage, "usage: fpisim [flags] file.c  (or -workload NAME)")
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return fperr.Wrap(fperr.ClassInput, err)
		}
		src = string(data)
		srcName = flag.Arg(0)
	}

	cfg := uarch.Config4Way()
	if *configName == "8way" {
		cfg = uarch.Config8Way()
	}

	schemes := map[string]codegen.Scheme{
		"none": codegen.SchemeNone, "basic": codegen.SchemeBasic,
		"advanced": codegen.SchemeAdvanced, "balanced": codegen.SchemeBalanced,
	}
	sch, ok := schemes[*schemeName]
	if !ok {
		return fperr.New(fperr.ClassUsage, "unknown scheme %q", *schemeName)
	}

	useAnalysis, err := analysis.ParseOnOff(*analysisMode)
	if err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	opts := codegen.Options{InterprocFPArgs: *interproc, Analysis: useAnalysis}

	var faultCfg *faultinject.Config
	if *injectSpec != "" {
		fc, err := faultinject.ParseSpec(*injectSpec)
		if err != nil {
			return fperr.Wrap(fperr.ClassUsage, err)
		}
		faultCfg = &fc
	}

	if !*timing && !*compare && !*fast && faultCfg == nil && (*pipetrace > 0 || *traceJSON != "") {
		fmt.Fprintln(os.Stderr, "fpisim: -pipetrace/-pipetrace-json require -timing; no trace will be produced")
	}

	var sample uarch.SampleConfig
	if *fast {
		sample = uarch.DefaultSampleConfig()
		if *fastPeriod > 0 {
			sample.Period = *fastPeriod
		}
		if *fastWidth > 0 {
			sample.Width = *fastWidth
		}
		if *fastWarmup != 0 {
			sample.Warmup = *fastWarmup
		}
		sample.Seed = *fastSeed
		switch {
		case *pipetrace > 0 || *traceJSON != "":
			return fperr.New(fperr.ClassUsage, "-fast cannot produce a pipeline trace: the detailed windows are discontinuous")
		case *profileOut || *annotate || *foldedOut != "" || *pprofOut != "":
			return fperr.New(fperr.ClassUsage, "-fast does not support cycle attribution (-profile/-annotate/-folded/-pprof); use the detailed model")
		case faultCfg != nil:
			return fperr.New(fperr.ClassUsage, "-fast does not support fault injection; use the detailed model")
		}
	}

	if *compare {
		var baseCycles int64
		for _, name := range []string{"none", "basic", "advanced"} {
			r := runConfig{cfg: cfg, timing: true, faultCfg: faultCfg, fast: *fast, sample: sample}
			cycles, offl, err := run(src, schemes[name], opts, r)
			if err != nil {
				return err
			}
			if name == "none" {
				baseCycles = cycles
				fmt.Printf("%-10s cycles=%-10d offload=%4.1f%%\n", name, cycles, offl*100)
				continue
			}
			fmt.Printf("%-10s cycles=%-10d offload=%4.1f%%  speedup=%+.1f%%\n",
				name, cycles, offl*100, 100*(float64(baseCycles)/float64(cycles)-1))
		}
		return nil
	}
	rc := runConfig{
		cfg: cfg, timing: *timing, pipetrace: *pipetrace,
		traceJSON: *traceJSON, jsonOut: *jsonOut, csvOut: *csvOut,
		profile: *profileOut, annotate: *annotate,
		foldedOut: *foldedOut, pprofOut: *pprofOut,
		srcName: srcName, faultCfg: faultCfg, faultTrace: *faultTrace,
		hostMetrics: *hostMetrics, fast: *fast, sample: sample,
		timeline: *timelineOut, tlWidth: *tlWidth, tlCSV: *tlCSV, tlJSON: *tlJSON,
	}
	if rc.wantProfile() || rc.faultCfg != nil || rc.fast || rc.wantTimeline() {
		rc.timing = true // attribution, fault injection, sampling, and timelines need the cycle-level model
	}
	_, _, err = run(src, sch, opts, rc)
	return err
}

type runConfig struct {
	cfg         uarch.Config
	timing      bool
	pipetrace   int
	traceJSON   string
	jsonOut     string
	csvOut      string
	profile     bool
	annotate    bool
	foldedOut   string
	pprofOut    string
	srcName     string
	faultCfg    *faultinject.Config
	faultTrace  bool
	hostMetrics bool
	fast        bool
	sample      uarch.SampleConfig
	timeline    bool
	tlWidth     int64
	tlCSV       string
	tlJSON      string
}

// defaultTimelineWidth is the window width (in cycles) used when
// -timeline-width is 0.
const defaultTimelineWidth = 1024

// wantTimeline reports whether any output needs the flight recorder.
func (rc *runConfig) wantTimeline() bool {
	return rc.timeline || rc.tlCSV != "" || rc.tlJSON != ""
}

// timelineWidth resolves the recorder's window width.
func (rc *runConfig) timelineWidth() int64 {
	if rc.tlWidth > 0 {
		return rc.tlWidth
	}
	return defaultTimelineWidth
}

// wantProfile reports whether any output needs per-PC cycle attribution.
func (rc *runConfig) wantProfile() bool {
	return rc.profile || rc.annotate || rc.foldedOut != "" || rc.pprofOut != ""
}

// quiet reports whether human-readable output is suppressed (a metrics or
// profile document is being streamed to stdout instead).
func (rc *runConfig) quiet() bool {
	return rc.jsonOut == "-" || rc.csvOut == "-" || rc.foldedOut == "-"
}

func run(src string, sch codegen.Scheme, opts codegen.Options, rc runConfig) (int64, float64, error) {
	opts.Scheme = sch
	if rc.traceJSON != "" {
		// A traced job carries the compiler's pass spans alongside the
		// simulation tracks, making one unified trace per compile+simulate.
		opts.PassLog = &obs.PassLog{}
	}
	res, _, err := codegen.CompileSourceWithFallback(src, opts)
	if err != nil {
		return 0, 0, err
	}
	if res.Fallback != nil {
		fmt.Fprintf(os.Stderr, "fpisim: warning: %s scheme failed, degraded to %s\n",
			res.Fallback.Requested, res.Fallback.Used)
	}

	m := sim.New(res.Prog)
	var p *uarch.Pipeline
	var fm *uarch.Machine
	var journal *uarch.Journal
	var cycleProf *uarch.CycleProfile
	var plan *faultinject.Plan
	var rec *uarch.TimelineRecorder
	if rc.timing && rc.fast {
		fm = uarch.NewMachine(rc.cfg)
		if rc.wantTimeline() {
			fm.SetTimelineWidth(rc.timelineWidth())
		}
	} else if rc.timing {
		p = uarch.NewPipeline(rc.cfg)
		limit := rc.pipetrace
		if rc.traceJSON != "" && limit == 0 {
			limit = 1 << 20
		}
		if limit > 0 {
			journal = p.AttachJournal(limit)
		}
		if rc.wantProfile() {
			cycleProf = p.AttachProfile()
		}
		if rc.faultCfg != nil {
			plan = faultinject.NewPlan(*rc.faultCfg)
			p.AttachFaults(plan)
		}
		if rc.wantTimeline() || rc.traceJSON != "" {
			// A Perfetto trace gets counter tracks even without -timeline.
			rec = p.AttachTimeline(rc.timelineWidth())
		}
		m.Trace = p.Feed
	}
	// The measured region is the simulation proper — functional run plus
	// timing-model drain — excluding compilation and report rendering, so
	// the numbers match what the run-record store gates on.
	var out *sim.Result
	var st uarch.Stats
	var sst uarch.SampledStats
	var runErr error
	simulate := func() {
		if fm != nil {
			out, sst, runErr = fm.RunSampled(res.Prog, rc.sample)
			st = sst.Stats
			return
		}
		out, runErr = m.Run()
		if runErr == nil && rc.timing {
			st = p.Finish()
		}
	}
	var hostSample hostmetrics.Sample
	if rc.hostMetrics {
		hostSample = hostmetrics.Measure(simulate)
	} else {
		simulate()
	}
	if runErr != nil {
		return 0, 0, fperr.Wrap(fperr.ClassInput, runErr)
	}

	// Build the timeline document (and its phases) once for every surface
	// that needs it: trace counter tracks, JSON/CSV exports, the registry
	// envelope, and the human phase table.
	var tl *timeline.Timeline
	var phases []timeline.Phase
	if rec != nil {
		tl = rec.Build(rc.srcName, rc.cfg)
	} else if fm != nil && rc.wantTimeline() {
		tl = fm.Timeline(rc.srcName)
		if tl != nil && !sst.Exact {
			tl.Estimated = true
			tl.SampledFraction = sst.SampledFraction
		}
	}
	if tl != nil {
		phases = tl.Segment(timeline.DefaultSegConfig())
	}

	if journal != nil && rc.traceJSON != "" {
		// One unified trace: per-instruction spans (pid 1), timeline
		// counter tracks (pid 1), compiler pass spans (pid 2).
		events := journal.TraceEvents()
		if tl != nil {
			events = append(events, tl.CounterEvents(1)...)
		}
		events = append(events, opts.PassLog.TraceEvents(2)...)
		obs.SortEventsByTs(events)
		err := writeTo(rc.traceJSON, func(w io.Writer) error {
			return obs.WriteTrace(w, events)
		})
		if err != nil {
			return 0, 0, fperr.Wrap(fperr.ClassInput, err)
		}
	}
	if tl != nil && rc.tlJSON != "" {
		if err := writeTo(rc.tlJSON, tl.WriteJSON); err != nil {
			return 0, 0, fperr.Wrap(fperr.ClassInput, err)
		}
	}
	if tl != nil && rc.tlCSV != "" {
		if err := writeTo(rc.tlCSV, tl.WriteCSV); err != nil {
			return 0, 0, fperr.Wrap(fperr.ClassInput, err)
		}
	}
	if cycleProf != nil {
		pr := profile.Build(res.Prog, cycleProf)
		if rc.foldedOut != "" {
			err := writeTo(rc.foldedOut, func(w io.Writer) error {
				profile.WriteFolded(w, pr)
				return nil
			})
			if err != nil {
				return 0, 0, fperr.Wrap(fperr.ClassInput, err)
			}
		}
		if rc.pprofOut != "" {
			err := writeTo(rc.pprofOut, func(w io.Writer) error {
				return profile.WritePprof(w, pr, rc.srcName)
			})
			if err != nil {
				return 0, 0, fperr.Wrap(fperr.ClassInput, err)
			}
		}
		if rc.profile && !rc.quiet() {
			fmt.Printf("=== hot functions (%s, %s) ===\n", sch, rc.cfg.Name)
			profile.WriteHotFuncs(os.Stdout, pr, 0)
			fmt.Printf("=== hot lines ===\n")
			profile.WriteHotLines(os.Stdout, pr, 20)
		}
		if rc.annotate && !rc.quiet() {
			fmt.Printf("=== annotated source (%s, %s) ===\n", sch, rc.cfg.Name)
			profile.WriteAnnotated(os.Stdout, pr, src)
		}
	}
	if rc.jsonOut != "" || rc.csvOut != "" {
		reg := obs.NewRegistry()
		reg.Gauge(obs.MetricRunExit).Set(float64(out.Ret))
		out.Stats.AddTo(reg, obs.PrefixSim)
		if rc.timing {
			st.AddTo(reg, obs.PrefixUarch)
		}
		if rc.fast {
			reg.Gauge(obs.PrefixUarch + obs.MetricFastWindows).Set(float64(sst.Windows))
			reg.Gauge(obs.PrefixUarch + obs.MetricFastMeasuredInstructions).Set(float64(sst.MeasuredInstructions))
			reg.Gauge(obs.PrefixUarch + obs.MetricFastMeasuredCycles).Set(float64(sst.MeasuredCycles))
			reg.Gauge(obs.PrefixUarch + obs.MetricFastSampledFraction).Set(sst.SampledFraction)
			exact := 0.0
			if sst.Exact {
				exact = 1
			}
			reg.Gauge(obs.PrefixUarch + obs.MetricFastExact).Set(exact)
		}
		if tl != nil {
			reg.Gauge(obs.PrefixTimeline + obs.MetricTimelineWindows).Set(float64(len(tl.Windows)))
			reg.Gauge(obs.PrefixTimeline + obs.MetricTimelineWindowWidth).Set(float64(tl.WindowWidth))
			estimated := 0.0
			if tl.Estimated {
				estimated = 1
			}
			reg.Gauge(obs.PrefixTimeline + obs.MetricTimelineEstimated).Set(estimated)
			reg.Gauge(obs.PrefixPhase + obs.MetricPhaseCount).Set(float64(len(phases)))
		}
		if rc.hostMetrics {
			hostSample.AddTo(reg, obs.PrefixHost)
			if rc.timing {
				reg.Gauge(obs.PrefixHost + obs.MetricHostSimsPerSec).Set(hostmetrics.SimsPerSec(st.Cycles, hostSample.WallNS))
			}
		}
		if rc.jsonOut != "" {
			if err := writeTo(rc.jsonOut, reg.WriteJSON); err != nil {
				return 0, 0, fperr.Wrap(fperr.ClassInput, err)
			}
		}
		if rc.csvOut != "" {
			if err := writeTo(rc.csvOut, reg.WriteCSV); err != nil {
				return 0, 0, fperr.Wrap(fperr.ClassInput, err)
			}
		}
	}
	if rc.quiet() {
		return st.Cycles, out.Stats.OffloadFraction(), res.DegradedError()
	}

	if !rc.timing {
		fmt.Print(out.Output)
		fmt.Printf("; exit=%d dynamic=%d offload=%.1f%% (INT=%d FP=%d FPa=%d)\n",
			out.Ret, out.Stats.Total, 100*out.Stats.OffloadFraction(),
			out.Stats.BySubsys[0], out.Stats.BySubsys[1], out.Stats.BySubsys[2])
		if rc.hostMetrics {
			fmt.Printf("; host: %s\n", hostSample)
		}
		return 0, out.Stats.OffloadFraction(), res.DegradedError()
	}
	if journal != nil && rc.pipetrace > 0 {
		fmt.Print(journal.String())
	}
	fmt.Print(out.Output)
	fmt.Printf("; exit=%d dynamic=%d cycles=%d IPC=%.2f offload=%.1f%%\n",
		out.Ret, out.Stats.Total, st.Cycles, st.IPC(), 100*out.Stats.OffloadFraction())
	fmt.Printf(";   bpred acc=%.3f  icache miss=%.4f  dcache miss=%.4f  int-idle/fpa-busy=%.3f\n",
		1-float64(st.BpredMispredicts)/float64(max64(st.BpredLookups, 1)),
		st.ICacheMissRate, st.DCacheMissRate,
		float64(st.IntIdleFPaBusy)/float64(max64(st.Cycles, 1)))
	fmt.Printf(";   issue-active=%d stall=%d (accounting error=%d)\n",
		st.IssueActiveCycles, st.TotalStallCycles(), st.StallAccountingError())
	if rc.fast {
		fmt.Printf(";   fast mode: windows=%d measured=%d/%d instrs (%.1f%% of stream) exact=%v\n",
			sst.Windows, sst.MeasuredInstructions, out.Stats.Total,
			100*sst.SampledFraction, sst.Exact)
	}
	if rc.hostMetrics {
		fmt.Printf(";   host: %s sims/sec=%.3g\n",
			hostSample, hostmetrics.SimsPerSec(st.Cycles, hostSample.WallNS))
	}
	if plan != nil {
		printFaultReport(plan, st)
		if rc.faultTrace {
			fmt.Print(plan.TraceString())
		}
	}
	if rc.timeline && tl != nil {
		printPhases(tl, phases, sch, rc.cfg.Name)
	}
	return st.Cycles, out.Stats.OffloadFraction(), res.DegradedError()
}

// printPhases renders the segmenter's phase table.
func printPhases(tl *timeline.Timeline, phases []timeline.Phase, sch codegen.Scheme, cfgName string) {
	mode := ""
	if tl.Estimated {
		mode = ", estimated from sampled windows"
	}
	fmt.Printf("=== phases (%s, %s; %d windows of %d cycles%s) ===\n",
		sch, cfgName, len(tl.Windows), tl.WindowWidth, mode)
	fmt.Printf("%3s  %-11s %12s %7s %8s %8s  %s\n",
		"id", "windows", "cycles", "ipc", "fpa-occ", "offload", "dominant-stall")
	for _, p := range phases {
		fmt.Printf("%3d  %4d-%-6d %12d %7.2f %8.3f %7.1f%%  %s (%.1f%%)\n",
			p.ID, p.FirstWindow, p.LastWindow, p.Cycles, p.IPC, p.FPaOcc,
			100*p.OffloadRatio, p.DominantStall, 100*p.DominantStallFrac)
	}
}

// printFaultReport summarizes the injected-fault trace per kind.
func printFaultReport(plan *faultinject.Plan, st uarch.Stats) {
	sum := plan.Summarize()
	fmt.Printf(";   faults injected=%d recovery-cycles=%d fetch-stalls=%d (seed=%d rate=%g)\n",
		sum.Injected, sum.RecoveryCycles, st.FetchFaultStalls,
		plan.Config().Seed, plan.Config().Rate)
	kinds := make([]string, 0, len(sum.ByKind))
	for k := range sum.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf(";     %-14s %d\n", k, sum.ByKind[k])
	}
}

// writeTo streams enc to path, with "-" meaning stdout.
func writeTo(path string, enc func(w io.Writer) error) error {
	if path == "-" {
		return enc(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := enc(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
