// Command fpifuzz drives the differential-testing subsystem from the
// command line: it generates seeded random programs, cross-checks the IR
// interpreter against compiled code under every partition scheme (and,
// with -timing, the cycle-level model on both Table 1 machines), reduces
// any failure to a minimal reproducer, and writes it to -out.
//
// A sweep is fully deterministic in its flags, so CI runs
//
//	fpifuzz -n 200 -seed 1
//
// as a reproducible semantics audit of the whole pipeline.
//
// -inject plants a known partitioner bug (a component assignment flipped
// into FPa without its mandated copy) to demonstrate end-to-end that the
// oracle catches miscompiles and the reducer shrinks them.
//
// -fast additionally runs every timed scheme case through the
// sampled-timing fast mode and asserts fast-mode fidelity: functional
// output bit-identical to the reference and a closed extrapolated stall
// ledger. -inject-fast plants a fast-mode divergence (a corrupted sampled
// exit value) to demonstrate that the fast oracle catches it, persists it
// as a crasher with a `// fast: on` header, and replays it.
//
// -optimal (on by default) adds the exact branch-and-bound partition
// oracle as a scheme case: it must stay bit-exact with the reference and
// its profit must dominate the advanced scheme's. Crashers found with it
// carry a `// scheme: optimal` header and replay through the same case.
//
// -faults additionally runs every timed scheme case under seeded
// transient-fault injection (rate -fault-rate) and asserts that each
// detected-and-recovered run still produces architecturally correct output
// with a closed stall ledger and cycle profile.
//
// Exit codes: 0 clean sweep, 1 usage error, 2 input error, 3 the sweep
// found failures (an internal semantics bug).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpint/internal/analysis"
	"fpint/internal/difftest"
	"fpint/internal/faultinject"
	"fpint/internal/fperr"
)

func main() {
	err := fpifuzzMain()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpifuzz: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

func fpifuzzMain() error {
	var (
		n            = flag.Int("n", 100, "number of programs to generate and check")
		seed         = flag.Int64("seed", 1, "first seed; program i uses seed+i")
		analysisMode = flag.String("analysis", "on", "also run the analysis-sharpened basic/advanced scheme cases: on or off")
		stmts        = flag.Int("stmts", 0, "statement budget per program (0 = default)")
		traps        = flag.Bool("traps", false, "allow unguarded division (programs may trap; engines must agree)")
		timing       = flag.Bool("timing", true, "also drive the cycle-level model on 4-way and 8-way configs")
		optimal      = flag.Bool("optimal", true, "also run the exact branch-and-bound oracle scheme case")
		reduce       = flag.Bool("reduce", true, "reduce failures to minimal reproducers")
		out          = flag.String("out", "testdata/crashers", "directory for reproducer files")
		inject       = flag.Bool("inject", false, "plant a partitioner bug (flipped component assignment) to demo the oracle")
		fast         = flag.Bool("fast", false, "also check the sampled-timing fast mode on every timed case (requires -timing)")
		injectFast   = flag.Bool("inject-fast", false, "plant a fast-mode divergence to demo the fast oracle (requires -fast)")
		faults       = flag.Bool("faults", false, "run timed cases under seeded transient-fault injection (requires -timing)")
		faultRate    = flag.Float64("fault-rate", 0.002, "with -faults: per-instruction fault probability")
		verbose      = flag.Bool("v", false, "log every failure in full")
	)
	flag.Parse()

	gcfg := difftest.DefaultGenConfig()
	if *stmts > 0 {
		gcfg.MaxStmts = *stmts
	}
	gcfg.Traps = *traps

	o := difftest.DefaultOptions()
	o.Timing = *timing
	o.Optimal = *optimal
	useAnalysis, err := analysis.ParseOnOff(*analysisMode)
	if err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	o.Analysis = useAnalysis
	if *inject {
		o.PartitionHook = difftest.InjectFlip
	}
	if *fast {
		if !*timing {
			return fperr.New(fperr.ClassUsage, "-fast requires -timing")
		}
		o.FastTiming = true
	}
	if *injectFast {
		if !*fast {
			return fperr.New(fperr.ClassUsage, "-inject-fast requires -fast")
		}
		o.FastHook = difftest.InjectFastSkew
	}
	if *faults {
		if !*timing {
			return fperr.New(fperr.ClassUsage, "-faults requires -timing")
		}
		if *faultRate <= 0 || *faultRate > 1 {
			return fperr.New(fperr.ClassUsage, "-fault-rate %g outside (0,1]", *faultRate)
		}
		o.Faults = &faultinject.Config{Seed: *seed, Kind: faultinject.KindAny, Rate: *faultRate}
	}

	res := difftest.Sweep(*seed, *n, gcfg, o, *reduce)
	fmt.Printf("fpifuzz: %d checked, %d skipped, %d failures (seeds %d..%d)\n",
		res.Ran, res.Skipped, len(res.Failures), *seed, *seed+int64(*n)-1)

	for _, f := range res.Failures {
		fmt.Printf("  seed %d: %v\n", f.Seed, f.Err)
		if f.Reduced != "" {
			fmt.Printf("    reduced to %d lines\n", strings.Count(f.Reduced, "\n"))
		}
		if *verbose {
			body := f.Reduced
			if body == "" {
				body = f.Src
			}
			fmt.Println(indent(body))
		}
		path, err := difftest.WriteCrasher(*out, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpifuzz: writing reproducer: %v\n", err)
			continue
		}
		fmt.Printf("    reproducer: %s\n", path)
	}
	if len(res.Failures) > 0 {
		return fperr.New(fperr.ClassInternal, "%d of %d programs failed the oracle", len(res.Failures), res.Ran)
	}
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    | " + lines[i]
	}
	return strings.Join(lines, "\n")
}
