// Command fpifuzz drives the differential-testing subsystem from the
// command line: it generates seeded random programs, cross-checks the IR
// interpreter against compiled code under every partition scheme (and,
// with -timing, the cycle-level model on both Table 1 machines), reduces
// any failure to a minimal reproducer, and writes it to -out.
//
// A sweep is fully deterministic in its flags, so CI runs
//
//	fpifuzz -n 200 -seed 1
//
// as a reproducible semantics audit of the whole pipeline.
//
// -inject plants a known partitioner bug (a component assignment flipped
// into FPa without its mandated copy) to demonstrate end-to-end that the
// oracle catches miscompiles and the reducer shrinks them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpint/internal/difftest"
)

func main() {
	var (
		n       = flag.Int("n", 100, "number of programs to generate and check")
		seed    = flag.Int64("seed", 1, "first seed; program i uses seed+i")
		stmts   = flag.Int("stmts", 0, "statement budget per program (0 = default)")
		traps   = flag.Bool("traps", false, "allow unguarded division (programs may trap; engines must agree)")
		timing  = flag.Bool("timing", true, "also drive the cycle-level model on 4-way and 8-way configs")
		reduce  = flag.Bool("reduce", true, "reduce failures to minimal reproducers")
		out     = flag.String("out", "testdata/crashers", "directory for reproducer files")
		inject  = flag.Bool("inject", false, "plant a partitioner bug (flipped component assignment) to demo the oracle")
		verbose = flag.Bool("v", false, "log every failure in full")
	)
	flag.Parse()

	gcfg := difftest.DefaultGenConfig()
	if *stmts > 0 {
		gcfg.MaxStmts = *stmts
	}
	gcfg.Traps = *traps

	o := difftest.DefaultOptions()
	o.Timing = *timing
	if *inject {
		o.PartitionHook = difftest.InjectFlip
	}

	res := difftest.Sweep(*seed, *n, gcfg, o, *reduce)
	fmt.Printf("fpifuzz: %d checked, %d skipped, %d failures (seeds %d..%d)\n",
		res.Ran, res.Skipped, len(res.Failures), *seed, *seed+int64(*n)-1)

	for _, f := range res.Failures {
		fmt.Printf("  seed %d: %v\n", f.Seed, f.Err)
		if f.Reduced != "" {
			fmt.Printf("    reduced to %d lines\n", strings.Count(f.Reduced, "\n"))
		}
		if *verbose {
			body := f.Reduced
			if body == "" {
				body = f.Src
			}
			fmt.Println(indent(body))
		}
		path, err := difftest.WriteCrasher(*out, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpifuzz: writing reproducer: %v\n", err)
			continue
		}
		fmt.Printf("    reproducer: %s\n", path)
	}
	if len(res.Failures) > 0 {
		os.Exit(1)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    | " + lines[i]
	}
	return strings.Join(lines, "\n")
}
