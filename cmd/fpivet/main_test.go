package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes files (rel path → contents) under a temp root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// The repo itself must be fpivet-clean: this is the same invariant CI
// enforces with `go run ./cmd/fpivet`, pinned here so a violation fails
// `go test ./...` too.
func TestRepoIsClean(t *testing.T) {
	findings, err := LintTree(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("lint repo: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Msg)
	}
}

func TestMetricLiteralRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

const a = "uarch.cycles"

var b = map[string]int{"service.jobs": 1}

// A comment saying "uarch.cycles" is fine; only string literals count.
var ok = "uarchitecture" // no dot — not the namespace
`,
		// The names file itself is exempt: it is where the literals live.
		"internal/obs/names.go": `package obs

const PrefixUarch = "uarch."
const PrefixService = "service."
`,
	})
	findings, err := LintTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Code != "metric-literal" {
			t.Errorf("finding %v has code %q, want metric-literal", f.Pos, f.Code)
		}
		if !strings.HasSuffix(f.Pos.Filename, filepath.FromSlash("bad/bad.go")) {
			t.Errorf("finding in %s, want bad/bad.go", f.Pos.Filename)
		}
	}
	if !strings.Contains(findings[0].Msg, `"uarch.cycles"`) || !strings.Contains(findings[1].Msg, `"service.jobs"`) {
		t.Errorf("messages do not name the offending literals:\n%v", findings)
	}
}

func TestRawExitRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"main.go": `package main

import (
	"os"

	"fpint/internal/fperr"
)

func main() {
	if bad() {
		os.Exit(1)
	}
	os.Exit(fperr.ExitCode(run()))
}
`,
	})
	findings, err := LintTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the raw os.Exit(1):\n%v", len(findings), findings)
	}
	if findings[0].Code != "raw-exit" || findings[0].Pos.Line != 11 {
		t.Errorf("got %s at line %d, want raw-exit at line 11", findings[0].Code, findings[0].Pos.Line)
	}
}

// testdata trees hold mini-C fixtures and deliberately broken sources;
// fpivet must not descend into them.
func TestSkipsTestdata(t *testing.T) {
	root := writeTree(t, map[string]string{
		"testdata/fixture.go": `package fixture
var x = "uarch.cycles"
`,
		"ok.go": `package ok
`,
	})
	findings, err := LintTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("findings inside testdata should be skipped:\n%v", findings)
	}
}

// An unparseable file is an input error, not a crash and not a silent skip.
func TestParseErrorIsInputError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"broken.go": "package broken\nfunc {",
	})
	if _, err := LintTree(root); err == nil {
		t.Fatal("expected an error for unparseable source")
	}
}
