// Command fpivet is the repo's own micro-analyzer: a go/analysis-style
// lint (stdlib go/parser + go/ast only, so it runs in CI without any
// dependency) enforcing two conventions the compiler cannot:
//
//   - Metric-name hygiene: no string literal starting with "uarch." or
//     "service." outside internal/obs/names.go. Those prefixes namespace
//     the exported metric registries; spelling them inline re-introduces
//     exactly the one-literal-at-a-time drift internal/obs/names.go
//     exists to stop. Build the name from the obs.Prefix*/Metric*
//     constants instead.
//
//   - Exit-code hygiene: every os.Exit argument must be a direct
//     fperr.ExitCode(...) call. The fperr class taxonomy is the single
//     source of process exit codes (0 success … 6 unavailable); a raw
//     os.Exit(1) invents an undocumented code and bypasses the
//     classification contract every command documents.
//
// Usage:
//
//	fpivet [dir]        # lint the Go tree rooted at dir (default ".")
//
// Exit codes: 0 clean, 1 usage error, 2 input error (unparseable file),
// 3 findings.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"fpint/internal/fperr"
	"fpint/internal/obs"
)

// namesFile is the one file allowed to spell the namespaced metric
// literals: it defines them.
const namesFile = "internal/obs/names.go"

// badPrefixes are the registry namespaces owned by internal/obs/names.go.
// Built from the constants themselves so fpivet passes its own lint.
var badPrefixes = []string{obs.PrefixUarch, obs.PrefixService}

// Finding is one fpivet diagnostic.
type Finding struct {
	Pos  token.Position
	Code string
	Msg  string
}

func main() {
	err := fpivetMain(os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpivet: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

func fpivetMain(w *os.File) error {
	flag.Parse()
	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		root = flag.Arg(0)
	default:
		return fperr.New(fperr.ClassUsage, "usage: fpivet [dir]")
	}
	findings, err := LintTree(root)
	if err != nil {
		return err
	}
	for _, f := range findings {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Msg)
	}
	if len(findings) > 0 {
		return fperr.New(fperr.ClassInternal, "%d finding(s)", len(findings))
	}
	return nil
}

// LintTree walks every .go file under root (skipping testdata and hidden
// directories) and returns the findings in deterministic order.
func LintTree(root string) ([]Finding, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, fperr.Wrap(fperr.ClassInput, err)
	}
	sort.Strings(files)
	var findings []Finding
	for _, path := range files {
		fs, err := LintFile(root, path)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// LintFile parses one file and applies both checks. root anchors the
// names-file exemption so fpivet works from any directory.
func LintFile(root, path string) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, fperr.Wrapf(fperr.ClassInput, err, "%s", path)
	}
	rel, rerr := filepath.Rel(root, path)
	if rerr != nil {
		rel = path
	}
	isNamesFile := filepath.ToSlash(rel) == namesFile
	var findings []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if isNamesFile || n.Kind != token.STRING {
				return true
			}
			val, err := strconv.Unquote(n.Value)
			if err != nil {
				return true
			}
			for _, p := range badPrefixes {
				if strings.HasPrefix(val, p) {
					findings = append(findings, Finding{
						Pos:  fset.Position(n.Pos()),
						Code: "metric-literal",
						Msg: fmt.Sprintf("string literal %q hard-codes the %q metric namespace; build it from the constants in %s",
							val, p, namesFile),
					})
					break
				}
			}
		case *ast.CallExpr:
			if !isCall(n, "os", "Exit") {
				return true
			}
			if len(n.Args) == 1 {
				if arg, ok := n.Args[0].(*ast.CallExpr); ok && isCall(arg, "fperr", "ExitCode") {
					return true
				}
			}
			findings = append(findings, Finding{
				Pos:  fset.Position(n.Pos()),
				Code: "raw-exit",
				Msg:  "os.Exit must take fperr.ExitCode(err) so every process exit code comes from the fperr class taxonomy",
			})
		}
		return true
	})
	return findings, nil
}

// isCall reports whether e is a selector call pkg.name(...).
func isCall(e *ast.CallExpr, pkg, name string) bool {
	sel, ok := e.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg && sel.Sel.Name == name
}
