package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden fpilint reports")

func testdataFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	sort.Strings(files)
	return files
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("..", "..", "testdata", "golden", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: report differs from golden (run with -update after verifying)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestLintGoldenText locks the human-readable report over every testdata
// program to a golden file.
func TestLintGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := lintReport(testdataFiles(t), false, false, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fpilint.txt", buf.Bytes())
}

// TestLintGoldenJSON locks the SARIF-lite report and verifies it is
// byte-for-byte deterministic across runs.
func TestLintGoldenJSON(t *testing.T) {
	files := testdataFiles(t)
	var first bytes.Buffer
	if err := lintReport(files, true, false, &first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		var again bytes.Buffer
		if err := lintReport(files, true, false, &again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("fpilint -json output is not byte-deterministic (run %d differs)", i+2)
		}
	}
	checkGolden(t, "fpilint.json", first.Bytes())
}

// TestLintOracleGoldenText locks the -oracle report (partition-gap
// findings included) over every testdata program to a golden file.
func TestLintOracleGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := lintReport(testdataFiles(t), false, true, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fpilint.oracle.txt", buf.Bytes())
}

// TestLintOracleGoldenJSON locks the -oracle SARIF-lite report and
// verifies it is byte-for-byte deterministic across runs — the oracle's
// branch-and-bound search and memoization must not leak iteration order
// into the diagnostics.
func TestLintOracleGoldenJSON(t *testing.T) {
	files := testdataFiles(t)
	var first bytes.Buffer
	if err := lintReport(files, true, true, &first); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := lintReport(files, true, true, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("fpilint -oracle -json output is not byte-deterministic")
	}
	checkGolden(t, "fpilint.oracle.json", first.Bytes())
}

// TestFactsSmoke exercises the facts dump path.
func TestFactsSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := dumpFacts(&buf, filepath.Join("..", "..", "testdata", "sieve.c")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("safe:")) {
		t.Errorf("expected at least one safe address fact in sieve.c, got:\n%s", buf.String())
	}
}
