// Command fpilint is the static-analysis diagnostics driver: it runs the
// CFG, alias, and value-range analyses over mini-C sources and reports lint
// findings — unreachable blocks, dead stores to globals, division-by-zero
// candidates, out-of-bounds access candidates, and memory-traffic components
// the advanced partitioner's cost model rejects.
//
// Usage:
//
//	fpilint file.c...          # human-readable report
//	fpilint -json file.c...    # SARIF-lite JSON report (byte-deterministic)
//	fpilint -facts file.c      # dump the per-access analysis facts
//	fpilint -oracle file.c...  # add partition-gap findings: components where
//	                           # the greedy partitioner's profit falls short
//	                           # of the exact branch-and-bound optimum
//
// Structural lints (unreachable blocks) run on pre-optimization IR — the
// optimizer would delete the evidence. Value lints run on the same IR, with
// the analyses seeing through copies via reaching definitions. Findings do
// not fail the exit status: 0 means the analysis ran, 2 an input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fpint/internal/analysis"
	"fpint/internal/codegen"
	"fpint/internal/fperr"
	"fpint/internal/ir"
	"fpint/internal/irgen"
	"fpint/internal/lang"
)

func main() {
	err := fpilintMain(os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpilint: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

// lowerOnly runs parse → check → lower, stopping before the optimizer so
// structurally dead code is still visible to the lints.
func lowerOnly(src string) (*ir.Module, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if err := lang.Check(prog); err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	mod, err := irgen.Lower(prog)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return mod, nil
}

// lintCostRejects compiles the program with the advanced scheme (analysis
// on) and turns every cost-model-rejected component that would have needed
// copy traffic into a finding: the copies are legal but the cost model
// judged them unprofitable, which usually marks an int/float interface
// worth restructuring.
func lintCostRejects(src string) ([]analysis.Diag, error) {
	res, _, err := codegen.CompileSource(src, codegen.Options{
		Scheme: codegen.SchemeAdvanced, Analysis: true,
	})
	if err != nil {
		return nil, err
	}
	var ds []analysis.Diag
	names := make([]string, 0, len(res.Partitions))
	for name := range res.Partitions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := res.Partitions[name]
		if p == nil || p.Audit == nil {
			continue
		}
		for _, c := range p.Audit.Components {
			if c.Accepted || c.Transfers == 0 {
				continue
			}
			line := 0
			if n := p.G.Nodes[c.MinNode]; n.Instr != nil {
				line = n.Instr.Line
			}
			ds = append(ds, analysis.Diag{
				Fn:   name,
				Line: line,
				Code: analysis.CodeCostReject,
				Msg: fmt.Sprintf("offload candidate (weight %.0f) rejected: needs %d transfer(s), profit %.1f",
					c.Weight, c.Transfers, c.Profit),
			})
		}
	}
	return ds, nil
}

// lintPartitionGap compiles the program under the exact branch-and-bound
// partition oracle and reports every RDG component where the greedy
// (advanced) scheme left profit on the table — a concrete offload
// opportunity the §6.1 heuristic missed — and every component whose exact
// search was cut short, where optimality is merely uncertified.
func lintPartitionGap(src string) ([]analysis.Diag, error) {
	res, _, err := codegen.CompileSource(src, codegen.Options{
		Scheme: codegen.SchemeOptimal, Analysis: true,
	})
	if err != nil {
		return nil, err
	}
	var ds []analysis.Diag
	names := make([]string, 0, len(res.Oracle))
	for name := range res.Oracle {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep := res.Oracle[name]
		p := res.Partitions[name]
		if rep == nil || p == nil {
			continue
		}
		for _, c := range rep.Components {
			line := 0
			if n := p.G.Nodes[c.MinNode]; n.Instr != nil {
				line = n.Instr.Line
			}
			switch {
			case !c.Exact:
				ds = append(ds, analysis.Diag{
					Fn:   name,
					Line: line,
					Code: analysis.CodePartitionGap,
					Msg: fmt.Sprintf("component %d: optimality not certified (%s); greedy result kept at profit %.1f",
						c.Component, c.Reason, c.GreedyProfit),
				})
			case c.Gap() > 1e-9:
				ds = append(ds, analysis.Diag{
					Fn:   name,
					Line: line,
					Code: analysis.CodePartitionGap,
					Msg: fmt.Sprintf("greedy partition leaves profit %.1f on the table in component %d (greedy %.1f, optimal %.1f, %d flexible node(s))",
						c.Gap(), c.Component, c.GreedyProfit, c.OptimalProfit, c.FlexNodes),
				})
			}
		}
	}
	return ds, nil
}

func lintFile(path string, oracle bool) ([]analysis.Diag, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fperr.Wrap(fperr.ClassInput, err)
	}
	src := string(data)
	mod, err := lowerOnly(src)
	if err != nil {
		return nil, fperr.Wrap(fperr.ClassInput, err)
	}
	ds := analysis.LintModule(mod)
	costDs, err := lintCostRejects(src)
	if err != nil {
		return nil, fperr.Wrap(fperr.ClassInput, err)
	}
	ds = append(ds, costDs...)
	if oracle {
		gapDs, err := lintPartitionGap(src)
		if err != nil {
			return nil, fperr.Wrap(fperr.ClassInput, err)
		}
		ds = append(ds, gapDs...)
	}
	analysis.SortDiags(ds)
	return ds, nil
}

func dumpFacts(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	mod, err := lowerOnly(string(data))
	if err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	facts := analysis.AnalyzeModule(mod)
	for _, fn := range mod.Funcs {
		ff := facts.Funcs[fn.Name]
		fmt.Fprintf(w, "==== facts for %s ====\n", fn.Name)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpLoad && in.Op != ir.OpStore {
					continue
				}
				loc := ff.Aliases.Locs[in.ID]
				verdict := "pinned"
				if reason, ok := ff.SafeAddr(in.ID); ok {
					verdict = "safe: " + reason
				}
				fmt.Fprintf(w, "  line %-4d %-6v base=%-8s off=%-14s %s\n",
					in.Line, in.Op, loc.Base, loc.Off, verdict)
			}
		}
	}
	return nil
}

// sarifDoc is the SARIF-lite report: one run per input file, results in
// deterministic order, no timestamps or absolute paths.
type sarifDoc struct {
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    string        `json:"tool"`
	File    string        `json:"file"`
	Results []sarifResult `json:"results"`
}

type sarifResult struct {
	RuleID   string `json:"ruleId"`
	Message  string `json:"message"`
	Function string `json:"function"`
	Line     int    `json:"line"`
}

func fpilintMain(w io.Writer) error {
	var (
		jsonOut = flag.Bool("json", false, "emit the findings as a SARIF-lite JSON document")
		facts   = flag.Bool("facts", false, "dump per-access analysis facts instead of linting")
		oracle  = flag.Bool("oracle", false, "also run the exact partition oracle and report greedy-vs-optimal partition gaps")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		return fperr.New(fperr.ClassUsage, "usage: fpilint [-json|-facts|-oracle] file.c...")
	}

	if *facts {
		for _, path := range flag.Args() {
			if err := dumpFacts(w, path); err != nil {
				return err
			}
		}
		return nil
	}
	return lintReport(flag.Args(), *jsonOut, *oracle, w)
}

// lintReport lints each file and writes the combined report — plain text or
// the SARIF-lite document — to w.
func lintReport(paths []string, jsonOut, oracle bool, w io.Writer) error {
	doc := sarifDoc{Version: "fpilint/1"}
	total := 0
	for _, path := range paths {
		ds, err := lintFile(path, oracle)
		if err != nil {
			return err
		}
		total += len(ds)
		base := filepath.Base(path)
		if jsonOut {
			run := sarifRun{Tool: "fpilint", File: base, Results: []sarifResult{}}
			for _, d := range ds {
				run.Results = append(run.Results, sarifResult{
					RuleID: d.Code, Message: d.Msg, Function: d.Fn, Line: d.Line,
				})
			}
			doc.Runs = append(doc.Runs, run)
			continue
		}
		for _, d := range ds {
			fmt.Fprintf(w, "%s:%d: %s: %s [%s]\n", base, d.Line, d.Code, d.Msg, d.Fn)
		}
	}
	if jsonOut {
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return fperr.Wrap(fperr.ClassInternal, err)
		}
		data = append(data, '\n')
		if _, err := w.Write(data); err != nil {
			return fperr.Wrap(fperr.ClassInternal, err)
		}
		return nil
	}
	if total == 0 {
		fmt.Fprintln(w, "no findings")
	}
	return nil
}
