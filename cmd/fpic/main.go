// Command fpic is the compiler driver: it compiles a mini-C source file to
// the extended ISA, applying the selected partitioning scheme.
//
// Usage:
//
//	fpic [-scheme none|basic|advanced] [-dump-ir] [-dump-rdg] [-dump-partition] [-S] file.c
//	fpic -example          # compile the paper's Figure 3 gcc fragment
package main

import (
	"flag"
	"fmt"
	"os"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/core"
)

const exampleSrc = `
int regs_invalidated_by_call = 12297829382473034410;
int reg_tick[66];
int deleted;
void delete_equiv_reg(int regno) { deleted += regno; }
void invalidate_for_call() {
	for (int regno = 0; regno < 66; regno++) {
		if (regs_invalidated_by_call & (1 << regno)) {
			delete_equiv_reg(regno);
			if (reg_tick[regno] >= 0) reg_tick[regno]++;
		}
	}
}
int main() {
	for (int i = 0; i < 66; i++) reg_tick[i] = i - 3;
	invalidate_for_call();
	return deleted;
}
`

func main() {
	var (
		schemeName = flag.String("scheme", "advanced", "partitioning scheme: none, basic, advanced, balanced")
		dumpIR     = flag.Bool("dump-ir", false, "print the optimized IR")
		dumpRDG    = flag.Bool("dump-rdg", false, "print each function's register dependence graph")
		dumpPart   = flag.Bool("dump-partition", false, "print the partition assignment per RDG node")
		dumpDot    = flag.Bool("dot", false, "emit the RDG with partition coloring as Graphviz digraphs")
		asm        = flag.Bool("S", true, "print the generated assembly")
		example    = flag.Bool("example", false, "compile the built-in Figure 3 example")
		workload   = flag.String("workload", "", "compile a named built-in workload instead of a file")
		ocopy      = flag.Float64("ocopy", 4, "copy overhead o_copy (paper: 3-6)")
		odupl      = flag.Float64("odupl", 2, "duplicate overhead o_dupl (paper: 1.5-3)")
	)
	flag.Parse()

	var src string
	switch {
	case *example:
		src = exampleSrc
	case *workload != "":
		w := bench.Lookup(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "fpic: unknown workload %q\n", *workload)
			os.Exit(1)
		}
		src = w.Src
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: fpic [flags] file.c  (or -example / -workload NAME)")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpic: %v\n", err)
			os.Exit(1)
		}
		src = string(data)
	}

	var scheme codegen.Scheme
	switch *schemeName {
	case "none":
		scheme = codegen.SchemeNone
	case "basic":
		scheme = codegen.SchemeBasic
	case "advanced":
		scheme = codegen.SchemeAdvanced
	case "balanced":
		scheme = codegen.SchemeBalanced
	default:
		fmt.Fprintf(os.Stderr, "fpic: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpic: %v\n", err)
		os.Exit(1)
	}
	if *dumpIR {
		fmt.Println("==== optimized IR ====")
		fmt.Print(mod.String())
	}
	if *dumpRDG || *dumpPart || *dumpDot {
		for _, fn := range mod.Funcs {
			g := core.BuildGraph(fn, prof)
			if *dumpRDG {
				fmt.Print(g.String())
			}
			if *dumpDot {
				var p *core.Partition
				switch scheme {
				case codegen.SchemeBasic:
					p = core.BasicPartition(g)
				case codegen.SchemeAdvanced, codegen.SchemeBalanced:
					p = core.AdvancedPartition(g, core.CostParams{OCopy: *ocopy, ODupl: *odupl})
				}
				fmt.Print(core.DotGraph(g, p))
			}
			if *dumpPart && scheme != codegen.SchemeNone {
				var p *core.Partition
				if scheme == codegen.SchemeBasic {
					p = core.BasicPartition(g)
				} else {
					p = core.AdvancedPartition(g, core.CostParams{OCopy: *ocopy, ODupl: *odupl})
				}
				fmt.Printf("==== partition of %s (%s) ====\n", fn.Name, p.Scheme)
				for _, n := range g.Nodes {
					where := "FP "
					if n.Class != core.ClassFixedFP {
						where = p.Assign[n.ID].String()
					}
					extra := ""
					if p.CopyNodes[n.ID] {
						extra = " +copy"
					}
					if p.DupNodes[n.ID] {
						extra = " +dup"
					}
					if p.OutCopyNodes[n.ID] {
						extra += " +outcopy"
					}
					desc := "param"
					if n.Instr != nil {
						desc = n.Instr.String()
					}
					fmt.Printf("  n%-3d %-4s %-10s%s  %s\n", n.ID, where, n.Kind, extra, desc)
				}
			}
		}
	}

	res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme, Profile: prof,
		Cost: core.CostParams{OCopy: *ocopy, ODupl: *odupl}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpic: %v\n", err)
		os.Exit(1)
	}
	if *asm {
		fmt.Println("==== assembly ====")
		fmt.Print(res.Prog.Disassemble())
	}
	fmt.Printf("; scheme=%s  static instructions=%d\n", scheme, len(res.Prog.Insts))
	for _, name := range bench.SortedFuncNames(res.Stats) {
		st := res.Stats[name]
		fmt.Printf(";   %-24s %4d insts, %d spill slots (%d reloads, %d stores)\n",
			name, st.StaticInsts, st.SpillSlots, st.SpillLoads, st.SpillStores)
	}
}
