// Command fpic is the compiler driver: it compiles a mini-C source file to
// the extended ISA, applying the selected partitioning scheme.
//
// Usage:
//
//	fpic [-scheme none|basic|advanced] [-dump-ir] [-dump-rdg] [-dump-partition] [-S] [-lines] file.c
//	fpic -example          # compile the paper's Figure 3 gcc fragment
//	fpic -example -explain # per-component benefit/overhead/profit decisions
//	fpic -example -json -  # audit trail + pass log as JSON
//
// The compiler never crashes on a partitioner failure: every partition is
// checked by the static verifier, and a scheme that fails verification (or
// panics) degrades down the ladder — advanced → basic → conventional — with
// the fallback recorded in the audit trail and the -json document.
//
// Exit codes: 0 success, 1 usage error, 2 input error, 3 internal error,
// 4 compiled successfully but with a degraded (fallen-back) scheme.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpint/internal/analysis"
	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/fperr"
	"fpint/internal/ir"
	"fpint/internal/obs"
	"fpint/internal/obs/profile"
)

const exampleSrc = `
int regs_invalidated_by_call = 12297829382473034410;
int reg_tick[66];
int deleted;
void delete_equiv_reg(int regno) { deleted += regno; }
void invalidate_for_call() {
	for (int regno = 0; regno < 66; regno++) {
		if (regs_invalidated_by_call & (1 << regno)) {
			delete_equiv_reg(regno);
			if (reg_tick[regno] >= 0) reg_tick[regno]++;
		}
	}
}
int main() {
	for (int i = 0; i < 66; i++) reg_tick[i] = i - 3;
	invalidate_for_call();
	return deleted;
}
`

func main() {
	err := fpicMain()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpic: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

func fpicMain() error {
	var (
		schemeName   = flag.String("scheme", "advanced", "partitioning scheme: none, basic, advanced, balanced, optimal")
		analysisMode = flag.String("analysis", "off", "consult the alias/value-range analyses to unpin provably safe load/store addresses: on or off")
		dumpIR       = flag.Bool("dump-ir", false, "print the optimized IR")
		dumpRDG      = flag.Bool("dump-rdg", false, "print each function's register dependence graph")
		dumpPart     = flag.Bool("dump-partition", false, "print the partition assignment per RDG node")
		dumpDot      = flag.Bool("dot", false, "emit the RDG with partition coloring as Graphviz digraphs")
		asm          = flag.Bool("S", true, "print the generated assembly")
		example      = flag.Bool("example", false, "compile the built-in Figure 3 example")
		workload     = flag.String("workload", "", "compile a named built-in workload instead of a file")
		ocopy        = flag.Float64("ocopy", 4, "copy overhead o_copy (paper: 3-6)")
		odupl        = flag.Float64("odupl", 2, "duplicate overhead o_dupl (paper: 1.5-3)")
		calib        = flag.String("calib", "", "load fitted cost constants from a fpint-calib/v1 JSON document (fpibench -calibrate -calib-out), overriding -ocopy/-odupl")
		calibConfig  = flag.String("calib-config", "4-way", "with -calib: machine configuration whose fit to use")
		lines        = flag.Bool("lines", false, "print a line-annotated disassembly (PC, source line, subsystem, IR op)")
		explain      = flag.Bool("explain", false, "print the partition-decision audit trail per function")
		passes       = flag.Bool("passes", false, "print per-pass timing and IR instruction deltas")
		jsonOut      = flag.String("json", "", "write the audit trail, pass log, and per-function stats as JSON to the given file (\"-\" for stdout, suppressing normal output)")
	)
	flag.Parse()

	var src string
	switch {
	case *example:
		src = exampleSrc
	case *workload != "":
		w := bench.Lookup(*workload)
		if w == nil {
			return fperr.New(fperr.ClassUsage, "unknown workload %q", *workload)
		}
		src = w.Src
	default:
		if flag.NArg() != 1 {
			return fperr.New(fperr.ClassUsage, "usage: fpic [flags] file.c  (or -example / -workload NAME)")
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return fperr.Wrap(fperr.ClassInput, err)
		}
		src = string(data)
	}

	useAnalysis, err := analysis.ParseOnOff(*analysisMode)
	if err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}

	var scheme codegen.Scheme
	switch *schemeName {
	case "none":
		scheme = codegen.SchemeNone
	case "basic":
		scheme = codegen.SchemeBasic
	case "advanced":
		scheme = codegen.SchemeAdvanced
	case "balanced":
		scheme = codegen.SchemeBalanced
	case "optimal":
		scheme = codegen.SchemeOptimal
	default:
		return fperr.New(fperr.ClassUsage, "unknown scheme %q", *schemeName)
	}

	cost := core.CostParams{OCopy: *ocopy, ODupl: *odupl}
	if *calib != "" {
		f, err := os.Open(*calib)
		if err != nil {
			return fperr.Wrap(fperr.ClassInput, err)
		}
		doc, err := bench.LoadCalibration(f)
		f.Close()
		if err != nil {
			return fperr.Wrapf(fperr.ClassInput, err, "%s", *calib)
		}
		p, ok := doc.Params(*calibConfig)
		if !ok {
			return fperr.New(fperr.ClassInput, "%s: no fit for configuration %q", *calib, *calibConfig)
		}
		cost = p
	}

	quiet := *jsonOut == "-"
	var plog *obs.PassLog
	if *passes || *jsonOut != "" {
		plog = &obs.PassLog{}
	}

	mod, prof, err := codegen.FrontendPipelineObserved(src, plog)
	if err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	if *dumpIR {
		fmt.Println("==== optimized IR ====")
		fmt.Print(mod.String())
	}
	if *dumpRDG || *dumpPart || *dumpDot {
		var facts *analysis.Facts
		if useAnalysis {
			facts = analysis.AnalyzeModule(mod)
		}
		for _, fn := range mod.Funcs {
			var oracle core.AddrOracle
			if facts != nil {
				if ff := facts.Funcs[fn.Name]; ff != nil {
					oracle = ff
				}
			}
			g := core.BuildGraphWithOracle(fn, prof, oracle)
			if *dumpRDG {
				fmt.Print(g.String())
			}
			if *dumpDot {
				var p *core.Partition
				switch scheme {
				case codegen.SchemeBasic:
					p = core.BasicPartition(g)
				case codegen.SchemeAdvanced, codegen.SchemeBalanced:
					p = core.AdvancedPartition(g, cost)
				case codegen.SchemeOptimal:
					p, _ = core.OptimalPartition(g, cost, core.OracleLimits{}, nil)
				}
				fmt.Print(core.DotGraph(g, p))
			}
			if *dumpPart && scheme != codegen.SchemeNone {
				var p *core.Partition
				switch scheme {
				case codegen.SchemeBasic:
					p = core.BasicPartition(g)
				case codegen.SchemeOptimal:
					p, _ = core.OptimalPartition(g, cost, core.OracleLimits{}, nil)
				default:
					p = core.AdvancedPartition(g, cost)
				}
				fmt.Printf("==== partition of %s (%s) ====\n", fn.Name, p.Scheme)
				for _, n := range g.Nodes {
					where := "FP "
					if n.Class != core.ClassFixedFP {
						where = p.Assign[n.ID].String()
					}
					extra := ""
					if p.CopyNodes[n.ID] {
						extra = " +copy"
					}
					if p.DupNodes[n.ID] {
						extra = " +dup"
					}
					if p.OutCopyNodes[n.ID] {
						extra += " +outcopy"
					}
					desc := "param"
					if n.Instr != nil {
						desc = n.Instr.String()
					}
					fmt.Printf("  n%-3d %-4s %-10s%s  %s\n", n.ID, where, n.Kind, extra, desc)
				}
			}
		}
	}

	res, err := codegen.CompileWithFallback(mod, codegen.Options{Scheme: scheme, Profile: prof,
		Cost: cost, PassLog: plog, Analysis: useAnalysis})
	if err != nil {
		return err
	}
	if res.Fallback != nil {
		fmt.Fprintf(os.Stderr, "fpic: warning: %s scheme failed, degraded to %s\n",
			res.Fallback.Requested, res.Fallback.Used)
	}
	if *lines && !quiet {
		fmt.Println("==== line-annotated disassembly ====")
		profile.WriteListing(os.Stdout, res.Prog, func(op uint8) string { return ir.Op(op).String() })
	}
	if *explain && !quiet {
		for _, fn := range mod.Funcs {
			if p := res.Partitions[fn.Name]; p != nil && p.Audit != nil {
				fmt.Print(p.Audit.String())
			}
		}
	}
	if *passes && !quiet {
		fmt.Print(plog.String())
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(w io.Writer) error {
			return writeCompileJSON(w, scheme.String(), mod.Funcs, res, plog)
		}); err != nil {
			return fperr.Wrap(fperr.ClassInput, err)
		}
	}
	if quiet {
		return res.DegradedError()
	}
	if *asm {
		fmt.Println("==== assembly ====")
		fmt.Print(res.Prog.Disassemble())
	}
	fmt.Printf("; scheme=%s  static instructions=%d\n", scheme, len(res.Prog.Insts))
	for _, name := range bench.SortedFuncNames(res.Stats) {
		st := res.Stats[name]
		fmt.Printf(";   %-24s %4d insts, %d spill slots (%d reloads, %d stores)\n",
			name, st.StaticInsts, st.SpillSlots, st.SpillLoads, st.SpillStores)
	}
	return res.DegradedError()
}

// writeCompileJSON emits the -json compile report. The document itself
// lives in codegen (CompileReport) so the fpintd daemon serves the same
// shape.
func writeCompileJSON(w io.Writer, scheme string, fns []*ir.Func, res *codegen.Result, plog *obs.PassLog) error {
	return codegen.BuildCompileReport(scheme, fns, res, plog).WriteJSON(w)
}

// writeTo streams enc to path, with "-" meaning stdout.
func writeTo(path string, enc func(w io.Writer) error) error {
	if path == "-" {
		return enc(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := enc(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
