package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"fpint/internal/fperr"
	"fpint/internal/obs"
	"fpint/internal/obs/runstore"
)

// cmdTrend renders every trend line in the store: one block per
// (program, config, scheme, analysis, fault-mode) key, one row per record
// in append order, with the cycle delta against the previous point. This
// is the store's answer to "what has this workload's performance done over
// the repo's history".
func cmdTrend(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fpistat trend", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	storePath := fs.String("store", defaultStore, "run-record store to read")
	if err := fs.Parse(args); err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	recs, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	return writeTrend(stdout, recs)
}

// loadStore loads and classifies store errors for the CLI rim.
func loadStore(path string) ([]runstore.Record, error) {
	recs, err := runstore.Open(path).Load()
	if err != nil {
		return nil, fperr.Wrap(fperr.ClassInput, err)
	}
	if len(recs) == 0 {
		return nil, fperr.New(fperr.ClassInput, "%s: store is empty (run `fpistat record` first)", path)
	}
	return recs, nil
}

// writeTrend renders the per-key time series as aligned text.
func writeTrend(w io.Writer, recs []runstore.Record) error {
	byKey := runstore.ByKey(recs)
	keys := make([]runstore.Key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	runstore.SortKeys(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "== %s ==\n", k)
		fmt.Fprintf(&sb, "  %-4s %-13s %-13s %12s %9s %8s %11s %10s %9s\n",
			"SEQ", "REV", "HASH", "CYCLES", "DELTA", "OFFLOAD", "MIN-WALL", "SIMS/SEC", "ALLOCS")
		var prev int64
		for i, r := range byKey[k] {
			delta := "-"
			if i > 0 && prev != 0 && r.Kind == runstore.KindSim {
				delta = fmt.Sprintf("%+.2f%%", 100*(float64(r.Guest.Cycles)/float64(prev)-1))
			}
			cycles, offload := "-", "-"
			if r.Kind == runstore.KindSim {
				cycles = fmt.Sprintf("%d", r.Guest.Cycles)
				offload = fmt.Sprintf("%.1f%%", r.Guest.OffloadPct)
			}
			wall, sims, allocs := "-", "-", "-"
			if r.Host != nil && len(r.Host.Samples) > 0 {
				wall = time.Duration(r.Host.MinWallNS()).String()
				allocs = fmt.Sprintf("%d", r.Host.MinAllocs())
				if r.Kind == runstore.KindSim {
					sims = fmt.Sprintf("%.3g", r.Host.SimsPerSec(r.Guest.Cycles))
				}
			}
			fmt.Fprintf(&sb, "  %-4d %-13s %-13s %12s %9s %8s %11s %10s %9s\n",
				r.Seq, r.Rev, r.ShortHash(), cycles, delta, offload, wall, sims, allocs)
			prev = r.Guest.Cycles
		}
	}
	fmt.Fprintf(&sb, "%d record(s), %d trend line(s), %d revision(s)\n",
		len(recs), len(keys), len(runstore.Revs(recs)))
	_, err := io.WriteString(w, sb.String())
	return err
}

// cmdDiff compares two record sets — each side a revision (all its latest
// records) or a single record hash — and prints guest and host deltas side
// by side.
func cmdDiff(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fpistat diff", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	storePath := fs.String("store", defaultStore, "run-record store to read")
	if err := fs.Parse(args); err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	if fs.NArg() != 2 {
		return fperr.New(fperr.ClassUsage, "usage: fpistat diff [-store S] A B  (A and B are revisions or record-hash prefixes)")
	}
	recs, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	a, err := resolveSide(recs, fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := resolveSide(recs, fs.Arg(1))
	if err != nil {
		return err
	}
	return writeDiff(stdout, fs.Arg(0), fs.Arg(1), a, b)
}

// resolveSide interprets a diff operand: first as a revision (full or
// prefix), then as a record-hash prefix.
func resolveSide(recs []runstore.Record, sel string) ([]runstore.Record, error) {
	if at := runstore.AtRev(recs, sel); len(at) > 0 {
		return at, nil
	}
	if byHash := runstore.FindHash(recs, sel); len(byHash) > 0 {
		return byHash, nil
	}
	return nil, fperr.New(fperr.ClassInput, "%q matches no revision and no record hash in the store", sel)
}

// writeDiff renders guest and host metric pairs for every key both sides
// share. When each side resolves to exactly one record — hash selectors —
// the two records are compared directly even across keys, so "what did
// turning the analysis on buy" is one diff away.
func writeDiff(w io.Writer, labelA, labelB string, a, b []runstore.Record) error {
	la, lb := runstore.LatestPerKey(a), runstore.LatestPerKey(b)
	var keys []runstore.Key
	for k := range la {
		if _, ok := lb[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 && len(a) == 1 && len(b) == 1 {
		return writeDiffPair(w, labelA, labelB, a[0], b[0])
	}
	if len(keys) == 0 {
		return fperr.New(fperr.ClassInput, "no trend line has records on both sides (%s vs %s)", labelA, labelB)
	}
	runstore.SortKeys(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "diff %s -> %s\n", labelA, labelB)
	fmt.Fprintf(&sb, "%-40s %-15s %14s %14s %9s\n", "KEY", "METRIC", "A", "B", "DELTA")
	for _, k := range keys {
		ra, rb := la[k], lb[k]
		row := func(metric string, va, vb float64, format string) {
			delta := "-"
			if va != 0 {
				delta = fmt.Sprintf("%+.2f%%", 100*(vb/va-1))
			}
			fmt.Fprintf(&sb, "%-40s %-15s %14s %14s %9s\n", k, metric,
				fmt.Sprintf(format, va), fmt.Sprintf(format, vb), delta)
		}
		if k.Kind == runstore.KindSim {
			row(obs.MetricGuestCycles, float64(ra.Guest.Cycles), float64(rb.Guest.Cycles), "%.0f")
			row("guest.dyn_instrs", float64(ra.Guest.DynInstrs), float64(rb.Guest.DynInstrs), "%.0f")
			row("guest.offload_pct", ra.Guest.OffloadPct, rb.Guest.OffloadPct, "%.2f")
		}
		if ra.Host != nil && rb.Host != nil && len(ra.Host.Samples) > 0 && len(rb.Host.Samples) > 0 {
			row(obs.MetricHostMinWallNS, float64(ra.Host.MinWallNS()), float64(rb.Host.MinWallNS()), "%.0f")
			row(obs.MetricHostMinAllocs, float64(ra.Host.MinAllocs()), float64(rb.Host.MinAllocs()), "%.0f")
			if k.Kind == runstore.KindSim {
				row(obs.PrefixHost+obs.MetricHostSimsPerSec, ra.Host.SimsPerSec(ra.Guest.Cycles), rb.Host.SimsPerSec(rb.Guest.Cycles), "%.0f")
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeDiffPair compares two individual records head to head, regardless
// of trend-line key (e.g. the analysis-off seed record against today's
// analysis-on record of the same program).
func writeDiffPair(w io.Writer, labelA, labelB string, ra, rb runstore.Record) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "diff %s -> %s\n", labelA, labelB)
	fmt.Fprintf(&sb, "  A: %s  %s rev=%s\n", ra.ShortHash(), ra.Key(), ra.Rev)
	fmt.Fprintf(&sb, "  B: %s  %s rev=%s\n", rb.ShortHash(), rb.Key(), rb.Rev)
	fmt.Fprintf(&sb, "%-20s %14s %14s %9s\n", "METRIC", "A", "B", "DELTA")
	row := func(metric string, va, vb float64, format string) {
		delta := "-"
		if va != 0 {
			delta = fmt.Sprintf("%+.2f%%", 100*(vb/va-1))
		}
		fmt.Fprintf(&sb, "%-20s %14s %14s %9s\n", metric,
			fmt.Sprintf(format, va), fmt.Sprintf(format, vb), delta)
	}
	if ra.Kind == runstore.KindSim && rb.Kind == runstore.KindSim {
		row(obs.MetricGuestCycles, float64(ra.Guest.Cycles), float64(rb.Guest.Cycles), "%.0f")
		row("guest.dyn_instrs", float64(ra.Guest.DynInstrs), float64(rb.Guest.DynInstrs), "%.0f")
		row("guest.offload_pct", ra.Guest.OffloadPct, rb.Guest.OffloadPct, "%.2f")
		row("guest.copies", float64(ra.Guest.Copies), float64(rb.Guest.Copies), "%.0f")
		row("guest.loads", float64(ra.Guest.Loads), float64(rb.Guest.Loads), "%.0f")
	}
	if ra.Host != nil && rb.Host != nil && len(ra.Host.Samples) > 0 && len(rb.Host.Samples) > 0 {
		row(obs.MetricHostMinWallNS, float64(ra.Host.MinWallNS()), float64(rb.Host.MinWallNS()), "%.0f")
		row(obs.MetricHostMinAllocs, float64(ra.Host.MinAllocs()), float64(rb.Host.MinAllocs()), "%.0f")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// cmdReport renders the whole store as markdown and/or JSON — the artifact
// CI uploads so every build carries its trajectory.
func cmdReport(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fpistat report", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		storePath = fs.String("store", defaultStore, "run-record store to read")
		mdOut     = fs.String("md", "", "write the markdown report to the given file (\"-\" for stdout)")
		jsonOut   = fs.String("json", "", "write the JSON report to the given file (\"-\" for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	recs, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	if *mdOut == "" && *jsonOut == "" {
		*mdOut = "-"
	}
	if *mdOut != "" {
		if err := writeTo(*mdOut, stdout, func(w io.Writer) error { return writeMarkdown(w, recs) }); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, stdout, func(w io.Writer) error { return writeReportJSON(w, recs) }); err != nil {
			return err
		}
	}
	return nil
}

// writeMarkdown renders the trend report as GitHub-flavored markdown.
func writeMarkdown(w io.Writer, recs []runstore.Record) error {
	byKey := runstore.ByKey(recs)
	keys := make([]runstore.Key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	runstore.SortKeys(keys)
	revs := runstore.Revs(recs)
	var sb strings.Builder
	sb.WriteString("# fpint performance observatory\n\n")
	fmt.Fprintf(&sb, "%d record(s) across %d trend line(s); revisions: %s.\n\n",
		len(recs), len(keys), strings.Join(revs, " → "))
	for _, k := range keys {
		fmt.Fprintf(&sb, "## %s\n\n", k)
		sb.WriteString("| seq | rev | hash | cycles | Δcycles | offload | min wall | sims/sec | allocs |\n")
		sb.WriteString("|---:|---|---|---:|---:|---:|---:|---:|---:|\n")
		var prev int64
		for i, r := range byKey[k] {
			delta := "—"
			if i > 0 && prev != 0 && r.Kind == runstore.KindSim {
				delta = fmt.Sprintf("%+.2f%%", 100*(float64(r.Guest.Cycles)/float64(prev)-1))
			}
			cycles, offload := "—", "—"
			if r.Kind == runstore.KindSim {
				cycles = fmt.Sprintf("%d", r.Guest.Cycles)
				offload = fmt.Sprintf("%.1f%%", r.Guest.OffloadPct)
			}
			wall, sims, allocs := "—", "—", "—"
			if r.Host != nil && len(r.Host.Samples) > 0 {
				wall = time.Duration(r.Host.MinWallNS()).String()
				allocs = fmt.Sprintf("%d", r.Host.MinAllocs())
				if r.Kind == runstore.KindSim {
					sims = fmt.Sprintf("%.3g", r.Host.SimsPerSec(r.Guest.Cycles))
				}
			}
			fmt.Fprintf(&sb, "| %d | %s | %s | %s | %s | %s | %s | %s | %s |\n",
				r.Seq, r.Rev, r.ShortHash(), cycles, delta, offload, wall, sims, allocs)
			prev = r.Guest.Cycles
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ReportSchema identifies the fpistat JSON report layout.
const ReportSchema = "fpint-stat/v1"

// jsonReport is the machine-readable trend report.
type jsonReport struct {
	Schema  string       `json:"schema"`
	Records int          `json:"records"`
	Revs    []string     `json:"revs"`
	Series  []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Kind      string      `json:"kind"`
	Program   string      `json:"program"`
	Config    string      `json:"config"`
	Scheme    string      `json:"scheme"`
	Analysis  bool        `json:"analysis"`
	FaultMode string      `json:"faultMode,omitempty"`
	Points    []jsonPoint `json:"points"`
}

type jsonPoint struct {
	Seq       int     `json:"seq"`
	Rev       string  `json:"rev"`
	Hash      string  `json:"hash"`
	Cycles    int64   `json:"cycles,omitempty"`
	DynInstrs int64   `json:"dynInstrs,omitempty"`
	MinWallNS int64   `json:"minWallNs,omitempty"`
	MinAllocs uint64  `json:"minAllocs,omitempty"`
	SimsPS    float64 `json:"simsPerSec,omitempty"`
}

// writeReportJSON renders the store as deterministic JSON (keys sorted,
// points in append order).
func writeReportJSON(w io.Writer, recs []runstore.Record) error {
	byKey := runstore.ByKey(recs)
	keys := make([]runstore.Key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	runstore.SortKeys(keys)
	rep := jsonReport{Schema: ReportSchema, Records: len(recs), Revs: runstore.Revs(recs)}
	for _, k := range keys {
		s := jsonSeries{Kind: k.Kind, Program: k.Program, Config: k.Config,
			Scheme: k.Scheme, Analysis: k.Analysis, FaultMode: k.FaultMode}
		for _, r := range byKey[k] {
			p := jsonPoint{Seq: r.Seq, Rev: r.Rev, Hash: r.Hash,
				Cycles: r.Guest.Cycles, DynInstrs: r.Guest.DynInstrs}
			if r.Host != nil && len(r.Host.Samples) > 0 {
				p.MinWallNS = r.Host.MinWallNS()
				p.MinAllocs = r.Host.MinAllocs()
				if r.Kind == runstore.KindSim {
					p.SimsPS = r.Host.SimsPerSec(r.Guest.Cycles)
				}
			}
			s.Points = append(s.Points, p)
		}
		rep.Series = append(rep.Series, s)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
