package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/fperr"
	"fpint/internal/obs/hostmetrics"
	"fpint/internal/obs/runstore"
)

var update = flag.Bool("update", false, "rewrite the golden fpistat reports")

// goldenDir is resolved absolute at init so tests that chdir (the
// phasediff golden) still find the goldens.
var goldenDir = func() string {
	d, err := filepath.Abs(filepath.Join("..", "..", "testdata", "golden"))
	if err != nil {
		panic(err)
	}
	return d
}()

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join(goldenDir, name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (run with -update after verifying)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// Fixture revisions for the synthetic store.
const (
	fixRev1 = "aaaa1111bbbb"
	fixRev2 = "cccc2222dddd"
)

// fixtureHost builds a fully pinned host block: fixed env, fixed samples.
// Real host metrics are noisy; goldens need synthetic ones.
func fixtureHost(baseWallNS int64, baseAllocs uint64) *runstore.Host {
	h := &runstore.Host{Env: hostmetrics.Env{GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64", NumCPU: 8}}
	for i := int64(0); i < 3; i++ {
		h.Samples = append(h.Samples, hostmetrics.Sample{
			WallNS: baseWallNS + i*1_000_000,
			Allocs: baseAllocs + uint64(i)*17,
			Bytes:  (baseAllocs + uint64(i)*17) * 64,
		})
	}
	return h
}

// fixtureSim builds one sealed sim record with a closed cycle ledger.
func fixtureSim(rev, program, config string, cycles int64, wallNS int64, allocs uint64) runstore.Record {
	r := runstore.Record{
		Kind: runstore.KindSim, Rev: rev, Program: program,
		SourceSHA: runstore.SourceHash([]byte(program + " source")),
		Config:    config, Scheme: "advanced", Analysis: true,
		Guest: runstore.Guest{
			Ret: 42, DynInstrs: cycles * 2, Cycles: cycles,
			IssueActive: cycles * 8 / 10,
			Stalls:      map[string]int64{"dcache_miss": cycles * 15 / 100, "bpred_mispredict": cycles * 5 / 100},
			OffloadPct:  35.5, Copies: 120, Dups: 30, Loads: cycles / 4, Stores: cycles / 8,
		},
		Host:      fixtureHost(wallNS, allocs),
		CreatedAt: "2026-01-01T00:00:00Z",
	}
	r.Seal()
	return r
}

// fixtureGoBench builds one sealed host-only benchmark record.
func fixtureGoBench(rev, name string, wallNS int64, allocs uint64) runstore.Record {
	r := runstore.Record{
		Kind: runstore.KindGoBench, Rev: rev, Program: name,
		Config: "host", Scheme: "go",
		Host:      fixtureHost(wallNS, allocs),
		CreatedAt: "2026-01-01T00:00:00Z",
	}
	r.Seal()
	return r
}

// fixtureStore writes the two-revision synthetic store used by the golden
// tests: alpha improves from rev1 to rev2, beta regresses both guest cycles
// and host wall time, and a gobench record rides along.
func fixtureStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	store := runstore.Open(path)
	recs := []runstore.Record{
		fixtureSim(fixRev1, "alpha", "4-way", 100_000, 5_000_000, 3000),
		fixtureSim(fixRev1, "alpha", "8-way", 70_000, 8_000_000, 3100),
		fixtureSim(fixRev1, "beta", "4-way", 50_000, 4_000_000, 2000),
		fixtureGoBench(fixRev1, "BenchmarkPipelineLoop/4-way", 60_000_000, 3200),
		fixtureSim(fixRev2, "alpha", "4-way", 95_000, 4_800_000, 2900),
		fixtureSim(fixRev2, "alpha", "8-way", 66_500, 7_700_000, 3000),
		fixtureSim(fixRev2, "beta", "4-way", 60_000, 9_000_000, 2100),
		fixtureGoBench(fixRev2, "BenchmarkPipelineLoop/4-way", 61_000_000, 3200),
	}
	if err := store.Append(recs...); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrendGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fpistatMain([]string{"trend", "-store", fixtureStore(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fpistat.trend.txt", buf.Bytes())
}

func TestDiffGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fpistatMain([]string{"diff", "-store", fixtureStore(t), fixRev1, fixRev2}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fpistat.diff.txt", buf.Bytes())
}

// TestDiffPairGolden pins the single-record head-to-head diff: hash
// selectors resolving to records on different trend lines compare the two
// records directly.
func TestDiffPairGolden(t *testing.T) {
	path := fixtureStore(t)
	recs, err := runstore.Open(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	// alpha/4-way at rev1 vs alpha/8-way at rev2: no shared key, one
	// record per side.
	a, b := recs[0].ShortHash(), recs[5].ShortHash()
	var buf bytes.Buffer
	if err := fpistatMain([]string{"diff", "-store", path, a, b}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fpistat.diffpair.txt", buf.Bytes())
}

func TestReportGoldenMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := fpistatMain([]string{"report", "-store", fixtureStore(t), "-md", "-"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fpistat.report.md", buf.Bytes())
}

func TestReportGoldenJSON(t *testing.T) {
	path := fixtureStore(t)
	var first bytes.Buffer
	if err := fpistatMain([]string{"report", "-store", path, "-json", "-"}, &first); err != nil {
		t.Fatal(err)
	}
	// Byte-for-byte deterministic across invocations.
	var second bytes.Buffer
	if err := fpistatMain([]string{"report", "-store", path, "-json", "-"}, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("report -json is not deterministic across runs")
	}
	checkGolden(t, "fpistat.report.json", first.Bytes())
}

// TestGateGoldenRegression pins the gate's failure surface: beta regressed
// from rev1 to rev2 (guest cycles +20%, host wall +125%), so the gate must
// render REGRESSED rows and fail with the regression exit class.
func TestGateGoldenRegression(t *testing.T) {
	var buf bytes.Buffer
	err := fpistatMain([]string{"gate", "-store", fixtureStore(t), "-baseline-rev", fixRev1}, &buf)
	checkGolden(t, "fpistat.gate.txt", buf.Bytes())
	if err == nil {
		t.Fatal("gate passed on a store with a regressed trend line")
	}
	if got := fperr.ClassOf(err); got != fperr.ClassRegression {
		t.Fatalf("gate error class = %v, want ClassRegression", got)
	}
	if got := fperr.ExitCode(err); got != 5 {
		t.Fatalf("gate exit code = %d, want 5", got)
	}
}

// TestGatePasses checks the zero-exit path: gating a store against an
// identical baseline store finds nothing.
func TestGatePasses(t *testing.T) {
	path := fixtureStore(t)
	basePath := filepath.Join(t.TempDir(), "base.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fpistatMain([]string{"gate", "-store", path, "-baseline", basePath}, &buf); err != nil {
		t.Fatalf("gate against identical baseline failed: %v", err)
	}
	if !strings.Contains(buf.String(), "gate: ok") {
		t.Fatalf("missing ok verdict:\n%s", buf.String())
	}
}

// TestRecordHashStability runs the real record pipeline twice on the same
// source at a pinned revision and demands identical content hashes — host
// noise (wall time, allocations) must not leak into the hash.
func TestRecordHashStability(t *testing.T) {
	src := filepath.Join("..", "..", "testdata", "bitcount.c")
	dir := t.TempDir()
	var stores [2]string
	for i := range stores {
		stores[i] = filepath.Join(dir, "runs"+string(rune('a'+i))+".jsonl")
		var buf bytes.Buffer
		err := fpistatMain([]string{"record", "-store", stores[i], "-repeat", "1", "-rev", "feedfacecafe", src}, &buf)
		if err != nil {
			t.Fatalf("record #%d: %v", i+1, err)
		}
	}
	a, err := runstore.Open(stores[0]).Load()
	if err != nil {
		t.Fatal(err)
	}
	b, err := runstore.Open(stores[1]).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Hash != b[i].Hash {
			t.Errorf("record %d (%s): hash differs across identical recordings:\n  %s\n  %s",
				i, a[i].Key(), a[i].Hash, b[i].Hash)
		}
		if !a[i].VerifyHash() {
			t.Errorf("record %d: stored hash does not verify", i)
		}
		if !a[i].Guest.LedgerClosed() {
			t.Errorf("record %d (%s): cycle ledger not closed: cycles=%d issueActive=%d stalls=%d",
				i, a[i].Key(), a[i].Guest.Cycles, a[i].Guest.IssueActive, a[i].Guest.StallTotal())
		}
		if a[i].Host == nil || len(a[i].Host.Samples) != 1 {
			t.Errorf("record %d: want exactly 1 host sample, got %+v", i, a[i].Host)
		}
	}
}

// TestGoBenchImport pins the -gobench parser against a realistic
// -benchmem transcript, including repeated -count lines that must merge
// into one record.
func TestGoBenchImport(t *testing.T) {
	benchFile := filepath.Join(t.TempDir(), "bench.txt")
	transcript := `goos: linux
goarch: amd64
pkg: fpint/internal/uarch
BenchmarkPipelineLoop/4-way-8   	      18	  62848819 ns/op	28170553 B/op	    3148 allocs/op
BenchmarkPipelineLoop/4-way-8   	      19	  60148819 ns/op	28170553 B/op	    3148 allocs/op
BenchmarkPipelineLoop/8-way-8   	      22	  51944477 ns/op	24789720 B/op	    3146 allocs/op
PASS
`
	if err := os.WriteFile(benchFile, []byte(transcript), 0o644); err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(t.TempDir(), "runs.jsonl")
	var buf bytes.Buffer
	err := fpistatMain([]string{"record", "-store", storePath, "-rev", "feedfacecafe", "-gobench", benchFile}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := runstore.Open(storePath).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 merged records, got %d", len(recs))
	}
	r := recs[0]
	if r.Kind != runstore.KindGoBench || r.Program != "BenchmarkPipelineLoop/4-way" {
		t.Fatalf("unexpected first record: %+v", r)
	}
	if len(r.Host.Samples) != 2 {
		t.Fatalf("repeated lines did not merge: %d samples", len(r.Host.Samples))
	}
	if got := r.Host.MinWallNS(); got != 60148819 {
		t.Fatalf("min wall = %d, want 60148819", got)
	}
	if got := r.Host.MinAllocs(); got != 3148 {
		t.Fatalf("min allocs = %d, want 3148", got)
	}
}
