package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"fpint/internal/fperr"
	"fpint/internal/obs/timeline"
)

// cmdPhasediff compares two recorded timelines phase by phase: both
// fpint-timeline/v1 documents (fpisim -timeline-json) are segmented with
// the shared defaults, phases are aligned by index, and each row shows
// where the cycles moved and under which dominant stall cause — the
// answer to "which phase regressed and why", not just "the run got
// slower".
func cmdPhasediff(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fpistat phasediff", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	if fs.NArg() != 2 {
		return fperr.New(fperr.ClassUsage, "usage: fpistat phasediff A.json B.json  (fpint-timeline/v1 documents from fpisim -timeline-json)")
	}
	ta, err := timeline.ReadFile(fs.Arg(0))
	if err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	tb, err := timeline.ReadFile(fs.Arg(1))
	if err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	return writePhasediff(stdout, fs.Arg(0), fs.Arg(1), ta, tb)
}

// describe renders a timeline's envelope for the diff header.
func describe(t *timeline.Timeline) string {
	mode := "detailed"
	if t.Estimated {
		mode = fmt.Sprintf("estimated, %.1f%% sampled", 100*t.SampledFraction)
	}
	return fmt.Sprintf("%s on %s, %d cycles in %d windows of %d (%s)",
		t.Program, t.Config, t.TotalCycles, len(t.Windows), t.WindowWidth, mode)
}

// pct formats a relative change, guarding the empty-side case.
func pct(a, b float64) string {
	if a == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(b/a-1))
}

// writePhasediff renders the aligned phase comparison.
func writePhasediff(w io.Writer, nameA, nameB string, ta, tb *timeline.Timeline) error {
	cfg := timeline.DefaultSegConfig()
	pa, pb := ta.Segment(cfg), tb.Segment(cfg)
	var sb strings.Builder
	fmt.Fprintf(&sb, "A: %s  %s\n", nameA, describe(ta))
	fmt.Fprintf(&sb, "B: %s  %s\n\n", nameB, describe(tb))
	fmt.Fprintf(&sb, "  %-5s %12s %12s %8s %7s %7s %8s %8s  %s\n",
		"PHASE", "A-CYCLES", "B-CYCLES", "DELTA", "A-IPC", "B-IPC", "A-FPAOCC", "B-FPAOCC", "DOMINANT STALL")
	n := len(pa)
	if len(pb) > n {
		n = len(pb)
	}
	worstIdx, worstPct := -1, 0.0
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%d", i), "-", "-", "-", "-", "-", "-", "-"}
		stall := "-"
		if i < len(pa) {
			a := &pa[i]
			row[1] = fmt.Sprintf("%d", a.Cycles)
			row[4] = fmt.Sprintf("%.2f", a.IPC)
			row[6] = fmt.Sprintf("%.3f", a.FPaOcc)
			stall = fmt.Sprintf("%s %.1f%%", a.DominantStall, 100*a.DominantStallFrac)
		}
		if i < len(pb) {
			b := &pb[i]
			row[2] = fmt.Sprintf("%d", b.Cycles)
			row[5] = fmt.Sprintf("%.2f", b.IPC)
			row[7] = fmt.Sprintf("%.3f", b.FPaOcc)
			bs := fmt.Sprintf("%s %.1f%%", b.DominantStall, 100*b.DominantStallFrac)
			if stall == "-" {
				stall = bs
			} else {
				stall += " -> " + bs
			}
		}
		if i < len(pa) && i < len(pb) && pa[i].Cycles > 0 {
			d := 100 * (float64(pb[i].Cycles)/float64(pa[i].Cycles) - 1)
			row[3] = fmt.Sprintf("%+.1f%%", d)
			if d > worstPct {
				worstIdx, worstPct = i, d
			}
		}
		fmt.Fprintf(&sb, "  %-5s %12s %12s %8s %7s %7s %8s %8s  %s\n",
			row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7], stall)
	}
	fmt.Fprintf(&sb, "\ntotal: %d -> %d cycles (%s), %d -> %d phases\n",
		ta.TotalCycles, tb.TotalCycles, pct(float64(ta.TotalCycles), float64(tb.TotalCycles)), len(pa), len(pb))
	if worstIdx >= 0 {
		fmt.Fprintf(&sb, "largest regression: phase %d, %+.1f%% cycles, dominant stall %s -> %s\n",
			worstIdx, worstPct, pa[worstIdx].DominantStall, pb[worstIdx].DominantStall)
	} else {
		fmt.Fprintf(&sb, "no aligned phase regressed\n")
	}
	if len(pa) != len(pb) {
		fmt.Fprintf(&sb, "note: phase structure changed (%d vs %d phases); unaligned rows show one side only\n", len(pa), len(pb))
	}
	if ta.Estimated != tb.Estimated {
		fmt.Fprintf(&sb, "note: comparing an estimated (fast-mode) timeline against a detailed one; deltas mix sampled and exact cycles\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
