package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fpint/internal/bench"
	"fpint/internal/fperr"
	"fpint/internal/obs/runstore"
)

// cmdGate compares current performance against a baseline and exits
// nonzero (fperr.ClassRegression, exit code 5) if anything regressed.
// Three baseline sources:
//
//   - -baseline FILE: another run-record store; its latest record per
//     trend line is the baseline, the -store's latest records are judged;
//   - -baseline-rev REV: the records taken at revision REV inside the
//     same -store are the baseline for the store's latest records;
//   - -bench-baseline FILE: the checked-in fpint-bench/v1 report
//     (BENCH_BASELINE.json); the cycle-bearing experiments are regenerated
//     in-process and every cycle count is compared — the discipline
//     `fpibench -baseline` applies, available without re-rendering the
//     full evaluation.
//
// Guest cycles are deterministic and judged exactly by default
// (-guest-tolerance 0); host metrics are judged on min-over-samples with a
// generous -host-tolerance and a -wall-floor below which wall-time noise
// is not actionable.
func cmdGate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fpistat gate", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		storePath   = fs.String("store", defaultStore, "run-record store holding the current records")
		baseline    = fs.String("baseline", "", "baseline run-record store (JSONL) to gate against")
		baselineRev = fs.String("baseline-rev", "", "gate the store's latest records against those recorded at this revision")
		benchBase   = fs.String("bench-baseline", "", "fpint-bench/v1 report (e.g. BENCH_BASELINE.json) to regenerate cycle experiments against")
		guestTol    = fs.Float64("guest-tolerance", 0, "tolerated guest-cycle increase in percent (guest runs are deterministic; keep 0)")
		hostTol     = fs.Float64("host-tolerance", runstore.DefaultHostTolerancePct, "tolerated host wall/alloc increase in percent")
		wallFloor   = fs.Duration("wall-floor", time.Duration(runstore.DefaultMinHostWallNS), "wall-time floor below which host wall regressions are noise")
	)
	if err := fs.Parse(args); err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	modes := 0
	for _, m := range []string{*baseline, *baselineRev, *benchBase} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		return fperr.New(fperr.ClassUsage, "gate needs exactly one of -baseline FILE, -baseline-rev REV, or -bench-baseline FILE")
	}
	if *benchBase != "" {
		return gateBenchBaseline(*benchBase, *guestTol, stdout)
	}

	current, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	var base []runstore.Record
	if *baseline != "" {
		base, err = loadStore(*baseline)
		if err != nil {
			return err
		}
	} else {
		base = runstore.AtRev(current, *baselineRev)
		if len(base) == 0 {
			return fperr.New(fperr.ClassInput, "no records at revision %q in %s", *baselineRev, *storePath)
		}
		// Judge only records made after the baseline revision; gating the
		// baseline against itself would always pass vacuously.
		var after []runstore.Record
		maxSeq := 0
		for _, r := range base {
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		}
		for _, r := range current {
			if r.Seq > maxSeq {
				after = append(after, r)
			}
		}
		if len(after) == 0 {
			return fperr.New(fperr.ClassInput, "no records newer than revision %q in %s", *baselineRev, *storePath)
		}
		current = after
	}

	rep := runstore.Gate(base, current, runstore.GateOptions{
		GuestTolerancePct: *guestTol,
		HostTolerancePct:  *hostTol,
		MinHostWallNS:     int64(*wallFloor),
	})
	if err := rep.WriteText(stdout); err != nil {
		return err
	}
	if reg := rep.Regressions(); len(reg) > 0 {
		return fperr.New(fperr.ClassRegression, "%d metric(s) regressed beyond tolerance", len(reg))
	}
	return nil
}

// gateBenchBaseline regenerates the cycle-bearing experiments and compares
// every cycle count against the checked-in fpint-bench/v1 report — the
// `fpibench -baseline` logic, shared via bench.CycleReport.
func gateBenchBaseline(path string, tolerancePct float64, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	old, err := bench.LoadBaselineCycles(f)
	f.Close()
	if err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	rep, err := bench.CycleReport(bench.NewSuite())
	if err != nil {
		return fperr.Wrap(fperr.ClassInternal, err)
	}
	cur, err := bench.ExtractCycles(rep)
	if err != nil {
		return fperr.Wrap(fperr.ClassInternal, err)
	}
	deltas := bench.CompareCycles(old, cur)
	if len(deltas) == 0 {
		return fperr.New(fperr.ClassInput, "%s: no cycle metrics overlap the regenerated experiments", path)
	}
	reg := bench.Regressions(deltas, tolerancePct)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-12s %-12s %12s %12s %9s %s\n",
		"EXPERIMENT", "WORKLOAD", "FIELD", "BASELINE", "CURRENT", "DELTA", "VERDICT")
	for _, d := range deltas {
		verdict := "ok"
		if d.Pct() > tolerancePct {
			verdict = fmt.Sprintf("REGRESSED (>%.0f%%)", tolerancePct)
		}
		fmt.Fprintf(&sb, "%-22s %-12s %-12s %12d %12d %+8.2f%% %s\n",
			d.Key.Experiment, d.Key.Workload, d.Key.Field, d.Old, d.New, d.Pct(), verdict)
	}
	if len(reg) == 0 {
		fmt.Fprintf(&sb, "gate: ok — %d cycle metrics match %s (tolerance %.1f%%)\n",
			len(deltas), path, tolerancePct)
	} else {
		fmt.Fprintf(&sb, "gate: FAILED — %d of %d cycle metrics regressed vs %s\n",
			len(reg), len(deltas), path)
	}
	if _, err := io.WriteString(stdout, sb.String()); err != nil {
		return err
	}
	if len(reg) > 0 {
		return fperr.New(fperr.ClassRegression, "%d cycle metric(s) regressed vs %s", len(reg), path)
	}
	return nil
}
