// Command fpistat is the performance observatory's front door: it records
// runs into the append-only run-record store (internal/obs/runstore),
// mines the store for trends, diffs revisions, renders reports, and gates
// regressions.
//
// Usage:
//
//	fpistat record [-store runs.jsonl] [-scheme advanced] [-analysis on]
//	               [-repeat 3] [-rev REV] [-label L] file.c...   # record source files (both Table 1 configs)
//	fpistat record -suite                                        # record the bench workload suite
//	fpistat record -gobench bench.txt                            # import `go test -bench -benchmem` results
//	fpistat trend  [-store runs.jsonl]                           # per-workload/per-scheme time series
//	fpistat diff   [-store runs.jsonl] A B                       # guest+host deltas between two revisions or record hashes
//	fpistat report [-store runs.jsonl] [-md out.md] [-json out.json]  # deterministic markdown + JSON report
//	fpistat gate   [-store runs.jsonl] -baseline base.jsonl      # gate latest records against another store
//	fpistat gate   [-store runs.jsonl] -baseline-rev REV         # ... against the records taken at REV
//	fpistat gate   -bench-baseline BENCH_BASELINE.json           # ... regenerate cycle experiments vs the checked-in baseline
//	fpistat phasediff A.json B.json                              # compare two fpisim -timeline-json runs phase by phase
//
// Records wrap the deterministic guest-side results (the closed cycle
// ledger) in an envelope with the git revision, machine config, scheme,
// and analysis/fault mode, content-addressed by a SHA-256 hash that
// excludes host noise: recording the same source at the same revision
// twice yields identical hashes. Host-side self-metrics (wall time,
// allocations, GC; see internal/obs/hostmetrics) ride along outside the
// hash and are gated with noise-aware min/median thresholds, while guest
// cycles are gated exactly.
//
// Exit codes: 0 success, 1 usage error, 2 input error, 3 internal error,
// 5 a gate found a performance regression.
package main

import (
	"fmt"
	"io"
	"os"

	"fpint/internal/fperr"
)

func main() {
	err := fpistatMain(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpistat: %v\n", err)
	}
	os.Exit(fperr.ExitCode(err))
}

// defaultStore is where records land unless -store says otherwise.
const defaultStore = ".fpint/runs.jsonl"

func fpistatMain(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fperr.New(fperr.ClassUsage, "usage: fpistat <record|trend|diff|report|gate|phasediff> [flags]")
	}
	switch args[0] {
	case "record":
		return cmdRecord(args[1:], stdout)
	case "trend":
		return cmdTrend(args[1:], stdout)
	case "diff":
		return cmdDiff(args[1:], stdout)
	case "report":
		return cmdReport(args[1:], stdout)
	case "gate":
		return cmdGate(args[1:], stdout)
	case "phasediff":
		return cmdPhasediff(args[1:], stdout)
	case "help", "-h", "-help", "--help":
		fmt.Fprintln(stdout, "usage: fpistat <record|trend|diff|report|gate|phasediff> [flags]; see `go doc fpint/cmd/fpistat`")
		return nil
	}
	return fperr.New(fperr.ClassUsage, "unknown subcommand %q (want record, trend, diff, report, gate, or phasediff)", args[0])
}

// writeTo streams enc to path, with "-" meaning the command's stdout.
func writeTo(path string, stdout io.Writer, enc func(w io.Writer) error) error {
	if path == "-" {
		return enc(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fperr.Wrap(fperr.ClassInput, err)
	}
	if err := enc(f); err != nil {
		f.Close()
		return fperr.Wrap(fperr.ClassInput, err)
	}
	return fperr.Wrap(fperr.ClassInput, f.Close())
}
