package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"fpint/internal/analysis"
	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/fperr"
	"fpint/internal/obs/hostmetrics"
	"fpint/internal/obs/runstore"
	"fpint/internal/uarch"
)

// cmdRecord measures programs and appends run records to the store. Three
// sources of records:
//
//   - source files on the command line: each is compiled under the
//     requested scheme and run on both Table 1 machine configurations,
//     -repeat times, so every record carries repeated host samples for the
//     gate's noise estimators;
//   - -suite: the bench workload suite, through the same Suite machinery
//     fpibench uses;
//   - -gobench FILE: `go test -bench -benchmem` output, imported as
//     host-metrics-only records (the testing.B benchmarks in
//     internal/uarch and internal/codegen are the intended feed).
func cmdRecord(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fpistat record", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		storePath    = fs.String("store", defaultStore, "append-only run-record store (JSONL)")
		schemeName   = fs.String("scheme", "advanced", "partitioning scheme: none, basic, advanced")
		analysisMode = fs.String("analysis", "on", "consult the alias/value-range analyses: on or off")
		repeat       = fs.Int("repeat", 3, "timed runs per record (host samples for min/median noise estimation)")
		rev          = fs.String("rev", "", "revision to stamp records with (default: resolved from .git)")
		label        = fs.String("label", "", "free-form annotation (excluded from the content hash)")
		suite        = fs.Bool("suite", false, "record the bench workload suite instead of source files")
		gobench      = fs.String("gobench", "", "import `go test -bench` output from the given file (\"-\" for stdin)")
		fast         = fs.Bool("fast", false, "measure with the sampled-timing fast mode; records are stamped timingMode=fast and gate only against other fast records")
	)
	if err := fs.Parse(args); err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	if *repeat < 1 {
		return fperr.New(fperr.ClassUsage, "-repeat must be at least 1")
	}
	schemes := map[string]codegen.Scheme{
		"none": codegen.SchemeNone, "basic": codegen.SchemeBasic, "advanced": codegen.SchemeAdvanced,
	}
	sch, ok := schemes[*schemeName]
	if !ok {
		return fperr.New(fperr.ClassUsage, "unknown scheme %q", *schemeName)
	}
	useAnalysis, err := analysis.ParseOnOff(*analysisMode)
	if err != nil {
		return fperr.Wrap(fperr.ClassUsage, err)
	}
	if *rev == "" {
		*rev = runstore.GitRevision(".")
	}
	if !*suite && *gobench == "" && fs.NArg() == 0 {
		return fperr.New(fperr.ClassUsage, "nothing to record: give source files, -suite, or -gobench FILE")
	}

	store := runstore.Open(*storePath)
	now := time.Now().UTC().Format(time.RFC3339)
	timingMode := runstore.TimingDetailed
	if *fast {
		timingMode = runstore.TimingFast
	}
	var recs []runstore.Record

	for _, file := range fs.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			return fperr.Wrap(fperr.ClassInput, err)
		}
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
			var guest runstore.Guest
			var host *runstore.Host
			var err error
			if *fast {
				guest, host, err = bench.MeasureSourceFast(name, string(src), sch, useAnalysis, cfg, uarch.DefaultSampleConfig(), *repeat)
			} else {
				guest, host, err = bench.MeasureSource(name, string(src), sch, useAnalysis, cfg, *repeat)
			}
			if err != nil {
				return fperr.Wrap(fperr.ClassInput, err)
			}
			recs = append(recs, runstore.Record{
				Kind: runstore.KindSim, Rev: *rev, Program: name,
				SourceSHA: runstore.SourceHash(src),
				Config:    cfg.Name, Scheme: sch.String(), Analysis: useAnalysis,
				TimingMode: timingMode,
				Guest:      guest, Host: host, CreatedAt: now, Label: *label,
			})
		}
	}

	if *suite {
		s := bench.NewSuite()
		if *fast {
			s.SetFast(uarch.DefaultSampleConfig())
		}
		for _, w := range bench.IntWorkloads() {
			w := w
			for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
				rec, err := recordSuiteWorkload(s, &w, sch, cfg, *repeat)
				if err != nil {
					return fperr.Wrap(fperr.ClassInternal, err)
				}
				rec.Rev, rec.CreatedAt, rec.Label = *rev, now, *label
				rec.TimingMode = timingMode
				recs = append(recs, rec)
			}
		}
	}

	if *gobench != "" {
		gb, err := readGoBench(*gobench)
		if err != nil {
			return err
		}
		for i := range gb {
			gb[i].Rev, gb[i].CreatedAt, gb[i].Label = *rev, now, *label
		}
		recs = append(recs, gb...)
	}

	for i := range recs {
		recs[i].Seal()
	}
	if err := store.Append(recs...); err != nil {
		return fperr.Wrap(fperr.ClassInternal, err)
	}
	for i := range recs {
		r := &recs[i]
		line := fmt.Sprintf("recorded %s %s rev=%s", r.ShortHash(), r.Key(), r.Rev)
		if r.Kind == runstore.KindSim {
			line += fmt.Sprintf(" cycles=%d", r.Guest.Cycles)
		}
		if r.Host != nil {
			line += fmt.Sprintf(" wall=%s", time.Duration(r.Host.MinWallNS()))
			if r.Kind == runstore.KindSim {
				line += fmt.Sprintf(" sims/sec=%.3g", r.Host.SimsPerSec(r.Guest.Cycles))
			}
		}
		fmt.Fprintln(stdout, line)
	}
	fmt.Fprintf(stdout, "%d record(s) appended to %s\n", len(recs), *storePath)
	return nil
}

// recordSuiteWorkload measures one bench workload on one config, repeat
// times, collecting the per-run host sample Suite.Measure captures around
// the timed run. The guest block must be identical across repeats — the
// simulator is deterministic — and a disagreement is an internal error.
func recordSuiteWorkload(s *bench.Suite, w *bench.Workload, sch codegen.Scheme, cfg uarch.Config, repeat int) (runstore.Record, error) {
	host := &runstore.Host{Env: hostmetrics.CurrentEnv()}
	var guest runstore.Guest
	for i := 0; i < repeat; i++ {
		m, err := s.Measure(w, sch, cfg)
		if err != nil {
			return runstore.Record{}, err
		}
		g := bench.GuestFromMeasurement(m)
		if i == 0 {
			guest = g
		} else if g.Cycles != guest.Cycles || g.DynInstrs != guest.DynInstrs {
			return runstore.Record{}, fmt.Errorf("%s/%s/%s: nondeterministic run: repeat %d gave %d cycles, first gave %d",
				w.Name, sch, cfg.Name, i+1, g.Cycles, guest.Cycles)
		}
		if m.Host != nil {
			host.Samples = append(host.Samples, *m.Host)
		}
	}
	return runstore.Record{
		Kind: runstore.KindSim, Program: w.Name,
		SourceSHA: runstore.SourceHash([]byte(w.Src)),
		Config:    cfg.Name, Scheme: sch.String(),
		Guest: guest, Host: host,
	}, nil
}

// goBenchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkPipelineLoop/4way-8   12   98765432 ns/op   120 B/op   3 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the name; B/op and allocs/op
// are optional (-benchmem).
var goBenchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

// readGoBench parses benchmark result lines into host-metrics-only records.
func readGoBench(path string) ([]runstore.Record, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fperr.Wrap(fperr.ClassInput, err)
		}
		defer f.Close()
		r = f
	}
	recs, err := parseGoBench(r)
	if err != nil {
		return nil, fperr.Wrap(fperr.ClassInput, err)
	}
	if len(recs) == 0 {
		return nil, fperr.New(fperr.ClassInput, "%s: no benchmark result lines found", path)
	}
	return recs, nil
}

// parseGoBench extracts one record per benchmark line. Multiple lines for
// the same benchmark (repeated -count runs) merge into one record with one
// host sample each, which is exactly what the gate's min/median estimators
// want.
func parseGoBench(r io.Reader) ([]runstore.Record, error) {
	env := hostmetrics.CurrentEnv()
	byName := make(map[string]*runstore.Record)
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := goBenchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		nsOp, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		sample := hostmetrics.Sample{WallNS: int64(nsOp)}
		if m[3] != "" {
			b, _ := strconv.ParseUint(m[3], 10, 64)
			sample.Bytes = b
		}
		if m[4] != "" {
			a, _ := strconv.ParseUint(m[4], 10, 64)
			sample.Allocs = a
		}
		rec, ok := byName[name]
		if !ok {
			rec = &runstore.Record{
				Kind: runstore.KindGoBench, Program: name,
				Config: "host", Scheme: "go",
				Host: &runstore.Host{Env: env},
			}
			byName[name] = rec
			order = append(order, name)
		}
		rec.Host.Samples = append(rec.Host.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]runstore.Record, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}
