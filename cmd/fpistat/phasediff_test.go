package main

import (
	"bytes"
	"os"
	"testing"

	"fpint/internal/obs/timeline"
)

// phaseSpec describes one synthetic phase: how many fixed-width windows it
// spans and what each window looks like.
type phaseSpec struct {
	windows int
	active  int64 // issue-active cycles per 100-cycle window
	fpa     int64 // FPa instructions issued per window
	cause   int   // stall cause index absorbing the idle cycles
}

// fixtureTimeline builds a valid fpint-timeline/v1 document out of
// 100-cycle windows; goldens need synthetic timelines with a known phase
// structure, not real simulator output.
func fixtureTimeline(t *testing.T, program string, phases []phaseSpec) *timeline.Timeline {
	t.Helper()
	causes := []string{"raw-wait", "dcache", "bpred-recovery"}
	tl := &timeline.Timeline{
		Schema:      timeline.Schema,
		Program:     program,
		Config:      "4-way",
		WindowWidth: 100,
		IssueWidth:  4,
		Subsystems:  []string{"INT", "FP", "FPa"},
		StallCauses: causes,
	}
	idx := 0
	for _, ph := range phases {
		for i := 0; i < ph.windows; i++ {
			w := timeline.Window{
				Index:        idx,
				StartCycle:   int64(idx) * 100,
				Cycles:       100,
				Instructions: ph.active * 2,
				IssueActive:  ph.active,
				IssuedINT:    ph.active*2 - ph.fpa,
				IssuedFPa:    ph.fpa,
				Stalls:       make([]int64, 3*len(causes)),
			}
			w.Stalls[ph.cause] = 100 - ph.active
			tl.TotalCycles += w.Cycles
			tl.TotalInstructions += w.Instructions
			tl.Windows = append(tl.Windows, w)
			idx++
		}
	}
	if err := tl.Validate(); err != nil {
		t.Fatalf("fixture timeline invalid: %v", err)
	}
	return tl
}

// writeTimeline serialises a fixture document where phasediff can read it.
func writeTimeline(t *testing.T, path string, tl *timeline.Timeline) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenPhasediff pins the phasediff rendering: B's second phase runs
// three windows longer under a different dominant stall, and B grows a
// trailing phase A does not have.
func TestGoldenPhasediff(t *testing.T) {
	// Relative operand paths keep the golden free of temp-dir noise.
	t.Chdir(t.TempDir())
	a := fixtureTimeline(t, "alpha.c", []phaseSpec{
		{windows: 6, active: 90, fpa: 40, cause: 0},
		{windows: 6, active: 30, fpa: 0, cause: 1},
	})
	b := fixtureTimeline(t, "alpha.c", []phaseSpec{
		{windows: 6, active: 90, fpa: 40, cause: 0},
		{windows: 9, active: 30, fpa: 0, cause: 2},
		{windows: 5, active: 70, fpa: 10, cause: 0},
	})
	b.Estimated = true
	b.SampledFraction = 0.25
	writeTimeline(t, "a.json", a)
	writeTimeline(t, "b.json", b)
	var buf bytes.Buffer
	if err := fpistatMain([]string{"phasediff", "a.json", "b.json"}, &buf); err != nil {
		t.Fatalf("phasediff: %v", err)
	}
	checkGolden(t, "fpistat.phasediff.txt", buf.Bytes())
}

// TestPhasediffUsage pins the operand check.
func TestPhasediffUsage(t *testing.T) {
	var buf bytes.Buffer
	if err := fpistatMain([]string{"phasediff", "only-one.json"}, &buf); err == nil {
		t.Fatal("phasediff with one operand should fail")
	}
}
