package ir_test

import (
	"strings"
	"testing"

	"fpint/internal/ir"
)

// makeLoop builds: entry -> header <-> body, header -> exit.
func makeLoop(t *testing.T) (*ir.Func, *ir.Block, *ir.Block, *ir.Block, *ir.Block) {
	t.Helper()
	fn := ir.NewFunc("loop", ir.I64)
	entry := fn.NewBlock()
	header := fn.NewBlock()
	body := fn.NewBlock()
	exit := fn.NewBlock()
	fn.Entry = entry

	c := fn.NewVReg(ir.I64)
	entry.Append(&ir.Instr{Op: ir.OpConst, Dst: c, Imm: 1})
	entry.Append(&ir.Instr{Op: ir.OpJmp})
	entry.Succs = []*ir.Block{header}

	header.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{c}})
	header.Succs = []*ir.Block{body, exit}

	body.Append(&ir.Instr{Op: ir.OpJmp})
	body.Succs = []*ir.Block{header}

	r := fn.NewVReg(ir.I64)
	exit.Append(&ir.Instr{Op: ir.OpConst, Dst: r, Imm: 0})
	exit.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{r}})

	fn.RecomputePreds()
	fn.Renumber()
	return fn, entry, header, body, exit
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	fn, _, _, _, _ := makeLoop(t)
	if err := fn.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyCatchesBadSuccCount(t *testing.T) {
	fn, _, header, _, _ := makeLoop(t)
	header.Succs = header.Succs[:1] // br with one successor
	if err := fn.Verify(); err == nil {
		t.Fatal("missing successor not diagnosed")
	}
}

func TestVerifyCatchesMisplacedTerminator(t *testing.T) {
	fn, entry, _, _, _ := makeLoop(t)
	// Insert an instruction after the terminator.
	v := fn.NewVReg(ir.I64)
	entry.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 9})
	fn.Renumber()
	if err := fn.Verify(); err == nil {
		t.Fatal("instruction after terminator not diagnosed")
	}
}

func TestVerifyCatchesTypeError(t *testing.T) {
	fn := ir.NewFunc("bad", ir.I64)
	b := fn.NewBlock()
	fn.Entry = b
	f := fn.NewVReg(ir.F64)
	i := fn.NewVReg(ir.I64)
	b.Append(&ir.Instr{Op: ir.OpConst, Dst: f, FImm: 1, IsFloat: true})
	b.Append(&ir.Instr{Op: ir.OpAdd, Dst: i, Args: []ir.VReg{f, f}})
	b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{i}})
	fn.Renumber()
	if err := fn.Verify(); err == nil {
		t.Fatal("float operand to integer add not diagnosed")
	}
}

func TestLoopDepths(t *testing.T) {
	fn, entry, header, body, exit := makeLoop(t)
	fn.ComputeLoopDepths()
	if entry.LoopDepth != 0 || exit.LoopDepth != 0 {
		t.Errorf("entry/exit depth = %d/%d, want 0/0", entry.LoopDepth, exit.LoopDepth)
	}
	if header.LoopDepth != 1 || body.LoopDepth != 1 {
		t.Errorf("header/body depth = %d/%d, want 1/1", header.LoopDepth, body.LoopDepth)
	}
}

func TestDominators(t *testing.T) {
	fn, entry, header, body, exit := makeLoop(t)
	idom := fn.Dominators()
	if idom[header] != entry {
		t.Errorf("idom(header) = b%d, want entry", idom[header].ID)
	}
	if idom[body] != header || idom[exit] != header {
		t.Errorf("idom(body/exit) wrong")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	fn, _, _, _, _ := makeLoop(t)
	dead := fn.NewBlock()
	v := fn.NewVReg(ir.I64)
	dead.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 5})
	dead.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{v}})
	before := len(fn.Blocks)
	fn.RemoveUnreachable()
	if len(fn.Blocks) != before-1 {
		t.Fatalf("unreachable block not removed")
	}
	if err := fn.Verify(); err != nil {
		t.Fatalf("verify after removal: %v", err)
	}
}

func TestRenumberSequential(t *testing.T) {
	fn, _, _, _, _ := makeLoop(t)
	fn.Renumber()
	want := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.ID != want {
				t.Fatalf("instr ID %d, want %d", in.ID, want)
			}
			if in.Blk != b {
				t.Fatalf("instr block pointer stale")
			}
			want++
		}
	}
	if fn.NumInstrs() != want {
		t.Fatalf("NumInstrs = %d, want %d", fn.NumInstrs(), want)
	}
}

func TestInsertRemove(t *testing.T) {
	fn := ir.NewFunc("edit", ir.Void)
	b := fn.NewBlock()
	fn.Entry = b
	v1 := fn.NewVReg(ir.I64)
	v2 := fn.NewVReg(ir.I64)
	b.Append(&ir.Instr{Op: ir.OpConst, Dst: v1, Imm: 1})
	b.Append(&ir.Instr{Op: ir.OpRet})
	b.InsertBefore(&ir.Instr{Op: ir.OpConst, Dst: v2, Imm: 2}, 1)
	if len(b.Instrs) != 3 || b.Instrs[1].Dst != v2 {
		t.Fatalf("insert failed: %v", b.Instrs)
	}
	for i, in := range b.Instrs {
		if in.Idx != i {
			t.Fatalf("Idx not maintained at %d", i)
		}
	}
	b.RemoveAt(0)
	if len(b.Instrs) != 2 || b.Instrs[0].Dst != v2 {
		t.Fatalf("remove failed")
	}
	for i, in := range b.Instrs {
		if in.Idx != i {
			t.Fatalf("Idx not maintained after remove at %d", i)
		}
	}
}

func TestInstrString(t *testing.T) {
	fn := ir.NewFunc("p", ir.Void)
	b := fn.NewBlock()
	fn.Entry = b
	v1 := fn.NewVReg(ir.I64)
	v2 := fn.NewVReg(ir.I64)
	in1 := b.Append(&ir.Instr{Op: ir.OpConst, Dst: v1, Imm: 42})
	in2 := b.Append(&ir.Instr{Op: ir.OpAdd, Dst: v2, Args: []ir.VReg{v1}, Imm: 7, ImmArg: true})
	in3 := b.Append(&ir.Instr{Op: ir.OpLoad, Dst: v2, Args: []ir.VReg{v1}, Imm: 16})
	if got := in1.String(); !strings.Contains(got, "const 42") {
		t.Errorf("const: %q", got)
	}
	if got := in2.String(); !strings.Contains(got, "#7") {
		t.Errorf("imm add: %q", got)
	}
	if got := in3.String(); !strings.Contains(got, "+16") {
		t.Errorf("load offset: %q", got)
	}
}

func TestModuleLookup(t *testing.T) {
	mod := ir.NewModule()
	fn := ir.NewFunc("f", ir.Void)
	mod.AddFunc(fn)
	mod.Globals = append(mod.Globals, &ir.Global{Name: "g", Words: 4})
	if mod.Lookup("f") != fn || mod.Lookup("missing") != nil {
		t.Error("function lookup wrong")
	}
	if mod.Global("g") == nil || mod.Global("missing") != nil {
		t.Error("global lookup wrong")
	}
}
