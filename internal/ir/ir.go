// Package ir defines the three-address intermediate representation the
// compiler pipeline operates on: virtual registers, typed instructions,
// basic blocks, and the control-flow graph.
//
// The paper's partitioning algorithms run at this level ("code partitioning
// is performed on the intermediate representation of the program after all
// the initial machine-independent optimizations are complete"), before
// register allocation.
package ir

import "fmt"

// Type is the type of a virtual register value.
type Type uint8

// Value types.
const (
	Void Type = iota
	I64       // 64-bit integer
	F64       // 64-bit float
)

// String returns a short name for the type.
func (t Type) String() string {
	switch t {
	case I64:
		return "i64"
	case F64:
		return "f64"
	}
	return "void"
}

// VReg is a virtual register identifier. 0 is the invalid register.
type VReg int32

// String formats the register as %vN.
func (v VReg) String() string { return fmt.Sprintf("%%v%d", int32(v)) }

// Op enumerates IR operations.
type Op uint8

// IR operations.
const (
	OpNop Op = iota

	// OpConst materializes an integer (Imm) or float (FImm, type F64)
	// constant into Dst.
	OpConst
	// OpCopy copies Args[0] into Dst.
	OpCopy

	// Integer ALU. Dst and Args are I64.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpNor
	OpShl
	OpShrA // arithmetic shift right
	OpShrL // logical shift right

	// Integer comparisons producing 0/1 in an I64 Dst.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Floating-point ALU. Dst and Args are F64.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Floating-point comparisons producing 0/1 in an I64 Dst.
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE

	// Conversions.
	OpCvtIF // I64 -> F64
	OpCvtFI // F64 -> I64 (truncating)

	// Memory. Addresses are I64 byte addresses; every scalar is 8 bytes.
	OpLoad       // Dst = mem[Args[0]+Imm]
	OpStore      // mem[Args[1]+Imm] = Args[0]
	OpAddrGlobal // Dst = address of global Sym (+Imm)
	OpAddrLocal  // Dst = address of stack slot Imm (a frame-local array)

	// OpCall calls Sym with Args; Dst receives the return value when the
	// callee returns one (Dst != 0).
	OpCall

	// Terminators.
	OpBr  // if Args[0] != 0 goto Block.Succs[0] else Block.Succs[1]
	OpJmp // goto Block.Succs[0]
	OpRet // return Args[0] if present
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpCopy: "copy",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNor: "nor",
	OpShl: "shl", OpShrA: "shra", OpShrL: "shrl",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt",
	OpCmpLE: "cmple", OpCmpGT: "cmpgt", OpCmpGE: "cmpge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpFCmpEQ: "fcmpeq", OpFCmpNE: "fcmpne", OpFCmpLT: "fcmplt",
	OpFCmpLE: "fcmple", OpFCmpGT: "fcmpgt", OpFCmpGE: "fcmpge",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpLoad: "load", OpStore: "store",
	OpAddrGlobal: "addrg", OpAddrLocal: "addrl",
	OpCall: "call", OpBr: "br", OpJmp: "jmp", OpRet: "ret",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpJmp || o == OpRet }

// IsIntALU reports whether the op is a simple integer ALU operation that the
// augmented floating-point subsystem could execute (integer multiply and
// divide are excluded, per the paper).
func (o Op) IsIntALU() bool {
	switch o {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpNor, OpShl, OpShrA, OpShrL,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpCopy, OpConst:
		return true
	}
	return false
}

// IsFloatALU reports whether the op is a floating-point operation.
func (o Op) IsFloatALU() bool {
	switch o {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE:
		return true
	}
	return false
}

// Instr is a single IR instruction.
type Instr struct {
	Op   Op
	Dst  VReg   // 0 when the instruction produces no value
	Args []VReg // source operands
	Imm  int64  // integer constant / load-store offset / local slot index
	FImm float64
	Sym  string // global symbol or call target

	// IsFloat marks loads/stores/consts that move F64 values.
	IsFloat bool

	// ImmArg marks integer ALU instructions whose second operand is the
	// immediate Imm instead of a register (Args has length 1), mirroring
	// the MIPS addi/andi/slti forms the paper's listings use.
	ImmArg bool

	// Blk and Idx locate the instruction (maintained by Block helpers).
	Blk *Block
	Idx int

	// ID is a function-unique instruction identifier assigned by
	// Func.Renumber; the RDG and the partitioner key off it.
	ID int

	// Line is the 1-based source line this instruction was lowered from
	// (0 when unknown, e.g. compiler-synthesized glue). Optimization
	// passes rewrite instructions in place, so the line survives constant
	// folding, CSE, LICM and friends; passes that synthesize fresh
	// instructions are expected to copy the line from the instruction
	// they derive from.
	Line int
}

// NumberedString formats the instruction with its ID.
func (in *Instr) NumberedString() string {
	return fmt.Sprintf("i%-3d %s", in.ID, in.String())
}

// String formats the instruction in a readable assembly-like syntax.
func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		if in.IsFloat {
			return fmt.Sprintf("%s = const %g", in.Dst, in.FImm)
		}
		return fmt.Sprintf("%s = const %d", in.Dst, in.Imm)
	case OpAddrGlobal:
		return fmt.Sprintf("%s = addrg %s+%d", in.Dst, in.Sym, in.Imm)
	case OpAddrLocal:
		return fmt.Sprintf("%s = addrl slot%d", in.Dst, in.Imm)
	case OpLoad:
		kind := "i64"
		if in.IsFloat {
			kind = "f64"
		}
		return fmt.Sprintf("%s = load.%s [%s+%d]", in.Dst, kind, in.Args[0], in.Imm)
	case OpStore:
		kind := "i64"
		if in.IsFloat {
			kind = "f64"
		}
		return fmt.Sprintf("store.%s [%s+%d] = %s", kind, in.Args[1], in.Imm, in.Args[0])
	case OpCall:
		s := ""
		if in.Dst != 0 {
			s = in.Dst.String() + " = "
		}
		s += "call " + in.Sym + "("
		for i, a := range in.Args {
			if i > 0 {
				s += ", "
			}
			s += a.String()
		}
		return s + ")"
	case OpBr:
		return fmt.Sprintf("br %s -> b%d, b%d", in.Args[0], in.Blk.Succs[0].ID, in.Blk.Succs[1].ID)
	case OpJmp:
		return fmt.Sprintf("jmp -> b%d", in.Blk.Succs[0].ID)
	case OpRet:
		if len(in.Args) > 0 {
			return fmt.Sprintf("ret %s", in.Args[0])
		}
		return "ret"
	}
	s := ""
	if in.Dst != 0 {
		s = in.Dst.String() + " = "
	}
	s += in.Op.String()
	for i, a := range in.Args {
		if i == 0 {
			s += " "
		} else {
			s += ", "
		}
		s += a.String()
	}
	if in.ImmArg {
		s += fmt.Sprintf(", #%d", in.Imm)
	}
	return s
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []*Instr
	Succs  []*Block
	Preds  []*Block

	// LoopDepth is the static loop nesting depth, used by the
	// probabilistic profile estimate (p_B * 5^d_B).
	LoopDepth int

	// Fn is the containing function.
	Fn *Func
}

// Append adds an instruction at the end of the block.
func (b *Block) Append(in *Instr) *Instr {
	in.Blk = b
	in.Idx = len(b.Instrs)
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts instruction in before position idx.
func (b *Block) InsertBefore(in *Instr, idx int) {
	in.Blk = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
	for i := idx; i < len(b.Instrs); i++ {
		b.Instrs[i].Idx = i
	}
}

// RemoveAt deletes the instruction at position idx.
func (b *Block) RemoveAt(idx int) {
	b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
	for i := idx; i < len(b.Instrs); i++ {
		b.Instrs[i].Idx = i
	}
}

// Terminator returns the block's final instruction, or nil if empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Func is a single function.
type Func struct {
	Name   string
	Params []VReg // parameter virtual registers, in order
	Blocks []*Block
	Entry  *Block

	// Line is the 1-based source line of the function declaration;
	// synthesized frame code (prologue/epilogue) is attributed here.
	Line int

	// RetType is the function's return type.
	RetType Type

	// vregTypes[v] is the type of virtual register v; index 0 unused.
	vregTypes []Type

	// LocalSlots is the number of 8-byte words of frame-local array
	// storage referenced by OpAddrLocal (slot index -> word offset).
	LocalSlots  []int64 // size in words of each slot
	nextBlockID int
	instrCount  int

	// Mod is the containing module.
	Mod *Module
}

// NewFunc creates an empty function.
func NewFunc(name string, ret Type) *Func {
	f := &Func{Name: name, RetType: ret, vregTypes: make([]Type, 1)}
	return f
}

// NewVReg allocates a fresh virtual register of type t.
func (f *Func) NewVReg(t Type) VReg {
	f.vregTypes = append(f.vregTypes, t)
	return VReg(len(f.vregTypes) - 1)
}

// VRegType returns the type of v.
func (f *Func) VRegType(v VReg) Type {
	if v <= 0 || int(v) >= len(f.vregTypes) {
		return Void
	}
	return f.vregTypes[v]
}

// NumVRegs returns one past the largest virtual register id.
func (f *Func) NumVRegs() int { return len(f.vregTypes) }

// NewBlock creates a new basic block in the function.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlockID, Fn: f}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// AddLocalSlot registers a frame-local array of n words and returns its
// slot index.
func (f *Func) AddLocalSlot(words int64) int64 {
	f.LocalSlots = append(f.LocalSlots, words)
	return int64(len(f.LocalSlots) - 1)
}

// Renumber assigns sequential IDs to all instructions and fixes Idx fields.
// Call after any structural mutation and before building the RDG.
func (f *Func) Renumber() {
	id := 0
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			in.Blk = b
			in.Idx = i
			in.ID = id
			id++
		}
	}
	f.instrCount = id
}

// NumInstrs returns the instruction count as of the last Renumber.
func (f *Func) NumInstrs() int { return f.instrCount }

// Instrs returns all instructions in block order. The slice is freshly
// allocated.
func (f *Func) Instrs() []*Instr {
	out := make([]*Instr, 0, f.instrCount)
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

// RemoveUnreachable deletes blocks not reachable from the entry and fixes
// predecessor lists.
func (f *Func) RemoveUnreachable() {
	reach := make(map[*Block]bool)
	var stack []*Block
	stack = append(stack, f.Entry)
	reach[f.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	f.RecomputePreds()
}

// RecomputePreds rebuilds all predecessor lists from successor lists.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Global is a module-scope variable or array.
type Global struct {
	Name    string
	Words   int64 // size in 8-byte words
	IsFloat bool
	InitInt []int64
	InitFlt []float64
}

// Module is a compiled translation unit.
type Module struct {
	Funcs   []*Func
	Globals []*Global

	funcByName map[string]*Func
}

// NewModule creates an empty module.
func NewModule() *Module {
	return &Module{funcByName: make(map[string]*Func)}
}

// AddFunc appends fn to the module.
func (m *Module) AddFunc(fn *Func) {
	fn.Mod = m
	m.Funcs = append(m.Funcs, fn)
	m.funcByName[fn.Name] = fn
}

// Lookup returns the function named name, or nil.
func (m *Module) Lookup(name string) *Func {
	return m.funcByName[name]
}

// Global returns the global named name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}
