package ir

import (
	"fmt"
	"strings"
)

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		kind := "int"
		if g.IsFloat {
			kind = "float"
		}
		fmt.Fprintf(&sb, "global %s %s[%d]\n", kind, g.Name, g.Words)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders the function with block labels and numbered instructions.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:%s", p, f.VRegType(p))
	}
	fmt.Fprintf(&sb, ") %s {\n", f.RetType)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(b.Preds) > 0 {
			sb.WriteString("  ; preds:")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " b%d", p.ID)
			}
		}
		if b.LoopDepth > 0 {
			fmt.Fprintf(&sb, " ; depth=%d", b.LoopDepth)
		}
		sb.WriteByte('\n')
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", in.NumberedString())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Verify checks structural invariants of the function:
//   - every block ends with exactly one terminator (and only the last
//     instruction is a terminator),
//   - successor counts match the terminator kind,
//   - operand and destination registers are well typed,
//   - predecessor lists are consistent with successor lists.
func (f *Func) Verify() error {
	preds := make(map[*Block]map[*Block]int)
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s: block b%d is empty", f.Name, b.ID)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("%s: b%d instr %d (%s): terminator placement", f.Name, b.ID, i, in)
			}
			if err := f.verifyInstr(in); err != nil {
				return fmt.Errorf("%s: b%d: %v", f.Name, b.ID, err)
			}
		}
		term := b.Instrs[len(b.Instrs)-1]
		want := 0
		switch term.Op {
		case OpBr:
			want = 2
		case OpJmp:
			want = 1
		case OpRet:
			want = 0
		}
		if len(b.Succs) != want {
			return fmt.Errorf("%s: b%d: %s has %d successors, want %d", f.Name, b.ID, term.Op, len(b.Succs), want)
		}
		for _, s := range b.Succs {
			if preds[s] == nil {
				preds[s] = make(map[*Block]int)
			}
			preds[s][b]++
		}
	}
	for _, b := range f.Blocks {
		seen := make(map[*Block]int)
		for _, p := range b.Preds {
			seen[p]++
		}
		for p, n := range preds[b] {
			if seen[p] != n {
				return fmt.Errorf("%s: b%d: pred list inconsistent with succ of b%d", f.Name, b.ID, p.ID)
			}
		}
		for p, n := range seen {
			if preds[b][p] != n {
				return fmt.Errorf("%s: b%d: stale pred b%d", f.Name, b.ID, p.ID)
			}
		}
	}
	return nil
}

func (f *Func) verifyInstr(in *Instr) error {
	checkType := func(v VReg, want Type) error {
		got := f.VRegType(v)
		if got != want {
			return fmt.Errorf("instr %q: register %s has type %s, want %s", in, v, got, want)
		}
		return nil
	}
	nargs := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("instr %q: %d args, want %d", in, len(in.Args), n)
		}
		return nil
	}
	switch in.Op {
	case OpNop:
		return nil
	case OpConst:
		if in.Dst == 0 {
			return fmt.Errorf("instr %q: const without dst", in)
		}
		want := I64
		if in.IsFloat {
			want = F64
		}
		return checkType(in.Dst, want)
	case OpCopy:
		if err := nargs(1); err != nil {
			return err
		}
		if f.VRegType(in.Dst) != f.VRegType(in.Args[0]) {
			return fmt.Errorf("instr %q: copy type mismatch", in)
		}
		return nil
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpNor,
		OpShl, OpShrA, OpShrL,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE:
		want := 2
		if in.ImmArg {
			want = 1
			switch in.Op {
			case OpMul, OpDiv, OpRem:
				return fmt.Errorf("instr %q: no immediate form", in)
			}
		}
		if err := nargs(want); err != nil {
			return err
		}
		for _, a := range in.Args {
			if err := checkType(a, I64); err != nil {
				return err
			}
		}
		return checkType(in.Dst, I64)
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if err := nargs(2); err != nil {
			return err
		}
		for _, a := range in.Args {
			if err := checkType(a, F64); err != nil {
				return err
			}
		}
		return checkType(in.Dst, F64)
	case OpFNeg:
		if err := nargs(1); err != nil {
			return err
		}
		if err := checkType(in.Args[0], F64); err != nil {
			return err
		}
		return checkType(in.Dst, F64)
	case OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE:
		if err := nargs(2); err != nil {
			return err
		}
		for _, a := range in.Args {
			if err := checkType(a, F64); err != nil {
				return err
			}
		}
		return checkType(in.Dst, I64)
	case OpCvtIF:
		if err := nargs(1); err != nil {
			return err
		}
		if err := checkType(in.Args[0], I64); err != nil {
			return err
		}
		return checkType(in.Dst, F64)
	case OpCvtFI:
		if err := nargs(1); err != nil {
			return err
		}
		if err := checkType(in.Args[0], F64); err != nil {
			return err
		}
		return checkType(in.Dst, I64)
	case OpLoad:
		if err := nargs(1); err != nil {
			return err
		}
		if err := checkType(in.Args[0], I64); err != nil {
			return err
		}
		want := I64
		if in.IsFloat {
			want = F64
		}
		return checkType(in.Dst, want)
	case OpStore:
		if err := nargs(2); err != nil {
			return err
		}
		want := I64
		if in.IsFloat {
			want = F64
		}
		if err := checkType(in.Args[0], want); err != nil {
			return err
		}
		return checkType(in.Args[1], I64)
	case OpAddrGlobal:
		if in.Sym == "" {
			return fmt.Errorf("instr %q: addrg without symbol", in)
		}
		return checkType(in.Dst, I64)
	case OpAddrLocal:
		if in.Imm < 0 || in.Imm >= int64(len(f.LocalSlots)) {
			return fmt.Errorf("instr %q: bad local slot %d", in, in.Imm)
		}
		return checkType(in.Dst, I64)
	case OpCall:
		if in.Sym == "" {
			return fmt.Errorf("instr %q: call without symbol", in)
		}
		return nil
	case OpBr:
		if err := nargs(1); err != nil {
			return err
		}
		return checkType(in.Args[0], I64)
	case OpJmp:
		return nargs(0)
	case OpRet:
		if len(in.Args) > 1 {
			return fmt.Errorf("instr %q: ret with %d args", in, len(in.Args))
		}
		if len(in.Args) == 1 {
			want := f.RetType
			if f.VRegType(in.Args[0]) != want {
				return fmt.Errorf("instr %q: ret type mismatch", in)
			}
		}
		return nil
	}
	return fmt.Errorf("instr %q: unknown op", in)
}

// ComputeLoopDepths estimates loop nesting depth for every block using
// back-edge detection on a DFS tree plus natural-loop membership.
func (f *Func) ComputeLoopDepths() {
	// Find back edges (edge b->h where h dominates b). Use a simple
	// iterative dominator computation (fine at our function sizes).
	dom := f.Dominators()
	for _, b := range f.Blocks {
		b.LoopDepth = 0
	}
	for _, b := range f.Blocks {
		for _, h := range b.Succs {
			if dominates(dom, h, b) {
				// Natural loop of back edge b->h: h plus all blocks that
				// reach b without passing through h.
				inLoop := map[*Block]bool{h: true}
				var stack []*Block
				if b != h {
					inLoop[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range n.Preds {
						if !inLoop[p] {
							inLoop[p] = true
							stack = append(stack, p)
						}
					}
				}
				for blk := range inLoop {
					blk.LoopDepth++
				}
			}
		}
	}
}

// Dominators returns the immediate-dominator map (entry maps to itself),
// computed with the iterative Cooper–Harvey–Kennedy algorithm.
func (f *Func) Dominators() map[*Block]*Block {
	// Reverse postorder.
	order := f.ReversePostorder()
	index := make(map[*Block]int, len(order))
	for i, b := range order {
		index[b] = i
	}
	idom := make(map[*Block]*Block, len(order))
	idom[f.Entry] = f.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == f.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
					continue
				}
				// intersect
				x, y := p, newIdom
				for x != y {
					for index[x] > index[y] {
						x = idom[x]
					}
					for index[y] > index[x] {
						y = idom[y]
					}
				}
				newIdom = x
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func dominates(idom map[*Block]*Block, a, b *Block) bool {
	// Does a dominate b?
	for {
		if b == a {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return b == a
		}
		b = next
	}
}

// ReversePostorder returns blocks reachable from entry in reverse postorder.
func (f *Func) ReversePostorder() []*Block {
	var order []*Block
	visited := make(map[*Block]bool)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b] = true
		for _, s := range b.Succs {
			if !visited[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(f.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
