// Package opt implements the machine-independent optimizations that run
// before code partitioning, mirroring the paper's setup ("code partitioning
// is performed ... after all the initial machine-independent optimizations
// are complete", compiled at -O3): constant folding, local copy propagation,
// local common-subexpression elimination, dead-code elimination, branch
// simplification/block merging, loop-invariant code motion, strength
// reduction of power-of-two multiplies (which matters here because integer
// multiply cannot execute in FPa), and immediate-operand folding (the MIPS
// addi/andi/slti forms the paper's listings use).
package opt

import (
	"time"

	"fpint/internal/ir"
)

// PassObserver receives one record per executed pass: the pass name, the
// function it ran on, its wall time, and the IR instruction count before
// and after. A nil observer disables instrumentation (no timing overhead).
type PassObserver func(pass, fn string, nanos int64, before, after int)

// Optimize runs the standard pass pipeline on every function in the module.
func Optimize(mod *ir.Module) {
	OptimizeObserved(mod, nil)
}

// OptimizeObserved is Optimize with per-pass instrumentation.
func OptimizeObserved(mod *ir.Module, obs PassObserver) {
	for _, fn := range mod.Funcs {
		OptimizeFuncObserved(fn, obs)
	}
}

// OptimizeFunc runs the pass pipeline on one function.
func OptimizeFunc(fn *ir.Func) {
	OptimizeFuncObserved(fn, nil)
}

// OptimizeFuncObserved runs the pass pipeline on one function, reporting
// every executed pass to obs (when non-nil).
func OptimizeFuncObserved(fn *ir.Func, obs PassObserver) {
	run := func(name string, pass func(*ir.Func) bool) bool {
		if obs == nil {
			return pass(fn)
		}
		before := countInstrs(fn)
		start := time.Now()
		changed := pass(fn)
		obs(name, fn.Name, time.Since(start).Nanoseconds(), before, countInstrs(fn))
		return changed
	}
	for i := 0; i < 3; i++ {
		changed := false
		changed = run("copy-propagate", copyPropagate) || changed
		changed = run("const-fold", constFold) || changed
		changed = run("local-cse", localCSE) || changed
		changed = run("simplify-branches", simplifyBranches) || changed
		changed = run("dce", deadCodeElim) || changed
		if !changed {
			break
		}
	}
	run("strength-reduce", strengthReduce)
	run("immediate-fold", immediateFold)
	run("dce", deadCodeElim)
	run("licm", func(f *ir.Func) bool { licm(f); return false })
	run("copy-propagate", copyPropagate)
	run("dce", deadCodeElim)
	run("cleanup", func(f *ir.Func) bool {
		f.RemoveUnreachable()
		f.Renumber()
		f.ComputeLoopDepths()
		return false
	})
}

// countInstrs counts the function's IR instructions without requiring a
// renumber.
func countInstrs(fn *ir.Func) int {
	n := 0
	for _, b := range fn.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// isPure reports whether the instruction has no side effects and always
// produces the same value from the same inputs (safe to remove or reorder
// when its result is unused).
func isPure(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpCopy, ir.OpAddrGlobal, ir.OpAddrLocal,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNor,
		ir.OpShl, ir.OpShrA, ir.OpShrL,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFNeg,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE,
		ir.OpCvtIF, ir.OpCvtFI:
		return true
	// Division and remainder can trap on divide-by-zero; keep them unless
	// the divisor is a known non-zero constant (handled in constFold).
	case ir.OpDiv, ir.OpRem, ir.OpFDiv:
		return false
	}
	return false
}

// singleDefs returns, for each vreg with exactly one defining instruction in
// the whole function, that instruction.
func singleDefs(fn *ir.Func) map[ir.VReg]*ir.Instr {
	counts := make(map[ir.VReg]int)
	def := make(map[ir.VReg]*ir.Instr)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				counts[in.Dst]++
				def[in.Dst] = in
			}
		}
	}
	for _, p := range fn.Params {
		counts[p]++ // parameters are defined at entry
		delete(def, p)
	}
	out := make(map[ir.VReg]*ir.Instr)
	for v, c := range counts {
		if c == 1 {
			if in, ok := def[v]; ok {
				out[v] = in
			}
		}
	}
	return out
}

// copyPropagate performs block-local copy propagation: after `d = copy s`,
// uses of d are rewritten to s until either d or s is redefined.
func copyPropagate(fn *ir.Func) bool {
	changed := false
	for _, b := range fn.Blocks {
		alias := make(map[ir.VReg]ir.VReg)
		invalidate := func(v ir.VReg) {
			delete(alias, v)
			for d, s := range alias {
				if s == v {
					delete(alias, d)
				}
			}
		}
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if s, ok := alias[a]; ok {
					in.Args[i] = s
					changed = true
				}
			}
			if in.Dst != 0 {
				invalidate(in.Dst)
				if in.Op == ir.OpCopy && in.Args[0] != in.Dst {
					alias[in.Dst] = in.Args[0]
				}
			}
		}
	}
	return changed
}

// constFold evaluates ALU operations over block-locally known constants and
// simplifies algebraic identities.
func constFold(fn *ir.Func) bool {
	changed := false
	for _, b := range fn.Blocks {
		consts := make(map[ir.VReg]int64)
		fconsts := make(map[ir.VReg]float64)
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				delete(consts, in.Dst)
				delete(fconsts, in.Dst)
			}
			switch in.Op {
			case ir.OpConst:
				if in.IsFloat {
					fconsts[in.Dst] = in.FImm
				} else {
					consts[in.Dst] = in.Imm
				}
				continue
			}
			if in.Dst == 0 || len(in.Args) == 0 {
				continue
			}
			if folded := tryFoldInt(in, consts); folded {
				consts[in.Dst] = in.Imm
				changed = true
				continue
			}
			if folded := tryFoldFloat(in, fconsts); folded {
				fconsts[in.Dst] = in.FImm
				changed = true
			}
		}
	}
	return changed
}

func tryFoldInt(in *ir.Instr, consts map[ir.VReg]int64) bool {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNor, ir.OpShl, ir.OpShrA, ir.OpShrL,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		a, aok := consts[in.Args[0]]
		var c int64
		cok := false
		if in.ImmArg {
			c, cok = in.Imm, true
		} else {
			c, cok = consts[in.Args[1]]
		}
		if !aok || !cok {
			return false
		}
		var r int64
		switch in.Op {
		case ir.OpAdd:
			r = a + c
		case ir.OpSub:
			r = a - c
		case ir.OpMul:
			r = a * c
		case ir.OpDiv:
			if c == 0 {
				return false
			}
			r = a / c
		case ir.OpRem:
			if c == 0 {
				return false
			}
			r = a % c
		case ir.OpAnd:
			r = a & c
		case ir.OpOr:
			r = a | c
		case ir.OpXor:
			r = a ^ c
		case ir.OpNor:
			r = ^(a | c)
		case ir.OpShl:
			r = a << uint(c&63)
		case ir.OpShrA:
			r = a >> uint(c&63)
		case ir.OpShrL:
			r = int64(uint64(a) >> uint(c&63))
		case ir.OpCmpEQ:
			r = b2i(a == c)
		case ir.OpCmpNE:
			r = b2i(a != c)
		case ir.OpCmpLT:
			r = b2i(a < c)
		case ir.OpCmpLE:
			r = b2i(a <= c)
		case ir.OpCmpGT:
			r = b2i(a > c)
		case ir.OpCmpGE:
			r = b2i(a >= c)
		}
		in.Op = ir.OpConst
		in.Args = nil
		in.Imm = r
		in.IsFloat = false
		in.ImmArg = false
		return true
	}
	return false
}

func tryFoldFloat(in *ir.Instr, fconsts map[ir.VReg]float64) bool {
	switch in.Op {
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul:
		a, aok := fconsts[in.Args[0]]
		c, cok := fconsts[in.Args[1]]
		if !aok || !cok {
			return false
		}
		var r float64
		switch in.Op {
		case ir.OpFAdd:
			r = a + c
		case ir.OpFSub:
			r = a - c
		case ir.OpFMul:
			r = a * c
		}
		in.Op = ir.OpConst
		in.Args = nil
		in.FImm = r
		in.IsFloat = true
		return true
	case ir.OpFNeg:
		a, ok := fconsts[in.Args[0]]
		if !ok {
			return false
		}
		in.Op = ir.OpConst
		in.Args = nil
		in.FImm = -a
		in.IsFloat = true
		return true
	}
	return false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cseKey identifies a pure expression for local CSE.
type cseKey struct {
	op      ir.Op
	a0      ir.VReg
	a1      ir.VReg
	imm     int64
	fimm    float64
	sym     string
	isFloat bool
	immArg  bool
}

// localCSE eliminates repeated pure computations within a block by rewriting
// later occurrences into copies of the first result.
func localCSE(fn *ir.Func) bool {
	changed := false
	for _, b := range fn.Blocks {
		avail := make(map[cseKey]ir.VReg)
		// invalidateUses removes table entries whose operands include v.
		invalidateUses := func(v ir.VReg) {
			for k, res := range avail {
				if k.a0 == v || k.a1 == v || res == v {
					delete(avail, k)
				}
			}
		}
		for _, in := range b.Instrs {
			if isPure(in) && in.Op != ir.OpCopy && in.Dst != 0 {
				k := cseKey{op: in.Op, imm: in.Imm, fimm: in.FImm, sym: in.Sym, isFloat: in.IsFloat, immArg: in.ImmArg}
				if len(in.Args) > 0 {
					k.a0 = in.Args[0]
				}
				if len(in.Args) > 1 {
					k.a1 = in.Args[1]
				}
				if prev, ok := avail[k]; ok && prev != in.Dst {
					in.Op = ir.OpCopy
					in.Args = []ir.VReg{prev}
					in.Imm, in.FImm, in.Sym = 0, 0, ""
					in.ImmArg = false
					changed = true
					invalidateUses(in.Dst)
					continue
				}
				if in.Dst != 0 {
					invalidateUses(in.Dst)
				}
				avail[k] = in.Dst
				continue
			}
			if in.Dst != 0 {
				invalidateUses(in.Dst)
			}
		}
	}
	return changed
}

// deadCodeElim removes pure instructions whose destination register is never
// used anywhere in the function. Iterates to a fixpoint.
func deadCodeElim(fn *ir.Func) bool {
	changedAny := false
	for {
		used := make(map[ir.VReg]bool)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					used[a] = true
				}
			}
		}
		changed := false
		for _, b := range fn.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if in.Dst != 0 && !used[in.Dst] && isPure(in) {
					b.RemoveAt(i)
					changed = true
				}
			}
		}
		if !changed {
			return changedAny
		}
		changedAny = true
	}
}

// simplifyBranches folds branches on block-local constants, collapses jump
// chains, and merges straight-line block pairs.
func simplifyBranches(fn *ir.Func) bool {
	changed := false
	// Fold br on constant condition.
	for _, b := range fn.Blocks {
		term := b.Terminator()
		if term == nil || term.Op != ir.OpBr {
			continue
		}
		if cv, ok := blockLocalConst(b, term.Args[0], len(b.Instrs)-1); ok {
			var target *ir.Block
			if cv != 0 {
				target = b.Succs[0]
			} else {
				target = b.Succs[1]
			}
			term.Op = ir.OpJmp
			term.Args = nil
			b.Succs = []*ir.Block{target}
			changed = true
		}
	}
	if changed {
		fn.RecomputePreds()
	}
	// Collapse jumps to empty forwarding blocks (blocks containing only a jmp).
	for _, b := range fn.Blocks {
		for si, s := range b.Succs {
			for len(s.Instrs) == 1 && s.Instrs[0].Op == ir.OpJmp && s.Succs[0] != s {
				s = s.Succs[0]
				changed = true
			}
			b.Succs[si] = s
		}
	}
	fn.RecomputePreds()
	fn.RemoveUnreachable()
	// Merge b with its unique successor when that successor has b as its
	// unique predecessor.
	merged := true
	for merged {
		merged = false
		for _, b := range fn.Blocks {
			term := b.Terminator()
			if term == nil || term.Op != ir.OpJmp {
				continue
			}
			s := b.Succs[0]
			if s == b || s == fn.Entry || len(s.Preds) != 1 {
				continue
			}
			// Splice.
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
			for _, in := range s.Instrs {
				b.Append(in)
			}
			b.Succs = s.Succs
			s.Instrs = nil
			s.Succs = nil
			fn.RecomputePreds()
			fn.RemoveUnreachable()
			merged = true
			changed = true
			break
		}
	}
	return changed
}

// blockLocalConst returns the constant value of v at position idx in block b
// if v's most recent definition before idx within b is an OpConst.
func blockLocalConst(b *ir.Block, v ir.VReg, idx int) (int64, bool) {
	for i := idx - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in.Dst == v {
			if in.Op == ir.OpConst && !in.IsFloat {
				return in.Imm, true
			}
			return 0, false
		}
	}
	return 0, false
}

// licm hoists loop-invariant pure instructions into a preheader. To stay
// sound on non-SSA IR, it only hoists instructions whose destination has a
// single definition in the whole function and whose operands are all defined
// by single definitions located outside the loop (or are parameters).
func licm(fn *ir.Func) {
	fn.Renumber()
	idom := fn.Dominators()
	defs := singleDefs(fn)
	paramSet := make(map[ir.VReg]bool)
	for _, p := range fn.Params {
		paramSet[p] = true
	}

	// Collect natural loops (header -> member set).
	type loop struct {
		header *ir.Block
		blocks map[*ir.Block]bool
	}
	var loops []loop
	for _, b := range fn.Blocks {
		for _, h := range b.Succs {
			if !domReaches(idom, h, b) {
				continue
			}
			members := map[*ir.Block]bool{h: true}
			var stack []*ir.Block
			if b != h {
				members[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range n.Preds {
					if !members[p] {
						members[p] = true
						stack = append(stack, p)
					}
				}
			}
			loops = append(loops, loop{header: h, blocks: members})
		}
	}

	for _, lp := range loops {
		// Find or create a preheader: the unique out-of-loop predecessor of
		// the header.
		var outsidePreds []*ir.Block
		for _, p := range lp.header.Preds {
			if !lp.blocks[p] {
				outsidePreds = append(outsidePreds, p)
			}
		}
		if len(outsidePreds) != 1 {
			continue
		}
		pre := outsidePreds[0]
		if t := pre.Terminator(); t == nil || t.Op != ir.OpJmp {
			continue // only hoist into a dedicated straight-line preheader
		}

		hoisted := make(map[ir.VReg]bool)
		progress := true
		for progress {
			progress = false
			// Walk blocks in layout order, not map order: the order
			// candidates are found is the order they land in the preheader,
			// and compilation must be deterministic.
			for _, blk := range fn.Blocks {
				if !lp.blocks[blk] {
					continue
				}
				for i := 0; i < len(blk.Instrs); i++ {
					in := blk.Instrs[i]
					if in.Dst == 0 || !isPure(in) || in.Op == ir.OpCopy {
						continue
					}
					if defs[in.Dst] != in {
						continue // not the unique definition
					}
					ok := true
					for _, a := range in.Args {
						if paramSet[a] || hoisted[a] {
							continue
						}
						d, one := defs[a]
						if !one || lp.blocks[d.Blk] {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					blk.RemoveAt(i)
					pre.InsertBefore(in, len(pre.Instrs)-1)
					hoisted[in.Dst] = true
					progress = true
					i--
				}
			}
		}
	}
	fn.Renumber()
}

func domReaches(idom map[*ir.Block]*ir.Block, a, b *ir.Block) bool {
	for {
		if b == a {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// commutativeInt reports whether the integer op allows swapping operands.
func commutativeInt(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNor, ir.OpCmpEQ, ir.OpCmpNE:
		return true
	}
	return false
}

// swapCompare returns the comparison with operands exchanged.
func swapCompare(op ir.Op) (ir.Op, bool) {
	switch op {
	case ir.OpCmpLT:
		return ir.OpCmpGT, true
	case ir.OpCmpLE:
		return ir.OpCmpGE, true
	case ir.OpCmpGT:
		return ir.OpCmpLT, true
	case ir.OpCmpGE:
		return ir.OpCmpLE, true
	}
	return op, false
}

// immediateFold rewrites integer ALU operations whose second operand is a
// uniquely-defined constant into immediate form (the MIPS addi/andi/slti
// shapes the paper's listings use). This keeps constants out of registers —
// matching real instruction sets — which matters for both register pressure
// and the partitioner's view of the RDG (the immediate travels with the
// instruction instead of being a separate const node).
func immediateFold(fn *ir.Func) bool {
	defs := singleDefs(fn)
	constOf := func(v ir.VReg) (int64, bool) {
		d, ok := defs[v]
		if !ok || d.Op != ir.OpConst || d.IsFloat {
			return 0, false
		}
		return d.Imm, true
	}
	changed := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.ImmArg || len(in.Args) != 2 {
				continue
			}
			switch in.Op {
			case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor,
				ir.OpShl, ir.OpShrA, ir.OpShrL,
				ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE,
				ir.OpCmpGT, ir.OpCmpGE:
			default:
				continue
			}
			if c, ok := constOf(in.Args[1]); ok {
				if in.Op == ir.OpSub {
					// sub x, #c => add x, #-c (no subi form)
					in.Op = ir.OpAdd
					c = -c
				}
				in.ImmArg = true
				in.Imm = c
				in.Args = in.Args[:1]
				changed = true
				continue
			}
			if c, ok := constOf(in.Args[0]); ok && in.Op != ir.OpSub &&
				in.Op != ir.OpShl && in.Op != ir.OpShrA && in.Op != ir.OpShrL {
				op := in.Op
				if !commutativeInt(op) {
					swapped, ok2 := swapCompare(op)
					if !ok2 {
						continue
					}
					op = swapped
				}
				in.Op = op
				in.ImmArg = true
				in.Imm = c
				in.Args = []ir.VReg{in.Args[1]}
				changed = true
			}
		}
	}
	return changed
}

// strengthReduce rewrites multiplications by power-of-two constants into
// shifts. Beyond the usual latency win (Table 1: 6-cycle multiply vs
// 1-cycle shift), this matters specifically for the paper's architecture:
// integer multiply is not supported in the FPa subsystem, so a residual
// `mul` pins its backward slice to INT, while the equivalent `shl` is
// offloadable.
func strengthReduce(fn *ir.Func) bool {
	defs := singleDefs(fn)
	constOf := func(v ir.VReg) (int64, bool) {
		d, ok := defs[v]
		if !ok || d.Op != ir.OpConst || d.IsFloat {
			return 0, false
		}
		return d.Imm, true
	}
	changed := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpMul || len(in.Args) != 2 {
				continue
			}
			c, ok := constOf(in.Args[1])
			arg := in.Args[0]
			if !ok {
				c, ok = constOf(in.Args[0])
				arg = in.Args[1]
			}
			if !ok || c <= 0 || c&(c-1) != 0 {
				continue
			}
			sh := int64(0)
			for v := c; v > 1; v >>= 1 {
				sh++
			}
			in.Op = ir.OpShl
			in.Args = []ir.VReg{arg}
			in.Imm = sh
			in.ImmArg = true
			changed = true
		}
	}
	return changed
}
