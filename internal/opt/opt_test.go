package opt_test

import (
	"strings"
	"testing"

	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/irgen"
	"fpint/internal/lang"
	"fpint/internal/opt"
)

func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := irgen.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return mod
}

// optimizeAndRun checks that optimization preserves semantics and returns
// the optimized module plus the result.
func optimizeAndRun(t *testing.T, src string) (*ir.Module, int64) {
	t.Helper()
	ref := lower(t, src)
	refRes, err := interp.New(ref).Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	mod := lower(t, src)
	opt.Optimize(mod)
	for _, fn := range mod.Funcs {
		if err := fn.Verify(); err != nil {
			t.Fatalf("verify after opt: %v\n%s", err, fn)
		}
	}
	res, err := interp.New(mod).Run()
	if err != nil {
		t.Fatalf("optimized run: %v", err)
	}
	if res.Ret != refRes.Ret || res.Output != refRes.Output {
		t.Fatalf("optimization changed semantics: %d vs %d", res.Ret, refRes.Ret)
	}
	if res.Steps > refRes.Steps {
		t.Errorf("optimized code executes more IR steps (%d) than unoptimized (%d)", res.Steps, refRes.Steps)
	}
	return mod, res.Ret
}

func countOps(mod *ir.Module, fnName string, op ir.Op) int {
	n := 0
	for _, fn := range mod.Funcs {
		if fnName != "" && fn.Name != fnName {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

func TestConstFoldCollapsesArithmetic(t *testing.T) {
	mod, ret := optimizeAndRun(t, `int main() { return 2*3 + (10 >> 1) - (7 & 5); }`)
	if ret != 6 {
		t.Fatalf("ret = %d", ret)
	}
	// Everything folds to a single constant return.
	for _, op := range []ir.Op{ir.OpAdd, ir.OpMul, ir.OpShrA, ir.OpAnd, ir.OpSub} {
		if n := countOps(mod, "main", op); n != 0 {
			t.Errorf("%s not folded (%d remain)", op, n)
		}
	}
}

func TestDeadCodeRemoved(t *testing.T) {
	mod, _ := optimizeAndRun(t, `
int main() {
	int unused = 12345;
	int alsoUnused = unused * 2;
	return 7;
}`)
	if n := countOps(mod, "main", ir.OpMul); n != 0 {
		t.Errorf("dead multiply survived")
	}
}

func TestCSEEliminatesRepeatedAddressing(t *testing.T) {
	src := `
int a[16];
int main() {
	a[5] = 3;
	a[5] = a[5] + a[5];
	return a[5];
}`
	mod, ret := optimizeAndRun(t, src)
	if ret != 6 {
		t.Fatalf("ret = %d", ret)
	}
	// The address of a[5] is computed once per block at most; after CSE,
	// fewer addrg ops than the naive 4.
	if n := countOps(mod, "main", ir.OpAddrGlobal); n > 2 {
		t.Errorf("addrg count %d suggests CSE failed", n)
	}
}

func TestImmediateFolding(t *testing.T) {
	mod, _ := optimizeAndRun(t, `
int g[8];
int main() {
	int s = 0;
	for (int i = 0; i < 8; i++) s += g[i] + 3;
	return s;
}`)
	// The loop bound comparison and the +3 should use immediate forms.
	immCount := 0
	for _, fn := range mod.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.ImmArg {
					immCount++
				}
			}
		}
	}
	if immCount < 2 {
		t.Errorf("expected immediate-form instructions, got %d\n%s", immCount, mod)
	}
}

func TestImmediateFoldSwapsComparisons(t *testing.T) {
	// `3 < x` must become `x > 3` in immediate form.
	mod, ret := optimizeAndRun(t, `
int x = 10;
int main() {
	int v = x;
	if (3 < v) return 1;
	return 0;
}`)
	if ret != 1 {
		t.Fatalf("ret = %d", ret)
	}
	found := false
	for _, b := range mod.Lookup("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCmpGT && in.ImmArg && in.Imm == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("comparison not swapped to immediate form:\n%s", mod)
	}
}

func TestLICMHoistsInvariantAddress(t *testing.T) {
	src := `
int data[64];
int total;
int main() {
	for (int i = 0; i < 64; i++) total += data[i];
	return total;
}`
	mod, _ := optimizeAndRun(t, src)
	// The addrg for data should be outside the loop: find the loop blocks
	// (depth > 0) and assert no addrg inside.
	fn := mod.Lookup("main")
	for _, b := range fn.Blocks {
		if b.LoopDepth == 0 {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpAddrGlobal {
				t.Errorf("addrg %s not hoisted out of loop (depth %d)", in, b.LoopDepth)
			}
		}
	}
}

func TestBranchFoldRemovesDeadArm(t *testing.T) {
	mod, ret := optimizeAndRun(t, `
int main() {
	int s = 0;
	if (1) s = 5; else s = 99;
	if (0) s += 1000;
	return s;
}`)
	if ret != 5 {
		t.Fatalf("ret = %d", ret)
	}
	if n := countOps(mod, "main", ir.OpBr); n != 0 {
		t.Errorf("constant branches survived: %d", n)
	}
}

func TestShortCircuitPreserved(t *testing.T) {
	optimizeAndRun(t, `
int g;
int sideEffect() { g += 1; return 1; }
int main() {
	g = 0;
	int a = 0 && sideEffect();
	int b = 1 || sideEffect();
	return g*10 + a + b;
}`)
}

func TestOptimizeIdempotent(t *testing.T) {
	src := `
int a[32];
int main() {
	int s = 0;
	for (int i = 0; i < 32; i++) { a[i] = i ^ 5; s += a[i] * 3; }
	return s;
}`
	mod := lower(t, src)
	opt.Optimize(mod)
	first := mod.String()
	opt.Optimize(mod)
	second := mod.String()
	if first != second {
		t.Errorf("optimization not idempotent:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

func TestDivisionNotFoldedUnsafely(t *testing.T) {
	// x/0 must not be folded away or executed at compile time; the program
	// legitimately guards it.
	_, ret := optimizeAndRun(t, `
int main() {
	int d = 0;
	int s = 0;
	if (d != 0) s = 10 / d;
	return s + 1;
}`)
	if ret != 1 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestPrintPreservedThroughOptimization(t *testing.T) {
	mod, _ := optimizeAndRun(t, `
int main() {
	print(1);
	print(2);
	return 0;
}`)
	if !strings.Contains(mod.String(), "call print") {
		t.Errorf("print calls were optimized away")
	}
}

func TestStrengthReduceMulByPowerOfTwo(t *testing.T) {
	mod, ret := optimizeAndRun(t, `
int g = 13;
int main() {
	int x = g;
	return x * 8 + 4 * x + x * -3;
}`)
	if ret != 13*8+4*13+13*-3 {
		t.Fatalf("ret = %d", ret)
	}
	// x*8 and 4*x become shifts; x*-3 must remain a multiply.
	if n := countOps(mod, "main", ir.OpMul); n != 1 {
		t.Errorf("mul count = %d, want 1 (only the non-power-of-two)\n%s", n, mod)
	}
	if n := countOps(mod, "main", ir.OpShl); n < 2 {
		t.Errorf("shl count = %d, want >= 2", n)
	}
}

func TestStrengthReduceNegativeValues(t *testing.T) {
	// Shifts of negative values must match multiplication semantics.
	_, ret := optimizeAndRun(t, `
int g = -7;
int main() { return g * 16; }`)
	if ret != -112 {
		t.Fatalf("ret = %d, want -112", ret)
	}
}
