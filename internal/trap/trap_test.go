package trap_test

import (
	"errors"
	"fmt"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/difftest"
	"fpint/internal/interp"
	"fpint/internal/sim"
	"fpint/internal/trap"
)

// trapCases maps each real trap kind to a program that raises it. The
// step-limit case loops forever and is bounded by the watchdog instead of
// by the program.
var trapCases = []struct {
	kind trap.Kind
	name string
	src  string
}{
	{trap.KindDivideByZero, "div", `
int z;
int main() { return 7 / z; }`},
	{trap.KindDivideByZero, "rem", `
int z;
int main() { return 7 % z; }`},
	{trap.KindOutOfBounds, "load", `
int a[4];
int idx = 1073741824;
int main() { return a[idx]; }`},
	{trap.KindOutOfBounds, "store", `
int a[4];
int idx = 1073741824;
int main() { a[idx] = 1; return 0; }`},
	{trap.KindStepLimit, "loop", `
int main() {
	int x = 0;
	while (1) { x = x + 1; }
	return x;
}`},
}

const stepLimit = 50_000

// TestTrapKindsRoundTrip is the cross-engine classification contract:
// every trap kind raised by the reference interpreter must be raised with
// the identical kind by the functional simulator under every partition
// scheme, including the step-limit watchdog, which is a property of the
// engine rather than of the program.
func TestTrapKindsRoundTrip(t *testing.T) {
	schemes := []codegen.Scheme{codegen.SchemeNone, codegen.SchemeBasic, codegen.SchemeAdvanced}
	for _, tc := range trapCases {
		t.Run(fmt.Sprintf("%s-%s", tc.kind, tc.name), func(t *testing.T) {
			mod, err := difftest.Frontend(tc.src)
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}

			im := interp.New(mod)
			im.SetStepLimit(stepLimit)
			_, ierr := im.Run()
			if got := trap.KindOf(ierr); got != tc.kind {
				t.Fatalf("interp classified %v (err=%v), want %v", got, ierr, tc.kind)
			}
			var it *trap.Trap
			if !errors.As(ierr, &it) || it.Engine != "interp" {
				t.Fatalf("interp trap does not carry its engine: %v", ierr)
			}

			for _, scheme := range schemes {
				res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme})
				if err != nil {
					t.Fatalf("%v: compile: %v", scheme, err)
				}
				m := sim.New(res.Prog)
				// The simulator executes machine code, which expands IR
				// operations; the oracle's 8x budget keeps the two watchdogs
				// ordered so a step-limit in interp is one in sim too.
				m.SetStepLimit(stepLimit * 8)
				_, serr := m.Run()
				if got := trap.KindOf(serr); got != tc.kind {
					t.Fatalf("%v: sim classified %v (err=%v), want %v", scheme, got, serr, tc.kind)
				}
				var st *trap.Trap
				if !errors.As(serr, &st) || st.Engine != "sim" {
					t.Fatalf("%v: sim trap does not carry its engine: %v", scheme, serr)
				}
			}
		})
	}
}

// TestKindOfUnwrapsChains: KindOf must see through error wrapping and
// return KindNone for nil and for non-trap errors.
func TestKindOfUnwrapsChains(t *testing.T) {
	base := trap.New(trap.KindOutOfBounds, "sim", "address %d", 1234)
	wrapped := fmt.Errorf("while checking: %w", base)
	doubly := fmt.Errorf("outer: %w", wrapped)
	for _, err := range []error{base, wrapped, doubly} {
		if got := trap.KindOf(err); got != trap.KindOutOfBounds {
			t.Errorf("KindOf(%v) = %v, want out-of-bounds", err, got)
		}
	}
	if got := trap.KindOf(nil); got != trap.KindNone {
		t.Errorf("KindOf(nil) = %v, want none", got)
	}
	if got := trap.KindOf(errors.New("plain")); got != trap.KindNone {
		t.Errorf("KindOf(plain) = %v, want none", got)
	}
}

// TestTrapStringsStable: kind names are part of the crasher-report format.
func TestTrapStringsStable(t *testing.T) {
	want := map[trap.Kind]string{
		trap.KindNone:         "none",
		trap.KindDivideByZero: "divide-by-zero",
		trap.KindOutOfBounds:  "out-of-bounds",
		trap.KindStepLimit:    "step-limit",
		trap.KindCancelled:    "cancelled",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), name)
		}
	}
	tr := trap.New(trap.KindDivideByZero, "interp", "in %s", "main")
	if tr.Error() != "interp: divide-by-zero: in main" {
		t.Errorf("unexpected Error(): %q", tr.Error())
	}
}
