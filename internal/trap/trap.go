// Package trap defines the structured runtime-fault taxonomy shared by the
// IR interpreter and the ISA-level simulators. Both execution engines
// surface faults (divide-by-zero, out-of-bounds memory access, step-limit
// exhaustion) as *Trap values so the differential-testing oracle can
// compare failure modes across engines by kind instead of matching error
// strings: a program that traps in the reference interpreter must trap with
// the same kind under every partition scheme.
package trap

import (
	"errors"
	"fmt"
)

// Kind classifies a runtime fault.
type Kind int

// Fault kinds. KindNone is the zero value and never appears in a real Trap.
const (
	KindNone         Kind = iota
	KindDivideByZero      // integer division or remainder with zero divisor
	KindOutOfBounds       // memory access outside the arena
	KindStepLimit         // dynamic instruction budget exhausted
	// KindCancelled is raised by the cooperative run hook (SetRunHook on the
	// execution engines) when an external authority — a daemon deadline, a
	// client disconnect, a shutting-down worker — aborts the run between
	// steps. It shares the watchdog discipline of KindStepLimit: the engine
	// stops at a step boundary with its state intact, and the abort surfaces
	// as a structured trap rather than a goroutine kill.
	KindCancelled
)

var kindNames = [...]string{
	KindNone:         "none",
	KindDivideByZero: "divide-by-zero",
	KindOutOfBounds:  "out-of-bounds",
	KindStepLimit:    "step-limit",
	KindCancelled:    "cancelled",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// Trap is a structured runtime fault raised by an execution engine.
type Trap struct {
	Kind   Kind
	Engine string // "interp", "sim"
	Detail string // human-readable context (function, PC, address)
}

// Error implements error.
func (t *Trap) Error() string {
	return fmt.Sprintf("%s: %s: %s", t.Engine, t.Kind, t.Detail)
}

// New builds a trap with a formatted detail string.
func New(kind Kind, engine, format string, args ...any) *Trap {
	return &Trap{Kind: kind, Engine: engine, Detail: fmt.Sprintf(format, args...)}
}

// KindOf extracts the fault kind from an error chain. It returns KindNone
// for nil errors and for errors that do not wrap a *Trap (compile errors,
// malformed programs), which the oracle treats as a distinct failure mode.
func KindOf(err error) Kind {
	var t *Trap
	if errors.As(err, &t) {
		return t.Kind
	}
	return KindNone
}
