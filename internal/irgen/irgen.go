// Package irgen lowers the checked AST into the three-address IR.
//
// Scalar locals live in virtual registers (the IR is not SSA; registers may
// be redefined). Local arrays live in frame slots addressed with OpAddrLocal.
// Globals are accessed through OpAddrGlobal plus explicit loads and stores.
// Array indexing scales by 8 (every scalar is one 8-byte word), matching the
// "sll $2,$16,2; addu; lw" idiom in the paper's examples (scaled for 64-bit
// data).
package irgen

import (
	"fmt"

	"fpint/internal/ir"
	"fpint/internal/lang"
)

// Lower converts a checked program into an IR module.
func Lower(prog *lang.Program) (*ir.Module, error) {
	mod := ir.NewModule()
	for _, g := range prog.Globals {
		words := int64(1)
		if g.Type.IsArray() {
			words = g.ArrayLen
		}
		mod.Globals = append(mod.Globals, &ir.Global{
			Name:    g.Name,
			Words:   words,
			IsFloat: g.Type == lang.TypeFloat || g.Type == lang.TypeFloatArray,
			InitInt: g.InitInt,
			InitFlt: g.InitFlt,
		})
	}
	for _, fd := range prog.Funcs {
		fn, err := lowerFunc(mod, fd)
		if err != nil {
			return nil, err
		}
		mod.AddFunc(fn)
	}
	for _, fn := range mod.Funcs {
		fn.RemoveUnreachable()
		fn.Renumber()
		fn.ComputeLoopDepths()
		if err := fn.Verify(); err != nil {
			return nil, fmt.Errorf("irgen: %v", err)
		}
	}
	return mod, nil
}

type loopCtx struct {
	breakBlk *ir.Block
	contBlk  *ir.Block
}

type funcLowerer struct {
	mod *ir.Module
	fd  *lang.FuncDecl
	fn  *ir.Func
	cur *ir.Block

	// curLine is the 1-based source line of the statement or expression
	// currently being lowered; emit stamps it onto every instruction so
	// the debug line table needs no per-site bookkeeping.
	curLine int

	// vars maps in-scope names to either a virtual register (scalars) or a
	// local array slot / array base register.
	scopes []map[string]varBinding
	loops  []loopCtx
}

type varBinding struct {
	reg    ir.VReg // scalar register, or array base address register (params)
	typ    lang.Type
	slot   int64 // local array slot index when isSlot
	isSlot bool
}

func irType(t lang.Type) ir.Type {
	switch t {
	case lang.TypeFloat:
		return ir.F64
	case lang.TypeVoid:
		return ir.Void
	default:
		// int, and array bases (addresses) are I64.
		return ir.I64
	}
}

func lowerFunc(mod *ir.Module, fd *lang.FuncDecl) (*ir.Func, error) {
	fl := &funcLowerer{mod: mod, fd: fd}
	fn := ir.NewFunc(fd.Name, irType(fd.Ret))
	fn.Line = fd.Pos.Line
	fl.curLine = fd.Pos.Line
	fl.fn = fn
	fn.Entry = fn.NewBlock()
	fl.cur = fn.Entry
	fl.pushScope()
	for _, prm := range fd.Params {
		var reg ir.VReg
		if prm.Type.IsArray() {
			reg = fn.NewVReg(ir.I64)
		} else {
			reg = fn.NewVReg(irType(prm.Type))
		}
		fn.Params = append(fn.Params, reg)
		fl.bind(prm.Name, varBinding{reg: reg, typ: prm.Type})
	}
	if err := fl.stmt(fd.Body); err != nil {
		return nil, err
	}
	// Ensure the exit paths end in ret.
	fl.sealWithReturn()
	fl.popScope()
	return fn, nil
}

// sealWithReturn appends a default return to any block lacking a terminator.
func (fl *funcLowerer) sealWithReturn() {
	for _, b := range fl.fn.Blocks {
		if b.Terminator() != nil {
			continue
		}
		ret := &ir.Instr{Op: ir.OpRet, Line: fl.fn.Line}
		if fl.fn.RetType != ir.Void {
			z := fl.fn.NewVReg(fl.fn.RetType)
			if fl.fn.RetType == ir.F64 {
				b.Append(&ir.Instr{Op: ir.OpConst, Dst: z, IsFloat: true, Line: fl.fn.Line})
			} else {
				b.Append(&ir.Instr{Op: ir.OpConst, Dst: z, Line: fl.fn.Line})
			}
			ret.Args = []ir.VReg{z}
		}
		b.Append(ret)
	}
}

func (fl *funcLowerer) pushScope() {
	fl.scopes = append(fl.scopes, make(map[string]varBinding))
}
func (fl *funcLowerer) popScope() { fl.scopes = fl.scopes[:len(fl.scopes)-1] }

func (fl *funcLowerer) bind(name string, vb varBinding) {
	fl.scopes[len(fl.scopes)-1][name] = vb
}

func (fl *funcLowerer) lookup(name string) (varBinding, bool) {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if vb, ok := fl.scopes[i][name]; ok {
			return vb, true
		}
	}
	return varBinding{}, false
}

func (fl *funcLowerer) emit(in *ir.Instr) *ir.Instr {
	if in.Line == 0 {
		in.Line = fl.curLine
	}
	return fl.cur.Append(in)
}

// setLine records the source line of the node being lowered. Synthesized
// nodes (line 0) keep the enclosing construct's line.
func (fl *funcLowerer) setLine(p lang.Pos) {
	if p.Line != 0 {
		fl.curLine = p.Line
	}
}

func (fl *funcLowerer) emitConstInt(v int64) ir.VReg {
	dst := fl.fn.NewVReg(ir.I64)
	fl.emit(&ir.Instr{Op: ir.OpConst, Dst: dst, Imm: v})
	return dst
}

func (fl *funcLowerer) emitConstFloat(v float64) ir.VReg {
	dst := fl.fn.NewVReg(ir.F64)
	fl.emit(&ir.Instr{Op: ir.OpConst, Dst: dst, FImm: v, IsFloat: true})
	return dst
}

// branch terminates the current block with a conditional branch.
func (fl *funcLowerer) branch(cond ir.VReg, taken, fallthru *ir.Block) {
	fl.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{cond}})
	fl.cur.Succs = []*ir.Block{taken, fallthru}
}

func (fl *funcLowerer) jump(to *ir.Block) {
	fl.emit(&ir.Instr{Op: ir.OpJmp})
	fl.cur.Succs = []*ir.Block{to}
}

func (fl *funcLowerer) stmt(s lang.Stmt) error {
	fl.setLine(lang.StmtPos(s))
	switch st := s.(type) {
	case *lang.BlockStmt:
		fl.pushScope()
		for _, sub := range st.Stmts {
			if err := fl.stmt(sub); err != nil {
				return err
			}
			if fl.cur.Terminator() != nil {
				break // rest of the block is unreachable
			}
		}
		fl.popScope()
		return nil
	case *lang.VarDeclStmt:
		if st.Type.IsArray() {
			slot := fl.fn.AddLocalSlot(st.ArrayLen)
			fl.bind(st.Name, varBinding{typ: st.Type, slot: slot, isSlot: true})
			return nil
		}
		reg := fl.fn.NewVReg(irType(st.Type))
		if st.Init != nil {
			v, err := fl.expr(st.Init)
			if err != nil {
				return err
			}
			fl.emit(&ir.Instr{Op: ir.OpCopy, Dst: reg, Args: []ir.VReg{v}})
		} else {
			fl.emit(&ir.Instr{Op: ir.OpConst, Dst: reg, IsFloat: st.Type == lang.TypeFloat})
		}
		fl.bind(st.Name, varBinding{reg: reg, typ: st.Type})
		return nil
	case *lang.ExprStmt:
		_, err := fl.expr(st.X)
		return err
	case *lang.IfStmt:
		thenBlk := fl.fn.NewBlock()
		var elseBlk *ir.Block
		joinBlk := fl.fn.NewBlock()
		if st.Else != nil {
			elseBlk = fl.fn.NewBlock()
		} else {
			elseBlk = joinBlk
		}
		cond, err := fl.expr(st.Cond)
		if err != nil {
			return err
		}
		fl.branch(cond, thenBlk, elseBlk)
		fl.cur = thenBlk
		if err := fl.stmt(st.Then); err != nil {
			return err
		}
		if fl.cur.Terminator() == nil {
			fl.jump(joinBlk)
		}
		if st.Else != nil {
			fl.cur = elseBlk
			if err := fl.stmt(st.Else); err != nil {
				return err
			}
			if fl.cur.Terminator() == nil {
				fl.jump(joinBlk)
			}
		}
		fl.cur = joinBlk
		return nil
	case *lang.WhileStmt:
		condBlk := fl.fn.NewBlock()
		bodyBlk := fl.fn.NewBlock()
		exitBlk := fl.fn.NewBlock()
		fl.jump(condBlk)
		fl.cur = condBlk
		cond, err := fl.expr(st.Cond)
		if err != nil {
			return err
		}
		fl.branch(cond, bodyBlk, exitBlk)
		fl.loops = append(fl.loops, loopCtx{breakBlk: exitBlk, contBlk: condBlk})
		fl.cur = bodyBlk
		if err := fl.stmt(st.Body); err != nil {
			return err
		}
		if fl.cur.Terminator() == nil {
			fl.jump(condBlk)
		}
		fl.loops = fl.loops[:len(fl.loops)-1]
		fl.cur = exitBlk
		return nil
	case *lang.DoWhileStmt:
		bodyBlk := fl.fn.NewBlock()
		condBlk := fl.fn.NewBlock()
		exitBlk := fl.fn.NewBlock()
		fl.jump(bodyBlk)
		fl.loops = append(fl.loops, loopCtx{breakBlk: exitBlk, contBlk: condBlk})
		fl.cur = bodyBlk
		if err := fl.stmt(st.Body); err != nil {
			return err
		}
		if fl.cur.Terminator() == nil {
			fl.jump(condBlk)
		}
		fl.cur = condBlk
		cond, err := fl.expr(st.Cond)
		if err != nil {
			return err
		}
		fl.branch(cond, bodyBlk, exitBlk)
		fl.loops = fl.loops[:len(fl.loops)-1]
		fl.cur = exitBlk
		return nil
	case *lang.ForStmt:
		fl.pushScope()
		if st.Init != nil {
			if err := fl.stmt(st.Init); err != nil {
				return err
			}
		}
		condBlk := fl.fn.NewBlock()
		bodyBlk := fl.fn.NewBlock()
		postBlk := fl.fn.NewBlock()
		exitBlk := fl.fn.NewBlock()
		fl.jump(condBlk)
		fl.cur = condBlk
		if st.Cond != nil {
			cond, err := fl.expr(st.Cond)
			if err != nil {
				return err
			}
			fl.branch(cond, bodyBlk, exitBlk)
		} else {
			fl.jump(bodyBlk)
		}
		fl.loops = append(fl.loops, loopCtx{breakBlk: exitBlk, contBlk: postBlk})
		fl.cur = bodyBlk
		if err := fl.stmt(st.Body); err != nil {
			return err
		}
		if fl.cur.Terminator() == nil {
			fl.jump(postBlk)
		}
		fl.loops = fl.loops[:len(fl.loops)-1]
		fl.cur = postBlk
		if st.Post != nil {
			if _, err := fl.expr(st.Post); err != nil {
				return err
			}
		}
		fl.jump(condBlk)
		fl.cur = exitBlk
		fl.popScope()
		return nil
	case *lang.ReturnStmt:
		in := &ir.Instr{Op: ir.OpRet}
		if st.X != nil {
			v, err := fl.expr(st.X)
			if err != nil {
				return err
			}
			in.Args = []ir.VReg{v}
		}
		fl.emit(in)
		return nil
	case *lang.BreakStmt:
		lc := fl.loops[len(fl.loops)-1]
		fl.jump(lc.breakBlk)
		return nil
	case *lang.ContinueStmt:
		lc := fl.loops[len(fl.loops)-1]
		fl.jump(lc.contBlk)
		return nil
	}
	return fmt.Errorf("irgen: unknown statement %T", s)
}

// addr computes the byte address register for an lvalue that lives in
// memory (globals and array elements). ok=false means the lvalue is a
// register-resident scalar local.
func (fl *funcLowerer) addr(x lang.Expr) (addrReg ir.VReg, isFloat bool, inMem bool, err error) {
	switch e := x.(type) {
	case *lang.Ident:
		if _, local := fl.lookup(e.Name); local {
			return 0, false, false, nil
		}
		g := fl.mod.Global(e.Name)
		if g == nil {
			return 0, false, false, fmt.Errorf("irgen: unknown identifier %q", e.Name)
		}
		dst := fl.fn.NewVReg(ir.I64)
		fl.emit(&ir.Instr{Op: ir.OpAddrGlobal, Dst: dst, Sym: e.Name})
		return dst, g.IsFloat, true, nil
	case *lang.IndexExpr:
		idx, err := fl.expr(e.Idx)
		if err != nil {
			return 0, false, false, err
		}
		// Scale index by 8.
		three := fl.emitConstInt(3)
		scaled := fl.fn.NewVReg(ir.I64)
		fl.emit(&ir.Instr{Op: ir.OpShl, Dst: scaled, Args: []ir.VReg{idx, three}})
		var base ir.VReg
		if vb, local := fl.lookup(e.Base.Name); local {
			if vb.isSlot {
				base = fl.fn.NewVReg(ir.I64)
				fl.emit(&ir.Instr{Op: ir.OpAddrLocal, Dst: base, Imm: vb.slot})
			} else {
				base = vb.reg // array parameter: base address in a register
			}
		} else {
			base = fl.fn.NewVReg(ir.I64)
			fl.emit(&ir.Instr{Op: ir.OpAddrGlobal, Dst: base, Sym: e.Base.Name})
		}
		sum := fl.fn.NewVReg(ir.I64)
		fl.emit(&ir.Instr{Op: ir.OpAdd, Dst: sum, Args: []ir.VReg{base, scaled}})
		return sum, e.ExprType() == lang.TypeFloat, true, nil
	}
	return 0, false, false, fmt.Errorf("irgen: not an lvalue: %T", x)
}

func (fl *funcLowerer) expr(x lang.Expr) (ir.VReg, error) {
	fl.setLine(lang.ExprPos(x))
	switch e := x.(type) {
	case *lang.IntLit:
		return fl.emitConstInt(e.Val), nil
	case *lang.FloatLit:
		return fl.emitConstFloat(e.Val), nil
	case *lang.Ident:
		if vb, local := fl.lookup(e.Name); local {
			if vb.isSlot {
				base := fl.fn.NewVReg(ir.I64)
				fl.emit(&ir.Instr{Op: ir.OpAddrLocal, Dst: base, Imm: vb.slot})
				return base, nil
			}
			return vb.reg, nil
		}
		g := fl.mod.Global(e.Name)
		if g == nil {
			return 0, fmt.Errorf("irgen: unknown identifier %q", e.Name)
		}
		base := fl.fn.NewVReg(ir.I64)
		fl.emit(&ir.Instr{Op: ir.OpAddrGlobal, Dst: base, Sym: e.Name})
		if e.ExprType().IsArray() {
			return base, nil // arrays decay to their address
		}
		t := ir.I64
		if g.IsFloat {
			t = ir.F64
		}
		dst := fl.fn.NewVReg(t)
		fl.emit(&ir.Instr{Op: ir.OpLoad, Dst: dst, Args: []ir.VReg{base}, IsFloat: g.IsFloat})
		return dst, nil
	case *lang.IndexExpr:
		a, isF, _, err := fl.addr(e)
		if err != nil {
			return 0, err
		}
		t := ir.I64
		if isF {
			t = ir.F64
		}
		dst := fl.fn.NewVReg(t)
		fl.emit(&ir.Instr{Op: ir.OpLoad, Dst: dst, Args: []ir.VReg{a}, IsFloat: isF})
		return dst, nil
	case *lang.CallExpr:
		return fl.call(e)
	case *lang.UnaryExpr:
		v, err := fl.expr(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case lang.UnNeg:
			if e.ExprType() == lang.TypeFloat {
				dst := fl.fn.NewVReg(ir.F64)
				fl.emit(&ir.Instr{Op: ir.OpFNeg, Dst: dst, Args: []ir.VReg{v}})
				return dst, nil
			}
			zero := fl.emitConstInt(0)
			dst := fl.fn.NewVReg(ir.I64)
			fl.emit(&ir.Instr{Op: ir.OpSub, Dst: dst, Args: []ir.VReg{zero, v}})
			return dst, nil
		case lang.UnNot:
			zero := fl.emitConstInt(0)
			dst := fl.fn.NewVReg(ir.I64)
			fl.emit(&ir.Instr{Op: ir.OpCmpEQ, Dst: dst, Args: []ir.VReg{v, zero}})
			return dst, nil
		case lang.UnBitNot:
			zero := fl.emitConstInt(0)
			dst := fl.fn.NewVReg(ir.I64)
			fl.emit(&ir.Instr{Op: ir.OpNor, Dst: dst, Args: []ir.VReg{v, zero}})
			return dst, nil
		}
		return 0, fmt.Errorf("irgen: unknown unary op")
	case *lang.BinaryExpr:
		if e.Op == lang.BinLAnd || e.Op == lang.BinLOr {
			return fl.shortCircuit(e)
		}
		l, err := fl.expr(e.L)
		if err != nil {
			return 0, err
		}
		r, err := fl.expr(e.R)
		if err != nil {
			return 0, err
		}
		return fl.binOp(e.Op, e.L.ExprType(), l, r)
	case *lang.CondExpr:
		return fl.ternary(e)
	case *lang.AssignExpr:
		return fl.assign(e)
	case *lang.IncDecExpr:
		op := lang.BinAdd
		if e.Decr {
			op = lang.BinSub
		}
		one := &lang.IntLit{Val: 1}
		one.SetType(lang.TypeInt)
		return fl.assign(&lang.AssignExpr{Lhs: e.Lhs, Rhs: one, Op: op, OpValid: true, Pos: e.Pos})
	}
	return 0, fmt.Errorf("irgen: unknown expression %T", x)
}

var intBinOps = map[lang.BinOp]ir.Op{
	lang.BinAdd: ir.OpAdd, lang.BinSub: ir.OpSub, lang.BinMul: ir.OpMul,
	lang.BinDiv: ir.OpDiv, lang.BinRem: ir.OpRem,
	lang.BinAnd: ir.OpAnd, lang.BinOr: ir.OpOr, lang.BinXor: ir.OpXor,
	lang.BinShl: ir.OpShl, lang.BinShr: ir.OpShrA,
	lang.BinLt: ir.OpCmpLT, lang.BinLe: ir.OpCmpLE,
	lang.BinGt: ir.OpCmpGT, lang.BinGe: ir.OpCmpGE,
	lang.BinEq: ir.OpCmpEQ, lang.BinNe: ir.OpCmpNE,
}

var fltBinOps = map[lang.BinOp]ir.Op{
	lang.BinAdd: ir.OpFAdd, lang.BinSub: ir.OpFSub, lang.BinMul: ir.OpFMul,
	lang.BinDiv: ir.OpFDiv,
	lang.BinLt:  ir.OpFCmpLT, lang.BinLe: ir.OpFCmpLE,
	lang.BinGt: ir.OpFCmpGT, lang.BinGe: ir.OpFCmpGE,
	lang.BinEq: ir.OpFCmpEQ, lang.BinNe: ir.OpFCmpNE,
}

func (fl *funcLowerer) binOp(op lang.BinOp, operandType lang.Type, l, r ir.VReg) (ir.VReg, error) {
	if operandType == lang.TypeFloat {
		irop, ok := fltBinOps[op]
		if !ok {
			return 0, fmt.Errorf("irgen: float op %s unsupported", op)
		}
		t := ir.F64
		if irop >= ir.OpFCmpEQ && irop <= ir.OpFCmpGE {
			t = ir.I64
		}
		dst := fl.fn.NewVReg(t)
		fl.emit(&ir.Instr{Op: irop, Dst: dst, Args: []ir.VReg{l, r}})
		return dst, nil
	}
	irop, ok := intBinOps[op]
	if !ok {
		return 0, fmt.Errorf("irgen: int op %s unsupported", op)
	}
	dst := fl.fn.NewVReg(ir.I64)
	fl.emit(&ir.Instr{Op: irop, Dst: dst, Args: []ir.VReg{l, r}})
	return dst, nil
}

// shortCircuit lowers && and || with control flow into a result register.
func (fl *funcLowerer) shortCircuit(e *lang.BinaryExpr) (ir.VReg, error) {
	res := fl.fn.NewVReg(ir.I64)
	rhsBlk := fl.fn.NewBlock()
	shortBlk := fl.fn.NewBlock()
	joinBlk := fl.fn.NewBlock()

	l, err := fl.expr(e.L)
	if err != nil {
		return 0, err
	}
	if e.Op == lang.BinLAnd {
		fl.branch(l, rhsBlk, shortBlk) // true -> evaluate RHS, false -> short 0
	} else {
		fl.branch(l, shortBlk, rhsBlk) // true -> short 1
	}

	fl.cur = shortBlk
	short := int64(0)
	if e.Op == lang.BinLOr {
		short = 1
	}
	fl.emit(&ir.Instr{Op: ir.OpConst, Dst: res, Imm: short})
	fl.jump(joinBlk)

	fl.cur = rhsBlk
	r, err := fl.expr(e.R)
	if err != nil {
		return 0, err
	}
	zero := fl.emitConstInt(0)
	fl.emit(&ir.Instr{Op: ir.OpCmpNE, Dst: res, Args: []ir.VReg{r, zero}})
	fl.jump(joinBlk)

	fl.cur = joinBlk
	return res, nil
}

func (fl *funcLowerer) ternary(e *lang.CondExpr) (ir.VReg, error) {
	t := irType(e.ExprType())
	res := fl.fn.NewVReg(t)
	thenBlk := fl.fn.NewBlock()
	elseBlk := fl.fn.NewBlock()
	joinBlk := fl.fn.NewBlock()
	cond, err := fl.expr(e.Cond)
	if err != nil {
		return 0, err
	}
	fl.branch(cond, thenBlk, elseBlk)
	fl.cur = thenBlk
	tv, err := fl.expr(e.Then)
	if err != nil {
		return 0, err
	}
	fl.emit(&ir.Instr{Op: ir.OpCopy, Dst: res, Args: []ir.VReg{tv}})
	fl.jump(joinBlk)
	fl.cur = elseBlk
	ev, err := fl.expr(e.Else)
	if err != nil {
		return 0, err
	}
	fl.emit(&ir.Instr{Op: ir.OpCopy, Dst: res, Args: []ir.VReg{ev}})
	fl.jump(joinBlk)
	fl.cur = joinBlk
	return res, nil
}

func (fl *funcLowerer) assign(e *lang.AssignExpr) (ir.VReg, error) {
	// Register-resident scalar local?
	if id, ok := e.Lhs.(*lang.Ident); ok {
		if vb, local := fl.lookup(id.Name); local && !vb.isSlot {
			rhs, err := fl.rhsValue(e, func() (ir.VReg, error) { return vb.reg, nil })
			if err != nil {
				return 0, err
			}
			fl.emit(&ir.Instr{Op: ir.OpCopy, Dst: vb.reg, Args: []ir.VReg{rhs}})
			return vb.reg, nil
		}
	}
	// Memory-resident lvalue: compute the address once.
	a, isF, _, err := fl.addr(e.Lhs)
	if err != nil {
		return 0, err
	}
	rhs, err := fl.rhsValue(e, func() (ir.VReg, error) {
		t := ir.I64
		if isF {
			t = ir.F64
		}
		old := fl.fn.NewVReg(t)
		fl.emit(&ir.Instr{Op: ir.OpLoad, Dst: old, Args: []ir.VReg{a}, IsFloat: isF})
		return old, nil
	})
	if err != nil {
		return 0, err
	}
	fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.VReg{rhs, a}, IsFloat: isF})
	return rhs, nil
}

// rhsValue computes the value to store for an assignment, handling compound
// operators by reading the old value through oldVal.
func (fl *funcLowerer) rhsValue(e *lang.AssignExpr, oldVal func() (ir.VReg, error)) (ir.VReg, error) {
	rhs, err := fl.expr(e.Rhs)
	if err != nil {
		return 0, err
	}
	if !e.OpValid {
		return rhs, nil
	}
	old, err := oldVal()
	if err != nil {
		return 0, err
	}
	return fl.binOp(e.Op, e.Lhs.ExprType(), old, rhs)
}

func (fl *funcLowerer) call(e *lang.CallExpr) (ir.VReg, error) {
	// Builtin conversions lower to IR conversion ops.
	switch e.Fn {
	case "__itof":
		v, err := fl.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		dst := fl.fn.NewVReg(ir.F64)
		fl.emit(&ir.Instr{Op: ir.OpCvtIF, Dst: dst, Args: []ir.VReg{v}})
		return dst, nil
	case "__ftoi":
		v, err := fl.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		dst := fl.fn.NewVReg(ir.I64)
		fl.emit(&ir.Instr{Op: ir.OpCvtFI, Dst: dst, Args: []ir.VReg{v}})
		return dst, nil
	}
	var args []ir.VReg
	for _, a := range e.Args {
		v, err := fl.expr(a)
		if err != nil {
			return 0, err
		}
		args = append(args, v)
	}
	in := &ir.Instr{Op: ir.OpCall, Sym: e.Fn, Args: args}
	if rt := e.ExprType(); rt != lang.TypeVoid {
		in.Dst = fl.fn.NewVReg(irType(rt))
	}
	fl.emit(in)
	return in.Dst, nil
}
