package irgen_test

import (
	"testing"

	"fpint/internal/ir"
	"fpint/internal/irgen"
	"fpint/internal/lang"
)

func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := irgen.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return mod
}

func TestLoweredFunctionsVerify(t *testing.T) {
	mod := lower(t, `
int g[4];
float f;
int helper(int a, float b) { f = b; return a + 1; }
int main() {
	int s = 0;
	for (int i = 0; i < 4; i++) {
		g[i] = i;
		if (i % 2 == 0 && i > 0) s += g[i];
		while (s > 100) s -= 7;
	}
	return helper(s, 1.5);
}`)
	if len(mod.Funcs) != 2 {
		t.Fatalf("got %d functions", len(mod.Funcs))
	}
	for _, fn := range mod.Funcs {
		if err := fn.Verify(); err != nil {
			t.Errorf("%s: %v", fn.Name, err)
		}
	}
}

func TestGlobalLayout(t *testing.T) {
	mod := lower(t, `
int a;
int b[10];
float c[3] = {1.0, 2.0, 3.0};
int main() { return 0; }`)
	if len(mod.Globals) != 3 {
		t.Fatalf("got %d globals", len(mod.Globals))
	}
	if mod.Global("a").Words != 1 || mod.Global("b").Words != 10 || mod.Global("c").Words != 3 {
		t.Errorf("global sizes wrong")
	}
	if !mod.Global("c").IsFloat || len(mod.Global("c").InitFlt) != 3 {
		t.Errorf("float array initializer wrong: %+v", mod.Global("c"))
	}
}

func TestArrayIndexScalesByEight(t *testing.T) {
	mod := lower(t, `
int a[8];
int main() { return a[3]; }`)
	// Index 3 must be scaled <<3 (or folded); ensure a shl-by-3 or the
	// constant 24 appears feeding the address.
	fn := mod.Lookup("main")
	found := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpShl {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no shift-by-3 address scaling in:\n%s", fn)
	}
}

func TestLocalArrayUsesFrameSlot(t *testing.T) {
	mod := lower(t, `
int main() {
	int buf[5];
	buf[0] = 3;
	return buf[0];
}`)
	fn := mod.Lookup("main")
	if len(fn.LocalSlots) != 1 || fn.LocalSlots[0] != 5 {
		t.Fatalf("local slots = %v", fn.LocalSlots)
	}
	found := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAddrLocal {
				found = true
			}
		}
	}
	if !found {
		t.Error("no OpAddrLocal emitted for local array")
	}
}

func TestShortCircuitCreatesBranches(t *testing.T) {
	mod := lower(t, `
int x; int y;
int main() { return (x > 0 && y > 0) ? 1 : 2; }`)
	fn := mod.Lookup("main")
	branches := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBr {
				branches++
			}
		}
	}
	if branches < 2 {
		t.Errorf("short-circuit + ternary produced %d branches, want >= 2", branches)
	}
}

func TestVoidFunctionGetsImplicitReturn(t *testing.T) {
	mod := lower(t, `
int g;
void setg(int v) { g = v; }
int main() { setg(9); return g; }`)
	fn := mod.Lookup("setg")
	rets := 0
	for _, b := range fn.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpRet {
			rets++
		}
	}
	if rets == 0 {
		t.Error("void function lacks a return")
	}
}

func TestMissingReturnValueSynthesized(t *testing.T) {
	// A control path that falls off the end of an int function returns 0.
	mod := lower(t, `
int f(int x) { if (x > 0) return 5; }
int main() { return f(-1) + f(1); }`)
	fn := mod.Lookup("f")
	if err := fn.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, b := range fn.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpRet && len(tm.Args) == 0 {
			t.Error("int function has a bare return")
		}
	}
}

func TestBreakContinueTargets(t *testing.T) {
	mod := lower(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		if (i == 3) continue;
		if (i == 7) break;
		s += i;
	}
	return s;
}`)
	fn := mod.Lookup("main")
	if err := fn.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Loop depth must be computed for the body blocks.
	hasLoopBlock := false
	for _, b := range fn.Blocks {
		if b.LoopDepth > 0 {
			hasLoopBlock = true
		}
	}
	if !hasLoopBlock {
		t.Error("no blocks marked as loop members")
	}
}

func TestFloatLowering(t *testing.T) {
	mod := lower(t, `
float v;
int main() {
	v = 2.5;
	float x = v * 2.0;
	return (int) x - (int) v;
}`)
	fn := mod.Lookup("main")
	var sawFMul, sawCvt, sawFStore bool
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpFMul:
				sawFMul = true
			case ir.OpCvtFI:
				sawCvt = true
			case ir.OpStore:
				if in.IsFloat {
					sawFStore = true
				}
			}
		}
	}
	if !sawFMul || !sawCvt || !sawFStore {
		t.Errorf("float lowering incomplete: fmul=%v cvt=%v fstore=%v", sawFMul, sawCvt, sawFStore)
	}
}
