package sim

import (
	"sort"

	"fpint/internal/isa"
	"fpint/internal/obs"
)

// AddTo exports the functional-run statistics into a metrics registry
// under the given prefix (e.g. "sim."): dynamic totals, per-subsystem
// instruction counts, partitioning overhead counters, and a per-opcode
// breakdown. Opcode counters are emitted in sorted order so the registry
// encoders stay deterministic.
func (s *Stats) AddTo(r *obs.Registry, prefix string) {
	c := func(name string, v int64) { r.Counter(prefix + name).Add(v) }
	c(obs.MetricDynamicInstructions, s.Total)
	c(obs.MetricLoads, s.Loads)
	c(obs.MetricStores, s.Stores)
	c("branches", s.Branches)
	c("copies", s.Copies)
	c("dups", s.Dups)
	for sub := 0; sub < 3; sub++ {
		c("subsystem."+isa.Subsystem(sub).String(), s.BySubsys[sub])
	}
	r.Gauge(prefix + obs.MetricOffloadFraction).Set(s.OffloadFraction())

	ops := make([]isa.Opcode, 0, len(s.ByOp))
	for op := range s.ByOp {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		c("op."+op.String(), s.ByOp[op])
	}
}
