// Package sim implements the ISA-level functional simulator. It executes
// assembled programs, collects dynamic instruction statistics per subsystem
// (the data behind Figure 8 and the §7.2 overhead numbers), and streams the
// dynamic instruction sequence to the timing model through a callback —
// the classic SimpleScalar-style functional-first organization.
package sim

import (
	"fmt"
	"math"
	"strconv"

	"fpint/internal/isa"
	"fpint/internal/trap"
)

// MemSize is the flat memory arena (16 MiB): data segment at the bottom,
// stack at the top growing down.
const MemSize = 16 << 20

// Event describes one committed dynamic instruction for the timing model.
type Event struct {
	PC      int
	Op      isa.Opcode
	IsDup   bool
	Dst     int16 // encoded register: class*32+num, -1 when none
	Src1    int16
	Src2    int16
	MemAddr int64 // effective address for loads/stores
	Taken   bool  // conditional branch outcome
	NextPC  int   // PC of the next dynamic instruction
}

// EncodeReg packs a register reference for Event fields.
func EncodeReg(class isa.RegClass, n uint8) int16 {
	return int16(class)*32 + int16(n)
}

// Stats aggregates a run.
type Stats struct {
	Total    int64 // dynamic instructions (HALT excluded)
	BySubsys [3]int64
	Loads    int64
	Stores   int64
	Branches int64 // conditional branches
	Copies   int64 // CP2FP + CP2INT executed
	Dups     int64 // duplicated instructions executed
	ByOp     map[isa.Opcode]int64
}

// OffloadFraction returns the fraction of dynamic instructions executed by
// the augmented FP subsystem (Figure 8's metric).
func (s *Stats) OffloadFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.BySubsys[isa.SubFPa]) / float64(s.Total)
}

// Result of a functional run.
type Result struct {
	Ret    int64 // value returned by main (register V0 at HALT)
	Output string
	Stats  Stats
}

// Memory is cleared between runs page by page; only pages dirtied by a
// store (or the data-segment init) are touched, so resetting a machine
// costs proportional to the memory the previous program actually wrote,
// not to the 16 MiB arena.
const (
	memPageShift = 12 // 4 KiB pages
	numMemPages  = MemSize >> memPageShift
)

// Machine is the functional simulator state. A machine is reusable: build
// one with NewMachine, then Reset it onto successive programs — the memory
// arena, output buffer, statistics map, and Result are allocated once and
// recycled, so a warm machine runs without heap traffic.
type Machine struct {
	prog *isa.Program

	R  [32]int64  // integer registers
	F  [32]uint64 // FP registers (raw 64-bit patterns)
	PC int

	mem   []byte
	dirty []bool // per-page store tracking for cheap Reset
	out   []byte

	maxSteps int64

	// Cooperative cancellation (see SetRunHook). Reset preserves the hook,
	// like Trace; hookLeft is the per-run countdown to the next check.
	hook      func(steps int64) error
	hookEvery int64
	hookLeft  int64

	// res is the machine-owned Result returned by Run; it is overwritten by
	// the next Reset/Run of this machine.
	res *Result

	// Trace receives every committed instruction when non-nil. Reset
	// preserves the callback.
	Trace func(Event)
}

// DefaultHookInterval is the step cadence used by SetRunHook when the
// caller passes every <= 0: frequent enough that a deadline abort lands
// within microseconds of host time, rare enough to be invisible in the
// steady-state dispatch cost.
const DefaultHookInterval = 1024

// NewMachine builds an unbound machine. Call Reset to load a program.
func NewMachine() *Machine {
	return &Machine{
		mem:      make([]byte, MemSize),
		dirty:    make([]bool, numMemPages),
		res:      &Result{Stats: Stats{ByOp: make(map[isa.Opcode]int64)}},
		maxSteps: 4_000_000_000,
	}
}

// New builds a machine with the program's data segment initialized.
func New(prog *isa.Program) *Machine {
	m := NewMachine()
	m.Reset(prog)
	return m
}

// Reset rebinds the machine to prog and restores the power-on state:
// dirtied memory pages are zeroed, registers and statistics cleared, the
// data segment re-initialized, and the step limit restored to its default.
// The Trace callback is preserved. The Result returned by a previous Run
// (including its Stats.ByOp map and Output) is invalidated.
func (m *Machine) Reset(prog *isa.Program) {
	for page, d := range m.dirty {
		if d {
			lo := page << memPageShift
			clear(m.mem[lo : lo+(1<<memPageShift)])
			m.dirty[page] = false
		}
	}
	m.prog = prog
	m.R = [32]int64{}
	m.F = [32]uint64{}
	m.PC = 0
	m.out = m.out[:0]
	m.maxSteps = 4_000_000_000
	m.hookLeft = m.hookEvery
	byOp := m.res.Stats.ByOp
	clear(byOp)
	*m.res = Result{Stats: Stats{ByOp: byOp}}
	for addr, w := range prog.DataWords {
		m.storeWord(addr, w)
	}
	m.R[isa.RegSP] = MemSize - 64
}

// SetStepLimit bounds the dynamic instruction count.
func (m *Machine) SetStepLimit(n int64) { m.maxSteps = n }

// SetRunHook installs a cooperative cancellation check: hook is called
// every `every` dynamic instructions (DefaultHookInterval when every <= 0)
// with the current step count, and a non-nil return aborts the run with
// that error — conventionally a trap.KindCancelled trap, so deadline aborts
// travel the same structured-trap path as the step-limit watchdog. The hook
// is preserved across Reset (like Trace); a nil hook clears it. The check
// itself allocates nothing, keeping a warm machine's steady state
// allocation-free even with a hook armed.
func (m *Machine) SetRunHook(hook func(steps int64) error, every int64) {
	if every <= 0 {
		every = DefaultHookInterval
	}
	m.hook = hook
	m.hookEvery = every
	m.hookLeft = every
}

func (m *Machine) storeWord(addr int64, w uint64) {
	for i := 0; i < 8; i++ {
		m.mem[addr+int64(i)] = byte(w >> (8 * uint(i)))
	}
	m.dirty[addr>>memPageShift] = true
	m.dirty[(addr+7)>>memPageShift] = true
}

func (m *Machine) loadWord(addr int64) uint64 {
	var w uint64
	for i := 7; i >= 0; i-- {
		w = w<<8 | uint64(m.mem[addr+int64(i)])
	}
	return w
}

// ReadGlobalInt reads word idx of a global after a run.
func (m *Machine) ReadGlobalInt(name string, idx int64) int64 {
	return int64(m.loadWord(m.prog.GlobalAddr[name] + idx*8))
}

const noRegEnc = int16(-1)

// Run executes the program from the start stub until HALT.
//
// The returned Result is owned by the machine and remains valid only until
// the machine's next Reset (fresh machines built with New are unaffected).
func (m *Machine) Run() (*Result, error) {
	st := &m.res.Stats
	insts := m.prog.Insts
	var steps int64

	// Helpers are hoisted out of the interpreter loop so the steady state
	// performs no per-instruction work beyond the dispatch itself; they
	// close over ev/in, which the loop re-points each iteration.
	var ev Event
	var in *isa.Inst
	ir := func(n uint8) int64 { return m.R[n] }
	fr := func(n uint8) uint64 { return m.F[n] }
	fi := func(n uint8) int64 { return int64(m.F[n]) }
	ff := func(n uint8) float64 { return math.Float64frombits(m.F[n]) }
	setR := func(n uint8, v int64) {
		if n != isa.RegZero {
			m.R[n] = v
		}
		ev.Dst = EncodeReg(isa.IntReg, n)
	}
	setF := func(n uint8, v uint64) {
		m.F[n] = v
		ev.Dst = EncodeReg(isa.FpReg, n)
	}
	setFf := func(n uint8, v float64) { setF(n, math.Float64bits(v)) }
	srcI := func(n uint8) {
		if ev.Src1 == noRegEnc {
			ev.Src1 = EncodeReg(isa.IntReg, n)
		} else {
			ev.Src2 = EncodeReg(isa.IntReg, n)
		}
	}
	srcF := func(n uint8) {
		if ev.Src1 == noRegEnc {
			ev.Src1 = EncodeReg(isa.FpReg, n)
		} else {
			ev.Src2 = EncodeReg(isa.FpReg, n)
		}
	}
	memAccess := func(addr int64) error {
		if addr < 0 || addr+8 > MemSize {
			return trap.New(trap.KindOutOfBounds, "sim", "memory access %#x out of range at PC %d (%s)", addr, m.PC, in)
		}
		ev.MemAddr = addr
		return nil
	}

	for {
		if m.PC < 0 || m.PC >= len(insts) {
			return nil, fmt.Errorf("sim: PC %d out of range", m.PC)
		}
		in = &insts[m.PC]
		if in.Op == isa.HALT {
			m.res.Ret = m.R[isa.RegV0]
			m.res.Output = string(m.out)
			return m.res, nil
		}
		steps++
		if steps > m.maxSteps {
			return nil, trap.New(trap.KindStepLimit, "sim", "step limit exceeded at PC %d", m.PC)
		}
		if m.hook != nil {
			m.hookLeft--
			if m.hookLeft <= 0 {
				m.hookLeft = m.hookEvery
				if err := m.hook(steps); err != nil {
					return nil, err
				}
			}
		}

		ev = Event{PC: m.PC, Op: in.Op, IsDup: in.IsDup, Dst: noRegEnc, Src1: noRegEnc, Src2: noRegEnc}
		nextPC := m.PC + 1
		taken := false

		switch in.Op {
		case isa.NOP:
		case isa.LI:
			setR(in.Rd, in.Imm)
		case isa.MOV:
			srcI(in.Rs)
			setR(in.Rd, ir(in.Rs))
		case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
			isa.XOR, isa.NOR, isa.SLL, isa.SRA, isa.SRL,
			isa.SEQ, isa.SNE, isa.SLT, isa.SLE, isa.SGT, isa.SGE:
			srcI(in.Rs)
			b := in.Imm
			if !in.UseImm {
				srcI(in.Rt)
				b = ir(in.Rt)
			}
			v, err := intALU(in.Op, ir(in.Rs), b, m.PC)
			if err != nil {
				return nil, err
			}
			setR(in.Rd, v)
		case isa.LW:
			srcI(in.Rs)
			addr := ir(in.Rs) + in.Imm
			if err := memAccess(addr); err != nil {
				return nil, err
			}
			setR(in.Rd, int64(m.loadWord(addr)))
			st.Loads++
		case isa.SW:
			srcI(in.Rs)
			srcI(in.Rt)
			addr := ir(in.Rt) + in.Imm
			if err := memAccess(addr); err != nil {
				return nil, err
			}
			m.storeWord(addr, uint64(ir(in.Rs)))
			st.Stores++
		case isa.BNEZ:
			srcI(in.Rs)
			taken = ir(in.Rs) != 0
			if taken {
				nextPC = in.Target
			}
			st.Branches++
		case isa.BEQZ:
			srcI(in.Rs)
			taken = ir(in.Rs) == 0
			if taken {
				nextPC = in.Target
			}
			st.Branches++
		case isa.J:
			nextPC = in.Target
		case isa.JAL:
			setR(isa.RegRA, int64(m.PC+1))
			nextPC = in.Target
		case isa.JR:
			srcI(in.Rs)
			nextPC = int(ir(in.Rs))
		case isa.PRNI:
			srcI(in.Rs)
			m.out = strconv.AppendInt(m.out, ir(in.Rs), 10)
			m.out = append(m.out, '\n')
		case isa.PRNF:
			srcF(in.Rs)
			m.out = strconv.AppendFloat(m.out, ff(in.Rs), 'g', 6, 64)
			m.out = append(m.out, '\n')

		case isa.LID:
			setFf(in.Rd, in.FImm)
		case isa.FMOV:
			srcF(in.Rs)
			setF(in.Rd, fr(in.Rs))
		case isa.FADD:
			srcF(in.Rs)
			srcF(in.Rt)
			setFf(in.Rd, ff(in.Rs)+ff(in.Rt))
		case isa.FSUB:
			srcF(in.Rs)
			srcF(in.Rt)
			setFf(in.Rd, ff(in.Rs)-ff(in.Rt))
		case isa.FMUL:
			srcF(in.Rs)
			srcF(in.Rt)
			setFf(in.Rd, ff(in.Rs)*ff(in.Rt))
		case isa.FDIV:
			srcF(in.Rs)
			srcF(in.Rt)
			setFf(in.Rd, ff(in.Rs)/ff(in.Rt))
		case isa.FNEG:
			srcF(in.Rs)
			setFf(in.Rd, -ff(in.Rs))
		case isa.FSEQ, isa.FSNE, isa.FSLT, isa.FSLE, isa.FSGT, isa.FSGE:
			srcF(in.Rs)
			srcF(in.Rt)
			setR(in.Rd, fcmp(in.Op, ff(in.Rs), ff(in.Rt)))
		case isa.CVTIF:
			srcI(in.Rs)
			setFf(in.Rd, float64(ir(in.Rs)))
		case isa.CVTFI:
			srcF(in.Rs)
			setR(in.Rd, int64(ff(in.Rs)))
		case isa.LD:
			srcI(in.Rs)
			addr := ir(in.Rs) + in.Imm
			if err := memAccess(addr); err != nil {
				return nil, err
			}
			setF(in.Rd, m.loadWord(addr))
			st.Loads++
		case isa.SD:
			srcF(in.Rs)
			srcI(in.Rt)
			addr := ir(in.Rt) + in.Imm
			if err := memAccess(addr); err != nil {
				return nil, err
			}
			m.storeWord(addr, fr(in.Rs))
			st.Stores++

		case isa.LIA:
			setF(in.Rd, uint64(in.Imm))
		case isa.MOVA:
			srcF(in.Rs)
			setF(in.Rd, fr(in.Rs))
		case isa.ADDA, isa.SUBA, isa.ANDA, isa.ORA, isa.XORA, isa.NORA,
			isa.SLLA, isa.SRAA, isa.SRLA,
			isa.SEQA, isa.SNEA, isa.SLTA, isa.SLEA, isa.SGTA, isa.SGEA:
			srcF(in.Rs)
			b := in.Imm
			if !in.UseImm {
				srcF(in.Rt)
				b = fi(in.Rt)
			}
			v, err := intALU(fpaToInt[in.Op], fi(in.Rs), b, m.PC)
			if err != nil {
				return nil, err
			}
			setF(in.Rd, uint64(v))
		case isa.BNEZA:
			srcF(in.Rs)
			taken = fi(in.Rs) != 0
			if taken {
				nextPC = in.Target
			}
			st.Branches++
		case isa.CP2FP:
			srcI(in.Rs)
			setF(in.Rd, uint64(ir(in.Rs)))
		case isa.CP2INT:
			srcF(in.Rs)
			setR(in.Rd, fi(in.Rs))
		case isa.LWFA:
			srcI(in.Rs)
			addr := ir(in.Rs) + in.Imm
			if err := memAccess(addr); err != nil {
				return nil, err
			}
			setF(in.Rd, m.loadWord(addr))
			st.Loads++
		case isa.SWFA:
			srcF(in.Rs)
			srcI(in.Rt)
			addr := ir(in.Rt) + in.Imm
			if err := memAccess(addr); err != nil {
				return nil, err
			}
			m.storeWord(addr, fr(in.Rs))
			st.Stores++
		default:
			return nil, fmt.Errorf("sim: unimplemented opcode %s at PC %d", in.Op, m.PC)
		}

		st.Total++
		st.BySubsys[isa.ExecSubsystem(in.Op)]++
		st.ByOp[in.Op]++
		if in.Op == isa.CP2FP || in.Op == isa.CP2INT {
			st.Copies++
		}
		if in.IsDup {
			st.Dups++
		}
		ev.Taken = taken
		ev.NextPC = nextPC
		if m.Trace != nil {
			m.Trace(ev)
		}
		m.PC = nextPC
	}
}

func intALU(op isa.Opcode, a, b int64, pc int) (int64, error) {
	switch op {
	case isa.ADD:
		return a + b, nil
	case isa.SUB:
		return a - b, nil
	case isa.MUL:
		return a * b, nil
	case isa.DIV:
		if b == 0 {
			return 0, trap.New(trap.KindDivideByZero, "sim", "integer divide by zero at PC %d", pc)
		}
		return a / b, nil
	case isa.REM:
		if b == 0 {
			return 0, trap.New(trap.KindDivideByZero, "sim", "integer remainder by zero at PC %d", pc)
		}
		return a % b, nil
	case isa.AND:
		return a & b, nil
	case isa.OR:
		return a | b, nil
	case isa.XOR:
		return a ^ b, nil
	case isa.NOR:
		return ^(a | b), nil
	case isa.SLL:
		return a << uint(b&63), nil
	case isa.SRA:
		return a >> uint(b&63), nil
	case isa.SRL:
		return int64(uint64(a) >> uint(b&63)), nil
	case isa.SEQ:
		return b2i(a == b), nil
	case isa.SNE:
		return b2i(a != b), nil
	case isa.SLT:
		return b2i(a < b), nil
	case isa.SLE:
		return b2i(a <= b), nil
	case isa.SGT:
		return b2i(a > b), nil
	case isa.SGE:
		return b2i(a >= b), nil
	}
	return 0, fmt.Errorf("sim: bad ALU op %s", op)
}

var fpaToInt = map[isa.Opcode]isa.Opcode{
	isa.ADDA: isa.ADD, isa.SUBA: isa.SUB, isa.ANDA: isa.AND, isa.ORA: isa.OR,
	isa.XORA: isa.XOR, isa.NORA: isa.NOR, isa.SLLA: isa.SLL,
	isa.SRAA: isa.SRA, isa.SRLA: isa.SRL,
	isa.SEQA: isa.SEQ, isa.SNEA: isa.SNE, isa.SLTA: isa.SLT,
	isa.SLEA: isa.SLE, isa.SGTA: isa.SGT, isa.SGEA: isa.SGE,
}

func fcmp(op isa.Opcode, a, b float64) int64 {
	switch op {
	case isa.FSEQ:
		return b2i(a == b)
	case isa.FSNE:
		return b2i(a != b)
	case isa.FSLT:
		return b2i(a < b)
	case isa.FSLE:
		return b2i(a <= b)
	case isa.FSGT:
		return b2i(a > b)
	case isa.FSGE:
		return b2i(a >= b)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
