package sim_test

import (
	"testing"

	"fpint/internal/isa"
	"fpint/internal/sim"
)

// prog assembles a raw instruction sequence with a standard start stub:
// index 0 jumps to main at index 2, and HALT sits at index 1.
func prog(insts ...isa.Inst) *isa.Program {
	all := append([]isa.Inst{
		{Op: isa.JAL, Target: 2},
		{Op: isa.HALT},
	}, insts...)
	p := &isa.Program{
		Insts:      all,
		FuncEntry:  map[string]int{"main": 2},
		GlobalAddr: map[string]int64{},
		DataWords:  map[int64]uint64{},
		DataTop:    8,
	}
	for range all {
		p.FuncOf = append(p.FuncOf, "main")
	}
	return p
}

func run(t *testing.T, p *isa.Program) *sim.Result {
	t.Helper()
	m := sim.New(p)
	m.SetStepLimit(1_000_000)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestHandAssembledALU(t *testing.T) {
	res := run(t, prog(
		isa.Inst{Op: isa.LI, Rd: 8, Imm: 40},
		isa.Inst{Op: isa.LI, Rd: 9, Imm: 2},
		isa.Inst{Op: isa.ADD, Rd: 2, Rs: 8, Rt: 9},
		isa.Inst{Op: isa.JR, Rs: 31},
	))
	if res.Ret != 42 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestImmediateForms(t *testing.T) {
	res := run(t, prog(
		isa.Inst{Op: isa.LI, Rd: 8, Imm: 10},
		isa.Inst{Op: isa.SLL, Rd: 8, Rs: 8, Imm: 2, UseImm: true},  // 40
		isa.Inst{Op: isa.ADD, Rd: 8, Rs: 8, Imm: -5, UseImm: true}, // 35
		isa.Inst{Op: isa.SGT, Rd: 2, Rs: 8, Imm: 34, UseImm: true}, // 1
		isa.Inst{Op: isa.JR, Rs: 31},
	))
	if res.Ret != 1 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestFPaRoundTrip(t *testing.T) {
	// Move an int into the FP file, operate there, move it back.
	res := run(t, prog(
		isa.Inst{Op: isa.LI, Rd: 8, Imm: 6},
		isa.Inst{Op: isa.CP2FP, Rd: 1, Rs: 8},                      // f1 = 6
		isa.Inst{Op: isa.LIA, Rd: 2, Imm: 7},                       // f2 = 7
		isa.Inst{Op: isa.ADDA, Rd: 3, Rs: 1, Rt: 2},                // f3 = 13
		isa.Inst{Op: isa.SLLA, Rd: 3, Rs: 3, Imm: 1, UseImm: true}, // 26
		isa.Inst{Op: isa.CP2INT, Rd: 2, Rs: 3},
		isa.Inst{Op: isa.JR, Rs: 31},
	))
	if res.Ret != 26 {
		t.Fatalf("ret = %d", res.Ret)
	}
	if res.Stats.BySubsys[isa.SubFPa] != 4 {
		t.Fatalf("FPa count = %d, want 4 (lia, adda, slla, cp2int)", res.Stats.BySubsys[isa.SubFPa])
	}
	if res.Stats.Copies != 2 {
		t.Fatalf("copies = %d, want 2", res.Stats.Copies)
	}
}

func TestFPaBranch(t *testing.T) {
	// Loop counted entirely in the FP file via BNEZA.
	res := run(t, prog(
		isa.Inst{Op: isa.LIA, Rd: 1, Imm: 5}, // f1 = counter
		isa.Inst{Op: isa.LIA, Rd: 2, Imm: 0}, // f2 = sum
		// loop at index 4:
		isa.Inst{Op: isa.ADDA, Rd: 2, Rs: 2, Rt: 1},                 // sum += counter
		isa.Inst{Op: isa.ADDA, Rd: 1, Rs: 1, Imm: -1, UseImm: true}, // counter--
		isa.Inst{Op: isa.BNEZA, Rs: 1, Target: 4},
		isa.Inst{Op: isa.CP2INT, Rd: 2, Rs: 1 + 1},
		isa.Inst{Op: isa.JR, Rs: 31},
	))
	if res.Ret != 15 {
		t.Fatalf("ret = %d, want 15", res.Ret)
	}
}

func TestMemoryAndRawBits(t *testing.T) {
	// SWFA/LW round-trip: an integer stored from the FP file reads back
	// identically through the integer file, and vice versa.
	res := run(t, prog(
		isa.Inst{Op: isa.LI, Rd: 9, Imm: 1024}, // base address
		isa.Inst{Op: isa.LIA, Rd: 1, Imm: -123456789},
		isa.Inst{Op: isa.SWFA, Rs: 1, Rt: 9, Imm: 0},
		isa.Inst{Op: isa.LW, Rd: 8, Rs: 9, Imm: 0},
		isa.Inst{Op: isa.LI, Rd: 10, Imm: 7},
		isa.Inst{Op: isa.SW, Rs: 10, Rt: 9, Imm: 8},
		isa.Inst{Op: isa.LWFA, Rd: 2, Rs: 9, Imm: 8},
		isa.Inst{Op: isa.CP2INT, Rd: 11, Rs: 2},
		isa.Inst{Op: isa.ADD, Rd: 2, Rs: 8, Rt: 11}, // -123456789 + 7
		isa.Inst{Op: isa.JR, Rs: 31},
	))
	if res.Ret != -123456782 {
		t.Fatalf("ret = %d", res.Ret)
	}
	if res.Stats.Loads != 2 || res.Stats.Stores != 2 {
		t.Fatalf("loads/stores = %d/%d", res.Stats.Loads, res.Stats.Stores)
	}
}

func TestFloatOps(t *testing.T) {
	res := run(t, prog(
		isa.Inst{Op: isa.LID, Rd: 1, FImm: 1.5},
		isa.Inst{Op: isa.LID, Rd: 2, FImm: 2.5},
		isa.Inst{Op: isa.FADD, Rd: 3, Rs: 1, Rt: 2}, // 4.0
		isa.Inst{Op: isa.FMUL, Rd: 3, Rs: 3, Rt: 3}, // 16.0
		isa.Inst{Op: isa.FSLT, Rd: 8, Rs: 1, Rt: 3}, // 1
		isa.Inst{Op: isa.CVTFI, Rd: 9, Rs: 3},       // 16
		isa.Inst{Op: isa.ADD, Rd: 2, Rs: 8, Rt: 9},  // 17
		isa.Inst{Op: isa.JR, Rs: 31},
	))
	if res.Ret != 17 {
		t.Fatalf("ret = %d", res.Ret)
	}
	if res.Stats.BySubsys[isa.SubFP] == 0 {
		t.Fatal("no FP-subsystem instructions counted")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	res := run(t, prog(
		isa.Inst{Op: isa.LI, Rd: 0, Imm: 99},
		isa.Inst{Op: isa.MOV, Rd: 2, Rs: 0},
		isa.Inst{Op: isa.JR, Rs: 31},
	))
	if res.Ret != 0 {
		t.Fatalf("write to $0 took effect: ret = %d", res.Ret)
	}
}

func TestTraceEvents(t *testing.T) {
	p := prog(
		isa.Inst{Op: isa.LI, Rd: 9, Imm: 512},
		isa.Inst{Op: isa.LI, Rd: 8, Imm: 3},
		isa.Inst{Op: isa.SW, Rs: 8, Rt: 9, Imm: 0},
		isa.Inst{Op: isa.LW, Rd: 2, Rs: 9, Imm: 0},
		isa.Inst{Op: isa.BEQZ, Rs: 0, Target: 8}, // absolute index of the JR (stub adds 2)
		isa.Inst{Op: isa.NOP},                    // skipped
		isa.Inst{Op: isa.JR, Rs: 31},
	)
	m := sim.New(p)
	var events []sim.Event
	m.Trace = func(ev sim.Event) { events = append(events, ev) }
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Find the store and load events and the taken branch.
	var sawStore, sawLoad, sawTaken bool
	for _, ev := range events {
		switch ev.Op {
		case isa.SW:
			sawStore = ev.MemAddr == 512
		case isa.LW:
			sawLoad = ev.MemAddr == 512 && ev.Dst == sim.EncodeReg(isa.IntReg, 2)
		case isa.BEQZ:
			sawTaken = ev.Taken && ev.NextPC == 8
		}
	}
	if !sawStore || !sawLoad || !sawTaken {
		t.Fatalf("trace events wrong: store=%v load=%v taken=%v", sawStore, sawLoad, sawTaken)
	}
	// Events arrive in program order with consistent NextPC chaining.
	for i := 1; i < len(events); i++ {
		if events[i].PC != events[i-1].NextPC {
			t.Fatalf("event %d PC=%d but previous NextPC=%d", i, events[i].PC, events[i-1].NextPC)
		}
	}
}

func TestDivideByZeroTrap(t *testing.T) {
	p := prog(
		isa.Inst{Op: isa.LI, Rd: 8, Imm: 1},
		isa.Inst{Op: isa.LI, Rd: 9, Imm: 0},
		isa.Inst{Op: isa.DIV, Rd: 2, Rs: 8, Rt: 9},
		isa.Inst{Op: isa.JR, Rs: 31},
	)
	if _, err := sim.New(p).Run(); err == nil {
		t.Fatal("division by zero not diagnosed")
	}
}

func TestOutOfRangeMemoryTrap(t *testing.T) {
	p := prog(
		isa.Inst{Op: isa.LI, Rd: 9, Imm: -64},
		isa.Inst{Op: isa.LW, Rd: 2, Rs: 9, Imm: 0},
		isa.Inst{Op: isa.JR, Rs: 31},
	)
	if _, err := sim.New(p).Run(); err == nil {
		t.Fatal("negative address not diagnosed")
	}
}

func TestStepLimit(t *testing.T) {
	p := prog(
		isa.Inst{Op: isa.J, Target: 2}, // spin forever
	)
	m := sim.New(p)
	m.SetStepLimit(1000)
	if _, err := m.Run(); err == nil {
		t.Fatal("step limit not enforced")
	}
}

func TestPrintTraps(t *testing.T) {
	res := run(t, prog(
		isa.Inst{Op: isa.LI, Rd: 8, Imm: -5},
		isa.Inst{Op: isa.PRNI, Rs: 8},
		isa.Inst{Op: isa.LID, Rd: 1, FImm: 2.5},
		isa.Inst{Op: isa.PRNF, Rs: 1},
		isa.Inst{Op: isa.JR, Rs: 31},
	))
	if res.Output != "-5\n2.5\n" {
		t.Fatalf("output = %q", res.Output)
	}
}
