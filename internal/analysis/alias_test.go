package analysis_test

import (
	"strings"
	"testing"

	"fpint/internal/analysis"
	"fpint/internal/dataflow"
	"fpint/internal/ir"
)

// buildAliasFunc builds one straight-line function that touches the
// globals a and b and a local array at a handful of known and unknown
// offsets, returning the memory instructions by label.
func buildAliasFunc(t *testing.T) (*ir.Module, *ir.Func, map[string]*ir.Instr) {
	t.Helper()
	mod := ir.NewModule()
	mod.Globals = append(mod.Globals,
		&ir.Global{Name: "a", Words: 10},
		&ir.Global{Name: "b", Words: 10})

	fn := ir.NewFunc("f", ir.I64)
	slot := fn.AddLocalSlot(4)
	va := fn.NewVReg(ir.I64)
	vb := fn.NewVReg(ir.I64)
	vl := fn.NewVReg(ir.I64)
	vp := fn.NewVReg(ir.I64)
	vx := fn.NewVReg(ir.I64)
	blk := fn.NewBlock()
	fn.Entry = blk

	ins := map[string]*ir.Instr{}
	blk.Append(&ir.Instr{Op: ir.OpAddrGlobal, Dst: va, Sym: "a"})
	blk.Append(&ir.Instr{Op: ir.OpAddrGlobal, Dst: vb, Sym: "b"})
	blk.Append(&ir.Instr{Op: ir.OpAddrLocal, Dst: vl, Imm: slot})
	ins["load-a0"] = blk.Append(&ir.Instr{Op: ir.OpLoad, Dst: vx, Args: []ir.VReg{va}})
	ins["load-a8"] = blk.Append(&ir.Instr{Op: ir.OpLoad, Dst: vx, Args: []ir.VReg{va}, Imm: 8})
	ins["store-b0"] = blk.Append(&ir.Instr{Op: ir.OpStore, Args: []ir.VReg{vx, vb}})
	ins["store-local"] = blk.Append(&ir.Instr{Op: ir.OpStore, Args: []ir.VReg{vx, vl}})
	// An address loaded from memory is opaque: accesses through it may
	// alias anything.
	blk.Append(&ir.Instr{Op: ir.OpLoad, Dst: vp, Args: []ir.VReg{va}, Imm: 16})
	ins["load-unknown"] = blk.Append(&ir.Instr{Op: ir.OpLoad, Dst: vx, Args: []ir.VReg{vp}})
	blk.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{vx}})

	fn.RecomputePreds()
	fn.Renumber()
	mod.AddFunc(fn)
	return mod, fn, ins
}

func analyzeAliases(fn *ir.Func) *analysis.Aliases {
	cfg := analysis.BuildCFG(fn)
	rd := dataflow.ComputeReachingDefs(fn)
	return analysis.AnalyzeAliases(fn, rd, analysis.AnalyzeRanges(fn, cfg))
}

func TestMayAliasPartitionedByBase(t *testing.T) {
	_, fn, ins := buildAliasFunc(t)
	al := analyzeAliases(fn)

	cases := []struct {
		x, y string
		want bool
	}{
		{"load-a0", "load-a0", true},       // same location
		{"load-a0", "load-a8", false},      // same base, disjoint 8-byte spans
		{"load-a0", "store-b0", false},     // distinct globals never alias
		{"load-a0", "store-local", false},  // global vs local
		{"store-b0", "store-local", false}, // global vs local
		{"load-unknown", "load-a0", true},  // unknown base aliases everything
		{"load-unknown", "store-b0", true}, // ... in both directions
		{"store-local", "store-local", true},
	}
	for _, c := range cases {
		if got := al.MayAlias(ins[c.x].ID, ins[c.y].ID); got != c.want {
			t.Errorf("MayAlias(%s, %s) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

// TestAddressTakenEscape: a base escapes when its address is stored,
// passed to a call, or returned — and only then.
func TestAddressTakenEscape(t *testing.T) {
	build := func(publish func(fn *ir.Func, blk *ir.Block, addr, scratch ir.VReg)) *analysis.Aliases {
		fn := ir.NewFunc("f", ir.I64)
		addr := fn.NewVReg(ir.I64)
		scratch := fn.NewVReg(ir.I64)
		blk := fn.NewBlock()
		fn.Entry = blk
		blk.Append(&ir.Instr{Op: ir.OpAddrGlobal, Dst: addr, Sym: "g"})
		publish(fn, blk, addr, scratch)
		fn.RecomputePreds()
		fn.Renumber()
		return analyzeAliases(fn)
	}
	gBase := analysis.Base{Kind: analysis.BaseGlobal, Sym: "g"}

	cases := []struct {
		name    string
		publish func(fn *ir.Func, blk *ir.Block, addr, scratch ir.VReg)
		escaped bool
	}{
		{"stored", func(fn *ir.Func, blk *ir.Block, addr, scratch ir.VReg) {
			other := fn.NewVReg(ir.I64)
			blk.Append(&ir.Instr{Op: ir.OpAddrGlobal, Dst: other, Sym: "cell"})
			blk.Append(&ir.Instr{Op: ir.OpStore, Args: []ir.VReg{addr, other}})
			blk.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{scratch}})
		}, true},
		{"call-arg", func(fn *ir.Func, blk *ir.Block, addr, scratch ir.VReg) {
			blk.Append(&ir.Instr{Op: ir.OpCall, Dst: scratch, Sym: "sink", Args: []ir.VReg{addr}})
			blk.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{scratch}})
		}, true},
		{"returned", func(fn *ir.Func, blk *ir.Block, addr, scratch ir.VReg) {
			blk.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{addr}})
		}, true},
		{"private", func(fn *ir.Func, blk *ir.Block, addr, scratch ir.VReg) {
			blk.Append(&ir.Instr{Op: ir.OpLoad, Dst: scratch, Args: []ir.VReg{addr}})
			blk.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{scratch}})
		}, false},
	}
	for _, c := range cases {
		al := build(c.publish)
		if got := al.Escaped[gBase]; got != c.escaped {
			t.Errorf("%s: Escaped[g] = %v, want %v", c.name, got, c.escaped)
		}
	}
}

// TestSafeAddrProof: the end-to-end proof chain (decompose + range +
// object size) admits exactly the provably in-bounds accesses.
func TestSafeAddrProof(t *testing.T) {
	mod, fn, ins := buildAliasFunc(t)
	// One out-of-bounds access: a has 10 words = 80 bytes, so offset 80
	// starts past the last valid word.
	va := ir.VReg(0)
	for _, in := range fn.Entry.Instrs {
		if in.Op == ir.OpAddrGlobal && in.Sym == "a" {
			va = in.Dst
		}
	}
	vy := fn.NewVReg(ir.I64)
	ret := fn.Entry.Instrs[len(fn.Entry.Instrs)-1]
	oob := &ir.Instr{Op: ir.OpLoad, Dst: vy, Args: []ir.VReg{va}, Imm: 80}
	fn.Entry.InsertBefore(oob, ret.Idx)
	ins["load-oob"] = oob
	fn.Renumber()

	ff := analysis.AnalyzeFunc(fn, mod)
	wantSafe := map[string]bool{
		"load-a0":      true,
		"load-a8":      true,
		"store-b0":     true,
		"store-local":  true,
		"load-unknown": false,
		"load-oob":     false,
	}
	for name, want := range wantSafe {
		reason, ok := ff.SafeAddr(ins[name].ID)
		if ok != want {
			t.Errorf("SafeAddr(%s) = %v, want %v", name, ok, want)
		}
		if ok && !strings.Contains(reason, "within") {
			t.Errorf("SafeAddr(%s) reason %q lacks bounds statement", name, reason)
		}
	}
	// The four labeled safe accesses plus the unlabeled pointer load at
	// a+16 that feeds load-unknown.
	if n := ff.SafeAddrCount(); n != 5 {
		t.Errorf("SafeAddrCount = %d, want 5", n)
	}
}
