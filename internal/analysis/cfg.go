// Package analysis is a reusable static-analysis framework over the IR:
// CFG construction with dominators, an intraprocedural flow-insensitive
// may-alias/address-taken analysis partitioned by base object, and a
// lattice-based value-range analysis (constants + intervals with widening).
//
// The analyses exist to *justify* compiler decisions, not to change
// semantics: the partitioner consults them to unpin load/store address
// nodes whose addresses are provably well-behaved array accesses (see
// FuncFacts.SafeAddr and core.AddrOracle), and the fpilint driver turns the
// same facts into diagnostics (dead stores, unreachable blocks, division by
// zero and out-of-bounds candidates).
package analysis

import (
	"sort"

	"fpint/internal/ir"
)

// CFG is the control-flow view of one function: reachable blocks in
// reverse postorder, the immediate-dominator tree, and the blocks the
// entry cannot reach at all.
type CFG struct {
	Fn *ir.Func

	// Blocks are the reachable blocks in reverse postorder (entry first).
	Blocks []*ir.Block

	// Idom maps each reachable block to its immediate dominator; the entry
	// maps to itself.
	Idom map[*ir.Block]*ir.Block

	// Unreachable lists blocks the entry cannot reach, in block-ID order.
	Unreachable []*ir.Block

	rpoIndex map[*ir.Block]int
}

// BuildCFG computes the CFG of fn, including dominators (iterative
// Cooper–Harvey–Kennedy over reverse postorder) and the unreachable set.
func BuildCFG(fn *ir.Func) *CFG {
	c := &CFG{Fn: fn, Idom: fn.Dominators(), rpoIndex: make(map[*ir.Block]int)}
	c.Blocks = fn.ReversePostorder()
	for i, b := range c.Blocks {
		c.rpoIndex[b] = i
	}
	for _, b := range fn.Blocks {
		if _, ok := c.rpoIndex[b]; !ok {
			c.Unreachable = append(c.Unreachable, b)
		}
	}
	sort.Slice(c.Unreachable, func(i, j int) bool { return c.Unreachable[i].ID < c.Unreachable[j].ID })
	return c
}

// Reachable reports whether b is reachable from the entry.
func (c *CFG) Reachable(b *ir.Block) bool {
	_, ok := c.rpoIndex[b]
	return ok
}

// Dominates reports whether a dominates b (every block dominates itself).
// Unreachable blocks are dominated by nothing and dominate nothing.
func (c *CFG) Dominates(a, b *ir.Block) bool {
	if !c.Reachable(a) || !c.Reachable(b) {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := c.Idom[b]
		if next == b {
			return false // reached the entry without meeting a
		}
		b = next
	}
}
