package analysis

import (
	"fmt"

	"fpint/internal/dataflow"
	"fpint/internal/ir"
)

// FuncFacts bundles every per-function analysis result and implements the
// partitioner's address oracle (core.AddrOracle): SafeAddr justifies
// unpinning the address half of a load/store whose address is a provably
// in-bounds access to a known base object.
type FuncFacts struct {
	Fn      *ir.Func
	CFG     *CFG
	Ranges  *Ranges
	Aliases *Aliases

	// safe[instrID] is the unpin justification for a load/store whose
	// address is proven safe; absence means the address stays pinned.
	safe map[int]string
}

// Facts holds the analysis results of a whole module.
type Facts struct {
	Mod   *ir.Module
	Funcs map[string]*FuncFacts
}

// AnalyzeModule runs every analysis over every function of mod.
func AnalyzeModule(mod *ir.Module) *Facts {
	f := &Facts{Mod: mod, Funcs: make(map[string]*FuncFacts, len(mod.Funcs))}
	for _, fn := range mod.Funcs {
		f.Funcs[fn.Name] = AnalyzeFunc(fn, mod)
	}
	return f
}

// AnalyzeFunc runs CFG construction, the value-range analysis, the alias
// analysis, and the safe-address proof over one function. It renumbers the
// function first, so instruction IDs agree with an RDG built afterwards.
func AnalyzeFunc(fn *ir.Func, mod *ir.Module) *FuncFacts {
	fn.Renumber()
	cfg := BuildCFG(fn)
	rd := dataflow.ComputeReachingDefs(fn)
	ranges := AnalyzeRanges(fn, cfg)
	aliases := AnalyzeAliases(fn, rd, ranges)
	ff := &FuncFacts{Fn: fn, CFG: cfg, Ranges: ranges, Aliases: aliases, safe: make(map[int]string)}
	ff.proveSafeAddrs(mod)
	return ff
}

// objectBytes returns the byte size of a base object, when known.
func objectBytes(base Base, fn *ir.Func, mod *ir.Module) (int64, bool) {
	switch base.Kind {
	case BaseGlobal:
		for _, g := range mod.Globals {
			if g.Name == base.Sym {
				return g.Words * 8, true
			}
		}
	case BaseLocal:
		if base.Slot >= 0 && base.Slot < int64(len(fn.LocalSlots)) {
			return fn.LocalSlots[base.Slot] * 8, true
		}
	}
	return 0, false
}

// proveSafeAddrs derives the unpin justifications: a load/store address is
// safe when it decomposes to a known base object with a byte-offset
// interval provably within [0, size-8] — a well-behaved array access with
// no aliasing hazard outside its own object and a value the FPa integer
// datapath handles exactly. Such an address may be computed in the FPa
// subsystem and materialized into the integer file without changing what
// the access reads or writes.
func (ff *FuncFacts) proveSafeAddrs(mod *ir.Module) {
	for id, loc := range ff.Aliases.Locs {
		if loc.Base.Kind == BaseUnknown {
			continue
		}
		size, ok := objectBytes(loc.Base, ff.Fn, mod)
		if !ok || size < 8 {
			continue
		}
		off := loc.Off
		if off.IsBot() || !off.Finite() || off.Lo < 0 || off.Hi > size-8 {
			continue
		}
		ff.safe[id] = fmt.Sprintf("%s+[%d..%d] within %d-byte object", loc.Base, off.Lo, off.Hi, size)
	}
}

// SafeAddr implements core.AddrOracle: it returns the deterministic
// justification for unpinning the address half of load/store instrID, or
// ok=false when the address must stay pinned.
func (ff *FuncFacts) SafeAddr(instrID int) (string, bool) {
	reason, ok := ff.safe[instrID]
	return reason, ok
}

// SafeAddrCount reports how many memory accesses were proven safe.
func (ff *FuncFacts) SafeAddrCount() int { return len(ff.safe) }

// ParseOnOff parses the shared -analysis=on|off CLI flag value.
func ParseOnOff(v string) (bool, error) {
	switch v {
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("invalid -analysis value %q (want on or off)", v)
}
