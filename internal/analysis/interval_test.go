package analysis_test

import (
	"math"
	"testing"

	"fpint/internal/analysis"
)

func iv(lo, hi int64) analysis.Interval { return analysis.Interval{Lo: lo, Hi: hi} }

func TestIntervalPredicates(t *testing.T) {
	if !analysis.Bot().IsBot() || analysis.Bot().IsTop() {
		t.Error("Bot misclassified")
	}
	if !analysis.Top().IsTop() || analysis.Top().IsBot() {
		t.Error("Top misclassified")
	}
	if c, ok := analysis.Const(7).IsConst(); !ok || c != 7 {
		t.Errorf("Const(7).IsConst() = %d, %v", c, ok)
	}
	if _, ok := iv(1, 2).IsConst(); ok {
		t.Error("[1,2] claimed constant")
	}
	if !iv(0, 9).Contains(9) || iv(0, 9).Contains(10) || analysis.Bot().Contains(0) {
		t.Error("Contains wrong")
	}
	if !iv(-3, 3).Finite() || analysis.Top().Finite() || analysis.Bot().Finite() {
		t.Error("Finite wrong")
	}
}

func TestIntervalJoinMeetWiden(t *testing.T) {
	if got := iv(0, 2).Join(iv(5, 9)); got != iv(0, 9) {
		t.Errorf("join = %v", got)
	}
	if got := analysis.Bot().Join(iv(1, 1)); got != iv(1, 1) {
		t.Errorf("bot join = %v", got)
	}
	if got := iv(0, 9).Meet(iv(5, 20)); got != iv(5, 9) {
		t.Errorf("meet = %v", got)
	}
	if got := iv(0, 2).Meet(iv(5, 9)); !got.IsBot() {
		t.Errorf("disjoint meet = %v, want bottom", got)
	}
	// Empty meets must return THE canonical bottom, not an arbitrary
	// empty interval: the fixpoint loop detects change by struct
	// comparison, and two lattice-equal bottoms that compare unequal
	// (e.g. [101..2] vs [101..0] from infeasible-edge refinement against
	// a loop counter) make it oscillate forever.
	if got := iv(101, 101).Meet(iv(-5, 2)); got != analysis.Bot() {
		t.Errorf("disjoint meet = %#v, want canonical Bot %#v", got, analysis.Bot())
	}
	if got := iv(101, 101).Meet(iv(-5, 0)); got != analysis.Bot() {
		t.Errorf("disjoint meet = %#v, want canonical Bot %#v", got, analysis.Bot())
	}
	// Widen blows exactly the bounds that moved out to infinity.
	w := iv(0, 5).Widen(iv(0, 6))
	if w.Lo != 0 || w.Hi != math.MaxInt64 {
		t.Errorf("widen hi = %v", w)
	}
	w = iv(0, 5).Widen(iv(-1, 5))
	if w.Lo != math.MinInt64 || w.Hi != 5 {
		t.Errorf("widen lo = %v", w)
	}
}

func TestIntervalArith(t *testing.T) {
	top, bot := analysis.Top(), analysis.Bot()
	cases := []struct {
		name string
		got  analysis.Interval
		want analysis.Interval
	}{
		{"add", iv(1, 2).Add(iv(10, 20)), iv(11, 22)},
		{"add-sat", iv(math.MaxInt64-1, math.MaxInt64-1).Add(iv(5, 5)), iv(math.MaxInt64, math.MaxInt64)},
		{"add-bot", bot.Add(iv(0, 0)), bot},
		{"sub", iv(10, 20).Sub(iv(1, 2)), iv(8, 19)},
		{"mul", iv(-2, 3).Mul(iv(4, 5)), iv(-10, 15)},
		{"mul-overflow", iv(1<<40, 1<<40).Mul(iv(1<<40, 1<<40)), top},
		{"shl", iv(0, 9).Shl(analysis.Const(3)), iv(0, 72)},
		{"shl-var", iv(0, 9).Shl(iv(0, 3)), top},
		{"shra", iv(-8, 16).ShrA(analysis.Const(2)), iv(-2, 4)},
		{"shrl-neg", iv(-8, 16).ShrL(analysis.Const(2)), top},
		{"shrl-pos", iv(8, 16).ShrL(analysis.Const(2)), iv(2, 4)},
		{"and", top.And(iv(0, 255)), iv(0, 255)},
		{"and-negative", iv(-5, -1).And(iv(-5, -1)), top},
		{"orxor", iv(0, 5).OrXor(iv(0, 9)), iv(0, 15)},
		{"div", iv(0, 100).Div(iv(1, 10)), iv(0, 100)},
		{"div-maybe-zero", iv(0, 100).Div(iv(0, 10)), top},
		{"rem", iv(0, 1000).Rem(iv(1, 10)), iv(0, 9)},
		{"rem-neg-dividend", iv(-5, 1000).Rem(iv(1, 10)), iv(-9, 9)},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}
