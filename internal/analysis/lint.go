package analysis

import (
	"fmt"
	"sort"

	"fpint/internal/ir"
)

// Diag is one lint finding. Code is a stable machine identifier (used as the
// SARIF rule id); Msg is the human-readable explanation.
type Diag struct {
	Fn   string `json:"fn"`
	Line int    `json:"line"`
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// Lint rule identifiers.
const (
	CodeUnreachable = "unreachable-block"
	CodeDeadStore   = "dead-store"
	CodeDivByZero   = "div-by-zero"
	CodeOutOfBounds = "out-of-bounds"
	CodeCostReject  = "cost-rejected"
	// CodePartitionGap marks an RDG component where the greedy (advanced)
	// partitioner's profit falls short of the exact branch-and-bound
	// optimum, or where the exact search was cut short so optimality is
	// uncertified. Emitted by fpilint -oracle.
	CodePartitionGap = "partition-gap"
)

// SortDiags orders findings deterministically: by function, line, rule, text.
func SortDiags(ds []Diag) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// LintModule runs every analysis-backed lint over the module and returns the
// findings sorted deterministically. The module should be pre-optimization
// IR: the optimizer deletes unreachable blocks, which would silence the
// unreachable-block check.
func LintModule(mod *ir.Module) []Diag {
	facts := AnalyzeModule(mod)
	var ds []Diag
	for _, fn := range mod.Funcs {
		ff := facts.Funcs[fn.Name]
		ds = append(ds, lintUnreachable(fn, ff.CFG)...)
		ds = append(ds, lintDivByZero(fn, ff.Ranges)...)
		ds = append(ds, lintOutOfBounds(fn, mod, ff.Aliases)...)
	}
	ds = append(ds, lintDeadStores(mod, facts)...)
	SortDiags(ds)
	return ds
}

// instrLine falls back through a block to the first instruction that carries
// source position information.
func blockLine(b *ir.Block) int {
	for _, in := range b.Instrs {
		if in.Line > 0 {
			return in.Line
		}
	}
	return 0
}

func lintUnreachable(fn *ir.Func, cfg *CFG) []Diag {
	var ds []Diag
	for _, b := range cfg.Unreachable {
		ds = append(ds, Diag{
			Fn:   fn.Name,
			Line: blockLine(b),
			Code: CodeUnreachable,
			Msg:  fmt.Sprintf("block b%d is unreachable from the function entry", b.ID),
		})
	}
	return ds
}

func lintDivByZero(fn *ir.Func, r *Ranges) []Diag {
	var ds []Diag
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpDiv && in.Op != ir.OpRem {
				continue
			}
			iv, ok := r.DivisorIn[in.ID]
			if !ok || iv.IsBot() || !iv.Contains(0) {
				continue
			}
			opName := "division"
			if in.Op == ir.OpRem {
				opName = "remainder"
			}
			if c, isConst := iv.IsConst(); isConst && c == 0 {
				ds = append(ds, Diag{Fn: fn.Name, Line: in.Line, Code: CodeDivByZero,
					Msg: fmt.Sprintf("%s by constant zero", opName)})
			} else if !iv.IsTop() {
				ds = append(ds, Diag{Fn: fn.Name, Line: in.Line, Code: CodeDivByZero,
					Msg: fmt.Sprintf("%s divisor has range %s which includes zero", opName, iv)})
			}
		}
	}
	return ds
}

func lintOutOfBounds(fn *ir.Func, mod *ir.Module, al *Aliases) []Diag {
	var ds []Diag
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			loc, ok := al.Locs[in.ID]
			if !ok || loc.Base.Kind == BaseUnknown || loc.Off.IsBot() {
				continue
			}
			size, known := objectBytes(loc.Base, fn, mod)
			if !known || size < 8 {
				continue
			}
			// Report only finite offending bounds: an infinite bound is the
			// analysis giving up, not evidence of a bad access.
			if loc.Off.Lo != negInf && loc.Off.Lo < 0 {
				ds = append(ds, Diag{Fn: fn.Name, Line: in.Line, Code: CodeOutOfBounds,
					Msg: fmt.Sprintf("access to %s may start at byte offset %d, before the object", loc.Base, loc.Off.Lo)})
			}
			if loc.Off.Hi != posInf && loc.Off.Hi > size-8 {
				ds = append(ds, Diag{Fn: fn.Name, Line: in.Line, Code: CodeOutOfBounds,
					Msg: fmt.Sprintf("access to %s may start at byte offset %d, past its %d bytes", loc.Base, loc.Off.Hi, size)})
			}
		}
	}
	return ds
}

// lintDeadStores reports globals that are stored somewhere in the module but
// never loaded, with escape hatches for anything the intraprocedural
// analyses cannot see: an escaped base or any undecomposable access in the
// module suppresses the check entirely for the affected globals.
func lintDeadStores(mod *ir.Module, facts *Facts) []Diag {
	type storeSite struct {
		fn   string
		line int
	}
	loaded := make(map[string]bool)
	escaped := make(map[string]bool)
	anyUnknown := false
	stores := make(map[string][]storeSite)

	for _, fn := range mod.Funcs {
		ff := facts.Funcs[fn.Name]
		for base := range ff.Aliases.Escaped {
			if base.Kind == BaseGlobal {
				escaped[base.Sym] = true
			}
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpLoad && in.Op != ir.OpStore {
					continue
				}
				loc, ok := ff.Aliases.Locs[in.ID]
				if !ok || loc.Base.Kind == BaseUnknown {
					anyUnknown = true
					continue
				}
				if loc.Base.Kind != BaseGlobal {
					continue
				}
				if in.Op == ir.OpLoad {
					loaded[loc.Base.Sym] = true
				} else {
					stores[loc.Base.Sym] = append(stores[loc.Base.Sym], storeSite{fn.Name, in.Line})
				}
			}
		}
	}
	if anyUnknown {
		return nil // an unanalyzable access could be the missing load
	}

	var ds []Diag
	for sym, sites := range stores {
		if loaded[sym] || escaped[sym] {
			continue
		}
		for _, s := range sites {
			ds = append(ds, Diag{Fn: s.fn, Line: s.line, Code: CodeDeadStore,
				Msg: fmt.Sprintf("store to global %s, which is never loaded", sym)})
		}
	}
	return ds
}
