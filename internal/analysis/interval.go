package analysis

import (
	"fmt"
	"math"
)

// Interval is a lattice element of the value-range analysis: the set of
// int64 values v with Lo <= v <= Hi. math.MinInt64 as Lo means -infinity
// and math.MaxInt64 as Hi means +infinity (the sentinels coincide with the
// extreme representable values, which is sound: an interval touching a
// sentinel simply makes no claim about that bound). Lo > Hi encodes bottom
// (no value; unreached code).
type Interval struct {
	Lo, Hi int64
}

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// Top is the full interval (no information).
func Top() Interval { return Interval{negInf, posInf} }

// Bot is the empty interval (unreached).
func Bot() Interval { return Interval{posInf, negInf} }

// Const is the singleton interval {c}.
func Const(c int64) Interval { return Interval{c, c} }

// IsBot reports whether the interval is empty.
func (i Interval) IsBot() bool { return i.Lo > i.Hi }

// IsTop reports whether the interval carries no information.
func (i Interval) IsTop() bool { return i.Lo == negInf && i.Hi == posInf }

// IsConst reports whether the interval is a singleton, returning its value.
func (i Interval) IsConst() (int64, bool) { return i.Lo, i.Lo == i.Hi && i.Lo != negInf }

// Contains reports whether v may be in the interval.
func (i Interval) Contains(v int64) bool { return !i.IsBot() && i.Lo <= v && v <= i.Hi }

// Finite reports whether both bounds are known.
func (i Interval) Finite() bool { return !i.IsBot() && i.Lo != negInf && i.Hi != posInf }

// String renders the interval for diagnostics, with inf sentinels.
func (i Interval) String() string {
	if i.IsBot() {
		return "⊥"
	}
	lo, hi := "-inf", "+inf"
	if i.Lo != negInf {
		lo = fmt.Sprintf("%d", i.Lo)
	}
	if i.Hi != posInf {
		hi = fmt.Sprintf("%d", i.Hi)
	}
	return "[" + lo + ".." + hi + "]"
}

// Join is the lattice join (interval hull).
func (i Interval) Join(j Interval) Interval {
	if i.IsBot() {
		return j
	}
	if j.IsBot() {
		return i
	}
	return Interval{minI64(i.Lo, j.Lo), maxI64(i.Hi, j.Hi)}
}

// Meet is the lattice meet (intersection); may produce bottom.
func (i Interval) Meet(j Interval) Interval {
	if i.IsBot() || j.IsBot() {
		return Bot()
	}
	m := Interval{maxI64(i.Lo, j.Lo), minI64(i.Hi, j.Hi)}
	// Canonicalize: every empty interval must be THE Bot value, or the
	// fixpoint loop's struct comparisons would see two lattice-equal
	// bottoms (e.g. [5..2] vs [5..4] from different infeasible-edge
	// refinements) as a change and oscillate forever.
	if m.IsBot() {
		return Bot()
	}
	return m
}

// Widen accelerates convergence: any bound of next that moved past the
// corresponding bound of i is pushed to infinity.
func (i Interval) Widen(next Interval) Interval {
	if i.IsBot() {
		return next
	}
	if next.IsBot() {
		return i
	}
	w := i
	if next.Lo < i.Lo {
		w.Lo = negInf
	}
	if next.Hi > i.Hi {
		w.Hi = posInf
	}
	return w
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// satAdd adds with saturation at the infinity sentinels: any operand at a
// sentinel, or any overflow, saturates in the direction of the result.
func satAdd(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return posInf
		}
		return negInf
	}
	return s
}

// satNeg negates with the sentinels mapped onto each other.
func satNeg(a int64) int64 {
	switch a {
	case negInf:
		return posInf
	case posInf:
		return negInf
	}
	return -a
}

// Add returns the interval of x+y for x in i, y in j.
func (i Interval) Add(j Interval) Interval {
	if i.IsBot() || j.IsBot() {
		return Bot()
	}
	return Interval{satAdd(i.Lo, j.Lo), satAdd(i.Hi, j.Hi)}
}

// Sub returns the interval of x-y.
func (i Interval) Sub(j Interval) Interval {
	if i.IsBot() || j.IsBot() {
		return Bot()
	}
	return Interval{satAdd(i.Lo, satNeg(j.Hi)), satAdd(i.Hi, satNeg(j.Lo))}
}

// mulSafe multiplies when the product provably fits; exact only for
// operands below 2^31 in magnitude, which covers every offset computation
// the analysis cares about.
func mulSafe(a, b int64) (int64, bool) {
	const lim = 1 << 31
	if a == negInf || a == posInf || b == negInf || b == posInf {
		return 0, false
	}
	if a > -lim && a < lim && b > -lim && b < lim {
		return a * b, true
	}
	return 0, false
}

// Mul returns the interval of x*y, giving up (Top) when endpoint products
// might overflow.
func (i Interval) Mul(j Interval) Interval {
	if i.IsBot() || j.IsBot() {
		return Bot()
	}
	lo, hi := int64(posInf), int64(negInf)
	for _, a := range [2]int64{i.Lo, i.Hi} {
		for _, b := range [2]int64{j.Lo, j.Hi} {
			p, ok := mulSafe(a, b)
			if !ok {
				return Top()
			}
			lo, hi = minI64(lo, p), maxI64(hi, p)
		}
	}
	return Interval{lo, hi}
}

// Shl returns the interval of x<<s for a constant shift amount.
func (i Interval) Shl(s Interval) Interval {
	if i.IsBot() || s.IsBot() {
		return Bot()
	}
	c, ok := s.IsConst()
	if !ok || c < 0 || c > 62 {
		return Top()
	}
	shift := func(v int64) (int64, bool) {
		if v == negInf || v == posInf {
			return v, true // infinity shifted stays infinity
		}
		r := v << uint(c)
		if r>>uint(c) != v { // overflow
			return 0, false
		}
		return r, true
	}
	lo, okLo := shift(i.Lo)
	hi, okHi := shift(i.Hi)
	if !okLo || !okHi {
		return Top()
	}
	return Interval{lo, hi}
}

// ShrA returns the interval of x>>s (arithmetic) for a constant shift.
func (i Interval) ShrA(s Interval) Interval {
	if i.IsBot() || s.IsBot() {
		return Bot()
	}
	c, ok := s.IsConst()
	if !ok || c < 0 || c > 63 {
		return Top()
	}
	shift := func(v int64) int64 {
		if v == negInf || v == posInf {
			return v
		}
		return v >> uint(c)
	}
	return Interval{shift(i.Lo), shift(i.Hi)}
}

// ShrL returns the interval of logical x>>s for a constant shift; sound
// only when x is provably non-negative (where it agrees with ShrA).
func (i Interval) ShrL(s Interval) Interval {
	if i.IsBot() || s.IsBot() {
		return Bot()
	}
	if i.Lo < 0 {
		return Top() // a negative operand turns into a huge positive value
	}
	return i.ShrA(s)
}

// And returns the interval of x&y. Precise enough for the mask idioms the
// frontend emits: a non-negative operand bounds the result to [0, that
// operand's upper bound].
func (i Interval) And(j Interval) Interval {
	if i.IsBot() || j.IsBot() {
		return Bot()
	}
	hi := int64(posInf)
	if i.Lo >= 0 && i.Hi != posInf {
		hi = i.Hi
	}
	if j.Lo >= 0 && j.Hi != posInf {
		hi = minI64(hi, j.Hi)
	}
	if hi == posInf {
		if i.Lo >= 0 || j.Lo >= 0 {
			return Interval{0, posInf}
		}
		return Top()
	}
	return Interval{0, hi}
}

// OrXor covers both x|y and x^y: for non-negative operands below a power
// of two, the result stays below that power of two.
func (i Interval) OrXor(j Interval) Interval {
	if i.IsBot() || j.IsBot() {
		return Bot()
	}
	if i.Lo < 0 || j.Lo < 0 || i.Hi == posInf || j.Hi == posInf {
		return Top()
	}
	return Interval{0, nextPow2Mask(maxI64(i.Hi, j.Hi))}
}

// nextPow2Mask returns the smallest 2^k-1 >= v (v >= 0).
func nextPow2Mask(v int64) int64 {
	m := int64(1)
	for m-1 < v && m > 0 {
		m <<= 1
	}
	if m <= 0 {
		return posInf
	}
	return m - 1
}

// Div returns the interval of x/y when the divisor is provably positive
// (|x/y| <= |x| for y >= 1, and the result keeps x's sign possibilities).
func (i Interval) Div(j Interval) Interval {
	if i.IsBot() || j.IsBot() {
		return Bot()
	}
	if j.Lo < 1 {
		return Top()
	}
	return Interval{minI64(i.Lo, 0), maxI64(i.Hi, 0)}
}

// Rem returns the interval of x%y (Go semantics: result takes the
// dividend's sign) when the divisor is provably in [1, hi].
func (i Interval) Rem(j Interval) Interval {
	if i.IsBot() || j.IsBot() {
		return Bot()
	}
	if j.Lo < 1 || j.Hi == posInf {
		return Top()
	}
	m := j.Hi - 1
	if i.Lo >= 0 {
		return Interval{0, minI64(m, maxI64(i.Hi, 0))}
	}
	return Interval{-m, m}
}
