package analysis_test

import (
	"testing"

	"fpint/internal/analysis"
	"fpint/internal/ir"
)

// TestCFGSingleBlock: a function of one block is its own dominator and has
// no unreachable blocks.
func TestCFGSingleBlock(t *testing.T) {
	fn := ir.NewFunc("one", ir.I64)
	v := fn.NewVReg(ir.I64)
	b := fn.NewBlock()
	fn.Entry = b
	b.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 1})
	b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{v}})
	fn.RecomputePreds()
	fn.Renumber()

	cfg := analysis.BuildCFG(fn)
	if len(cfg.Blocks) != 1 || cfg.Blocks[0] != b {
		t.Fatalf("blocks = %v", cfg.Blocks)
	}
	if len(cfg.Unreachable) != 0 {
		t.Fatalf("unreachable = %v", cfg.Unreachable)
	}
	if cfg.Idom[b] != b || !cfg.Dominates(b, b) {
		t.Error("entry must dominate itself")
	}
}

// TestCFGUnreachableBlocks: a block with no path from the entry lands in
// Unreachable, is not Reachable, and neither dominates nor is dominated.
func TestCFGUnreachableBlocks(t *testing.T) {
	fn := ir.NewFunc("dead", ir.I64)
	v := fn.NewVReg(ir.I64)
	b0 := fn.NewBlock()
	b1 := fn.NewBlock()
	dead := fn.NewBlock()
	fn.Entry = b0

	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 1})
	b0.Append(&ir.Instr{Op: ir.OpJmp})
	b0.Succs = []*ir.Block{b1}
	b1.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{v}})
	// dead jumps into the live region but nothing jumps to dead.
	dead.Append(&ir.Instr{Op: ir.OpJmp})
	dead.Succs = []*ir.Block{b1}
	fn.RecomputePreds()
	fn.Renumber()

	cfg := analysis.BuildCFG(fn)
	if len(cfg.Unreachable) != 1 || cfg.Unreachable[0] != dead {
		t.Fatalf("unreachable = %v", cfg.Unreachable)
	}
	if cfg.Reachable(dead) {
		t.Error("dead reported reachable")
	}
	if cfg.Dominates(dead, b1) || cfg.Dominates(b0, dead) {
		t.Error("unreachable block participates in dominance")
	}
	if !cfg.Dominates(b0, b1) {
		t.Error("entry must dominate b1")
	}
}

// TestCFGSelfLoop: a block that branches to itself dominates itself and is
// immediately dominated by its (unique) entry-side predecessor, and the
// blocks below the loop are dominated by the loop header.
func TestCFGSelfLoop(t *testing.T) {
	fn := ir.NewFunc("selfloop", ir.I64)
	v := fn.NewVReg(ir.I64)
	b0 := fn.NewBlock()
	loop := fn.NewBlock()
	exit := fn.NewBlock()
	fn.Entry = b0

	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 1})
	b0.Append(&ir.Instr{Op: ir.OpJmp})
	b0.Succs = []*ir.Block{loop}
	loop.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{v}})
	loop.Succs = []*ir.Block{loop, exit}
	exit.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{v}})
	fn.RecomputePreds()
	fn.Renumber()

	cfg := analysis.BuildCFG(fn)
	if cfg.Idom[loop] != b0 {
		t.Errorf("idom(loop) = %v, want entry", cfg.Idom[loop])
	}
	if !cfg.Dominates(loop, loop) || !cfg.Dominates(loop, exit) || cfg.Dominates(exit, loop) {
		t.Error("self-loop dominance wrong")
	}
	if len(cfg.Blocks) != 3 || len(cfg.Unreachable) != 0 {
		t.Errorf("blocks %d, unreachable %d", len(cfg.Blocks), len(cfg.Unreachable))
	}
}
