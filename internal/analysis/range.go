package analysis

import "fpint/internal/ir"

// Ranges is the result of the value-range analysis: one interval per
// integer definition site, valid for the value that site produces on any
// execution (flow-sensitive within the function, with branch-edge
// refinement from comparison guards and widening on loop-carried values).
type Ranges struct {
	Fn *ir.Func

	// ValOut[instrID] is the interval of the value defined by that
	// instruction's Dst. Only I64 definitions appear. A value produced by
	// an instruction that never appears executed is bottom.
	ValOut map[int]Interval

	// DivisorIn[instrID] is the interval of the divisor operand of an
	// OpDiv/OpRem instruction at that program point (after refinement),
	// for the division-by-zero lint.
	DivisorIn map[int]Interval
}

// rangeEnv maps virtual registers to intervals. Absent means Top (the
// analysis makes no claim), which keeps environments small.
type rangeEnv map[ir.VReg]Interval

func (e rangeEnv) get(v ir.VReg) Interval {
	if iv, ok := e[v]; ok {
		return iv
	}
	return Top()
}

func (e rangeEnv) clone() rangeEnv {
	c := make(rangeEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// joinInto joins src into dst in place, reporting whether dst changed.
// Keys absent from either side are Top, so a key absent from src forces
// the dst entry to Top (removal).
func (dst rangeEnv) joinInto(src rangeEnv) bool {
	changed := false
	for k, dv := range dst {
		sv, ok := src[k]
		if !ok {
			delete(dst, k)
			changed = true
			continue
		}
		j := dv.Join(sv)
		if j != dv {
			dst[k] = j
			changed = true
		}
	}
	return changed
}

// wideningThreshold is the number of times a widening point's
// in-environment may change before joins through it are widened.
const wideningThreshold = 8

// AnalyzeRanges runs the interval analysis to a fixpoint over fn.
// Parameters and loads start at Top; in-environments grow monotonically
// (accumulated by join) with widening — applied only at targets of
// retreating edges, after wideningThreshold changes — so termination is
// guaranteed even on loop-carried counters: every CFG cycle contains a
// retreating edge with respect to reverse postorder, hence a widening
// point. Blocks off the cycle spine (e.g. loop bodies) are never widened
// directly, so the precision that branch-edge refinement recovers at the
// loop head (a widened counter flowing through an `i < n` guard
// re-acquires its upper bound on the true edge) survives into the body.
func AnalyzeRanges(fn *ir.Func, cfg *CFG) *Ranges {
	r := &Ranges{Fn: fn, ValOut: make(map[int]Interval), DivisorIn: make(map[int]Interval)}

	// Widening points: targets of retreating edges (the successor is not
	// later in reverse postorder than the block), including self-loops.
	widenAt := make(map[*ir.Block]bool)
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if cfg.Reachable(s) && cfg.rpoIndex[s] <= cfg.rpoIndex[b] {
				widenAt[s] = true
			}
		}
	}

	in := make(map[*ir.Block]rangeEnv, len(cfg.Blocks))
	visits := make(map[*ir.Block]int, len(cfg.Blocks))
	inWork := make(map[*ir.Block]bool, len(cfg.Blocks))
	var work []*ir.Block

	push := func(b *ir.Block) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}

	// Entry environment: every parameter (and any other register) is Top,
	// which the empty environment already encodes.
	in[fn.Entry] = rangeEnv{}
	push(fn.Entry)

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		env := in[b].clone()
		transferBlock(fn, b, env, nil)

		// Propagate to successors with branch-edge refinement.
		for si, s := range b.Succs {
			succEnv := env.clone()
			refineEdge(b, si, succEnv)
			cur, seen := in[s]
			if !seen {
				in[s] = succEnv
				push(s)
				continue
			}
			// Monotone accumulation: join the edge environment into the
			// stored one; widen once the block has changed often enough.
			next := cur.clone()
			changed := next.joinInto(succEnv)
			if !changed {
				continue
			}
			visits[s]++
			if widenAt[s] && visits[s] > wideningThreshold {
				for k, nv := range next {
					next[k] = cur[k].Widen(nv)
				}
			}
			in[s] = next
			push(s)
		}
	}

	// Final deterministic pass with the stable in-environments records the
	// per-definition intervals and the per-division divisor intervals.
	for _, b := range cfg.Blocks {
		env := in[b].clone()
		transferBlock(fn, b, env, r)
	}
	return r
}

// transferBlock walks b's instructions updating env. When rec is non-nil
// the per-definition results are recorded into it.
func transferBlock(fn *ir.Func, b *ir.Block, env rangeEnv, rec *Ranges) {
	for _, instr := range b.Instrs {
		if rec != nil && (instr.Op == ir.OpDiv || instr.Op == ir.OpRem) {
			rec.DivisorIn[instr.ID] = argInterval(fn, instr, 1, env)
		}
		out, hasOut := transferInstr(fn, instr, env)
		if instr.Dst != 0 && fn.VRegType(instr.Dst) == ir.I64 {
			if hasOut {
				env[instr.Dst] = out
			} else {
				delete(env, instr.Dst) // Top
			}
			if rec != nil {
				rec.ValOut[instr.ID] = env.get(instr.Dst)
			}
		}
	}
}

// argInterval is the interval of operand k at instr, honoring the ImmArg
// immediate form (where the second operand is Imm, not a register).
func argInterval(fn *ir.Func, instr *ir.Instr, k int, env rangeEnv) Interval {
	if instr.ImmArg && k == 1 {
		return Const(instr.Imm)
	}
	if k >= len(instr.Args) {
		return Top()
	}
	v := instr.Args[k]
	if fn.VRegType(v) != ir.I64 {
		return Top()
	}
	return env.get(v)
}

// transferInstr computes the interval of instr's integer result, reporting
// ok=false when the result is unconstrained (Top).
func transferInstr(fn *ir.Func, instr *ir.Instr, env rangeEnv) (Interval, bool) {
	arg := func(k int) Interval { return argInterval(fn, instr, k, env) }
	switch instr.Op {
	case ir.OpConst:
		if instr.IsFloat {
			return Interval{}, false
		}
		return Const(instr.Imm), true
	case ir.OpCopy:
		return arg(0), true
	case ir.OpAdd:
		return arg(0).Add(arg(1)), true
	case ir.OpSub:
		return arg(0).Sub(arg(1)), true
	case ir.OpMul:
		return arg(0).Mul(arg(1)), true
	case ir.OpDiv:
		return arg(0).Div(arg(1)), true
	case ir.OpRem:
		return arg(0).Rem(arg(1)), true
	case ir.OpShl:
		return arg(0).Shl(arg(1)), true
	case ir.OpShrA:
		return arg(0).ShrA(arg(1)), true
	case ir.OpShrL:
		return arg(0).ShrL(arg(1)), true
	case ir.OpAnd:
		return arg(0).And(arg(1)), true
	case ir.OpOr, ir.OpXor:
		return arg(0).OrXor(arg(1)), true
	case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		return Interval{0, 1}, true
	}
	// Loads, calls, conversions, address materializations, OpNor: Top.
	return Interval{}, false
}

// refineEdge narrows env along the edge b -> b.Succs[si] using b's
// terminating conditional branch. The refinement only fires when the
// branch condition is defined in b by an integer comparison whose operand
// registers are not redefined between the comparison and the branch, so
// the environment entries still describe the compared values.
func refineEdge(b *ir.Block, si int, env rangeEnv) {
	term := b.Terminator()
	if term == nil || term.Op != ir.OpBr || len(term.Args) == 0 {
		return
	}
	cond := term.Args[0]
	// Find the in-block definition of the condition and check stability of
	// the compared registers afterwards.
	var cmp *ir.Instr
	for idx := len(b.Instrs) - 1; idx >= 0; idx-- {
		instr := b.Instrs[idx]
		if instr == term {
			continue
		}
		if instr.Dst == cond {
			switch instr.Op {
			case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
				cmp = instr
			}
			break
		}
	}
	if cmp == nil {
		return
	}
	for idx := cmp.Idx + 1; idx < len(b.Instrs); idx++ {
		d := b.Instrs[idx].Dst
		for _, a := range cmp.Args {
			if d == a {
				return // operand redefined after the comparison
			}
		}
	}

	taken := si == 0 // Succs[0] is the true edge
	op := cmp.Op
	if !taken {
		op = negateCmp(op)
	}

	a := cmp.Args[0]
	av := env.get(a)
	var bReg ir.VReg
	var bv Interval
	if cmp.ImmArg {
		bv = Const(cmp.Imm)
	} else {
		if len(cmp.Args) < 2 {
			return
		}
		bReg = cmp.Args[1]
		bv = env.get(bReg)
	}

	na, nb := refineCmp(op, av, bv)
	env[a] = na
	if bReg != 0 {
		env[bReg] = nb
	}
}

// negateCmp returns the comparison that holds on the false edge.
func negateCmp(op ir.Op) ir.Op {
	switch op {
	case ir.OpCmpEQ:
		return ir.OpCmpNE
	case ir.OpCmpNE:
		return ir.OpCmpEQ
	case ir.OpCmpLT:
		return ir.OpCmpGE
	case ir.OpCmpLE:
		return ir.OpCmpGT
	case ir.OpCmpGT:
		return ir.OpCmpLE
	case ir.OpCmpGE:
		return ir.OpCmpLT
	}
	return op
}

// refineCmp narrows both operand intervals under the assumption `a op b`.
func refineCmp(op ir.Op, a, b Interval) (Interval, Interval) {
	switch op {
	case ir.OpCmpEQ:
		m := a.Meet(b)
		return m, m
	case ir.OpCmpNE:
		// Only singleton exclusions at the borders are expressible.
		if c, ok := b.IsConst(); ok && !a.IsBot() {
			if a.Lo == c && c != posInf {
				a.Lo = c + 1
			}
			if a.Hi == c && c != negInf {
				a.Hi = c - 1
			}
			if a.IsBot() {
				a = Bot() // canonical: excluding a singleton's only value
			}
		}
		return a, b
	case ir.OpCmpLT:
		return refineLess(a, b, true)
	case ir.OpCmpLE:
		return refineLess(a, b, false)
	case ir.OpCmpGT:
		b2, a2 := refineLess(b, a, true)
		return a2, b2
	case ir.OpCmpGE:
		b2, a2 := refineLess(b, a, false)
		return a2, b2
	}
	return a, b
}

// refineLess narrows under a < b (strict) or a <= b.
func refineLess(a, b Interval, strict bool) (Interval, Interval) {
	if a.IsBot() || b.IsBot() {
		return a, b
	}
	d := int64(0)
	if strict {
		d = 1
	}
	if b.Hi != posInf {
		a = a.Meet(Interval{negInf, b.Hi - d})
	}
	if a.Lo != negInf {
		b = b.Meet(Interval{a.Lo + d, posInf})
	}
	return a, b
}
