package analysis_test

import (
	"math"
	"testing"
	"time"

	"fpint/internal/analysis"
	"fpint/internal/ir"
)

// buildCountedLoop builds `i = 0; while (i < bound) i = i + 1; return i`
// and returns the function plus the increment instruction.
func buildCountedLoop(bound int64) (*ir.Func, *ir.Instr) {
	fn := ir.NewFunc("loop", ir.I64)
	i := fn.NewVReg(ir.I64)
	c := fn.NewVReg(ir.I64)
	b0 := fn.NewBlock()
	head := fn.NewBlock()
	body := fn.NewBlock()
	exit := fn.NewBlock()
	fn.Entry = b0

	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: i, Imm: 0})
	b0.Append(&ir.Instr{Op: ir.OpJmp})
	b0.Succs = []*ir.Block{head}

	head.Append(&ir.Instr{Op: ir.OpCmpLT, Dst: c, Args: []ir.VReg{i}, Imm: bound, ImmArg: true})
	head.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{c}})
	head.Succs = []*ir.Block{body, exit}

	inc := body.Append(&ir.Instr{Op: ir.OpAdd, Dst: i, Args: []ir.VReg{i}, Imm: 1, ImmArg: true})
	body.Append(&ir.Instr{Op: ir.OpJmp})
	body.Succs = []*ir.Block{head}

	exit.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{i}})
	fn.RecomputePreds()
	fn.Renumber()
	return fn, inc
}

// TestRangeLoopCounterWidens: the loop-carried counter forces widening
// (the bound exceeds the widening threshold, so plain iteration would take
// ~bound passes), then branch-edge refinement recovers the exact interval
// inside the body: i < bound on the true edge, so i+1 is in [1, bound].
func TestRangeLoopCounterWidens(t *testing.T) {
	const bound = 1000 // far past wideningThreshold: termination needs Widen
	fn, inc := buildCountedLoop(bound)
	r := analysis.AnalyzeRanges(fn, analysis.BuildCFG(fn))
	got, ok := r.ValOut[inc.ID]
	if !ok {
		t.Fatal("no interval recorded for the increment")
	}
	want := analysis.Interval{Lo: 1, Hi: bound}
	if got != want {
		t.Errorf("increment interval = %v, want %v", got, want)
	}
}

// TestRangeUnboundedCounterTerminates: a counter guarded by an opaque
// condition (no comparison to refine against) has no finite fixpoint, so
// only widening makes the analysis terminate; the result keeps the proven
// lower bound and gives up on the upper one.
func TestRangeUnboundedCounterTerminates(t *testing.T) {
	fn := ir.NewFunc("unbounded", ir.I64)
	i := fn.NewVReg(ir.I64)
	c := fn.NewVReg(ir.I64)
	g := fn.NewVReg(ir.I64)
	b0 := fn.NewBlock()
	head := fn.NewBlock()
	body := fn.NewBlock()
	exit := fn.NewBlock()
	fn.Entry = b0

	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: i, Imm: 0})
	b0.Append(&ir.Instr{Op: ir.OpAddrGlobal, Dst: g, Sym: "flag"})
	b0.Append(&ir.Instr{Op: ir.OpJmp})
	b0.Succs = []*ir.Block{head}

	head.Append(&ir.Instr{Op: ir.OpLoad, Dst: c, Args: []ir.VReg{g}})
	head.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{c}})
	head.Succs = []*ir.Block{body, exit}

	inc := body.Append(&ir.Instr{Op: ir.OpAdd, Dst: i, Args: []ir.VReg{i}, Imm: 1, ImmArg: true})
	body.Append(&ir.Instr{Op: ir.OpJmp})
	body.Succs = []*ir.Block{head}

	exit.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{i}})
	fn.RecomputePreds()
	fn.Renumber()

	r := analysis.AnalyzeRanges(fn, analysis.BuildCFG(fn))
	got := r.ValOut[inc.ID]
	want := analysis.Interval{Lo: 1, Hi: math.MaxInt64}
	if got != want {
		t.Errorf("increment interval = %v, want %v", got, want)
	}
}

// TestRangeInfeasibleEdgeTerminates pins the fix for a fixpoint divergence
// found by fpifuzz (seed 144), auto-reduced to:
//
//	int main() {
//	  int x = 101;
//	  int w = 0;
//	  while (w < 4) {
//	    w++;
//	    if (w > x) {                     // infeasible: w <= 4 < 101
//	      for (int i = 0; i; i++) {
//	        int d = 0;
//	        do { } while (d);
//	      }
//	    }
//	  }
//	}
//
// Refining along the infeasible edge meets x's singleton [101..101]
// against the evolving counter, producing a differently-shaped empty
// interval on each outer pass ([101..1], [101..3], ...). The doubly
// nested loop inside the region keeps several of those shapes circulating
// at once, and before Meet canonicalized every empty result to the one
// Bot value, each join of two lattice-equal bottoms registered as a
// change — the worklist never drained. The analysis runs on a watchdog so
// a regression fails fast instead of stalling the package suite.
func TestRangeInfeasibleEdgeTerminates(t *testing.T) {
	// The blocks mirror the frontend's lowering of the reduced program
	// exactly: the increment goes through a copy temp (wTmp) that the
	// guard compares, the for-exit edge returns straight to the outer
	// head, and the empty do-while is a conditional self-loop.
	fn := ir.NewFunc("infeasible", ir.I64)
	xc := fn.NewVReg(ir.I64)
	x := fn.NewVReg(ir.I64)
	wc := fn.NewVReg(ir.I64)
	w := fn.NewVReg(ir.I64)
	iz := fn.NewVReg(ir.I64)
	dz := fn.NewVReg(ir.I64)
	cw := fn.NewVReg(ir.I64)
	wTmp := fn.NewVReg(ir.I64)
	cg := fn.NewVReg(ir.I64)
	i := fn.NewVReg(ir.I64)
	d := fn.NewVReg(ir.I64)
	iTmp := fn.NewVReg(ir.I64)
	ret := fn.NewVReg(ir.I64)

	b0 := fn.NewBlock()
	head := fn.NewBlock()
	body := fn.NewBlock()
	exit := fn.NewBlock()
	iinit := fn.NewBlock()
	ihead := fn.NewBlock()
	dinit := fn.NewBlock()
	ilatch := fn.NewBlock()
	dbody := fn.NewBlock()
	fn.Entry = b0

	// x = 101; w = 0 (through copy temps, as the frontend emits)
	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: xc, Imm: 101})
	b0.Append(&ir.Instr{Op: ir.OpCopy, Dst: x, Args: []ir.VReg{xc}})
	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: wc, Imm: 0})
	b0.Append(&ir.Instr{Op: ir.OpCopy, Dst: w, Args: []ir.VReg{wc}})
	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: iz, Imm: 0})
	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: dz, Imm: 0})
	b0.Append(&ir.Instr{Op: ir.OpJmp})
	b0.Succs = []*ir.Block{head}

	// while (w < 4)
	head.Append(&ir.Instr{Op: ir.OpCmpLT, Dst: cw, Args: []ir.VReg{w}, Imm: 4, ImmArg: true})
	head.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{cw}})
	head.Succs = []*ir.Block{body, exit}

	// wTmp = w + 1; w = wTmp; if (wTmp > x) — infeasible: w <= 4 < 101
	body.Append(&ir.Instr{Op: ir.OpAdd, Dst: wTmp, Args: []ir.VReg{w}, Imm: 1, ImmArg: true})
	body.Append(&ir.Instr{Op: ir.OpCopy, Dst: w, Args: []ir.VReg{wTmp}})
	body.Append(&ir.Instr{Op: ir.OpCmpGT, Dst: cg, Args: []ir.VReg{wTmp, x}})
	body.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{cg}})
	body.Succs = []*ir.Block{iinit, head}

	exit.Append(&ir.Instr{Op: ir.OpConst, Dst: ret, Imm: 0})
	exit.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{ret}})

	// for (i = 0; i; i++) — the exit edge rejoins the outer head
	iinit.Append(&ir.Instr{Op: ir.OpCopy, Dst: i, Args: []ir.VReg{iz}})
	iinit.Append(&ir.Instr{Op: ir.OpJmp})
	iinit.Succs = []*ir.Block{ihead}

	ihead.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{i}})
	ihead.Succs = []*ir.Block{dinit, head}

	// d = 0; do { } while (d) — a conditional self-loop
	dinit.Append(&ir.Instr{Op: ir.OpCopy, Dst: d, Args: []ir.VReg{dz}})
	dinit.Append(&ir.Instr{Op: ir.OpJmp})
	dinit.Succs = []*ir.Block{dbody}

	ilatch.Append(&ir.Instr{Op: ir.OpAdd, Dst: iTmp, Args: []ir.VReg{i}, Imm: 1, ImmArg: true})
	ilatch.Append(&ir.Instr{Op: ir.OpCopy, Dst: i, Args: []ir.VReg{iTmp}})
	ilatch.Append(&ir.Instr{Op: ir.OpJmp})
	ilatch.Succs = []*ir.Block{ihead}

	dbody.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{d}})
	dbody.Succs = []*ir.Block{dbody, ilatch}

	fn.RecomputePreds()
	fn.Renumber()

	done := make(chan *analysis.Ranges, 1)
	go func() { done <- analysis.AnalyzeRanges(fn, analysis.BuildCFG(fn)) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("range analysis did not terminate on an infeasible guarded region")
	}
}

// TestRangeDivisorRefinement: a `d > 0` guard proves the divisor positive
// at the division, while an unguarded division keeps zero in range.
func TestRangeDivisorRefinement(t *testing.T) {
	fn := ir.NewFunc("guarded", ir.I64)
	d := fn.NewVReg(ir.I64)
	x := fn.NewVReg(ir.I64)
	c := fn.NewVReg(ir.I64)
	q := fn.NewVReg(ir.I64)
	g := fn.NewVReg(ir.I64)
	b0 := fn.NewBlock()
	div := fn.NewBlock()
	exit := fn.NewBlock()
	fn.Entry = b0

	b0.Append(&ir.Instr{Op: ir.OpAddrGlobal, Dst: g, Sym: "cell"})
	b0.Append(&ir.Instr{Op: ir.OpLoad, Dst: d, Args: []ir.VReg{g}})
	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: x, Imm: 100})
	b0.Append(&ir.Instr{Op: ir.OpCmpGT, Dst: c, Args: []ir.VReg{d}, Imm: 0, ImmArg: true})
	b0.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{c}})
	b0.Succs = []*ir.Block{div, exit}

	guarded := div.Append(&ir.Instr{Op: ir.OpDiv, Dst: q, Args: []ir.VReg{x, d}})
	div.Append(&ir.Instr{Op: ir.OpJmp})
	div.Succs = []*ir.Block{exit}

	unguarded := exit.Append(&ir.Instr{Op: ir.OpRem, Dst: q, Args: []ir.VReg{x, d}})
	exit.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{q}})
	fn.RecomputePreds()
	fn.Renumber()

	r := analysis.AnalyzeRanges(fn, analysis.BuildCFG(fn))
	if in := r.DivisorIn[guarded.ID]; in.Contains(0) {
		t.Errorf("guarded divisor = %v, want zero excluded", in)
	}
	if in := r.DivisorIn[unguarded.ID]; !in.Contains(0) {
		t.Errorf("unguarded divisor = %v, want zero possible", in)
	}
}
