package analysis

import (
	"fmt"

	"fpint/internal/dataflow"
	"fpint/internal/ir"
)

// BaseKind classifies the base object of a memory address.
type BaseKind uint8

// Base kinds.
const (
	BaseUnknown BaseKind = iota // not decomposable: may alias anything
	BaseGlobal                  // a module-scope global (Sym)
	BaseLocal                   // a frame-local array slot (Slot)
)

// Base identifies one memory object. The may-alias analysis is partitioned
// by base: accesses to distinct known bases never alias; accesses to the
// same base alias only when their byte-offset intervals can overlap.
type Base struct {
	Kind BaseKind
	Sym  string // BaseGlobal
	Slot int64  // BaseLocal
}

// String renders the base for diagnostics.
func (b Base) String() string {
	switch b.Kind {
	case BaseGlobal:
		return b.Sym
	case BaseLocal:
		return fmt.Sprintf("slot%d", b.Slot)
	}
	return "?"
}

// Loc is an abstract memory location: a base object plus the interval of
// byte offsets the access may start at (the access itself spans 8 bytes).
type Loc struct {
	Base Base
	Off  Interval
}

// Aliases is the result of the flow-insensitive may-alias/address-taken
// analysis of one function: the abstract location of every load and store,
// keyed by instruction ID.
type Aliases struct {
	Fn *ir.Func

	// Locs[instrID] is the location accessed by that load/store. Every
	// load/store of the function has an entry; undecomposable addresses
	// get BaseUnknown with a Top offset.
	Locs map[int]Loc

	// Escaped marks bases whose address flows somewhere the analysis
	// cannot follow: into a call argument, a stored value, or a returned
	// value. Accesses to an escaped base may alias accesses made by code
	// outside the function.
	Escaped map[Base]bool
}

// MayAlias reports whether the two memory instructions can touch a common
// byte. Unknown bases alias everything; distinct known bases never alias;
// the same base aliases when the 8-byte access spans can overlap.
func (al *Aliases) MayAlias(id1, id2 int) bool {
	l1, ok1 := al.Locs[id1]
	l2, ok2 := al.Locs[id2]
	if !ok1 || !ok2 {
		return true
	}
	return locsMayOverlap(l1, l2)
}

func locsMayOverlap(l1, l2 Loc) bool {
	if l1.Base.Kind == BaseUnknown || l2.Base.Kind == BaseUnknown {
		return true
	}
	if l1.Base != l2.Base {
		return false
	}
	if l1.Off.IsBot() || l2.Off.IsBot() {
		return false
	}
	// Each access covers [start, start+7].
	return satAdd(l1.Off.Lo, -7) <= l2.Off.Hi && satAdd(l2.Off.Lo, -7) <= l1.Off.Hi
}

// decomposer resolves address operands to (base, offset-interval) pairs by
// recursing through reaching definitions, memoized per definition site.
type decomposer struct {
	fn     *ir.Func
	rd     *dataflow.ReachingDefs
	ranges *Ranges

	memo  map[int]decomp // per definition instruction ID
	state map[int]uint8  // 1 = in progress (cycle guard), 2 = done
}

type decomp struct {
	loc Loc
	ok  bool
}

func (d *decomposer) fail() decomp { return decomp{} }

// decomposeDef resolves the value defined by instruction def as an address.
func (d *decomposer) decomposeDef(def *ir.Instr) decomp {
	if d.state[def.ID] == 1 {
		return d.fail() // cyclic address recurrence (pointer chasing): give up
	}
	if d.state[def.ID] == 2 {
		return d.memo[def.ID]
	}
	d.state[def.ID] = 1
	res := d.decomposeDefUncached(def)
	d.state[def.ID] = 2
	d.memo[def.ID] = res
	return res
}

func (d *decomposer) decomposeDefUncached(def *ir.Instr) decomp {
	switch def.Op {
	case ir.OpAddrGlobal:
		return decomp{loc: Loc{Base: Base{Kind: BaseGlobal, Sym: def.Sym}, Off: Const(def.Imm)}, ok: true}
	case ir.OpAddrLocal:
		return decomp{loc: Loc{Base: Base{Kind: BaseLocal, Slot: def.Imm}, Off: Const(0)}, ok: true}
	case ir.OpCopy:
		return d.decomposeArg(def, 0)
	case ir.OpAdd:
		if left := d.decomposeArg(def, 0); left.ok {
			return d.shiftBy(left, d.valueOfArg(def, 1))
		}
		if !def.ImmArg {
			if right := d.decomposeArg(def, 1); right.ok {
				return d.shiftBy(right, d.valueOfArg(def, 0))
			}
		}
	case ir.OpSub:
		if left := d.decomposeArg(def, 0); left.ok {
			return d.shiftBy(left, Const(0).Sub(d.valueOfArg(def, 1)))
		}
	}
	return d.fail()
}

func (d *decomposer) shiftBy(base decomp, delta Interval) decomp {
	if delta.IsBot() {
		return d.fail()
	}
	base.loc.Off = base.loc.Off.Add(delta)
	return base
}

// decomposeArg resolves operand k of instr as an address: every reaching
// definition must decompose to the same base; the offsets join.
func (d *decomposer) decomposeArg(instr *ir.Instr, k int) decomp {
	if instr.ImmArg && k == 1 {
		return d.fail() // an immediate is a value, never a base
	}
	if k >= len(instr.Args) || d.fn.VRegType(instr.Args[k]) != ir.I64 {
		return d.fail()
	}
	uses, ok := d.rd.UseDefs[instr.ID]
	if !ok || k >= len(uses) || len(uses[k]) == 0 {
		return d.fail()
	}
	var acc decomp
	for i, siteIdx := range uses[k] {
		site := d.rd.Site(siteIdx)
		if site.Instr == nil {
			return d.fail() // parameters are opaque values
		}
		dc := d.decomposeDef(site.Instr)
		if !dc.ok {
			return d.fail()
		}
		if i == 0 {
			acc = dc
			continue
		}
		if dc.loc.Base != acc.loc.Base {
			return d.fail()
		}
		acc.loc.Off = acc.loc.Off.Join(dc.loc.Off)
	}
	return acc
}

// valueOfArg is the numeric interval of operand k, joined over reaching
// definitions using the range analysis' per-definition results.
func (d *decomposer) valueOfArg(instr *ir.Instr, k int) Interval {
	if instr.ImmArg && k == 1 {
		return Const(instr.Imm)
	}
	if k >= len(instr.Args) || d.fn.VRegType(instr.Args[k]) != ir.I64 {
		return Top()
	}
	uses, ok := d.rd.UseDefs[instr.ID]
	if !ok || k >= len(uses) || len(uses[k]) == 0 {
		return Top()
	}
	acc := Bot()
	for _, siteIdx := range uses[k] {
		site := d.rd.Site(siteIdx)
		if site.Instr == nil {
			return Top() // parameter
		}
		iv, ok := d.ranges.ValOut[site.Instr.ID]
		if !ok {
			return Top()
		}
		acc = acc.Join(iv)
	}
	return acc
}

// AnalyzeAliases computes the abstract location of every memory access and
// the escaped-base set for fn.
func AnalyzeAliases(fn *ir.Func, rd *dataflow.ReachingDefs, ranges *Ranges) *Aliases {
	al := &Aliases{Fn: fn, Locs: make(map[int]Loc), Escaped: make(map[Base]bool)}
	d := &decomposer{fn: fn, rd: rd, ranges: ranges,
		memo: make(map[int]decomp), state: make(map[int]uint8)}

	markEscape := func(instr *ir.Instr, k int) {
		if dc := d.decomposeArg(instr, k); dc.ok {
			al.Escaped[dc.loc.Base] = true
		}
	}

	for _, b := range fn.Blocks {
		for _, instr := range b.Instrs {
			switch instr.Op {
			case ir.OpLoad:
				loc := Loc{Base: Base{Kind: BaseUnknown}, Off: Top()}
				if dc := d.decomposeArg(instr, 0); dc.ok {
					loc = dc.loc
					loc.Off = loc.Off.Add(Const(instr.Imm))
				}
				al.Locs[instr.ID] = loc
			case ir.OpStore:
				loc := Loc{Base: Base{Kind: BaseUnknown}, Off: Top()}
				if dc := d.decomposeArg(instr, 1); dc.ok {
					loc = dc.loc
					loc.Off = loc.Off.Add(Const(instr.Imm))
				}
				al.Locs[instr.ID] = loc
				markEscape(instr, 0) // storing an address publishes it
			case ir.OpCall:
				for k := range instr.Args {
					markEscape(instr, k)
				}
			case ir.OpRet:
				for k := range instr.Args {
					markEscape(instr, k)
				}
			}
		}
	}
	return al
}
