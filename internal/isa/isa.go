// Package isa defines the MIPS-like target instruction set, including the
// 22 extension opcodes that let integer operations execute in the augmented
// floating-point subsystem (FPa), mirroring the paper's extended
// SimpleScalar instruction set ("We used 22 extra opcodes for our study";
// integer multiply and divide are deliberately not supported in FPa).
//
// Conventions:
//   - 32 integer registers; R0 is hardwired zero, R2 holds integer return
//     values, R4–R7 carry integer arguments, R29 is the stack pointer, R31
//     the return address. R1, R26, R27 are reserved assembler/spill
//     scratch.
//   - 32 floating-point registers; F0 holds float return values, F12–F15
//     carry float arguments, F30/F31 are reserved spill scratch.
//   - All scalars are 8-byte words; loads/stores use base+offset
//     addressing.
//   - ALU operations are three-register or register+immediate (Inst.UseImm,
//     the addi/andi/slti forms); remaining constants are materialized with
//     LI/LIA/LID.
package isa

import "fmt"

// Opcode enumerates machine operations.
type Opcode uint8

// Integer-subsystem opcodes.
const (
	NOP Opcode = iota
	LI         // Rd = Imm (or address of Sym)
	MOV        // Rd = Rs
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	NOR
	SLL
	SRA
	SRL
	SEQ // Rd = (Rs == Rt)
	SNE
	SLT
	SLE
	SGT
	SGE
	LW   // Rd = mem[Rs+Imm]
	SW   // mem[Rt+Imm] = Rs
	BNEZ // if Rs != 0 goto Target
	BEQZ
	J
	JAL
	JR   // jump through Rs (function return)
	HALT // stop the machine (end of start stub)
	PRNI // print integer in Rs (host trap, used by the `print` builtin)

	// Floating-point subsystem opcodes (conventional).
	LID  // Fd = FImm
	FMOV // Fd = Fs
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FSEQ // Rd = (Fs == Ft)  (condition delivered to both subsystems)
	FSNE
	FSLT
	FSLE
	FSGT
	FSGE
	CVTIF // Fd = float(Rs)
	CVTFI // Rd = int(Fs)
	LD    // Fd = mem[Rs+Imm] (float load; executes in the INT ld/st unit)
	SD    // mem[Rt+Imm] = Fs
	PRNF  // print float in Fs (host trap, used by the `printf_` builtin)

	// The 22 FPa extension opcodes. ALU forms operate on integer values
	// held in floating-point registers and execute on the augmented FP
	// functional units; LWFA/SWFA execute in the INT load/store unit but
	// deliver/fetch the value to/from the FP register file; CP2FP/CP2INT
	// move values between the register files.
	LIA    // Fd = Imm (integer constant into FP register)         (1)
	MOVA   // Fd = Fs (integer move in FP file)                    (2)
	ADDA   //                                                      (3)
	SUBA   //                                                      (4)
	ANDA   //                                                      (5)
	ORA    //                                                      (6)
	XORA   //                                                      (7)
	NORA   //                                                      (8)
	SLLA   //                                                      (9)
	SRAA   //                                                     (10)
	SRLA   //                                                     (11)
	SEQA   //                                                     (12)
	SNEA   //                                                     (13)
	SLTA   //                                                     (14)
	SLEA   //                                                     (15)
	SGTA   //                                                     (16)
	SGEA   //                                                     (17)
	BNEZA  // branch on integer value in FP register             (18)
	CP2FP  // Fd = Rs (INT→FPa copy)                             (19)
	CP2INT // Rd = Fs (FPa→INT copy)                            (20)
	LWFA   // Fd = mem[Rs+Imm] (integer load into FP register)   (21)
	SWFA   // mem[Rt+Imm] = Fs (store integer from FP register)  (22)

	numOpcodes
)

var opNames = [...]string{
	NOP: "nop", LI: "li", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", NOR: "nor",
	SLL: "sll", SRA: "sra", SRL: "srl",
	SEQ: "seq", SNE: "sne", SLT: "slt", SLE: "sle", SGT: "sgt", SGE: "sge",
	LW: "lw", SW: "sw", BNEZ: "bnez", BEQZ: "beqz",
	J: "j", JAL: "jal", JR: "jr", HALT: "halt", PRNI: "prni",
	LID: "li.d", FMOV: "mov.d",
	FADD: "add.d", FSUB: "sub.d", FMUL: "mul.d", FDIV: "div.d", FNEG: "neg.d",
	FSEQ: "c.eq.d", FSNE: "c.ne.d", FSLT: "c.lt.d", FSLE: "c.le.d",
	FSGT: "c.gt.d", FSGE: "c.ge.d",
	CVTIF: "cvt.d.l", CVTFI: "cvt.l.d", LD: "l.d", SD: "s.d", PRNF: "prnf",
	LIA: "li,a", MOVA: "mov,a",
	ADDA: "add,a", SUBA: "sub,a", ANDA: "and,a", ORA: "or,a",
	XORA: "xor,a", NORA: "nor,a",
	SLLA: "sll,a", SRAA: "sra,a", SRLA: "srl,a",
	SEQA: "seq,a", SNEA: "sne,a", SLTA: "slt,a", SLEA: "sle,a",
	SGTA: "sgt,a", SGEA: "sge,a",
	BNEZA: "bnez,a", CP2FP: "cp2fp", CP2INT: "cp2int",
	LWFA: "lw,a", SWFA: "sw,a",
}

// String returns the assembly mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// NumFPaExtensionOpcodes is the number of new opcodes the architecture adds,
// matching the paper's 22.
const NumFPaExtensionOpcodes = 22

// Subsystem identifies which hardware subsystem executes an instruction.
type Subsystem uint8

// Subsystems for timing and accounting.
const (
	SubINT Subsystem = iota // integer ALUs, load/store unit, int branches
	SubFP                   // conventional floating-point units
	SubFPa                  // integer ops on the augmented FP units
)

// String names the subsystem.
func (s Subsystem) String() string {
	switch s {
	case SubFP:
		return "FP"
	case SubFPa:
		return "FPa"
	}
	return "INT"
}

// ExecSubsystem returns where the opcode executes. Loads and stores —
// including LWFA/SWFA/L.D/S.D — execute in the INT subsystem's load/store
// unit (only the destination/source register file differs), exactly as in
// the paper's Figure 1 machine. CP2FP reads an integer register and issues
// from the integer side; CP2INT reads an FP register and issues from the FP
// side.
func ExecSubsystem(op Opcode) Subsystem {
	switch op {
	case LID, FMOV, FADD, FSUB, FMUL, FDIV, FNEG,
		FSEQ, FSNE, FSLT, FSLE, FSGT, FSGE, CVTIF, CVTFI, PRNF:
		return SubFP
	case LIA, MOVA, ADDA, SUBA, ANDA, ORA, XORA, NORA,
		SLLA, SRAA, SRLA, SEQA, SNEA, SLTA, SLEA, SGTA, SGEA,
		BNEZA, CP2INT:
		return SubFPa
	}
	return SubINT
}

// IsLoad reports whether op reads memory.
func IsLoad(op Opcode) bool { return op == LW || op == LD || op == LWFA }

// IsStore reports whether op writes memory.
func IsStore(op Opcode) bool { return op == SW || op == SD || op == SWFA }

// IsMem reports whether op accesses memory.
func IsMem(op Opcode) bool { return IsLoad(op) || IsStore(op) }

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Opcode) bool { return op == BNEZ || op == BEQZ || op == BNEZA }

// IsJump reports whether op unconditionally redirects fetch.
func IsJump(op Opcode) bool { return op == J || op == JAL || op == JR }

// IsControl reports whether op is any control transfer.
func IsControl(op Opcode) bool { return IsCondBranch(op) || IsJump(op) }

// Latency returns the execution latency in cycles, per Table 1 ("6 cycle
// mul, 12 cycle div, 1 cycle" otherwise for integer ops). Conventional FP
// arithmetic uses typical multi-cycle latencies; the FPa integer ops are
// single-cycle by the paper's key hardware assumption (§6.6). Loads take 1
// cycle plus cache access time (charged by the memory model).
func Latency(op Opcode) int {
	switch op {
	case MUL:
		return 6
	case DIV, REM:
		return 12
	case FADD, FSUB, FNEG, FSEQ, FSNE, FSLT, FSLE, FSGT, FSGE, CVTIF, CVTFI:
		return 2
	case FMUL:
		return 6
	case FDIV:
		return 12
	}
	return 1
}

// RegClass identifies a register file.
type RegClass uint8

// Register classes.
const (
	IntReg RegClass = iota
	FpReg
)

// Distinguished integer registers.
const (
	RegZero = 0  // hardwired zero
	RegAT   = 1  // assembler scratch (spill reloads)
	RegV0   = 2  // integer return value
	RegA0   = 4  // first integer argument (A0..A3 = 4..7)
	RegK0   = 26 // spill scratch
	RegK1   = 27 // spill scratch
	RegSP   = 29 // stack pointer
	RegRA   = 31 // return address
)

// Distinguished FP registers.
const (
	FRegV0 = 0  // float return value
	FRegA0 = 12 // first float argument (F12..F15)
	FRegS0 = 30 // spill scratch
	FRegS1 = 31 // spill scratch
)

// Inst is one machine instruction. Register fields are indices into the
// register file implied by the opcode (see package comment); Target is a
// resolved instruction index for control transfers; Sym carries a symbol
// for LI/LIA address materialization and call targets until linking.
type Inst struct {
	Op     Opcode
	Rd     uint8
	Rs     uint8
	Rt     uint8
	Imm    int64
	FImm   float64
	Target int
	Sym    string

	// IsDup marks instructions the advanced scheme duplicated into FPa,
	// for dynamic overhead accounting (§7.2).
	IsDup bool

	// UseImm marks ALU instructions whose second operand is Imm instead of
	// Rt (the addi/andi/slti immediate forms and their FPa ",a" variants).
	UseImm bool

	// SrcLine is the 1-based source line this instruction was compiled
	// from (0 when unknown, e.g. the start stub or synthesized glue). The
	// debug line table threads this from the frontend through optimization
	// and instruction selection so profilers can attribute cycles to
	// source lines.
	SrcLine int32

	// IROp records the numeric value of the ir.Op this instruction was
	// selected from, as raw provenance (this package cannot import ir).
	// 0 means unknown/synthesized. Report layers that want the mnemonic
	// convert via ir.Op(inst.IROp).String().
	IROp uint8
}

// String disassembles the instruction.
func (in Inst) String() string {
	r := func(n uint8) string { return fmt.Sprintf("$%d", n) }
	f := func(n uint8) string { return fmt.Sprintf("$f%d", n) }
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case LI:
		if in.Sym != "" {
			return fmt.Sprintf("li %s, %s(=%d)", r(in.Rd), in.Sym, in.Imm)
		}
		return fmt.Sprintf("li %s, %d", r(in.Rd), in.Imm)
	case LIA:
		if in.Sym != "" {
			return fmt.Sprintf("li,a %s, %s(=%d)", f(in.Rd), in.Sym, in.Imm)
		}
		return fmt.Sprintf("li,a %s, %d", f(in.Rd), in.Imm)
	case LID:
		return fmt.Sprintf("li.d %s, %g", f(in.Rd), in.FImm)
	case MOV:
		return fmt.Sprintf("mov %s, %s", r(in.Rd), r(in.Rs))
	case FMOV, MOVA:
		return fmt.Sprintf("%s %s, %s", in.Op, f(in.Rd), f(in.Rs))
	case LW:
		return fmt.Sprintf("lw %s, %d(%s)", r(in.Rd), in.Imm, r(in.Rs))
	case LD:
		return fmt.Sprintf("l.d %s, %d(%s)", f(in.Rd), in.Imm, r(in.Rs))
	case LWFA:
		return fmt.Sprintf("lw,a %s, %d(%s)", f(in.Rd), in.Imm, r(in.Rs))
	case SW:
		return fmt.Sprintf("sw %s, %d(%s)", r(in.Rs), in.Imm, r(in.Rt))
	case SD:
		return fmt.Sprintf("s.d %s, %d(%s)", f(in.Rs), in.Imm, r(in.Rt))
	case SWFA:
		return fmt.Sprintf("sw,a %s, %d(%s)", f(in.Rs), in.Imm, r(in.Rt))
	case BNEZ, BEQZ:
		return fmt.Sprintf("%s %s, @%d", in.Op, r(in.Rs), in.Target)
	case BNEZA:
		return fmt.Sprintf("bnez,a %s, @%d", f(in.Rs), in.Target)
	case J, JAL:
		if in.Sym != "" {
			return fmt.Sprintf("%s %s(@%d)", in.Op, in.Sym, in.Target)
		}
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case JR:
		return fmt.Sprintf("jr %s", r(in.Rs))
	case PRNI:
		return fmt.Sprintf("prni %s", r(in.Rs))
	case PRNF:
		return fmt.Sprintf("prnf %s", f(in.Rs))
	case CP2FP:
		return fmt.Sprintf("cp2fp %s, %s", f(in.Rd), r(in.Rs))
	case CP2INT:
		return fmt.Sprintf("cp2int %s, %s", r(in.Rd), f(in.Rs))
	case CVTIF:
		return fmt.Sprintf("cvt.d.l %s, %s", f(in.Rd), r(in.Rs))
	case CVTFI:
		return fmt.Sprintf("cvt.l.d %s, %s", r(in.Rd), f(in.Rs))
	case FSEQ, FSNE, FSLT, FSLE, FSGT, FSGE:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), f(in.Rs), f(in.Rt))
	case FADD, FSUB, FMUL, FDIV:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, f(in.Rd), f(in.Rs), f(in.Rt))
	case FNEG:
		return fmt.Sprintf("neg.d %s, %s", f(in.Rd), f(in.Rs))
	}
	if ExecSubsystem(in.Op) == SubFPa {
		if in.UseImm {
			return fmt.Sprintf("%s %s, %s, %d", in.Op, f(in.Rd), f(in.Rs), in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, f(in.Rd), f(in.Rs), f(in.Rt))
	}
	if in.UseImm {
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Rs), in.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs), r(in.Rt))
}

// Program is an assembled executable: a flat instruction array plus the
// data-segment layout.
type Program struct {
	Insts []Inst

	// FuncEntry maps function names to their entry instruction index.
	FuncEntry map[string]int
	// FuncOf maps an instruction index to the containing function name
	// (used for per-function statistics).
	FuncOf []string

	// GlobalAddr maps global names to data-segment byte addresses.
	GlobalAddr map[string]int64
	// DataWords holds initial data-segment contents (address → raw word).
	DataWords map[int64]uint64
	// DataTop is the first byte past the data segment.
	DataTop int64
}

// Disassemble renders the program listing.
func (p *Program) Disassemble() string {
	s := ""
	entryNames := make(map[int]string)
	for name, idx := range p.FuncEntry {
		entryNames[idx] = name
	}
	for i, in := range p.Insts {
		if name, ok := entryNames[i]; ok {
			s += fmt.Sprintf("%s:\n", name)
		}
		s += fmt.Sprintf("  %4d: %s\n", i, in.String())
	}
	return s
}
