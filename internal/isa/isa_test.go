package isa_test

import (
	"strings"
	"testing"

	"fpint/internal/isa"
)

// TestExtensionOpcodeCount pins the architectural claim: exactly 22 new
// opcodes, as in the paper.
func TestExtensionOpcodeCount(t *testing.T) {
	ext := []isa.Opcode{
		isa.LIA, isa.MOVA, isa.ADDA, isa.SUBA, isa.ANDA, isa.ORA, isa.XORA,
		isa.NORA, isa.SLLA, isa.SRAA, isa.SRLA, isa.SEQA, isa.SNEA, isa.SLTA,
		isa.SLEA, isa.SGTA, isa.SGEA, isa.BNEZA, isa.CP2FP, isa.CP2INT,
		isa.LWFA, isa.SWFA,
	}
	if len(ext) != isa.NumFPaExtensionOpcodes || isa.NumFPaExtensionOpcodes != 22 {
		t.Fatalf("extension opcode count = %d, want 22", len(ext))
	}
	seen := make(map[isa.Opcode]bool)
	for _, op := range ext {
		if seen[op] {
			t.Fatalf("duplicate opcode %v", op)
		}
		seen[op] = true
	}
}

// TestNoIntegerMulDivInFPa pins the hardware-cost decision: integer
// multiply and divide are not supported in the FP subsystem.
func TestNoIntegerMulDivInFPa(t *testing.T) {
	for _, op := range []isa.Opcode{isa.MUL, isa.DIV, isa.REM} {
		if isa.ExecSubsystem(op) != isa.SubINT {
			t.Errorf("%v should execute in INT only", op)
		}
	}
}

func TestExecSubsystemClassification(t *testing.T) {
	cases := map[isa.Opcode]isa.Subsystem{
		isa.ADD:    isa.SubINT,
		isa.LW:     isa.SubINT,
		isa.SW:     isa.SubINT,
		isa.BNEZ:   isa.SubINT,
		isa.JAL:    isa.SubINT,
		isa.CP2FP:  isa.SubINT, // reads an integer register
		isa.LWFA:   isa.SubINT, // executes in the INT load/store unit
		isa.SWFA:   isa.SubINT,
		isa.LD:     isa.SubINT,
		isa.SD:     isa.SubINT,
		isa.FADD:   isa.SubFP,
		isa.FSLT:   isa.SubFP,
		isa.CVTIF:  isa.SubFP,
		isa.ADDA:   isa.SubFPa,
		isa.BNEZA:  isa.SubFPa,
		isa.CP2INT: isa.SubFPa, // reads an FP register
		isa.SEQA:   isa.SubFPa,
		isa.LIA:    isa.SubFPa,
	}
	for op, want := range cases {
		if got := isa.ExecSubsystem(op); got != want {
			t.Errorf("ExecSubsystem(%v) = %v, want %v", op, got, want)
		}
	}
}

// TestFPaSingleCycle pins the §6.6 assumption: integer ops in FPa are
// single-cycle, like their INT counterparts.
func TestFPaSingleCycle(t *testing.T) {
	for _, op := range []isa.Opcode{isa.ADDA, isa.SUBA, isa.ANDA, isa.SLLA, isa.SEQA, isa.BNEZA, isa.MOVA} {
		if isa.Latency(op) != 1 {
			t.Errorf("Latency(%v) = %d, want 1", op, isa.Latency(op))
		}
	}
	if isa.Latency(isa.MUL) != 6 || isa.Latency(isa.DIV) != 12 {
		t.Errorf("mul/div latency wrong (Table 1: 6c mul, 12c div)")
	}
}

func TestMemClassifiers(t *testing.T) {
	for _, op := range []isa.Opcode{isa.LW, isa.LD, isa.LWFA} {
		if !isa.IsLoad(op) || isa.IsStore(op) || !isa.IsMem(op) {
			t.Errorf("%v misclassified", op)
		}
	}
	for _, op := range []isa.Opcode{isa.SW, isa.SD, isa.SWFA} {
		if isa.IsLoad(op) || !isa.IsStore(op) || !isa.IsMem(op) {
			t.Errorf("%v misclassified", op)
		}
	}
	if isa.IsMem(isa.ADD) || isa.IsMem(isa.CP2FP) {
		t.Error("non-memory op classified as memory")
	}
}

func TestControlClassifiers(t *testing.T) {
	for _, op := range []isa.Opcode{isa.BNEZ, isa.BEQZ, isa.BNEZA} {
		if !isa.IsCondBranch(op) || !isa.IsControl(op) {
			t.Errorf("%v not a conditional branch", op)
		}
	}
	for _, op := range []isa.Opcode{isa.J, isa.JAL, isa.JR} {
		if !isa.IsJump(op) || isa.IsCondBranch(op) {
			t.Errorf("%v misclassified", op)
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   isa.Inst
		want string
	}{
		{isa.Inst{Op: isa.ADD, Rd: 8, Rs: 9, Rt: 10}, "add $8, $9, $10"},
		{isa.Inst{Op: isa.ADD, Rd: 8, Rs: 9, Imm: 5, UseImm: true}, "add $8, $9, 5"},
		{isa.Inst{Op: isa.ADDA, Rd: 4, Rs: 5, Rt: 6}, "add,a $f4, $f5, $f6"},
		{isa.Inst{Op: isa.LW, Rd: 8, Rs: 29, Imm: 16}, "lw $8, 16($29)"},
		{isa.Inst{Op: isa.LWFA, Rd: 3, Rs: 29, Imm: 8}, "lw,a $f3, 8($29)"},
		{isa.Inst{Op: isa.SWFA, Rs: 3, Rt: 29, Imm: 8}, "sw,a $f3, 8($29)"},
		{isa.Inst{Op: isa.CP2FP, Rd: 2, Rs: 16}, "cp2fp $f2, $16"},
		{isa.Inst{Op: isa.CP2INT, Rd: 16, Rs: 2}, "cp2int $16, $f2"},
		{isa.Inst{Op: isa.BNEZA, Rs: 4, Target: 12}, "bnez,a $f4, @12"},
		{isa.Inst{Op: isa.LI, Rd: 8, Imm: -7}, "li $8, -7"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestAllOpcodesHaveNames(t *testing.T) {
	// Every opcode through SWFA must disassemble to something other than
	// the fallback.
	for op := isa.NOP; op <= isa.SWFA; op++ {
		if strings.HasPrefix(op.String(), "op") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}
