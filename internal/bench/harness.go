package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/isa"
	"fpint/internal/obs/hostmetrics"
	"fpint/internal/sim"
	"fpint/internal/uarch"
)

// Measurement is the outcome of running one workload under one scheme on
// one machine configuration.
type Measurement struct {
	Workload string
	Scheme   codegen.Scheme
	Config   string

	Ret                int64
	DynInstrs          int64
	OffloadFrac        float64 // fraction of dynamic instructions executed in FPa
	Copies             int64
	Dups               int64
	Loads              int64
	Stores             int64
	Cycles             int64
	IPC                float64
	IntIdleFPaBusyFrac float64
	BpredAccuracy      float64
	DCacheMissRate     float64

	// IssueActiveCycles plus the per-cause stall cycles in Stalls sum to
	// Cycles (the uarch top-down accounting invariant).
	IssueActiveCycles int64
	// Stalls maps stall-cause name → cycles, summed over subsystems.
	Stalls map[string]int64
	// StallsBySub maps "<subsystem>.<cause>" → cycles.
	StallsBySub map[string]int64

	// Host is the Go-level cost of the timing-model run that produced this
	// measurement (wall time, allocations, GC). It is nondeterministic and
	// never serialized into reports — consumers that want it (fpibench
	// -hostmetrics, fpistat record -suite) read it explicitly.
	Host *hostmetrics.Sample

	// Sampled is non-nil when the measurement came from the sampled-timing
	// fast mode (Suite.SetFast): Cycles and the stall ledger are then
	// bounded-error estimates, not exact counts.
	Sampled *SampledInfo
}

// SampledInfo is the fast-mode provenance of a measurement.
type SampledInfo struct {
	Windows              int
	MeasuredInstructions int64
	SampledFraction      float64
	Exact                bool
}

// Suite compiles and runs workloads, caching frontend results (the IR and
// the self-profile) per workload so repeated measurements stay cheap.
type Suite struct {
	mu    sync.Mutex
	front map[string]*frontRes
	fast  *uarch.SampleConfig
}

type frontRes struct {
	mod  *ir.Module
	prof *interp.Profile
	ref  *interp.Result
}

// NewSuite returns an empty measurement cache.
func NewSuite() *Suite {
	return &Suite{front: make(map[string]*frontRes)}
}

// SetFast switches every subsequent Measure call to the sampled-timing
// fast mode (uarch.RunSampled) with the given sampling parameters. Cycle
// counts become bounded-error estimates — figures computed from them are
// sweeps, not gate material — and each Measurement carries its Sampled
// provenance.
func (s *Suite) SetFast(sc uarch.SampleConfig) {
	s.fast = &sc
}

func (s *Suite) frontend(w *Workload) (*frontRes, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fr, ok := s.front[w.Name]; ok {
		return fr, nil
	}
	mod, prof, err := codegen.FrontendPipeline(w.Src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		return nil, fmt.Errorf("%s: reference run: %w", w.Name, err)
	}
	s.front[w.Name] = &frontRes{mod: mod, prof: prof, ref: ref}
	return s.front[w.Name], nil
}

// Compile builds the workload under the scheme, verifying functional
// equivalence with the IR interpreter.
func (s *Suite) Compile(w *Workload, scheme codegen.Scheme) (*codegen.Result, error) {
	fr, err := s.frontend(w)
	if err != nil {
		return nil, err
	}
	res, err := codegen.Compile(fr.mod, codegen.Options{Scheme: scheme, Profile: fr.prof})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", w.Name, scheme, err)
	}
	return res, nil
}

// Measure runs the workload under scheme on cfg and cross-checks the
// functional result against the IR interpreter reference.
func (s *Suite) Measure(w *Workload, scheme codegen.Scheme, cfg uarch.Config) (*Measurement, error) {
	fr, err := s.frontend(w)
	if err != nil {
		return nil, err
	}
	res, err := s.Compile(w, scheme)
	if err != nil {
		return nil, err
	}
	var out *sim.Result
	var st uarch.Stats
	var sampled *SampledInfo
	hostSample := hostmetrics.Measure(func() {
		if s.fast != nil {
			var sst uarch.SampledStats
			out, sst, err = uarch.RunSampled(res.Prog, cfg, *s.fast)
			st = sst.Stats
			sampled = &SampledInfo{
				Windows:              sst.Windows,
				MeasuredInstructions: sst.MeasuredInstructions,
				SampledFraction:      sst.SampledFraction,
				Exact:                sst.Exact,
			}
		} else {
			out, st, err = uarch.Run(res.Prog, cfg)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", w.Name, scheme, err)
	}
	if out.Ret != fr.ref.Ret || out.Output != fr.ref.Output {
		return nil, fmt.Errorf("%s/%s: functional mismatch: got %d want %d", w.Name, scheme, out.Ret, fr.ref.Ret)
	}
	m := &Measurement{
		Workload:       w.Name,
		Scheme:         scheme,
		Config:         cfg.Name,
		Ret:            out.Ret,
		DynInstrs:      out.Stats.Total,
		OffloadFrac:    out.Stats.OffloadFraction(),
		Copies:         out.Stats.Copies,
		Dups:           out.Stats.Dups,
		Loads:          out.Stats.Loads,
		Stores:         out.Stats.Stores,
		Cycles:         st.Cycles,
		IPC:            st.IPC(),
		BpredAccuracy:  1,
		DCacheMissRate: st.DCacheMissRate,
	}
	if st.BpredLookups > 0 {
		m.BpredAccuracy = 1 - float64(st.BpredMispredicts)/float64(st.BpredLookups)
	}
	if st.Cycles > 0 {
		m.IntIdleFPaBusyFrac = float64(st.IntIdleFPaBusy) / float64(st.Cycles)
	}
	m.Host = &hostSample
	m.Sampled = sampled
	m.IssueActiveCycles = st.IssueActiveCycles
	m.Stalls = make(map[string]int64)
	m.StallsBySub = make(map[string]int64)
	for sub := 0; sub < 3; sub++ {
		for cause := 0; cause < uarch.NumStallCauses; cause++ {
			n := st.StallBySub[sub][cause]
			if n == 0 {
				continue
			}
			name := uarch.StallCause(cause).String()
			m.Stalls[name] += n
			m.StallsBySub[isa.Subsystem(sub).String()+"."+name] += n
		}
	}
	return m, nil
}

// SpeedupRow is one bar of Figures 9/10.
type SpeedupRow struct {
	Workload    string
	BasicPct    float64 // speedup % of the basic scheme over conventional
	AdvancedPct float64
	BaseCycles  int64
	BasicCycles int64
	AdvCycles   int64
}

// FigureSpeedups computes speedups (Figures 9 and 10) for the given
// workloads on cfg.
func (s *Suite) FigureSpeedups(ws []Workload, cfg uarch.Config) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for i := range ws {
		w := &ws[i]
		base, err := s.Measure(w, codegen.SchemeNone, cfg)
		if err != nil {
			return nil, err
		}
		basic, err := s.Measure(w, codegen.SchemeBasic, cfg)
		if err != nil {
			return nil, err
		}
		adv, err := s.Measure(w, codegen.SchemeAdvanced, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SpeedupRow{
			Workload:    w.Name,
			BasicPct:    100 * (float64(base.Cycles)/float64(basic.Cycles) - 1),
			AdvancedPct: 100 * (float64(base.Cycles)/float64(adv.Cycles) - 1),
			BaseCycles:  base.Cycles,
			BasicCycles: basic.Cycles,
			AdvCycles:   adv.Cycles,
		})
	}
	return rows, nil
}

// PartitionRow is one pair of bars of Figure 8.
type PartitionRow struct {
	Workload    string
	BasicPct    float64 // % of dynamic instructions executed in FPa
	AdvancedPct float64
}

// FigurePartitionSizes computes Figure 8 (the size of the FPa partition as
// a percentage of total dynamic instructions) for the given workloads.
// Offload percentages are a property of the binary, so any machine
// configuration gives the same numbers; the functional simulator suffices.
func (s *Suite) FigurePartitionSizes(ws []Workload) ([]PartitionRow, error) {
	var rows []PartitionRow
	for i := range ws {
		w := &ws[i]
		basic, err := s.runFunctional(w, codegen.SchemeBasic)
		if err != nil {
			return nil, err
		}
		adv, err := s.runFunctional(w, codegen.SchemeAdvanced)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PartitionRow{
			Workload:    w.Name,
			BasicPct:    100 * basic.Stats.OffloadFraction(),
			AdvancedPct: 100 * adv.Stats.OffloadFraction(),
		})
	}
	return rows, nil
}

func (s *Suite) runFunctional(w *Workload, scheme codegen.Scheme) (*sim.Result, error) {
	fr, err := s.frontend(w)
	if err != nil {
		return nil, err
	}
	res, err := s.Compile(w, scheme)
	if err != nil {
		return nil, err
	}
	out, err := sim.New(res.Prog).Run()
	if err != nil {
		return nil, err
	}
	if out.Ret != fr.ref.Ret {
		return nil, fmt.Errorf("%s/%s: functional mismatch", w.Name, scheme)
	}
	return out, nil
}

// OverheadRow quantifies §7.2's overhead discussion for one workload.
type OverheadRow struct {
	Workload        string
	DynGrowthPct    float64 // increase in dynamic instructions, advanced vs base
	CopyPct         float64 // copies as % of baseline dynamic instructions
	DupPct          float64
	StaticGrowthPct float64
}

// Overheads measures the §7.2 numbers for the given workloads.
func (s *Suite) Overheads(ws []Workload) ([]OverheadRow, error) {
	var rows []OverheadRow
	for i := range ws {
		w := &ws[i]
		base, err := s.runFunctional(w, codegen.SchemeNone)
		if err != nil {
			return nil, err
		}
		adv, err := s.runFunctional(w, codegen.SchemeAdvanced)
		if err != nil {
			return nil, err
		}
		baseRes, err := s.Compile(w, codegen.SchemeNone)
		if err != nil {
			return nil, err
		}
		advRes, err := s.Compile(w, codegen.SchemeAdvanced)
		if err != nil {
			return nil, err
		}
		baseStatic, advStatic := 0, 0
		for _, st := range baseRes.Stats {
			baseStatic += st.StaticInsts
		}
		for _, st := range advRes.Stats {
			advStatic += st.StaticInsts
		}
		rows = append(rows, OverheadRow{
			Workload:        w.Name,
			DynGrowthPct:    100 * (float64(adv.Stats.Total)/float64(base.Stats.Total) - 1),
			CopyPct:         100 * float64(adv.Stats.Copies) / float64(base.Stats.Total),
			DupPct:          100 * float64(adv.Stats.Dups) / float64(base.Stats.Total),
			StaticGrowthPct: 100 * (float64(advStatic)/float64(baseStatic) - 1),
		})
	}
	return rows, nil
}

// LoadChangeRow quantifies the §6.6 register-pressure effect: the change in
// dynamic loads+stores between the baseline and the advanced scheme
// (spill/reload and save/restore differences).
type LoadChangeRow struct {
	Workload     string
	LoadDeltaPct float64
}

// LoadChanges measures the §6.6 numbers.
func (s *Suite) LoadChanges(ws []Workload) ([]LoadChangeRow, error) {
	var rows []LoadChangeRow
	for i := range ws {
		w := &ws[i]
		base, err := s.runFunctional(w, codegen.SchemeNone)
		if err != nil {
			return nil, err
		}
		adv, err := s.runFunctional(w, codegen.SchemeAdvanced)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LoadChangeRow{
			Workload:     w.Name,
			LoadDeltaPct: 100 * (float64(adv.Stats.Loads)/float64(base.Stats.Loads) - 1),
		})
	}
	return rows, nil
}

// SliceRow reports computational-slice weights (§3/§4): the LdSt slice
// should be near 50% of dynamic instructions for integer codes.
type SliceRow struct {
	Workload    string
	LdStPct     float64
	BranchPct   float64
	StoreValPct float64
}

// SliceStats computes profile-weighted slice sizes across each workload's
// functions.
func (s *Suite) SliceStats(ws []Workload) ([]SliceRow, error) {
	var rows []SliceRow
	for i := range ws {
		w := &ws[i]
		fr, err := s.frontend(w)
		if err != nil {
			return nil, err
		}
		var total, ldst, br, sv float64
		for _, fn := range fr.mod.Funcs {
			g := core.BuildGraph(fn, fr.prof)
			st := g.ComputeSliceStats()
			total += st.TotalWeight
			ldst += st.LdStWeight
			br += st.BranchWeight
			sv += st.StoreValWeight
		}
		if total == 0 {
			total = 1
		}
		rows = append(rows, SliceRow{
			Workload:    w.Name,
			LdStPct:     100 * ldst / total,
			BranchPct:   100 * br / total,
			StoreValPct: 100 * sv / total,
		})
	}
	return rows, nil
}

// ImbalanceRow quantifies §7.3's load-imbalance discussion for one
// workload under the advanced scheme.
type ImbalanceRow struct {
	Workload          string
	OffloadPct        float64
	IntIdleFPaBusyPct float64
}

// Imbalance measures the §7.3 numbers for the given workloads on cfg.
func (s *Suite) Imbalance(ws []Workload, cfg uarch.Config) ([]ImbalanceRow, error) {
	var rows []ImbalanceRow
	for i := range ws {
		w := &ws[i]
		m, err := s.Measure(w, codegen.SchemeAdvanced, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ImbalanceRow{
			Workload:          w.Name,
			OffloadPct:        100 * m.OffloadFrac,
			IntIdleFPaBusyPct: 100 * m.IntIdleFPaBusyFrac,
		})
	}
	return rows, nil
}

// IntWorkloads returns the SPECint95 stand-ins.
func IntWorkloads() []Workload {
	var out []Workload
	for _, w := range Workloads() {
		if w.Class == "int" {
			out = append(out, w)
		}
	}
	return out
}

// FpWorkloads returns the floating-point programs (§7.5).
func FpWorkloads() []Workload {
	var out []Workload
	for _, w := range Workloads() {
		if w.Class == "fp" {
			out = append(out, w)
		}
	}
	return out
}

// FormatTable renders rows of columns with aligned widths.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// SortedFuncNames returns a deterministic ordering of a stats map's keys.
func SortedFuncNames(m map[string]*codegen.FuncStat) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
