package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Baseline comparison: fpibench -json reports double as performance
// baselines. LoadBaselineCycles extracts every per-workload cycle count
// from a prior report and CompareCycles diffs a fresh run against it, so a
// timing-model or compiler change that slows a benchmark down fails CI
// instead of landing silently.

// CycleKey addresses one cycle metric: an experiment, a workload row inside
// it, and the field name ("baseCycles" or "advCycles").
type CycleKey struct {
	Experiment string
	Workload   string
	Field      string
}

// CycleDelta is one baseline-vs-current comparison row.
type CycleDelta struct {
	Key CycleKey
	Old int64
	New int64
}

// Pct returns the relative change in percent (positive = more cycles =
// slower than the baseline).
func (d CycleDelta) Pct() float64 {
	if d.Old == 0 {
		return 0
	}
	return 100 * (float64(d.New)/float64(d.Old) - 1)
}

// cycleFields are the row fields that carry absolute cycle counts in the
// fpint-bench/v1 row types. Rows appear in both spellings: typed rows
// without JSON tags marshal with exported-field capitalization, tagged rows
// in lowerCamel.
var cycleFields = []string{"baseCycles", "basicCycles", "advCycles"}

// rowField reads a row field by its lowerCamel name, falling back to the
// UpperCamel spelling untagged structs marshal with.
func rowField(row map[string]any, name string) (any, bool) {
	if v, ok := row[name]; ok {
		return v, true
	}
	v, ok := row[strings.ToUpper(name[:1])+name[1:]]
	return v, ok
}

// decodeCycles pulls every cycle count out of an encoded report. Rows
// without cycle fields (partition sizes, overheads, static tables) are
// ignored. An unknown schema is an error: silently comparing incompatible
// layouts would produce confident nonsense.
func decodeCycles(r io.Reader) (map[CycleKey]int64, error) {
	var doc struct {
		Schema      string `json:"schema"`
		Experiments []struct {
			Name string          `json:"name"`
			Rows json.RawMessage `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	if doc.Schema != ReportSchema {
		return nil, fmt.Errorf("schema %q, want %q", doc.Schema, ReportSchema)
	}
	out := make(map[CycleKey]int64)
	for _, exp := range doc.Experiments {
		// Not every experiment has object rows (the static tables emit
		// string arrays); those cannot carry cycle counts, skip them.
		var rows []map[string]any
		if err := json.Unmarshal(exp.Rows, &rows); err != nil {
			continue
		}
		for _, row := range rows {
			wlv, ok := rowField(row, "workload")
			if !ok {
				continue
			}
			wl, ok := wlv.(string)
			if !ok {
				continue
			}
			for _, f := range cycleFields {
				if v, ok := rowField(row, f); ok {
					if n, ok := v.(float64); ok {
						out[CycleKey{exp.Name, wl, f}] = int64(n)
					}
				}
			}
		}
	}
	return out, nil
}

// LoadBaselineCycles reads an fpint-bench/v1 JSON report and returns every
// cycle count it carries, keyed by (experiment, workload, field).
func LoadBaselineCycles(r io.Reader) (map[CycleKey]int64, error) {
	out, err := decodeCycles(r)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("baseline: report carries no cycle counts")
	}
	return out, nil
}

// ExtractCycles returns the current report's cycle counts in the same keyed
// form, by round-tripping it through its own JSON encoding — the comparison
// then sees exactly what a future LoadBaselineCycles would.
func ExtractCycles(rep *Report) (map[CycleKey]int64, error) {
	buf, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return decodeCycles(bytes.NewReader(buf))
}

// CompareCycles diffs the current run against the baseline for every metric
// present in both, in deterministic order. Metrics only one side knows
// (new workload, retired experiment) are skipped: the comparison judges
// performance drift, not report-shape drift.
func CompareCycles(baseline, current map[CycleKey]int64) []CycleDelta {
	var out []CycleDelta
	for k, old := range baseline {
		if cur, ok := current[k]; ok {
			out = append(out, CycleDelta{Key: k, Old: old, New: cur})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Field < b.Field
	})
	return out
}

// Regressions filters the deltas to those slower than tolerancePct.
func Regressions(deltas []CycleDelta, tolerancePct float64) []CycleDelta {
	var out []CycleDelta
	for _, d := range deltas {
		if d.Pct() > tolerancePct {
			out = append(out, d)
		}
	}
	return out
}
