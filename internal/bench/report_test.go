package bench_test

import (
	"encoding/json"
	"strings"
	"testing"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

// FormatTable output is consumed by golden-diffing scripts; pin it exactly.
func TestFormatTableGolden(t *testing.T) {
	got := bench.FormatTable(
		[]string{"Benchmark", "Offload"},
		[][]string{
			{"compress", "16.172%"},
			{"go", " 7.539%"},
		})
	want := strings.Join([]string{
		"Benchmark  Offload",
		"---------  -------",
		"compress   16.172%",
		"go          7.539%",
		"",
	}, "\n")
	if got != want {
		t.Errorf("table drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestReportJSONGolden(t *testing.T) {
	type row struct {
		Workload string  `json:"workload"`
		Pct      float64 `json:"pct"`
	}
	r := bench.NewReport()
	r.Add("fig8_partition_sizes", "§7.1/Fig. 8", []row{{"compress", 16.5}})
	const want = `{
  "schema": "fpint-bench/v1",
  "experiments": [
    {
      "name": "fig8_partition_sizes",
      "section": "§7.1/Fig. 8",
      "rows": [
        {
          "workload": "compress",
          "pct": 16.5
        }
      ]
    }
  ]
}
`
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("report JSON drifted:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// An empty report must still carry the schema tag and decode cleanly.
func TestReportJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := bench.NewReport().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      string `json:"schema"`
		Experiments []any  `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != bench.ReportSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, bench.ReportSchema)
	}
}

// Measurement must carry the complete stall breakdown: per-cause cycles sum
// with issue-active cycles back to the total cycle count.
func TestMeasurementStallBreakdown(t *testing.T) {
	s := bench.NewSuite()
	ws := bench.IntWorkloads()
	var w *bench.Workload
	for i := range ws {
		if ws[i].Name == "compress" {
			w = &ws[i]
		}
	}
	if w == nil {
		t.Fatal("compress workload missing")
	}
	m, err := s.Measure(w, codegen.SchemeAdvanced, uarch.Config4Way())
	if err != nil {
		t.Fatal(err)
	}
	var stalls int64
	for _, v := range m.Stalls {
		stalls += v
	}
	var bySub int64
	for _, v := range m.StallsBySub {
		bySub += v
	}
	if stalls == 0 || stalls != bySub {
		t.Fatalf("stall maps disagree: ΣStalls=%d ΣStallsBySub=%d", stalls, bySub)
	}
	if m.IssueActiveCycles+stalls != m.Cycles {
		t.Fatalf("active %d + stalls %d != cycles %d", m.IssueActiveCycles, stalls, m.Cycles)
	}
}
