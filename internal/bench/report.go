package bench

import (
	"encoding/json"
	"io"
)

// ReportSchema identifies the JSON layout fpibench -json emits. Bump it
// when the shape of Report or any row type changes incompatibly; the
// golden tests pin the encoding byte-for-byte.
const ReportSchema = "fpint-bench/v1"

// Report is the machine-readable form of the evaluation: every requested
// figure/table as one named experiment with structured rows, so downstream
// tooling (and future perf PRs regressing against BENCH_*.json baselines)
// can consume the numbers without scraping tables.
type Report struct {
	Schema      string       `json:"schema"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one figure or table: a stable name, the paper section it
// reproduces, and its typed rows.
type Experiment struct {
	Name    string `json:"name"`
	Section string `json:"section"`
	Rows    any    `json:"rows"`
}

// Add appends one experiment.
func (r *Report) Add(name, section string, rows any) {
	r.Experiments = append(r.Experiments, Experiment{Name: name, Section: section, Rows: rows})
}

// NewReport returns an empty report with the current schema tag.
func NewReport() *Report { return &Report{Schema: ReportSchema} }

// WriteJSON encodes the report with two-space indentation. encoding/json
// marshals struct fields in declaration order and map keys sorted, so the
// output is deterministic for deterministic inputs.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
