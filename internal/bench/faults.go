package bench

import (
	"fmt"

	"fpint/internal/codegen"
	"fpint/internal/faultinject"
	"fpint/internal/uarch"
)

// FaultRow is one cell of the per-scheme fault-sensitivity sweep: a
// workload run under seeded transient-fault injection, compared against
// its fault-free run on the same machine configuration. SlowdownPct is the
// cycle cost of detection and recovery; the architectural output is
// checked to be unchanged, so faults never show up as wrong results.
type FaultRow struct {
	Workload       string  `json:"workload"`
	Scheme         string  `json:"scheme"`
	Config         string  `json:"config"`
	Faults         int64   `json:"faults"`
	RecoveryCycles int64   `json:"recoveryCycles"`
	CleanCycles    int64   `json:"cleanCycles"`
	FaultCycles    int64   `json:"faultCycles"`
	SlowdownPct    float64 `json:"slowdownPct"`
}

// FaultSensitivity measures every workload under the none/basic/advanced
// schemes on cfg with the given fault plan configuration, asserting on the
// way that each injected run still produces the reference output and a
// closed stall ledger. The same seed is used for every cell, so the sweep
// is deterministic end to end.
func (s *Suite) FaultSensitivity(ws []Workload, cfg uarch.Config, fc faultinject.Config) ([]FaultRow, error) {
	schemes := []codegen.Scheme{codegen.SchemeNone, codegen.SchemeBasic, codegen.SchemeAdvanced}
	var rows []FaultRow
	for i := range ws {
		w := &ws[i]
		fr, err := s.frontend(w)
		if err != nil {
			return nil, err
		}
		for _, scheme := range schemes {
			res, err := s.Compile(w, scheme)
			if err != nil {
				return nil, err
			}
			_, clean, err := uarch.Run(res.Prog, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, scheme, err)
			}
			plan := faultinject.NewPlan(fc)
			out, st, prof, err := uarch.RunInjected(res.Prog, cfg, plan)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: injected run: %w", w.Name, scheme, err)
			}
			if out.Ret != fr.ref.Ret || out.Output != fr.ref.Output {
				return nil, fmt.Errorf("%s/%s: injected run corrupted architectural output (got %d want %d)",
					w.Name, scheme, out.Ret, fr.ref.Ret)
			}
			if e := st.StallAccountingError(); e != 0 {
				return nil, fmt.Errorf("%s/%s: stall ledger open by %d cycles under injection", w.Name, scheme, e)
			}
			if got := prof.TotalAttributed(); got != st.Cycles {
				return nil, fmt.Errorf("%s/%s: cycle profile attributes %d of %d cycles under injection",
					w.Name, scheme, got, st.Cycles)
			}
			row := FaultRow{
				Workload:       w.Name,
				Scheme:         scheme.String(),
				Config:         cfg.Name,
				Faults:         st.FaultsInjected,
				RecoveryCycles: st.FaultRecoveryCycles,
				CleanCycles:    clean.Cycles,
				FaultCycles:    st.Cycles,
			}
			if clean.Cycles > 0 {
				row.SlowdownPct = 100 * (float64(st.Cycles)/float64(clean.Cycles) - 1)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
