package bench

import (
	"fmt"
	"sort"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/fperr"
	"fpint/internal/uarch"
)

// sortedOracleNames returns the oracle report keys in deterministic order.
func sortedOracleNames(m map[string]*core.OracleReport) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// OracleGapRow is one row of the fpibench -oracle-gap report: how much
// §6.1 profit the greedy (advanced) partitioner left on the table versus
// the exact branch-and-bound optimum for one workload, and what the
// difference is worth in measured cycles on one Table 1 machine.
type OracleGapRow struct {
	Workload      string  `json:"workload"`
	Config        string  `json:"config"`
	GreedyProfit  float64 `json:"greedy_profit"`
	OptimalProfit float64 `json:"optimal_profit"`
	GapPct        float64 `json:"gap_pct"` // optimal over greedy, percent
	Degraded      int     `json:"degraded_components"`
	AdvCycles     int64   `json:"adv_cycles"`
	OptCycles     int64   `json:"opt_cycles"`
	CycleDeltaPct float64 `json:"cycle_delta_pct"` // positive = optimal faster
}

// OracleGaps measures the greedy-vs-optimal partition gap for every
// workload on cfg: both schemes are compiled, timed on the detailed model,
// and functionally cross-checked against the IR interpreter; the profit
// totals come from the oracle reports the optimal compile records.
func (s *Suite) OracleGaps(ws []Workload, cfg uarch.Config) ([]OracleGapRow, error) {
	var rows []OracleGapRow
	for i := range ws {
		w := &ws[i]
		adv, err := s.Measure(w, codegen.SchemeAdvanced, cfg)
		if err != nil {
			return nil, err
		}
		opt, err := s.Measure(w, codegen.SchemeOptimal, cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.Compile(w, codegen.SchemeOptimal)
		if err != nil {
			return nil, err
		}
		row := OracleGapRow{
			Workload:  w.Name,
			Config:    cfg.Name,
			AdvCycles: adv.Cycles,
			OptCycles: opt.Cycles,
		}
		for _, name := range sortedOracleNames(res.Oracle) {
			rep := res.Oracle[name]
			row.GreedyProfit += rep.GreedyProfit
			row.OptimalProfit += rep.OptimalProfit
			row.Degraded += rep.Degraded
		}
		if row.GreedyProfit > 0 {
			row.GapPct = 100 * (row.OptimalProfit - row.GreedyProfit) / row.GreedyProfit
		}
		if row.AdvCycles > 0 {
			row.CycleDeltaPct = 100 * (float64(row.AdvCycles) - float64(row.OptCycles)) / float64(row.AdvCycles)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// OracleGapTable renders the rows the way fpibench -oracle-gap prints
// them; the golden test pins this exact text.
func OracleGapTable(rows []OracleGapRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload, r.Config,
			fmt.Sprintf("%.0f", r.GreedyProfit),
			fmt.Sprintf("%.0f", r.OptimalProfit),
			fmt.Sprintf("%+5.2f%%", r.GapPct),
			fmt.Sprintf("%d", r.Degraded),
			fmt.Sprintf("%d", r.AdvCycles),
			fmt.Sprintf("%d", r.OptCycles),
			fmt.Sprintf("%+5.2f%%", r.CycleDeltaPct)})
	}
	return FormatTable([]string{"Benchmark", "Config", "Greedy profit", "Optimal profit",
		"Gap", "Degraded", "Adv cycles", "Opt cycles", "Cycle delta"}, out)
}

// GateOracleGaps is the CI gate over an -oracle-gap run: the exact search
// must complete (no degraded components — the default limits are sized for
// every workload) and the optimal profit must dominate the greedy profit
// on every row. A violation is a regression-class error (exit code 5).
func GateOracleGaps(rows []OracleGapRow) error {
	for _, r := range rows {
		if r.Degraded > 0 {
			return fperr.New(fperr.ClassRegression,
				"%s/%s: oracle degraded on %d component(s); the search no longer completes within the default limits",
				r.Workload, r.Config, r.Degraded)
		}
		if r.OptimalProfit+1e-6 < r.GreedyProfit {
			return fperr.New(fperr.ClassRegression,
				"%s/%s: optimal profit %g below greedy %g — dominance invariant broken",
				r.Workload, r.Config, r.OptimalProfit, r.GreedyProfit)
		}
	}
	return nil
}
