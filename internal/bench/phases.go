package bench

import (
	"fmt"

	"fpint/internal/codegen"
	"fpint/internal/obs/timeline"
	"fpint/internal/uarch"
)

// PhaseRow is one phase of one workload's timeline under the advanced
// scheme: where the phase sits, its throughput, the FPa occupancy signal,
// and what dominated its stalls.
type PhaseRow struct {
	Workload string
	Config   string
	Phase    int
	Windows  string // "first-last" window range
	Cycles   int64
	IPC      float64
	// FPaOcc is FPa instructions issued per cycle in the phase — the
	// sensor ROADMAP item 3's dynamic scheme selection reads.
	FPaOcc            float64
	OffloadRatio      float64
	DominantStall     string
	DominantStallFrac float64
	// Estimated marks fast-mode rows: the phase table then describes the
	// sampled detailed windows, not the whole run.
	Estimated bool
}

// Phases runs each workload under the advanced scheme with the flight
// recorder armed and returns the segmented phase table (window width in
// cycles; the shared segmenter defaults keep the tables comparable with
// fpisim -timeline and fpistat phasediff). In fast mode (SetFast) the
// rows are flagged Estimated.
func (s *Suite) Phases(ws []Workload, cfg uarch.Config, width int64) ([]PhaseRow, error) {
	var rows []PhaseRow
	for i := range ws {
		w := &ws[i]
		res, err := s.Compile(w, codegen.SchemeAdvanced)
		if err != nil {
			return nil, err
		}
		m := uarch.NewMachine(cfg)
		m.SetTimelineWidth(width)
		var tl *timeline.Timeline
		if s.fast != nil {
			_, sst, err := m.RunSampled(res.Prog, *s.fast)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", w.Name, err)
			}
			tl = m.Timeline(w.Name)
			if tl != nil && !sst.Exact {
				tl.Estimated = true
				tl.SampledFraction = sst.SampledFraction
			}
		} else {
			if _, _, err := m.Run(res.Prog); err != nil {
				return nil, fmt.Errorf("%s: %w", w.Name, err)
			}
			tl = m.Timeline(w.Name)
		}
		if tl == nil {
			return nil, fmt.Errorf("%s: no timeline recorded", w.Name)
		}
		for _, p := range tl.Segment(timeline.DefaultSegConfig()) {
			rows = append(rows, PhaseRow{
				Workload:          w.Name,
				Config:            cfg.Name,
				Phase:             p.ID,
				Windows:           fmt.Sprintf("%d-%d", p.FirstWindow, p.LastWindow),
				Cycles:            p.Cycles,
				IPC:               p.IPC,
				FPaOcc:            p.FPaOcc,
				OffloadRatio:      p.OffloadRatio,
				DominantStall:     p.DominantStall,
				DominantStallFrac: p.DominantStallFrac,
				Estimated:         tl.Estimated,
			})
		}
	}
	return rows, nil
}
