// Package bench provides the synthetic workloads standing in for the
// paper's SPECint95 / SPEC FP benchmarks, and the experiment harness that
// regenerates every table and figure of the evaluation section.
//
// Each workload is written in the mini-C source language and is modeled on
// the hot kernels of its namesake (see DESIGN.md §2 for the substitution
// argument): what matters for the partitioning algorithms is the shape of
// the register dependence graph — the split between the LdSt slice and the
// branch/store-value slices, call density, and loop structure.
package bench

// Workload is one benchmark program.
type Workload struct {
	Name  string
	Class string // "int" or "fp"
	Input string // description for Table 2
	Src   string
}

// Workloads returns the full suite: the seven SPECint95 stand-ins followed
// by the floating-point programs used in §7.5.
func Workloads() []Workload {
	return []Workload{
		{Name: "compress", Class: "int", Input: "synthetic 12000-symbol stream (LCG source)", Src: srcCompress},
		{Name: "gcc", Class: "int", Input: "synthetic 480-insn function, 40 passes", Src: srcGcc},
		{Name: "go", Class: "int", Input: "19x19 board, 60 evaluation sweeps", Src: srcGo},
		{Name: "ijpeg", Class: "int", Input: "96x96 synthetic image, forward DCT+quant", Src: srcIjpeg},
		{Name: "li", Class: "int", Input: "2200-node expression heap, 60 eval rounds", Src: srcLi},
		{Name: "m88ksim", Class: "int", Input: "synthetic 88k program, 30000 simulated insns", Src: srcM88ksim},
		{Name: "perl", Class: "int", Input: "dictionary of 600 packed words, 120 lookups/word", Src: srcPerl},

		{Name: "ear", Class: "fp", Input: "8-channel filterbank, 6000 samples", Src: srcEar},
		{Name: "swim", Class: "fp", Input: "64x64 shallow-water stencil, 40 steps", Src: srcSwim},
		{Name: "tomcatv", Class: "fp", Input: "64x64 mesh smoothing, 40 iterations", Src: srcTomcatv},
		{Name: "alvinn", Class: "fp", Input: "32-16-8 network, 300 forward passes", Src: srcAlvinn},
		{Name: "hydro2d", Class: "fp", Input: "48x48 grid, 50 hydro steps", Src: srcHydro2d},
	}
}

// Lookup returns the workload with the given name, or nil.
func Lookup(name string) *Workload {
	for _, w := range Workloads() {
		if w.Name == name {
			w := w
			return &w
		}
	}
	return nil
}

// srcCompress models SPECint95 129.compress: an LZW-flavored coder over a
// synthetic symbol stream. It includes a memory-free pseudo-random
// generator, reproducing the §6.6 observation that the greedy schemes move
// such functions to FPa wholesale.
const srcCompress = `
int seed;
int inbuf[12000];
int outcodes[12000];
int htab[4096];
int codetab[4096];
int nextcode;
int outcount;

int rnd() {
	seed = seed * 1103515245 + 12345;
	int a = (seed >> 16) & 32767;
	int b = (a >> 7) ^ (a & 127);
	return b & 255;
}

void gen_input() {
	int i = 0;
	while (i < 12000) {
		int c = rnd();
		int run = (c & 7) + 1;
		for (int k = 0; k < run && i < 12000; k++) {
			inbuf[i] = c & 63;
			i++;
		}
	}
}

int hashf(int prefix, int c) {
	return ((prefix << 5) ^ (c << 1) ^ (prefix >> 7)) & 4095;
}

void compressit() {
	for (int i = 0; i < 4096; i++) { htab[i] = -1; codetab[i] = 0; }
	nextcode = 64;
	outcount = 0;
	int prefix = inbuf[0];
	for (int i = 1; i < 12000; i++) {
		int c = inbuf[i];
		int h = hashf(prefix, c);
		int probes = 0;
		int found = -1;
		while (htab[h] >= 0 && probes < 8) {
			if (htab[h] == ((prefix << 8) | c)) { found = codetab[h]; break; }
			h = (h + 1) & 4095;
			probes++;
		}
		if (found >= 0) {
			prefix = found;
		} else {
			outcodes[outcount] = prefix;
			outcount++;
			if (htab[h] < 0 && nextcode < 4000) {
				htab[h] = (prefix << 8) | c;
				codetab[h] = nextcode;
				nextcode++;
			}
			prefix = c;
		}
	}
	outcodes[outcount] = prefix;
	outcount++;
}

int main() {
	seed = 987654321;
	gen_input();
	compressit();
	int check = 0;
	for (int i = 0; i < outcount; i++) check = (check * 31 + outcodes[i]) & 16777215;
	return check ^ outcount;
}
`

// srcGcc models SPECint95 126.gcc: dataflow-ish bookkeeping passes over a
// pseudo-RTL instruction array, including the paper's own
// invalidate_for_call example (Figure 3) verbatim in spirit.
const srcGcc = `
int regs_invalidated_by_call = 12297829382473034410;
int reg_tick[66];
int insn_op[480];
int insn_dst[480];
int insn_src[480];
int reg_val[66];
int reg_known[66];
int deleted;
int folded;
int threaded;

void delete_equiv_reg(int regno) { deleted += regno; }

void invalidate_for_call() {
	for (int regno = 0; regno < 66; regno++) {
		if (regs_invalidated_by_call & (1 << regno)) {
			delete_equiv_reg(regno);
			if (reg_tick[regno] >= 0) reg_tick[regno]++;
		}
	}
}

void gen_function(int pass) {
	int s = pass * 2654435761 + 12345;
	for (int i = 0; i < 480; i++) {
		s = s * 1103515245 + 12345;
		insn_op[i] = (s >> 16) & 7;
		insn_dst[i] = (s >> 20) & 63;
		insn_src[i] = (s >> 26) & 63;
	}
}

void const_prop() {
	for (int i = 0; i < 66; i++) { reg_val[i] = 0; reg_known[i] = 0; }
	for (int i = 0; i < 480; i++) {
		int op = insn_op[i];
		int d = insn_dst[i];
		int srcr = insn_src[i];
		if (op == 0) {
			reg_val[d] = srcr;
			reg_known[d] = 1;
		} else if (op == 1) {
			if (reg_known[srcr]) {
				reg_val[d] = reg_val[srcr] + 1;
				reg_known[d] = 1;
				folded++;
			} else reg_known[d] = 0;
		} else if (op == 2) {
			if (reg_known[d] && reg_known[srcr]) {
				reg_val[d] = reg_val[d] ^ reg_val[srcr];
				folded++;
			} else reg_known[d] = 0;
		} else if (op == 3) {
			invalidate_for_call();
			reg_known[d] = 0;
		} else {
			if (reg_tick[d & 63] > 4) threaded++;
			reg_known[d] = 0;
		}
	}
}

int main() {
	for (int i = 0; i < 66; i++) reg_tick[i] = i - 3;
	for (int pass = 0; pass < 40; pass++) {
		gen_function(pass);
		const_prop();
	}
	int s = deleted + folded * 7 + threaded * 13;
	for (int i = 0; i < 66; i++) s += reg_tick[i];
	return s & 16777215;
}
`

// srcGo models SPECint95 099.go: branchy board evaluation — neighbor
// scans, liberty counting, and influence spreading on a 19x19 board.
const srcGo = `
int board[441];
int libs[441];
int infl[441];
int seed;

int rnd() {
	seed = seed * 69069 + 1;
	return (seed >> 16) & 32767;
}

void setup() {
	for (int i = 0; i < 441; i++) { board[i] = 0; infl[i] = 0; }
	for (int p = 0; p < 441; p++) {
		int r = rnd();
		if ((r & 7) < 2) board[p] = 1 + (r & 1);
	}
}

void count_liberties() {
	for (int p = 0; p < 441; p++) {
		if (board[p] == 0) { libs[p] = 0; continue; }
		int row = p / 21;
		int col = p % 21;
		int n = 0;
		if (row > 0 && board[p-21] == 0) n++;
		if (row < 20 && board[p+21] == 0) n++;
		if (col > 0 && board[p-1] == 0) n++;
		if (col < 20 && board[p+1] == 0) n++;
		libs[p] = n;
	}
}

void spread_influence() {
	for (int p = 21; p < 420; p++) {
		int v = 0;
		if (board[p] == 1) v = 64;
		else if (board[p] == 2) v = -64;
		int acc = infl[p] * 3 + v * 4;
		acc += infl[p-1] + infl[p+1] + infl[p-21] + infl[p+21];
		acc = acc >> 3;
		if (acc > 127) acc = 127;
		if (acc < -127) acc = -127;
		infl[p] = acc;
	}
}

int score() {
	int s = 0;
	for (int p = 0; p < 441; p++) {
		if (board[p] == 1 && libs[p] <= 1) s -= 5;
		else if (board[p] == 2 && libs[p] <= 1) s += 5;
		if (infl[p] > 16) s += 1;
		else if (infl[p] < -16) s -= 1;
	}
	return s;
}

int main() {
	seed = 424242;
	int total = 0;
	for (int sweep = 0; sweep < 60; sweep++) {
		setup();
		count_liberties();
		for (int k = 0; k < 6; k++) spread_influence();
		total += score();
		total = total & 16777215;
	}
	return total;
}
`

// srcIjpeg models SPECint95 132.ijpeg: an add/shift integer forward DCT
// butterfly plus quantization over a synthetic image. Store-value slices
// dominate, so the offload potential is the largest in the suite.
const srcIjpeg = `
int image[9216];
int block[64];
int coef[64];
int quant[9216];
int seed;

void gen_image() {
	seed = 555;
	for (int i = 0; i < 9216; i++) {
		seed = seed * 1103515245 + 12345;
		int x = i % 96;
		int y = i / 96;
		image[i] = ((x*3 + y*5) & 127) + ((seed >> 20) & 63);
	}
}

void fdct_rows() {
	for (int r = 0; r < 8; r++) {
		int base = r * 8;
		int a0 = block[base+0]; int a1 = block[base+1];
		int a2 = block[base+2]; int a3 = block[base+3];
		int a4 = block[base+4]; int a5 = block[base+5];
		int a6 = block[base+6]; int a7 = block[base+7];
		int s07 = a0 + a7; int d07 = a0 - a7;
		int s16 = a1 + a6; int d16 = a1 - a6;
		int s25 = a2 + a5; int d25 = a2 - a5;
		int s34 = a3 + a4; int d34 = a3 - a4;
		int t0 = s07 + s34; int t3 = s07 - s34;
		int t1 = s16 + s25; int t2 = s16 - s25;
		block[base+0] = t0 + t1;
		block[base+4] = t0 - t1;
		block[base+2] = t3 + (t2 >> 1);
		block[base+6] = (t3 >> 1) - t2;
		block[base+1] = d07 + (d16 >> 1) + (d25 >> 2);
		block[base+3] = d16 - (d34 >> 1) + (d07 >> 2);
		block[base+5] = d25 + (d07 >> 1) - (d16 >> 2);
		block[base+7] = d34 - (d25 >> 1) + (d16 >> 3);
	}
}

void fdct_cols() {
	for (int c = 0; c < 8; c++) {
		int a0 = block[c]; int a1 = block[c+8];
		int a2 = block[c+16]; int a3 = block[c+24];
		int a4 = block[c+32]; int a5 = block[c+40];
		int a6 = block[c+48]; int a7 = block[c+56];
		int s07 = a0 + a7; int d07 = a0 - a7;
		int s16 = a1 + a6; int d16 = a1 - a6;
		int s25 = a2 + a5; int d25 = a2 - a5;
		int s34 = a3 + a4; int d34 = a3 - a4;
		int t0 = s07 + s34; int t3 = s07 - s34;
		int t1 = s16 + s25; int t2 = s16 - s25;
		coef[c] = (t0 + t1) >> 3;
		coef[c+32] = (t0 - t1) >> 3;
		coef[c+16] = (t3 + (t2 >> 1)) >> 3;
		coef[c+48] = ((t3 >> 1) - t2) >> 3;
		coef[c+8]  = (d07 + (d16 >> 1)) >> 3;
		coef[c+24] = (d16 - (d34 >> 1)) >> 3;
		coef[c+40] = (d25 + (d07 >> 2)) >> 3;
		coef[c+56] = (d34 - (d25 >> 2)) >> 3;
	}
}

int main() {
	gen_image();
	int check = 0;
	for (int by = 0; by < 12; by++) {
		for (int bx = 0; bx < 12; bx++) {
			for (int y = 0; y < 8; y++)
				for (int x = 0; x < 8; x++)
					block[y*8+x] = image[(by*8+y)*96 + bx*8 + x] - 128;
			fdct_rows();
			fdct_cols();
			for (int i = 0; i < 64; i++) {
				int q = coef[i];
				int scale = 1 + (i >> 3);
				if (q < 0) q = -((-q) >> scale); else q = q >> scale;
				quant[(by*12+bx)*64 + i] = q;
				check = (check + q) & 16777215;
			}
		}
	}
	return check;
}
`

// srcLi models SPECint95 130.li: a small lisp-style evaluator over cons cells
// with many small functions and a high call density — which is exactly why
// the advanced scheme gains little over basic on li (§7.2).
const srcLi = `
int car_[2200];
int cdr_[2200];
int tag_[2200];
int val_[2200];
int heap_next;
int seed;

int rnd() { seed = seed * 69069 + 7; return (seed >> 16) & 32767; }

int cons(int a, int d) {
	int c = heap_next;
	heap_next++;
	car_[c] = a;
	cdr_[c] = d;
	tag_[c] = 0;
	return c;
}

int atom(int v) {
	int c = heap_next;
	heap_next++;
	tag_[c] = 1;
	val_[c] = v;
	return c;
}

int is_atom(int c) { return tag_[c] == 1; }
int value_of(int c) { return val_[c]; }
int head(int c) { return car_[c]; }
int tail(int c) { return cdr_[c]; }

int build(int depth) {
	if (depth <= 0) return atom(rnd() & 1023);
	int op = rnd() & 3;
	int l = build(depth - 1);
	int r = build(depth - 2);
	return cons(op + 1024, cons(l, cons(r, -1)));
}

int evals;
int atom_hits;

int eval(int e) {
	evals++;
	if (is_atom(e)) { atom_hits++; return value_of(e); }
	int op = head(e);
	int args = tail(e);
	int a = eval(head(args));
	int b = eval(head(tail(args)));
	if (op == 1024) return (a + b) & 1048575;
	if (op == 1025) return (a - b) & 1048575;
	if (op == 1026) return (a ^ b);
	return (a > b) ? a : b;
}

int main() {
	seed = 31337;
	int total = 0;
	for (int round = 0; round < 60; round++) {
		heap_next = 0;
		int e = build(7);
		total = (total + eval(e)) & 16777215;
	}
	return total + heap_next + (evals & 4095) + (atom_hits & 511);
}
`

// srcM88ksim models SPECint95 124.m88ksim: an instruction-set simulator
// main loop — fetch, field decode, dispatch, architectural state update.
// Decode (shift/mask/compare chains) offloads well, but the simulated
// register file keeps the loads/stores in INT, producing the paper's
// load-imbalance behavior.
const srcM88ksim = `
int progmem[4096];
int regs[32];
int simpc;
int icount;
int taken_branches;
int seed;

void load_program() {
	seed = 777;
	for (int i = 0; i < 4096; i++) {
		seed = seed * 1103515245 + 12345;
		progmem[i] = seed & 1073741823;
	}
}

int main() {
	load_program();
	for (int i = 0; i < 32; i++) regs[i] = i * 17;
	simpc = 0;
	icount = 0;
	taken_branches = 0;
	while (icount < 30000) {
		int inst = progmem[simpc & 4095];
		int opc = (inst >> 26) & 15;
		int rd = (inst >> 21) & 31;
		int rs1 = (inst >> 16) & 31;
		int rs2 = (inst >> 11) & 31;
		int imm = inst & 2047;
		int nextpc = simpc + 1;
		if (opc < 4) {
			regs[rd] = regs[rs1] + regs[rs2];
		} else if (opc < 6) {
			regs[rd] = regs[rs1] ^ (regs[rs2] >> 1);
		} else if (opc < 8) {
			regs[rd] = regs[rs1] + imm;
		} else if (opc < 9) {
			regs[rd] = (regs[rs1] << 2) | (imm & 3);
		} else if (opc < 11) {
			if (regs[rs1] > regs[rs2]) { nextpc = simpc + (imm & 63) - 32; taken_branches++; }
		} else if (opc < 12) {
			if ((regs[rs1] & 1) == 0) { nextpc = simpc + 2; taken_branches++; }
		} else if (opc < 14) {
			regs[rd] = regs[rs1] & regs[rs2];
		} else {
			regs[rd] = imm << 5;
		}
		regs[0] = 0;
		if (nextpc < 0) nextpc = 0;
		simpc = nextpc;
		icount++;
	}
	int s = taken_branches;
	for (int i = 0; i < 32; i++) s = (s * 31 + regs[i]) & 16777215;
	return s;
}
`

// srcPerl models SPECint95 134.perl (scrabbl.pl): hashing packed words into
// a dictionary, probing, and branchy scoring.
const srcPerl = `
int dict[2048];
int dval[2048];
int words[600];
int scores[600];
int seed;

int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

int hashw(int w) {
	int h = w;
	h = h ^ (h >> 7);
	h = (h * 31 + 17) & 1048575;
	h = h ^ (h >> 11);
	return h & 2047;
}

int collisions;
int nletters;
int bonuses;

int lookup_insert(int w) {
	int h = hashw(w);
	int probes = 0;
	while (probes < 16) {
		if (dict[h] == 0) { dict[h] = w; dval[h] = (w & 255) + probes; return dval[h]; }
		if (dict[h] == w) return dval[h];
		collisions++;
		h = (h + probes + 1) & 2047;
		probes++;
	}
	return 0;
}

int letter_score(int c) {
	int v = c & 31;
	if (v < 8) return 1;
	if (v < 14) return 2;
	if (v < 19) return 3;
	if (v < 24) return 5;
	return 8;
}

int main() {
	seed = 13579;
	for (int i = 0; i < 600; i++) {
		int w = 0;
		for (int k = 0; k < 5; k++) w = (w << 6) | (rnd() & 31);
		words[i] = w + 1;
	}
	int total = 0;
	for (int rep = 0; rep < 120; rep++) {
		for (int i = 0; i < 600; i++) {
			int w = words[i];
			int base = lookup_insert(w);
			int sc = base;
			int t = w;
			while (t != 0) {
				sc += letter_score(t);
				nletters++;
				t = t >> 6;
			}
			if ((sc & 3) == 0) { sc += 7; bonuses++; }
			scores[i] = sc;
			total = (total + sc) & 16777215;
		}
	}
	int s = total + collisions + (nletters & 65535) + bonuses;
	for (int i = 0; i < 600; i += 37) s ^= scores[i];
	return s & 16777215;
}
`

// srcEar models SPEC92 ear: a floating-point filterbank whose peak-picking
// and adaptation control is integer branch/store-value work — the one FP
// program where the paper measured a large (18%) offload and speedup.
const srcEar = `
float state1[8];
float state2[8];
float coefa[8];
float coefb[8];
float samples[6000];
int peaks[8];
int peakpos[512];
int npeaks;
int seed;

int rnd() { seed = seed * 69069 + 5; return (seed >> 16) & 32767; }

void setup() {
	for (int c = 0; c < 8; c++) {
		state1[c] = 0.0;
		state2[c] = 0.0;
		coefa[c] = 0.9 - (float) c * 0.05;
		coefb[c] = 0.1 + (float) c * 0.02;
		peaks[c] = 0;
	}
	for (int i = 0; i < 6000; i++) {
		int r = (rnd() & 255) - 128;
		samples[i] = (float) r * 0.0078;
	}
	npeaks = 0;
}

int main() {
	seed = 2468;
	setup();
	int hist = 0;
	for (int i = 0; i < 6000; i++) {
		float x = samples[i];
		for (int c = 0; c < 8; c++) {
			float y = coefa[c] * state1[c] - coefb[c] * state2[c] + x;
			state2[c] = state1[c];
			state1[c] = y;
			int level = 0;
			if (y > 0.5) level = 2;
			else if (y > 0.1) level = 1;
			else if (y < -0.5) level = -2;
			else if (y < -0.1) level = -1;
			hist = ((hist << 1) ^ level) & 65535;
			if (level == 2 || level == -2) {
				peaks[c]++;
				if (npeaks < 512 && (peaks[c] & 7) == 0) {
					peakpos[npeaks] = (i << 3) | c;
					npeaks++;
				}
			}
		}
	}
	int s = hist;
	for (int c = 0; c < 8; c++) s = (s * 31 + peaks[c]) & 16777215;
	for (int k = 0; k < npeaks; k++) s ^= peakpos[k];
	return s & 16777215;
}
`

// srcSwim models SPEC95 102.swim: a pure floating-point stencil with almost
// no offloadable integer work — the schemes should be ~neutral.
const srcSwim = `
float u[4096];
float v[4096];
float unew[4096];
int main() {
	for (int i = 0; i < 4096; i++) {
		u[i] = (float) ((i * 7) % 100) * 0.01;
		v[i] = (float) ((i * 13) % 100) * 0.01;
	}
	for (int step = 0; step < 40; step++) {
		for (int y = 1; y < 63; y++) {
			for (int x = 1; x < 63; x++) {
				int p = y * 64 + x;
				unew[p] = (u[p-1] + u[p+1] + u[p-64] + u[p+64]) * 0.25
					+ v[p] * 0.0625;
			}
		}
		for (int y = 1; y < 63; y++)
			for (int x = 1; x < 63; x++) {
				int p = y * 64 + x;
				u[p] = unew[p];
			}
	}
	float s = 0.0;
	for (int i = 0; i < 4096; i++) s += u[i];
	return (int) (s * 1000.0) & 16777215;
}
`

// srcTomcatv models SPEC95 101.tomcatv: float mesh relaxation with residual
// tracking; again nearly all FP with addressing-only integer work.
const srcTomcatv = `
float xm[4096];
float ym[4096];
float rx[4096];
float ry[4096];
int main() {
	for (int i = 0; i < 4096; i++) {
		xm[i] = (float) (i % 64) * 0.1;
		ym[i] = (float) (i / 64) * 0.1;
	}
	float resid = 0.0;
	for (int iter = 0; iter < 40; iter++) {
		resid = 0.0;
		for (int y = 1; y < 63; y++) {
			for (int x = 1; x < 63; x++) {
				int p = y * 64 + x;
				float dx = (xm[p-1] + xm[p+1] + xm[p-64] + xm[p+64]) * 0.25 - xm[p];
				float dy = (ym[p-1] + ym[p+1] + ym[p-64] + ym[p+64]) * 0.25 - ym[p];
				rx[p] = dx;
				ry[p] = dy;
				if (dx > 0.0) resid += dx; else resid -= dx;
				if (dy > 0.0) resid += dy; else resid -= dy;
			}
		}
		for (int y = 1; y < 63; y++)
			for (int x = 1; x < 63; x++) {
				int p = y * 64 + x;
				xm[p] = xm[p] + rx[p] * 0.9;
				ym[p] = ym[p] + ry[p] * 0.9;
			}
	}
	return (int) (resid * 100.0) & 16777215;
}
`

// srcAlvinn models SPEC92 alvinn: neural-network forward passes — float
// dot products with a small integer argmax/bookkeeping tail. Mostly FP
// work; the integer offload opportunity is minor, as §7.5 expects.
const srcAlvinn = `
float w1[512];
float w2[128];
float input[32];
float hidden[16];
float output[8];
int votes[8];
int seed;

int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

void setup() {
	for (int i = 0; i < 512; i++) w1[i] = (float)((i * 13) % 64) * 0.01 - 0.3;
	for (int i = 0; i < 128; i++) w2[i] = (float)((i * 29) % 64) * 0.01 - 0.3;
	for (int i = 0; i < 8; i++) votes[i] = 0;
}

void forward() {
	for (int h = 0; h < 16; h++) {
		float s = 0.0;
		for (int i = 0; i < 32; i++) s += w1[h*32+i] * input[i];
		if (s < 0.0) s = s * 0.25; // leaky activation
		hidden[h] = s;
	}
	for (int o = 0; o < 8; o++) {
		float s = 0.0;
		for (int h = 0; h < 16; h++) s += w2[o*16+h] * hidden[h];
		output[o] = s;
	}
}

int argmax() {
	int best = 0;
	for (int o = 1; o < 8; o++)
		if (output[o] > output[best]) best = o;
	return best;
}

int main() {
	seed = 4242;
	setup();
	for (int pass = 0; pass < 300; pass++) {
		for (int i = 0; i < 32; i++)
			input[i] = (float)((rnd() & 255) - 128) * 0.0078;
		forward();
		votes[argmax()]++;
	}
	int s = 0;
	for (int o = 0; o < 8; o++) s = (s * 31 + votes[o]) & 16777215;
	return s;
}
`

// srcHydro2d models SPEC95 104.hydro2d: a float grid relaxation with flux
// limiting — almost purely FP, so the schemes should be neutral.
const srcHydro2d = `
float rho[2304];
float mom[2304];
float fluxr[2304];
float fluxm[2304];
int main() {
	for (int i = 0; i < 2304; i++) {
		rho[i] = 1.0 + (float)((i * 11) % 37) * 0.01;
		mom[i] = (float)((i * 7) % 23) * 0.05 - 0.5;
	}
	for (int step = 0; step < 50; step++) {
		for (int y = 1; y < 47; y++) {
			for (int x = 1; x < 47; x++) {
				int p = y * 48 + x;
				float dr = rho[p+1] - rho[p-1];
				float dm = mom[p+1] - mom[p-1];
				if (dr > 0.2) dr = 0.2;
				if (dr < -0.2) dr = -0.2;
				fluxr[p] = mom[p] - dr * 0.125;
				fluxm[p] = mom[p] * mom[p] / rho[p] + dm * 0.0625;
			}
		}
		for (int y = 1; y < 47; y++) {
			for (int x = 1; x < 47; x++) {
				int p = y * 48 + x;
				rho[p] = rho[p] - (fluxr[p+1] - fluxr[p-1]) * 0.01;
				mom[p] = mom[p] - (fluxm[p+1] - fluxm[p-1]) * 0.01;
			}
		}
	}
	float s = 0.0;
	for (int i = 0; i < 2304; i++) s += rho[i];
	return (int)(s * 100.0) & 16777215;
}
`
