package bench

import (
	"fmt"

	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

// AnalysisDeltaRow quantifies what the static-analysis address oracle buys
// one workload under one scheme: the static offload share (profile-weighted
// FPa fraction of the partitionable weight) with the analyses off and on,
// the number of unpinned address nodes, and cycle counts on both Table 1
// machine configurations.
type AnalysisDeltaRow struct {
	Workload     string
	Scheme       codegen.Scheme
	StaticOffPct float64 // analysis off
	StaticOnPct  float64 // analysis on
	Unpins       int     // address nodes the oracle unpinned
	Cycles4Off   int64   // 4-way, analysis off
	Cycles4On    int64
	Cycles8Off   int64 // 8-way, analysis off
	Cycles8On    int64
}

// CompileAnalysis builds the workload under the scheme with explicit
// control of the static-analysis address oracle.
func (s *Suite) CompileAnalysis(w *Workload, scheme codegen.Scheme, analysis bool) (*codegen.Result, error) {
	fr, err := s.frontend(w)
	if err != nil {
		return nil, err
	}
	res, err := codegen.Compile(fr.mod, codegen.Options{Scheme: scheme, Profile: fr.prof, Analysis: analysis})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", w.Name, scheme, err)
	}
	return res, nil
}

// staticOffload is the profile-weighted FPa share of the partitionable
// weight, summed over functions, as a percentage.
func staticOffload(res *codegen.Result) float64 {
	var fpa, total float64
	for _, p := range res.Partitions {
		if p == nil {
			continue
		}
		st := p.ComputeStats()
		fpa += st.FPaWeight
		total += st.TotalWeight
	}
	if total == 0 {
		return 0
	}
	return 100 * fpa / total
}

func countUnpins(res *codegen.Result) int {
	n := 0
	for _, p := range res.Partitions {
		if p == nil || p.Audit == nil {
			continue
		}
		n += len(p.Audit.Unpins)
	}
	return n
}

// AnalysisDelta measures the analysis-off vs analysis-on deltas for each
// workload under the scheme, cross-checking every run's functional result
// against the IR interpreter on both machine configurations.
func (s *Suite) AnalysisDelta(ws []Workload, scheme codegen.Scheme) ([]AnalysisDeltaRow, error) {
	cfg4, cfg8 := uarch.Config4Way(), uarch.Config8Way()
	var rows []AnalysisDeltaRow
	for i := range ws {
		w := &ws[i]
		fr, err := s.frontend(w)
		if err != nil {
			return nil, err
		}
		row := AnalysisDeltaRow{Workload: w.Name, Scheme: scheme}
		for _, analysis := range []bool{false, true} {
			res, err := s.CompileAnalysis(w, scheme, analysis)
			if err != nil {
				return nil, err
			}
			off := staticOffload(res)
			var c4, c8 int64
			for _, cfg := range []uarch.Config{cfg4, cfg8} {
				out, st, err := uarch.Run(res.Prog, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/analysis=%v: %w", w.Name, scheme, analysis, err)
				}
				if out.Ret != fr.ref.Ret || out.Output != fr.ref.Output {
					return nil, fmt.Errorf("%s/%s/analysis=%v/%s: functional mismatch: got %d want %d",
						w.Name, scheme, analysis, cfg.Name, out.Ret, fr.ref.Ret)
				}
				if cfg.Name == cfg4.Name {
					c4 = st.Cycles
				} else {
					c8 = st.Cycles
				}
			}
			if analysis {
				row.StaticOnPct = off
				row.Unpins = countUnpins(res)
				row.Cycles4On, row.Cycles8On = c4, c8
			} else {
				row.StaticOffPct = off
				row.Cycles4Off, row.Cycles8Off = c4, c8
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
