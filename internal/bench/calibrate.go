// Cost-model self-calibration (fpibench -calibrate).
//
// The §6.1 cost model prices INT→FPa transfers with two abstract
// constants: o_copy (a CP2FP copy's amortized cost, paper range [3,6])
// and o_dupl (a duplicated instruction's cost, paper range [1.5,3]). The
// calibrator closes the loop against this repo's own cycle-level
// simulator: for every candidate (o_copy, o_dupl) on a grid over the
// paper ranges it recompiles each workload under the advanced scheme,
// reads the predicted accepted profit from the partition audit, measures
// the real cycle delta versus conventional compilation on the detailed
// model, and fits cycles ≈ α·profit by least squares through the origin.
// The candidate whose predictions explain the measured deltas best (max
// R²) wins, per machine configuration.
//
// The result serializes as a fpint-calib/v1 JSON document, and
// Calibration.Params turns a fit back into core.CostParams whose
// Provenance string the partitioners record in every audit trail — so a
// partition built from fitted constants says where they came from.
package bench

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/uarch"
)

// CalibVersion identifies the calibration document schema.
const CalibVersion = "fpint-calib/v1"

// CalibPoint is one workload's (predicted profit, measured cycle delta)
// sample under the fitted constants.
type CalibPoint struct {
	Workload   string  `json:"workload"`
	Profit     float64 `json:"profit"`      // accepted audit profit, weight units
	CycleDelta int64   `json:"cycle_delta"` // base cycles − advanced cycles
}

// ConfigFit is the fitted cost model for one machine configuration.
type ConfigFit struct {
	Config          string       `json:"config"`
	OCopy           float64      `json:"o_copy"`
	ODupl           float64      `json:"o_dupl"`
	CyclesPerProfit float64      `json:"cycles_per_profit"` // the regression slope α
	R2              float64      `json:"r2"`
	InPaperRange    bool         `json:"in_paper_range"` // o_copy ∈ [3,6], o_dupl ∈ [1.5,3]
	Points          []CalibPoint `json:"points"`
}

// Calibration is the fpint-calib/v1 document: one fit per configuration.
type Calibration struct {
	Version string      `json:"version"`
	Configs []ConfigFit `json:"configs"`
}

// WriteJSON serializes the document, indented and newline-terminated.
func (c *Calibration) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// LoadCalibration parses a fpint-calib/v1 document.
func LoadCalibration(r io.Reader) (*Calibration, error) {
	var c Calibration
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, err
	}
	if c.Version != CalibVersion {
		return nil, fmt.Errorf("unsupported calibration version %q (want %s)", c.Version, CalibVersion)
	}
	return &c, nil
}

// Fit returns the fit for the named configuration, or nil.
func (c *Calibration) Fit(config string) *ConfigFit {
	for i := range c.Configs {
		if c.Configs[i].Config == config {
			return &c.Configs[i]
		}
	}
	return nil
}

// Params turns the named configuration's fit into cost parameters for the
// greedy schemes and the exact oracle. The Provenance string ends up in
// every partition audit trail built from these constants.
func (c *Calibration) Params(config string) (core.CostParams, bool) {
	f := c.Fit(config)
	if f == nil {
		return core.CostParams{}, false
	}
	return core.CostParams{
		OCopy: f.OCopy,
		ODupl: f.ODupl,
		Provenance: fmt.Sprintf("%s %s: o_copy=%.1f o_dupl=%.1f (r2=%.3f, %.2f cycles/profit)",
			CalibVersion, f.Config, f.OCopy, f.ODupl, f.R2, f.CyclesPerProfit),
	}, true
}

// calibCandidates is the search grid, confined to the paper's ranges.
func calibCandidates() []core.CostParams {
	var out []core.CostParams
	for oc := 3.0; oc <= 6.0+1e-9; oc += 0.5 {
		for od := 1.5; od <= 3.0+1e-9; od += 0.5 {
			out = append(out, core.CostParams{OCopy: oc, ODupl: od})
		}
	}
	return out
}

// Calibrate fits o_copy/o_dupl for every configuration over the given
// workloads. Every timing run is functionally cross-checked against the
// IR interpreter; distinct candidates that compile to the same binary
// share one timing run, so the grid costs far fewer simulations than its
// size suggests.
func (s *Suite) Calibrate(ws []Workload, cfgs []uarch.Config) (*Calibration, error) {
	type compiled struct {
		profit float64
		hash   [sha256.Size]byte
		res    *codegen.Result
	}
	// Compile every workload under every candidate once (configs share the
	// binaries; only the timing differs).
	cands := calibCandidates()
	byCand := make([][]compiled, len(cands))
	for ci, cand := range cands {
		for i := range ws {
			w := &ws[i]
			fr, err := s.frontend(w)
			if err != nil {
				return nil, err
			}
			res, err := codegen.Compile(fr.mod, codegen.Options{
				Scheme: codegen.SchemeAdvanced, Profile: fr.prof, Cost: cand,
			})
			if err != nil {
				return nil, fmt.Errorf("%s (o_copy=%g o_dupl=%g): %w", w.Name, cand.OCopy, cand.ODupl, err)
			}
			var profit float64
			for _, p := range res.Partitions {
				if p == nil || p.Audit == nil {
					continue
				}
				for _, d := range p.Audit.Components {
					if d.Accepted {
						profit += d.Profit
					}
				}
			}
			byCand[ci] = append(byCand[ci], compiled{
				profit: profit,
				hash:   sha256.Sum256([]byte(res.Prog.Disassemble())),
				res:    res,
			})
		}
	}

	calib := &Calibration{Version: CalibVersion}
	for _, cfg := range cfgs {
		// Baseline cycles per workload, and a binary-hash → cycles cache so
		// candidates that produce identical partitions time only once.
		base := make([]int64, len(ws))
		for i := range ws {
			m, err := s.Measure(&ws[i], codegen.SchemeNone, cfg)
			if err != nil {
				return nil, err
			}
			base[i] = m.Cycles
		}
		cycleCache := make(map[[sha256.Size]byte]int64)
		runCycles := func(w *Workload, c compiled) (int64, error) {
			if cyc, ok := cycleCache[c.hash]; ok {
				return cyc, nil
			}
			fr, err := s.frontend(w)
			if err != nil {
				return 0, err
			}
			out, st, err := uarch.Run(c.res.Prog, cfg)
			if err != nil {
				return 0, fmt.Errorf("%s/%s: %w", w.Name, cfg.Name, err)
			}
			if out.Ret != fr.ref.Ret || out.Output != fr.ref.Output {
				return 0, fmt.Errorf("%s/%s: calibration run diverged from the interpreter", w.Name, cfg.Name)
			}
			cycleCache[c.hash] = st.Cycles
			return st.Cycles, nil
		}

		best := -1
		var bestFit ConfigFit
		for ci, cand := range cands {
			points := make([]CalibPoint, len(ws))
			var sp2, spd, sd, sd2 float64
			for i := range ws {
				c := byCand[ci][i]
				cyc, err := runCycles(&ws[i], c)
				if err != nil {
					return nil, err
				}
				d := base[i] - cyc
				points[i] = CalibPoint{Workload: ws[i].Name, Profit: c.profit, CycleDelta: d}
				df := float64(d)
				sp2 += c.profit * c.profit
				spd += c.profit * df
				sd += df
				sd2 += df * df
			}
			if sp2 == 0 {
				continue // no accepted offload anywhere; nothing to regress
			}
			alpha := spd / sp2
			var sse float64
			for _, p := range points {
				r := float64(p.CycleDelta) - alpha*p.Profit
				sse += r * r
			}
			mean := sd / float64(len(points))
			sst := sd2 - float64(len(points))*mean*mean
			r2 := 0.0
			if sst > 0 {
				r2 = 1 - sse/sst
			}
			fit := ConfigFit{
				Config:          cfg.Name,
				OCopy:           cand.OCopy,
				ODupl:           cand.ODupl,
				CyclesPerProfit: alpha,
				R2:              r2,
				InPaperRange:    cand.OCopy >= 3 && cand.OCopy <= 6 && cand.ODupl >= 1.5 && cand.ODupl <= 3,
				Points:          points,
			}
			if best < 0 || better(fit, bestFit) {
				best, bestFit = ci, fit
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%s: no candidate produced an accepted offload; cannot calibrate", cfg.Name)
		}
		calib.Configs = append(calib.Configs, bestFit)
	}
	return calib, nil
}

// better orders candidate fits: higher R² wins; near-ties (the simulator
// often cannot distinguish neighbouring constants) break toward the
// paper's nominal (4, 2), then toward smaller constants, so the winner is
// deterministic and centered.
func better(a, b ConfigFit) bool {
	if math.Abs(a.R2-b.R2) > 1e-9 {
		return a.R2 > b.R2
	}
	da := math.Abs(a.OCopy-4) + math.Abs(a.ODupl-2)
	db := math.Abs(b.OCopy-4) + math.Abs(b.ODupl-2)
	if da != db {
		return da < db
	}
	if a.OCopy != b.OCopy {
		return a.OCopy < b.OCopy
	}
	return a.ODupl < b.ODupl
}
