package bench

import (
	"fmt"

	"fpint/internal/codegen"
	"fpint/internal/interp"
	"fpint/internal/obs/hostmetrics"
	"fpint/internal/obs/runstore"
	"fpint/internal/sim"
	"fpint/internal/uarch"
)

// Run-record production: the bridge between the measurement machinery in
// this package and the append-only store in internal/obs/runstore.
// MeasureSource is what `fpistat record` (and the CI record-and-gate stage)
// drives for every program; GuestFromMeasurement converts suite
// measurements so recorded bench workloads share the same record shape.

// MeasureSource compiles src under scheme (with or without the
// alias/value-range analyses) and runs it on cfg `repeat` times. It returns
// the guest block — identical across repeats by construction, which is
// verified — and a host block carrying one cost sample per repeat, the raw
// material for the gate's min/median noise estimators. The functional
// result is cross-checked against the IR interpreter on every repeat.
func MeasureSource(name, src string, scheme codegen.Scheme, useAnalysis bool, cfg uarch.Config, repeat int) (runstore.Guest, *runstore.Host, error) {
	return measureSource(name, src, scheme, useAnalysis, cfg, nil, repeat)
}

// MeasureSourceFast is MeasureSource under the sampled-timing fast mode:
// guest cycles and the stall ledger are extrapolated from periodic detailed
// windows (bounded-error estimates) while the functional result stays exact
// and interpreter-checked. Records built from it must be stamped
// runstore.TimingFast so the gate never compares them against detailed
// records.
func MeasureSourceFast(name, src string, scheme codegen.Scheme, useAnalysis bool, cfg uarch.Config, sc uarch.SampleConfig, repeat int) (runstore.Guest, *runstore.Host, error) {
	return measureSource(name, src, scheme, useAnalysis, cfg, &sc, repeat)
}

func measureSource(name, src string, scheme codegen.Scheme, useAnalysis bool, cfg uarch.Config, fast *uarch.SampleConfig, repeat int) (runstore.Guest, *runstore.Host, error) {
	if repeat < 1 {
		repeat = 1
	}
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		return runstore.Guest{}, nil, fmt.Errorf("%s: %w", name, err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		return runstore.Guest{}, nil, fmt.Errorf("%s: reference run: %w", name, err)
	}
	res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme, Profile: prof, Analysis: useAnalysis})
	if err != nil {
		return runstore.Guest{}, nil, fmt.Errorf("%s/%s: %w", name, scheme, err)
	}

	var guest runstore.Guest
	host := &runstore.Host{Env: hostmetrics.CurrentEnv()}
	for i := 0; i < repeat; i++ {
		var out *sim.Result
		var st uarch.Stats
		var runErr error
		sample := hostmetrics.Measure(func() {
			if fast != nil {
				var sst uarch.SampledStats
				out, sst, runErr = uarch.RunSampled(res.Prog, cfg, *fast)
				st = sst.Stats
			} else {
				out, st, runErr = uarch.Run(res.Prog, cfg)
			}
		})
		if runErr != nil {
			return runstore.Guest{}, nil, fmt.Errorf("%s/%s: %w", name, scheme, runErr)
		}
		if out.Ret != ref.Ret || out.Output != ref.Output {
			return runstore.Guest{}, nil, fmt.Errorf("%s/%s: functional mismatch: got %d want %d", name, scheme, out.Ret, ref.Ret)
		}
		g := guestFromRun(out, st)
		if i == 0 {
			guest = g
		} else if guest.Cycles != g.Cycles || guest.DynInstrs != g.DynInstrs || guest.IssueActive != g.IssueActive {
			// The simulator is deterministic; two repeats that disagree
			// mean hidden state leaked between runs.
			return runstore.Guest{}, nil, fmt.Errorf("%s/%s: nondeterministic run: repeat %d gave %d cycles, first gave %d",
				name, scheme, i+1, g.Cycles, guest.Cycles)
		}
		host.Samples = append(host.Samples, sample)
	}
	return guest, host, nil
}

// guestFromRun folds a functional result and the timing stats into the
// record's guest block, summing the per-subsystem stall ledger by cause
// (the same projection Suite.Measure uses).
func guestFromRun(out *sim.Result, st uarch.Stats) runstore.Guest {
	g := runstore.Guest{
		Ret:         out.Ret,
		DynInstrs:   out.Stats.Total,
		Cycles:      st.Cycles,
		IssueActive: st.IssueActiveCycles,
		OffloadPct:  100 * out.Stats.OffloadFraction(),
		Copies:      out.Stats.Copies,
		Dups:        out.Stats.Dups,
		Loads:       out.Stats.Loads,
		Stores:      out.Stats.Stores,
	}
	g.Stalls = make(map[string]int64)
	for sub := 0; sub < 3; sub++ {
		for cause := 0; cause < uarch.NumStallCauses; cause++ {
			if n := st.StallBySub[sub][cause]; n != 0 {
				g.Stalls[uarch.StallCause(cause).String()] += n
			}
		}
	}
	return g
}

// GuestFromMeasurement converts a suite measurement into a record guest
// block, so bench workloads recorded via -suite and source files recorded
// via MeasureSource land in the store with the same shape.
func GuestFromMeasurement(m *Measurement) runstore.Guest {
	g := runstore.Guest{
		Ret:         m.Ret,
		DynInstrs:   m.DynInstrs,
		Cycles:      m.Cycles,
		IssueActive: m.IssueActiveCycles,
		OffloadPct:  100 * m.OffloadFrac,
		Copies:      m.Copies,
		Dups:        m.Dups,
		Loads:       m.Loads,
		Stores:      m.Stores,
		Stalls:      make(map[string]int64, len(m.Stalls)),
	}
	for k, v := range m.Stalls {
		g.Stalls[k] = v
	}
	return g
}
