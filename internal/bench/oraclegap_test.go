package bench_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/uarch"
)

var update = flag.Bool("update", false, "rewrite the golden oracle-gap report")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("..", "..", "testdata", "golden", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: report differs from golden (run with -update after verifying)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestOracleGapGolden pins the fpibench -oracle-gap report on both Table 1
// machines and enforces the CI gate: the exact search completes on every
// workload and the optimal profit dominates the greedy profit everywhere.
func TestOracleGapGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite measurement")
	}
	s := bench.NewSuite()
	var buf bytes.Buffer
	var all []bench.OracleGapRow
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		rows, err := s.OracleGaps(bench.IntWorkloads(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString(bench.OracleGapTable(rows))
		all = append(all, rows...)
	}
	if err := bench.GateOracleGaps(all); err != nil {
		t.Errorf("oracle-gap gate failed: %v", err)
	}
	for _, r := range all {
		if r.OptimalProfit <= 0 {
			t.Errorf("%s/%s: optimal profit %g — the oracle offloaded nothing", r.Workload, r.Config, r.OptimalProfit)
		}
	}
	checkGolden(t, "fpibench.oraclegap.txt", buf.Bytes())
}

// TestGateOracleGapsRejects: the gate must fail on a dominance violation
// and on a degraded (non-exact) search, with regression-class errors.
func TestGateOracleGapsRejects(t *testing.T) {
	good := bench.OracleGapRow{Workload: "w", Config: "4way", GreedyProfit: 10, OptimalProfit: 12}
	if err := bench.GateOracleGaps([]bench.OracleGapRow{good}); err != nil {
		t.Fatalf("clean row rejected: %v", err)
	}
	bad := good
	bad.OptimalProfit = 9
	if err := bench.GateOracleGaps([]bench.OracleGapRow{good, bad}); err == nil {
		t.Error("dominance violation passed the gate")
	}
	deg := good
	deg.Degraded = 1
	if err := bench.GateOracleGaps([]bench.OracleGapRow{deg}); err == nil {
		t.Error("degraded search passed the gate")
	}
}

// TestCalibrationFitAndFeedback runs the self-calibration on a small
// workload subset and checks the whole loop: the fit stays on the paper's
// grid, the document round-trips through fpint-calib/v1 JSON, and
// compiling with the fitted constants records their provenance in the
// partition audit trail — for the greedy scheme and the exact oracle.
func TestCalibrationFitAndFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed-model measurement")
	}
	s := bench.NewSuite()
	var ws []bench.Workload
	for _, name := range []string{"compress", "go", "perl"} {
		ws = append(ws, *bench.Lookup(name))
	}
	cfg := uarch.Config4Way()
	calib, err := s.Calibrate(ws, []uarch.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	fit := calib.Fit(cfg.Name)
	if fit == nil {
		t.Fatalf("no fit recorded for %s", cfg.Name)
	}
	if !fit.InPaperRange || fit.OCopy < 3 || fit.OCopy > 6 || fit.ODupl < 1.5 || fit.ODupl > 3 {
		t.Errorf("fit (o_copy=%g, o_dupl=%g) outside the paper ranges [3,6]×[1.5,3]", fit.OCopy, fit.ODupl)
	}
	if fit.R2 > 1 {
		t.Errorf("impossible R² %g", fit.R2)
	}
	if len(fit.Points) != len(ws) {
		t.Errorf("fit carries %d points, want %d", len(fit.Points), len(ws))
	}

	var buf bytes.Buffer
	if err := calib.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := bench.LoadCalibration(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("fpint-calib/v1 document does not round-trip: %v", err)
	}
	if af := again.Fit(cfg.Name); af == nil || af.OCopy != fit.OCopy || af.ODupl != fit.ODupl {
		t.Errorf("round-tripped fit differs: %+v vs %+v", af, fit)
	}
	if _, err := bench.LoadCalibration(strings.NewReader(`{"version":"bogus/v9"}`)); err == nil {
		t.Error("unknown calibration version accepted")
	}

	params, ok := calib.Params(cfg.Name)
	if !ok {
		t.Fatal("Params lost the fit")
	}
	if params.Provenance == "" || !strings.Contains(params.Provenance, bench.CalibVersion) {
		t.Fatalf("fitted params carry no provenance: %+v", params)
	}
	w := bench.Lookup("compress")
	for _, scheme := range []codegen.Scheme{codegen.SchemeAdvanced, codegen.SchemeOptimal} {
		res, _, err := codegen.CompileSource(w.Src, codegen.Options{Scheme: scheme, Cost: params})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		found := false
		for _, p := range res.Partitions {
			if p == nil || p.Audit == nil {
				continue
			}
			for _, note := range p.Audit.Notes {
				if strings.Contains(note, params.Provenance) {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%v: no audit trail records the calibration provenance", scheme)
		}
		for fn, p := range res.Partitions {
			if p == nil {
				continue
			}
			if err := core.VerifyPartition(p); err != nil {
				t.Errorf("%v/%s: fitted constants broke the partition: %v", scheme, fn, err)
			}
		}
	}
}
