package bench

import (
	"encoding/json"
	"io"
	"sort"
)

// LoadReportSchema identifies the JSON layout fpiload emits. Bump it when
// the shape of LoadReport or any row type changes incompatibly; the
// service acceptance test pins the (normalized) encoding byte-for-byte.
const LoadReportSchema = "fpint-load/v1"

// LoadReport is the machine-readable result of one load-generator run
// against fpintd: the request mix that was sent, latency percentiles,
// throughput, and the robustness headlines — shed rate, cache hit rate,
// and how many responses arrived per status/class. Wall-clock-derived
// fields are segregated so Normalize can zero them for golden
// comparisons while the deterministic outcome counts stay pinned.
type LoadReport struct {
	Schema  string `json:"schema"`
	Target  string `json:"target"` // base URL, or "inprocess" for the test harness
	Workers int    `json:"workers"`

	// Mix records how many requests of each job flavor were sent, sorted
	// by name. The flavors are the loadgen's own vocabulary (ok, malformed,
	// trap, panic, overBudget, ...), not the daemon's.
	Mix []LoadMixRow `json:"mix"`

	Requests        int64 `json:"requests"`        // responses received (any status)
	TransportErrors int64 `json:"transportErrors"` // connection failures, not HTTP errors

	// Outcomes counts responses per (HTTP status, error class) pair,
	// sorted by status then class. Success and degraded both arrive as
	// 200 and are told apart by the class column.
	Outcomes []LoadOutcomeRow `json:"outcomes"`

	Shed         int64   `json:"shed"` // 503 responses (admission refused)
	ShedRate     float64 `json:"shedRate"`
	CacheHits    int64   `json:"cacheHits"` // responses served from the artifact cache
	CacheHitRate float64 `json:"cacheHitRate"`

	// Wall-clock section: nondeterministic run to run, zeroed by Normalize.
	ElapsedNS     int64       `json:"elapsedNs"`
	ThroughputRPS float64     `json:"throughputRps"`
	Latency       LoadLatency `json:"latency"`
}

// LoadMixRow is one job flavor's share of the request mix.
type LoadMixRow struct {
	Flavor string `json:"flavor"`
	Count  int64  `json:"count"`
}

// LoadOutcomeRow counts responses carrying one (status, class) pair.
type LoadOutcomeRow struct {
	Status int    `json:"status"`
	Class  string `json:"class"`
	Count  int64  `json:"count"`
}

// LoadLatency carries per-request latency percentiles in nanoseconds.
type LoadLatency struct {
	P50NS int64 `json:"p50Ns"`
	P95NS int64 `json:"p95Ns"`
	P99NS int64 `json:"p99Ns"`
	MaxNS int64 `json:"maxNs"`
}

// Sort orders the mix and outcome rows canonically so two runs with the
// same outcomes encode identically regardless of arrival order.
func (r *LoadReport) Sort() {
	sort.Slice(r.Mix, func(i, j int) bool { return r.Mix[i].Flavor < r.Mix[j].Flavor })
	sort.Slice(r.Outcomes, func(i, j int) bool {
		if r.Outcomes[i].Status != r.Outcomes[j].Status {
			return r.Outcomes[i].Status < r.Outcomes[j].Status
		}
		return r.Outcomes[i].Class < r.Outcomes[j].Class
	})
}

// Normalize zeroes the wall-clock-derived fields (elapsed time, throughput,
// latency percentiles) and sorts the rows, so two runs that sent the same
// mix and saw the same outcomes encode byte-identically. The golden
// acceptance test compares normalized documents; the raw document keeps
// the measurements.
func (r *LoadReport) Normalize() {
	r.ElapsedNS = 0
	r.ThroughputRPS = 0
	r.Latency = LoadLatency{}
	r.Sort()
}

// WriteJSON encodes the report with two-space indentation; rows are
// sorted first so the document is deterministic.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	r.Sort()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
