package bench

import "fpint/internal/uarch"

// The cycle-bearing experiment set: the three experiments whose rows carry
// absolute cycle counts (Figures 9/10 and the §7.5 FP programs). Both
// `fpibench -baseline` and `fpistat gate -bench-baseline` regenerate
// exactly this set to compare against a checked-in BENCH_BASELINE.json;
// keeping the construction here stops the two CLIs' notions of "the
// baseline-relevant experiments" from drifting apart.

// FPProgramRow is one §7.5 row: the advanced scheme applied to a
// floating-point program.
type FPProgramRow struct {
	Workload   string  `json:"workload"`
	OffloadPct float64 `json:"offloadPct"`
	SpeedupPct float64 `json:"speedupPct"`
	BaseCycles int64   `json:"baseCycles"`
	AdvCycles  int64   `json:"advCycles"`
}

// FPProgramRows computes the §7.5 rows: advanced-scheme offload and
// speedup for the FP programs on the 4-way machine.
func (s *Suite) FPProgramRows() ([]FPProgramRow, error) {
	ws := FpWorkloads()
	parts, err := s.FigurePartitionSizes(ws)
	if err != nil {
		return nil, err
	}
	speeds, err := s.FigureSpeedups(ws, uarch.Config4Way())
	if err != nil {
		return nil, err
	}
	rows := make([]FPProgramRow, len(parts))
	for i := range parts {
		rows[i] = FPProgramRow{
			Workload:   parts[i].Workload,
			OffloadPct: parts[i].AdvancedPct,
			SpeedupPct: speeds[i].AdvancedPct,
			BaseCycles: speeds[i].BaseCycles,
			AdvCycles:  speeds[i].AdvCycles,
		}
	}
	return rows, nil
}

// CycleReport runs the cycle-bearing experiments and returns them as a
// report whose experiment names and row shapes match what fpibench emits,
// so LoadBaselineCycles finds the same (experiment, workload, field) keys
// in both.
func CycleReport(s *Suite) (*Report, error) {
	rep := NewReport()
	rows9, err := s.FigureSpeedups(IntWorkloads(), uarch.Config4Way())
	if err != nil {
		return nil, err
	}
	rep.Add("fig9_speedups_4way", "§7.1/Fig. 9", rows9)
	rows10, err := s.FigureSpeedups(IntWorkloads(), uarch.Config8Way())
	if err != nil {
		return nil, err
	}
	rep.Add("fig10_speedups_8way", "§7.4/Fig. 10", rows10)
	fp, err := s.FPProgramRows()
	if err != nil {
		return nil, err
	}
	rep.Add("fp_programs", "§7.5", fp)
	return rep, nil
}
