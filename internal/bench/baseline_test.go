package bench

import (
	"strings"
	"testing"
)

// TestBaselineRoundTrip builds a report the way fpibench does, extracts its
// cycle counts, and re-loads them through the JSON path a checked-in
// baseline file takes. Both views must agree, and a perturbed copy must
// show up as exactly one regression.
func TestBaselineRoundTrip(t *testing.T) {
	rep := NewReport()
	rep.Add("fig9_speedups_4way", "§7.1/Fig. 9", []SpeedupRow{
		{Workload: "compress", BaseCycles: 1000, BasicCycles: 980, AdvCycles: 900},
		{Workload: "gcc", BaseCycles: 5000, BasicCycles: 4600, AdvCycles: 4000},
	})
	// Static tables use untyped string rows; the extractor must skip them.
	rep.Add("table1_machine_parameters", "§7/Table 1", [][]string{{"Fetch width", "4", "8"}})

	cur, err := ExtractCycles(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) != 6 {
		t.Fatalf("extracted %d metrics, want 6: %v", len(cur), cur)
	}
	if got := cur[CycleKey{"fig9_speedups_4way", "gcc", "advCycles"}]; got != 4000 {
		t.Fatalf("gcc advCycles = %d, want 4000", got)
	}

	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaselineCycles(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	deltas := CompareCycles(base, cur)
	if len(deltas) != 6 {
		t.Fatalf("compared %d metrics, want 6", len(deltas))
	}
	if reg := Regressions(deltas, 2.0); len(reg) != 0 {
		t.Fatalf("self-comparison reports regressions: %+v", reg)
	}

	// A slowdown beyond tolerance is flagged; one within tolerance is not.
	cur[CycleKey{"fig9_speedups_4way", "compress", "advCycles"}] = 950   // +5.6%
	cur[CycleKey{"fig9_speedups_4way", "compress", "baseCycles"}] = 1010 // +1.0%
	reg := Regressions(CompareCycles(base, cur), 2.0)
	if len(reg) != 1 {
		t.Fatalf("regressions = %+v, want exactly the advCycles slowdown", reg)
	}
	if reg[0].Key.Field != "advCycles" || reg[0].New != 950 {
		t.Fatalf("wrong regression flagged: %+v", reg[0])
	}
}

// TestBaselineRejectsUnknownSchema pins the refusal to compare across
// incompatible report layouts.
func TestBaselineRejectsUnknownSchema(t *testing.T) {
	_, err := LoadBaselineCycles(strings.NewReader(`{"schema":"fpint-bench/v999","experiments":[]}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema mismatch", err)
	}
}
