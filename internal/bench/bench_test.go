package bench_test

import (
	"testing"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

// TestWorkloadsCompileAndAgree compiles every workload under every scheme
// and cross-checks the functional results against the IR interpreter.
func TestWorkloadsCompileAndAgree(t *testing.T) {
	s := bench.NewSuite()
	for _, w := range bench.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cfg := uarch.Config4Way()
			for _, scheme := range []codegen.Scheme{codegen.SchemeNone, codegen.SchemeBasic, codegen.SchemeAdvanced} {
				m, err := s.Measure(&w, scheme, cfg)
				if err != nil {
					t.Fatalf("%v: %v", scheme, err)
				}
				if m.DynInstrs < 10000 {
					t.Errorf("%v: workload too small: %d dynamic instructions", scheme, m.DynInstrs)
				}
				if m.Cycles <= 0 {
					t.Errorf("%v: no cycles", scheme)
				}
			}
		})
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite measurement")
	}
	s := bench.NewSuite()
	rows, err := s.FigurePartitionSizes(bench.IntWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-10s basic=%5.1f%% advanced=%5.1f%%", r.Workload, r.BasicPct, r.AdvancedPct)
		if r.AdvancedPct+0.01 < r.BasicPct {
			t.Errorf("%s: advanced (%.1f%%) offloads less than basic (%.1f%%)", r.Workload, r.AdvancedPct, r.BasicPct)
		}
		if r.AdvancedPct <= 0 {
			t.Errorf("%s: advanced scheme offloaded nothing", r.Workload)
		}
		if r.AdvancedPct > 50 {
			t.Errorf("%s: advanced offload %.1f%% exceeds the LdSt-slice bound", r.Workload, r.AdvancedPct)
		}
	}
}

func TestOverheadsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite measurement")
	}
	s := bench.NewSuite()
	rows, err := s.Overheads(bench.IntWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-10s dyn+%.2f%% copies=%.2f%% dups=%.2f%% static+%.2f%%",
			r.Workload, r.DynGrowthPct, r.CopyPct, r.DupPct, r.StaticGrowthPct)
		// §7.2: max observed increase was 4% (compress); give headroom.
		if r.DynGrowthPct > 8 {
			t.Errorf("%s: dynamic instruction growth %.1f%% too large", r.Workload, r.DynGrowthPct)
		}
	}
}

// TestFigure9Shape pins the qualitative claims of Figure 9: the advanced
// scheme never loses to basic, li-like call-dense code gains least, and
// the conventional machine never beats the augmented one by more than
// noise on any integer workload.
func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite measurement")
	}
	s := bench.NewSuite()
	rows, err := s.FigureSpeedups(bench.IntWorkloads(), uarch.Config4Way())
	if err != nil {
		t.Fatal(err)
	}
	var liAdv float64
	maxAdv := -1e9
	for _, r := range rows {
		t.Logf("%-10s basic=%+5.1f%% advanced=%+5.1f%%", r.Workload, r.BasicPct, r.AdvancedPct)
		if r.AdvancedPct < -1 {
			t.Errorf("%s: advanced scheme slows the 4-way machine down by %.1f%%", r.Workload, -r.AdvancedPct)
		}
		if r.Workload == "li" {
			liAdv = r.AdvancedPct
		}
		if r.AdvancedPct > maxAdv {
			maxAdv = r.AdvancedPct
		}
	}
	// li benefits least (paper: ~2.5%, the flattest bar in Figure 9).
	for _, r := range rows {
		if r.Workload != "li" && r.AdvancedPct < liAdv-0.5 {
			t.Errorf("%s (%.1f%%) gains less than call-dense li (%.1f%%)", r.Workload, r.AdvancedPct, liAdv)
		}
	}
	if maxAdv < 10 {
		t.Errorf("best advanced speedup %.1f%% < 10%%; paper's best cases exceed 10%%", maxAdv)
	}
}

// TestFig10SmallerThanFig9 pins the 4-way vs 8-way contrast.
func TestFig10SmallerThanFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite measurement")
	}
	s := bench.NewSuite()
	r4, err := s.FigureSpeedups(bench.IntWorkloads(), uarch.Config4Way())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := s.FigureSpeedups(bench.IntWorkloads(), uarch.Config8Way())
	if err != nil {
		t.Fatal(err)
	}
	var sum4, sum8 float64
	for i := range r4 {
		sum4 += r4[i].AdvancedPct
		sum8 += r8[i].AdvancedPct
	}
	if sum8 >= sum4 {
		t.Errorf("aggregate 8-way speedup (%.1f) not smaller than 4-way (%.1f)", sum8, sum4)
	}
}
