package faultinject_test

import (
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/faultinject"
	"fpint/internal/uarch"
)

// loopSrc is integer-dense enough that every scheme produces a long dynamic
// trace with FPa traffic under basic/advanced partitioning.
const loopSrc = `
int a[256];
int main() {
	int s = 0;
	for (int rep = 0; rep < 20; rep++) {
		for (int i = 0; i < 256; i++) {
			int x = a[i] ^ rep;
			int y = (x << 1) + (x >> 2) + rep;
			if (y & 1) s += y; else s ^= x;
			a[i] = y;
		}
	}
	return s & 1048575;
}`

var schemes = []codegen.Scheme{codegen.SchemeNone, codegen.SchemeBasic, codegen.SchemeAdvanced}

func compileProg(t *testing.T, scheme codegen.Scheme) *codegen.Result {
	t.Helper()
	res, _, err := codegen.CompileSource(loopSrc, codegen.Options{Scheme: scheme})
	if err != nil {
		t.Fatalf("compile %v: %v", scheme, err)
	}
	return res
}

func runInjected(t *testing.T, res *codegen.Result, cfg uarch.Config, fc faultinject.Config) (int64, uarch.Stats, *uarch.CycleProfile, *faultinject.Plan) {
	t.Helper()
	plan := faultinject.NewPlan(fc)
	out, st, prof, err := uarch.RunInjected(res.Prog, cfg, plan)
	if err != nil {
		t.Fatalf("injected run: %v", err)
	}
	return out.Ret, st, prof, plan
}

// Acceptance: the same fault seed must reproduce a byte-identical fault
// trace.
func TestSameSeedByteIdenticalTrace(t *testing.T) {
	res := compileProg(t, codegen.SchemeAdvanced)
	fc := faultinject.Config{Seed: 11, Kind: faultinject.KindAny, Rate: 0.002}
	_, st1, _, p1 := runInjected(t, res, uarch.Config4Way(), fc)
	_, st2, _, p2 := runInjected(t, res, uarch.Config4Way(), fc)
	if st1.FaultsInjected == 0 {
		t.Fatal("no faults injected; rate too low for this trace")
	}
	if p1.TraceString() != p2.TraceString() {
		t.Fatalf("fault traces differ across identical runs:\n--- run 1\n%s--- run 2\n%s",
			p1.TraceString(), p2.TraceString())
	}
	if st1.Cycles != st2.Cycles || st1.FaultRecoveryCycles != st2.FaultRecoveryCycles {
		t.Fatalf("timing diverged under identical fault plans: %d vs %d cycles", st1.Cycles, st2.Cycles)
	}
	// A different seed must produce a different schedule (the trace is a
	// function of the seed, not of the program alone).
	_, _, _, p3 := runInjected(t, res, uarch.Config4Way(),
		faultinject.Config{Seed: 12, Kind: faultinject.KindAny, Rate: 0.002})
	if p3.TraceString() == p1.TraceString() {
		t.Error("seeds 11 and 12 produced identical fault traces")
	}
}

// Acceptance: the stall ledger and the per-PC profile must still close
// (Σ == cycles) under every injected-fault run — every scheme, both Table 1
// machines, every fault kind.
func TestLedgerClosesUnderInjection(t *testing.T) {
	kinds := []faultinject.Kind{
		faultinject.KindAny, faultinject.KindRegBitFlip, faultinject.KindCopyCorrupt,
		faultinject.KindWritebackDrop, faultinject.KindWritebackDelay, faultinject.KindWrongDispatch,
	}
	for _, scheme := range schemes {
		res := compileProg(t, scheme)
		for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
			for _, kind := range kinds {
				_, st, prof, _ := runInjected(t, res, cfg,
					faultinject.Config{Seed: 5, Kind: kind, Rate: 0.005})
				if err := st.StallAccountingError(); err != 0 {
					t.Errorf("%v/%s/%v: stall ledger open by %d cycles", scheme, cfg.Name, kind, err)
				}
				if got := prof.TotalAttributed(); got != st.Cycles {
					t.Errorf("%v/%s/%v: per-PC profile attributes %d of %d cycles",
						scheme, cfg.Name, kind, got, st.Cycles)
				}
			}
		}
	}
}

// The detection/recovery discipline guarantees architecturally correct
// output: an injected run must return exactly what the fault-free run
// returns, for every scheme.
func TestArchitecturalOutputUnaffected(t *testing.T) {
	for _, scheme := range schemes {
		res := compileProg(t, scheme)
		clean, _, err := uarch.Run(res.Prog, uarch.Config4Way())
		if err != nil {
			t.Fatal(err)
		}
		ret, st, _, _ := runInjected(t, res, uarch.Config4Way(),
			faultinject.Config{Seed: 2, Kind: faultinject.KindAny, Rate: 0.01})
		if ret != clean.Ret {
			t.Fatalf("%v: injected run returned %d, fault-free %d", scheme, ret, clean.Ret)
		}
		if st.FaultsInjected == 0 {
			t.Fatalf("%v: no faults injected at rate 0.01", scheme)
		}
		if st.FaultRecoveryCycles == 0 {
			t.Fatalf("%v: faults injected but no recovery cycles charged", scheme)
		}
	}
}

// Recovery must cost cycles: an injected run is never faster than its
// fault-free twin, and the fault-recovery stall cause actually absorbs
// cycles when flush-class faults fire.
func TestRecoveryCostsCycles(t *testing.T) {
	res := compileProg(t, codegen.SchemeAdvanced)
	_, clean, err := uarch.Run(res.Prog, uarch.Config4Way())
	if err != nil {
		t.Fatal(err)
	}
	_, st, prof, plan := runInjected(t, res, uarch.Config4Way(),
		faultinject.Config{Seed: 2, Kind: faultinject.KindRegBitFlip, Rate: 0.01})
	if st.Cycles <= clean.Cycles {
		t.Errorf("injected run (%d cycles) not slower than fault-free (%d)", st.Cycles, clean.Cycles)
	}
	if got := st.StallCauseCycles(uarch.StallFaultRecovery); got == 0 {
		t.Error("no cycles attributed to fault-recovery despite flush faults")
	}
	// The per-PC profile must see the same cause.
	var profRecovery int64
	for _, s := range prof.Samples {
		profRecovery += s.Stall[uarch.StallFaultRecovery]
	}
	if profRecovery != st.StallCauseCycles(uarch.StallFaultRecovery) {
		t.Errorf("profile fault-recovery cycles %d != ledger %d",
			profRecovery, st.StallCauseCycles(uarch.StallFaultRecovery))
	}
	if int64(len(plan.Trace())) != st.FaultsInjected {
		t.Errorf("trace has %d faults, stats counted %d", len(plan.Trace()), st.FaultsInjected)
	}
}

// Per-scheme sensitivity: schemes that move work to FPa expose FPa-specific
// fault kinds the conventional binary cannot experience.
func TestSchemeSensitivityFPaKinds(t *testing.T) {
	fc := faultinject.Config{Seed: 3, Kind: faultinject.KindWritebackDrop, Rate: 0.02}
	resNone := compileProg(t, codegen.SchemeNone)
	_, stNone, _, _ := runInjected(t, resNone, uarch.Config4Way(), fc)
	if stNone.FaultsInjected != 0 {
		t.Errorf("conventional binary took %d FPa writeback faults", stNone.FaultsInjected)
	}
	resAdv := compileProg(t, codegen.SchemeAdvanced)
	_, stAdv, _, _ := runInjected(t, resAdv, uarch.Config4Way(), fc)
	if stAdv.FaultsInjected == 0 {
		t.Error("advanced binary exposed to no FPa writeback faults at rate 0.02")
	}
}

// A fault-free plan attached to the pipeline must not perturb timing: the
// injection path is strictly pay-for-use.
func TestZeroRatePlanIsTransparent(t *testing.T) {
	res := compileProg(t, codegen.SchemeAdvanced)
	_, clean, err := uarch.Run(res.Prog, uarch.Config4Way())
	if err != nil {
		t.Fatal(err)
	}
	_, st, _, plan := runInjected(t, res, uarch.Config4Way(),
		faultinject.Config{Seed: 1, Kind: faultinject.KindAny, Rate: 0})
	if st.Cycles != clean.Cycles || st.FaultsInjected != 0 || len(plan.Trace()) != 0 {
		t.Fatalf("zero-rate plan perturbed timing: %d vs %d cycles, %d faults",
			st.Cycles, clean.Cycles, st.FaultsInjected)
	}
}
