// Package faultinject implements the deterministic transient-fault model
// for the timing simulator. It answers the robustness question the paper
// leaves open: what does the INT-on-FPa offload machinery cost when the
// extra hardware misbehaves?
//
// The model injects transient faults into the microarchitectural machine —
// register-file bit flips, corrupted FPa→INT copy results on the result
// bus, dropped or delayed FPa writebacks, and wrong-subsystem dispatch —
// paired with a detection/recovery discipline: every result bus carries
// parity, a parity mismatch at writeback triggers a pipeline flush of all
// younger instructions and a replay of the faulted one. Architectural
// state is therefore never corrupted; faults cost cycles, not correctness,
// and the recovery cycles flow into the timing model's closed stall ledger
// under a dedicated fault-recovery stall cause.
//
// Determinism is the load-bearing property: a Plan is a pure function of
// its seed. Fault decisions are drawn from a counter-keyed hash of the
// dynamic instruction index (not from issue order or wall time), so the
// same seed over the same program reproduces a byte-identical fault trace
// — enforced by test and relied on by the fpifuzz -faults sweep.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"

	"fpint/internal/isa"
)

// Kind classifies an injected transient fault.
type Kind uint8

// Fault kinds. KindNone is the no-fault verdict; KindAny asks the plan to
// pick uniformly among the kinds applicable to each instruction.
const (
	KindNone Kind = iota
	// KindRegBitFlip: a bit flips in the physical register file; parity
	// detects it when the value crosses the result bus. Applicable to any
	// instruction that writes a register.
	KindRegBitFlip
	// KindCopyCorrupt: an FPa→INT copy (CP2INT) delivers a corrupted value
	// across the inter-file result bus. The copy is the paper's §6.4 escape
	// hatch for call arguments and return values, so this kind stresses
	// exactly the traffic the advanced scheme adds.
	KindCopyCorrupt
	// KindWritebackDrop: an FPa writeback is dropped on the way to the FP
	// register file; the parity/valid check times out and the producer is
	// replayed. Applicable to FPa-subsystem instructions with a destination.
	KindWritebackDrop
	// KindWritebackDelay: an FPa writeback is delayed (bus arbitration
	// glitch). No flush — consumers simply wait longer. Applicable to
	// FPa-subsystem instructions with a destination.
	KindWritebackDelay
	// KindWrongDispatch: the steering logic routes an ALU instruction to
	// the wrong subsystem queue; the mismatch is detected at issue and the
	// instruction is flushed and re-dispatched. Applicable to non-memory
	// INT and FPa instructions.
	KindWrongDispatch
	// KindAny draws uniformly among the kinds applicable to the
	// instruction under decision.
	KindAny

	numKinds = int(KindAny)
)

var kindNames = [...]string{
	KindNone:           "none",
	KindRegBitFlip:     "reg-bitflip",
	KindCopyCorrupt:    "copy-corrupt",
	KindWritebackDrop:  "wb-drop",
	KindWritebackDelay: "wb-delay",
	KindWrongDispatch:  "wrong-dispatch",
	KindAny:            "any",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// KindFromString parses a kind name as spelled in -inject-fault specs.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s && Kind(k) != KindNone {
			return Kind(k), true
		}
	}
	return KindNone, false
}

// Config parameterizes a fault plan.
type Config struct {
	// Seed keys every pseudo-random draw. Same seed ⇒ same fault trace.
	Seed int64
	// Kind selects the fault kind to inject (KindAny mixes all kinds).
	Kind Kind
	// Rate is the per-instruction fault probability in [0,1]. Each dynamic
	// instruction is a single fault opportunity; replayed instances are
	// covered by parity and never re-fault.
	Rate float64
	// FlushPenalty is the front-end refill cost, in cycles, of a
	// detection-triggered pipeline flush (default 5).
	FlushPenalty int
	// DelayCycles is the extra latency of a delayed writeback (default 8).
	DelayCycles int
}

// withDefaults fills zero-valued knobs.
func (c Config) withDefaults() Config {
	if c.FlushPenalty == 0 {
		c.FlushPenalty = 5
	}
	if c.DelayCycles == 0 {
		c.DelayCycles = 8
	}
	if c.Kind == KindNone {
		c.Kind = KindAny
	}
	return c
}

// ParseSpec parses the CLI fault specification "seed=N,kind=K,rate=R"
// (fields in any order; kind defaults to any, seed to 1). Rate is
// mandatory: a fault plan with rate 0 injects nothing and is almost
// certainly a spelling mistake.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1, Kind: KindAny, Rate: -1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault spec field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("fault spec seed %q: %v", val, err)
			}
			cfg.Seed = n
		case "kind":
			k, ok := KindFromString(val)
			if !ok {
				return Config{}, fmt.Errorf("fault spec kind %q (want reg-bitflip, copy-corrupt, wb-drop, wb-delay, wrong-dispatch, or any)", val)
			}
			cfg.Kind = k
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return Config{}, fmt.Errorf("fault spec rate %q: want a probability in [0,1]", val)
			}
			cfg.Rate = r
		default:
			return Config{}, fmt.Errorf("fault spec key %q (want seed, kind, or rate)", key)
		}
	}
	if cfg.Rate < 0 {
		return Config{}, fmt.Errorf("fault spec %q: rate is required (e.g. rate=0.001)", spec)
	}
	return cfg, nil
}

// Fault is one injected-and-detected fault, as recorded in the trace.
type Fault struct {
	Seq      int64      // dynamic instruction index (program order)
	PC       int        // static instruction index
	Op       isa.Opcode // faulted instruction
	Kind     Kind
	Cycle    int64 // cycle the fault was detected
	Recovery int64 // recovery cycles added to the faulted instruction
}

// Plan is a seeded, fully deterministic fault schedule plus the trace of
// faults actually injected. A Plan is single-run state: attach a fresh one
// per simulation.
type Plan struct {
	cfg   Config
	fired map[int64]Kind // dynamic index → injected kind (parity memo)
	trace []Fault
}

// NewPlan builds a plan for cfg (zero-valued knobs get defaults).
func NewPlan(cfg Config) *Plan {
	return &Plan{cfg: cfg.withDefaults(), fired: make(map[int64]Kind)}
}

// Config returns the plan's effective (default-filled) configuration.
func (p *Plan) Config() Config { return p.cfg }

// applicable lists the fault kinds that can strike an instruction.
func applicable(op isa.Opcode, hasDst bool) []Kind {
	var ks []Kind
	if hasDst {
		ks = append(ks, KindRegBitFlip)
	}
	if op == isa.CP2INT {
		ks = append(ks, KindCopyCorrupt)
	}
	if isa.ExecSubsystem(op) == isa.SubFPa && hasDst {
		ks = append(ks, KindWritebackDrop, KindWritebackDelay)
	}
	if !isa.IsMem(op) && !isa.IsControl(op) && isa.ExecSubsystem(op) != isa.SubFP {
		ks = append(ks, KindWrongDispatch)
	}
	return ks
}

// Decide returns the fault kind (or KindNone) for the dynamic instruction
// with index seq. The decision is a pure function of (seed, seq, op,
// hasDst); repeated calls for the same seq after a fault fired return
// KindNone, modeling parity-clean replay. Decide does not record a trace
// entry — the caller reports the detection via Record once it knows the
// cycle and recovery cost.
func (p *Plan) Decide(seq int64, op isa.Opcode, hasDst bool) Kind {
	if p.cfg.Rate <= 0 {
		return KindNone
	}
	if _, done := p.fired[seq]; done {
		return KindNone
	}
	draw := hash2(uint64(p.cfg.Seed), uint64(seq))
	// 53-bit uniform in [0,1).
	if float64(draw>>11)/(1<<53) >= p.cfg.Rate {
		return KindNone
	}
	ks := applicable(op, hasDst)
	if len(ks) == 0 {
		return KindNone
	}
	kind := p.cfg.Kind
	if kind == KindAny {
		kind = ks[hash2(uint64(p.cfg.Seed)^0x9e3779b97f4a7c15, uint64(seq))%uint64(len(ks))]
	} else {
		ok := false
		for _, k := range ks {
			if k == kind {
				ok = true
				break
			}
		}
		if !ok {
			return KindNone
		}
	}
	p.fired[seq] = kind
	return kind
}

// Recovery returns the cycles the detection/recovery discipline adds to a
// faulted instruction whose fault-free latency is lat: flush kinds pay the
// front-end refill penalty plus a full re-execution; a delayed writeback
// pays only the configured bus delay.
func (p *Plan) Recovery(kind Kind, lat int64) int64 {
	if kind == KindWritebackDelay {
		return int64(p.cfg.DelayCycles)
	}
	return int64(p.cfg.FlushPenalty) + lat
}

// Flushes reports whether kind triggers a pipeline flush (squash of all
// younger in-flight instructions) on detection.
func (kind Kind) Flushes() bool {
	return kind != KindNone && kind != KindWritebackDelay
}

// Record appends one detected fault to the trace.
func (p *Plan) Record(f Fault) { p.trace = append(p.trace, f) }

// Trace returns the faults injected so far, in detection order.
func (p *Plan) Trace() []Fault { return p.trace }

// TraceString renders the fault trace in a canonical line format; byte
// equality of two traces is the reproducibility criterion.
func (p *Plan) TraceString() string {
	var sb strings.Builder
	for _, f := range p.trace {
		fmt.Fprintf(&sb, "seq=%d pc=%d op=%s kind=%s cycle=%d recovery=%d\n",
			f.Seq, f.PC, f.Op, f.Kind, f.Cycle, f.Recovery)
	}
	return sb.String()
}

// Summary aggregates the trace per kind.
type Summary struct {
	Injected       int64
	RecoveryCycles int64
	ByKind         map[string]int64
}

// Summarize folds the trace into counts.
func (p *Plan) Summarize() Summary {
	s := Summary{ByKind: make(map[string]int64)}
	for _, f := range p.trace {
		s.Injected++
		s.RecoveryCycles += f.Recovery
		s.ByKind[f.Kind.String()]++
	}
	return s
}

// hash2 mixes two words with the splitmix64 finalizer — a small, stable
// stateless PRF so decisions depend only on (seed, seq).
func hash2(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
