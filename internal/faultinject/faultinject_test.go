package faultinject

import (
	"strings"
	"testing"

	"fpint/internal/isa"
)

func TestDecideIsPureFunctionOfSeedAndSeq(t *testing.T) {
	a := NewPlan(Config{Seed: 7, Kind: KindAny, Rate: 0.05})
	b := NewPlan(Config{Seed: 7, Kind: KindAny, Rate: 0.05})
	for seq := int64(0); seq < 5000; seq++ {
		ka := a.Decide(seq, isa.ADD, true)
		kb := b.Decide(seq, isa.ADD, true)
		if ka != kb {
			t.Fatalf("seq %d: plans with the same seed disagree: %v vs %v", seq, ka, kb)
		}
	}
}

func TestFiredSeqNeverRefaults(t *testing.T) {
	p := NewPlan(Config{Seed: 1, Kind: KindRegBitFlip, Rate: 1})
	if k := p.Decide(42, isa.ADD, true); k != KindRegBitFlip {
		t.Fatalf("rate-1 decide = %v, want reg-bitflip", k)
	}
	// Replay of the same dynamic instance: parity passes, no second fault.
	if k := p.Decide(42, isa.ADD, true); k != KindNone {
		t.Fatalf("replayed instance re-faulted: %v", k)
	}
}

func TestKindApplicability(t *testing.T) {
	has := func(ks []Kind, want Kind) bool {
		for _, k := range ks {
			if k == want {
				return true
			}
		}
		return false
	}
	if ks := applicable(isa.SW, false); len(ks) != 0 {
		t.Errorf("store with no destination should admit no faults, got %v", ks)
	}
	if ks := applicable(isa.CP2INT, true); !has(ks, KindCopyCorrupt) {
		t.Errorf("CP2INT must admit copy-corrupt, got %v", ks)
	}
	if ks := applicable(isa.ADD, true); has(ks, KindCopyCorrupt) || has(ks, KindWritebackDrop) {
		t.Errorf("plain INT add admits FPa-only kinds: %v", ks)
	}
	if ks := applicable(isa.ADDA, true); !has(ks, KindWritebackDrop) || !has(ks, KindWritebackDelay) {
		t.Errorf("FPa add must admit writeback faults, got %v", ks)
	}
	if ks := applicable(isa.BNEZ, false); has(ks, KindWrongDispatch) {
		t.Errorf("control op admits wrong-dispatch: %v", ks)
	}
}

func TestKindFilterRespectsApplicability(t *testing.T) {
	// A copy-corrupt-only plan must never fault a plain ADD even at rate 1.
	p := NewPlan(Config{Seed: 3, Kind: KindCopyCorrupt, Rate: 1})
	for seq := int64(0); seq < 100; seq++ {
		if k := p.Decide(seq, isa.ADD, true); k != KindNone {
			t.Fatalf("copy-corrupt plan faulted an ADD: %v", k)
		}
	}
	if k := p.Decide(200, isa.CP2INT, true); k != KindCopyCorrupt {
		t.Fatalf("copy-corrupt plan skipped a CP2INT: %v", k)
	}
}

func TestRecoveryCosts(t *testing.T) {
	p := NewPlan(Config{Seed: 1, Rate: 1}) // defaults: flush 5, delay 8
	if got := p.Recovery(KindRegBitFlip, 3); got != 8 {
		t.Errorf("flush recovery = %d, want penalty+lat = 8", got)
	}
	if got := p.Recovery(KindWritebackDelay, 3); got != 8 {
		t.Errorf("delay recovery = %d, want DelayCycles = 8", got)
	}
	if KindWritebackDelay.Flushes() || !KindRegBitFlip.Flushes() || KindNone.Flushes() {
		t.Error("Flushes classification wrong")
	}
}

func TestTraceStringAndSummary(t *testing.T) {
	p := NewPlan(Config{Seed: 1, Rate: 1})
	p.Record(Fault{Seq: 5, PC: 2, Op: isa.ADDA, Kind: KindWritebackDrop, Cycle: 10, Recovery: 6})
	p.Record(Fault{Seq: 9, PC: 4, Op: isa.CP2INT, Kind: KindCopyCorrupt, Cycle: 20, Recovery: 7})
	ts := p.TraceString()
	if !strings.Contains(ts, "seq=5 pc=2") || !strings.Contains(ts, "kind=copy-corrupt") {
		t.Fatalf("trace format: %q", ts)
	}
	s := p.Summarize()
	if s.Injected != 2 || s.RecoveryCycles != 13 || s.ByKind["wb-drop"] != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=9,kind=wb-drop,rate=0.25")
	if err != nil || cfg.Seed != 9 || cfg.Kind != KindWritebackDrop || cfg.Rate != 0.25 {
		t.Fatalf("ParseSpec: cfg=%+v err=%v", cfg, err)
	}
	// Defaults: seed 1, kind any.
	cfg, err = ParseSpec("rate=0.5")
	if err != nil || cfg.Seed != 1 || cfg.Kind != KindAny {
		t.Fatalf("ParseSpec defaults: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{
		"",                  // rate missing
		"seed=1",            // rate missing
		"rate=2",            // out of range
		"rate=x",            // not a number
		"kind=bogus,rate=1", // unknown kind
		"kind=none,rate=1",  // none is not injectable
		"speed=1,rate=1",    // unknown key
		"seed,rate=1",       // not key=value
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindRegBitFlip; k <= KindAny; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %v does not round-trip: %v %v", k, got, ok)
		}
	}
	if _, ok := KindFromString("none"); ok {
		t.Error("KindFromString must reject none")
	}
}

func TestRateZeroInjectsNothing(t *testing.T) {
	p := NewPlan(Config{Seed: 1, Kind: KindAny, Rate: 0})
	for seq := int64(0); seq < 1000; seq++ {
		if k := p.Decide(seq, isa.ADD, true); k != KindNone {
			t.Fatalf("rate-0 plan injected %v", k)
		}
	}
}
