package interp_test

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property-based tests: single-operation programs evaluated by the full
// pipeline (parse → check → lower → optimize → interpret) must agree with
// Go's own 64-bit integer semantics.

func evalBinary(t *testing.T, op string, a, b int64) int64 {
	t.Helper()
	// Pass operands through globals so constant folding cannot shortcut
	// the actual operator implementation.
	src := fmt.Sprintf(`
int ga = %d;
int gb = %d;
int main() { return ga %s gb; }`, a, b, op)
	return run(t, src).Ret
}

func TestQuickAdd(t *testing.T) {
	f := func(a, b int64) bool { return evalBinary(t, "+", a, b) == a+b }
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubMul(t *testing.T) {
	f := func(a, b int64) bool {
		return evalBinary(t, "-", a, b) == a-b && evalBinary(t, "*", a, b) == a*b
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBitwise(t *testing.T) {
	f := func(a, b int64) bool {
		return evalBinary(t, "&", a, b) == a&b &&
			evalBinary(t, "|", a, b) == a|b &&
			evalBinary(t, "^", a, b) == a^b
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShifts(t *testing.T) {
	f := func(a int64, sh uint8) bool {
		k := int64(sh % 64)
		return evalBinary(t, "<<", a, k) == a<<uint(k) &&
			evalBinary(t, ">>", a, k) == a>>uint(k)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDivRem(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 {
			b = 1
		}
		return evalBinary(t, "/", a, b) == a/b && evalBinary(t, "%", a, b) == a%b
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComparisons(t *testing.T) {
	b2i := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	f := func(a, b int64) bool {
		return evalBinary(t, "<", a, b) == b2i(a < b) &&
			evalBinary(t, "<=", a, b) == b2i(a <= b) &&
			evalBinary(t, ">", a, b) == b2i(a > b) &&
			evalBinary(t, ">=", a, b) == b2i(a >= b) &&
			evalBinary(t, "==", a, b) == b2i(a == b) &&
			evalBinary(t, "!=", a, b) == b2i(a != b)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMemoryRoundTrip: storing then loading through a global array is
// the identity for any value and any in-range index.
func TestQuickMemoryRoundTrip(t *testing.T) {
	f := func(v int64, idx uint8) bool {
		i := int64(idx % 32)
		src := fmt.Sprintf(`
int a[32];
int gv = %d;
int main() { a[%d] = gv; return a[%d] == gv; }`, v, i, i)
		return run(t, src).Ret == 1
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 25}
}
