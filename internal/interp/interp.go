// Package interp implements an IR-level interpreter. It serves two roles:
//
//  1. Functional reference: compiled programs must produce the same output
//     as the interpreter (used heavily in tests).
//  2. Profiler: it records basic-block execution counts, which feed the
//     advanced partitioning scheme's cost model exactly as the paper's
//     "basic-block execution profiles" do.
package interp

import (
	"fmt"
	"strings"

	"fpint/internal/ir"
	"fpint/internal/trap"
)

// Profile holds basic-block execution counts per function.
type Profile struct {
	// Counts[funcName][blockID] = times the block executed.
	Counts map[string]map[int]int64
}

// BlockCount returns the recorded count for a block (0 when absent).
func (p *Profile) BlockCount(fn string, blockID int) int64 {
	if p == nil || p.Counts == nil {
		return 0
	}
	return p.Counts[fn][blockID]
}

// Covered reports whether the function appears in the profile at all.
func (p *Profile) Covered(fn string) bool {
	if p == nil || p.Counts == nil {
		return false
	}
	m, ok := p.Counts[fn]
	return ok && len(m) > 0
}

// Result summarizes an interpreter run.
type Result struct {
	Ret     int64  // value returned by main
	Output  string // text produced by print/printf_
	Steps   int64  // dynamic IR instructions executed
	Loads   int64
	Stores  int64
	Profile *Profile
}

// value is a dynamic operand value; ints and floats are stored separately.
type value struct {
	i int64
	f float64
}

// Machine is the interpreter state.
type Machine struct {
	mod *ir.Module

	mem        []byte
	globalAddr map[string]int64
	heapTop    int64 // next free byte after globals; used for frame slots

	out     strings.Builder
	steps   int64
	loads   int64
	stores  int64
	maxStep int64

	// Cooperative cancellation (see SetRunHook): hookLeft counts down to
	// the next check.
	hook      func(steps int64) error
	hookEvery int64
	hookLeft  int64

	profile *Profile
}

// wordBytes is the size of every scalar value.
const wordBytes = 8

// memSize is the flat memory arena size (16 MiB), ample for all workloads.
const memSize = 16 << 20

// New creates a machine for mod with globals laid out and initialized.
func New(mod *ir.Module) *Machine {
	m := &Machine{
		mod:        mod,
		mem:        make([]byte, memSize),
		globalAddr: make(map[string]int64),
		maxStep:    2_000_000_000,
		profile:    &Profile{Counts: make(map[string]map[int]int64)},
	}
	addr := int64(wordBytes) // keep address 0 unused
	for _, g := range mod.Globals {
		m.globalAddr[g.Name] = addr
		for i, v := range g.InitInt {
			m.storeInt(addr+int64(i)*wordBytes, v)
		}
		for i, v := range g.InitFlt {
			m.storeFloat(addr+int64(i)*wordBytes, v)
		}
		addr += g.Words * wordBytes
	}
	m.heapTop = addr
	return m
}

// SetStepLimit bounds the number of dynamic IR instructions (default 2e9).
func (m *Machine) SetStepLimit(n int64) { m.maxStep = n }

// DefaultHookInterval is the step cadence used by SetRunHook when the
// caller passes every <= 0.
const DefaultHookInterval = 1024

// SetRunHook installs a cooperative cancellation check: hook is called
// every `every` dynamic IR instructions (DefaultHookInterval when every
// <= 0) with the current step count, and a non-nil return aborts the run
// with that error — conventionally a trap.KindCancelled trap, so daemon
// deadlines and the step-limit watchdog share one abort mechanism. A nil
// hook clears it.
func (m *Machine) SetRunHook(hook func(steps int64) error, every int64) {
	if every <= 0 {
		every = DefaultHookInterval
	}
	m.hook = hook
	m.hookEvery = every
	m.hookLeft = every
}

// GlobalAddr returns the base address assigned to global name.
func (m *Machine) GlobalAddr(name string) int64 { return m.globalAddr[name] }

// ReadGlobalInt reads word idx of an integer global after a run.
func (m *Machine) ReadGlobalInt(name string, idx int64) int64 {
	return m.loadInt(m.globalAddr[name] + idx*wordBytes)
}

// ReadGlobalFloat reads word idx of a float global after a run.
func (m *Machine) ReadGlobalFloat(name string, idx int64) float64 {
	return m.loadFloat(m.globalAddr[name] + idx*wordBytes)
}

func (m *Machine) storeInt(addr int64, v int64) {
	for i := 0; i < 8; i++ {
		m.mem[addr+int64(i)] = byte(v >> (8 * uint(i)))
	}
}

func (m *Machine) loadInt(addr int64) int64 {
	var v int64
	for i := 7; i >= 0; i-- {
		v = v<<8 | int64(m.mem[addr+int64(i)])
	}
	return v
}

func (m *Machine) storeFloat(addr int64, v float64) {
	m.storeInt(addr, int64(f2b(v)))
}

func (m *Machine) loadFloat(addr int64) float64 {
	return b2f(uint64(m.loadInt(addr)))
}

// Run executes main and returns the result.
func (m *Machine) Run() (*Result, error) {
	mainFn := m.mod.Lookup("main")
	if mainFn == nil {
		return nil, fmt.Errorf("interp: no main function")
	}
	ret, err := m.callFunc(mainFn, nil)
	if err != nil {
		return nil, err
	}
	return &Result{
		Ret:     ret.i,
		Output:  m.out.String(),
		Steps:   m.steps,
		Loads:   m.loads,
		Stores:  m.stores,
		Profile: m.profile,
	}, nil
}

func (m *Machine) callFunc(fn *ir.Func, args []value) (value, error) {
	if len(args) != len(fn.Params) {
		return value{}, fmt.Errorf("interp: %s: got %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	regs := make([]value, fn.NumVRegs())
	for i, p := range fn.Params {
		regs[p] = args[i]
	}
	// Allocate frame-local slots.
	slotAddrs := make([]int64, len(fn.LocalSlots))
	frameBase := m.heapTop
	for i, words := range fn.LocalSlots {
		slotAddrs[i] = m.heapTop
		m.heapTop += words * wordBytes
	}
	defer func() { m.heapTop = frameBase }()

	counts := m.profile.Counts[fn.Name]
	if counts == nil {
		counts = make(map[int]int64)
		m.profile.Counts[fn.Name] = counts
	}

	blk := fn.Entry
	for {
		counts[blk.ID]++
		for _, in := range blk.Instrs {
			m.steps++
			if m.steps > m.maxStep {
				return value{}, trap.New(trap.KindStepLimit, "interp", "step limit exceeded in %s", fn.Name)
			}
			if m.hook != nil {
				m.hookLeft--
				if m.hookLeft <= 0 {
					m.hookLeft = m.hookEvery
					if err := m.hook(m.steps); err != nil {
						return value{}, err
					}
				}
			}
			switch in.Op {
			case ir.OpNop:
			case ir.OpConst:
				if in.IsFloat {
					regs[in.Dst] = value{f: in.FImm}
				} else {
					regs[in.Dst] = value{i: in.Imm}
				}
			case ir.OpCopy:
				regs[in.Dst] = regs[in.Args[0]]
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
				ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNor,
				ir.OpShl, ir.OpShrA, ir.OpShrL,
				ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE,
				ir.OpCmpGT, ir.OpCmpGE:
				a := regs[in.Args[0]].i
				var b int64
				if in.ImmArg {
					b = in.Imm
				} else {
					b = regs[in.Args[1]].i
				}
				v, err := intALUOp(in.Op, a, b)
				if err != nil {
					return value{}, fmt.Errorf("interp: %w in %s", err, fn.Name)
				}
				regs[in.Dst] = value{i: v}
			case ir.OpFAdd:
				regs[in.Dst] = value{f: regs[in.Args[0]].f + regs[in.Args[1]].f}
			case ir.OpFSub:
				regs[in.Dst] = value{f: regs[in.Args[0]].f - regs[in.Args[1]].f}
			case ir.OpFMul:
				regs[in.Dst] = value{f: regs[in.Args[0]].f * regs[in.Args[1]].f}
			case ir.OpFDiv:
				regs[in.Dst] = value{f: regs[in.Args[0]].f / regs[in.Args[1]].f}
			case ir.OpFNeg:
				regs[in.Dst] = value{f: -regs[in.Args[0]].f}
			case ir.OpFCmpEQ:
				regs[in.Dst] = value{i: b2i(regs[in.Args[0]].f == regs[in.Args[1]].f)}
			case ir.OpFCmpNE:
				regs[in.Dst] = value{i: b2i(regs[in.Args[0]].f != regs[in.Args[1]].f)}
			case ir.OpFCmpLT:
				regs[in.Dst] = value{i: b2i(regs[in.Args[0]].f < regs[in.Args[1]].f)}
			case ir.OpFCmpLE:
				regs[in.Dst] = value{i: b2i(regs[in.Args[0]].f <= regs[in.Args[1]].f)}
			case ir.OpFCmpGT:
				regs[in.Dst] = value{i: b2i(regs[in.Args[0]].f > regs[in.Args[1]].f)}
			case ir.OpFCmpGE:
				regs[in.Dst] = value{i: b2i(regs[in.Args[0]].f >= regs[in.Args[1]].f)}
			case ir.OpCvtIF:
				regs[in.Dst] = value{f: float64(regs[in.Args[0]].i)}
			case ir.OpCvtFI:
				regs[in.Dst] = value{i: int64(regs[in.Args[0]].f)}
			case ir.OpLoad:
				addr := regs[in.Args[0]].i + in.Imm
				if addr < 0 || addr+8 > memSize {
					return value{}, trap.New(trap.KindOutOfBounds, "interp", "load out of range at %#x in %s", addr, fn.Name)
				}
				m.loads++
				if in.IsFloat {
					regs[in.Dst] = value{f: m.loadFloat(addr)}
				} else {
					regs[in.Dst] = value{i: m.loadInt(addr)}
				}
			case ir.OpStore:
				addr := regs[in.Args[1]].i + in.Imm
				if addr < 0 || addr+8 > memSize {
					return value{}, trap.New(trap.KindOutOfBounds, "interp", "store out of range at %#x in %s", addr, fn.Name)
				}
				m.stores++
				if in.IsFloat {
					m.storeFloat(addr, regs[in.Args[0]].f)
				} else {
					m.storeInt(addr, regs[in.Args[0]].i)
				}
			case ir.OpAddrGlobal:
				base, ok := m.globalAddr[in.Sym]
				if !ok {
					return value{}, fmt.Errorf("interp: unknown global %q", in.Sym)
				}
				regs[in.Dst] = value{i: base + in.Imm}
			case ir.OpAddrLocal:
				regs[in.Dst] = value{i: slotAddrs[in.Imm]}
			case ir.OpCall:
				res, err := m.call(in, regs)
				if err != nil {
					return value{}, err
				}
				if in.Dst != 0 {
					regs[in.Dst] = res
				}
			case ir.OpBr:
				if regs[in.Args[0]].i != 0 {
					blk = blk.Succs[0]
				} else {
					blk = blk.Succs[1]
				}
			case ir.OpJmp:
				blk = blk.Succs[0]
			case ir.OpRet:
				if len(in.Args) > 0 {
					return regs[in.Args[0]], nil
				}
				return value{}, nil
			default:
				return value{}, fmt.Errorf("interp: unknown op %s", in.Op)
			}
			if in.Op == ir.OpBr || in.Op == ir.OpJmp {
				break
			}
		}
	}
}

func (m *Machine) call(in *ir.Instr, regs []value) (value, error) {
	switch in.Sym {
	case "print":
		fmt.Fprintf(&m.out, "%d\n", regs[in.Args[0]].i)
		return value{}, nil
	case "printf_":
		fmt.Fprintf(&m.out, "%.6g\n", regs[in.Args[0]].f)
		return value{}, nil
	}
	callee := m.mod.Lookup(in.Sym)
	if callee == nil {
		return value{}, fmt.Errorf("interp: call to unknown function %q", in.Sym)
	}
	args := make([]value, len(in.Args))
	for i, a := range in.Args {
		args[i] = regs[a]
	}
	return m.callFunc(callee, args)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func f2b(f float64) uint64 {
	return floatBits(f)
}

func b2f(b uint64) float64 {
	return floatFromBits(b)
}

// intALUOp evaluates an integer ALU operation.
func intALUOp(op ir.Op, a, b int64) (int64, error) {
	switch op {
	case ir.OpAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpMul:
		return a * b, nil
	case ir.OpDiv:
		if b == 0 {
			return 0, trap.New(trap.KindDivideByZero, "interp", "division by zero")
		}
		return a / b, nil
	case ir.OpRem:
		if b == 0 {
			return 0, trap.New(trap.KindDivideByZero, "interp", "remainder by zero")
		}
		return a % b, nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	case ir.OpNor:
		return ^(a | b), nil
	case ir.OpShl:
		return a << uint(b&63), nil
	case ir.OpShrA:
		return a >> uint(b&63), nil
	case ir.OpShrL:
		return int64(uint64(a) >> uint(b&63)), nil
	case ir.OpCmpEQ:
		return b2i(a == b), nil
	case ir.OpCmpNE:
		return b2i(a != b), nil
	case ir.OpCmpLT:
		return b2i(a < b), nil
	case ir.OpCmpLE:
		return b2i(a <= b), nil
	case ir.OpCmpGT:
		return b2i(a > b), nil
	case ir.OpCmpGE:
		return b2i(a >= b), nil
	}
	return 0, fmt.Errorf("bad ALU op %s", op)
}
