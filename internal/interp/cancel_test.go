package interp_test

import (
	"testing"

	"fpint/internal/interp"
	"fpint/internal/trap"
)

const cancelLoopSrc = `
int main() {
	int s = 0;
	for (int i = 0; i < 1000000; i++) s = s + i;
	return s;
}`

// TestInterpRunHookCancels: the interpreter's cooperative run hook must
// abort the step loop with the hook's error, classified as the trap the
// hook raised, at the configured cadence.
func TestInterpRunHookCancels(t *testing.T) {
	mod := compile(t, cancelLoopSrc)
	m := interp.New(mod)
	var calls int
	var lastSteps int64
	m.SetRunHook(func(steps int64) error {
		calls++
		lastSteps = steps
		if calls >= 2 {
			return trap.New(trap.KindCancelled, "interp", "deadline exceeded at step %d", steps)
		}
		return nil
	}, 500)
	_, err := m.Run()
	if got := trap.KindOf(err); got != trap.KindCancelled {
		t.Fatalf("cancelled run classified %v (err=%v), want cancelled", got, err)
	}
	if calls != 2 || lastSteps != 1000 {
		t.Errorf("hook cadence wrong: %d calls, last at step %d (want 2 calls, step 1000)", calls, lastSteps)
	}
}

// TestInterpRunHookNeutralWhenIdle: an armed hook that never trips leaves
// the run's result, step count, and profile untouched.
func TestInterpRunHookNeutralWhenIdle(t *testing.T) {
	mod := compile(t, cancelLoopSrc)
	bare, err := interp.New(mod).Run()
	if err != nil {
		t.Fatalf("bare run: %v", err)
	}
	m := interp.New(mod)
	m.SetRunHook(func(int64) error { return nil }, 0) // 0 = default cadence
	hooked, err := m.Run()
	if err != nil {
		t.Fatalf("hooked run: %v", err)
	}
	if hooked.Ret != bare.Ret || hooked.Steps != bare.Steps || hooked.Output != bare.Output {
		t.Errorf("hooked run differs: ret %d/%d steps %d/%d", hooked.Ret, bare.Ret, hooked.Steps, bare.Steps)
	}
}
