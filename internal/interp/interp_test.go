package interp_test

import (
	"testing"

	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/irgen"
	"fpint/internal/lang"
	"fpint/internal/opt"
)

// compile parses, checks, lowers, and optimizes src.
func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := irgen.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opt.Optimize(mod)
	for _, fn := range mod.Funcs {
		if err := fn.Verify(); err != nil {
			t.Fatalf("verify after opt: %v\n%s", err, fn)
		}
	}
	return mod
}

func run(t *testing.T, src string) *interp.Result {
	t.Helper()
	mod := compile(t, src)
	res, err := interp.New(mod).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestReturnConstant(t *testing.T) {
	res := run(t, `int main() { return 42; }`)
	if res.Ret != 42 {
		t.Fatalf("ret = %d, want 42", res.Ret)
	}
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
int main() {
	int a = 7;
	int b = 3;
	return a*b + a/b - a%b + (a<<b) + (a>>1) + (a&b) + (a|b) + (a^b) + ~a + -b;
}`)
	// 21 + 2 - 1 + 56 + 3 + 3 + 7 + 4 + (-8) + (-3) = 84
	if res.Ret != 84 {
		t.Fatalf("ret = %d, want 84", res.Ret)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	res := run(t, `
int total;
int a[10];
int main() {
	for (int i = 0; i < 10; i++) a[i] = i*i;
	total = 0;
	for (int i = 0; i < 10; i++) total += a[i];
	return total;
}`)
	if res.Ret != 285 {
		t.Fatalf("ret = %d, want 285", res.Ret)
	}
}

func TestGlobalInitializers(t *testing.T) {
	res := run(t, `
int k = 5;
int tab[4] = {10, 20, 30, 40};
int main() { return k + tab[2]; }`)
	if res.Ret != 35 {
		t.Fatalf("ret = %d, want 35", res.Ret)
	}
}

func TestFunctionCalls(t *testing.T) {
	res := run(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main() { return fib(12); }`)
	if res.Ret != 144 {
		t.Fatalf("fib(12) = %d, want 144", res.Ret)
	}
}

func TestWhileAndBreakContinue(t *testing.T) {
	res := run(t, `
int main() {
	int s = 0;
	int i = 0;
	while (1) {
		i++;
		if (i > 100) break;
		if (i % 2 == 0) continue;
		s += i;
	}
	return s;
}`)
	if res.Ret != 2500 {
		t.Fatalf("ret = %d, want 2500", res.Ret)
	}
}

func TestDoWhile(t *testing.T) {
	res := run(t, `
int main() {
	int i = 0;
	int s = 0;
	do { s += i; i++; } while (i < 5);
	return s;
}`)
	if res.Ret != 10 {
		t.Fatalf("ret = %d, want 10", res.Ret)
	}
}

func TestShortCircuit(t *testing.T) {
	res := run(t, `
int g;
int bump() { g++; return 0; }
int main() {
	g = 0;
	int a = 0 && bump();
	int b = 1 || bump();
	int c = 1 && bump();
	int d = 0 || bump();
	return g*100 + a*8 + b*4 + c*2 + d;
}`)
	// bump runs twice (c and d): g=2; a=0,b=1,c=0,d=0 -> 204
	if res.Ret != 204 {
		t.Fatalf("ret = %d, want 204", res.Ret)
	}
}

func TestTernaryAndUnary(t *testing.T) {
	res := run(t, `
int main() {
	int x = 5;
	int y = x > 3 ? 10 : 20;
	int z = !x + !0;
	return y + z;
}`)
	if res.Ret != 11 {
		t.Fatalf("ret = %d, want 11", res.Ret)
	}
}

func TestFloatArithmetic(t *testing.T) {
	res := run(t, `
float fsum(float a, float b) { return a + b; }
int main() {
	float x = 1.5;
	float y = 2.25;
	float z = fsum(x, y) * 4.0;
	return (int) z;
}`)
	if res.Ret != 15 {
		t.Fatalf("ret = %d, want 15", res.Ret)
	}
}

func TestFloatArraysAndConversion(t *testing.T) {
	res := run(t, `
float v[8];
int main() {
	for (int i = 0; i < 8; i++) v[i] = (float) i * 0.5;
	float s = 0.0;
	for (int i = 0; i < 8; i++) s += v[i];
	return (int)(s * 10.0);
}`)
	if res.Ret != 140 {
		t.Fatalf("ret = %d, want 140", res.Ret)
	}
}

func TestPrintBuiltins(t *testing.T) {
	res := run(t, `
int main() {
	print(7);
	printf_(2.5);
	return 0;
}`)
	if res.Output != "7\n2.5\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestLocalArrays(t *testing.T) {
	res := run(t, `
int sum3(int v[]) { return v[0] + v[1] + v[2]; }
int main() {
	int buf[3];
	buf[0] = 4; buf[1] = 8; buf[2] = 15;
	return sum3(buf);
}`)
	if res.Ret != 27 {
		t.Fatalf("ret = %d, want 27", res.Ret)
	}
}

func TestProfileCounts(t *testing.T) {
	src := `
int main() {
	int s = 0;
	for (int i = 0; i < 37; i++) s += i;
	return s;
}`
	res := run(t, src)
	if res.Ret != 666 {
		t.Fatalf("ret = %d, want 666", res.Ret)
	}
	if !res.Profile.Covered("main") {
		t.Fatalf("profile does not cover main")
	}
	// Some block must have executed 37 times (the loop body).
	found := false
	for _, c := range res.Profile.Counts["main"] {
		if c == 37 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no block with count 37: %v", res.Profile.Counts["main"])
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	res := run(t, `
int a[4];
int main() {
	int x = 10;
	x += 5; x -= 2; x *= 3; x /= 2; x %= 11;
	x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5;
	a[1] = 100;
	a[1] += 10;
	a[1]++;
	++a[1];
	a[1]--;
	return x * 1000 + a[1];
}`)
	// x: 10+5=15,13,39,19,8,32,16,24,8,13 -> 13; a[1]=111
	if res.Ret != 13111 {
		t.Fatalf("ret = %d, want 13111", res.Ret)
	}
}

func TestNegativeNumbersAndShifts(t *testing.T) {
	res := run(t, `
int main() {
	int x = -16;
	int a = x >> 2;
	int b = x / 4;
	return a*100 + b;
}`)
	if res.Ret != -404 {
		t.Fatalf("ret = %d, want -404", res.Ret)
	}
}

func TestHexLiterals(t *testing.T) {
	res := run(t, `int main() { return 0xFF & 0x0F0F; }`)
	if res.Ret != 0x0F {
		t.Fatalf("ret = %d, want 15", res.Ret)
	}
}

func TestDeepLoops(t *testing.T) {
	res := run(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 5; i++)
		for (int j = 0; j < 5; j++)
			for (int k = 0; k < 5; k++)
				s += i*25 + j*5 + k;
	return s;
}`)
	if res.Ret != 7750 {
		t.Fatalf("ret = %d, want 7750", res.Ret)
	}
}
