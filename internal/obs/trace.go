package obs

import (
	"fmt"
	"io"
	"strings"
)

// TraceEvent is one event in the Chrome trace-event format (the JSON array
// flavor understood by chrome://tracing and Perfetto). Timestamps and
// durations are in trace "microseconds"; the simulators map one cycle to
// one microsecond so the viewer's time axis reads directly in cycles.
type TraceEvent struct {
	Name string            // event name (shown on the slice)
	Cat  string            // comma-separated categories
	Ph   string            // phase: "X" complete, "i" instant, "M" metadata
	Ts   int64             // start timestamp
	Dur  int64             // duration (complete events only)
	Pid  int               // process id (track group)
	Tid  int               // thread id (track)
	Args map[string]string // extra key/value payload
}

// ThreadName returns the metadata event that names a track in the viewer.
func ThreadName(pid, tid int, name string) TraceEvent {
	return TraceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]string{"name": name},
	}
}

// Instant returns a thread-scoped instant event (a marker tick).
func Instant(name string, ts int64, pid, tid int) TraceEvent {
	return TraceEvent{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid}
}

// Span returns a complete ("X") event covering [ts, ts+dur).
func Span(name, cat string, ts, dur int64, pid, tid int) TraceEvent {
	if dur < 0 {
		dur = 0
	}
	return TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid}
}

// WriteTrace encodes events as a Chrome trace-event JSON document:
//
//	{"traceEvents": [...], "displayTimeUnit": "ms"}
//
// Field order within each event is fixed and map arguments are emitted in
// sorted key order, so the output is deterministic.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	var sb strings.Builder
	sb.WriteString("{\"traceEvents\": [\n")
	for i, e := range events {
		if i > 0 {
			sb.WriteString(",\n")
		}
		sb.WriteString("  {")
		fmt.Fprintf(&sb, "\"name\": %s, \"ph\": %s", quote(e.Name), quote(e.Ph))
		if e.Cat != "" {
			fmt.Fprintf(&sb, ", \"cat\": %s", quote(e.Cat))
		}
		fmt.Fprintf(&sb, ", \"ts\": %d", e.Ts)
		if e.Ph == "X" {
			fmt.Fprintf(&sb, ", \"dur\": %d", e.Dur)
		}
		if e.Ph == "i" {
			// Thread-scoped instant: renders as a tick on its own track.
			sb.WriteString(`, "s": "t"`)
		}
		fmt.Fprintf(&sb, ", \"pid\": %d, \"tid\": %d", e.Pid, e.Tid)
		if len(e.Args) > 0 {
			sb.WriteString(`, "args": {`)
			for j, k := range sortedKeys(e.Args) {
				if j > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%s: %s", quote(k), quote(e.Args[k]))
			}
			sb.WriteByte('}')
		}
		sb.WriteByte('}')
	}
	sb.WriteString("\n], \"displayTimeUnit\": \"ms\"}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
