package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceEvent is one event in the Chrome trace-event format (the JSON array
// flavor understood by chrome://tracing and Perfetto). Timestamps and
// durations are in trace "microseconds"; the simulators map one cycle to
// one microsecond so the viewer's time axis reads directly in cycles.
type TraceEvent struct {
	Name string            // event name (shown on the slice)
	Cat  string            // comma-separated categories
	Ph   string            // phase: "X" complete, "i" instant, "M" metadata, "C" counter
	Ts   int64             // start timestamp
	Dur  int64             // duration (complete events only)
	Pid  int               // process id (track group)
	Tid  int               // thread id (track)
	Args map[string]string // extra key/value payload

	// Num holds numeric argument series. Counter ("C") events require
	// their values to be JSON numbers — the viewer builds one counter
	// track per event name with one series per key — so they live here
	// instead of the string Args map. Both maps may be set; keys are
	// emitted in one sorted order.
	Num map[string]float64
}

// ThreadName returns the metadata event that names a track in the viewer.
func ThreadName(pid, tid int, name string) TraceEvent {
	return TraceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]string{"name": name},
	}
}

// Instant returns a thread-scoped instant event (a marker tick).
func Instant(name string, ts int64, pid, tid int) TraceEvent {
	return TraceEvent{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid}
}

// Span returns a complete ("X") event covering [ts, ts+dur).
func Span(name, cat string, ts, dur int64, pid, tid int) TraceEvent {
	if dur < 0 {
		dur = 0
	}
	return TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid}
}

// CounterEvent returns a counter ("C") event: the viewer renders one
// counter track named name with one stacked series per key in values. Emit
// one event per sample point; the track steps to the new values at ts.
// (Named CounterEvent because Counter is the registry's metric type.)
func CounterEvent(name string, ts int64, pid int, values map[string]float64) TraceEvent {
	return TraceEvent{Name: name, Ph: "C", Ts: ts, Pid: pid, Num: values}
}

// SortEventsByTs stable-sorts events by timestamp, keeping metadata ("M")
// events first so track names are declared before any slice references
// them. Merging event streams from independent producers (pipeline
// journal, timeline counters, compiler spans) and sorting keeps the
// document in the ts order the trace viewers expect.
func SortEventsByTs(events []TraceEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			return false // metadata keeps producer order
		}
		return events[i].Ts < events[j].Ts
	})
}

// WriteTrace encodes events as a Chrome trace-event JSON document:
//
//	{"traceEvents": [...], "displayTimeUnit": "ms"}
//
// Field order within each event is fixed and map arguments are emitted in
// sorted key order, so the output is deterministic.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	var sb strings.Builder
	sb.WriteString("{\"traceEvents\": [\n")
	for i, e := range events {
		if i > 0 {
			sb.WriteString(",\n")
		}
		sb.WriteString("  {")
		fmt.Fprintf(&sb, "\"name\": %s, \"ph\": %s", quote(e.Name), quote(e.Ph))
		if e.Cat != "" {
			fmt.Fprintf(&sb, ", \"cat\": %s", quote(e.Cat))
		}
		fmt.Fprintf(&sb, ", \"ts\": %d", e.Ts)
		if e.Ph == "X" {
			fmt.Fprintf(&sb, ", \"dur\": %d", e.Dur)
		}
		if e.Ph == "i" {
			// Thread-scoped instant: renders as a tick on its own track.
			sb.WriteString(`, "s": "t"`)
		}
		fmt.Fprintf(&sb, ", \"pid\": %d, \"tid\": %d", e.Pid, e.Tid)
		if len(e.Args)+len(e.Num) > 0 {
			sb.WriteString(`, "args": {`)
			keys := make([]string, 0, len(e.Args)+len(e.Num))
			keys = append(keys, sortedKeys(e.Args)...)
			keys = append(keys, sortedKeys(e.Num)...)
			sort.Strings(keys)
			for j, k := range keys {
				if j > 0 {
					sb.WriteString(", ")
				}
				if v, ok := e.Num[k]; ok {
					fmt.Fprintf(&sb, "%s: %s", quote(k), formatFloat(v))
				} else {
					fmt.Fprintf(&sb, "%s: %s", quote(k), quote(e.Args[k]))
				}
			}
			sb.WriteByte('}')
		}
		sb.WriteByte('}')
	}
	sb.WriteString("\n], \"displayTimeUnit\": \"ms\"}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
