package runstore

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fpint/internal/obs"
)

// Gate: the regression tribunal. Guest cycles are deterministic, so they
// are judged exactly (default tolerance 0%); host metrics are noisy, so
// they are judged on the min over repeated samples against a generous
// percentage threshold, and tiny runs below a wall-time floor are not
// judged at all. This generalizes the `fpibench -baseline` cycle
// comparison: same discipline, applied to any record pair, both guest and
// host side.

// GateOptions tunes the comparison.
type GateOptions struct {
	// GuestTolerancePct is the maximum tolerated guest-cycle increase in
	// percent. Guest cycles are byte-deterministic, so the default of 0
	// (exact) is the honest setting; a nonzero value is for intentionally
	// loose gates.
	GuestTolerancePct float64
	// HostTolerancePct is the maximum tolerated increase in min wall time
	// or min allocations, in percent. Host numbers are noisy; the default
	// (when 0 is passed, DefaultHostTolerancePct) absorbs scheduler and GC
	// jitter while still catching order-of-magnitude regressions.
	HostTolerancePct float64
	// MinHostWallNS is the wall-time floor below which host wall
	// regressions are ignored: a 2× slowdown of a 40µs run is measurement
	// noise, not a finding. Defaults to DefaultMinHostWallNS when 0.
	MinHostWallNS int64
}

// Default gate thresholds.
const (
	DefaultHostTolerancePct = 25.0
	DefaultMinHostWallNS    = int64(2 * time.Millisecond)
)

func (o GateOptions) withDefaults() GateOptions {
	if o.HostTolerancePct == 0 {
		o.HostTolerancePct = DefaultHostTolerancePct
	}
	if o.MinHostWallNS == 0 {
		o.MinHostWallNS = DefaultMinHostWallNS
	}
	return o
}

// Delta is one compared metric of one trend line.
type Delta struct {
	Key       Key
	Metric    string // obs.MetricGuestCycles, obs.MetricHostMinWallNS, obs.MetricHostMinAllocs
	Old, New  float64
	Tolerance float64 // percent allowed before Regressed
	Regressed bool
}

// Pct returns the relative change in percent (positive = worse).
func (d Delta) Pct() float64 {
	if d.Old == 0 {
		return 0
	}
	return 100 * (d.New/d.Old - 1)
}

// GateReport is the full comparison outcome.
type GateReport struct {
	Deltas  []Delta
	Skipped []string // keys present on only one side, in display order
	Opts    GateOptions
}

// Regressions returns the deltas that breached their tolerance.
func (g *GateReport) Regressions() []Delta {
	var out []Delta
	for _, d := range g.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Gate compares the latest record per trend line on each side. Keys present
// on only one side are reported as skipped, not failed: the gate judges
// performance drift, not record-set drift.
func Gate(baseline, current []Record, opts GateOptions) *GateReport {
	opts = opts.withDefaults()
	base := LatestPerKey(baseline)
	cur := LatestPerKey(current)
	rep := &GateReport{Opts: opts}

	var keys []Key
	skipped := make(map[Key]bool)
	for k := range base {
		if _, ok := cur[k]; ok {
			keys = append(keys, k)
		} else {
			skipped[k] = true
		}
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			skipped[k] = true
		}
	}
	SortKeys(keys)
	var skippedKeys []Key
	for k := range skipped {
		skippedKeys = append(skippedKeys, k)
	}
	SortKeys(skippedKeys)
	for _, k := range skippedKeys {
		rep.Skipped = append(rep.Skipped, k.String())
	}

	for _, k := range keys {
		b, c := base[k], cur[k]
		if k.Kind != KindGoBench {
			d := Delta{Key: k, Metric: obs.MetricGuestCycles,
				Old: float64(b.Guest.Cycles), New: float64(c.Guest.Cycles),
				Tolerance: opts.GuestTolerancePct}
			d.Regressed = d.Pct() > d.Tolerance
			rep.Deltas = append(rep.Deltas, d)
		}
		if b.Host == nil || c.Host == nil {
			continue
		}
		bw, cw := b.Host.MinWallNS(), c.Host.MinWallNS()
		if bw > 0 && cw > 0 {
			d := Delta{Key: k, Metric: obs.MetricHostMinWallNS,
				Old: float64(bw), New: float64(cw), Tolerance: opts.HostTolerancePct}
			// Below the noise floor on both sides, wall time is judged
			// informational only.
			d.Regressed = d.Pct() > d.Tolerance &&
				(bw >= opts.MinHostWallNS || cw >= opts.MinHostWallNS)
			rep.Deltas = append(rep.Deltas, d)
		}
		ba, ca := b.Host.MinAllocs(), c.Host.MinAllocs()
		if ba > 0 || ca > 0 {
			d := Delta{Key: k, Metric: obs.MetricHostMinAllocs,
				Old: float64(ba), New: float64(ca), Tolerance: opts.HostTolerancePct}
			d.Regressed = d.Pct() > d.Tolerance
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	sort.SliceStable(rep.Deltas, func(i, j int) bool {
		a, b := rep.Deltas[i], rep.Deltas[j]
		if a.Key != b.Key {
			ks := []Key{a.Key, b.Key}
			SortKeys(ks)
			return ks[0] == a.Key
		}
		return a.Metric < b.Metric
	})
	return rep
}

// WriteText renders the gate report as an aligned table plus a verdict
// line. Deterministic for deterministic inputs.
func (g *GateReport) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %-17s %14s %14s %9s %s\n",
		"KEY", "METRIC", "BASELINE", "CURRENT", "DELTA", "VERDICT")
	for _, d := range g.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = fmt.Sprintf("REGRESSED (>%.0f%%)", d.Tolerance)
		}
		fmt.Fprintf(&sb, "%-40s %-17s %14.0f %14.0f %+8.2f%% %s\n",
			d.Key.String(), d.Metric, d.Old, d.New, d.Pct(), verdict)
	}
	for _, s := range g.Skipped {
		fmt.Fprintf(&sb, "%-40s (only one side has records; skipped)\n", s)
	}
	reg := g.Regressions()
	if len(reg) == 0 {
		fmt.Fprintf(&sb, "gate: ok — %d metrics compared, no regressions (guest tol %.1f%%, host tol %.1f%%)\n",
			len(g.Deltas), g.Opts.GuestTolerancePct, g.Opts.HostTolerancePct)
	} else {
		fmt.Fprintf(&sb, "gate: FAILED — %d of %d metrics regressed\n", len(reg), len(g.Deltas))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
