package runstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/obs/hostmetrics"
)

func testGuest(cycles int64) Guest {
	return Guest{
		Ret: 42, DynInstrs: 1000, Cycles: cycles,
		IssueActive: cycles - 30,
		Stalls:      map[string]int64{"raw-wait": 20, "dcache": 10},
		OffloadPct:  12.5, Copies: 3, Dups: 1, Loads: 100, Stores: 50,
	}
}

func testRecord(rev string, cycles int64) Record {
	r := Record{
		Kind: KindSim, Rev: rev, Program: "matmul",
		SourceSHA: SourceHash([]byte("int main() {}")),
		Config:    "4-way", Scheme: "advanced", Analysis: true,
		Guest: testGuest(cycles),
		Host: &Host{
			Env: hostmetrics.Env{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", NumCPU: 8},
			Samples: []hostmetrics.Sample{
				{WallNS: 5_000_000, Allocs: 1200, Bytes: 80_000},
				{WallNS: 4_000_000, Allocs: 1180, Bytes: 79_000},
				{WallNS: 6_000_000, Allocs: 1210, Bytes: 81_000},
			},
		},
		CreatedAt: "2026-08-08T00:00:00Z",
	}
	r.Seal()
	return r
}

func TestHashStableAcrossHostNoise(t *testing.T) {
	a := testRecord("abc123def456", 5000)
	b := testRecord("abc123def456", 5000)
	// Perturb every host-noise field: the hash must not move.
	b.CreatedAt = "2030-01-01T12:34:56Z"
	b.Label = "a different annotation"
	b.Host.Samples[0].WallNS = 999_999_999
	b.Host.Samples[1].Allocs = 7
	b.Hash = ""
	b.Seal()
	if a.Hash != b.Hash {
		t.Errorf("host-noise fields leaked into the content hash:\n a=%s\n b=%s", a.Hash, b.Hash)
	}
	if !strings.HasPrefix(a.Hash, "sha256:") || len(a.Hash) != len("sha256:")+64 {
		t.Errorf("hash shape wrong: %q", a.Hash)
	}
}

func TestHashSensitiveToContent(t *testing.T) {
	base := testRecord("abc123def456", 5000)
	mutate := []func(*Record){
		func(r *Record) { r.Guest.Cycles++ },
		func(r *Record) { r.Rev = "feedfeedfeed" },
		func(r *Record) { r.Config = "8-way" },
		func(r *Record) { r.Scheme = "basic" },
		func(r *Record) { r.Analysis = false },
		func(r *Record) { r.FaultMode = "seed=1,kind=any,rate=0.001" },
		func(r *Record) { r.SourceSHA = SourceHash([]byte("int main() { return 1; }")) },
		func(r *Record) { r.Guest.Stalls["raw-wait"]++ },
	}
	for i, m := range mutate {
		r := testRecord("abc123def456", 5000)
		m(&r)
		r.Hash = ""
		r.Seal()
		if r.Hash == base.Hash {
			t.Errorf("mutation %d did not change the content hash", i)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "runs.jsonl")
	s := Open(path)
	r1 := testRecord("abc123def456", 5000)
	r2 := testRecord("abc123def456", 5000)
	r2.Config = "8-way"
	r2.Hash = ""
	r2.Seal()
	if err := s.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(r2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records, want 2", len(got))
	}
	if got[0].Seq != 0 || got[1].Seq != 1 {
		t.Errorf("Seq not assigned in append order: %d, %d", got[0].Seq, got[1].Seq)
	}
	if got[0].Hash != r1.Hash || got[1].Hash != r2.Hash {
		t.Error("hashes did not survive the round trip")
	}
	if got[0].Guest.Stalls["raw-wait"] != 20 || got[0].Host == nil || len(got[0].Host.Samples) != 3 {
		t.Errorf("record content did not survive the round trip: %+v", got[0])
	}
	if got[0].CreatedAt != "2026-08-08T00:00:00Z" {
		t.Errorf("CreatedAt lost: %q", got[0].CreatedAt)
	}
}

func TestLoadMissingStoreIsEmpty(t *testing.T) {
	s := Open(filepath.Join(t.TempDir(), "nope.jsonl"))
	recs, err := s.Load()
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing store: recs=%d err=%v, want empty and nil", len(recs), err)
	}
}

func TestLoadRejectsTamperedStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	s := Open(path)
	if err := s.Append(testRecord("abc123def456", 5000)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Quietly improve our numbers: flip a digit of the cycle count.
	tampered := strings.Replace(string(data), `"cycles":5000`, `"cycles":4000`, 1)
	if tampered == string(data) {
		t.Fatal("test setup: cycle field not found in encoded record")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("tampered store loaded without error (err=%v)", err)
	}
}

func TestAppendRejectsLyingHash(t *testing.T) {
	r := testRecord("abc123def456", 5000)
	r.Guest.Cycles = 1 // content no longer matches the sealed hash
	s := Open(filepath.Join(t.TempDir(), "runs.jsonl"))
	if err := s.Append(r); err == nil {
		t.Fatal("Append accepted a record whose hash does not match its content")
	}
}

func TestLedgerClosed(t *testing.T) {
	g := testGuest(5000)
	if !g.LedgerClosed() {
		t.Fatalf("test guest should close: cycles=%d active=%d stalls=%d",
			g.Cycles, g.IssueActive, g.StallTotal())
	}
	g.IssueActive--
	if g.LedgerClosed() {
		t.Fatal("broken ledger reported as closed")
	}
}

func TestSelection(t *testing.T) {
	r1 := testRecord("aaaa11112222", 5000)
	r2 := testRecord("aaaa11112222", 5000)
	r2.Config = "8-way"
	r2.Hash = ""
	r2.Seal()
	r3 := testRecord("bbbb33334444", 4800) // same key as r1, newer rev
	recs := []Record{r1, r2, r3}
	for i := range recs {
		recs[i].Seq = i
	}

	latest := LatestPerKey(recs)
	if len(latest) != 2 {
		t.Fatalf("LatestPerKey: %d keys, want 2", len(latest))
	}
	if got := latest[r1.Key()]; got.Rev != "bbbb33334444" {
		t.Errorf("latest for %v is rev %s, want bbbb33334444", r1.Key(), got.Rev)
	}

	at := AtRev(recs, "aaaa")
	if len(at) != 2 {
		t.Fatalf("AtRev(aaaa): %d records, want 2", len(at))
	}
	if got := AtRev(recs, "bbbb33334444"); len(got) != 1 || got[0].Guest.Cycles != 4800 {
		t.Fatalf("AtRev(full rev) = %v", got)
	}

	if got := FindHash(recs, r1.Hash[:len("sha256:")+8]); len(got) != 1 || got[0].Config != "4-way" {
		t.Fatalf("FindHash by prefix failed: %v", got)
	}
	if got := FindHash(recs, "sha"); got != nil {
		t.Fatalf("FindHash must refuse prefixes under 4 hex digits, got %v", got)
	}

	revs := Revs(recs)
	if len(revs) != 2 || revs[0] != "aaaa11112222" || revs[1] != "bbbb33334444" {
		t.Fatalf("Revs = %v", revs)
	}
}

func TestGateVerdicts(t *testing.T) {
	base := []Record{testRecord("aaaa11112222", 5000)}
	// Same guest, same host: clean gate.
	cur := []Record{testRecord("bbbb33334444", 5000)}
	rep := Gate(base, cur, GateOptions{})
	if len(rep.Regressions()) != 0 {
		t.Fatalf("identical records regressed: %+v", rep.Regressions())
	}

	// One guest cycle more: exact gate must fail (tolerance 0).
	worse := testRecord("bbbb33334444", 5001)
	rep = Gate(base, []Record{worse}, GateOptions{})
	reg := rep.Regressions()
	if len(reg) != 1 || reg[0].Metric != "guest.cycles" {
		t.Fatalf("1-cycle guest regression not caught: %+v", reg)
	}

	// Within a loose guest tolerance it passes again.
	rep = Gate(base, []Record{worse}, GateOptions{GuestTolerancePct: 1})
	if len(rep.Regressions()) != 0 {
		t.Fatalf("regression within tolerance still failed: %+v", rep.Regressions())
	}

	// Host wall blowup beyond threshold and above the noise floor.
	slow := testRecord("bbbb33334444", 5000)
	for i := range slow.Host.Samples {
		slow.Host.Samples[i].WallNS *= 10
	}
	rep = Gate(base, []Record{slow}, GateOptions{})
	reg = rep.Regressions()
	if len(reg) != 1 || reg[0].Metric != "host.min_wall_ns" {
		t.Fatalf("10x host wall regression not caught: %+v", reg)
	}

	// The same blowup under the wall-time floor is noise, not a finding.
	tiny := testRecord("aaaa11112222", 5000)
	tinySlow := testRecord("bbbb33334444", 5000)
	for i := range tiny.Host.Samples {
		tiny.Host.Samples[i].WallNS = 40_000 // 40µs
		tinySlow.Host.Samples[i].WallNS = 120_000
	}
	rep = Gate([]Record{tiny}, []Record{tinySlow}, GateOptions{})
	if len(rep.Regressions()) != 0 {
		t.Fatalf("sub-floor host jitter treated as regression: %+v", rep.Regressions())
	}

	// Alloc regression beyond threshold.
	leaky := testRecord("bbbb33334444", 5000)
	for i := range leaky.Host.Samples {
		leaky.Host.Samples[i].Allocs *= 3
	}
	rep = Gate(base, []Record{leaky}, GateOptions{})
	reg = rep.Regressions()
	if len(reg) != 1 || reg[0].Metric != "host.min_allocs" {
		t.Fatalf("3x alloc regression not caught: %+v", reg)
	}

	// Keys on one side only are skipped, not failed.
	other := testRecord("bbbb33334444", 5000)
	other.Program = "sieve"
	other.Hash = ""
	other.Seal()
	rep = Gate(base, []Record{other}, GateOptions{})
	if len(rep.Deltas) != 0 || len(rep.Skipped) != 2 {
		t.Fatalf("disjoint keys: deltas=%d skipped=%d, want 0/2", len(rep.Deltas), len(rep.Skipped))
	}
}

func TestGitRevision(t *testing.T) {
	dir := t.TempDir()
	git := filepath.Join(dir, ".git")
	if err := os.MkdirAll(filepath.Join(git, "refs", "heads"), 0o755); err != nil {
		t.Fatal(err)
	}
	rev := "0123456789abcdef0123456789abcdef01234567"
	os.WriteFile(filepath.Join(git, "HEAD"), []byte("ref: refs/heads/main\n"), 0o644)
	os.WriteFile(filepath.Join(git, "refs", "heads", "main"), []byte(rev+"\n"), 0o644)
	sub := filepath.Join(dir, "a", "b")
	os.MkdirAll(sub, 0o755)
	if got := GitRevision(sub); got != rev[:12] {
		t.Errorf("GitRevision(loose ref) = %q, want %q", got, rev[:12])
	}

	// Packed refs.
	os.Remove(filepath.Join(git, "refs", "heads", "main"))
	packed := "# pack-refs with: peeled fully-peeled sorted\nfeedfacefeedfacefeedfacefeedfacefeedface refs/heads/main\n"
	os.WriteFile(filepath.Join(git, "packed-refs"), []byte(packed), 0o644)
	if got := GitRevision(dir); got != "feedfacefeed" {
		t.Errorf("GitRevision(packed ref) = %q", got)
	}

	// Detached HEAD.
	os.WriteFile(filepath.Join(git, "HEAD"), []byte(rev+"\n"), 0o644)
	if got := GitRevision(dir); got != rev[:12] {
		t.Errorf("GitRevision(detached) = %q", got)
	}

	// No repo at all.
	if got := GitRevision(filepath.Join(t.TempDir())); got != "unknown" {
		t.Errorf("GitRevision(no repo) = %q, want unknown", got)
	}

	// This very repository must resolve to something real.
	if got := GitRevision("."); got == "unknown" || len(got) != 12 {
		t.Errorf("GitRevision(repo) = %q, want a 12-digit revision", got)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Kind: KindSim, Program: "matmul", Config: "4-way", Scheme: "advanced", Analysis: true}
	if got := k.String(); got != "matmul/4-way/advanced+analysis" {
		t.Errorf("Key.String() = %q", got)
	}
	k.FaultMode = "seed=1"
	if got := k.String(); got != "matmul/4-way/advanced+analysis+faults(seed=1)" {
		t.Errorf("Key.String() with faults = %q", got)
	}
	gb := Key{Kind: KindGoBench, Program: "BenchmarkPipelineLoop/4way"}
	if got := gb.String(); got != "BenchmarkPipelineLoop/4way/gobench" {
		t.Errorf("gobench Key.String() = %q", got)
	}
}
