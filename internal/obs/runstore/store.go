package runstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Store is an append-only JSONL run-record log on disk. Concurrent
// appenders are safe at the OS level (O_APPEND writes of single lines);
// readers see a prefix of the log.
type Store struct {
	Path string
}

// Open returns a handle on the store at path. The file need not exist yet;
// the first Append creates it (and its directory).
func Open(path string) *Store { return &Store{Path: path} }

// Append seals (if necessary) and appends records to the log. Records with
// an empty Hash are sealed in place; records carrying a hash are verified
// first, so a caller cannot append a record that lies about its content.
func (s *Store) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for i := range recs {
		r := &recs[i]
		if r.Hash == "" {
			r.Seal()
		} else if !r.VerifyHash() {
			return fmt.Errorf("runstore: record %s/%s: hash does not match content", r.Program, r.Config)
		}
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("runstore: encode record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if dir := filepath.Dir(s.Path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
	}
	f, err := os.OpenFile(s.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("runstore: append: %w", err)
	}
	return f.Close()
}

// Load reads every record in the log, assigns Seq in append order, and
// verifies each record's content hash — a store is content-addressed, so a
// line whose hash does not match its content is corruption, not data.
// A missing file is an empty store.
func (s *Store) Load() ([]Record, error) {
	f, err := os.Open(s.Path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	defer f.Close()
	recs, err := LoadFrom(f)
	if err != nil {
		return nil, fmt.Errorf("runstore: %s: %w", s.Path, err)
	}
	return recs, nil
}

// LoadFrom parses a JSONL record stream, verifying schemas and hashes.
func LoadFrom(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if rec.Schema != Schema {
			return nil, fmt.Errorf("line %d: schema %q, want %q", lineNo, rec.Schema, Schema)
		}
		if !rec.VerifyHash() {
			return nil, fmt.Errorf("line %d: content hash mismatch (stored %s, computed %s) — store corrupted or hand-edited",
				lineNo, rec.Hash, rec.ComputeHash())
		}
		rec.Seq = len(out)
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// GitRevision resolves the current git revision of the repository
// containing dir, without invoking git: it walks up to the nearest .git,
// reads HEAD, and follows one level of symbolic ref (loose ref file first,
// then packed-refs). Returns "unknown" when no revision can be determined —
// records must still be writable from an exported tarball.
func GitRevision(dir string) string {
	gitDir := findGitDir(dir)
	if gitDir == "" {
		return "unknown"
	}
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return "unknown"
	}
	h := strings.TrimSpace(string(head))
	if !strings.HasPrefix(h, "ref: ") {
		return shortRev(h) // detached HEAD: the hash itself
	}
	ref := strings.TrimSpace(strings.TrimPrefix(h, "ref: "))
	if data, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return shortRev(strings.TrimSpace(string(data)))
	}
	if data, err := os.ReadFile(filepath.Join(gitDir, "packed-refs")); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[1] == ref {
				return shortRev(fields[0])
			}
		}
	}
	return "unknown"
}

// findGitDir walks from dir upward looking for a .git directory (or a
// gitfile pointing at one, as in worktrees).
func findGitDir(dir string) string {
	d, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		cand := filepath.Join(d, ".git")
		if fi, err := os.Stat(cand); err == nil {
			if fi.IsDir() {
				return cand
			}
			// Worktree gitfile: "gitdir: <path>".
			if data, err := os.ReadFile(cand); err == nil {
				line := strings.TrimSpace(string(data))
				if strings.HasPrefix(line, "gitdir: ") {
					p := strings.TrimPrefix(line, "gitdir: ")
					if !filepath.IsAbs(p) {
						p = filepath.Join(d, p)
					}
					return p
				}
			}
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

// shortRev abbreviates a 40-hex revision to 12 digits for the envelope;
// trend tables stay readable and 12 digits never collide at repo scale.
func shortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	if rev == "" {
		return "unknown"
	}
	return rev
}
