// Package runstore is the repo's performance memory: an append-only,
// content-addressed store of run records.
//
// Every fpibench/fpisim/fpistat measurement so far has been a point in
// time; this package turns them into a trajectory. A Record wraps one run's
// guest-side results (the deterministic cycle ledger the uarch model
// produces) in an envelope carrying the git revision, machine config,
// scheme, analysis/fault mode, and a schema version, plus the host-side
// cost of producing it (wall time, allocations — see
// internal/obs/hostmetrics). Records are stored one JSON object per line in
// an append-only file; nothing is ever rewritten, so the store is a durable
// log that `fpistat trend/diff/report/gate` can mine.
//
// Content addressing: each record carries a SHA-256 hash over its
// deterministic content — everything except the host-noise fields (host
// metrics, creation time, free-form label). Recording the same source at
// the same revision under the same configuration twice therefore produces
// records with identical hashes, which is both a dedup key and an
// integrity check (Load verifies every line's hash and refuses tampered
// stores).
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"fpint/internal/obs/hostmetrics"
)

// Schema identifies the record layout. Bump on incompatible change; Load
// rejects records with a different schema rather than misreading them.
const Schema = "fpint-run/v1"

// Record kinds: how the measurement was produced.
const (
	// KindSim: a compile-and-simulate run of a mini-C program through the
	// cycle-level uarch model. Guest metrics are meaningful and exact.
	KindSim = "sim"
	// KindGoBench: a `go test -bench` result imported via
	// `fpistat record -gobench`. Only host metrics are meaningful (ns/op,
	// B/op, allocs/op); the guest block is zero.
	KindGoBench = "gobench"
)

// Timing modes: how KindSim guest cycles were produced. The empty string is
// the full detailed model (the historical default — omitempty keeps every
// pre-existing record hash stable); TimingFast marks sampled-timing
// fast-mode records, whose cycle counts are estimates with a bounded error
// and must never be gated against detailed records. TimingMode is part of
// the Key, so the gate treats the two modes as separate trend lines.
const (
	TimingDetailed = ""
	TimingFast     = "fast"
)

// Guest is the deterministic, simulator-produced half of a record: the
// functional result and the closed cycle ledger. Identical source, scheme,
// config, and toolchain produce identical Guest blocks, byte for byte —
// that determinism is what makes exact gating possible.
type Guest struct {
	Ret         int64            `json:"ret"`
	DynInstrs   int64            `json:"dynInstrs"`
	Cycles      int64            `json:"cycles"`
	IssueActive int64            `json:"issueActiveCycles"`
	Stalls      map[string]int64 `json:"stalls,omitempty"` // cause → cycles, summed over subsystems
	OffloadPct  float64          `json:"offloadPct"`
	Copies      int64            `json:"copies"`
	Dups        int64            `json:"dups"`
	Loads       int64            `json:"loads"`
	Stores      int64            `json:"stores"`
}

// StallTotal sums the per-cause stall cycles.
func (g *Guest) StallTotal() int64 {
	var n int64
	for _, v := range g.Stalls {
		n += v
	}
	return n
}

// LedgerClosed reports whether the guest cycle total equals issue-active
// plus total stall cycles — the same top-down accounting invariant the
// uarch model enforces internally. A record that fails this was corrupted
// or produced by a broken simulator.
func (g *Guest) LedgerClosed() bool {
	return g.Cycles == g.IssueActive+g.StallTotal()
}

// Host is the nondeterministic half of a record: what the run cost the
// simulator process itself. Excluded from the content hash.
type Host struct {
	Env     hostmetrics.Env      `json:"env"`
	Samples []hostmetrics.Sample `json:"samples"`
}

// MinWallNS returns the noise-robust minimum wall time over the samples.
func (h *Host) MinWallNS() int64 { return hostmetrics.MinWallNS(h.Samples) }

// MedianWallNS returns the median wall time over the samples.
func (h *Host) MedianWallNS() int64 { return hostmetrics.MedianWallNS(h.Samples) }

// MinAllocs returns the minimum allocation count over the samples.
func (h *Host) MinAllocs() uint64 { return hostmetrics.MinAllocs(h.Samples) }

// MinBytes returns the minimum allocated-bytes count over the samples.
func (h *Host) MinBytes() uint64 { return hostmetrics.MinBytes(h.Samples) }

// SimsPerSec derives simulated cycles per host second from the guest cycle
// count and the minimum wall time.
func (h *Host) SimsPerSec(cycles int64) float64 {
	return hostmetrics.SimsPerSec(cycles, h.MinWallNS())
}

// Record is one run in the store. The Hash field content-addresses the
// deterministic subset of the record; CreatedAt, Label, and Host are host
// noise and take no part in it.
type Record struct {
	Schema     string `json:"schema"`
	Hash       string `json:"hash"`
	Kind       string `json:"kind"`
	Rev        string `json:"rev"`
	Program    string `json:"program"`
	SourceSHA  string `json:"sourceSha,omitempty"`
	Config     string `json:"config"`
	Scheme     string `json:"scheme"`
	Analysis   bool   `json:"analysis"`
	FaultMode  string `json:"faultMode,omitempty"`
	TimingMode string `json:"timingMode,omitempty"`
	Guest      Guest  `json:"guest"`

	// Host-noise fields, excluded from Hash.
	Host      *Host  `json:"host,omitempty"`
	CreatedAt string `json:"createdAt,omitempty"` // RFC 3339, informational only
	Label     string `json:"label,omitempty"`

	// Seq is the record's position in its store, assigned by Load; it is
	// not serialized (append order is the line order).
	Seq int `json:"-"`
}

// hashedRecord is the deterministic subset a record's hash covers. Field
// order is fixed; encoding/json marshals struct fields in declaration order
// and map keys sorted, so the encoding — and therefore the hash — is
// canonical.
type hashedRecord struct {
	Schema     string `json:"schema"`
	Kind       string `json:"kind"`
	Rev        string `json:"rev"`
	Program    string `json:"program"`
	SourceSHA  string `json:"sourceSha,omitempty"`
	Config     string `json:"config"`
	Scheme     string `json:"scheme"`
	Analysis   bool   `json:"analysis"`
	FaultMode  string `json:"faultMode,omitempty"`
	TimingMode string `json:"timingMode,omitempty"`
	Guest      Guest  `json:"guest"`
}

// ComputeHash returns the content hash of the record's deterministic
// subset: "sha256:" plus 64 hex digits.
func (r *Record) ComputeHash() string {
	data, err := json.Marshal(hashedRecord{
		Schema: r.Schema, Kind: r.Kind, Rev: r.Rev, Program: r.Program,
		SourceSHA: r.SourceSHA, Config: r.Config, Scheme: r.Scheme,
		Analysis: r.Analysis, FaultMode: r.FaultMode,
		TimingMode: r.TimingMode, Guest: r.Guest,
	})
	if err != nil {
		// Marshaling plain structs and string-keyed maps cannot fail.
		panic(fmt.Sprintf("runstore: hash marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Seal fills in Schema and Hash, making the record ready to append.
func (r *Record) Seal() {
	r.Schema = Schema
	r.Hash = r.ComputeHash()
}

// VerifyHash reports whether the record's stored hash matches its content.
func (r *Record) VerifyHash() bool { return r.Hash == r.ComputeHash() }

// ShortHash returns a 12-hex-digit abbreviation for display.
func (r *Record) ShortHash() string {
	h := r.Hash
	if i := len("sha256:"); len(h) > i+12 {
		return h[i : i+12]
	}
	return h
}

// SourceHash hashes program source text for the SourceSHA field.
func SourceHash(src []byte) string {
	sum := sha256.Sum256(src)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Key identifies a measured configuration: all records sharing a Key are
// points on the same trend line.
type Key struct {
	Kind       string
	Program    string
	Config     string
	Scheme     string
	Analysis   bool
	FaultMode  string
	TimingMode string
}

// Key returns the record's trend-line identity.
func (r *Record) Key() Key {
	return Key{Kind: r.Kind, Program: r.Program, Config: r.Config,
		Scheme: r.Scheme, Analysis: r.Analysis, FaultMode: r.FaultMode,
		TimingMode: r.TimingMode}
}

// String renders the key compactly ("matmul/4-way/advanced+analysis").
func (k Key) String() string {
	s := k.Program + "/" + k.Config + "/" + k.Scheme
	if k.Analysis {
		s += "+analysis"
	}
	if k.FaultMode != "" {
		s += "+faults(" + k.FaultMode + ")"
	}
	if k.TimingMode != "" {
		s += "+" + k.TimingMode
	}
	if k.Kind == KindGoBench {
		s = k.Program + "/gobench"
	}
	return s
}

// SortKeys orders keys deterministically for display.
func SortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Program != b.Program {
			return a.Program < b.Program
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		if a.Analysis != b.Analysis {
			return !a.Analysis
		}
		if a.FaultMode != b.FaultMode {
			return a.FaultMode < b.FaultMode
		}
		return a.TimingMode < b.TimingMode
	})
}

// ByKey groups records by trend line, preserving append order within each.
func ByKey(recs []Record) map[Key][]Record {
	out := make(map[Key][]Record)
	for _, r := range recs {
		k := r.Key()
		out[k] = append(out[k], r)
	}
	return out
}

// LatestPerKey returns the last-appended record of every trend line.
func LatestPerKey(recs []Record) map[Key]Record {
	out := make(map[Key]Record)
	for _, r := range recs {
		out[r.Key()] = r
	}
	return out
}

// AtRev filters to records taken at the given revision (full or prefix
// match), keeping the latest per key.
func AtRev(recs []Record, rev string) []Record {
	latest := make(map[Key]Record)
	for _, r := range recs {
		if r.Rev == rev || (len(rev) >= 4 && len(rev) < len(r.Rev) && r.Rev[:len(rev)] == rev) {
			latest[r.Key()] = r
		}
	}
	return sortLatest(latest)
}

// FindHash returns the records whose hash matches the given "sha256:"- or
// bare-hex prefix (at least 4 hex digits).
func FindHash(recs []Record, prefix string) []Record {
	want := prefix
	if len(want) > len("sha256:") && want[:len("sha256:")] == "sha256:" {
		want = want[len("sha256:"):]
	}
	if len(want) < 4 {
		return nil
	}
	var out []Record
	for _, r := range recs {
		h := r.Hash[len("sha256:"):]
		if len(want) <= len(h) && h[:len(want)] == want {
			out = append(out, r)
		}
	}
	return out
}

// sortLatest flattens a latest-per-key map into key order.
func sortLatest(m map[Key]Record) []Record {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	SortKeys(keys)
	out := make([]Record, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Revs returns the distinct revisions in the store, in first-appearance
// (append) order.
func Revs(recs []Record) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range recs {
		if !seen[r.Rev] {
			seen[r.Rev] = true
			out = append(out, r.Rev)
		}
	}
	return out
}
