package profile

import (
	"fmt"
	"io"
	"sort"
)

// WriteFolded emits the profile in folded-stack format, one line per
// (function, source line) pair:
//
//	func;L<line> <cycles>
//
// consumable by standard flamegraph tooling (flamegraph.pl, inferno,
// speedscope). The mini-C pipeline has no runtime call-stack tracking, so
// stacks are two frames deep: function, then line. Synthesized code with no
// source line folds under ;L? and machine fill/drain cycles appear as a
// single <machine> frame, keeping the flamegraph total equal to the
// simulator's cycle count. Output is sorted for byte-determinism.
func WriteFolded(w io.Writer, p *Profile) {
	type row struct {
		stack  string
		cycles int64
	}
	rows := make([]row, 0, len(p.Lines))
	for _, s := range p.Lines {
		if s.Cycles == 0 {
			continue
		}
		if s.Func == FillDrainFunc {
			rows = append(rows, row{FillDrainFunc, s.Cycles})
			continue
		}
		rows = append(rows, row{fmt.Sprintf("%s;L%s", s.Func, lineLabel(s.Line)), s.Cycles})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].stack < rows[j].stack })
	for _, r := range rows {
		fmt.Fprintf(w, "%s %d\n", r.stack, r.cycles)
	}
}
