package profile

import (
	"compress/gzip"
	"io"
)

// WritePprof encodes the profile in the pprof profile.proto wire format
// (gzipped), loadable by `go tool pprof`. The encoder is a minimal
// hand-rolled protobuf writer — the repo takes no external dependencies —
// emitting only the subset of the schema pprof requires:
//
//	sample_type: [cycles/count, instructions/count]
//	one sample per (function, source line) bucket, each with one location
//	whose Line carries function id + source line
//
// filename names the profiled source in the function table. Output is
// deterministic: buckets are emitted in HotLines order and the gzip stream
// carries no timestamp.
func WritePprof(w io.Writer, p *Profile, filename string) error {
	st := newStringTable()
	var prof pbuf

	// sample_type = [{cycles, count}, {instructions, count}]
	for _, name := range []string{"cycles", "instructions"} {
		var vt pbuf
		vt.varintField(1, uint64(st.index(name)))
		vt.varintField(2, uint64(st.index("count")))
		prof.bytesField(1, vt.b)
	}

	// Function, location, and sample records per bucket. Function ids are
	// per distinct function name; location ids are per bucket.
	funcID := make(map[string]uint64)
	var funcs pbuf
	fileIdx := st.index(filename)
	fid := func(name string) uint64 {
		if id, ok := funcID[name]; ok {
			return id
		}
		id := uint64(len(funcID) + 1)
		funcID[name] = id
		var fn pbuf
		fn.varintField(1, id)
		fn.varintField(2, uint64(st.index(name)))
		fn.varintField(3, uint64(st.index(name)))
		fn.varintField(4, uint64(fileIdx))
		funcs.bytesField(5, fn.b)
		return id
	}

	var locs, samples pbuf
	locID := uint64(0)
	for _, s := range p.HotLines() {
		if s.Cycles == 0 && s.Retired == 0 {
			continue
		}
		locID++
		var line pbuf
		line.varintField(1, fid(s.Func))
		line.varintField(2, uint64(int64(s.Line)))
		var loc pbuf
		loc.varintField(1, locID)
		loc.bytesField(4, line.b)
		locs.bytesField(4, loc.b)

		var locIDs, vals pbuf
		locIDs.varint(locID)
		vals.varint(uint64(s.Cycles))
		vals.varint(uint64(s.Retired))
		var sample pbuf
		sample.bytesField(1, locIDs.b) // packed repeated location_id
		sample.bytesField(2, vals.b)   // packed repeated value
		samples.bytesField(2, sample.b)
	}

	prof.b = append(prof.b, samples.b...)
	prof.b = append(prof.b, locs.b...)
	prof.b = append(prof.b, funcs.b...)
	for _, s := range st.strings {
		var tmp pbuf
		tmp.stringField(6, s)
		prof.b = append(prof.b, tmp.b...)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(prof.b); err != nil {
		return err
	}
	return gz.Close()
}

// pbuf is a minimal protobuf wire-format builder.
type pbuf struct {
	b []byte
}

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) key(field, wire int) {
	p.varint(uint64(field)<<3 | uint64(wire))
}

// varintField writes a varint-typed field (wire type 0).
func (p *pbuf) varintField(field int, v uint64) {
	p.key(field, 0)
	p.varint(v)
}

// bytesField writes a length-delimited field (wire type 2): nested
// messages and packed repeated scalars.
func (p *pbuf) bytesField(field int, b []byte) {
	p.key(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *pbuf) stringField(field int, s string) {
	p.bytesField(field, []byte(s))
}

// stringTable interns strings; index 0 is the mandatory empty string.
type stringTable struct {
	strings []string
	idx     map[string]int
}

func newStringTable() *stringTable {
	return &stringTable{strings: []string{""}, idx: map[string]int{"": 0}}
}

func (st *stringTable) index(s string) int {
	if i, ok := st.idx[s]; ok {
		return i
	}
	i := len(st.strings)
	st.strings = append(st.strings, s)
	st.idx[s] = i
	return i
}
