// Package profile turns the timing simulator's per-PC cycle attribution
// into source-level reports: hot-function and hot-line tables, folded
// stacks for flamegraph tooling, pprof-compatible protobuf output, and an
// annotated-source listing.
//
// It joins two artifacts the lower layers maintain independently: the debug
// line table the compiler threads into every isa.Inst (function, source
// line, originating IR op, partition), and the closed per-PC cycle ledger
// the uarch pipeline records (Σ per-PC cycles == total cycles). The join
// preserves closure: every cycle lands in exactly one line-level bucket,
// including the fill/drain pseudo-entry, so per-line tables always sum to
// the simulator's cycle count.
package profile

import (
	"sort"

	"fpint/internal/isa"
	"fpint/internal/uarch"
)

// FillDrainFunc is the pseudo-function that absorbs cycles no instruction
// is responsible for (pipeline fill/drain with an empty machine).
const FillDrainFunc = "<machine>"

// Key identifies one source line within a function. Line 0 groups
// compiler-synthesized instructions with no recorded source line.
type Key struct {
	Func string
	Line int
}

// LineSample aggregates everything charged to one source line.
type LineSample struct {
	Func string
	Line int

	// Cycles is the total cycles charged to the line; Active the subset in
	// which the line's instruction was the oldest to issue.
	Cycles int64
	Active int64
	// Stall splits the line's non-issuing cycles by cause (same causes as
	// uarch.Stats.StallBySub).
	Stall [uarch.NumStallCauses]int64
	// BySub splits the charged cycles by subsystem (INT/FP/FPa) of the
	// instruction at fault.
	BySub [3]int64

	// Retired counts dynamic instructions retired for this line;
	// RetiredFPa the subset executed in the augmented FP subsystem,
	// RetiredCopies the CP2FP/CP2INT transfers, and RetiredDups the §7.2
	// duplicated instructions — the per-site overhead the paper's
	// Profit = Benefit − Overhead reasoning is about.
	Retired       int64
	RetiredFPa    int64
	RetiredCopies int64
	RetiredDups   int64

	// StaticInsts counts machine instructions compiled from this line.
	StaticInsts int
}

// StallTotal returns the line's total stall cycles.
func (s *LineSample) StallTotal() int64 {
	var n int64
	for _, v := range s.Stall {
		n += v
	}
	return n
}

// OffloadFraction returns the fraction of the line's retired instructions
// executed in the FPa subsystem (the paper's per-site offload measure).
func (s *LineSample) OffloadFraction() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.RetiredFPa) / float64(s.Retired)
}

// FuncSample aggregates a whole function.
type FuncSample struct {
	Name string

	Cycles        int64
	Active        int64
	Stall         [uarch.NumStallCauses]int64
	BySub         [3]int64
	Retired       int64
	RetiredFPa    int64
	RetiredCopies int64
	RetiredDups   int64
	StaticInsts   int
	Lines         int // distinct source lines with any attribution
}

// OffloadFraction returns the fraction of the function's retired
// instructions executed in the FPa subsystem.
func (f *FuncSample) OffloadFraction() float64 {
	if f.Retired == 0 {
		return 0
	}
	return float64(f.RetiredFPa) / float64(f.Retired)
}

// Profile is a source-attributed cycle profile of one simulation.
type Profile struct {
	Lines map[Key]*LineSample
	Funcs map[string]*FuncSample

	// TotalCycles is the simulator's cycle count; by construction it
	// equals the sum of Cycles over Lines (and over Funcs).
	TotalCycles int64
	// Instructions is the total retired instruction count.
	Instructions int64
	// FillDrain is the cycle count of the FillDrainFunc pseudo-entry.
	FillDrain int64
}

// Build joins the program's debug line table with the pipeline's per-PC
// cycle ledger. Lines that compiled to instructions but received no cycles
// still appear (with zero counts) so annotated listings cover cold code.
func Build(prog *isa.Program, cp *uarch.CycleProfile) *Profile {
	p := &Profile{
		Lines: make(map[Key]*LineSample),
		Funcs: make(map[string]*FuncSample),
	}
	line := func(k Key) *LineSample {
		s := p.Lines[k]
		if s == nil {
			s = &LineSample{Func: k.Func, Line: k.Line}
			p.Lines[k] = s
		}
		return s
	}
	keyOf := func(pc int) Key {
		if pc < 0 || pc >= len(prog.Insts) {
			return Key{Func: FillDrainFunc}
		}
		fn := ""
		if pc < len(prog.FuncOf) {
			fn = prog.FuncOf[pc]
		}
		return Key{Func: fn, Line: int(prog.Insts[pc].SrcLine)}
	}

	// Static shape: every compiled instruction registers its line.
	for pc := range prog.Insts {
		line(keyOf(pc)).StaticInsts++
	}

	// Dynamic attribution.
	for pc, ps := range cp.Samples {
		k := keyOf(pc)
		s := line(k)
		s.Cycles += ps.Cycles
		s.Active += ps.Active
		for c, n := range ps.Stall {
			s.Stall[c] += n
		}
		for sub, n := range ps.BySub {
			s.BySub[sub] += n
		}
		s.Retired += ps.Retired
		p.TotalCycles += ps.Cycles
		p.Instructions += ps.Retired
		if k.Func == FillDrainFunc {
			p.FillDrain += ps.Cycles
		}
		if pc >= 0 && pc < len(prog.Insts) {
			in := prog.Insts[pc]
			if isa.ExecSubsystem(in.Op) == isa.SubFPa {
				s.RetiredFPa += ps.Retired
			}
			if in.Op == isa.CP2FP || in.Op == isa.CP2INT {
				s.RetiredCopies += ps.Retired
			}
			if in.IsDup {
				s.RetiredDups += ps.Retired
			}
		}
	}

	// Function roll-up.
	for _, s := range p.Lines {
		f := p.Funcs[s.Func]
		if f == nil {
			f = &FuncSample{Name: s.Func}
			p.Funcs[s.Func] = f
		}
		f.Cycles += s.Cycles
		f.Active += s.Active
		for c, n := range s.Stall {
			f.Stall[c] += n
		}
		for sub, n := range s.BySub {
			f.BySub[sub] += n
		}
		f.Retired += s.Retired
		f.RetiredFPa += s.RetiredFPa
		f.RetiredCopies += s.RetiredCopies
		f.RetiredDups += s.RetiredDups
		f.StaticInsts += s.StaticInsts
		f.Lines++
	}
	return p
}

// HotLines returns the line samples ordered by descending cycles (ties
// broken by function name, then line) — a deterministic hot-line ranking.
func (p *Profile) HotLines() []*LineSample {
	out := make([]*LineSample, 0, len(p.Lines))
	for _, s := range p.Lines {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// HotFuncs returns the function samples ordered by descending cycles (ties
// broken by name).
func (p *Profile) HotFuncs() []*FuncSample {
	out := make([]*FuncSample, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// LineCycleSum returns Σ Cycles over all line buckets; equal to
// TotalCycles by construction (the invariant the acceptance test pins).
func (p *Profile) LineCycleSum() int64 {
	var n int64
	for _, s := range p.Lines {
		n += s.Cycles
	}
	return n
}
