package profile

import (
	"fmt"
	"io"
	"strings"

	"fpint/internal/isa"
	"fpint/internal/uarch"
)

// WriteHotFuncs renders the top-n functions by cycles as a text table:
// cycles, share of total, active/stall split, offload fraction, and the
// dynamic copy/dup overhead counts.
func WriteHotFuncs(w io.Writer, p *Profile, n int) {
	fmt.Fprintf(w, "%-16s %12s %7s %12s %12s %8s %10s %10s\n",
		"FUNC", "CYCLES", "CYC%", "ACTIVE", "STALL", "OFFLOAD", "COPIES", "DUPS")
	for i, f := range p.HotFuncs() {
		if n > 0 && i >= n {
			break
		}
		var stall int64
		for _, v := range f.Stall {
			stall += v
		}
		fmt.Fprintf(w, "%-16s %12d %6.1f%% %12d %12d %7.1f%% %10d %10d\n",
			f.Name, f.Cycles, pct(f.Cycles, p.TotalCycles), f.Active, stall,
			100*f.OffloadFraction(), f.RetiredCopies, f.RetiredDups)
	}
	fmt.Fprintf(w, "%-16s %12d %6.1f%%\n", "TOTAL", p.TotalCycles, 100.0)
}

// WriteHotLines renders the top-n source lines by cycles, with the
// dominant stall cause of each line.
func WriteHotLines(w io.Writer, p *Profile, n int) {
	fmt.Fprintf(w, "%-16s %6s %12s %7s %12s %8s %-16s\n",
		"FUNC", "LINE", "CYCLES", "CYC%", "RETIRED", "OFFLOAD", "TOP-STALL")
	for i, s := range p.HotLines() {
		if n > 0 && i >= n {
			break
		}
		if s.Cycles == 0 {
			continue
		}
		fmt.Fprintf(w, "%-16s %6s %12d %6.1f%% %12d %7.1f%% %-16s\n",
			s.Func, lineLabel(s.Line), s.Cycles, pct(s.Cycles, p.TotalCycles),
			s.Retired, 100*s.OffloadFraction(), topStall(s))
	}
}

// WriteAnnotated prints the source text with per-line cycle counts,
// offload fraction, and copy/dup overhead in a gutter, the paper's per-site
// view of where the partition pays off and what it costs. Lines of src are
// 1-based, matching the debug line table.
func WriteAnnotated(w io.Writer, p *Profile, src string) {
	// Collapse the per-(func,line) buckets to per-line: a line belongs to
	// exactly one function in this single-file language.
	type agg struct {
		cycles, retired, fpa, copies, dups int64
	}
	byLine := make(map[int]*agg)
	var synth agg // line 0: synthesized code without a source line
	for _, s := range p.Lines {
		a := &synth
		if s.Line != 0 {
			if byLine[s.Line] == nil {
				byLine[s.Line] = &agg{}
			}
			a = byLine[s.Line]
		}
		a.cycles += s.Cycles
		a.retired += s.Retired
		a.fpa += s.RetiredFPa
		a.copies += s.RetiredCopies
		a.dups += s.RetiredDups
	}

	fmt.Fprintf(w, "%6s %10s %7s %8s %9s | %s\n",
		"LINE", "CYCLES", "CYC%", "OFFLOAD", "COPY/DUP", "SOURCE")
	for i, text := range strings.Split(strings.TrimRight(src, "\n"), "\n") {
		ln := i + 1
		a := byLine[ln]
		if a == nil || a.cycles == 0 && a.retired == 0 {
			fmt.Fprintf(w, "%6d %10s %7s %8s %9s | %s\n", ln, ".", ".", ".", ".", text)
			continue
		}
		off := "."
		if a.retired > 0 {
			off = fmt.Sprintf("%.1f%%", 100*float64(a.fpa)/float64(a.retired))
		}
		fmt.Fprintf(w, "%6d %10d %6.1f%% %8s %4d/%-4d | %s\n",
			ln, a.cycles, pct(a.cycles, p.TotalCycles), off, a.copies, a.dups, text)
	}
	fmt.Fprintf(w, "\ntotal cycles: %d", p.TotalCycles)
	if synth.cycles > 0 {
		fmt.Fprintf(w, " (synthesized/frame code: %d, fill/drain: %d)",
			synth.cycles-p.FillDrain, p.FillDrain)
	}
	fmt.Fprintln(w)
}

// WriteListing renders a line-annotated disassembly: for every machine
// instruction its PC, source line, executing subsystem (partition), the IR
// op it was selected from, and the disassembled text. IR op names are
// resolved by the caller-supplied irOpName to keep this package free of an
// ir dependency in its core path; pass nil to print raw op numbers.
func WriteListing(w io.Writer, prog *isa.Program, irOpName func(uint8) string) {
	entryNames := make(map[int]string)
	for name, idx := range prog.FuncEntry {
		entryNames[idx] = name
	}
	fmt.Fprintf(w, "%5s %6s %-4s %-8s %s\n", "PC", "LINE", "SUB", "IR-OP", "INSTRUCTION")
	for pc, in := range prog.Insts {
		if name, ok := entryNames[pc]; ok {
			fmt.Fprintf(w, "%s:\n", name)
		}
		irop := "-"
		if in.IROp != 0 {
			if irOpName != nil {
				irop = irOpName(in.IROp)
			} else {
				irop = fmt.Sprintf("op%d", in.IROp)
			}
		}
		dup := ""
		if in.IsDup {
			dup = " [dup]"
		}
		fmt.Fprintf(w, "%5d %6s %-4s %-8s %s%s\n",
			pc, lineLabel(int(in.SrcLine)), isa.ExecSubsystem(in.Op), irop, in.String(), dup)
	}
}

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

func lineLabel(line int) string {
	if line == 0 {
		return "?"
	}
	return fmt.Sprintf("%d", line)
}

// topStall names the stall cause with the most cycles on the line, or "-"
// when the line never stalled.
func topStall(s *LineSample) string {
	best, bestN := -1, int64(0)
	for c, n := range s.Stall {
		if n > bestN {
			best, bestN = c, n
		}
	}
	if best < 0 {
		return "-"
	}
	return uarch.StallCause(best).String()
}
