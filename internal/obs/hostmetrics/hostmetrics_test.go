package hostmetrics

import (
	"bytes"
	"strings"
	"testing"

	"fpint/internal/obs"
)

func TestMeasureCapturesWorkDeltas(t *testing.T) {
	var sink [][]byte
	s := Measure(func() {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 4096))
		}
	})
	_ = sink
	if s.WallNS <= 0 {
		t.Errorf("WallNS = %d, want > 0", s.WallNS)
	}
	if s.Allocs == 0 {
		t.Errorf("Allocs = 0, want > 0 after 64 slice allocations")
	}
	if s.Bytes < 64*4096 {
		t.Errorf("Bytes = %d, want >= %d", s.Bytes, 64*4096)
	}
}

func TestMeasureN(t *testing.T) {
	samples := MeasureN(3, func() {})
	if len(samples) != 3 {
		t.Fatalf("MeasureN(3) returned %d samples", len(samples))
	}
	if got := MeasureN(0, func() {}); len(got) != 1 {
		t.Fatalf("MeasureN(0) returned %d samples, want clamped to 1", len(got))
	}
}

func TestAggregates(t *testing.T) {
	samples := []Sample{
		{WallNS: 30, Allocs: 12, Bytes: 300},
		{WallNS: 10, Allocs: 10, Bytes: 100},
		{WallNS: 20, Allocs: 11, Bytes: 200},
	}
	if got := MinWallNS(samples); got != 10 {
		t.Errorf("MinWallNS = %d, want 10", got)
	}
	if got := MedianWallNS(samples); got != 20 {
		t.Errorf("MedianWallNS = %d, want 20", got)
	}
	if got := MinAllocs(samples); got != 10 {
		t.Errorf("MinAllocs = %d, want 10", got)
	}
	if got := MinBytes(samples); got != 100 {
		t.Errorf("MinBytes = %d, want 100", got)
	}
	if MinWallNS(nil) != 0 || MedianWallNS(nil) != 0 || MinAllocs(nil) != 0 || MinBytes(nil) != 0 {
		t.Error("empty-sample aggregates must be 0")
	}
}

func TestSimsPerSec(t *testing.T) {
	if got := SimsPerSec(1000, 1e9); got != 1000 {
		t.Errorf("SimsPerSec(1000 cycles, 1s) = %g, want 1000", got)
	}
	if got := SimsPerSec(500, 5e8); got != 1000 {
		t.Errorf("SimsPerSec(500 cycles, 0.5s) = %g, want 1000", got)
	}
	if SimsPerSec(100, 0) != 0 || SimsPerSec(0, 100) != 0 {
		t.Error("degenerate SimsPerSec inputs must yield 0")
	}
}

func TestCurrentEnv(t *testing.T) {
	e := CurrentEnv()
	if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" || e.NumCPU < 1 {
		t.Errorf("CurrentEnv incomplete: %+v", e)
	}
}

func TestStringAndRegistryExport(t *testing.T) {
	s := Sample{WallNS: 1500000, Allocs: 42, Bytes: 2048, GCPauseNS: 100, GCCycles: 1}
	str := s.String()
	for _, want := range []string{"wall=1.5ms", "allocs=42", "bytes=2.0KiB", "gc=1"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
	reg := obs.NewRegistry()
	s.AddTo(reg, obs.PrefixHost)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"host.wall_ns": 1.5e+06`, `"host.allocs": 42`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("registry JSON missing %q:\n%s", want, buf.String())
		}
	}
}
