// Package hostmetrics measures the simulator's own Go-level cost: wall
// time, heap allocation deltas, and GC activity around a region of work,
// plus the derived simulated-cycles-per-second throughput number.
//
// Guest-side telemetry (cycle ledgers, stall causes, per-PC profiles) says
// what the modeled machine did; hostmetrics says what it cost *us* to model
// it. The numbers are inherently noisy — they depend on the machine, the
// scheduler, and the GC — so they are treated as second-class everywhere:
// excluded from run-record content hashes, compared with min/median
// estimators over repeated samples, and gated with percentage thresholds
// rather than exact equality. This package is the baseline instrument the
// ROADMAP's "allocation-free event-driven core" refactor will be measured
// against.
//
// Like the rest of internal/obs it depends only on the standard library.
package hostmetrics

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"fpint/internal/obs"
)

// Sample is one observation of the host-side cost of a region of work.
// All fields are deltas across the region except where noted.
type Sample struct {
	// WallNS is the elapsed wall-clock time in nanoseconds.
	WallNS int64 `json:"wallNs"`
	// Allocs is the number of heap objects allocated (Mallocs delta).
	Allocs uint64 `json:"allocs"`
	// Bytes is the total heap bytes allocated (TotalAlloc delta).
	Bytes uint64 `json:"bytes"`
	// GCPauseNS is the cumulative stop-the-world pause time in nanoseconds.
	GCPauseNS uint64 `json:"gcPauseNs"`
	// GCCycles is the number of completed GC cycles.
	GCCycles uint32 `json:"gcCycles"`
}

// Measure runs f once and returns the host-side cost of the call.
func Measure(f func()) Sample {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return Sample{
		WallNS:    wall.Nanoseconds(),
		Allocs:    after.Mallocs - before.Mallocs,
		Bytes:     after.TotalAlloc - before.TotalAlloc,
		GCPauseNS: after.PauseTotalNs - before.PauseTotalNs,
		GCCycles:  after.NumGC - before.NumGC,
	}
}

// MeasureN runs f n times and returns one sample per run. Repeated samples
// are the raw material for the min/median noise estimators below; callers
// that gate on host metrics should record at least three.
func MeasureN(n int, f func()) []Sample {
	if n < 1 {
		n = 1
	}
	out := make([]Sample, n)
	for i := range out {
		out[i] = Measure(f)
	}
	return out
}

// SimsPerSec converts a simulated-cycle count and a wall time into the
// throughput headline number (simulated cycles per host second).
func SimsPerSec(cycles int64, wallNS int64) float64 {
	if wallNS <= 0 || cycles <= 0 {
		return 0
	}
	return float64(cycles) / (float64(wallNS) / 1e9)
}

// MinWallNS returns the smallest wall time over the samples — the standard
// noise-robust estimator for "how fast can this go" (everything that makes
// a run slower than its best is interference).
func MinWallNS(samples []Sample) int64 {
	var min int64 = -1
	for _, s := range samples {
		if min < 0 || s.WallNS < min {
			min = s.WallNS
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// MedianWallNS returns the median wall time over the samples — the
// estimator for "what does a typical run cost".
func MedianWallNS(samples []Sample) int64 {
	if len(samples) == 0 {
		return 0
	}
	v := make([]int64, len(samples))
	for i, s := range samples {
		v[i] = s.WallNS
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[len(v)/2]
}

// MinAllocs returns the smallest allocation count over the samples.
// Allocation counts are nearly deterministic (map growth and GC timing
// contribute small jitter), so the min is a tight floor.
func MinAllocs(samples []Sample) uint64 {
	first := true
	var min uint64
	for _, s := range samples {
		if first || s.Allocs < min {
			min = s.Allocs
			first = false
		}
	}
	return min
}

// MinBytes returns the smallest allocated-bytes count over the samples.
func MinBytes(samples []Sample) uint64 {
	first := true
	var min uint64
	for _, s := range samples {
		if first || s.Bytes < min {
			min = s.Bytes
			first = false
		}
	}
	return min
}

// Env describes the host environment a sample set was taken on. It travels
// with recorded host metrics so trend readers can tell a code change from a
// machine change; like the samples it is excluded from content hashes.
type Env struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCpu"`
}

// CurrentEnv captures the running process's environment.
func CurrentEnv() Env {
	return Env{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// String renders a sample as a compact human-readable line.
func (s Sample) String() string {
	return fmt.Sprintf("wall=%s allocs=%d bytes=%s gc=%d pause=%s",
		time.Duration(s.WallNS), s.Allocs, formatBytes(s.Bytes),
		s.GCCycles, time.Duration(int64(s.GCPauseNS)))
}

// formatBytes renders a byte count with a binary-prefix unit.
func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// AddTo exports the sample into a metrics registry under the given prefix
// (conventionally obs.PrefixHost). Host metrics are nondeterministic, so
// callers must opt in — mixing them into an otherwise byte-stable document
// breaks its golden property.
func (s Sample) AddTo(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix + obs.MetricHostWallNS).Set(float64(s.WallNS))
	reg.Gauge(prefix + obs.MetricHostAllocs).Set(float64(s.Allocs))
	reg.Gauge(prefix + obs.MetricHostBytes).Set(float64(s.Bytes))
	reg.Gauge(prefix + obs.MetricHostGCPauseNS).Set(float64(s.GCPauseNS))
	reg.Gauge(prefix + obs.MetricHostGCCycles).Set(float64(s.GCCycles))
}
