package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestEmptyRegistryEncoding pins the encoders' behavior with nothing
// registered: both must emit a complete, parseable document rather than
// truncated output or a panic — consumers diff these files byte-for-byte.
func TestEmptyRegistryEncoding(t *testing.T) {
	r := NewRegistry()

	var jbuf strings.Builder
	if err := r.WriteJSON(&jbuf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(jbuf.String()), &doc); err != nil {
		t.Fatalf("empty-registry JSON does not parse: %v\n%s", err, jbuf.String())
	}

	var cbuf strings.Builder
	if err := r.WriteCSV(&cbuf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasSuffix(cbuf.String(), "\n") && cbuf.Len() > 0 {
		t.Fatalf("empty-registry CSV not newline-terminated: %q", cbuf.String())
	}
}

// TestZeroEventTrace pins the trace encoder on an empty event list: a valid
// document with an empty traceEvents array, loadable by the viewers.
func TestZeroEventTrace(t *testing.T) {
	var buf strings.Builder
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("zero-event trace does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("zero-event trace has %d events", len(doc.TraceEvents))
	}
}

// TestConcurrentRegistries exercises metric registration and updates from
// many goroutines under -race. Registry is documented as not safe for
// concurrent use, so the concurrency contract is registry-per-goroutine;
// this pins that pattern really is race-free (no hidden shared state, e.g.
// package-level interning) rather than racing on one shared registry.
func TestConcurrentRegistries(t *testing.T) {
	var wg sync.WaitGroup
	regs := make([]*Registry, 8)
	for i := range regs {
		i := i
		regs[i] = NewRegistry()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := regs[i]
			for j := 0; j < 1000; j++ {
				r.Counter("shared_name").Add(1)
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", []float64{1, 10, 100}).Observe(float64(j % 128))
			}
		}()
	}
	wg.Wait()
	for i, r := range regs {
		if got := r.CounterValue("shared_name"); got != 1000 {
			t.Fatalf("registry %d: counter = %d, want 1000", i, got)
		}
	}
}

// TestConcurrentRegistrationWithLock pins the other documented pattern: one
// shared registry behind a caller-owned mutex. Under -race this fails if
// any registry path touches state outside the lock.
func TestConcurrentRegistrationWithLock(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				mu.Lock()
				r.Counter("total").Add(2)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("total"); got != 8*500*2 {
		t.Fatalf("counter = %d, want %d", got, 8*500*2)
	}
}
