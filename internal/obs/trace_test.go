package obs

import (
	"strings"
	"testing"
)

// TestCounterEventJSONShape pins the wire shape of counter events: phase
// "C", numeric (unquoted) arg values, sorted keys, deterministic float
// formatting — the contract Perfetto's counter-track importer relies on.
func TestCounterEventJSONShape(t *testing.T) {
	ev := CounterEvent("timeline/ipc", 1024, 1, map[string]float64{"ipc": 1.25, "active": 0.5})
	var sb strings.Builder
	if err := WriteTrace(&sb, []TraceEvent{ev}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `{"name": "timeline/ipc", "ph": "C", "ts": 1024, "pid": 1, "tid": 0, "args": {"active": 0.5, "ipc": 1.25}}`
	if !strings.Contains(got, want) {
		t.Errorf("counter event JSON shape:\ngot document:\n%s\nwant it to contain:\n%s", got, want)
	}
	if strings.Contains(got, `"dur"`) {
		t.Errorf("counter event must not carry a duration:\n%s", got)
	}
	if strings.Contains(got, `"1.25"`) || strings.Contains(got, `"0.5"`) {
		t.Errorf("counter values must be JSON numbers, not strings:\n%s", got)
	}
}

// TestCounterMixedArgs checks that string and numeric args merge into one
// sorted args object.
func TestCounterMixedArgs(t *testing.T) {
	ev := CounterEvent("t", 0, 1, map[string]float64{"b": 2})
	ev.Args = map[string]string{"a": "x", "c": "y"}
	var sb strings.Builder
	if err := WriteTrace(&sb, []TraceEvent{ev}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"args": {"a": "x", "b": 2, "c": "y"}`) {
		t.Errorf("mixed args not merged in sorted key order:\n%s", sb.String())
	}
}

// TestSortEventsByTs pins the merge ordering: metadata first in producer
// order, then every other event by non-decreasing ts with stable order
// among equals.
func TestSortEventsByTs(t *testing.T) {
	events := []TraceEvent{
		CounterEvent("c", 500, 1, map[string]float64{"v": 1}),
		Span("late", "x", 300, 10, 1, 1),
		ThreadName(1, 1, "INT"),
		Instant("tick", 300, 1, 1),
		Span("early", "x", 0, 10, 1, 1),
		ThreadName(1, 2, "FP"),
	}
	SortEventsByTs(events)
	var order []string
	for _, e := range events {
		order = append(order, e.Ph+":"+e.Name)
	}
	want := []string{"M:thread_name", "M:thread_name", "X:early", "X:late", "i:tick", "C:c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event order after sort = %v, want %v", order, want)
		}
	}
	// Stability among ts ties: the span fed before the instant stays first.
	if events[3].Name != "late" || events[4].Name != "tick" {
		t.Errorf("sort not stable for equal timestamps: %v", order)
	}
	var prev int64 = -1
	for _, e := range events[2:] {
		if e.Ts < prev {
			t.Fatalf("non-monotonic ts after sort: %v", order)
		}
		prev = e.Ts
	}
}

// TestPassLogTraceEvents checks the compiler-span export: a named track,
// back-to-back spans in execution order, microsecond durations clamped to
// a visible minimum.
func TestPassLogTraceEvents(t *testing.T) {
	var l PassLog
	l.Add("parse", "module", 2500, 0, 0)
	l.Add("opt", "module", 900, 100, 80)
	events := l.TraceEvents(2)
	if len(events) != 3 {
		t.Fatalf("got %d events, want thread_name + 2 spans", len(events))
	}
	if events[0].Ph != "M" || events[0].Args["name"] != "compiler" {
		t.Fatalf("first event must name the compiler track, got %+v", events[0])
	}
	parse, opt := events[1], events[2]
	if parse.Name != "parse" || parse.Ts != 0 || parse.Dur != 2 {
		t.Errorf("parse span = %+v, want ts=0 dur=2", parse)
	}
	if opt.Name != "opt" || opt.Ts != 2 || opt.Dur != 1 {
		t.Errorf("opt span = %+v, want ts=2 dur=1 (sub-microsecond clamped)", opt)
	}
	if opt.Args["instrs"] != "100->80" {
		t.Errorf("opt span args = %v, want instrs 100->80", opt.Args)
	}
	if (*PassLog)(nil).TraceEvents(1) != nil {
		t.Error("nil PassLog must yield no events")
	}
}
