// Package obs is the repo's standard-library-only telemetry subsystem.
//
// It provides three building blocks that the rest of the stack threads
// through:
//
//   - a metrics Registry (counters, gauges, fixed-bucket histograms) with
//     deterministic JSON and CSV encoders — keys are emitted sorted and
//     floats are formatted with strconv, so identical runs produce
//     byte-identical documents (the property the golden tests pin down);
//   - a Chrome trace-event encoder (trace.go) that renders pipeline
//     journals into Perfetto/chrome://tracing-loadable JSON;
//   - a compiler pass log (passlog.go) recording per-pass wall time and IR
//     instruction deltas.
//
// The package deliberately has no dependencies outside the standard
// library so every layer (isa, sim, uarch, core, codegen, bench, cmd) can
// import it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically growing integer metric.
type Counter struct {
	v int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time float metric.
type Gauge struct {
	v float64
}

// Set overwrites the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket histogram: Bounds[i] is the inclusive upper
// bound of bucket i, and one implicit overflow bucket catches everything
// above the last bound.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is overflow
	count  int64
	sum    float64
}

// Observe records one observation of v.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of v at once (bulk import from
// pre-aggregated counters, e.g. per-cycle occupancy arrays).
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i] += n
	h.count += n
	h.sum += v * float64(n)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observed value (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Registry is a named collection of metrics. It is not safe for concurrent
// use; the simulators are single-threaded by construction.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (bounds are ignored if the
// name already exists).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h, ok := r.histograms[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// CounterValue returns the value of a counter, or 0 if absent.
func (r *Registry) CounterValue(name string) int64 {
	if c, ok := r.counters[name]; ok {
		return c.v
	}
	return 0
}

// formatFloat renders a float deterministically for both encoders. NaN and
// infinities are not valid JSON numbers; they are clamped to 0 (metrics
// should never produce them, but a malformed rate must not corrupt the
// document).
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON encodes the registry as a deterministic JSON document:
//
//	{
//	  "counters": {"name": 1, ...},
//	  "gauges": {"name": 1.5, ...},
//	  "histograms": {"name": {"bounds": [...], "counts": [...], "count": n, "sum": s}, ...}
//	}
//
// Keys are sorted, so identical registries produce byte-identical output.
func (r *Registry) WriteJSON(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("{\n  \"counters\": {")
	for i, k := range sortedKeys(r.counters) {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "\n    %s: %d", quote(k), r.counters[k].v)
	}
	sb.WriteString("\n  },\n  \"gauges\": {")
	for i, k := range sortedKeys(r.gauges) {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "\n    %s: %s", quote(k), formatFloat(r.gauges[k].v))
	}
	sb.WriteString("\n  },\n  \"histograms\": {")
	for i, k := range sortedKeys(r.histograms) {
		if i > 0 {
			sb.WriteByte(',')
		}
		h := r.histograms[k]
		fmt.Fprintf(&sb, "\n    %s: {\"bounds\": [", quote(k))
		for j, b := range h.bounds {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(formatFloat(b))
		}
		sb.WriteString("], \"counts\": [")
		for j, c := range h.counts {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", c)
		}
		fmt.Fprintf(&sb, "], \"count\": %d, \"sum\": %s}", h.count, formatFloat(h.sum))
	}
	sb.WriteString("\n  }\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV encodes the registry as deterministic CSV with the fixed header
// kind,name,key,value. Histograms emit one row per bucket (key "le=<bound>",
// the overflow bucket as "le=+Inf") plus count and sum rows.
func (r *Registry) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("kind,name,key,value\n")
	for _, k := range sortedKeys(r.counters) {
		fmt.Fprintf(&sb, "counter,%s,,%d\n", csvEscape(k), r.counters[k].v)
	}
	for _, k := range sortedKeys(r.gauges) {
		fmt.Fprintf(&sb, "gauge,%s,,%s\n", csvEscape(k), formatFloat(r.gauges[k].v))
	}
	for _, k := range sortedKeys(r.histograms) {
		h := r.histograms[k]
		name := csvEscape(k)
		for i, c := range h.counts {
			bound := "+Inf"
			if i < len(h.bounds) {
				bound = formatFloat(h.bounds[i])
			}
			fmt.Fprintf(&sb, "histogram,%s,le=%s,%d\n", name, bound, c)
		}
		fmt.Fprintf(&sb, "histogram,%s,count,%d\n", name, h.count)
		fmt.Fprintf(&sb, "histogram,%s,sum,%s\n", name, formatFloat(h.sum))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// quote JSON-quotes a string (metric names are plain identifiers, but the
// encoder must stay correct for arbitrary input).
func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&sb, `\u%04x`, r)
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
