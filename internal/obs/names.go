package obs

// Canonical metric names. The functional simulator and the timing model
// export overlapping vocabularies ("loads" means the same event in both);
// keeping the shared names here stops the exporters and their consumers
// from drifting apart one string literal at a time. Names unique to one
// exporter stay at its AddTo site.
const (
	// PrefixSim and PrefixUarch namespace the two exporters' metrics in a
	// shared registry (e.g. "sim.loads" vs "uarch.loads": dynamic load
	// instructions counted functionally vs. loads the pipeline executed).
	PrefixSim   = "sim."
	PrefixUarch = "uarch."

	// MetricLoads / MetricStores count executed memory operations; both
	// exporters emit them under their own prefix.
	MetricLoads  = "loads"
	MetricStores = "stores"

	// MetricDynamicInstructions is the functional dynamic instruction
	// count; MetricInstructions the timing model's retired count. A run
	// that finishes cleanly reports the same value for both.
	MetricDynamicInstructions = "dynamic_instructions"
	MetricInstructions        = "instructions"

	// MetricCycles and MetricIssueActiveCycles carry the timing model's
	// closed cycle ledger: cycles = issue_active_cycles + Σ stall.*.
	MetricCycles            = "cycles"
	MetricIssueActiveCycles = "issue_active_cycles"

	// MetricOffloadFraction is the fraction of dynamic instructions the
	// partitioner moved to the augmented FP subsystem — the paper's
	// headline per-run number.
	MetricOffloadFraction = "offload_fraction"

	// PrefixHost namespaces the simulator's own Go-level cost (see
	// internal/obs/hostmetrics). Host metrics are nondeterministic by
	// nature and are only exported on explicit request (-hostmetrics) so
	// the default metric documents stay byte-stable.
	PrefixHost = "host."

	// Host-side self-metric names: wall time and allocation/GC deltas
	// around the simulated region, as measured by hostmetrics.Measure.
	MetricHostWallNS    = "wall_ns"
	MetricHostAllocs    = "allocs"
	MetricHostBytes     = "bytes"
	MetricHostGCPauseNS = "gc_pause_ns"
	MetricHostGCCycles  = "gc_cycles"
	// MetricHostSimsPerSec is simulated cycles per host second — the
	// simulator-throughput headline the ROADMAP's speed work tracks.
	MetricHostSimsPerSec = "sims_per_sec"
)
