package obs

// Canonical metric names. The functional simulator and the timing model
// export overlapping vocabularies ("loads" means the same event in both);
// keeping the shared names here stops the exporters and their consumers
// from drifting apart one string literal at a time. Names unique to one
// exporter stay at its AddTo site.
const (
	// PrefixSim and PrefixUarch namespace the two exporters' metrics in a
	// shared registry (e.g. "sim.loads" vs "uarch.loads": dynamic load
	// instructions counted functionally vs. loads the pipeline executed).
	PrefixSim   = "sim."
	PrefixUarch = "uarch."

	// MetricLoads / MetricStores count executed memory operations; both
	// exporters emit them under their own prefix.
	MetricLoads  = "loads"
	MetricStores = "stores"

	// MetricDynamicInstructions is the functional dynamic instruction
	// count; MetricInstructions the timing model's retired count. A run
	// that finishes cleanly reports the same value for both.
	MetricDynamicInstructions = "dynamic_instructions"
	MetricInstructions        = "instructions"

	// MetricCycles and MetricIssueActiveCycles carry the timing model's
	// closed cycle ledger: cycles = issue_active_cycles + Σ stall.*.
	MetricCycles            = "cycles"
	MetricIssueActiveCycles = "issue_active_cycles"

	// MetricOffloadFraction is the fraction of dynamic instructions the
	// partitioner moved to the augmented FP subsystem — the paper's
	// headline per-run number.
	MetricOffloadFraction = "offload_fraction"

	// PrefixTimeline and PrefixPhase namespace the flight recorder's
	// summary metrics: windowed occupancy/stall sampling (timeline.*) and
	// the online phase segmentation computed from it (phase.*). The full
	// time series travels as an fpint-timeline/v1 document (see
	// internal/obs/timeline); the registry carries only its envelope.
	PrefixTimeline = "timeline."
	PrefixPhase    = "phase."

	// Timeline envelope metrics: window count, configured window width in
	// cycles, and whether the windows are fast-mode estimates (1) or
	// detailed measurements (0).
	MetricTimelineWindows     = "windows"
	MetricTimelineWindowWidth = "window_width"
	MetricTimelineEstimated   = "estimated"

	// MetricPhaseCount is the number of phases the segmenter found.
	MetricPhaseCount = "count"

	// MetricRunExit is the simulated program's exit value.
	MetricRunExit = "run.exit"

	// Fast-mode provenance gauges, exported under PrefixUarch by runs that
	// used the sampled-timing fast path: how many detailed windows were
	// measured, how much of the stream they covered, and whether the run
	// degenerated to the exact detailed model.
	MetricFastWindows              = "fast.windows"
	MetricFastMeasuredInstructions = "fast.measured_instructions"
	MetricFastMeasuredCycles       = "fast.measured_cycles"
	MetricFastSampledFraction      = "fast.sampled_fraction"
	MetricFastExact                = "fast.exact"

	// PrefixHost namespaces the simulator's own Go-level cost (see
	// internal/obs/hostmetrics). Host metrics are nondeterministic by
	// nature and are only exported on explicit request (-hostmetrics) so
	// the default metric documents stay byte-stable.
	PrefixHost = "host."

	// Host-side self-metric names: wall time and allocation/GC deltas
	// around the simulated region, as measured by hostmetrics.Measure.
	MetricHostWallNS    = "wall_ns"
	MetricHostAllocs    = "allocs"
	MetricHostBytes     = "bytes"
	MetricHostGCPauseNS = "gc_pause_ns"
	MetricHostGCCycles  = "gc_cycles"
	// MetricHostSimsPerSec is simulated cycles per host second — the
	// simulator-throughput headline the ROADMAP's speed work tracks.
	MetricHostSimsPerSec = "sims_per_sec"

	// PrefixService namespaces the fpintd daemon's own operational
	// counters in /statsz. They are maintained as atomics inside
	// internal/service (Registry itself is not concurrency-safe) and
	// rendered into a fresh registry per /statsz request.
	PrefixService = "service."

	// Admission and execution counters: accepted into a queue, refused
	// with 503 (queue full or draining), completed (any outcome), and
	// worker panics converted to 500s by the per-job recover barrier.
	MetricServiceAccepted        = "jobs_accepted"
	MetricServiceShed            = "jobs_shed"
	MetricServiceCompleted       = "jobs_completed"
	MetricServicePanicsRecovered = "panics_recovered"

	// Per-class outcome counters are emitted as
	// service.outcome.<class> using the fperr class names.
	MetricServiceOutcomePrefix = "outcome."

	// Artifact-cache counters: lookups that hit, missed, or found a
	// tampered entry (refused and recomputed), plus the live entry count.
	MetricServiceCacheHits     = "cache_hits"
	MetricServiceCacheMisses   = "cache_misses"
	MetricServiceCacheTampered = "cache_tampered"
	MetricServiceCacheEntries  = "cache_entries"

	// MetricServiceDraining is 1 once SIGTERM started the drain.
	MetricServiceDraining = "draining"

	// Comparison identifiers shared by the run-record gate
	// (internal/obs/runstore) and the fpistat diff renderer: the exact
	// guest-cycle contract plus the min-over-samples host aggregates the
	// noise-aware comparisons key on.
	MetricGuestCycles   = "guest.cycles"
	MetricHostMinWallNS = PrefixHost + "min_wall_ns"
	MetricHostMinAllocs = PrefixHost + "min_allocs"
)
