package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(40)
	r.Counter("a.count").Add(2)
	r.Gauge("rate").Set(0.5)
	r.Gauge("weird\"name").Set(1.25)
	h := r.Histogram("occ", []float64{0, 1, 2})
	h.Observe(0)
	h.ObserveN(1, 3)
	h.Observe(9) // overflow bucket
	return r
}

// The JSON encoding is pinned byte-for-byte: consumers diff these documents
// across runs, so any formatting change is a breaking change.
func TestRegistryWriteJSONGolden(t *testing.T) {
	const want = `{
  "counters": {
    "a.count": 42,
    "b.count": 2
  },
  "gauges": {
    "rate": 0.5,
    "weird\"name": 1.25
  },
  "histograms": {
    "occ": {"bounds": [0,1,2], "counts": [1,3,0,1], "count": 5, "sum": 12}
  }
}
`
	var sb strings.Builder
	if err := sampleRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("JSON drifted:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
	// And it must be parseable by a standard JSON decoder.
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
}

func TestRegistryWriteCSVGolden(t *testing.T) {
	const want = `kind,name,key,value
counter,a.count,,42
counter,b.count,,2
gauge,rate,,0.5
gauge,"weird""name",,1.25
histogram,occ,le=0,1
histogram,occ,le=1,3
histogram,occ,le=2,0
histogram,occ,le=+Inf,1
histogram,occ,count,5
histogram,occ,sum,12
`
	var sb strings.Builder
	if err := sampleRegistry().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("CSV drifted:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestRegistryDeterminism(t *testing.T) {
	var a, b strings.Builder
	if err := sampleRegistry().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two identical registries encoded differently")
	}
}

func TestFormatFloatClampsNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Gauge("nan").Set(math.NaN())
	r.Gauge("inf").Set(math.Inf(1))
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]float64
	if err := json.Unmarshal([]byte(sb.String()), &struct{}{}); err != nil {
		t.Fatalf("NaN/Inf gauges corrupted the JSON document: %v\n%s", err, sb.String())
	}
	_ = doc
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 20})
	h.Observe(10) // bounds are inclusive upper bounds
	h.Observe(10.5)
	h.Observe(25)
	h.ObserveN(5, 0)  // n<=0 is a no-op
	h.ObserveN(5, -3) // n<=0 is a no-op
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 45.5 {
		t.Errorf("sum = %v, want 45.5", h.Sum())
	}
	if got := h.Mean(); math.Abs(got-45.5/3) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if (&Histogram{}).Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
}

// The trace encoder must produce a document a standard JSON decoder accepts,
// with the trace-event fields Perfetto requires.
func TestWriteTraceValidJSON(t *testing.T) {
	events := []TraceEvent{
		ThreadName(1, 2, "INT"),
		Span("exec", "pipe", 5, 3, 1, 2),
		Instant("mispredict", 9, 1, 2),
		{Name: "argy", Ph: "X", Ts: 1, Dur: 1, Pid: 1, Tid: 2,
			Args: map[string]string{"b": "2", "a": "1"}},
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   *int64            `json:"ts"`
			Dur  *int64            `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Args["name"] != "INT" {
		t.Errorf("metadata event wrong: %+v", doc.TraceEvents[0])
	}
	span := doc.TraceEvents[1]
	if span.Ph != "X" || span.Ts == nil || *span.Ts != 5 || span.Dur == nil || *span.Dur != 3 {
		t.Errorf("span event wrong: %+v", span)
	}
	inst := doc.TraceEvents[2]
	if inst.Ph != "i" || inst.S != "t" {
		t.Errorf("instant event must be thread-scoped: %+v", inst)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Determinism: args in sorted key order, byte-stable across encodes.
	var sb2 strings.Builder
	if err := WriteTrace(&sb2, events); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("trace encoding is not deterministic")
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	if e := Span("x", "", 10, -5, 1, 1); e.Dur != 0 {
		t.Errorf("negative duration not clamped: %d", e.Dur)
	}
}

func TestPassLogNilSafe(t *testing.T) {
	var l *PassLog
	l.Add("p", "u", 1, 2, 3) // must not panic
	if obs := l.Observer(); obs != nil {
		t.Error("nil log should yield a nil observer")
	}
}

func TestPassLogJSONAndDelta(t *testing.T) {
	l := &PassLog{}
	l.Add("dce", "main", 100, 10, 7)
	if l.Records[0].Delta() != -3 {
		t.Errorf("delta = %d, want -3", l.Records[0].Delta())
	}
	var sb strings.Builder
	if err := l.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &recs); err != nil {
		t.Fatalf("pass log JSON invalid: %v\n%s", err, sb.String())
	}
	if len(recs) != 1 || recs[0]["pass"] != "dce" || recs[0]["delta"] != float64(-3) {
		t.Errorf("pass log JSON wrong: %v", recs)
	}
	if !strings.Contains(l.String(), "dce") {
		t.Error("String() missing pass name")
	}
}
