package obs

import (
	"fmt"
	"io"
	"strings"
)

// PassRecord is one compiler-pass execution: which pass ran on which unit
// (function or module), how long it took, and how the IR instruction count
// changed.
type PassRecord struct {
	Pass   string
	Unit   string
	Nanos  int64
	Before int // instruction count before the pass
	After  int // instruction count after the pass
}

// Delta returns the IR instruction delta (negative when the pass shrank
// the unit).
func (r PassRecord) Delta() int { return r.After - r.Before }

// PassLog accumulates pass records in execution order. The zero value is
// ready to use; a nil *PassLog is a valid no-op sink.
type PassLog struct {
	Records []PassRecord
}

// Add appends one record. Safe on a nil log.
func (l *PassLog) Add(pass, unit string, nanos int64, before, after int) {
	if l == nil {
		return
	}
	l.Records = append(l.Records, PassRecord{Pass: pass, Unit: unit, Nanos: nanos, Before: before, After: after})
}

// Observer adapts the log to the opt.PassObserver callback shape. A nil
// log yields a nil observer, which instrumented pipelines treat as "off".
func (l *PassLog) Observer() func(pass, unit string, nanos int64, before, after int) {
	if l == nil {
		return nil
	}
	return l.Add
}

// TraceEvents renders the log as Chrome trace spans on one "compiler"
// track of the given process: records are laid out back-to-back from ts 0
// in execution order, each span lasting the pass's measured wall time in
// microseconds (clamped to at least 1 so sub-microsecond passes stay
// visible). Together with the pipeline journal's cycle spans and the
// timeline counter tracks, this makes one compile+simulate job a single
// unified trace; the compiler track's clock is host wall time while the
// simulation tracks tick in cycles, so the two groups are read
// independently.
func (l *PassLog) TraceEvents(pid int) []TraceEvent {
	if l == nil || len(l.Records) == 0 {
		return nil
	}
	events := []TraceEvent{ThreadName(pid, 1, "compiler")}
	ts := int64(0)
	for _, r := range l.Records {
		dur := r.Nanos / 1000
		if dur < 1 {
			dur = 1
		}
		ev := Span(r.Pass, "compile", ts, dur, pid, 1)
		ev.Args = map[string]string{"unit": r.Unit}
		if r.Before != 0 || r.After != 0 {
			ev.Args["instrs"] = fmt.Sprintf("%d->%d", r.Before, r.After)
		}
		events = append(events, ev)
		ts += dur
	}
	return events
}

// String renders the log as an aligned table.
func (l *PassLog) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %-20s %12s %7s %7s %7s\n", "pass", "unit", "ns", "before", "after", "delta")
	for _, r := range l.Records {
		fmt.Fprintf(&sb, "%-20s %-20s %12d %7d %7d %+7d\n", r.Pass, r.Unit, r.Nanos, r.Before, r.After, r.Delta())
	}
	return sb.String()
}

// WriteJSON encodes the log as a JSON array in execution order. Wall times
// are real measurements and therefore not run-stable; every other field
// is deterministic.
func (l *PassLog) WriteJSON(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("[\n")
	for i, r := range l.Records {
		if i > 0 {
			sb.WriteString(",\n")
		}
		fmt.Fprintf(&sb, "  {\"pass\": %s, \"unit\": %s, \"nanos\": %d, \"before\": %d, \"after\": %d, \"delta\": %d}",
			quote(r.Pass), quote(r.Unit), r.Nanos, r.Before, r.After, r.Delta())
	}
	sb.WriteString("\n]\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
