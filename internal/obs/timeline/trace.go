package timeline

import "fpint/internal/obs"

// CounterEvents renders the timeline as Perfetto counter tracks on pid:
// one sample per window at the window's start cycle, plus a trailing
// sample at the run's end so every track spans the whole run. Tracks:
//
//	timeline/ipc        ipc
//	timeline/issue      active, slot_util
//	timeline/occupancy  int_win, fp_win, rob
//	timeline/offload    fpa_occ, ratio
//	timeline/stalls     one series per stall cause with nonzero cycles
//	timeline/hitrates   bpred, icache, dcache
//
// Causes that never stalled are dropped from timeline/stalls to keep the
// trace small; the JSON/CSV encodings always carry the full mix.
func (t *Timeline) CounterEvents(pid int) []obs.TraceEvent {
	if len(t.Windows) == 0 {
		return nil
	}
	nc := len(t.StallCauses)
	liveCauses := make([]int, 0, nc)
	for c := 0; c < nc; c++ {
		for i := range t.Windows {
			if t.Windows[i].StallCauseCycles(c, nc) > 0 {
				liveCauses = append(liveCauses, c)
				break
			}
		}
	}
	events := make([]obs.TraceEvent, 0, len(t.Windows)*6+6)
	sample := func(ts int64, w *Window) {
		events = append(events,
			obs.CounterEvent("timeline/ipc", ts, pid, map[string]float64{
				"ipc": w.IPC(),
			}),
			obs.CounterEvent("timeline/issue", ts, pid, map[string]float64{
				"active":    w.IssueActiveFrac(),
				"slot_util": w.SlotUtil(t.IssueWidth),
			}),
			obs.CounterEvent("timeline/occupancy", ts, pid, map[string]float64{
				"int_win": w.MeanIntOcc(),
				"fp_win":  w.MeanFpOcc(),
				"rob":     w.MeanROBOcc(),
			}),
			obs.CounterEvent("timeline/offload", ts, pid, map[string]float64{
				"fpa_occ": w.FPaOcc(),
				"ratio":   w.OffloadRatio(),
			}),
			obs.CounterEvent("timeline/hitrates", ts, pid, map[string]float64{
				"bpred":  w.BpredHitRate(),
				"icache": w.ICacheHitRate(),
				"dcache": w.DCacheHitRate(),
			}),
		)
		if len(liveCauses) > 0 {
			stalls := make(map[string]float64, len(liveCauses))
			for _, c := range liveCauses {
				stalls[t.StallCauses[c]] = ratio(w.StallCauseCycles(c, nc), w.Cycles)
			}
			events = append(events, obs.CounterEvent("timeline/stalls", ts, pid, stalls))
		}
	}
	for i := range t.Windows {
		w := &t.Windows[i]
		sample(w.StartCycle, w)
	}
	last := &t.Windows[len(t.Windows)-1]
	sample(last.EndCycle(), last)
	return events
}
