package timeline

import (
	"bytes"
	"strings"
	"testing"
)

// synth builds a valid timeline of n windows of width cycles each. shape
// picks the per-window regime: it returns (issueActive, fpa, stallCause)
// and the remaining cycles are charged to that single stall cause on
// subsystem 0.
func synth(n int, width int64, shape func(i int) (active, fpa int64, cause int)) *Timeline {
	t := &Timeline{
		Schema:      Schema,
		Program:     "synthetic",
		Config:      "test",
		WindowWidth: width,
		IssueWidth:  4,
		Subsystems:  []string{"INT", "FP", "FPa"},
		StallCauses: []string{"raw-wait", "dcache", "frontend"},
	}
	nc := len(t.StallCauses)
	for i := 0; i < n; i++ {
		active, fpa, cause := shape(i)
		w := Window{
			Index:        i,
			StartCycle:   int64(i) * width,
			Cycles:       width,
			Instructions: active * 2,
			IssueActive:  active,
			IssuedINT:    active*2 - fpa,
			IssuedFPa:    fpa,
			Loads:        active / 2,
			IntOccSum:    width * 3,
			ROBOccSum:    width * 8,
			Stalls:       make([]int64, len(t.Subsystems)*nc),
		}
		w.Stalls[cause] = width - active
		t.Windows = append(t.Windows, w)
		t.TotalCycles += w.Cycles
		t.TotalInstructions += w.Instructions
	}
	return t
}

// twoPhase: windows 0..7 are issue-heavy with FPa traffic, 8..15 are
// dcache-bound with none — two clearly separated regimes.
func twoPhase() *Timeline {
	return synth(16, 100, func(i int) (int64, int64, int) {
		if i < 8 {
			return 90, 40, 0
		}
		return 20, 0, 1
	})
}

func TestValidate(t *testing.T) {
	tl := twoPhase()
	if err := tl.Validate(); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}

	broken := twoPhase()
	broken.Windows[3].StartCycle++
	if err := broken.Validate(); err == nil {
		t.Error("window gap not detected")
	}

	broken = twoPhase()
	broken.Windows[5].IssueActive++
	if err := broken.Validate(); err == nil {
		t.Error("open per-window ledger not detected")
	}

	broken = twoPhase()
	broken.TotalCycles++
	if err := broken.Validate(); err == nil {
		t.Error("cycle-sum mismatch not detected")
	}

	broken = twoPhase()
	broken.Windows[0].Stalls = broken.Windows[0].Stalls[:4]
	if err := broken.Validate(); err == nil {
		t.Error("truncated stall matrix not detected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tl := twoPhase()
	tl.Estimated = true
	tl.SampledFraction = 0.25
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	if !strings.Contains(first, `"schema": "fpint-timeline/v1"`) {
		t.Errorf("schema id missing from document:\n%.200s", first)
	}
	got, err := ReadJSON(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Error("JSON round trip is not byte-stable")
	}
	if !got.Estimated || got.SampledFraction != 0.25 {
		t.Error("fast-mode provenance lost in round trip")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	tl := twoPhase()
	tl.TotalCycles += 7
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); err == nil {
		t.Error("ReadJSON accepted a document with an open cycle ledger")
	}
}

func TestWriteCSV(t *testing.T) {
	tl := twoPhase()
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+len(tl.Windows) {
		t.Fatalf("got %d lines, want header + %d windows", len(lines), len(tl.Windows))
	}
	header := strings.Split(lines[0], ",")
	wantCols := 18 + len(tl.StallCauses)
	if len(header) != wantCols {
		t.Fatalf("header has %d columns, want %d: %v", len(header), wantCols, header)
	}
	if header[len(header)-1] != "stall_frontend" {
		t.Errorf("last stall column = %q, want stall_frontend", header[len(header)-1])
	}
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, got, wantCols)
		}
	}
	// Window 0: 90/100 active, ipc 1.8.
	row := strings.Split(lines[1], ",")
	if row[4] != "1.8" || row[5] != "0.9" {
		t.Errorf("window 0 ipc/active = %s/%s, want 1.8/0.9", row[4], row[5])
	}
}

func TestCounterEvents(t *testing.T) {
	tl := twoPhase()
	events := tl.CounterEvents(1)
	// 6 tracks per sample (ipc, issue, occupancy, offload, hitrates,
	// stalls), one sample per window plus the trailing end-of-run sample.
	want := (len(tl.Windows) + 1) * 6
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
	var prev int64
	for _, e := range events {
		if e.Ph != "C" {
			t.Fatalf("non-counter event %+v", e)
		}
		if e.Ts < prev {
			t.Fatalf("events not in ts order: %d after %d", e.Ts, prev)
		}
		prev = e.Ts
	}
	if last := events[len(events)-1]; last.Ts != tl.TotalCycles {
		t.Errorf("trailing sample at ts %d, want run end %d", last.Ts, tl.TotalCycles)
	}
	for _, e := range events {
		if e.Name != "timeline/stalls" {
			continue
		}
		if _, ok := e.Num["frontend"]; ok {
			t.Fatal("all-zero stall cause not dropped from counter track")
		}
		if _, ok := e.Num["dcache"]; !ok {
			t.Fatal("live stall cause missing from counter track")
		}
	}
}

func TestSegmentTwoPhase(t *testing.T) {
	tl := twoPhase()
	phases := tl.Segment(DefaultSegConfig())
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(phases), phases)
	}
	a, b := phases[0], phases[1]
	if a.FirstWindow != 0 || a.LastWindow != 7 || b.FirstWindow != 8 || b.LastWindow != 15 {
		t.Fatalf("phase boundaries %d-%d / %d-%d, want 0-7 / 8-15",
			a.FirstWindow, a.LastWindow, b.FirstWindow, b.LastWindow)
	}
	if a.Cycles+b.Cycles != tl.TotalCycles || a.Instructions+b.Instructions != tl.TotalInstructions {
		t.Error("phases do not partition the run")
	}
	if a.DominantStall != "raw-wait" || b.DominantStall != "dcache" {
		t.Errorf("dominant stalls %q/%q, want raw-wait/dcache", a.DominantStall, b.DominantStall)
	}
	if a.FPaOcc <= b.FPaOcc {
		t.Errorf("phase 0 FPa occupancy %.2f should exceed phase 1's %.2f", a.FPaOcc, b.FPaOcc)
	}
	if a.IPC != 1.8 || b.IPC != 0.4 {
		t.Errorf("phase IPCs %.2f/%.2f, want 1.80/0.40", a.IPC, b.IPC)
	}
}

func TestSegmentAbsorbsOutlier(t *testing.T) {
	// One divergent window inside a steady run must not split a phase
	// when Confirm is 2.
	tl := synth(16, 100, func(i int) (int64, int64, int) {
		if i == 8 {
			return 10, 0, 2
		}
		return 90, 40, 0
	})
	phases := tl.Segment(DefaultSegConfig())
	if len(phases) != 1 {
		t.Fatalf("outlier window split the run into %d phases: %+v", len(phases), phases)
	}
	if phases[0].Windows() != 16 {
		t.Errorf("phase covers %d windows, want 16", phases[0].Windows())
	}
}

func TestSegmentDegenerate(t *testing.T) {
	one := synth(1, 50, func(int) (int64, int64, int) { return 30, 5, 0 })
	phases := one.Segment(DefaultSegConfig())
	if len(phases) != 1 || phases[0].Cycles != 50 {
		t.Fatalf("single-window timeline: %+v", phases)
	}
	var empty Timeline
	if got := empty.Segment(DefaultSegConfig()); got != nil {
		t.Fatalf("empty timeline produced phases: %+v", got)
	}
}
