package timeline

// Online phase segmentation: change-point detection over the per-window
// feature vectors (see Timeline.Features). The algorithm keeps a running
// mean of the current phase's features; a window whose L1 distance from
// that mean exceeds Threshold starts a candidate change, and Confirm
// consecutive divergent windows confirm it — a single outlier window
// (e.g. a cold-start or fault-recovery spike) is absorbed rather than
// split into its own phase. Phases always partition the window sequence,
// so phase statistics computed from exact window sums inherit the
// timeline's closure.

// SegConfig tunes the segmenter.
type SegConfig struct {
	// MinWindows is the minimum phase length: a phase absorbs at least
	// this many windows before a change can be called.
	MinWindows int
	// Threshold is the L1 feature distance beyond which a window counts
	// as divergent from the current phase's running mean.
	Threshold float64
	// Confirm is how many consecutive divergent windows confirm a change
	// point.
	Confirm int
}

// DefaultSegConfig returns the defaults shared by every CLI surface
// (fpisim, fpibench, fpistat phasediff), so phase tables from different
// tools line up.
func DefaultSegConfig() SegConfig {
	return SegConfig{MinWindows: 4, Threshold: 0.35, Confirm: 2}
}

func (c SegConfig) sane() SegConfig {
	if c.MinWindows < 1 {
		c.MinWindows = 1
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultSegConfig().Threshold
	}
	if c.Confirm < 1 {
		c.Confirm = 1
	}
	return c
}

// Phase is one segment of the run: a contiguous window range with
// aggregate statistics computed from exact window sums.
type Phase struct {
	ID          int `json:"id"`
	FirstWindow int `json:"first_window"`
	LastWindow  int `json:"last_window"`

	StartCycle   int64 `json:"start_cycle"`
	Cycles       int64 `json:"cycles"`
	Instructions int64 `json:"instructions"`

	IPC float64 `json:"ipc"`
	// FPaOcc is the phase's mean FPa occupancy (FPa instructions issued
	// per cycle) — the signal dynamic scheme selection keys on.
	FPaOcc float64 `json:"fpa_occ"`
	// OffloadRatio is the fraction of issued instructions that went to FPa.
	OffloadRatio float64 `json:"offload_ratio"`

	// DominantStall names the cause with the most stalled cycles in the
	// phase ("none" when every cycle issued), and DominantStallFrac its
	// share of the phase's cycles.
	DominantStall     string  `json:"dominant_stall"`
	DominantStallFrac float64 `json:"dominant_stall_frac"`
}

// Windows returns the number of windows in the phase.
func (p *Phase) Windows() int { return p.LastWindow - p.FirstWindow + 1 }

// Segment runs change-point detection over the timeline and returns its
// phases. The phases partition [0, len(Windows)): every window belongs to
// exactly one phase, so summing phase cycles reproduces TotalCycles.
func (t *Timeline) Segment(cfg SegConfig) []Phase {
	n := len(t.Windows)
	if n == 0 {
		return nil
	}
	cfg = cfg.sane()

	// Change-point pass: find phase start indices.
	dim := 2 + len(t.StallCauses)
	mean := make([]float64, dim)
	feat := make([]float64, 0, dim)
	starts := []int{0}
	count := 0    // windows absorbed into the current phase
	streak := 0   // consecutive divergent windows
	streakAt := 0 // index of the first divergent window
	add := func(f []float64) {
		for i, v := range f {
			mean[i] += (v - mean[i]) / float64(count+1)
		}
		count++
	}
	reset := func() {
		for i := range mean {
			mean[i] = 0
		}
		count, streak = 0, 0
	}
	for i := 0; i < n; i++ {
		feat = t.Features(&t.Windows[i], feat)
		if count < cfg.MinWindows {
			add(feat)
			continue
		}
		var dist float64
		for j, v := range feat {
			d := v - mean[j]
			if d < 0 {
				d = -d
			}
			dist += d
		}
		if dist <= cfg.Threshold {
			// Converged again: any pending divergent windows were an
			// outlier blip — absorb them.
			if streak > 0 {
				for j := streakAt; j < i; j++ {
					add(t.Features(&t.Windows[j], feat[:0]))
				}
				feat = t.Features(&t.Windows[i], feat)
				streak = 0
			}
			add(feat)
			continue
		}
		if streak == 0 {
			streakAt = i
		}
		streak++
		if streak < cfg.Confirm {
			continue
		}
		// Confirmed change: the new phase starts at the first divergent
		// window; seed it with the divergent run seen so far.
		starts = append(starts, streakAt)
		from := streakAt
		reset()
		for j := from; j <= i; j++ {
			add(t.Features(&t.Windows[j], feat[:0]))
		}
	}

	// Aggregate pass: exact window sums per phase.
	phases := make([]Phase, 0, len(starts))
	nc := len(t.StallCauses)
	causeCycles := make([]int64, nc)
	for pi, first := range starts {
		last := n - 1
		if pi+1 < len(starts) {
			last = starts[pi+1] - 1
		}
		p := Phase{ID: pi, FirstWindow: first, LastWindow: last, StartCycle: t.Windows[first].StartCycle}
		var issued, fpa int64
		for i := range causeCycles {
			causeCycles[i] = 0
		}
		for i := first; i <= last; i++ {
			w := &t.Windows[i]
			p.Cycles += w.Cycles
			p.Instructions += w.Instructions
			issued += w.IssuedTotal()
			fpa += w.IssuedFPa
			for c := 0; c < nc; c++ {
				causeCycles[c] += w.StallCauseCycles(c, nc)
			}
		}
		p.IPC = ratio(p.Instructions, p.Cycles)
		p.FPaOcc = ratio(fpa, p.Cycles)
		p.OffloadRatio = ratio(fpa, issued)
		p.DominantStall = "none"
		var top int64
		for c := 0; c < nc; c++ {
			if causeCycles[c] > top {
				top = causeCycles[c]
				p.DominantStall = t.StallCauses[c]
				p.DominantStallFrac = ratio(top, p.Cycles)
			}
		}
		phases = append(phases, p)
	}
	return phases
}
