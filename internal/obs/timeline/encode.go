package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteJSON encodes the timeline as an fpint-timeline/v1 document. The
// schema has no maps, so encoding/json emits fields in declaration order
// and the output is byte-stable for a given run.
func (t *Timeline) WriteJSON(w io.Writer) error {
	t.Schema = Schema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON decodes and validates an fpint-timeline/v1 document.
func ReadJSON(r io.Reader) (*Timeline, error) {
	var t Timeline
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("timeline: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ReadFile reads and validates a timeline document from path.
func ReadFile(path string) (*Timeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// WriteCSV writes the plot-ready projection: one row per window with the
// derived rates (IPC, issue/slot utilization, occupancy means, hit rates,
// offload) and one stall-fraction column per cause, summed across
// subsystems. Column order is fixed; floats use the shortest round-trip
// form, so the output is byte-stable.
func (t *Timeline) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("window,start_cycle,cycles,instructions,ipc,issue_active,slot_util,int_occ,fp_occ,rob_occ,fpa_occ,offload,loads,stores,bpred_hit,icache_hit,dcache_hit,faults")
	for _, cause := range t.StallCauses {
		sb.WriteString(",stall_")
		sb.WriteString(strings.ReplaceAll(cause, "-", "_"))
	}
	sb.WriteByte('\n')
	nc := len(t.StallCauses)
	for i := range t.Windows {
		win := &t.Windows[i]
		cols := []string{
			strconv.Itoa(win.Index),
			strconv.FormatInt(win.StartCycle, 10),
			strconv.FormatInt(win.Cycles, 10),
			strconv.FormatInt(win.Instructions, 10),
			formatFloat(win.IPC()),
			formatFloat(win.IssueActiveFrac()),
			formatFloat(win.SlotUtil(t.IssueWidth)),
			formatFloat(win.MeanIntOcc()),
			formatFloat(win.MeanFpOcc()),
			formatFloat(win.MeanROBOcc()),
			formatFloat(win.FPaOcc()),
			formatFloat(win.OffloadRatio()),
			strconv.FormatInt(win.Loads, 10),
			strconv.FormatInt(win.Stores, 10),
			formatFloat(win.BpredHitRate()),
			formatFloat(win.ICacheHitRate()),
			formatFloat(win.DCacheHitRate()),
			strconv.FormatInt(win.Faults, 10),
		}
		for c := 0; c < nc; c++ {
			cols = append(cols, formatFloat(ratio(win.StallCauseCycles(c, nc), win.Cycles)))
		}
		sb.WriteString(strings.Join(cols, ","))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
