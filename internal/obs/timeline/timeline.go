// Package timeline is the flight-recorder schema: a run rendered as a
// sequence of fixed-width cycle windows, each carrying the same closed
// ledger the end-of-run aggregates carry (issue activity, stall mix,
// occupancy, cache/bpred traffic). Where the stall ledger answers "where
// did the cycles go", the timeline answers "when" — the per-phase FPa
// occupancy signal ROADMAP item 3's dynamic scheme selection needs.
//
// The document format is fpint-timeline/v1 (JSON), with a plot-ready CSV
// projection and a Perfetto counter-track export. Like every ledger in
// this repo the timeline closes: window cycles sum to the run's total and
// per-window stall mixes sum to the closed stall ledger; Validate checks
// both, and the root acceptance test enforces them for every testdata
// program on both Table 1 configurations.
//
// The package holds only the schema and its consumers (encoders, the
// phase segmenter). The allocation-free recorder that fills it from the
// pipeline loop lives in internal/uarch, which imports this package.
package timeline

import (
	"fmt"
	"math"
	"strconv"
)

// Schema identifies the document format version.
const Schema = "fpint-timeline/v1"

// Timeline is one run's windowed time series. All per-window fields are
// raw integer counter deltas between window boundaries; rates and means
// are derived on demand so the document stays byte-stable and closure is
// checkable in exact arithmetic.
type Timeline struct {
	Schema  string `json:"schema"`
	Program string `json:"program,omitempty"`
	Config  string `json:"config,omitempty"`

	// WindowWidth is the configured window width in cycles; the final
	// window (and, in fast mode, windows truncated by the sampler) may be
	// shorter.
	WindowWidth int64 `json:"window_width"`
	// IssueWidth is the machine's issue width, the denominator of the
	// per-window slot-utilization rate.
	IssueWidth int `json:"issue_width"`

	// Estimated marks fast-mode (sampled-timing) runs: the windows cover
	// only the detailed warmup+measured cycles, not the whole program, and
	// SampledFraction records how much of the instruction stream they
	// measured. Detailed runs set Estimated false and cover every cycle.
	Estimated       bool    `json:"estimated"`
	SampledFraction float64 `json:"sampled_fraction,omitempty"`

	// TotalCycles and TotalInstructions are the run totals the windows
	// must sum to (in fast mode, the totals of the detailed windows).
	TotalCycles       int64 `json:"total_cycles"`
	TotalInstructions int64 `json:"total_instructions"`

	// Subsystems and StallCauses name the rows and columns of each
	// window's flattened stall matrix, in matrix order.
	Subsystems  []string `json:"subsystems"`
	StallCauses []string `json:"stall_causes"`

	Windows []Window `json:"windows"`
}

// Window is one fixed-width sample: counter deltas across [StartCycle,
// StartCycle+Cycles).
type Window struct {
	Index        int   `json:"index"`
	StartCycle   int64 `json:"start_cycle"`
	Cycles       int64 `json:"cycles"`
	Instructions int64 `json:"instructions"`

	// IssueActive counts cycles in which at least one instruction issued;
	// Cycles − IssueActive equals the window's stall total (the closed
	// ledger, per window).
	IssueActive int64 `json:"issue_active"`

	// Instructions issued to each subsystem during the window.
	IssuedINT int64 `json:"issued_int"`
	IssuedFP  int64 `json:"issued_fp"`
	IssuedFPa int64 `json:"issued_fpa"`

	Loads  int64 `json:"loads"`
	Stores int64 `json:"stores"`

	// Occupancy sums: Σ over the window's cycles of the end-of-cycle
	// INT-window / FP-window / in-flight counts; divide by Cycles for the
	// window's mean occupancy.
	IntOccSum int64 `json:"int_occ_sum"`
	FpOccSum  int64 `json:"fp_occ_sum"`
	ROBOccSum int64 `json:"rob_occ_sum"`

	BpredLookups     int64 `json:"bpred_lookups"`
	BpredMispredicts int64 `json:"bpred_mispredicts"`
	ICacheAccesses   int64 `json:"icache_accesses"`
	ICacheMisses     int64 `json:"icache_misses"`
	DCacheAccesses   int64 `json:"dcache_accesses"`
	DCacheMisses     int64 `json:"dcache_misses"`

	// Faults counts transient faults injected during the window (nonzero
	// only under fault injection).
	Faults int64 `json:"faults"`

	// Stalls is the window's stall matrix, flattened row-major:
	// Stalls[sub*len(StallCauses)+cause] cycles were charged to that
	// subsystem and cause. Row/column names are the parent Timeline's
	// Subsystems and StallCauses.
	Stalls []int64 `json:"stalls"`
}

// IssuedTotal returns the instructions issued during the window (across
// all three subsystems; may exceed Instructions when squashed wrong-path
// work issued).
func (w *Window) IssuedTotal() int64 { return w.IssuedINT + w.IssuedFP + w.IssuedFPa }

// IPC returns committed instructions per cycle within the window.
func (w *Window) IPC() float64 { return ratio(w.Instructions, w.Cycles) }

// IssueActiveFrac returns the fraction of the window's cycles that issued
// at least one instruction.
func (w *Window) IssueActiveFrac() float64 { return ratio(w.IssueActive, w.Cycles) }

// SlotUtil returns issued instructions per available issue slot.
func (w *Window) SlotUtil(issueWidth int) float64 {
	if issueWidth <= 0 {
		return 0
	}
	return ratio(w.IssuedTotal(), w.Cycles*int64(issueWidth))
}

// OffloadRatio returns the fraction of issued instructions that went to
// the augmented FP (FPa) subsystem.
func (w *Window) OffloadRatio() float64 { return ratio(w.IssuedFPa, w.IssuedTotal()) }

// FPaOcc returns FPa instructions issued per cycle — the occupancy signal
// dynamic scheme selection keys on.
func (w *Window) FPaOcc() float64 { return ratio(w.IssuedFPa, w.Cycles) }

// MeanIntOcc, MeanFpOcc and MeanROBOcc return the window's mean
// end-of-cycle occupancies.
func (w *Window) MeanIntOcc() float64 { return ratio(w.IntOccSum, w.Cycles) }
func (w *Window) MeanFpOcc() float64  { return ratio(w.FpOccSum, w.Cycles) }
func (w *Window) MeanROBOcc() float64 { return ratio(w.ROBOccSum, w.Cycles) }

// BpredHitRate, ICacheHitRate and DCacheHitRate return per-window hit
// rates (1 when the window saw no traffic of that kind).
func (w *Window) BpredHitRate() float64 {
	return 1 - ratio(w.BpredMispredicts, w.BpredLookups)
}
func (w *Window) ICacheHitRate() float64 { return 1 - ratio(w.ICacheMisses, w.ICacheAccesses) }
func (w *Window) DCacheHitRate() float64 { return 1 - ratio(w.DCacheMisses, w.DCacheAccesses) }

// StallTotal returns the window's total stalled cycles.
func (w *Window) StallTotal() int64 {
	var n int64
	for _, v := range w.Stalls {
		n += v
	}
	return n
}

// StallCauseCycles returns the window's cycles charged to cause (summed
// across subsystems). numCauses is len(Timeline.StallCauses).
func (w *Window) StallCauseCycles(cause, numCauses int) int64 {
	var n int64
	for i := cause; i < len(w.Stalls); i += numCauses {
		n += w.Stalls[i]
	}
	return n
}

// EndCycle returns the first cycle after the window.
func (w *Window) EndCycle() int64 { return w.StartCycle + w.Cycles }

// Validate checks the closed-timeline invariants:
//
//   - windows are contiguous from cycle 0 and their cycles sum to
//     TotalCycles;
//   - window instructions sum to TotalInstructions;
//   - every window individually closes: Cycles == IssueActive + Σ Stalls
//     (the per-window stall ledger);
//   - every stall matrix has len(Subsystems)×len(StallCauses) entries.
//
// The per-window closure plus the cycle sum together imply the run-level
// ledger closure: summing the windows reproduces IssueActiveCycles and
// StallBySub exactly.
func (t *Timeline) Validate() error {
	if t.Schema != Schema {
		return fmt.Errorf("timeline: schema %q, want %q", t.Schema, Schema)
	}
	wantStalls := len(t.Subsystems) * len(t.StallCauses)
	var cycles, instrs int64
	next := int64(0)
	for i := range t.Windows {
		w := &t.Windows[i]
		if w.Index != i {
			return fmt.Errorf("timeline: window %d has index %d", i, w.Index)
		}
		if w.StartCycle != next {
			return fmt.Errorf("timeline: window %d starts at cycle %d, want %d (gap or overlap)", i, w.StartCycle, next)
		}
		if w.Cycles <= 0 {
			return fmt.Errorf("timeline: window %d covers %d cycles", i, w.Cycles)
		}
		if len(w.Stalls) != wantStalls {
			return fmt.Errorf("timeline: window %d has %d stall entries, want %d", i, len(w.Stalls), wantStalls)
		}
		if got := w.IssueActive + w.StallTotal(); got != w.Cycles {
			return fmt.Errorf("timeline: window %d ledger open: issue_active+stalls = %d, cycles = %d", i, got, w.Cycles)
		}
		next = w.EndCycle()
		cycles += w.Cycles
		instrs += w.Instructions
	}
	if cycles != t.TotalCycles {
		return fmt.Errorf("timeline: window cycles sum to %d, total_cycles = %d", cycles, t.TotalCycles)
	}
	if instrs != t.TotalInstructions {
		return fmt.Errorf("timeline: window instructions sum to %d, total_instructions = %d", instrs, t.TotalInstructions)
	}
	return nil
}

// Features returns the window's phase-signature vector, every component
// in [0, 1]: issue-active fraction, offload ratio, then one stall-cycle
// fraction per cause (summed across subsystems). The segmenter detects
// change points over this vector; keeping components commensurate makes
// the L1 distance threshold meaningful.
func (t *Timeline) Features(w *Window, dst []float64) []float64 {
	dst = append(dst[:0], w.IssueActiveFrac(), w.OffloadRatio())
	nc := len(t.StallCauses)
	for c := 0; c < nc; c++ {
		dst = append(dst, ratio(w.StallCauseCycles(c, nc), w.Cycles))
	}
	return dst
}

// ratio returns num/den as a float, 0 when den is 0.
func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// formatFloat renders a float deterministically (shortest round-trip
// form), matching the registry encoders' convention.
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
