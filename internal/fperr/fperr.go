// Package fperr defines the toolchain-wide structured error taxonomy and
// the exit-code contract shared by the fpic, fpisim, fpibench, and fpifuzz
// commands. Every CLI failure is classified into one of four classes and
// mapped to a documented process exit code, replacing the historical
// ad-hoc os.Exit scatter:
//
//	0  success
//	1  usage error        (bad flags or arguments)
//	2  input error        (unreadable, malformed, or misbehaving input program)
//	3  internal error     (toolchain bug: invalid partition, codegen panic, ...)
//	4  degraded-but-succeeded (a compile fell down the degradation ladder
//	   but still produced a correct program)
//	5  performance regression (a gate comparison found guest cycles or host
//	   metrics worse than the baseline beyond tolerance; the code is
//	   functionally correct)
//	6  unavailable (a service refused the work: queue saturated or the
//	   process is draining; retrying later is expected to succeed)
//
// Errors carry their class through wrapping, so deep layers can classify
// once (e.g. the partition verifier tags its report as internal) and the
// CLI rim only calls ExitCode.
//
// The fpintd daemon reuses the same taxonomy over HTTP: every class maps
// to exactly one response status via HTTPStatus, pinned by a unit test so
// a newly added class cannot silently fall through to a default 500.
package fperr

import (
	"errors"
	"fmt"
)

// Class partitions failures by who is at fault and how the process exits.
type Class int

// Error classes, ordered by exit code.
const (
	// ClassNone is the zero value: no failure (exit 0). Never attach it to
	// a real error.
	ClassNone Class = iota
	// ClassUsage: the command line itself is wrong (exit 1).
	ClassUsage
	// ClassInput: the input program is unreadable, malformed, or trapped at
	// run time (exit 2).
	ClassInput
	// ClassInternal: the toolchain itself misbehaved — a partitioner emitted
	// an invalid assignment, a backend panicked, an invariant broke (exit 3).
	ClassInternal
	// ClassDegraded: compilation succeeded only after falling down the
	// degradation ladder (exit 4). The output is correct; the class exists
	// so scripts can detect silent scheme downgrades.
	ClassDegraded
	// ClassRegression: a performance gate found the current run worse than
	// its baseline beyond tolerance (exit 5). Everything is functionally
	// correct — the distinct class lets CI tell "the change is slow" apart
	// from "the toolchain is broken".
	ClassRegression
	// ClassUnavailable: a service declined the work without attempting it —
	// the admission queue is full or the process is draining for shutdown
	// (exit 6, HTTP 503). The request itself may be perfectly valid;
	// retrying after backoff is the expected recovery.
	ClassUnavailable

	// numClasses bounds the defined classes; the status and name tables are
	// sized by it so adding a class without extending them is a compile- or
	// test-time failure, never a silent default.
	numClasses
)

var classNames = [numClasses]string{
	ClassNone:        "none",
	ClassUsage:       "usage",
	ClassInput:       "input",
	ClassInternal:    "internal",
	ClassDegraded:    "degraded",
	ClassRegression:  "regression",
	ClassUnavailable: "unavailable",
}

// String names the class.
func (c Class) String() string {
	if int(c) >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class-%d", int(c))
}

// Error is a classified, wrapped error.
type Error struct {
	Class Class
	Err   error
}

// Error implements error.
func (e *Error) Error() string { return e.Err.Error() }

// Unwrap exposes the wrapped cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// New builds a classified error from a format string.
func New(class Class, format string, args ...any) *Error {
	return &Error{Class: class, Err: fmt.Errorf(format, args...)}
}

// Wrap attaches a class to err, preserving the chain. Wrapping nil returns
// nil; wrapping an already-classified error keeps the innermost (first
// assigned) class, so rims cannot accidentally launder an internal error
// into an input error.
func Wrap(class Class, err error) error {
	if err == nil {
		return nil
	}
	if ClassOf(err) != ClassNone {
		return err
	}
	return &Error{Class: class, Err: err}
}

// Wrapf wraps err with a message prefix and a class (same keep-innermost
// rule as Wrap for pre-classified errors).
func Wrapf(class Class, err error, format string, args ...any) error {
	if err == nil {
		return nil
	}
	wrapped := fmt.Errorf(format+": %w", append(args, err)...)
	if ClassOf(err) != ClassNone {
		return wrapped
	}
	return &Error{Class: class, Err: wrapped}
}

// ClassOf extracts the class from an error chain; ClassNone for nil or
// unclassified errors.
func ClassOf(err error) Class {
	var e *Error
	if errors.As(err, &e) {
		return e.Class
	}
	return ClassNone
}

// ExitCode maps an error to the documented process exit code. Unclassified
// non-nil errors are conservatively treated as internal.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	switch ClassOf(err) {
	case ClassNone:
		return 3 // unclassified failure: assume a toolchain bug
	case ClassUsage:
		return 1
	case ClassInput:
		return 2
	case ClassInternal:
		return 3
	case ClassDegraded:
		return 4
	case ClassRegression:
		return 5
	case ClassUnavailable:
		return 6
	}
	return 3
}

// classHTTPStatus is the daemon's class → HTTP status contract. Degraded
// intentionally shares 200 with success: the degradation ladder produced a
// correct program, and the response body's "degraded" field carries the
// distinction — an HTTP error status would make every retrying client
// re-submit work that already succeeded.
var classHTTPStatus = [numClasses]int{
	ClassNone:        200,
	ClassUsage:       400, // the request itself is malformed
	ClassInput:       422, // well-formed request, misbehaving program (incl. traps and blown budgets)
	ClassInternal:    500, // toolchain bug (incl. recovered worker panics)
	ClassDegraded:    200, // succeeded via the fallback ladder; body carries degraded=true
	ClassRegression:  500, // gate classes never cross the service boundary; treat as internal
	ClassUnavailable: 503, // load shed or draining; Retry-After accompanies it
}

// HTTPStatus maps the class to its daemon response status. Classes outside
// the defined range (which New/Wrap never produce) report 500, matching
// ExitCode's assume-a-bug conservatism.
func (c Class) HTTPStatus() int {
	if c >= 0 && c < numClasses {
		if s := classHTTPStatus[c]; s != 0 {
			return s
		}
	}
	return 500
}

// Classes returns every defined class in order. Consumers that keep
// per-class tables (the daemon's outcome counters, the loadgen's expected
// statuses) iterate this instead of hard-coding the list, so a new class
// reaches them automatically.
func Classes() []Class {
	out := make([]Class, 0, int(numClasses))
	for c := ClassNone; c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// ParseClass inverts Class.String for the defined classes, letting clients
// round-trip the class carried in a response body.
func ParseClass(name string) (Class, bool) {
	for c := ClassNone; c < numClasses; c++ {
		if classNames[c] == name {
			return c, true
		}
	}
	return ClassNone, false
}
