package fperr

import "testing"

// TestEveryClassHasHTTPStatus pins the no-silent-default contract: every
// defined class must carry an explicit HTTP status in the table. A new
// class added without a status entry leaves a zero in the array, which
// this test — not a runtime 500 — catches.
func TestEveryClassHasHTTPStatus(t *testing.T) {
	valid := map[int]bool{200: true, 400: true, 422: true, 500: true, 503: true}
	for c := ClassNone; c < numClasses; c++ {
		s := classHTTPStatus[c]
		if s == 0 {
			t.Errorf("class %s has no HTTP status entry", c)
		}
		if !valid[s] {
			t.Errorf("class %s maps to unexpected status %d", c, s)
		}
		if got := c.HTTPStatus(); got != s {
			t.Errorf("HTTPStatus(%s) = %d, want table entry %d", c, got, s)
		}
	}
	// Every defined class must also have a real name — the name travels in
	// response bodies and the two tables must stay in lockstep.
	for c := ClassNone; c < numClasses; c++ {
		if classNames[c] == "" {
			t.Errorf("class %d has no name", int(c))
		}
	}
}

// TestHTTPStatusValues pins the documented mapping byte for byte; the
// README's error-status table and the loadgen's expectations derive from
// it.
func TestHTTPStatusValues(t *testing.T) {
	want := map[Class]int{
		ClassNone:        200,
		ClassUsage:       400,
		ClassInput:       422,
		ClassInternal:    500,
		ClassDegraded:    200,
		ClassRegression:  500,
		ClassUnavailable: 503,
	}
	if len(want) != int(numClasses) {
		t.Fatalf("test covers %d classes, %d defined — extend the table", len(want), numClasses)
	}
	for c, s := range want {
		if got := c.HTTPStatus(); got != s {
			t.Errorf("HTTPStatus(%s) = %d, want %d", c, got, s)
		}
	}
	if got := Class(99).HTTPStatus(); got != 500 {
		t.Errorf("undefined class status = %d, want conservative 500", got)
	}
}

// TestParseClassRoundTrip: the class name carried in a response body must
// parse back to the same class for every defined class, and reject
// garbage.
func TestParseClassRoundTrip(t *testing.T) {
	for c := ClassNone; c < numClasses; c++ {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseClass(%q) = %v,%v, want %v,true", c.String(), got, ok, c)
		}
	}
	if _, ok := ParseClass("no-such-class"); ok {
		t.Error("ParseClass accepted an undefined name")
	}
	if _, ok := ParseClass(""); ok {
		t.Error("ParseClass accepted the empty string")
	}
}

// TestUnavailableExitCode: the service-side class still honors the CLI
// exit-code contract (fpiload exits 6 when the run was shed wholesale).
func TestUnavailableExitCode(t *testing.T) {
	if got := ExitCode(New(ClassUnavailable, "queue full")); got != 6 {
		t.Errorf("ExitCode(unavailable) = %d, want 6", got)
	}
	if ClassUnavailable.String() != "unavailable" {
		t.Errorf("name = %q", ClassUnavailable.String())
	}
}
