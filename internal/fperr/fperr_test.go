package fperr

import (
	"errors"
	"fmt"
	"testing"
)

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{New(ClassUsage, "bad flag"), 1},
		{New(ClassInput, "bad program"), 2},
		{New(ClassInternal, "bug"), 3},
		{New(ClassDegraded, "fell back"), 4},
		{New(ClassRegression, "cycles regressed"), 5},
		{errors.New("unclassified"), 3},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestClassSurvivesWrapping(t *testing.T) {
	inner := New(ClassInternal, "verifier: invalid partition")
	outer := fmt.Errorf("compiling main: %w", inner)
	if ClassOf(outer) != ClassInternal {
		t.Fatalf("class lost through fmt.Errorf wrapping: %v", ClassOf(outer))
	}
	if ExitCode(outer) != 3 {
		t.Fatalf("exit code lost through wrapping: %d", ExitCode(outer))
	}
}

func TestWrapKeepsInnermostClass(t *testing.T) {
	inner := New(ClassInternal, "partition invalid")
	rewrapped := Wrap(ClassInput, inner)
	if ClassOf(rewrapped) != ClassInternal {
		t.Fatalf("Wrap laundered internal into %v", ClassOf(rewrapped))
	}
	if Wrap(ClassInput, nil) != nil {
		t.Fatal("Wrap(nil) must be nil")
	}
	w := Wrapf(ClassInput, errors.New("no such file"), "reading %s", "x.c")
	if ClassOf(w) != ClassInput || w.Error() != "reading x.c: no such file" {
		t.Fatalf("Wrapf: class=%v msg=%q", ClassOf(w), w.Error())
	}
}

func TestClassString(t *testing.T) {
	if ClassDegraded.String() != "degraded" || ClassRegression.String() != "regression" || Class(99).String() != "class-99" {
		t.Fatal("class names wrong")
	}
}
