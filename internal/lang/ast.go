package lang

// Type is the source-level type of an expression or declaration.
type Type int

// Source types. All scalars occupy one 8-byte word.
const (
	TypeVoid  Type = iota
	TypeInt        // 64-bit signed integer
	TypeFloat      // 64-bit IEEE float
	TypeIntArray
	TypeFloatArray
)

// String returns the C-like spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeIntArray:
		return "int[]"
	case TypeFloatArray:
		return "float[]"
	}
	return "?"
}

// Elem returns the element type of an array type.
func (t Type) Elem() Type {
	switch t {
	case TypeIntArray:
		return TypeInt
	case TypeFloatArray:
		return TypeFloat
	}
	return TypeVoid
}

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t == TypeIntArray || t == TypeFloatArray }

// Program is a whole translation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl is a file-scope variable or array declaration.
type GlobalDecl struct {
	Name     string
	Type     Type
	ArrayLen int64   // number of elements when Type.IsArray()
	InitInt  []int64 // optional initializer (scalar: len 1)
	InitFlt  []float64
	Pos      Pos
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type // scalar or array (arrays are passed by reference/address)
	Pos  Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []*Param
	Body   *BlockStmt
	Pos    Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// VarDeclStmt declares a local variable, optionally initialized.
type VarDeclStmt struct {
	Name string
	Type Type
	// Local arrays are supported with a constant length.
	ArrayLen int64
	Init     Expr // nil when absent
	Pos      Pos
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is `if (cond) then else else_`.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
	Pos  Pos
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// DoWhileStmt is `do body while (cond);`.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Pos  Pos
}

// ForStmt is `for (init; cond; post) body`. Any of init/cond/post may be nil.
type ForStmt struct {
	Init Stmt // VarDeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// ReturnStmt is `return x;` (x may be nil).
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

// BreakStmt is `break;`.
type BreakStmt struct{ Pos Pos }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*VarDeclStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is implemented by all expression nodes. Types are filled in by the
// checker.
type Expr interface {
	exprNode()
	// ExprType returns the checked type (valid after Check).
	ExprType() Type
}

type typedExpr struct{ typ Type }

func (t *typedExpr) ExprType() Type  { return t.typ }
func (t *typedExpr) setType(ty Type) { t.typ = ty }

// SetType records the checked type of a synthesized node; used by lowering
// when it fabricates AST fragments (e.g. the `1` in `x++`).
func (t *typedExpr) SetType(ty Type) { t.typ = ty }

// IntLit is an integer literal.
type IntLit struct {
	typedExpr
	Val int64
	Pos Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	typedExpr
	Val float64
	Pos Pos
}

// Ident references a variable (local, parameter, or global).
type Ident struct {
	typedExpr
	Name string
	Pos  Pos
}

// IndexExpr is `base[idx]`.
type IndexExpr struct {
	typedExpr
	Base *Ident
	Idx  Expr
	Pos  Pos
}

// CallExpr is `fn(args...)`.
type CallExpr struct {
	typedExpr
	Fn   string
	Args []Expr
	Pos  Pos
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	UnNeg    UnaryOp = iota // -x
	UnNot                   // !x
	UnBitNot                // ~x
)

// UnaryExpr is a unary operation.
type UnaryExpr struct {
	typedExpr
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinLt
	BinLe
	BinGt
	BinGe
	BinEq
	BinNe
	BinLAnd // && (short circuit)
	BinLOr  // || (short circuit)
)

var binOpNames = [...]string{
	BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/", BinRem: "%",
	BinAnd: "&", BinOr: "|", BinXor: "^", BinShl: "<<", BinShr: ">>",
	BinLt: "<", BinLe: "<=", BinGt: ">", BinGe: ">=", BinEq: "==", BinNe: "!=",
	BinLAnd: "&&", BinLOr: "||",
}

// String returns the operator's C spelling.
func (op BinOp) String() string { return binOpNames[op] }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	typedExpr
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// CondExpr is the ternary `c ? a : b`.
type CondExpr struct {
	typedExpr
	Cond Expr
	Then Expr
	Else Expr
	Pos  Pos
}

// AssignExpr is `lhs = rhs` or a compound assignment such as `lhs += rhs`
// (Op holds the underlying binary operator; OpValid distinguishes plain
// assignment). Lhs is an Ident or IndexExpr.
type AssignExpr struct {
	typedExpr
	Lhs     Expr
	Rhs     Expr
	Op      BinOp
	OpValid bool
	Pos     Pos
}

// IncDecExpr is `x++` / `x--` (postfix; value semantics are statement-only
// in this language, so the pre/post distinction is immaterial).
type IncDecExpr struct {
	typedExpr
	Lhs  Expr
	Decr bool
	Pos  Pos
}

// StmtPos returns the source position of a statement node. Synthesized
// nodes without a recorded position yield the zero Pos.
func StmtPos(s Stmt) Pos {
	switch st := s.(type) {
	case *BlockStmt:
		return st.Pos
	case *VarDeclStmt:
		return st.Pos
	case *ExprStmt:
		return st.Pos
	case *IfStmt:
		return st.Pos
	case *WhileStmt:
		return st.Pos
	case *DoWhileStmt:
		return st.Pos
	case *ForStmt:
		return st.Pos
	case *ReturnStmt:
		return st.Pos
	case *BreakStmt:
		return st.Pos
	case *ContinueStmt:
		return st.Pos
	}
	return Pos{}
}

// ExprPos returns the source position of an expression node. Synthesized
// nodes without a recorded position yield the zero Pos.
func ExprPos(x Expr) Pos {
	switch e := x.(type) {
	case *IntLit:
		return e.Pos
	case *FloatLit:
		return e.Pos
	case *Ident:
		return e.Pos
	case *IndexExpr:
		return e.Pos
	case *CallExpr:
		return e.Pos
	case *UnaryExpr:
		return e.Pos
	case *BinaryExpr:
		return e.Pos
	case *CondExpr:
		return e.Pos
	case *AssignExpr:
		return e.Pos
	case *IncDecExpr:
		return e.Pos
	}
	return Pos{}
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*AssignExpr) exprNode() {}
func (*IncDecExpr) exprNode() {}
