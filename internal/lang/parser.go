package lang

import "fmt"

// Parser builds an AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete translation unit.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%s: expected %s, found %s", t.Pos, k, t.Kind)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.peekKind(TokEOF) {
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if p.peekKind(TokLParen) {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		} else {
			g, err := p.parseGlobalRest(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		}
	}
	return prog, nil
}

func (p *Parser) parseTypeName() (Type, error) {
	t := p.next()
	switch t.Kind {
	case TokKwInt:
		return TypeInt, nil
	case TokKwFloat:
		return TypeFloat, nil
	case TokKwVoid:
		return TypeVoid, nil
	}
	return TypeVoid, fmt.Errorf("%s: expected type name, found %s", t.Pos, t.Kind)
}

// parseGlobalRest parses the remainder of a global declaration after
// `type ident`.
func (p *Parser) parseGlobalRest(typ Type, name Token) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: name.Text, Type: typ, Pos: name.Pos}
	if p.accept(TokLBracket) {
		lenTok, err := p.expect(TokIntLit)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		g.ArrayLen = lenTok.Int
		switch typ {
		case TypeInt:
			g.Type = TypeIntArray
		case TypeFloat:
			g.Type = TypeFloatArray
		default:
			return nil, fmt.Errorf("%s: array of %s not allowed", name.Pos, typ)
		}
	}
	if p.accept(TokAssign) {
		if p.accept(TokLBrace) {
			for {
				if err := p.parseGlobalInitValue(g); err != nil {
					return nil, err
				}
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		} else {
			if err := p.parseGlobalInitValue(g); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseGlobalInitValue(g *GlobalDecl) error {
	neg := false
	if p.accept(TokMinus) {
		neg = true
	}
	t := p.next()
	switch t.Kind {
	case TokIntLit:
		v := t.Int
		if neg {
			v = -v
		}
		if g.Type == TypeFloat || g.Type == TypeFloatArray {
			g.InitFlt = append(g.InitFlt, float64(v))
		} else {
			g.InitInt = append(g.InitInt, v)
		}
		return nil
	case TokFloatLit:
		v := t.Flt
		if neg {
			v = -v
		}
		if g.Type != TypeFloat && g.Type != TypeFloatArray {
			return fmt.Errorf("%s: float initializer for int global %s", t.Pos, g.Name)
		}
		g.InitFlt = append(g.InitFlt, v)
		return nil
	}
	return fmt.Errorf("%s: expected literal initializer, found %s", t.Pos, t.Kind)
}

func (p *Parser) parseFuncRest(ret Type, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Ret: ret, Pos: name.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if !p.accept(TokRParen) {
		for {
			if p.accept(TokKwVoid) && p.peekKind(TokRParen) {
				break
			}
			pt, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, pt)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseParam() (*Param, error) {
	typ, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if typ == TypeVoid {
		return nil, fmt.Errorf("%s: void parameter", p.cur().Pos)
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	prm := &Param{Name: name.Text, Type: typ, Pos: name.Pos}
	if p.accept(TokLBracket) {
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if typ == TypeInt {
			prm.Type = TypeIntArray
		} else {
			prm.Type = TypeFloatArray
		}
	}
	return prm, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.peekKind(TokRBrace) {
		if p.peekKind(TokEOF) {
			return nil, fmt.Errorf("%s: unterminated block", lb.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // consume '}'
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokKwInt, TokKwFloat:
		return p.parseVarDecl()
	case TokKwIf:
		return p.parseIf()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwDo:
		return p.parseDoWhile()
	case TokKwFor:
		return p.parseFor()
	case TokKwReturn:
		p.next()
		rs := &ReturnStmt{Pos: t.Pos}
		if !p.peekKind(TokSemi) {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return rs, nil
	case TokKwBreak:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case TokKwContinue:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case TokSemi:
		p.next()
		return &BlockStmt{Pos: t.Pos}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Pos: t.Pos}, nil
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	typ, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	vd := &VarDeclStmt{Name: name.Text, Type: typ, Pos: name.Pos}
	if p.accept(TokLBracket) {
		lenTok, err := p.expect(TokIntLit)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		vd.ArrayLen = lenTok.Int
		if typ == TypeInt {
			vd.Type = TypeIntArray
		} else {
			vd.Type = TypeFloatArray
		}
	}
	if p.accept(TokAssign) {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = x
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Cond: cond, Then: then, Pos: t.Pos}
	if p.accept(TokKwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		is.Else = els
	}
	return is, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // 'while'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	t := p.next() // 'do'
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Body: body, Cond: cond, Pos: t.Pos}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: t.Pos}
	if !p.accept(TokSemi) {
		if p.peekKind(TokKwInt) || p.peekKind(TokKwFloat) {
			init, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			fs.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ExprStmt{X: x, Pos: t.Pos}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
	}
	if !p.peekKind(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.peekKind(TokRParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// Expression parsing: precedence climbing.
//
//	assignment:  = += -= ... (right assoc)
//	ternary:     ?:
//	logical-or:  ||
//	logical-and: &&
//	bit-or:      |
//	bit-xor:     ^
//	bit-and:     &
//	equality:    == !=
//	relational:  < <= > >=
//	shift:       << >>
//	additive:    + -
//	mult:        * / %
//	unary:       - ! ~
//	postfix:     call, index, ++/--
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

var compoundOps = map[TokKind]BinOp{
	TokPlusEq:    BinAdd,
	TokMinusEq:   BinSub,
	TokStarEq:    BinMul,
	TokSlashEq:   BinDiv,
	TokPercentEq: BinRem,
	TokAmpEq:     BinAnd,
	TokPipeEq:    BinOr,
	TokCaretEq:   BinXor,
	TokShlEq:     BinShl,
	TokShrEq:     BinShr,
}

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokAssign {
		p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Lhs: lhs, Rhs: rhs, Pos: t.Pos}, nil
	}
	if op, ok := compoundOps[t.Kind]; ok {
		p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Lhs: lhs, Rhs: rhs, Op: op, OpValid: true, Pos: t.Pos}, nil
	}
	return lhs, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind == TokQuestion {
		p.next()
		thn, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		els, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &CondExpr{Cond: cond, Then: thn, Else: els, Pos: t.Pos}, nil
	}
	return cond, nil
}

type binLevel struct {
	toks map[TokKind]BinOp
}

var binLevels = []binLevel{
	{map[TokKind]BinOp{TokOrOr: BinLOr}},
	{map[TokKind]BinOp{TokAndAnd: BinLAnd}},
	{map[TokKind]BinOp{TokPipe: BinOr}},
	{map[TokKind]BinOp{TokCaret: BinXor}},
	{map[TokKind]BinOp{TokAmp: BinAnd}},
	{map[TokKind]BinOp{TokEqEq: BinEq, TokNe: BinNe}},
	{map[TokKind]BinOp{TokLt: BinLt, TokLe: BinLe, TokGt: BinGt, TokGe: BinGe}},
	{map[TokKind]BinOp{TokShl: BinShl, TokShr: BinShr}},
	{map[TokKind]BinOp{TokPlus: BinAdd, TokMinus: BinSub}},
	{map[TokKind]BinOp{TokStar: BinMul, TokSlash: BinDiv, TokPercent: BinRem}},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		op, ok := binLevels[level].toks[t.Kind]
		if !ok {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, L: lhs, R: rhs, Pos: t.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: UnNeg, X: x, Pos: t.Pos}, nil
	case TokBang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: UnNot, X: x, Pos: t.Pos}, nil
	case TokTilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: UnBitNot, X: x, Pos: t.Pos}, nil
	case TokPlusPlus, TokMinusMinus:
		// Prefix increment/decrement.
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{Lhs: x, Decr: t.Kind == TokMinusMinus, Pos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case TokPlusPlus:
			p.next()
			x = &IncDecExpr{Lhs: x, Pos: t.Pos}
		case TokMinusMinus:
			p.next()
			x = &IncDecExpr{Lhs: x, Decr: true, Pos: t.Pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokIntLit:
		return &IntLit{Val: t.Int, Pos: t.Pos}, nil
	case TokFloatLit:
		return &FloatLit{Val: t.Flt, Pos: t.Pos}, nil
	case TokLParen:
		// Cast syntax `(int) x` / `(float) x` is supported for explicit
		// conversions.
		if p.peekKind(TokKwInt) || p.peekKind(TokKwFloat) {
			castTo := TypeInt
			if p.cur().Kind == TokKwFloat {
				castTo = TypeFloat
			}
			p.next()
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			// Represent casts as calls to the builtin conversions; the
			// checker recognizes __itof / __ftoi.
			fn := "__ftoi"
			if castTo == TypeFloat {
				fn = "__itof"
			}
			return &CallExpr{Fn: fn, Args: []Expr{x}, Pos: t.Pos}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokIdent:
		if p.accept(TokLParen) {
			call := &CallExpr{Fn: t.Text, Pos: t.Pos}
			if !p.accept(TokRParen) {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(TokComma) {
						break
					}
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		id := &Ident{Name: t.Text, Pos: t.Pos}
		if p.accept(TokLBracket) {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Base: id, Idx: idx, Pos: t.Pos}, nil
		}
		return id, nil
	}
	return nil, fmt.Errorf("%s: unexpected token %s in expression", t.Pos, t.Kind)
}
