// Package lang implements the frontend for the mini-C source language used
// by the reproduction: lexer, AST, parser, and type checker.
//
// The language is a small, C-like subset that is rich enough to express the
// SPECint95-style kernels the paper evaluates: 64-bit integers, 64-bit
// floats, global scalars and arrays, functions, loops, and the usual
// arithmetic/logical/shift/comparison operators.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit

	// Keywords.
	TokKwInt
	TokKwFloat
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwDo

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi

	// Operators.
	TokAssign     // =
	TokPlus       // +
	TokMinus      // -
	TokStar       // *
	TokSlash      // /
	TokPercent    // %
	TokAmp        // &
	TokPipe       // |
	TokCaret      // ^
	TokTilde      // ~
	TokBang       // !
	TokLt         // <
	TokGt         // >
	TokLe         // <=
	TokGe         // >=
	TokEqEq       // ==
	TokNe         // !=
	TokShl        // <<
	TokShr        // >>
	TokAndAnd     // &&
	TokOrOr       // ||
	TokPlusEq     // +=
	TokMinusEq    // -=
	TokStarEq     // *=
	TokSlashEq    // /=
	TokPercentEq  // %=
	TokAmpEq      // &=
	TokPipeEq     // |=
	TokCaretEq    // ^=
	TokShlEq      // <<=
	TokShrEq      // >>=
	TokPlusPlus   // ++
	TokMinusMinus // --
	TokQuestion   // ?
	TokColon      // :
)

var tokNames = map[TokKind]string{
	TokEOF:        "EOF",
	TokIdent:      "identifier",
	TokIntLit:     "integer literal",
	TokFloatLit:   "float literal",
	TokKwInt:      "'int'",
	TokKwFloat:    "'float'",
	TokKwVoid:     "'void'",
	TokKwIf:       "'if'",
	TokKwElse:     "'else'",
	TokKwWhile:    "'while'",
	TokKwFor:      "'for'",
	TokKwReturn:   "'return'",
	TokKwBreak:    "'break'",
	TokKwContinue: "'continue'",
	TokKwDo:       "'do'",
	TokLParen:     "'('",
	TokRParen:     "')'",
	TokLBrace:     "'{'",
	TokRBrace:     "'}'",
	TokLBracket:   "'['",
	TokRBracket:   "']'",
	TokComma:      "','",
	TokSemi:       "';'",
	TokAssign:     "'='",
	TokPlus:       "'+'",
	TokMinus:      "'-'",
	TokStar:       "'*'",
	TokSlash:      "'/'",
	TokPercent:    "'%'",
	TokAmp:        "'&'",
	TokPipe:       "'|'",
	TokCaret:      "'^'",
	TokTilde:      "'~'",
	TokBang:       "'!'",
	TokLt:         "'<'",
	TokGt:         "'>'",
	TokLe:         "'<='",
	TokGe:         "'>='",
	TokEqEq:       "'=='",
	TokNe:         "'!='",
	TokShl:        "'<<'",
	TokShr:        "'>>'",
	TokAndAnd:     "'&&'",
	TokOrOr:       "'||'",
	TokPlusEq:     "'+='",
	TokMinusEq:    "'-='",
	TokStarEq:     "'*='",
	TokSlashEq:    "'/='",
	TokPercentEq:  "'%='",
	TokAmpEq:      "'&='",
	TokPipeEq:     "'|='",
	TokCaretEq:    "'^='",
	TokShlEq:      "'<<='",
	TokShrEq:      "'>>='",
	TokPlusPlus:   "'++'",
	TokMinusMinus: "'--'",
	TokQuestion:   "'?'",
	TokColon:      "':'",
}

// String returns a human-readable name for the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind TokKind
	Text string // raw text for identifiers and literals
	Int  int64  // value for TokIntLit
	Flt  float64
	Pos  Pos
}

var keywords = map[string]TokKind{
	"int":      TokKwInt,
	"float":    TokKwFloat,
	"void":     TokKwVoid,
	"if":       TokKwIf,
	"else":     TokKwElse,
	"while":    TokKwWhile,
	"for":      TokKwFor,
	"return":   TokKwReturn,
	"break":    TokKwBreak,
	"continue": TokKwContinue,
	"do":       TokKwDo,
}
