package lang_test

import (
	"strings"
	"testing"

	"fpint/internal/lang"
)

func TestLexBasics(t *testing.T) {
	toks, err := lang.LexAll(`int main() { return 42; } // comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []lang.TokKind{
		lang.TokKwInt, lang.TokIdent, lang.TokLParen, lang.TokRParen,
		lang.TokLBrace, lang.TokKwReturn, lang.TokIntLit, lang.TokSemi,
		lang.TokRBrace, lang.TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := `+ - * / % & | ^ ~ ! < > <= >= == != << >> && || += -= *= /= %= &= |= ^= <<= >>= ++ -- ? : =`
	toks, err := lang.LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []lang.TokKind{
		lang.TokPlus, lang.TokMinus, lang.TokStar, lang.TokSlash, lang.TokPercent,
		lang.TokAmp, lang.TokPipe, lang.TokCaret, lang.TokTilde, lang.TokBang,
		lang.TokLt, lang.TokGt, lang.TokLe, lang.TokGe, lang.TokEqEq, lang.TokNe,
		lang.TokShl, lang.TokShr, lang.TokAndAnd, lang.TokOrOr,
		lang.TokPlusEq, lang.TokMinusEq, lang.TokStarEq, lang.TokSlashEq,
		lang.TokPercentEq, lang.TokAmpEq, lang.TokPipeEq, lang.TokCaretEq,
		lang.TokShlEq, lang.TokShrEq, lang.TokPlusPlus, lang.TokMinusMinus,
		lang.TokQuestion, lang.TokColon, lang.TokAssign, lang.TokEOF,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lang.LexAll(`0 123 0xFF 1.5 2.0e3 9.25`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 0 || toks[1].Int != 123 || toks[2].Int != 255 {
		t.Errorf("int literals wrong: %v %v %v", toks[0].Int, toks[1].Int, toks[2].Int)
	}
	if toks[3].Kind != lang.TokFloatLit || toks[3].Flt != 1.5 {
		t.Errorf("float literal 1.5 wrong: %+v", toks[3])
	}
	if toks[4].Flt != 2000 {
		t.Errorf("2.0e3 = %v", toks[4].Flt)
	}
	if toks[5].Flt != 9.25 {
		t.Errorf("9.25 = %v", toks[5].Flt)
	}
}

func TestLexBlockComment(t *testing.T) {
	toks, err := lang.LexAll("int /* a\nmultiline\ncomment */ x")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "x" {
		t.Fatalf("unexpected tokens: %+v", toks)
	}
	if _, err := lang.LexAll("/* unterminated"); err == nil {
		t.Error("unterminated comment not diagnosed")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lang.LexAll("int @ x"); err == nil {
		t.Error("bad character not diagnosed")
	}
}

func parseOK(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func TestParseGlobalForms(t *testing.T) {
	p := parseOK(t, `
int a;
int b = 7;
int c = -3;
int tab[4] = {1, 2, 3, 4};
float f = 1.5;
float g = -2.5;
float v[3] = {0.5, 1.5, 2.5};
int main() { return a + b + c + tab[0]; }
`)
	if len(p.Globals) != 7 {
		t.Fatalf("got %d globals", len(p.Globals))
	}
	if p.Globals[2].InitInt[0] != -3 {
		t.Errorf("negative initializer: %v", p.Globals[2].InitInt)
	}
	if p.Globals[5].InitFlt[0] != -2.5 {
		t.Errorf("negative float initializer: %v", p.Globals[5].InitFlt)
	}
}

func TestParsePrecedence(t *testing.T) {
	// 2 + 3 * 4 == 14, (2+3)*4 == 20, shift binds looser than +.
	p := parseOK(t, `int main() { return 2 + 3 * 4 + (1 << 2 + 1); }`)
	_ = p
}

func TestParseStatements(t *testing.T) {
	parseOK(t, `
int g;
void f() {}
int main() {
	int x = 0;
	if (x) x = 1; else x = 2;
	while (x < 10) x++;
	do x--; while (x > 0);
	for (int i = 0; i < 3; i++) g += i;
	for (;;) break;
	;
	{ int y = 1; g += y; }
	return g;
}`)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int main() { return 1 }`,       // missing semicolon
		`int main() { if x return 1; }`, // missing parens
		`int main( { return 1; }`,       // bad params
		`int main() { return (1; }`,     // unbalanced
		`int 3x;`,                       // bad name
		`int main() {`,                  // unterminated block
	}
	for _, src := range cases {
		if _, err := lang.Parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"no main":          `int f() { return 0; }`,
		"undeclared":       `int main() { return x; }`,
		"dup global":       `int a; int a; int main() { return 0; }`,
		"dup func":         `int f() { return 0; } int f() { return 1; } int main() { return 0; }`,
		"redeclare local":  `int main() { int x = 1; int x = 2; return x; }`,
		"type mismatch":    `int main() { float f = 1.5; return 1 + f; }`,
		"bad arg count":    `int f(int a) { return a; } int main() { return f(1, 2); }`,
		"bad arg type":     `int f(int a) { return a; } int main() { return f(1.5); }`,
		"float condition":  `int main() { if (1.5) return 1; return 0; }`,
		"index non-array":  `int main() { int x = 0; return x[0]; }`,
		"float index":      `int a[3]; int main() { return a[1.5]; }`,
		"assign to array":  `int a[3]; int b[3]; int main() { a = b; return 0; }`,
		"break outside":    `int main() { break; return 0; }`,
		"continue outside": `int main() { continue; return 0; }`,
		"void return":      `void f() { return 1; } int main() { return 0; }`,
		"missing return v": `int f() { return; } int main() { return 0; }`,
		"mod on float":     `int main() { float a = 1.0; float b = a % a; return 0; }`,
		"shift on float":   `int main() { float a = 1.0; float b = a << a; return 0; }`,
		"call undefined":   `int main() { return g(); }`,
	}
	for name, src := range cases {
		p, err := lang.Parse(src)
		if err != nil {
			continue // parse error also acceptable for malformed cases
		}
		if err := lang.Check(p); err == nil {
			t.Errorf("%s: no check error", name)
		}
	}
}

func TestCheckTernaryTypes(t *testing.T) {
	if _, err := lang.Parse(`int main() { return 1 ? 2 : 3; }`); err != nil {
		t.Fatal(err)
	}
	p, err := lang.Parse(`int main() { float f = 1 ? 2.0 : 3; return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err == nil {
		t.Error("mismatched ternary arms not diagnosed")
	}
}

func TestPosInErrors(t *testing.T) {
	_, err := lang.Parse("int main() {\n  return @;\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}
