package lang

import (
	"fmt"
	"strconv"
)

// Lexer converts source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return fmt.Errorf("%s: unterminated block comment", start)
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := l.peek()

	if isAlpha(c) {
		start := l.off
		for l.off < len(l.src) && isAlnum(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: p}, nil
	}

	if isDigit(c) {
		return l.lexNumber(p)
	}

	// Operators and punctuation.
	l.advance()
	two := func(nextCh byte, withKind, withoutKind TokKind) Token {
		if l.peek() == nextCh {
			l.advance()
			return Token{Kind: withKind, Pos: p}
		}
		return Token{Kind: withoutKind, Pos: p}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: p}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: p}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: p}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: p}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: p}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: p}, nil
	case ',':
		return Token{Kind: TokComma, Pos: p}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: p}, nil
	case '~':
		return Token{Kind: TokTilde, Pos: p}, nil
	case '?':
		return Token{Kind: TokQuestion, Pos: p}, nil
	case ':':
		return Token{Kind: TokColon, Pos: p}, nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: TokPlusPlus, Pos: p}, nil
		}
		return two('=', TokPlusEq, TokPlus), nil
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: TokMinusMinus, Pos: p}, nil
		}
		return two('=', TokMinusEq, TokMinus), nil
	case '*':
		return two('=', TokStarEq, TokStar), nil
	case '/':
		return two('=', TokSlashEq, TokSlash), nil
	case '%':
		return two('=', TokPercentEq, TokPercent), nil
	case '^':
		return two('=', TokCaretEq, TokCaret), nil
	case '!':
		return two('=', TokNe, TokBang), nil
	case '=':
		return two('=', TokEqEq, TokAssign), nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: TokAndAnd, Pos: p}, nil
		}
		return two('=', TokAmpEq, TokAmp), nil
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: TokOrOr, Pos: p}, nil
		}
		return two('=', TokPipeEq, TokPipe), nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			return two('=', TokShlEq, TokShl), nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			return two('=', TokShrEq, TokShr), nil
		}
		return two('=', TokGe, TokGt), nil
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", p, c)
}

func (l *Lexer) lexNumber(p Pos) (Token, error) {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseUint(text[2:], 16, 64)
		if err != nil {
			return Token{}, fmt.Errorf("%s: bad hex literal %q: %v", p, text, err)
		}
		return Token{Kind: TokIntLit, Text: text, Int: int64(v), Pos: p}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		isFloatExp := false
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
			isFloatExp = true
		}
		if isFloatExp {
			isFloat = true
		} else {
			l.off = save
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, fmt.Errorf("%s: bad float literal %q: %v", p, text, err)
		}
		return Token{Kind: TokFloatLit, Text: text, Flt: f, Pos: p}, nil
	}
	v, err := strconv.ParseUint(text, 10, 64)
	if err != nil {
		return Token{}, fmt.Errorf("%s: bad integer literal %q: %v", p, text, err)
	}
	return Token{Kind: TokIntLit, Text: text, Int: int64(v), Pos: p}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// LexAll tokenizes the entire input, returning the tokens including a
// trailing EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
