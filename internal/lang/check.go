package lang

import "fmt"

// FuncSig describes a callable signature for checking.
type FuncSig struct {
	Name   string
	Ret    Type
	Params []Type
}

// Builtins available to every program.
//
//	print(int)          — prints an integer (host-side trap)
//	printf_(float)      — prints a float (host-side trap)
//	__itof(int) float   — int→float conversion
//	__ftoi(float) int   — float→int (truncating) conversion
var Builtins = map[string]FuncSig{
	"print":   {Name: "print", Ret: TypeVoid, Params: []Type{TypeInt}},
	"printf_": {Name: "printf_", Ret: TypeVoid, Params: []Type{TypeFloat}},
	"__itof":  {Name: "__itof", Ret: TypeFloat, Params: []Type{TypeInt}},
	"__ftoi":  {Name: "__ftoi", Ret: TypeInt, Params: []Type{TypeFloat}},
}

type checker struct {
	prog    *Program
	funcs   map[string]FuncSig
	globals map[string]Type
	// Current function state.
	fn     *FuncDecl
	scopes []map[string]Type
}

// Check type-checks the program in place, annotating expression types.
// It returns the first error found.
func Check(prog *Program) error {
	c := &checker{
		prog:    prog,
		funcs:   make(map[string]FuncSig),
		globals: make(map[string]Type),
	}
	for name, sig := range Builtins {
		c.funcs[name] = sig
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return fmt.Errorf("%s: duplicate global %q", g.Pos, g.Name)
		}
		if g.Type.IsArray() {
			if g.ArrayLen <= 0 {
				return fmt.Errorf("%s: array %q must have positive length", g.Pos, g.Name)
			}
			if int64(len(g.InitInt)) > g.ArrayLen || int64(len(g.InitFlt)) > g.ArrayLen {
				return fmt.Errorf("%s: too many initializers for %q", g.Pos, g.Name)
			}
		}
		c.globals[g.Name] = g.Type
	}
	for _, fn := range prog.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return fmt.Errorf("%s: duplicate function %q", fn.Pos, fn.Name)
		}
		sig := FuncSig{Name: fn.Name, Ret: fn.Ret}
		for _, prm := range fn.Params {
			sig.Params = append(sig.Params, prm.Type)
		}
		c.funcs[fn.Name] = sig
	}
	if _, ok := c.funcs["main"]; !ok {
		return fmt.Errorf("program has no main function")
	}
	for _, fn := range prog.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]Type)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t Type, pos Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return fmt.Errorf("%s: redeclaration of %q", pos, name)
	}
	top[name] = t
	return nil
}

func (c *checker) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	t, ok := c.globals[name]
	return t, ok
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.scopes = nil
	c.pushScope()
	for _, prm := range fn.Params {
		if err := c.declare(prm.Name, prm.Type, prm.Pos); err != nil {
			return err
		}
	}
	if err := c.checkStmt(fn.Body, 0); err != nil {
		return err
	}
	c.popScope()
	return nil
}

func (c *checker) checkStmt(s Stmt, loopDepth int) error {
	switch st := s.(type) {
	case *BlockStmt:
		c.pushScope()
		for _, sub := range st.Stmts {
			if err := c.checkStmt(sub, loopDepth); err != nil {
				return err
			}
		}
		c.popScope()
		return nil
	case *VarDeclStmt:
		if st.Type.IsArray() {
			if st.ArrayLen <= 0 {
				return fmt.Errorf("%s: local array %q must have positive length", st.Pos, st.Name)
			}
			if st.Init != nil {
				return fmt.Errorf("%s: local array %q cannot be initialized", st.Pos, st.Name)
			}
		}
		if st.Init != nil {
			t, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if t != st.Type {
				return fmt.Errorf("%s: cannot initialize %s %q with %s", st.Pos, st.Type, st.Name, t)
			}
		}
		return c.declare(st.Name, st.Type, st.Pos)
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	case *IfStmt:
		if err := c.checkCond(st.Cond, st.Pos); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then, loopDepth); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else, loopDepth)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(st.Cond, st.Pos); err != nil {
			return err
		}
		return c.checkStmt(st.Body, loopDepth+1)
	case *DoWhileStmt:
		if err := c.checkStmt(st.Body, loopDepth+1); err != nil {
			return err
		}
		return c.checkCond(st.Cond, st.Pos)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init, loopDepth); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond, st.Pos); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		return c.checkStmt(st.Body, loopDepth+1)
	case *ReturnStmt:
		if st.X == nil {
			if c.fn.Ret != TypeVoid {
				return fmt.Errorf("%s: missing return value in %q", st.Pos, c.fn.Name)
			}
			return nil
		}
		t, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		if t != c.fn.Ret {
			return fmt.Errorf("%s: returning %s from %s function %q", st.Pos, t, c.fn.Ret, c.fn.Name)
		}
		return nil
	case *BreakStmt:
		if loopDepth == 0 {
			return fmt.Errorf("%s: break outside loop", st.Pos)
		}
		return nil
	case *ContinueStmt:
		if loopDepth == 0 {
			return fmt.Errorf("%s: continue outside loop", st.Pos)
		}
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (c *checker) checkCond(x Expr, pos Pos) error {
	t, err := c.checkExpr(x)
	if err != nil {
		return err
	}
	if t != TypeInt {
		return fmt.Errorf("%s: condition must be int, got %s", pos, t)
	}
	return nil
}

func (c *checker) checkExpr(x Expr) (Type, error) {
	switch e := x.(type) {
	case *IntLit:
		e.setType(TypeInt)
		return TypeInt, nil
	case *FloatLit:
		e.setType(TypeFloat)
		return TypeFloat, nil
	case *Ident:
		t, ok := c.lookup(e.Name)
		if !ok {
			return TypeVoid, fmt.Errorf("%s: undeclared identifier %q", e.Pos, e.Name)
		}
		e.setType(t)
		return t, nil
	case *IndexExpr:
		bt, ok := c.lookup(e.Base.Name)
		if !ok {
			return TypeVoid, fmt.Errorf("%s: undeclared identifier %q", e.Pos, e.Base.Name)
		}
		if !bt.IsArray() {
			return TypeVoid, fmt.Errorf("%s: indexing non-array %q (%s)", e.Pos, e.Base.Name, bt)
		}
		e.Base.setType(bt)
		it, err := c.checkExpr(e.Idx)
		if err != nil {
			return TypeVoid, err
		}
		if it != TypeInt {
			return TypeVoid, fmt.Errorf("%s: array index must be int, got %s", e.Pos, it)
		}
		e.setType(bt.Elem())
		return bt.Elem(), nil
	case *CallExpr:
		sig, ok := c.funcs[e.Fn]
		if !ok {
			return TypeVoid, fmt.Errorf("%s: call to undefined function %q", e.Pos, e.Fn)
		}
		if len(e.Args) != len(sig.Params) {
			return TypeVoid, fmt.Errorf("%s: %q expects %d arguments, got %d", e.Pos, e.Fn, len(sig.Params), len(e.Args))
		}
		for i, arg := range e.Args {
			at, err := c.checkExpr(arg)
			if err != nil {
				return TypeVoid, err
			}
			if at != sig.Params[i] {
				return TypeVoid, fmt.Errorf("%s: argument %d of %q: expected %s, got %s", e.Pos, i+1, e.Fn, sig.Params[i], at)
			}
		}
		e.setType(sig.Ret)
		return sig.Ret, nil
	case *UnaryExpr:
		t, err := c.checkExpr(e.X)
		if err != nil {
			return TypeVoid, err
		}
		switch e.Op {
		case UnNeg:
			if t != TypeInt && t != TypeFloat {
				return TypeVoid, fmt.Errorf("%s: cannot negate %s", e.Pos, t)
			}
			e.setType(t)
			return t, nil
		case UnNot, UnBitNot:
			if t != TypeInt {
				return TypeVoid, fmt.Errorf("%s: operator requires int, got %s", e.Pos, t)
			}
			e.setType(TypeInt)
			return TypeInt, nil
		}
		return TypeVoid, fmt.Errorf("%s: unknown unary op", e.Pos)
	case *BinaryExpr:
		lt, err := c.checkExpr(e.L)
		if err != nil {
			return TypeVoid, err
		}
		rt, err := c.checkExpr(e.R)
		if err != nil {
			return TypeVoid, err
		}
		if lt != rt {
			return TypeVoid, fmt.Errorf("%s: operand type mismatch: %s %s %s", e.Pos, lt, e.Op, rt)
		}
		switch e.Op {
		case BinAdd, BinSub, BinMul, BinDiv:
			if lt != TypeInt && lt != TypeFloat {
				return TypeVoid, fmt.Errorf("%s: arithmetic on %s", e.Pos, lt)
			}
			e.setType(lt)
			return lt, nil
		case BinRem, BinAnd, BinOr, BinXor, BinShl, BinShr, BinLAnd, BinLOr:
			if lt != TypeInt {
				return TypeVoid, fmt.Errorf("%s: operator %s requires int operands, got %s", e.Pos, e.Op, lt)
			}
			e.setType(TypeInt)
			return TypeInt, nil
		case BinLt, BinLe, BinGt, BinGe, BinEq, BinNe:
			if lt != TypeInt && lt != TypeFloat {
				return TypeVoid, fmt.Errorf("%s: comparison on %s", e.Pos, lt)
			}
			e.setType(TypeInt)
			return TypeInt, nil
		}
		return TypeVoid, fmt.Errorf("%s: unknown binary op", e.Pos)
	case *CondExpr:
		if err := c.checkCond(e.Cond, e.Pos); err != nil {
			return TypeVoid, err
		}
		tt, err := c.checkExpr(e.Then)
		if err != nil {
			return TypeVoid, err
		}
		et, err := c.checkExpr(e.Else)
		if err != nil {
			return TypeVoid, err
		}
		if tt != et {
			return TypeVoid, fmt.Errorf("%s: ternary branches differ: %s vs %s", e.Pos, tt, et)
		}
		e.setType(tt)
		return tt, nil
	case *AssignExpr:
		lt, err := c.checkLvalue(e.Lhs)
		if err != nil {
			return TypeVoid, err
		}
		rt, err := c.checkExpr(e.Rhs)
		if err != nil {
			return TypeVoid, err
		}
		if lt != rt {
			return TypeVoid, fmt.Errorf("%s: cannot assign %s to %s", e.Pos, rt, lt)
		}
		if e.OpValid {
			switch e.Op {
			case BinRem, BinAnd, BinOr, BinXor, BinShl, BinShr:
				if lt != TypeInt {
					return TypeVoid, fmt.Errorf("%s: compound operator %s requires int", e.Pos, e.Op)
				}
			}
		}
		e.setType(lt)
		return lt, nil
	case *IncDecExpr:
		lt, err := c.checkLvalue(e.Lhs)
		if err != nil {
			return TypeVoid, err
		}
		if lt != TypeInt {
			return TypeVoid, fmt.Errorf("%s: ++/-- requires int lvalue, got %s", e.Pos, lt)
		}
		e.setType(TypeInt)
		return TypeInt, nil
	}
	return TypeVoid, fmt.Errorf("unknown expression %T", x)
}

func (c *checker) checkLvalue(x Expr) (Type, error) {
	switch e := x.(type) {
	case *Ident:
		t, err := c.checkExpr(e)
		if err != nil {
			return TypeVoid, err
		}
		if t.IsArray() {
			return TypeVoid, fmt.Errorf("%s: cannot assign to array %q", e.Pos, e.Name)
		}
		return t, nil
	case *IndexExpr:
		return c.checkExpr(e)
	}
	return TypeVoid, fmt.Errorf("expression is not assignable")
}
