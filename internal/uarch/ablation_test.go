package uarch_test

import (
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

// TestFPaExtraLatencyReducesBenefit verifies the §6.6 ablation: if the FP
// subsystem cannot execute integer operations in a single cycle, the
// partitioned code's advantage shrinks (and the baseline, which never uses
// FPa, is unaffected).
func TestFPaExtraLatencyReducesBenefit(t *testing.T) {
	src := `
int a[256];
int b[256];
int main() {
	int s = 0;
	for (int rep = 0; rep < 40; rep++) {
		for (int i = 0; i < 256; i++) {
			int x = a[i];
			int y = (x ^ 21) + (x >> 3) + (x << 1) + rep;
			int z = (y & 255) + (y >> 7) + ((x + y) ^ (x - y));
			if (z & 1) s += z; else s ^= y;
			b[i] = z;
		}
	}
	return s & 1048575;
}`
	base, _, err := codegen.CompileSource(src, codegen.Options{Scheme: codegen.SchemeNone})
	if err != nil {
		t.Fatal(err)
	}
	adv, _, err := codegen.CompileSource(src, codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		t.Fatal(err)
	}
	cycles := func(res *codegen.Result, extra int) int64 {
		cfg := uarch.Config4Way()
		cfg.FPaExtraLatency = extra
		_, st, err := uarch.Run(res.Prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	base0 := cycles(base, 0)
	base2 := cycles(base, 2)
	if base0 != base2 {
		t.Errorf("baseline affected by FPa latency: %d vs %d", base0, base2)
	}
	adv0 := cycles(adv, 0)
	adv1 := cycles(adv, 1)
	adv2 := cycles(adv, 2)
	if !(adv0 <= adv1 && adv1 <= adv2) {
		t.Errorf("FPa latency should monotonically slow the partitioned code: %d, %d, %d", adv0, adv1, adv2)
	}
	sp := func(advCycles int64) float64 { return float64(base0)/float64(advCycles) - 1 }
	if sp(adv2) >= sp(adv0) {
		t.Errorf("speedup did not shrink with extra FPa latency: %.3f vs %.3f", sp(adv2), sp(adv0))
	}
	t.Logf("speedup: 1-cycle FPa %+.1f%%, 2-cycle %+.1f%%, 3-cycle %+.1f%%",
		100*sp(adv0), 100*sp(adv1), 100*sp(adv2))
}

// TestBalancedSchemeEndToEnd compiles with the §6.6 load-balance extension
// and checks functional correctness plus the offload cap.
func TestBalancedSchemeEndToEnd(t *testing.T) {
	src := `
int seed;
int churn() {
	int s = seed;
	int r = 0;
	for (int i = 0; i < 200; i++) {
		s = (s ^ (s << 3)) + 77;
		r = r ^ (s >> 5) ^ (r << 1);
	}
	seed = s;
	return r & 65535;
}
int main() {
	seed = 5;
	int acc = 0;
	for (int k = 0; k < 20; k++) acc ^= churn();
	return acc;
}`
	adv, _, err := codegen.CompileSource(src, codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		t.Fatal(err)
	}
	bal, _, err := codegen.CompileSource(src, codegen.Options{Scheme: codegen.SchemeBalanced, MaxFPaFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.Config4Way()
	advOut, _, err := uarch.Run(adv.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	balOut, _, err := uarch.Run(bal.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if advOut.Ret != balOut.Ret {
		t.Fatalf("balanced scheme changed the result: %d vs %d", balOut.Ret, advOut.Ret)
	}
	if balOut.Stats.OffloadFraction() >= advOut.Stats.OffloadFraction() {
		t.Errorf("balanced offload %.2f not below greedy %.2f",
			balOut.Stats.OffloadFraction(), advOut.Stats.OffloadFraction())
	}
}
