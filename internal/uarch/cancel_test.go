package uarch_test

import (
	"errors"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/trap"
	"fpint/internal/uarch"
)

// compileLoop builds the shared loop workload once per test.
func compileLoop(t *testing.T) *codegen.Result {
	t.Helper()
	res, _, err := codegen.CompileSource(loopSrc, codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

// TestRunHookCancelsDetailedRun pins the cooperative-cancellation contract
// on the detailed model: a hook that trips after N steps aborts the run
// with the trap it returned, at a step boundary, and the machine remains
// fully usable — the next run on the same warm machine must match a fresh
// machine bit for bit.
func TestRunHookCancelsDetailedRun(t *testing.T) {
	res := compileLoop(t)
	cfg := uarch.Config4Way()

	fresh, freshSt, err := uarch.Run(res.Prog, cfg)
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	freshRet, freshCycles := fresh.Ret, freshSt.Cycles

	m := uarch.NewMachine(cfg)
	var calls int
	var lastSteps int64
	m.SetRunHook(func(steps int64) error {
		calls++
		lastSteps = steps
		if calls >= 3 {
			return trap.New(trap.KindCancelled, "sim", "deadline exceeded after %d steps", steps)
		}
		return nil
	}, 100)
	_, _, err = m.Run(res.Prog)
	if got := trap.KindOf(err); got != trap.KindCancelled {
		t.Fatalf("cancelled run classified %v (err=%v), want cancelled", got, err)
	}
	var tr *trap.Trap
	if !errors.As(err, &tr) {
		t.Fatalf("cancellation did not surface as a structured trap: %v", err)
	}
	if calls != 3 || lastSteps != 300 {
		t.Errorf("hook cadence wrong: %d calls, last at step %d (want 3 calls, step 300)", calls, lastSteps)
	}

	// The machine must survive its own cancellation: clear the hook and the
	// same warm machine must reproduce the fresh-machine run exactly.
	m.SetRunHook(nil, 0)
	out, st, err := m.Run(res.Prog)
	if err != nil {
		t.Fatalf("post-cancel run: %v", err)
	}
	if out.Ret != freshRet || st.Cycles != freshCycles {
		t.Errorf("post-cancel run differs from fresh: ret %d vs %d, cycles %d vs %d",
			out.Ret, freshRet, st.Cycles, freshCycles)
	}
}

// TestRunHookCancelsSampledRun: the fast mode is driven by the same
// functional step loop, so the identical hook mechanism must abort it too.
func TestRunHookCancelsSampledRun(t *testing.T) {
	res := compileLoop(t)
	m := uarch.NewMachine(uarch.Config4Way())
	m.SetRunHook(func(steps int64) error {
		return trap.New(trap.KindCancelled, "sim", "cancelled at %d", steps)
	}, 64)
	_, _, err := m.RunSampled(res.Prog, uarch.SampleConfig{})
	if got := trap.KindOf(err); got != trap.KindCancelled {
		t.Fatalf("sampled run classified %v (err=%v), want cancelled", got, err)
	}
}

// TestMachineStepBudget: a machine-level step budget must behave exactly
// like the functional simulator's own watchdog — a KindStepLimit trap —
// and must keep applying across runs of the reused machine (the functional
// Reset restores the default limit; the machine re-arms its budget).
func TestMachineStepBudget(t *testing.T) {
	res := compileLoop(t)
	m := uarch.NewMachine(uarch.Config8Way())
	m.SetStepLimit(50)
	for i := 0; i < 2; i++ {
		_, _, err := m.Run(res.Prog)
		if got := trap.KindOf(err); got != trap.KindStepLimit {
			t.Fatalf("run %d: budgeted run classified %v (err=%v), want step-limit", i, got, err)
		}
	}
	// Lifting the budget restores unbounded runs.
	m.SetStepLimit(0)
	if _, _, err := m.Run(res.Prog); err != nil {
		t.Fatalf("unbudgeted run after budget lift: %v", err)
	}
	// The budget also bounds the sampled fast path.
	m.SetStepLimit(50)
	_, _, err := m.RunSampled(res.Prog, uarch.SampleConfig{})
	if got := trap.KindOf(err); got != trap.KindStepLimit {
		t.Fatalf("sampled budgeted run classified %v (err=%v), want step-limit", got, err)
	}
}

// TestRunHookNeutralWhenIdle: an armed hook that never trips must not
// perturb the simulation — cycles, stats, and output stay bit-identical to
// a hook-free run.
func TestRunHookNeutralWhenIdle(t *testing.T) {
	res := compileLoop(t)
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		bare, bareSt, err := uarch.Run(res.Prog, cfg)
		if err != nil {
			t.Fatalf("%s: bare run: %v", cfg.Name, err)
		}
		m := uarch.NewMachine(cfg)
		m.SetRunHook(func(int64) error { return nil }, 128)
		hooked, hookedSt, err := m.Run(res.Prog)
		if err != nil {
			t.Fatalf("%s: hooked run: %v", cfg.Name, err)
		}
		if hooked.Ret != bare.Ret || hooked.Output != bare.Output {
			t.Errorf("%s: hooked functional result differs", cfg.Name)
		}
		if hookedSt.Cycles != bareSt.Cycles || hookedSt.StallBySub != bareSt.StallBySub {
			t.Errorf("%s: hooked timing differs: %d cycles vs %d", cfg.Name, hookedSt.Cycles, bareSt.Cycles)
		}
	}
}
