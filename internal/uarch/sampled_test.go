package uarch_test

import (
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

// sampledTestProg compiles the shared timing-test loop once per test.
func sampledTestProg(t *testing.T) *codegen.Result {
	t.Helper()
	res, _, err := codegen.CompileSource(loopSrc, codegen.Options{Scheme: codegen.SchemeAdvanced, Analysis: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

// TestSampledPeriodOneIsDetailed pins the fast mode's degenerate case:
// Period <= 1 means every instruction is measured, so RunSampled must be
// the detailed model verbatim — identical cycles, identical stall ledger,
// no extrapolation — and must say so via Exact.
func TestSampledPeriodOneIsDetailed(t *testing.T) {
	res := sampledTestProg(t)
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		det, detSt, err := uarch.Run(res.Prog, cfg)
		if err != nil {
			t.Fatalf("%s: detailed: %v", cfg.Name, err)
		}
		out, est, err := uarch.RunSampled(res.Prog, cfg, uarch.SampleConfig{Period: 1})
		if err != nil {
			t.Fatalf("%s: sampled: %v", cfg.Name, err)
		}
		if !est.Exact {
			t.Errorf("%s: Period=1 estimate not marked Exact", cfg.Name)
		}
		if est.Cycles != detSt.Cycles || est.Instructions != detSt.Instructions {
			t.Errorf("%s: Period=1 cycles %d, want detailed %d", cfg.Name, est.Cycles, detSt.Cycles)
		}
		if est.IssueActiveCycles != detSt.IssueActiveCycles || est.StallBySub != detSt.StallBySub {
			t.Errorf("%s: Period=1 stall ledger differs from detailed run", cfg.Name)
		}
		if out.Ret != det.Ret || out.Output != det.Output {
			t.Errorf("%s: Period=1 functional result differs", cfg.Name)
		}
		if est.SampledFraction != 1 {
			t.Errorf("%s: Period=1 sampled fraction %v, want 1", cfg.Name, est.SampledFraction)
		}
	}
}

// TestSampledDeterministic pins that the estimator is a pure function of
// (program, config, SampleConfig): repeated runs — including on a reused
// warm machine — must agree bit-for-bit, and a different seed must still
// produce a valid (generally different) estimate rather than noise.
func TestSampledDeterministic(t *testing.T) {
	res := sampledTestProg(t)
	cfg := uarch.Config4Way()
	sc := uarch.SampleConfig{Period: 4, Width: 500, Warmup: 500, Seed: 42}

	_, first, err := uarch.RunSampled(res.Prog, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	m := uarch.NewMachine(cfg)
	for i := 0; i < 3; i++ {
		_, again, err := m.RunSampled(res.Prog, sc)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if again.Cycles != first.Cycles || again.MeasuredInstructions != first.MeasuredInstructions ||
			again.Windows != first.Windows || again.StallBySub != first.StallBySub {
			t.Fatalf("run %d: estimate not deterministic: %d cycles (%d measured) vs %d (%d)",
				i, again.Cycles, again.MeasuredInstructions, first.Cycles, first.MeasuredInstructions)
		}
	}

	// A different seed shifts the sampling phase; the estimate must remain
	// internally consistent whether or not the total moves.
	sc.Seed = 7
	_, other, err := uarch.RunSampled(res.Prog, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if other.Windows == 0 || other.MeasuredInstructions == 0 {
		t.Errorf("seed 7: no measured windows")
	}
	if err := other.StallAccountingError(); err != 0 {
		t.Errorf("seed 7: ledger not closed: error %d", err)
	}
}

// TestSampledLedgerClosure pins the extrapolated stall ledger: in sampled
// mode the estimate is assembled as IssueActiveCycles + ΣStallBySub, so
// the closure invariant the detailed model proves cycle-by-cycle must
// hold exactly on the scaled numbers too, for a spread of sampling
// parameters on both machine configurations.
func TestSampledLedgerClosure(t *testing.T) {
	res := sampledTestProg(t)
	params := []uarch.SampleConfig{
		{},                                    // defaults
		{Period: 2, Width: 200, Warmup: 100},  // dense
		{Period: 16, Width: 250, Warmup: 750}, // sparse
		{Period: 4, Width: 500, Warmup: 500, Seed: 99},
	}
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		m := uarch.NewMachine(cfg)
		for _, sc := range params {
			_, est, err := m.RunSampled(res.Prog, sc)
			if err != nil {
				t.Fatalf("%s %+v: %v", cfg.Name, sc, err)
			}
			if lerr := est.StallAccountingError(); lerr != 0 {
				t.Errorf("%s %+v: sampled ledger not closed: error %d", cfg.Name, sc, lerr)
			}
			if est.Cycles <= 0 {
				t.Errorf("%s %+v: no cycle estimate", cfg.Name, sc)
			}
			var issued int64
			if est.Exact {
				continue
			}
			issued = est.IssuedINT + est.IssuedFP + est.IssuedFPa
			if issued != est.Instructions {
				t.Errorf("%s %+v: issued %d != instructions %d", cfg.Name, sc, issued, est.Instructions)
			}
		}
	}
}

// TestSampledDetailedModeUnaffected pins that running the fast mode on a
// machine leaves it fully usable for detailed runs afterwards: the trace
// hook is restored and the next detailed run matches a fresh machine's.
func TestSampledDetailedModeUnaffected(t *testing.T) {
	res := sampledTestProg(t)
	cfg := uarch.Config8Way()
	fresh, freshSt, err := uarch.Run(res.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := uarch.NewMachine(cfg)
	if _, _, err := m.RunSampled(res.Prog, uarch.DefaultSampleConfig()); err != nil {
		t.Fatal(err)
	}
	out, st, err := m.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != freshSt.Cycles || st.StallBySub != freshSt.StallBySub {
		t.Errorf("detailed run after sampled run differs: %d cycles vs %d", st.Cycles, freshSt.Cycles)
	}
	if out.Ret != fresh.Ret || out.Output != fresh.Output {
		t.Errorf("functional result differs after sampled run")
	}
}
