package uarch

import (
	"math"

	"fpint/internal/isa"
	"fpint/internal/sim"
)

// SampleConfig controls the sampled-timing fast mode: functional execution
// with periodic detailed-timing windows, in the style of SMARTS periodic
// sampling. The dynamic instruction stream is cut into units of Width
// instructions; every Period-th unit (phase chosen by Seed) is simulated
// in full cycle-level detail, preceded by Warmup detailed instructions
// that refill the out-of-order window before measurement starts. All other
// instructions execute functionally while still training the branch
// predictor and touching the caches, so long-lived microarchitectural
// state stays warm between windows.
type SampleConfig struct {
	// Period is the sampling period in units: one unit out of every
	// Period is measured. Period <= 1 degenerates to the full detailed
	// model (every instruction measured, zero estimation error).
	Period int
	// Width is the sampling-unit size in instructions.
	Width int
	// Warmup is the number of detailed (but unmeasured) instructions fed
	// to the pipeline before each measured unit.
	Warmup int
	// Seed picks the phase of the measured units within the period and
	// makes the estimate deterministic for a fixed (Seed, Period, Width).
	Seed uint64
}

// DefaultSampleConfig returns the fast-mode defaults: 500-instruction
// units, one in four measured after a 500-instruction detailed warmup — a
// conservative 25% measured fraction that keeps the cycle-estimate error
// within the acceptance test's 5% bound even on the small testdata
// programs. Long-running sweeps should raise Period (20–50 works well
// above a few hundred thousand instructions) to trade accuracy for
// speed; error grows slowly because the measured units still sweep all
// period phases.
func DefaultSampleConfig() SampleConfig {
	return SampleConfig{Period: 4, Width: 500, Warmup: 500, Seed: 1}
}

// windowCap bounds Warmup+Width so a detailed window always fits the
// pipeline's pending buffer without triggering mid-window stepping that
// would skip the warmup/measure boundary snapshot.
const windowCap = 8000

func (sc SampleConfig) withDefaults() SampleConfig {
	def := DefaultSampleConfig()
	if sc.Period == 0 {
		sc.Period = def.Period
	}
	if sc.Width <= 0 {
		sc.Width = def.Width
	}
	if sc.Warmup < 0 {
		sc.Warmup = 0
	} else if sc.Warmup == 0 {
		sc.Warmup = def.Warmup
	}
	if sc.Width > windowCap {
		sc.Width = windowCap
	}
	if sc.Warmup > windowCap-sc.Width {
		sc.Warmup = windowCap - sc.Width
	}
	return sc
}

// SampledStats is the fast mode's timing estimate. The embedded Stats
// holds extrapolated totals: Cycles, IssueActiveCycles, and StallBySub are
// scaled from the measured windows (the ledger closes by construction —
// IssueActiveCycles + ΣStallBySub == Cycles), while Instructions, Loads,
// Stores, and the per-subsystem issue counts are exact functional counts.
// Branch-predictor and cache totals are exact too: the predictor and both
// caches observe the entire instruction stream, detailed or not. Histogram
// slices cover only the detailed windows, rescaled to the estimated cycle
// count.
type SampledStats struct {
	Stats

	// Exact reports that the numbers come from the full detailed model
	// with no extrapolation: Period <= 1, or a program too short to
	// produce a single measured window (the fallback path).
	Exact bool
	// MeasuredInstructions and MeasuredCycles cover the measured parts of
	// the detailed windows (warmup excluded).
	MeasuredInstructions int64
	MeasuredCycles       int64
	// Windows is the number of measured windows.
	Windows int
	// SampledFraction is MeasuredInstructions / Instructions.
	SampledFraction float64
}

// sampler drives the periodic-detailed-window state machine from the
// functional simulator's trace callback.
type sampler struct {
	pipe *Pipeline
	sc   SampleConfig

	n int64 // next dynamic instruction index

	inWindow  bool
	winStart  int64 // first instruction of the current/next window
	measStart int64 // first measured instruction of that window
	winEnd    int64 // first instruction past the window
	phase     int64 // seed-derived base phase within the period
	group     int64 // next period-group to pick a measured unit from
	winFed    int64 // events fed to the pipeline in the current window
	instrBase int64 // pipeline committed-instruction count at window entry

	lastLine int64 // functional I-cache warming: last line probed

	// Accumulators over measured parts of windows.
	windows    int
	measInstr  int64
	measCycles int64
	measActive int64
	measStalls [3][NumStallCauses]int64
	measIdle   int64 // IntIdleFPaBusy
}

func newSampler(p *Pipeline, sc SampleConfig) *sampler {
	s := &sampler{pipe: p, sc: sc, lastLine: -1}
	s.phase = int64(splitmix64(sc.Seed) % uint64(sc.Period))
	s.schedule()
	return s
}

// phaseRotation decorrelates the measured units from program loop
// structure: picking the same phase in every period-group aliases badly
// with loops whose trip "wavelength" divides Period×Width, so the phase
// advances by a fixed odd stride per group, sweeping all offsets.
const phaseRotation = 7

// schedule computes the bounds of the next measured window: one unit out
// of the next period-group of units, at a per-group rotated phase. Warmup
// is clipped so windows never overlap (and never reach before the stream
// position at scheduling time).
func (s *sampler) schedule() {
	period := int64(s.sc.Period)
	unit := s.group*period + (s.phase+s.group*phaseRotation)%period
	if unit == 0 {
		// Never measure the very first unit: it would be measured with no
		// warmup on a cold pipeline and would fold program-startup
		// transients into the extrapolation with full weight.
		unit = period / 2
	}
	s.group++
	s.measStart = unit * int64(s.sc.Width)
	s.winEnd = s.measStart + int64(s.sc.Width)
	s.winStart = s.measStart - int64(s.sc.Warmup)
	if s.winStart < s.n {
		s.winStart = s.n
	}
}

// feed is the sim.Machine trace callback in fast mode.
func (s *sampler) feed(ev sim.Event) {
	n := s.n
	s.n++
	if !s.inWindow {
		if n < s.winStart {
			s.warm(&ev)
			return
		}
		s.enterWindow()
	}
	s.pipe.Feed(ev)
	s.winFed++
	if s.n == s.winEnd {
		s.closeWindow()
	}
}

// warm trains the long-lived microarchitectural state — branch predictor,
// D-cache, I-cache — on a functionally executed instruction, mirroring
// what the detailed front end and load/store unit would have done.
func (s *sampler) warm(ev *sim.Event) {
	p := s.pipe
	line := (int64(ev.PC) * 8) / int64(p.cfg.ICacheLine)
	if line != s.lastLine {
		s.lastLine = line
		p.icache.Access(int64(ev.PC)*8, false)
	}
	if isa.IsCondBranch(ev.Op) {
		p.bpred.PredictAndUpdate(ev.PC, ev.Taken)
	} else if isa.IsLoad(ev.Op) {
		p.dcache.Access(ev.MemAddr, false)
	} else if isa.IsStore(ev.Op) {
		p.dcache.Access(ev.MemAddr, true)
	}
}

// enterWindow resets the pipeline's structural state (keeping predictor
// and cache contents) and starts feeding it detailed events.
func (s *sampler) enterWindow() {
	s.inWindow = true
	s.winFed = 0
	s.instrBase = s.pipe.stats.Instructions
	s.pipe.resetCore()
}

// closeWindow drains the pipeline, snapshotting the ledger at the
// warmup/measure boundary so only the measured instructions' cycles are
// accumulated, then schedules the next window.
func (s *sampler) closeWindow() {
	p := s.pipe
	warmCount := s.measStart - s.winStart
	if warmCount < 0 {
		warmCount = 0
	}
	if warmCount > s.winFed {
		warmCount = s.winFed // halted during warmup: nothing measured
	}
	meas := s.winFed - warmCount
	// Drain the warmup prefix.
	warmTarget := s.instrBase + warmCount
	for p.stats.Instructions < warmTarget {
		p.step()
	}
	c0 := p.cycle
	a0 := p.stats.IssueActiveCycles
	st0 := p.stats.StallBySub
	idle0 := p.stats.IntIdleFPaBusy
	// Step until the last measured instruction commits.
	measTarget := warmTarget + meas
	for p.stats.Instructions < measTarget {
		p.step()
	}
	if meas > 0 {
		s.windows++
		s.measInstr += meas
		s.measCycles += p.cycle - c0
		s.measActive += p.stats.IssueActiveCycles - a0
		s.measIdle += p.stats.IntIdleFPaBusy - idle0
		for sub := 0; sub < 3; sub++ {
			for c := 0; c < NumStallCauses; c++ {
				s.measStalls[sub][c] += p.stats.StallBySub[sub][c] - st0[sub][c]
			}
		}
	}
	s.inWindow = false
	s.lastLine = -1
	s.schedule()
}

// finish closes a window left open when the program halted mid-window.
func (s *sampler) finish() {
	if s.inWindow {
		s.winEnd = s.n
		s.closeWindow()
	}
}

// resetCore restores the pipeline's structural state (clock, ROB, pending
// queue, rename table, fetch/fault state, occupancy counters) for a new
// detailed window while preserving the branch predictor, the caches, and
// the accumulated statistics. Reset calls it as part of the full reset.
func (p *Pipeline) resetCore() {
	p.pending = p.pending[:0]
	p.pendHead = 0
	p.pendBase = 0
	p.rob.reset()
	p.robBase, p.head, p.tail, p.dispatch = 0, 0, 0, 0
	for i := range p.rename {
		p.rename[i] = -1
	}
	p.fetchBlockedOn = -1
	p.icacheStallUntil = 0
	p.lastFetchLine = -1
	p.recoverBlockedOn = -1
	p.intWinCount, p.fpWinCount, p.inFlight = 0, 0, 0
	p.intDefs, p.fpDefs = 0, 0
	p.issuedOldestPC = UnknownPC
	p.issuedOldestSub = isa.SubINT
}

// RunSampled executes prog in the fast mode: full-fidelity functional
// simulation (the result is bit-identical to Run's) with timing
// extrapolated from periodic detailed windows. With sc.Period <= 1 it is
// exactly Run. Fault injection, journals, and profiles are detailed-mode
// features and are not available here.
func (m *Machine) RunSampled(prog *isa.Program, sc SampleConfig) (*sim.Result, SampledStats, error) {
	sc = sc.withDefaults()
	if sc.Period <= 1 {
		res, st, err := m.Run(prog)
		if err != nil {
			return nil, SampledStats{}, err
		}
		r, ss := exactSampled(res, st)
		return r, ss, nil
	}
	m.pipe.Reset()
	m.armTimeline()
	s := newSampler(m.pipe, sc)
	m.fm.Reset(prog)
	m.applyBudget()
	m.fm.Trace = s.feed
	res, err := m.fm.Run()
	m.fm.Trace = m.pipe.Feed
	if err != nil {
		return nil, SampledStats{}, err
	}
	s.finish()
	if m.pipe.rec != nil {
		// Fast mode never calls Pipeline.Finish; close the recorder's
		// final partial window here. The recorded windows cover the
		// detailed (warmup+measured) cycles only — the caller flags the
		// built timeline as estimated.
		m.pipe.rec.flush(m.pipe)
	}
	if s.measInstr == 0 {
		// Too short to produce a single measured window: fall back to the
		// detailed model, which is cheap at this size.
		res, st, err := m.Run(prog)
		if err != nil {
			return nil, SampledStats{}, err
		}
		r, ss := exactSampled(res, st)
		return r, ss, nil
	}
	return res, s.estimate(res), nil
}

// RunSampled executes prog in the fast mode on a fresh machine; see
// Machine.RunSampled.
func RunSampled(prog *isa.Program, cfg Config, sc SampleConfig) (*sim.Result, SampledStats, error) {
	return NewMachine(cfg).RunSampled(prog, sc)
}

func exactSampled(res *sim.Result, st Stats) (*sim.Result, SampledStats) {
	return res, SampledStats{
		Stats:                st,
		Exact:                true,
		MeasuredInstructions: st.Instructions,
		MeasuredCycles:       st.Cycles,
		Windows:              1,
		SampledFraction:      1,
	}
}

// estimate extrapolates whole-run statistics from the measured windows.
func (s *sampler) estimate(res *sim.Result) SampledStats {
	p := s.pipe
	total := res.Stats.Total
	scale := float64(total) / float64(s.measInstr)
	round := func(v int64) int64 { return int64(math.Round(float64(v) * scale)) }

	var est Stats
	// Exact functional counts.
	est.Instructions = total
	est.Loads = res.Stats.Loads
	est.Stores = res.Stats.Stores
	est.IssuedINT = res.Stats.BySubsys[isa.SubINT]
	est.IssuedFP = res.Stats.BySubsys[isa.SubFP]
	est.IssuedFPa = res.Stats.BySubsys[isa.SubFPa]
	// Exact microarchitectural totals: predictor and caches saw the whole
	// stream (functionally warmed between windows).
	est.BpredLookups = p.bpred.Lookups
	est.BpredMispredicts = p.bpred.Mispredicts
	est.ICacheMissRate = p.icache.MissRate()
	est.DCacheMissRate = p.dcache.MissRate()
	// Extrapolated ledger: scaling active cycles and every stall cell
	// independently and summing keeps the closure invariant exact.
	est.IssueActiveCycles = round(s.measActive)
	cycles := est.IssueActiveCycles
	for sub := 0; sub < 3; sub++ {
		for c := 0; c < NumStallCauses; c++ {
			v := round(s.measStalls[sub][c])
			est.StallBySub[sub][c] = v
			cycles += v
		}
	}
	est.Cycles = cycles
	est.IntIdleFPaBusy = round(s.measIdle)
	est.FetchMispredictStalls = round(p.stats.FetchMispredictStalls)
	est.FetchICacheStalls = round(p.stats.FetchICacheStalls)
	// Histograms cover only the detailed windows; rescale them toward the
	// estimated cycle count so their masses stay comparable across modes.
	winCycles := p.cycle
	hscale := 0.0
	if winCycles > 0 {
		hscale = float64(cycles) / float64(winCycles)
	}
	hist := func(src []int64) []int64 {
		out := make([]int64, len(src))
		for i, v := range src {
			out[i] = int64(math.Round(float64(v) * hscale))
		}
		return out
	}
	est.IssueSlotCycles = hist(p.stats.IssueSlotCycles)
	est.IntWinOcc = hist(p.stats.IntWinOcc)
	est.FpWinOcc = hist(p.stats.FpWinOcc)
	est.ROBOcc = hist(p.stats.ROBOcc)

	return SampledStats{
		Stats:                est,
		MeasuredInstructions: s.measInstr,
		MeasuredCycles:       s.measCycles,
		Windows:              s.windows,
		SampledFraction:      float64(s.measInstr) / float64(total),
	}
}

// splitmix64 is the standard 64-bit mix, used to derive the sampling phase
// from the seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
