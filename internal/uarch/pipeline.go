package uarch

import (
	"math"

	"fpint/internal/faultinject"
	"fpint/internal/isa"
	"fpint/internal/sim"
)

// Stats summarizes a timing simulation.
type Stats struct {
	Cycles       int64
	Instructions int64
	Loads        int64
	Stores       int64

	// Issue activity per subsystem (instructions issued to each).
	IssuedINT int64
	IssuedFP  int64
	IssuedFPa int64

	// IntIdleFPaBusy counts cycles in which the INT subsystem issued
	// nothing while the FPa subsystem issued at least one instruction —
	// the load-imbalance signal discussed for m88ksim (§7.3).
	IntIdleFPaBusy int64

	// FetchMispredictStalls counts cycles fetch was blocked on an
	// unresolved mispredicted branch.
	FetchMispredictStalls int64
	// FetchICacheStalls counts cycles fetch was blocked on I-cache misses.
	FetchICacheStalls int64

	BpredLookups     int64
	BpredMispredicts int64
	ICacheMissRate   float64
	DCacheMissRate   float64

	// FaultsInjected counts transient faults injected (and detected) by an
	// attached fault plan; FaultRecoveryCycles is the total latency added to
	// faulted instructions by the detection/recovery discipline. Zero when
	// no plan is attached.
	FaultsInjected      int64
	FaultRecoveryCycles int64
	// FetchFaultStalls counts cycles fetch was blocked refilling the front
	// end after a fault-triggered pipeline flush.
	FetchFaultStalls int64

	// IssueActiveCycles counts cycles in which at least one instruction
	// issued. Every other cycle is attributed to exactly one stall cause
	// and one subsystem in StallBySub, so
	//
	//	IssueActiveCycles + ΣStallBySub == Cycles
	//
	// (the invariant StallAccountingError checks).
	IssueActiveCycles int64

	// StallBySub[sub][cause] attributes each non-issuing cycle to the
	// subsystem of the instruction at fault (see classifyStall for the
	// blame rules; pure front-end conditions are charged to INT, whose
	// core owns fetch/decode).
	StallBySub [3][NumStallCauses]int64

	// IssueSlotCycles[k] counts cycles in which exactly k instructions
	// issued (k = 0..IssueWidth) — the per-slot issue-utilization profile.
	IssueSlotCycles []int64

	// Per-cycle occupancy histograms, sampled at the end of every cycle:
	// IntWinOcc[n] is the number of cycles the INT issue window held n
	// entries, and likewise for the FP window and the in-flight (ROB)
	// count.
	IntWinOcc []int64
	FpWinOcc  []int64
	ROBOcc    []int64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

const never = math.MaxInt64 / 4

// robEntry is one in-flight dynamic instruction.
type robEntry struct {
	ev sim.Event

	deps [2]int64 // absolute ROB indices of producers; -1 = ready

	fetchAt    int64 // cycle the instruction was fetched
	dispatchAt int64
	issueAt    int64
	doneAt     int64
	dispatched bool
	issued     bool

	sub     isa.Subsystem
	isMem   bool
	isLoad  bool
	isStore bool
	isBr    bool
	misp    bool // conditional branch that the predictor missed
	dmiss   bool // load that missed the D-cache

	// seq is the dynamic instruction index in the fed trace, stable across
	// pending-buffer compaction and post-flush refetch; it keys fault-plan
	// decisions so replayed instances never re-fault.
	seq       int64
	faultKind faultinject.Kind // injected fault, if any (KindNone otherwise)

	hasDst   bool
	dstClass isa.RegClass
}

// Pipeline is the trace-driven out-of-order timing model. Feed it the
// dynamic instruction stream (in program order) and call Finish to drain.
type Pipeline struct {
	cfg    Config
	bpred  *GsharePredictor
	icache *Cache
	dcache *Cache

	cycle int64

	// pending holds trace events not yet fetched, plus the most recent
	// tail−head consumed events, so a fault-triggered flush can roll
	// pendHead back and refetch squashed instructions. pendBase is the
	// dynamic index of pending[0] (events dropped by compaction so far).
	pending  []sim.Event
	pendHead int
	pendBase int64

	// fetchQ holds fetched-but-not-dispatched entries (absolute indices
	// into rob).
	rob      []robEntry
	robBase  int64 // absolute index of rob[0]
	head     int64 // next absolute index to commit
	tail     int64 // next absolute index to allocate
	dispatch int64 // next absolute index to dispatch

	// rename maps encoded architectural registers to the absolute ROB
	// index of their most recent producer.
	rename map[int16]int64

	// Fetch state.
	fetchBlockedOn   int64 // absolute index of unresolved mispredicted branch, -1 none
	icacheStallUntil int64
	lastFetchLine    int64

	// Fault state: the attached plan (nil = no injection) and the absolute
	// index of a flush-faulted instruction the front end is waiting on
	// (-1 = none), mirroring fetchBlockedOn.
	faults           *faultinject.Plan
	recoverBlockedOn int64

	// Occupancy.
	intWinCount int
	fpWinCount  int
	inFlight    int
	intDefs     int
	fpDefs      int

	// issuedOldestPC/issuedOldestSub identify the oldest instruction issued
	// in the current cycle, for per-PC cycle attribution.
	issuedOldestPC  int
	issuedOldestSub isa.Subsystem

	stats   Stats
	done    bool
	journal *Journal
	profile *CycleProfile
}

// NewPipeline builds a timing model for cfg.
func NewPipeline(cfg Config) *Pipeline {
	p := &Pipeline{
		cfg:              cfg,
		bpred:            NewGshare(cfg.BpredCounters, cfg.BpredHistory),
		icache:           NewCache(cfg.ICacheSize, cfg.ICacheWays, cfg.ICacheLine),
		dcache:           NewCache(cfg.DCacheSize, cfg.DCacheWays, cfg.DCacheLine),
		rename:           make(map[int16]int64),
		fetchBlockedOn:   -1,
		lastFetchLine:    -1,
		recoverBlockedOn: -1,
	}
	p.stats.IssueSlotCycles = make([]int64, cfg.IssueWidth+1)
	p.stats.IntWinOcc = make([]int64, cfg.IntWindow+1)
	p.stats.FpWinOcc = make([]int64, cfg.FpWindow+1)
	p.stats.ROBOcc = make([]int64, cfg.MaxInFlight+1)
	return p
}

// Feed appends one traced instruction and advances the clock as needed to
// bound buffering. Suitable as a sim.Machine Trace callback target.
func (p *Pipeline) Feed(ev sim.Event) {
	p.pending = append(p.pending, ev)
	if len(p.pending)-p.pendHead > 16384 {
		for len(p.pending)-p.pendHead > 8192 {
			p.step()
		}
		// Compact the pending buffer, retaining the last tail−head consumed
		// events: those belong to uncommitted instructions a fault flush may
		// still squash and refetch.
		drop := p.pendHead - int(p.tail-p.head)
		if drop > 0 {
			copy(p.pending, p.pending[drop:])
			p.pending = p.pending[:len(p.pending)-drop]
			p.pendHead -= drop
			p.pendBase += int64(drop)
		}
	}
}

// AttachFaults arms the pipeline with a deterministic transient-fault plan.
// Attach before feeding events; pass a fresh plan per run.
func (p *Pipeline) AttachFaults(plan *faultinject.Plan) { p.faults = plan }

// Finish drains the pipeline and returns the final statistics.
func (p *Pipeline) Finish() Stats {
	p.done = true
	for p.pendHead < len(p.pending) || p.head < p.tail {
		p.step()
	}
	p.stats.Cycles = p.cycle
	p.stats.BpredLookups = p.bpred.Lookups
	p.stats.BpredMispredicts = p.bpred.Mispredicts
	p.stats.ICacheMissRate = p.icache.MissRate()
	p.stats.DCacheMissRate = p.dcache.MissRate()
	return p.stats
}

func (p *Pipeline) entry(abs int64) *robEntry {
	return &p.rob[abs-p.robBase]
}

// step advances the machine by one cycle: commit, issue, dispatch, fetch.
// Stall classification runs between issue and dispatch so it sees exactly
// the machine state the issue stage saw; occupancy is sampled at the end
// of the cycle.
func (p *Pipeline) step() {
	p.cycle++
	p.commit()
	issued := p.issue()
	p.accountIssue(issued)
	p.dispatchStage()
	p.fetch()
	p.sampleOccupancy()
}

func (p *Pipeline) commit() {
	for n := 0; n < p.cfg.RetireWidth && p.head < p.tail; n++ {
		e := p.entry(p.head)
		if !e.issued || e.doneAt > p.cycle {
			return
		}
		if e.hasDst {
			if e.dstClass == isa.IntReg {
				p.intDefs--
			} else {
				p.fpDefs--
			}
		}
		p.inFlight--
		p.stats.Instructions++
		p.journal.record(p.stats.Instructions, e, p.cycle)
		if p.profile != nil {
			p.profile.retire(e.ev.PC)
		}
		p.head++
	}
	// Trim committed prefix when it grows large, keeping entries that may
	// still be referenced as dependencies (committed entries are done by
	// definition, so references to indices below robBase are ready).
	if p.head-p.robBase > 8192 {
		drop := p.head - p.robBase
		p.rob = append(p.rob[:0], p.rob[drop:]...)
		p.robBase = p.head
	}
}

func (p *Pipeline) ready(e *robEntry) bool {
	for _, d := range e.deps {
		if d < 0 {
			continue
		}
		if d < p.robBase {
			continue // committed long ago
		}
		dep := p.entry(d)
		if !dep.issued || dep.doneAt > p.cycle {
			return false
		}
	}
	return true
}

func (p *Pipeline) issue() int {
	total := 0
	intALU := 0
	fpALU := 0
	ports := 0
	intIssued, fpaIssued := 0, 0
	flushAt := int64(-1) // faulted entry that triggers a pipeline flush
	p.issuedOldestPC = UnknownPC

	// Oldest un-issued store (for load/store ordering).
	for abs := p.head; abs < p.tail && total < p.cfg.IssueWidth; abs++ {
		e := p.entry(abs)
		if !e.dispatched || e.issued || e.dispatchAt >= p.cycle {
			continue
		}
		if !p.ready(e) {
			continue
		}
		// Structural hazards.
		if e.isMem {
			if ports >= p.cfg.LdStPorts {
				continue
			}
		} else if e.sub == isa.SubINT {
			if intALU >= p.cfg.IntALUs {
				continue
			}
		} else {
			if fpALU >= p.cfg.FpALUs {
				continue
			}
		}
		if e.isLoad {
			// Loads execute only once all prior store addresses are known
			// (Table 1); an unissued older store blocks this load. The scan
			// is oldest-first, so any older store either issued already or
			// appears before this load; track via a lookback.
			blocked := false
			for s := p.head; s < abs; s++ {
				se := p.entry(s)
				if se.isStore && !se.issued {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
		}

		// Issue.
		lat := int64(isa.Latency(e.ev.Op))
		if e.sub == isa.SubFPa && !e.isMem {
			lat += int64(p.cfg.FPaExtraLatency)
		}
		if e.isLoad {
			// Store-to-load forwarding on a word-address match.
			forwarded := false
			for s := p.head; s < abs; s++ {
				se := p.entry(s)
				if se.isStore && se.ev.MemAddr == e.ev.MemAddr {
					forwarded = true
				}
			}
			if forwarded {
				lat = int64(p.cfg.DCacheHit)
			} else if p.dcache.Access(e.ev.MemAddr, false) {
				lat = int64(p.cfg.DCacheHit)
			} else {
				lat = int64(p.cfg.DCacheHit + p.cfg.DCacheMissPenalty)
				e.dmiss = true
			}
			p.stats.Loads++
		} else if e.isStore {
			p.dcache.Access(e.ev.MemAddr, true)
			lat = 1
			p.stats.Stores++
		}
		// Transient-fault injection: the plan decides, purely from the
		// dynamic instruction index, whether this instance faults. Parity
		// on the result bus detects the fault; the recovery cost lands on
		// this instruction's latency, and flush-class faults additionally
		// squash all younger in-flight work (handled after issue below).
		if p.faults != nil {
			if kind := p.faults.Decide(e.seq, e.ev.Op, e.hasDst); kind != faultinject.KindNone {
				rec := p.faults.Recovery(kind, lat)
				e.faultKind = kind
				p.faults.Record(faultinject.Fault{
					Seq: e.seq, PC: e.ev.PC, Op: e.ev.Op, Kind: kind,
					Cycle: p.cycle, Recovery: rec,
				})
				p.stats.FaultsInjected++
				p.stats.FaultRecoveryCycles += rec
				lat += rec
				if kind.Flushes() {
					flushAt = abs
				}
			}
		}
		e.issued = true
		e.issueAt = p.cycle
		e.doneAt = p.cycle + lat
		if p.issuedOldestPC == UnknownPC {
			// Oldest-first scan: the first issue of the cycle is the one
			// retirement is waiting on; active cycles are charged to it.
			p.issuedOldestPC = e.ev.PC
			p.issuedOldestSub = e.sub
		}
		// Leaving the issue window frees the entry.
		if e.sub == isa.SubINT || e.isMem {
			p.intWinCount--
		} else {
			p.fpWinCount--
		}
		total++
		if e.isMem {
			ports++
		} else if e.sub == isa.SubINT {
			intALU++
		} else {
			fpALU++
		}
		switch e.sub {
		case isa.SubINT:
			p.stats.IssuedINT++
			intIssued++
		case isa.SubFP:
			p.stats.IssuedFP++
		case isa.SubFPa:
			p.stats.IssuedFPa++
			fpaIssued++
		}
		// Resolved mispredicted branch: restart fetch after completion.
		if e.isBr && e.misp && p.fetchBlockedOn == abs {
			// fetch resumes once doneAt passes; handled in fetch().
		}
		// Parity flush: squash everything younger than the faulted
		// instruction and stop issuing — the scan's view of the window is
		// stale once the tail moves.
		if flushAt >= 0 {
			p.squashYounger(flushAt)
			p.recoverBlockedOn = flushAt
			break
		}
	}
	if intIssued == 0 && fpaIssued > 0 {
		p.stats.IntIdleFPaBusy++
	}
	return total
}

// squashYounger implements the fault-recovery pipeline flush: every
// instruction younger than the faulted one at abs is discarded and will be
// refetched from the pending buffer once the front end unblocks. Rename and
// occupancy state are rebuilt from the surviving entries.
func (p *Pipeline) squashYounger(abs int64) {
	squash := p.tail - (abs + 1)
	if squash <= 0 {
		return
	}
	// The squashed entries consumed the most recent `squash` pending
	// events; compaction keeps at least tail−head consumed events around,
	// so rolling pendHead back re-exposes exactly those events.
	p.pendHead -= int(squash)
	p.rob = p.rob[:abs+1-p.robBase]
	p.tail = abs + 1
	if p.dispatch > p.tail {
		p.dispatch = p.tail
	}
	if p.fetchBlockedOn >= p.tail {
		p.fetchBlockedOn = -1
	}
	p.lastFetchLine = -1 // refetch probes the I-cache afresh
	// Rebuild the rename map from surviving dispatched producers. Mappings
	// to committed producers are dropped, which is equivalent: a committed
	// value is ready either way.
	p.rename = make(map[int16]int64)
	for a := p.head; a < p.dispatch; a++ {
		if e := p.entry(a); e.dispatched && e.hasDst {
			p.rename[e.ev.Dst] = a
		}
	}
	// Rebuild occupancy counters from the surviving window contents.
	p.intWinCount, p.fpWinCount, p.inFlight = 0, 0, 0
	p.intDefs, p.fpDefs = 0, 0
	for a := p.head; a < p.tail; a++ {
		e := p.entry(a)
		if !e.dispatched {
			continue
		}
		p.inFlight++
		if e.hasDst {
			if e.dstClass == isa.IntReg {
				p.intDefs++
			} else {
				p.fpDefs++
			}
		}
		if !e.issued {
			if e.sub == isa.SubINT || e.isMem {
				p.intWinCount++
			} else {
				p.fpWinCount++
			}
		}
	}
}

func (p *Pipeline) dispatchStage() {
	for n := 0; n < p.cfg.DecodeWidth && p.dispatch < p.tail; n++ {
		e := p.entry(p.dispatch)
		// One-cycle front-end latency after fetch.
		if e.dispatchAt > p.cycle {
			return
		}
		if p.inFlight >= p.cfg.MaxInFlight {
			return
		}
		// Window space.
		intSide := e.sub == isa.SubINT || e.isMem
		if intSide && p.intWinCount >= p.cfg.IntWindow {
			return
		}
		if !intSide && p.fpWinCount >= p.cfg.FpWindow {
			return
		}
		// Physical registers for renamed destinations.
		if e.hasDst {
			if e.dstClass == isa.IntReg {
				if p.intDefs >= p.cfg.IntPhysRegs-32 {
					return
				}
			} else if p.fpDefs >= p.cfg.FpPhysRegs-32 {
				return
			}
		}
		// Rename: capture producers, claim destination.
		e.deps[0], e.deps[1] = -1, -1
		if e.ev.Src1 >= 0 {
			if prod, ok := p.rename[e.ev.Src1]; ok {
				e.deps[0] = prod
			}
		}
		if e.ev.Src2 >= 0 {
			if prod, ok := p.rename[e.ev.Src2]; ok {
				e.deps[1] = prod
			}
		}
		if e.hasDst {
			p.rename[e.ev.Dst] = p.dispatch
			if e.dstClass == isa.IntReg {
				p.intDefs++
			} else {
				p.fpDefs++
			}
		}
		e.dispatched = true
		if intSide {
			p.intWinCount++
		} else {
			p.fpWinCount++
		}
		p.inFlight++
		p.dispatch++
	}
}

func (p *Pipeline) fetch() {
	// Blocked refilling the front end after a fault-recovery flush?
	if p.recoverBlockedOn >= 0 {
		if p.recoverBlockedOn >= p.robBase { // otherwise committed: recovered
			be := p.entry(p.recoverBlockedOn)
			if be.doneAt > p.cycle {
				p.stats.FetchFaultStalls++
				return
			}
		}
		p.recoverBlockedOn = -1
	}
	// Blocked on an unresolved mispredicted branch?
	if p.fetchBlockedOn >= 0 {
		if p.fetchBlockedOn >= p.robBase { // otherwise committed: resolved
			be := p.entry(p.fetchBlockedOn)
			if !be.issued || be.doneAt > p.cycle {
				p.stats.FetchMispredictStalls++
				return
			}
		}
		p.fetchBlockedOn = -1
	}
	if p.icacheStallUntil > p.cycle {
		p.stats.FetchICacheStalls++
		return
	}
	// The fetch buffer holds at most two fetch groups awaiting dispatch.
	fetchBuf := int64(2 * p.cfg.FetchWidth)
	for n := 0; n < p.cfg.FetchWidth && p.pendHead < len(p.pending); n++ {
		if p.tail-p.dispatch >= fetchBuf {
			return
		}
		ev := p.pending[p.pendHead]
		// Instruction cache: one probe per new line touched (instructions
		// are modeled as 8 bytes).
		line := (int64(ev.PC) * 8) / int64(p.cfg.ICacheLine)
		if line != p.lastFetchLine {
			p.lastFetchLine = line
			if !p.icache.Access(int64(ev.PC)*8, false) {
				p.icacheStallUntil = p.cycle + int64(p.cfg.ICacheMissPenalty)
				return // line arrives after the penalty; retry then
			}
		}
		seq := p.pendBase + int64(p.pendHead)
		p.pendHead++

		abs := p.tail
		p.rob = append(p.rob, robEntry{
			ev:         ev,
			seq:        seq,
			fetchAt:    p.cycle,
			dispatchAt: p.cycle + 1,
			doneAt:     never,
			sub:        isa.ExecSubsystem(ev.Op),
			isMem:      isa.IsMem(ev.Op),
			isLoad:     isa.IsLoad(ev.Op),
			isStore:    isa.IsStore(ev.Op),
			isBr:       isa.IsCondBranch(ev.Op),
		})
		e := p.entry(abs)
		if ev.Dst >= 0 {
			e.hasDst = true
			if ev.Dst < 32 {
				e.dstClass = isa.IntReg
			} else {
				e.dstClass = isa.FpReg
			}
		}
		p.tail++

		if e.isBr {
			correct := p.bpred.PredictAndUpdate(ev.PC, ev.Taken)
			if !correct {
				e.misp = true
				p.fetchBlockedOn = abs
				return
			}
		}
	}
}
