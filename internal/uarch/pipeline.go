package uarch

import (
	"math"

	"fpint/internal/faultinject"
	"fpint/internal/isa"
	"fpint/internal/sim"
)

// Stats summarizes a timing simulation.
type Stats struct {
	Cycles       int64
	Instructions int64
	Loads        int64
	Stores       int64

	// Issue activity per subsystem (instructions issued to each).
	IssuedINT int64
	IssuedFP  int64
	IssuedFPa int64

	// IntIdleFPaBusy counts cycles in which the INT subsystem issued
	// nothing while the FPa subsystem issued at least one instruction —
	// the load-imbalance signal discussed for m88ksim (§7.3).
	IntIdleFPaBusy int64

	// FetchMispredictStalls counts cycles fetch was blocked on an
	// unresolved mispredicted branch.
	FetchMispredictStalls int64
	// FetchICacheStalls counts cycles fetch was blocked on I-cache misses.
	FetchICacheStalls int64

	BpredLookups     int64
	BpredMispredicts int64
	ICacheMissRate   float64
	DCacheMissRate   float64

	// FaultsInjected counts transient faults injected (and detected) by an
	// attached fault plan; FaultRecoveryCycles is the total latency added to
	// faulted instructions by the detection/recovery discipline. Zero when
	// no plan is attached.
	FaultsInjected      int64
	FaultRecoveryCycles int64
	// FetchFaultStalls counts cycles fetch was blocked refilling the front
	// end after a fault-triggered pipeline flush.
	FetchFaultStalls int64

	// IssueActiveCycles counts cycles in which at least one instruction
	// issued. Every other cycle is attributed to exactly one stall cause
	// and one subsystem in StallBySub, so
	//
	//	IssueActiveCycles + ΣStallBySub == Cycles
	//
	// (the invariant StallAccountingError checks).
	IssueActiveCycles int64

	// StallBySub[sub][cause] attributes each non-issuing cycle to the
	// subsystem of the instruction at fault (see classifyStall for the
	// blame rules; pure front-end conditions are charged to INT, whose
	// core owns fetch/decode).
	StallBySub [3][NumStallCauses]int64

	// IssueSlotCycles[k] counts cycles in which exactly k instructions
	// issued (k = 0..IssueWidth) — the per-slot issue-utilization profile.
	//
	// The histogram slices below are owned by the Pipeline that produced
	// them and are recycled by its next Reset; copy them if the Stats must
	// outlive a reused pipeline. (Runs through the package-level Run
	// helpers use a fresh pipeline per call and are unaffected.)
	IssueSlotCycles []int64

	// Per-cycle occupancy histograms, sampled at the end of every cycle:
	// IntWinOcc[n] is the number of cycles the INT issue window held n
	// entries, and likewise for the FP window and the in-flight (ROB)
	// count.
	IntWinOcc []int64
	FpWinOcc  []int64
	ROBOcc    []int64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

const never = math.MaxInt64 / 4

// Per-instruction boolean state, packed into one byte of the ROB's flag
// column.
const (
	fDispatched = uint8(1) << iota
	fIssued
	fIsMem
	fIsLoad
	fIsStore
	fIsBr
	fMisp  // conditional branch that the predictor missed
	fDmiss // load that missed the D-cache
)

// robColumns is the in-flight instruction store in struct-of-arrays layout:
// one parallel column per field, indexed by abs−robBase. The hot columns
// (flags, dispatchAt, doneAt, deps, sub, memAddr) are what the per-cycle
// issue/commit scans touch; keeping them in dense homogeneous arrays — the
// reservation-station idiom — is what makes those scans cache-friendly.
// Columns are appended in lockstep and recycled across runs, so a warm
// pipeline allocates nothing here.
type robColumns struct {
	flags      []uint8
	sub        []isa.Subsystem
	pc         []int32
	dispatchAt []int64
	doneAt     []int64
	dep0       []int64 // absolute ROB index of producer; -1 = ready
	dep1       []int64
	memAddr    []int64

	// Cold columns: read at most once per instruction (dispatch, commit,
	// fault decision), not in the per-cycle scans.
	op        []isa.Opcode
	seq       []int64
	fetchAt   []int64
	issueAt   []int64
	dst       []int16 // encoded destination register, -1 when none
	src1      []int16
	src2      []int16
	faultKind []faultinject.Kind
}

// push appends one fetched instruction; deps start ready and are captured
// at dispatch.
func (r *robColumns) push(fl uint8, sub isa.Subsystem, ev *sim.Event, seq, fetchAt, dispatchAt int64) {
	r.flags = append(r.flags, fl)
	r.sub = append(r.sub, sub)
	r.pc = append(r.pc, int32(ev.PC))
	r.dispatchAt = append(r.dispatchAt, dispatchAt)
	r.doneAt = append(r.doneAt, never)
	r.dep0 = append(r.dep0, -1)
	r.dep1 = append(r.dep1, -1)
	r.memAddr = append(r.memAddr, ev.MemAddr)
	r.op = append(r.op, ev.Op)
	r.seq = append(r.seq, seq)
	r.fetchAt = append(r.fetchAt, fetchAt)
	r.issueAt = append(r.issueAt, 0)
	r.dst = append(r.dst, ev.Dst)
	r.src1 = append(r.src1, ev.Src1)
	r.src2 = append(r.src2, ev.Src2)
	r.faultKind = append(r.faultKind, faultinject.KindNone)
}

// truncate discards entries at and beyond n (fault-flush squash).
func (r *robColumns) truncate(n int) {
	r.flags = r.flags[:n]
	r.sub = r.sub[:n]
	r.pc = r.pc[:n]
	r.dispatchAt = r.dispatchAt[:n]
	r.doneAt = r.doneAt[:n]
	r.dep0 = r.dep0[:n]
	r.dep1 = r.dep1[:n]
	r.memAddr = r.memAddr[:n]
	r.op = r.op[:n]
	r.seq = r.seq[:n]
	r.fetchAt = r.fetchAt[:n]
	r.issueAt = r.issueAt[:n]
	r.dst = r.dst[:n]
	r.src1 = r.src1[:n]
	r.src2 = r.src2[:n]
	r.faultKind = r.faultKind[:n]
}

// drop removes the first n (committed) entries, shifting the rest down in
// place.
func (r *robColumns) drop(n int) {
	k := len(r.flags) - n
	copy(r.flags, r.flags[n:])
	r.flags = r.flags[:k]
	copy(r.sub, r.sub[n:])
	r.sub = r.sub[:k]
	copy(r.pc, r.pc[n:])
	r.pc = r.pc[:k]
	copy(r.dispatchAt, r.dispatchAt[n:])
	r.dispatchAt = r.dispatchAt[:k]
	copy(r.doneAt, r.doneAt[n:])
	r.doneAt = r.doneAt[:k]
	copy(r.dep0, r.dep0[n:])
	r.dep0 = r.dep0[:k]
	copy(r.dep1, r.dep1[n:])
	r.dep1 = r.dep1[:k]
	copy(r.memAddr, r.memAddr[n:])
	r.memAddr = r.memAddr[:k]
	copy(r.op, r.op[n:])
	r.op = r.op[:k]
	copy(r.seq, r.seq[n:])
	r.seq = r.seq[:k]
	copy(r.fetchAt, r.fetchAt[n:])
	r.fetchAt = r.fetchAt[:k]
	copy(r.issueAt, r.issueAt[n:])
	r.issueAt = r.issueAt[:k]
	copy(r.dst, r.dst[n:])
	r.dst = r.dst[:k]
	copy(r.src1, r.src1[n:])
	r.src1 = r.src1[:k]
	copy(r.src2, r.src2[n:])
	r.src2 = r.src2[:k]
	copy(r.faultKind, r.faultKind[n:])
	r.faultKind = r.faultKind[:k]
}

// reset empties the store, keeping column capacity.
func (r *robColumns) reset() { r.truncate(0) }

// Pipeline is the trace-driven out-of-order timing model. Feed it the
// dynamic instruction stream (in program order) and call Finish to drain.
// A pipeline is reusable: Reset restores the power-on state while keeping
// every buffer, so a warm pipeline runs its steady state without heap
// allocations.
type Pipeline struct {
	cfg    Config
	bpred  *GsharePredictor
	icache *Cache
	dcache *Cache

	cycle int64

	// pending holds trace events not yet fetched, plus the most recent
	// tail−head consumed events, so a fault-triggered flush can roll
	// pendHead back and refetch squashed instructions. pendBase is the
	// dynamic index of pending[0] (events dropped by compaction so far).
	pending  []sim.Event
	pendHead int
	pendBase int64

	// rob holds fetched instructions in struct-of-arrays layout; the
	// absolute index space survives compaction via robBase.
	rob      robColumns
	robBase  int64 // absolute index of rob column 0
	head     int64 // next absolute index to commit
	tail     int64 // next absolute index to allocate
	dispatch int64 // next absolute index to dispatch

	// rename maps encoded architectural registers (class*32+num, one slot
	// per register in either class) to the absolute ROB index of their most
	// recent producer; -1 means no in-flight producer.
	rename [64]int64

	// Fetch state.
	fetchBlockedOn   int64 // absolute index of unresolved mispredicted branch, -1 none
	icacheStallUntil int64
	lastFetchLine    int64

	// Fault state: the attached plan (nil = no injection) and the absolute
	// index of a flush-faulted instruction the front end is waiting on
	// (-1 = none), mirroring fetchBlockedOn.
	faults           *faultinject.Plan
	recoverBlockedOn int64

	// Occupancy.
	intWinCount int
	fpWinCount  int
	inFlight    int
	intDefs     int
	fpDefs      int

	// issuedOldestPC/issuedOldestSub identify the oldest instruction issued
	// in the current cycle, for per-PC cycle attribution.
	issuedOldestPC  int
	issuedOldestSub isa.Subsystem

	// Running occupancy sums (Σ over cycles of the end-of-cycle counts)
	// alongside the occupancy histograms: the timeline recorder differences
	// them at window boundaries to get per-window occupancy means in O(1).
	occIntSum int64
	occFpSum  int64
	occROBSum int64

	stats   Stats
	done    bool
	journal *Journal
	profile *CycleProfile
	rec     *TimelineRecorder
}

// NewPipeline builds a timing model for cfg.
func NewPipeline(cfg Config) *Pipeline {
	p := &Pipeline{
		cfg:    cfg,
		bpred:  NewGshare(cfg.BpredCounters, cfg.BpredHistory),
		icache: NewCache(cfg.ICacheSize, cfg.ICacheWays, cfg.ICacheLine),
		dcache: NewCache(cfg.DCacheSize, cfg.DCacheWays, cfg.DCacheLine),
	}
	p.Reset()
	return p
}

// Reset restores the pipeline to its power-on state for a new run, keeping
// all buffers (ROB columns, pending queue, histogram slices, cache and
// predictor tables) so a warm pipeline allocates nothing. Any attached
// journal, profile, or fault plan is detached; re-attach after Reset.
func (p *Pipeline) Reset() {
	p.bpred.Reset()
	p.icache.Reset()
	p.dcache.Reset()
	p.cycle = 0
	p.resetCore()
	p.faults = nil
	p.resetStats()
	p.done = false
	p.journal = nil
	p.profile = nil
	p.rec = nil
}

// resetStats zeroes the statistics in place, recycling the histogram
// slices.
func (p *Pipeline) resetStats() {
	slots, iw, fw, rob := p.stats.IssueSlotCycles, p.stats.IntWinOcc, p.stats.FpWinOcc, p.stats.ROBOcc
	if slots == nil {
		slots = make([]int64, p.cfg.IssueWidth+1)
		iw = make([]int64, p.cfg.IntWindow+1)
		fw = make([]int64, p.cfg.FpWindow+1)
		rob = make([]int64, p.cfg.MaxInFlight+1)
	} else {
		clear(slots)
		clear(iw)
		clear(fw)
		clear(rob)
	}
	p.stats = Stats{IssueSlotCycles: slots, IntWinOcc: iw, FpWinOcc: fw, ROBOcc: rob}
	p.occIntSum, p.occFpSum, p.occROBSum = 0, 0, 0
}

// Feed appends one traced instruction and advances the clock as needed to
// bound buffering. Suitable as a sim.Machine Trace callback target.
func (p *Pipeline) Feed(ev sim.Event) {
	p.pending = append(p.pending, ev)
	if len(p.pending)-p.pendHead > 16384 {
		for len(p.pending)-p.pendHead > 8192 {
			p.step()
		}
		// Compact the pending buffer, retaining the last tail−head consumed
		// events: those belong to uncommitted instructions a fault flush may
		// still squash and refetch.
		drop := p.pendHead - int(p.tail-p.head)
		if drop > 0 {
			copy(p.pending, p.pending[drop:])
			p.pending = p.pending[:len(p.pending)-drop]
			p.pendHead -= drop
			p.pendBase += int64(drop)
		}
	}
}

// AttachFaults arms the pipeline with a deterministic transient-fault plan.
// Attach before feeding events; pass a fresh plan per run.
func (p *Pipeline) AttachFaults(plan *faultinject.Plan) { p.faults = plan }

// Finish drains the pipeline and returns the final statistics.
func (p *Pipeline) Finish() Stats {
	p.done = true
	for p.pendHead < len(p.pending) || p.head < p.tail {
		p.step()
	}
	if p.rec != nil {
		p.rec.flush(p)
	}
	p.stats.Cycles = p.cycle
	p.stats.BpredLookups = p.bpred.Lookups
	p.stats.BpredMispredicts = p.bpred.Mispredicts
	p.stats.ICacheMissRate = p.icache.MissRate()
	p.stats.DCacheMissRate = p.dcache.MissRate()
	return p.stats
}

// idx converts an absolute ROB index into a column index.
func (p *Pipeline) idx(abs int64) int { return int(abs - p.robBase) }

// step advances the machine by one cycle: commit, issue, dispatch, fetch.
// Stall classification runs between issue and dispatch so it sees exactly
// the machine state the issue stage saw; occupancy is sampled at the end
// of the cycle.
func (p *Pipeline) step() {
	p.cycle++
	p.commit()
	issued := p.issue()
	p.accountIssue(issued)
	p.dispatchStage()
	p.fetch()
	p.sampleOccupancy()
	if p.rec != nil && p.cycle >= p.rec.nextBoundary {
		p.rec.roll(p)
	}
}

func (p *Pipeline) commit() {
	for n := 0; n < p.cfg.RetireWidth && p.head < p.tail; n++ {
		i := p.idx(p.head)
		fl := p.rob.flags[i]
		if fl&fIssued == 0 || p.rob.doneAt[i] > p.cycle {
			return
		}
		if dst := p.rob.dst[i]; dst >= 0 {
			if dst < 32 {
				p.intDefs--
			} else {
				p.fpDefs--
			}
		}
		p.inFlight--
		p.stats.Instructions++
		if p.journal != nil {
			p.journal.record(JournalEntry{
				Seq:      p.stats.Instructions,
				PC:       int(p.rob.pc[i]),
				Op:       p.rob.op[i],
				Sub:      p.rob.sub[i],
				FetchAt:  p.rob.fetchAt[i],
				IssueAt:  p.rob.issueAt[i],
				DoneAt:   p.rob.doneAt[i],
				CommitAt: p.cycle,
				Misp:     fl&fMisp != 0,
			})
		}
		if p.profile != nil {
			p.profile.retire(int(p.rob.pc[i]))
		}
		p.head++
	}
	// Trim the committed prefix when it grows large, keeping entries that
	// may still be referenced as dependencies (committed entries are done
	// by definition, so references to indices below robBase are ready).
	if p.head-p.robBase > 8192 {
		p.rob.drop(int(p.head - p.robBase))
		p.robBase = p.head
	}
}

// depReady reports whether producer d (an absolute ROB index or -1) has
// finished executing.
func (p *Pipeline) depReady(d int64) bool {
	if d < p.robBase { // -1, or committed long ago
		return true
	}
	j := p.idx(d)
	return p.rob.flags[j]&fIssued != 0 && p.rob.doneAt[j] <= p.cycle
}

func (p *Pipeline) issue() int {
	total := 0
	intALU := 0
	fpALU := 0
	ports := 0
	intIssued, fpaIssued := 0, 0
	flushAt := int64(-1) // faulted entry that triggers a pipeline flush
	p.issuedOldestPC = UnknownPC

	// Oldest-first scan over the issue windows.
	for abs := p.head; abs < p.tail && total < p.cfg.IssueWidth; abs++ {
		i := p.idx(abs)
		fl := p.rob.flags[i]
		if fl&(fDispatched|fIssued) != fDispatched || p.rob.dispatchAt[i] >= p.cycle {
			continue
		}
		if !p.depReady(p.rob.dep0[i]) || !p.depReady(p.rob.dep1[i]) {
			continue
		}
		sub := p.rob.sub[i]
		isMem := fl&fIsMem != 0
		// Structural hazards.
		if isMem {
			if ports >= p.cfg.LdStPorts {
				continue
			}
		} else if sub == isa.SubINT {
			if intALU >= p.cfg.IntALUs {
				continue
			}
		} else {
			if fpALU >= p.cfg.FpALUs {
				continue
			}
		}
		if fl&fIsLoad != 0 {
			// Loads execute only once all prior store addresses are known
			// (Table 1); an unissued older store blocks this load. The scan
			// is oldest-first, so any older store either issued already or
			// appears before this load; track via a lookback.
			blocked := false
			for s := p.head; s < abs; s++ {
				if p.rob.flags[p.idx(s)]&(fIsStore|fIssued) == fIsStore {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
		}

		// Issue.
		lat := int64(isa.Latency(p.rob.op[i]))
		if sub == isa.SubFPa && !isMem {
			lat += int64(p.cfg.FPaExtraLatency)
		}
		if fl&fIsLoad != 0 {
			// Store-to-load forwarding on a word-address match.
			forwarded := false
			for s := p.head; s < abs; s++ {
				sj := p.idx(s)
				if p.rob.flags[sj]&fIsStore != 0 && p.rob.memAddr[sj] == p.rob.memAddr[i] {
					forwarded = true
				}
			}
			if forwarded {
				lat = int64(p.cfg.DCacheHit)
			} else if p.dcache.Access(p.rob.memAddr[i], false) {
				lat = int64(p.cfg.DCacheHit)
			} else {
				lat = int64(p.cfg.DCacheHit + p.cfg.DCacheMissPenalty)
				p.rob.flags[i] |= fDmiss
			}
			p.stats.Loads++
		} else if fl&fIsStore != 0 {
			p.dcache.Access(p.rob.memAddr[i], true)
			lat = 1
			p.stats.Stores++
		}
		// Transient-fault injection: the plan decides, purely from the
		// dynamic instruction index, whether this instance faults. Parity
		// on the result bus detects the fault; the recovery cost lands on
		// this instruction's latency, and flush-class faults additionally
		// squash all younger in-flight work (handled after issue below).
		if p.faults != nil {
			if kind := p.faults.Decide(p.rob.seq[i], p.rob.op[i], p.rob.dst[i] >= 0); kind != faultinject.KindNone {
				rec := p.faults.Recovery(kind, lat)
				p.rob.faultKind[i] = kind
				p.faults.Record(faultinject.Fault{
					Seq: p.rob.seq[i], PC: int(p.rob.pc[i]), Op: p.rob.op[i], Kind: kind,
					Cycle: p.cycle, Recovery: rec,
				})
				p.stats.FaultsInjected++
				p.stats.FaultRecoveryCycles += rec
				lat += rec
				if kind.Flushes() {
					flushAt = abs
				}
			}
		}
		p.rob.flags[i] |= fIssued
		p.rob.issueAt[i] = p.cycle
		p.rob.doneAt[i] = p.cycle + lat
		if p.issuedOldestPC == UnknownPC {
			// Oldest-first scan: the first issue of the cycle is the one
			// retirement is waiting on; active cycles are charged to it.
			p.issuedOldestPC = int(p.rob.pc[i])
			p.issuedOldestSub = sub
		}
		// Leaving the issue window frees the entry.
		if sub == isa.SubINT || isMem {
			p.intWinCount--
		} else {
			p.fpWinCount--
		}
		total++
		if isMem {
			ports++
		} else if sub == isa.SubINT {
			intALU++
		} else {
			fpALU++
		}
		switch sub {
		case isa.SubINT:
			p.stats.IssuedINT++
			intIssued++
		case isa.SubFP:
			p.stats.IssuedFP++
		case isa.SubFPa:
			p.stats.IssuedFPa++
			fpaIssued++
		}
		// Parity flush: squash everything younger than the faulted
		// instruction and stop issuing — the scan's view of the window is
		// stale once the tail moves.
		if flushAt >= 0 {
			p.squashYounger(flushAt)
			p.recoverBlockedOn = flushAt
			break
		}
	}
	if intIssued == 0 && fpaIssued > 0 {
		p.stats.IntIdleFPaBusy++
	}
	return total
}

// squashYounger implements the fault-recovery pipeline flush: every
// instruction younger than the faulted one at abs is discarded and will be
// refetched from the pending buffer once the front end unblocks. Rename and
// occupancy state are rebuilt from the surviving entries.
func (p *Pipeline) squashYounger(abs int64) {
	squash := p.tail - (abs + 1)
	if squash <= 0 {
		return
	}
	// The squashed entries consumed the most recent `squash` pending
	// events; compaction keeps at least tail−head consumed events around,
	// so rolling pendHead back re-exposes exactly those events.
	p.pendHead -= int(squash)
	p.rob.truncate(p.idx(abs + 1))
	p.tail = abs + 1
	if p.dispatch > p.tail {
		p.dispatch = p.tail
	}
	if p.fetchBlockedOn >= p.tail {
		p.fetchBlockedOn = -1
	}
	p.lastFetchLine = -1 // refetch probes the I-cache afresh
	// Rebuild the rename table from surviving dispatched producers.
	// Mappings to committed producers are dropped, which is equivalent: a
	// committed value is ready either way.
	for r := range p.rename {
		p.rename[r] = -1
	}
	for a := p.head; a < p.dispatch; a++ {
		i := p.idx(a)
		if p.rob.flags[i]&fDispatched != 0 && p.rob.dst[i] >= 0 {
			p.rename[p.rob.dst[i]] = a
		}
	}
	// Rebuild occupancy counters from the surviving window contents.
	p.intWinCount, p.fpWinCount, p.inFlight = 0, 0, 0
	p.intDefs, p.fpDefs = 0, 0
	for a := p.head; a < p.tail; a++ {
		i := p.idx(a)
		fl := p.rob.flags[i]
		if fl&fDispatched == 0 {
			continue
		}
		p.inFlight++
		if dst := p.rob.dst[i]; dst >= 0 {
			if dst < 32 {
				p.intDefs++
			} else {
				p.fpDefs++
			}
		}
		if fl&fIssued == 0 {
			if p.rob.sub[i] == isa.SubINT || fl&fIsMem != 0 {
				p.intWinCount++
			} else {
				p.fpWinCount++
			}
		}
	}
}

func (p *Pipeline) dispatchStage() {
	for n := 0; n < p.cfg.DecodeWidth && p.dispatch < p.tail; n++ {
		i := p.idx(p.dispatch)
		// One-cycle front-end latency after fetch.
		if p.rob.dispatchAt[i] > p.cycle {
			return
		}
		if p.inFlight >= p.cfg.MaxInFlight {
			return
		}
		fl := p.rob.flags[i]
		// Window space.
		intSide := p.rob.sub[i] == isa.SubINT || fl&fIsMem != 0
		if intSide && p.intWinCount >= p.cfg.IntWindow {
			return
		}
		if !intSide && p.fpWinCount >= p.cfg.FpWindow {
			return
		}
		// Physical registers for renamed destinations.
		dst := p.rob.dst[i]
		if dst >= 0 {
			if dst < 32 {
				if p.intDefs >= p.cfg.IntPhysRegs-32 {
					return
				}
			} else if p.fpDefs >= p.cfg.FpPhysRegs-32 {
				return
			}
		}
		// Rename: capture producers, claim destination.
		if s := p.rob.src1[i]; s >= 0 {
			p.rob.dep0[i] = p.rename[s]
		} else {
			p.rob.dep0[i] = -1
		}
		if s := p.rob.src2[i]; s >= 0 {
			p.rob.dep1[i] = p.rename[s]
		} else {
			p.rob.dep1[i] = -1
		}
		if dst >= 0 {
			p.rename[dst] = p.dispatch
			if dst < 32 {
				p.intDefs++
			} else {
				p.fpDefs++
			}
		}
		p.rob.flags[i] = fl | fDispatched
		if intSide {
			p.intWinCount++
		} else {
			p.fpWinCount++
		}
		p.inFlight++
		p.dispatch++
	}
}

func (p *Pipeline) fetch() {
	// Blocked refilling the front end after a fault-recovery flush?
	if p.recoverBlockedOn >= 0 {
		if p.recoverBlockedOn >= p.robBase { // otherwise committed: recovered
			if p.rob.doneAt[p.idx(p.recoverBlockedOn)] > p.cycle {
				p.stats.FetchFaultStalls++
				return
			}
		}
		p.recoverBlockedOn = -1
	}
	// Blocked on an unresolved mispredicted branch?
	if p.fetchBlockedOn >= 0 {
		if p.fetchBlockedOn >= p.robBase { // otherwise committed: resolved
			i := p.idx(p.fetchBlockedOn)
			if p.rob.flags[i]&fIssued == 0 || p.rob.doneAt[i] > p.cycle {
				p.stats.FetchMispredictStalls++
				return
			}
		}
		p.fetchBlockedOn = -1
	}
	if p.icacheStallUntil > p.cycle {
		p.stats.FetchICacheStalls++
		return
	}
	// The fetch buffer holds at most two fetch groups awaiting dispatch.
	fetchBuf := int64(2 * p.cfg.FetchWidth)
	for n := 0; n < p.cfg.FetchWidth && p.pendHead < len(p.pending); n++ {
		if p.tail-p.dispatch >= fetchBuf {
			return
		}
		ev := &p.pending[p.pendHead]
		// Instruction cache: one probe per new line touched (instructions
		// are modeled as 8 bytes).
		line := (int64(ev.PC) * 8) / int64(p.cfg.ICacheLine)
		if line != p.lastFetchLine {
			p.lastFetchLine = line
			if !p.icache.Access(int64(ev.PC)*8, false) {
				p.icacheStallUntil = p.cycle + int64(p.cfg.ICacheMissPenalty)
				return // line arrives after the penalty; retry then
			}
		}
		seq := p.pendBase + int64(p.pendHead)
		p.pendHead++

		abs := p.tail
		var fl uint8
		if isa.IsMem(ev.Op) {
			fl |= fIsMem
		}
		if isa.IsLoad(ev.Op) {
			fl |= fIsLoad
		}
		if isa.IsStore(ev.Op) {
			fl |= fIsStore
		}
		isBr := isa.IsCondBranch(ev.Op)
		if isBr {
			fl |= fIsBr
		}
		p.rob.push(fl, isa.ExecSubsystem(ev.Op), ev, seq, p.cycle, p.cycle+1)
		p.tail++

		if isBr {
			correct := p.bpred.PredictAndUpdate(ev.PC, ev.Taken)
			if !correct {
				p.rob.flags[p.idx(abs)] |= fMisp
				p.fetchBlockedOn = abs
				return
			}
		}
	}
}
