package uarch_test

import (
	"encoding/json"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/obs"
	"fpint/internal/sim"
	"fpint/internal/uarch"
)

// timeWithJournal compiles src, attaches a journal, and runs the timing
// model, returning both the stats and the journal.
func timeWithJournal(t *testing.T, src string, scheme codegen.Scheme, cfg uarch.Config, limit int) (uarch.Stats, *uarch.Journal) {
	t.Helper()
	res, _, err := codegen.CompileSource(src, codegen.Options{Scheme: scheme})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p := uarch.NewPipeline(cfg)
	j := p.AttachJournal(limit)
	m := simNew(res)
	m.Trace = p.Feed
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p.Finish(), j
}

// Every non-issuing cycle must be attributed to exactly one stall cause:
// IssueActiveCycles + Σ StallBySub == Cycles, on every scheme and machine.
func TestStallAccountingComplete(t *testing.T) {
	for _, scheme := range []codegen.Scheme{codegen.SchemeNone, codegen.SchemeAdvanced} {
		for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
			_, st := compileAndTime(t, loopSrc, scheme, cfg)
			if err := st.StallAccountingError(); err != 0 {
				t.Errorf("%v/%s: accounting error %d (cycles=%d active=%d stalls=%d)",
					scheme, cfg.Name, err, st.Cycles, st.IssueActiveCycles, st.TotalStallCycles())
			}
			if st.IssueActiveCycles <= 0 {
				t.Errorf("%v/%s: no issue-active cycles recorded", scheme, cfg.Name)
			}
		}
	}
}

// Occupancy histograms sample exactly one bucket per cycle, and the issue
// slot distribution covers every cycle too.
func TestOccupancyHistogramsCoverEveryCycle(t *testing.T) {
	_, st := compileAndTime(t, loopSrc, codegen.SchemeAdvanced, uarch.Config4Way())
	sum := func(xs []int64) int64 {
		var s int64
		for _, x := range xs {
			s += x
		}
		return s
	}
	for name, occ := range map[string][]int64{
		"IntWinOcc": st.IntWinOcc, "FpWinOcc": st.FpWinOcc,
		"ROBOcc": st.ROBOcc, "IssueSlotCycles": st.IssueSlotCycles,
	} {
		if got := sum(occ); got != st.Cycles {
			t.Errorf("%s samples %d cycles, want %d", name, got, st.Cycles)
		}
	}
}

// Stats.AddTo must export a registry whose per-subsystem stall counters sum
// (with issue-active cycles) back to the cycle count — the same invariant
// `fpisim -json -` exposes to external consumers.
func TestStatsAddToRegistryInvariant(t *testing.T) {
	_, st := compileAndTime(t, loopSrc, codegen.SchemeAdvanced, uarch.Config4Way())
	r := obs.NewRegistry()
	st.AddTo(r, obs.PrefixUarch)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("registry JSON invalid: %v", err)
	}
	var stalls int64
	for k, v := range doc.Counters {
		if strings.HasPrefix(k, obs.PrefixUarch+"stall.") {
			stalls += v
		}
	}
	cycles := doc.Counters[obs.PrefixUarch+obs.MetricCycles]
	active := doc.Counters[obs.PrefixUarch+obs.MetricIssueActiveCycles]
	if cycles == 0 || active+stalls != cycles {
		t.Errorf("exported invariant broken: active %d + stalls %d != cycles %d", active, stalls, cycles)
	}
}

// The journal must record the true fetch cycle, not an approximation:
// fetch strictly precedes dispatch-completion ordering up the pipeline.
func TestJournalFetchAtIsTrueFetchCycle(t *testing.T) {
	_, j := timeWithJournal(t, loopSrc, codegen.SchemeAdvanced, uarch.Config4Way(), 400)
	if len(j.Entries) == 0 {
		t.Fatal("empty journal")
	}
	for i, e := range j.Entries {
		if e.FetchAt <= 0 {
			t.Fatalf("entry %d: FetchAt=%d not recorded", i, e.FetchAt)
		}
		if !(e.FetchAt <= e.IssueAt && e.IssueAt <= e.DoneAt && e.DoneAt <= e.CommitAt) {
			t.Fatalf("entry %d out of order: F=%d I=%d D=%d C=%d",
				i, e.FetchAt, e.IssueAt, e.DoneAt, e.CommitAt)
		}
	}
	// With a finite fetch width, not every instruction can be fetched on
	// cycle 1 — true fetch cycles must spread out (the old dispatchAt-1
	// approximation also spread, but collapsed fetch-group structure: a
	// whole fetch group shares one FetchAt now).
	groups := make(map[int64]int)
	for _, e := range j.Entries {
		groups[e.FetchAt]++
	}
	if len(groups) < 2 {
		t.Error("all journal entries share one fetch cycle")
	}
	for at, n := range groups {
		if n > uarch.Config4Way().FetchWidth {
			t.Errorf("cycle %d fetched %d instructions, exceeds fetch width", at, n)
		}
	}
}

// The exported pipeline trace must be valid trace-event JSON with one
// frontend/exec/commit span triple per journal entry.
func TestJournalWriteTraceValidJSON(t *testing.T) {
	_, j := timeWithJournal(t, loopSrc, codegen.SchemeAdvanced, uarch.Config4Way(), 200)
	var sb strings.Builder
	if err := j.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := map[string]int{}
	meta := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans[e.Cat]++
		case "M":
			meta++
		}
	}
	n := len(j.Entries)
	for _, cat := range []string{"frontend", "exec", "commit"} {
		if spans[cat] != n {
			t.Errorf("%d %q spans for %d journal entries", spans[cat], cat, n)
		}
	}
	if meta == 0 {
		t.Error("no thread_name metadata events")
	}
}

func TestJournalStringEmpty(t *testing.T) {
	j := &uarch.Journal{}
	s := j.String()
	if s == "" {
		t.Fatal("empty journal should still render a header")
	}
	if strings.Count(s, "\n") != 1 {
		t.Errorf("empty journal should render exactly the header line:\n%q", s)
	}
}

func TestStallCauseNames(t *testing.T) {
	seen := map[string]bool{}
	for c := uarch.StallCause(0); int(c) < uarch.NumStallCauses; c++ {
		name := c.String()
		if name == "" {
			t.Fatalf("cause %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate cause name %q", name)
		}
		seen[name] = true
	}
}

func TestOffloadFractionZeroSafe(t *testing.T) {
	var st sim.Stats
	if f := st.OffloadFraction(); f != 0 {
		t.Errorf("OffloadFraction on zero stats = %v, want 0", f)
	}
}
