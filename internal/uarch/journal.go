package uarch

import (
	"fmt"
	"io"
	"strings"

	"fpint/internal/isa"
	"fpint/internal/obs"
)

// JournalEntry records the pipeline timing of one dynamic instruction —
// the equivalent of SimpleScalar's ptrace facility, used to inspect how
// the machine schedules the partitioned code.
type JournalEntry struct {
	Seq      int64 // dynamic instruction number
	PC       int
	Op       isa.Opcode
	Sub      isa.Subsystem
	FetchAt  int64
	IssueAt  int64
	DoneAt   int64
	CommitAt int64
	Misp     bool // mispredicted conditional branch
}

// Journal collects the first N committed instructions' timings when
// attached to a pipeline with AttachJournal.
type Journal struct {
	Limit   int
	Entries []JournalEntry
}

// AttachJournal starts recording the first limit committed instructions.
// The entry buffer is preallocated to the limit, so recording itself does
// not allocate.
func (p *Pipeline) AttachJournal(limit int) *Journal {
	p.journal = &Journal{Limit: limit, Entries: make([]JournalEntry, 0, limit)}
	return p.journal
}

// record is called at commit time.
func (j *Journal) record(e JournalEntry) {
	if len(j.Entries) >= j.Limit {
		return
	}
	j.Entries = append(j.Entries, e)
}

// TraceEvents converts the journal into Chrome trace events: one track
// (thread) per subsystem, with a fetch→issue "frontend" span, an
// issue→done "exec" span, and a done→commit "commit" span per instruction,
// plus an instant marker on every mispredicted branch. Timestamps are
// cycles (rendered as microseconds by the viewer).
func (j *Journal) TraceEvents() []obs.TraceEvent {
	const pid = 1
	var events []obs.TraceEvent
	used := [3]bool{}
	for _, e := range j.Entries {
		used[e.Sub] = true
	}
	for sub := 0; sub < 3; sub++ {
		if used[sub] {
			events = append(events, obs.ThreadName(pid, sub+1, isa.Subsystem(sub).String()))
		}
	}
	for _, e := range j.Entries {
		tid := int(e.Sub) + 1
		name := e.Op.String()
		span := func(cat string, from, to int64) {
			ev := obs.Span(name, cat, from, to-from, pid, tid)
			ev.Args = map[string]string{
				"seq": fmt.Sprint(e.Seq),
				"pc":  fmt.Sprint(e.PC),
			}
			events = append(events, ev)
		}
		span("frontend", e.FetchAt, e.IssueAt)
		span("exec", e.IssueAt, e.DoneAt)
		span("commit", e.DoneAt, e.CommitAt)
		if e.Misp {
			events = append(events, obs.Instant("mispredict", e.DoneAt, pid, tid))
		}
	}
	return events
}

// WriteTrace writes the journal as a Perfetto/chrome://tracing-loadable
// trace-event JSON document.
func (j *Journal) WriteTrace(w io.Writer) error {
	return obs.WriteTrace(w, j.TraceEvents())
}

// String renders the journal as a pipetrace table.
func (j *Journal) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %6s %-8s %-4s %8s %8s %8s %8s\n",
		"seq", "pc", "op", "sub", "fetch", "issue", "done", "commit")
	for _, e := range j.Entries {
		flag := ""
		if e.Misp {
			flag = "  <- mispredicted"
		}
		fmt.Fprintf(&sb, "%6d %6d %-8s %-4s %8d %8d %8d %8d%s\n",
			e.Seq, e.PC, e.Op, e.Sub, e.FetchAt, e.IssueAt, e.DoneAt, e.CommitAt, flag)
	}
	return sb.String()
}
