package uarch

import (
	"fmt"
	"strings"

	"fpint/internal/isa"
)

// JournalEntry records the pipeline timing of one dynamic instruction —
// the equivalent of SimpleScalar's ptrace facility, used to inspect how
// the machine schedules the partitioned code.
type JournalEntry struct {
	Seq      int64 // dynamic instruction number
	PC       int
	Op       isa.Opcode
	Sub      isa.Subsystem
	FetchAt  int64
	IssueAt  int64
	DoneAt   int64
	CommitAt int64
	Misp     bool // mispredicted conditional branch
}

// Journal collects the first N committed instructions' timings when
// attached to a pipeline with AttachJournal.
type Journal struct {
	Limit   int
	Entries []JournalEntry
}

// AttachJournal starts recording the first limit committed instructions.
func (p *Pipeline) AttachJournal(limit int) *Journal {
	p.journal = &Journal{Limit: limit}
	return p.journal
}

// record is called at commit time.
func (j *Journal) record(seq int64, e *robEntry, commitAt int64) {
	if j == nil || len(j.Entries) >= j.Limit {
		return
	}
	j.Entries = append(j.Entries, JournalEntry{
		Seq:      seq,
		PC:       e.ev.PC,
		Op:       e.ev.Op,
		Sub:      e.sub,
		FetchAt:  e.dispatchAt - 1,
		IssueAt:  e.issueAt,
		DoneAt:   e.doneAt,
		CommitAt: commitAt,
		Misp:     e.misp,
	})
}

// String renders the journal as a pipetrace table.
func (j *Journal) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %6s %-8s %-4s %8s %8s %8s %8s\n",
		"seq", "pc", "op", "sub", "fetch", "issue", "done", "commit")
	for _, e := range j.Entries {
		flag := ""
		if e.Misp {
			flag = "  <- mispredicted"
		}
		fmt.Fprintf(&sb, "%6d %6d %-8s %-4s %8d %8d %8d %8d%s\n",
			e.Seq, e.PC, e.Op, e.Sub, e.FetchAt, e.IssueAt, e.DoneAt, e.CommitAt, flag)
	}
	return sb.String()
}
