package uarch_test

import (
	"reflect"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/faultinject"
	"fpint/internal/obs/timeline"
	"fpint/internal/uarch"
)

// checkClosed cross-checks a recorded timeline against the run's
// independently accumulated stall ledger: window cycles sum to the run's
// cycles, window instructions to retired instructions, and the per-window
// stall mixes reproduce StallBySub cell by cell. This is the same
// invariant the root acceptance test enforces over every testdata
// program; here it guards the recorder's edge cases.
func checkClosed(t *testing.T, tl *timeline.Timeline, st uarch.Stats) {
	t.Helper()
	if tl == nil {
		t.Fatal("no timeline recorded")
	}
	if err := tl.Validate(); err != nil {
		t.Fatalf("timeline invalid: %v", err)
	}
	if tl.TotalCycles != st.Cycles {
		t.Errorf("timeline covers %d cycles, run took %d", tl.TotalCycles, st.Cycles)
	}
	if tl.TotalInstructions != st.Instructions {
		t.Errorf("timeline covers %d instructions, run retired %d", tl.TotalInstructions, st.Instructions)
	}
	nc := len(tl.StallCauses)
	for sub := 0; sub < len(tl.Subsystems); sub++ {
		for c := 0; c < nc; c++ {
			got := int64(0)
			for j := range tl.Windows {
				got += tl.Windows[j].Stalls[sub*nc+c]
			}
			if got != st.StallBySub[sub][c] {
				t.Fatalf("stall[%s][%s]: windows sum to %d, ledger says %d",
					tl.Subsystems[sub], tl.StallCauses[c], got, st.StallBySub[sub][c])
			}
		}
	}
	var active int64
	for i := range tl.Windows {
		active += tl.Windows[i].IssueActive
	}
	if active != st.IssueActiveCycles {
		t.Errorf("window issue-active sums to %d, ledger says %d", active, st.IssueActiveCycles)
	}
}

func compileTimelineProg(t *testing.T, src string) *codegen.Result {
	t.Helper()
	res, _, err := codegen.CompileSource(src, codegen.Options{Scheme: codegen.SchemeAdvanced, Analysis: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

// TestTimelineShortProgram: a program whose whole run fits inside one
// window yields exactly one (partial) window that still closes.
func TestTimelineShortProgram(t *testing.T) {
	res := compileTimelineProg(t, `int main() { return 41 + 1; }`)
	m := uarch.NewMachine(uarch.Config4Way())
	m.SetTimelineWidth(1 << 20)
	_, st, err := m.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	tl := m.Timeline("short")
	checkClosed(t, tl, st)
	if len(tl.Windows) != 1 {
		t.Fatalf("got %d windows, want 1 partial window", len(tl.Windows))
	}
	if tl.Windows[0].Cycles != st.Cycles {
		t.Errorf("single window covers %d cycles, run took %d", tl.Windows[0].Cycles, st.Cycles)
	}
}

// TestTimelineWidthOne: the degenerate one-cycle window width records one
// window per cycle and still closes.
func TestTimelineWidthOne(t *testing.T) {
	res := compileTimelineProg(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 40; i++) s += i * i;
	return s;
}`)
	m := uarch.NewMachine(uarch.Config4Way())
	m.SetTimelineWidth(1)
	_, st, err := m.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	tl := m.Timeline("width1")
	checkClosed(t, tl, st)
	if int64(len(tl.Windows)) != st.Cycles {
		t.Errorf("width-1 recording has %d windows for %d cycles", len(tl.Windows), st.Cycles)
	}
	for i := range tl.Windows {
		if tl.Windows[i].Cycles != 1 {
			t.Fatalf("window %d covers %d cycles, want 1", i, tl.Windows[i].Cycles)
		}
	}
}

// TestTimelineFaultMidWindow: fault-triggered flush/replay landing inside
// windows must not break closure, and the recovery cycles must show up in
// the windows' fault-recovery stall mix along with the injected-fault
// marks.
func TestTimelineFaultMidWindow(t *testing.T) {
	res := compileTimelineProg(t, `
int a[256];
int main() {
	int s = 0;
	for (int rep = 0; rep < 12; rep++) {
		for (int i = 0; i < 256; i++) a[i] = (a[i] ^ (i + rep)) * 3;
		for (int i = 0; i < 256; i++) s += a[i] & 7;
	}
	return s & 1048575;
}`)
	plan := faultinject.NewPlan(faultinject.Config{Seed: 7, Kind: faultinject.KindAny, Rate: 0.002})
	m := uarch.NewMachine(uarch.Config4Way())
	m.SetTimelineWidth(200)
	_, st, _, err := m.RunInjected(res.Prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("no faults injected; raise the rate so recovery lands mid-window")
	}
	tl := m.Timeline("faulty")
	checkClosed(t, tl, st)
	var faults int64
	for i := range tl.Windows {
		faults += tl.Windows[i].Faults
	}
	if faults != st.FaultsInjected {
		t.Errorf("windows record %d faults, run injected %d", faults, st.FaultsInjected)
	}
}

// TestTimelineFastMode: in sampled-timing mode the recorder covers the
// detailed (warmup+measured) cycles contiguously; the timeline still
// closes against the detailed counters even though the run's headline
// stats are extrapolated.
func TestTimelineFastMode(t *testing.T) {
	res := compileTimelineProg(t, `
int a[512];
int main() {
	int s = 0;
	for (int rep = 0; rep < 30; rep++) {
		for (int i = 0; i < 512; i++) a[i] = i ^ rep;
		for (int i = 0; i < 512; i++) if (a[i] & 1) s += a[i];
	}
	return s & 1048575;
}`)
	m := uarch.NewMachine(uarch.Config4Way())
	m.SetTimelineWidth(256)
	_, ss, err := m.RunSampled(res.Prog, uarch.DefaultSampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ss.Exact {
		t.Fatal("program too short to sample; fast-mode timeline not exercised")
	}
	tl := m.Timeline("fast")
	if tl == nil {
		t.Fatal("no timeline recorded in fast mode")
	}
	tl.Estimated = true
	tl.SampledFraction = ss.SampledFraction
	if err := tl.Validate(); err != nil {
		t.Fatalf("fast-mode timeline invalid: %v", err)
	}
	if tl.TotalCycles >= ss.Cycles {
		t.Errorf("detailed windows cover %d cycles, not fewer than the %d-cycle estimate", tl.TotalCycles, ss.Cycles)
	}
	if tl.TotalCycles < ss.MeasuredCycles {
		t.Errorf("timeline covers %d cycles but %d were measured (warmup missing?)", tl.TotalCycles, ss.MeasuredCycles)
	}
	if len(tl.Windows) == 0 {
		t.Fatal("fast-mode run recorded no windows")
	}
}

// TestTimelineWarmReuse: re-running a warm machine with the recorder
// armed reproduces the identical timeline (reset leaks no window state).
func TestTimelineWarmReuse(t *testing.T) {
	res := compileTimelineProg(t, `
int main() {
	int s = 1;
	for (int i = 1; i < 300; i++) s = (s * 31 + i) % 65537;
	return s;
}`)
	m := uarch.NewMachine(uarch.Config8Way())
	m.SetTimelineWidth(128)
	_, st1, err := m.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Timeline("reuse")
	checkClosed(t, first, st1)
	_, st2, err := m.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	second := m.Timeline("reuse")
	checkClosed(t, second, st2)
	if len(first.Windows) != len(second.Windows) {
		t.Fatalf("warm rerun changed window count: %d vs %d", len(first.Windows), len(second.Windows))
	}
	for i := range first.Windows {
		if !reflect.DeepEqual(first.Windows[i], second.Windows[i]) {
			t.Fatalf("window %d differs across identical runs:\n%+v\n%+v", i, first.Windows[i], second.Windows[i])
		}
	}
}
