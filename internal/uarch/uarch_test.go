package uarch_test

import (
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

func compileAndTime(t *testing.T, src string, scheme codegen.Scheme, cfg uarch.Config) (int64, uarch.Stats) {
	t.Helper()
	res, _, err := codegen.CompileSource(src, codegen.Options{Scheme: scheme})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, st, err := uarch.Run(res.Prog, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.Ret, st
}

const loopSrc = `
int a[512];
int main() {
	int s = 0;
	for (int rep = 0; rep < 30; rep++) {
		for (int i = 0; i < 512; i++) a[i] = i ^ rep;
		for (int i = 0; i < 512; i++) if (a[i] & 1) s += a[i];
	}
	return s & 1048575;
}`

func TestTimingBasicSanity(t *testing.T) {
	ret, st := compileAndTime(t, loopSrc, codegen.SchemeNone, uarch.Config4Way())
	if st.Cycles <= 0 || st.Instructions <= 0 {
		t.Fatalf("no progress: %+v", st)
	}
	ipc := st.IPC()
	if ipc <= 0.1 || ipc > 4.0 {
		t.Errorf("IPC %.2f out of plausible range for a 4-way machine", ipc)
	}
	if st.IssuedFPa != 0 {
		t.Errorf("conventional binary issued %d FPa ops", st.IssuedFPa)
	}
	_ = ret
}

func TestTimingDeterminism(t *testing.T) {
	_, st1 := compileAndTime(t, loopSrc, codegen.SchemeAdvanced, uarch.Config4Way())
	_, st2 := compileAndTime(t, loopSrc, codegen.SchemeAdvanced, uarch.Config4Way())
	if st1.Cycles != st2.Cycles || st1.Instructions != st2.Instructions {
		t.Fatalf("nondeterministic timing: %v vs %v", st1.Cycles, st2.Cycles)
	}
}

func TestAugmentedUsesFPa(t *testing.T) {
	_, st := compileAndTime(t, loopSrc, codegen.SchemeAdvanced, uarch.Config4Way())
	if st.IssuedFPa == 0 {
		t.Errorf("advanced binary issued no FPa ops")
	}
}

func TestPartitionedSpeedsUpComputeBoundLoop(t *testing.T) {
	// A branch/store-value heavy loop with abundant ILP blocked mainly by
	// the 2-wide INT issue: the augmented machine should win.
	src := `
int a[256];
int b[256];
int main() {
	int s = 0;
	for (int rep = 0; rep < 50; rep++) {
		for (int i = 0; i < 256; i++) {
			int x = a[i];
			int y = (x ^ 21) + (x >> 3) + (x << 1) + rep;
			int z = (y & 255) + (y >> 7) + ((x + y) ^ (x - y));
			if (z & 1) s += z; else s ^= y;
			b[i] = z;
		}
	}
	return s & 1048575;
}`
	retB, stBase := compileAndTime(t, src, codegen.SchemeNone, uarch.Config4Way())
	retA, stAdv := compileAndTime(t, src, codegen.SchemeAdvanced, uarch.Config4Way())
	if retB != retA {
		t.Fatalf("functional mismatch: %d vs %d", retB, retA)
	}
	if stAdv.Cycles >= stBase.Cycles {
		t.Errorf("advanced (%d cycles) not faster than baseline (%d cycles)", stAdv.Cycles, stBase.Cycles)
	}
}

func Test8WayFasterThan4Way(t *testing.T) {
	_, st4 := compileAndTime(t, loopSrc, codegen.SchemeNone, uarch.Config4Way())
	_, st8 := compileAndTime(t, loopSrc, codegen.SchemeNone, uarch.Config8Way())
	if st8.Cycles > st4.Cycles {
		t.Errorf("8-way (%d cycles) slower than 4-way (%d)", st8.Cycles, st4.Cycles)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	src := `
int main() {
	int s = 0;
	for (int i = 0; i < 5000; i++) s += i & 3;
	return s;
}`
	_, st := compileAndTime(t, src, codegen.SchemeNone, uarch.Config4Way())
	if st.BpredLookups == 0 {
		t.Fatal("no branches predicted")
	}
	acc := 1 - float64(st.BpredMispredicts)/float64(st.BpredLookups)
	if acc < 0.95 {
		t.Errorf("gshare accuracy %.3f too low on a simple loop", acc)
	}
}

func TestDCacheCapturesLocality(t *testing.T) {
	src := `
int a[128];
int main() {
	int s = 0;
	for (int rep = 0; rep < 100; rep++)
		for (int i = 0; i < 128; i++)
			s += a[i];
	return s;
}`
	_, st := compileAndTime(t, src, codegen.SchemeNone, uarch.Config4Way())
	if st.DCacheMissRate > 0.05 {
		t.Errorf("D-cache miss rate %.3f too high for a resident array", st.DCacheMissRate)
	}
}
