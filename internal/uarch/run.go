package uarch

import (
	"fpint/internal/faultinject"
	"fpint/internal/isa"
	"fpint/internal/sim"
)

// Run executes prog functionally while driving the timing model, returning
// both the functional result and the timing statistics.
func Run(prog *isa.Program, cfg Config) (*sim.Result, Stats, error) {
	m := sim.New(prog)
	p := NewPipeline(cfg)
	m.Trace = p.Feed
	res, err := m.Run()
	if err != nil {
		return nil, Stats{}, err
	}
	st := p.Finish()
	return res, st, nil
}

// RunProfiled is Run with per-PC cycle attribution enabled; the returned
// profile is complete (Σ per-PC cycles == Stats.Cycles).
func RunProfiled(prog *isa.Program, cfg Config) (*sim.Result, Stats, *CycleProfile, error) {
	m := sim.New(prog)
	p := NewPipeline(cfg)
	prof := p.AttachProfile()
	m.Trace = p.Feed
	res, err := m.Run()
	if err != nil {
		return nil, Stats{}, nil, err
	}
	st := p.Finish()
	return res, st, prof, nil
}

// RunInjected is RunProfiled with a transient-fault plan armed on the
// timing model. The functional result is computed by the architectural
// simulator and is untouched by timing-model faults — the detection/
// recovery discipline guarantees architecturally correct output; injected
// faults cost only cycles, visible in the stats, profile, and the plan's
// trace.
func RunInjected(prog *isa.Program, cfg Config, plan *faultinject.Plan) (*sim.Result, Stats, *CycleProfile, error) {
	m := sim.New(prog)
	p := NewPipeline(cfg)
	prof := p.AttachProfile()
	p.AttachFaults(plan)
	m.Trace = p.Feed
	res, err := m.Run()
	if err != nil {
		return nil, Stats{}, nil, err
	}
	st := p.Finish()
	return res, st, prof, nil
}
