package uarch

import (
	"fpint/internal/faultinject"
	"fpint/internal/isa"
	"fpint/internal/sim"
)

// Machine couples a reusable functional simulator with a reusable timing
// pipeline for one machine configuration. Build one with NewMachine and
// call Run repeatedly: the memory arena, ROB columns, cache and predictor
// tables, statistics buffers, and trace plumbing are all allocated once,
// so a warm machine simulates without heap traffic — the property
// TestPipelineZeroSteadyStateAllocs pins.
//
// The returned sim.Result and the slices inside Stats are machine-owned
// and valid only until the machine's next Run; copy them to keep them.
// Results are cycle-identical to the fresh-machine Run helpers below.
type Machine struct {
	cfg  Config
	pipe *Pipeline
	fm   *sim.Machine

	// Flight recorder (see SetTimelineWidth): machine-owned and recycled
	// across runs so arming it keeps the zero-allocation property.
	rec     *TimelineRecorder
	tlWidth int64

	// stepLimit, when > 0, bounds every run's dynamic instruction count;
	// it is re-applied after each functional Reset (which restores the
	// simulator's own 4e9 default).
	stepLimit int64
}

// NewMachine builds a reusable functional+timing machine for cfg.
func NewMachine(cfg Config) *Machine {
	m := &Machine{cfg: cfg, pipe: NewPipeline(cfg), fm: sim.NewMachine()}
	m.fm.Trace = m.pipe.Feed
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetStepLimit bounds the dynamic instruction count of every subsequent
// run (0 restores the functional simulator's default). Exceeding the
// budget aborts the run with a trap.KindStepLimit trap — the same watchdog
// the standalone functional simulator uses, so a daemon can thread a
// per-job step budget into a warm machine without rebuilding it.
func (m *Machine) SetStepLimit(n int64) { m.stepLimit = n }

// SetRunHook installs a cooperative cancellation check on the underlying
// functional simulator: hook runs every `every` dynamic instructions
// during Run, RunProfiled, RunInjected, and RunSampled (all of which are
// driven by the functional step loop), and a non-nil return aborts the run
// with that error — conventionally a trap.KindCancelled trap. Arming a
// hook keeps the warm machine's zero-allocation steady state (pinned by
// TestPipelineZeroSteadyStateAllocs).
func (m *Machine) SetRunHook(hook func(steps int64) error, every int64) {
	m.fm.SetRunHook(hook, every)
}

// applyBudget re-applies the machine-level step budget after a functional
// Reset (the run hook survives Reset on its own).
func (m *Machine) applyBudget() {
	if m.stepLimit > 0 {
		m.fm.SetStepLimit(m.stepLimit)
	}
}

// Run executes prog functionally while driving the timing model, returning
// both the functional result and the timing statistics.
func (m *Machine) Run(prog *isa.Program) (*sim.Result, Stats, error) {
	m.pipe.Reset()
	m.armTimeline()
	m.fm.Reset(prog)
	m.applyBudget()
	res, err := m.fm.Run()
	if err != nil {
		return nil, Stats{}, err
	}
	return res, m.pipe.Finish(), nil
}

// RunProfiled is Run with per-PC cycle attribution enabled; the returned
// profile is complete (Σ per-PC cycles == Stats.Cycles). Profiled runs
// allocate in the profile itself, not in the pipeline loop.
func (m *Machine) RunProfiled(prog *isa.Program) (*sim.Result, Stats, *CycleProfile, error) {
	m.pipe.Reset()
	m.armTimeline()
	prof := m.pipe.AttachProfile()
	m.fm.Reset(prog)
	m.applyBudget()
	res, err := m.fm.Run()
	if err != nil {
		return nil, Stats{}, nil, err
	}
	return res, m.pipe.Finish(), prof, nil
}

// RunInjected is RunProfiled with a transient-fault plan armed on the
// timing model. The functional result is computed by the architectural
// simulator and is untouched by timing-model faults — the detection/
// recovery discipline guarantees architecturally correct output; injected
// faults cost only cycles, visible in the stats, profile, and the plan's
// trace.
func (m *Machine) RunInjected(prog *isa.Program, plan *faultinject.Plan) (*sim.Result, Stats, *CycleProfile, error) {
	m.pipe.Reset()
	m.armTimeline()
	prof := m.pipe.AttachProfile()
	m.pipe.AttachFaults(plan)
	m.fm.Reset(prog)
	m.applyBudget()
	res, err := m.fm.Run()
	if err != nil {
		return nil, Stats{}, nil, err
	}
	return res, m.pipe.Finish(), prof, nil
}

// Run executes prog functionally while driving the timing model on a fresh
// machine, returning both the functional result and the timing statistics.
func Run(prog *isa.Program, cfg Config) (*sim.Result, Stats, error) {
	return NewMachine(cfg).Run(prog)
}

// RunProfiled is Run with per-PC cycle attribution enabled; the returned
// profile is complete (Σ per-PC cycles == Stats.Cycles).
func RunProfiled(prog *isa.Program, cfg Config) (*sim.Result, Stats, *CycleProfile, error) {
	return NewMachine(cfg).RunProfiled(prog)
}

// RunInjected is RunProfiled with a transient-fault plan armed on the
// timing model; see Machine.RunInjected.
func RunInjected(prog *isa.Program, cfg Config, plan *faultinject.Plan) (*sim.Result, Stats, *CycleProfile, error) {
	return NewMachine(cfg).RunInjected(prog, plan)
}
