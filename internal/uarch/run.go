package uarch

import (
	"fpint/internal/isa"
	"fpint/internal/sim"
)

// Run executes prog functionally while driving the timing model, returning
// both the functional result and the timing statistics.
func Run(prog *isa.Program, cfg Config) (*sim.Result, Stats, error) {
	m := sim.New(prog)
	p := NewPipeline(cfg)
	m.Trace = p.Feed
	res, err := m.Run()
	if err != nil {
		return nil, Stats{}, err
	}
	st := p.Finish()
	return res, st, nil
}
