package uarch

import (
	"fmt"

	"fpint/internal/faultinject"
	"fpint/internal/isa"
	"fpint/internal/obs"
)

// StallCause classifies why a cycle issued no instructions. Every
// non-issuing cycle is attributed to exactly one cause (and one subsystem),
// so the per-cause cycle counts plus IssueActiveCycles sum to Cycles — the
// top-down accounting §7.2–§7.4 reason about in prose.
type StallCause uint8

// Stall causes, in classification priority order.
const (
	// StallRAWWait: the oldest issuable instruction waits on a register
	// value (an unfinished producer, or execution latency draining at the
	// commit head).
	StallRAWWait StallCause = iota
	// StallDCache: the blocking producer is a load that missed the D-cache.
	StallDCache
	// StallBpredRecovery: fetch is squashed behind an unresolved
	// mispredicted branch and the windows have run dry.
	StallBpredRecovery
	// StallICache: fetch is waiting on an instruction-cache miss.
	StallICache
	// StallROBFull: dispatch is blocked because MaxInFlight is reached.
	StallROBFull
	// StallIntWindowFull: dispatch is blocked on a full INT issue window.
	StallIntWindowFull
	// StallFpWindowFull: dispatch is blocked on a full FP issue window.
	StallFpWindowFull
	// StallPhysRegs: dispatch is blocked because no physical register of
	// the destination class is free.
	StallPhysRegs
	// StallFrontend: pipeline fill/drain and fetch/decode latency — no
	// instruction was available to issue for any other reason.
	StallFrontend
	// StallFaultRecovery: the machine is recovering from a detected
	// transient fault — refilling the front end after a parity-triggered
	// flush, replaying the faulted instruction, or waiting on a
	// fault-delayed writeback. Nonzero only under fault injection.
	StallFaultRecovery

	// NumStallCauses is the number of stall causes.
	NumStallCauses = int(StallFaultRecovery) + 1
)

var stallNames = [NumStallCauses]string{
	"raw-wait", "dcache", "bpred-recovery", "icache",
	"rob-full", "int-window-full", "fp-window-full", "phys-regs", "frontend",
	"fault-recovery",
}

// String names the stall cause.
func (c StallCause) String() string {
	if int(c) < len(stallNames) {
		return stallNames[c]
	}
	return fmt.Sprintf("cause-%d", int(c))
}

// accountIssue records the issue-slot utilization of the cycle and, when
// nothing issued, attributes the cycle to a stall cause.
func (p *Pipeline) accountIssue(issued int) {
	if issued >= len(p.stats.IssueSlotCycles) {
		issued = len(p.stats.IssueSlotCycles) - 1
	}
	p.stats.IssueSlotCycles[issued]++
	if issued > 0 {
		p.stats.IssueActiveCycles++
		if p.profile != nil {
			p.profile.chargeActive(p.issuedOldestPC, p.issuedOldestSub)
		}
		return
	}
	cause, sub, pc := p.classifyStall()
	p.stats.StallBySub[sub][cause]++
	if p.profile != nil {
		p.profile.chargeStall(pc, cause, sub)
	}
}

// classifyStall decides, for a cycle in which nothing issued, which single
// condition to blame and which subsystem it belongs to. It runs after the
// issue stage and before dispatch/fetch, so it inspects exactly the state
// the issue stage saw. Blame rules, checked in order:
//
//  1. A dispatched-but-unissued instruction existed → it waits on a
//     producer: D-cache miss if the producer is an outstanding missing
//     load, RAW wait otherwise. Charged to the waiting instruction's
//     subsystem.
//  2. Fetch is squashed behind a mispredicted branch → bpred recovery,
//     charged to the branch's subsystem.
//  3. Fetch is waiting on an I-cache miss → icache (charged to INT, whose
//     core owns the front end).
//  4. Dispatch is blocked → ROB full, INT/FP window full, or physical
//     registers exhausted, charged to the instruction stuck at dispatch.
//  5. The commit head has issued but not finished → execution latency:
//     D-cache miss if it is a missing load, RAW wait otherwise.
//  6. Anything else is front-end fill/drain latency.
//
// The third result is the PC of the blamed instruction, for per-PC cycle
// attribution: the stalled consumer (rule 1), the mispredicted branch
// (rule 2), the instruction whose fetch missed the I-cache (rule 3), the
// dispatch-stuck instruction (rule 4), or the draining commit head (rule
// 5). Fill/drain cycles (rule 6) have no responsible instruction and
// return UnknownPC.
func (p *Pipeline) classifyStall() (StallCause, isa.Subsystem, int) {
	// 0. Fault recovery: the front end is squashed behind a parity flush,
	// waiting for the faulted instruction to finish replaying. Charged to
	// the faulted instruction.
	if p.recoverBlockedOn >= 0 && p.recoverBlockedOn >= p.robBase {
		i := p.idx(p.recoverBlockedOn)
		if p.rob.flags[i]&fIssued != 0 && p.rob.doneAt[i] > p.cycle {
			return StallFaultRecovery, p.rob.sub[i], int(p.rob.pc[i])
		}
	}
	// 1. Oldest dispatched-but-unissued instruction the issue stage saw.
	for abs := p.head; abs < p.dispatch; abs++ {
		i := p.idx(abs)
		if fl := p.rob.flags[i]; fl&(fDispatched|fIssued) != fDispatched || p.rob.dispatchAt[i] >= p.cycle {
			continue
		}
		sub, pc := p.rob.sub[i], int(p.rob.pc[i])
		for _, d := range [2]int64{p.rob.dep0[i], p.rob.dep1[i]} {
			if d < p.robBase { // -1, or committed long ago
				continue
			}
			j := p.idx(d)
			dfl := p.rob.flags[j]
			if dfl&fIssued == 0 || p.rob.doneAt[j] > p.cycle {
				if dfl&fIssued != 0 && p.rob.faultKind[j] != faultinject.KindNone {
					// Producer is replaying a faulted result (or its
					// writeback was fault-delayed).
					return StallFaultRecovery, sub, pc
				}
				if dfl&(fIssued|fIsLoad|fDmiss) == fIssued|fIsLoad|fDmiss {
					return StallDCache, sub, pc
				}
				return StallRAWWait, sub, pc
			}
		}
		// Ready but not issued: with zero instructions issued this cycle
		// no structural resource was taken, so the only remaining blocker
		// is a load waiting for an older store's address — a memory RAW.
		return StallRAWWait, sub, pc
	}
	// 2. Misprediction recovery.
	if p.fetchBlockedOn >= 0 {
		sub := isa.SubINT
		pc := UnknownPC
		if p.fetchBlockedOn >= p.robBase {
			i := p.idx(p.fetchBlockedOn)
			sub = p.rob.sub[i]
			pc = int(p.rob.pc[i])
		}
		return StallBpredRecovery, sub, pc
	}
	// 3. I-cache miss in flight.
	if p.icacheStallUntil > p.cycle {
		pc := UnknownPC
		if p.pendHead < len(p.pending) {
			pc = p.pending[p.pendHead].PC // the fetch that missed
		}
		return StallICache, isa.SubINT, pc
	}
	// 4. Dispatch blocked on a structural limit.
	if p.dispatch < p.tail {
		i := p.idx(p.dispatch)
		if p.rob.dispatchAt[i] <= p.cycle {
			sub, pc := p.rob.sub[i], int(p.rob.pc[i])
			dst := p.rob.dst[i]
			intSide := sub == isa.SubINT || p.rob.flags[i]&fIsMem != 0
			switch {
			case p.inFlight >= p.cfg.MaxInFlight:
				return StallROBFull, sub, pc
			case intSide && p.intWinCount >= p.cfg.IntWindow:
				return StallIntWindowFull, sub, pc
			case !intSide && p.fpWinCount >= p.cfg.FpWindow:
				return StallFpWindowFull, sub, pc
			case dst >= 0 && dst < 32 && p.intDefs >= p.cfg.IntPhysRegs-32:
				return StallPhysRegs, sub, pc
			case dst >= 32 && p.fpDefs >= p.cfg.FpPhysRegs-32:
				return StallPhysRegs, sub, pc
			}
		}
	}
	// 5. Execution latency draining at the commit head.
	if p.head < p.tail {
		i := p.idx(p.head)
		fl := p.rob.flags[i]
		if fl&fIssued != 0 && p.rob.doneAt[i] > p.cycle {
			sub, pc := p.rob.sub[i], int(p.rob.pc[i])
			if p.rob.faultKind[i] != faultinject.KindNone {
				return StallFaultRecovery, sub, pc
			}
			if fl&(fIsLoad|fDmiss) == fIsLoad|fDmiss {
				return StallDCache, sub, pc
			}
			return StallRAWWait, sub, pc
		}
	}
	// 6. Pipeline fill/drain.
	return StallFrontend, isa.SubINT, UnknownPC
}

// sampleOccupancy records the end-of-cycle occupancy of the issue windows
// and the in-flight (ROB) count.
func (p *Pipeline) sampleOccupancy() {
	clamp := func(n, hi int) int {
		if n < 0 {
			return 0
		}
		if n > hi {
			return hi
		}
		return n
	}
	p.stats.IntWinOcc[clamp(p.intWinCount, len(p.stats.IntWinOcc)-1)]++
	p.stats.FpWinOcc[clamp(p.fpWinCount, len(p.stats.FpWinOcc)-1)]++
	p.stats.ROBOcc[clamp(p.inFlight, len(p.stats.ROBOcc)-1)]++
	p.occIntSum += int64(p.intWinCount)
	p.occFpSum += int64(p.fpWinCount)
	p.occROBSum += int64(p.inFlight)
}

// StallCauseCycles returns the total cycles attributed to cause across all
// subsystems.
func (s *Stats) StallCauseCycles(c StallCause) int64 {
	var n int64
	for sub := 0; sub < 3; sub++ {
		n += s.StallBySub[sub][c]
	}
	return n
}

// TotalStallCycles returns the cycles attributed to any stall cause.
func (s *Stats) TotalStallCycles() int64 {
	var n int64
	for c := 0; c < NumStallCauses; c++ {
		n += s.StallCauseCycles(StallCause(c))
	}
	return n
}

// StallAccountingError returns Cycles − (IssueActiveCycles + stalls); a
// correctly accounted run returns 0.
func (s *Stats) StallAccountingError() int64 {
	return s.Cycles - s.IssueActiveCycles - s.TotalStallCycles()
}

// AddTo exports the statistics into a metrics registry under the given
// prefix (e.g. "uarch."): plain counters for totals, per-subsystem
// per-cause stall counters, gauges for rates, and histograms for the
// occupancy and issue-utilization profiles.
func (s *Stats) AddTo(r *obs.Registry, prefix string) {
	c := func(name string, v int64) { r.Counter(prefix + name).Add(v) }
	g := func(name string, v float64) { r.Gauge(prefix + name).Set(v) }
	c(obs.MetricCycles, s.Cycles)
	c(obs.MetricInstructions, s.Instructions)
	c(obs.MetricLoads, s.Loads)
	c(obs.MetricStores, s.Stores)
	c("issued.INT", s.IssuedINT)
	c("issued.FP", s.IssuedFP)
	c("issued.FPa", s.IssuedFPa)
	c("int_idle_fpa_busy_cycles", s.IntIdleFPaBusy)
	c("fetch_mispredict_stalls", s.FetchMispredictStalls)
	c("fetch_icache_stalls", s.FetchICacheStalls)
	if s.FaultsInjected > 0 {
		c("faults.injected", s.FaultsInjected)
		c("faults.recovery_cycles", s.FaultRecoveryCycles)
		c("faults.fetch_stalls", s.FetchFaultStalls)
	}
	c("bpred.lookups", s.BpredLookups)
	c("bpred.mispredicts", s.BpredMispredicts)
	c(obs.MetricIssueActiveCycles, s.IssueActiveCycles)
	for sub := 0; sub < 3; sub++ {
		for cause := 0; cause < NumStallCauses; cause++ {
			if s.StallBySub[sub][cause] == 0 {
				continue
			}
			c(fmt.Sprintf("stall.%s.%s", isa.Subsystem(sub), StallCause(cause)), s.StallBySub[sub][cause])
		}
	}
	g("ipc", s.IPC())
	g("icache_miss_rate", s.ICacheMissRate)
	g("dcache_miss_rate", s.DCacheMissRate)

	hist := func(name string, counts []int64) {
		bounds := make([]float64, len(counts))
		for i := range bounds {
			bounds[i] = float64(i)
		}
		h := r.Histogram(prefix+name, bounds)
		for i, n := range counts {
			h.ObserveN(float64(i), n)
		}
	}
	hist("occupancy.int_window", s.IntWinOcc)
	hist("occupancy.fp_window", s.FpWinOcc)
	hist("occupancy.rob", s.ROBOcc)
	hist("issue_slots", s.IssueSlotCycles)
}
