package uarch_test

import (
	"testing"
	"testing/quick"

	"fpint/internal/codegen"
	"fpint/internal/sim"
	"fpint/internal/uarch"
)

func simNew(res *codegen.Result) *sim.Machine { return sim.New(res.Prog) }

func TestCacheHitAfterFill(t *testing.T) {
	c := uarch.NewCache(1024, 2, 32)
	if c.Access(0, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(24, false) {
		t.Fatal("same-line access missed")
	}
	if c.Access(32, false) {
		t.Fatal("next line hit while cold")
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", c.MissRate())
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way, 16 sets of 32B lines (1KB): addresses with identical set index
	// are multiples of 16*32=512 apart.
	c := uarch.NewCache(1024, 2, 32)
	c.Access(0, false)    // way A
	c.Access(512, false)  // way B
	c.Access(0, false)    // touch A (B becomes LRU)
	c.Access(1024, false) // evicts B
	if !c.Access(0, false) {
		t.Fatal("LRU evicted the recently used line")
	}
	if c.Access(512, false) {
		t.Fatal("evicted line still present")
	}
}

func TestCacheWritebackCounting(t *testing.T) {
	c := uarch.NewCache(1024, 2, 32)
	c.Access(0, true)     // dirty fill
	c.Access(512, false)  // clean fill
	c.Access(1024, false) // evicts LRU (the dirty line at 0)
	c.Access(1536, false) // evicts the clean line
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks)
	}
}

func TestCacheCapacityProperty(t *testing.T) {
	// Property: re-walking a working set no larger than the cache after a
	// warmup walk produces no further misses.
	f := func(seed uint8) bool {
		c := uarch.NewCache(4096, 2, 32)
		base := int64(seed) * 32
		for i := int64(0); i < 64; i++ { // 64 lines = half the cache
			c.Access(base+i*32, false)
		}
		before := c.Misses
		for i := int64(0); i < 64; i++ {
			c.Access(base+i*32, false)
		}
		return c.Misses == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	p := uarch.NewGshare(1024, 8)
	// Strict alternation is perfectly predictable with global history after
	// warmup.
	taken := false
	for i := 0; i < 2000; i++ {
		p.PredictAndUpdate(100, taken)
		taken = !taken
	}
	if p.Accuracy() < 0.9 {
		t.Fatalf("gshare accuracy %.3f on alternating branch", p.Accuracy())
	}
}

func TestGshareLearnsBias(t *testing.T) {
	p := uarch.NewGshare(1024, 8)
	for i := 0; i < 1000; i++ {
		p.PredictAndUpdate(4, true)
	}
	if p.Accuracy() < 0.95 {
		t.Fatalf("accuracy %.3f on always-taken branch", p.Accuracy())
	}
}

func TestGshareCountsLookups(t *testing.T) {
	p := uarch.NewGshare(64, 4)
	for i := 0; i < 10; i++ {
		p.PredictAndUpdate(i, i%2 == 0)
	}
	if p.Lookups != 10 {
		t.Fatalf("lookups = %d", p.Lookups)
	}
	if p.Mispredicts > p.Lookups {
		t.Fatalf("mispredicts %d > lookups %d", p.Mispredicts, p.Lookups)
	}
}

// TestPipelineRespectsIssueWidth: with a single INT ALU, a chain of
// independent ALU ops cannot exceed IPC 1 plus front-end effects.
func TestPipelineNarrowMachineIPCBound(t *testing.T) {
	cfg := uarch.Config4Way()
	cfg.IntALUs = 1
	cfg.IssueWidth = 1
	cfg.FetchWidth = 1
	cfg.DecodeWidth = 1
	cfg.RetireWidth = 1
	_, st := compileAndTime(t, loopSrc, 0, cfg)
	if st.IPC() > 1.0+1e-9 {
		t.Fatalf("IPC %.3f exceeds single-issue bound", st.IPC())
	}
}

func TestStatsIPCZeroSafe(t *testing.T) {
	var st uarch.Stats
	if st.IPC() != 0 {
		t.Fatal("IPC on empty stats should be 0")
	}
}

// TestSmallerWindowSlower: shrinking the issue windows cannot make code
// faster; on ILP-rich code it should cost cycles.
func TestSmallerWindowSlower(t *testing.T) {
	big := uarch.Config4Way()
	small := uarch.Config4Way()
	small.IntWindow = 4
	small.FpWindow = 4
	small.MaxInFlight = 8
	_, stBig := compileAndTime(t, loopSrc, 0, big)
	_, stSmall := compileAndTime(t, loopSrc, 0, small)
	if stSmall.Cycles < stBig.Cycles {
		t.Fatalf("smaller window faster: %d < %d", stSmall.Cycles, stBig.Cycles)
	}
	if stSmall.Cycles == stBig.Cycles {
		t.Logf("window size made no difference on this kernel (%d cycles)", stBig.Cycles)
	}
}

// TestPhysRegLimitThrottles: starving rename of physical registers must
// slow the machine.
func TestPhysRegLimitThrottles(t *testing.T) {
	normal := uarch.Config4Way()
	starved := uarch.Config4Way()
	starved.IntPhysRegs = 34 // two rename registers
	starved.FpPhysRegs = 34
	_, stN := compileAndTime(t, loopSrc, 0, normal)
	_, stS := compileAndTime(t, loopSrc, 0, starved)
	if stS.Cycles <= stN.Cycles {
		t.Fatalf("register-starved machine not slower: %d vs %d", stS.Cycles, stN.Cycles)
	}
}

// TestSlowerCachesCostCycles: a larger miss penalty cannot speed things up.
func TestSlowerCachesCostCycles(t *testing.T) {
	fast := uarch.Config4Way()
	slow := uarch.Config4Way()
	slow.DCacheMissPenalty = 60
	slow.ICacheMissPenalty = 60
	_, stF := compileAndTime(t, loopSrc, 0, fast)
	_, stS := compileAndTime(t, loopSrc, 0, slow)
	if stS.Cycles < stF.Cycles {
		t.Fatalf("slower memory produced fewer cycles: %d < %d", stS.Cycles, stF.Cycles)
	}
}

// TestJournalRecordsPipelineOrder: the pipetrace journal must record
// committed instructions in order with monotone, causally consistent
// stage timestamps.
func TestJournalRecordsPipelineOrder(t *testing.T) {
	res, _, err := codegen.CompileSource(loopSrc, codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		t.Fatal(err)
	}
	m := simNew(res)
	p := uarch.NewPipeline(uarch.Config4Way())
	j := p.AttachJournal(200)
	m.Trace = p.Feed
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	p.Finish()
	if len(j.Entries) != 200 {
		t.Fatalf("journal has %d entries, want 200", len(j.Entries))
	}
	prevCommit := int64(0)
	for i, e := range j.Entries {
		if e.Seq != int64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
		if !(e.FetchAt <= e.IssueAt && e.IssueAt < e.DoneAt && e.DoneAt <= e.CommitAt) {
			t.Fatalf("entry %d stage order violated: %+v", i, e)
		}
		if e.CommitAt < prevCommit {
			t.Fatalf("entry %d commits before its predecessor", i)
		}
		prevCommit = e.CommitAt
	}
	if j.String() == "" {
		t.Fatal("empty rendering")
	}
}
