package uarch_test

import (
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

// TestPipelineZeroSteadyStateAllocs pins the allocation-free property of
// the simulator core: after one warm-up run, a reusable Machine must
// execute an entire program — functional simulation plus the full detailed
// timing pipeline — without a single heap allocation, on both Table 1
// configurations. This is the hard form of the -benchmem benchmark number:
// any per-cycle or per-instruction allocation sneaking back into the hot
// loop fails the test, not just a trend line.
func TestPipelineZeroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is only meaningful without -race")
	}
	res, _, err := codegen.CompileSource(loopSrc, codegen.Options{Scheme: codegen.SchemeAdvanced, Analysis: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		for _, variant := range []string{"bare", "timeline", "hook"} {
			name := cfg.Name + "/" + variant
			t.Run(name, func(t *testing.T) {
				m := uarch.NewMachine(cfg)
				switch variant {
				case "timeline":
					// The flight recorder must not cost the hot loop any
					// allocations either: its window columns are recycled
					// across runs like every other machine buffer.
					m.SetTimelineWidth(256)
				case "hook":
					// Neither may the cooperative cancellation hook the
					// daemon arms on every job: the periodic check runs
					// inside the steady-state loop and must stay free.
					m.SetRunHook(func(int64) error { return nil }, 256)
					m.SetStepLimit(1 << 40)
				}
				// Warm up: first run grows the ROB columns, pending buffer,
				// stats map, and timeline columns to their steady-state
				// capacity.
				if _, _, err := m.Run(res.Prog); err != nil {
					t.Fatalf("warm-up run: %v", err)
				}
				allocs := testing.AllocsPerRun(3, func() {
					if _, _, err := m.Run(res.Prog); err != nil {
						t.Fatalf("run: %v", err)
					}
				})
				if allocs != 0 {
					t.Errorf("%s: warm machine allocated %.1f times per run, want 0", name, allocs)
				}
			})
		}
	}
}

// TestWarmMachineMatchesFreshRun pins that reuse is behavior-neutral: a
// machine that has already run other programs must produce bit-identical
// cycles, stats, and functional output on its next run compared to a
// fresh machine — i.e. Reset leaks no state between runs.
func TestWarmMachineMatchesFreshRun(t *testing.T) {
	progA, _, err := codegen.CompileSource(loopSrc, codegen.Options{Scheme: codegen.SchemeAdvanced, Analysis: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	const otherSrc = `
int main() {
	int s = 1;
	for (int i = 1; i < 200; i++) s = (s * 31 + i) % 65537;
	return s;
}`
	progB, _, err := codegen.CompileSource(otherSrc, codegen.Options{Scheme: codegen.SchemeBasic})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		fresh, freshSt, err := uarch.Run(progA.Prog, cfg)
		if err != nil {
			t.Fatalf("fresh run: %v", err)
		}
		freshRet, freshOut := fresh.Ret, fresh.Output

		m := uarch.NewMachine(cfg)
		// Dirty the machine with a different program first.
		if _, _, err := m.Run(progB.Prog); err != nil {
			t.Fatalf("dirtying run: %v", err)
		}
		warm, warmSt, err := m.Run(progA.Prog)
		if err != nil {
			t.Fatalf("warm run: %v", err)
		}
		if warm.Ret != freshRet || warm.Output != freshOut {
			t.Errorf("%s: warm functional result differs: ret %d vs %d", cfg.Name, warm.Ret, freshRet)
		}
		if warmSt.Cycles != freshSt.Cycles || warmSt.Instructions != freshSt.Instructions {
			t.Errorf("%s: warm timing differs: %d cycles vs %d", cfg.Name, warmSt.Cycles, freshSt.Cycles)
		}
		if warmSt.IssueActiveCycles != freshSt.IssueActiveCycles || warmSt.StallBySub != freshSt.StallBySub {
			t.Errorf("%s: warm stall ledger differs from fresh run", cfg.Name)
		}
		if err := warmSt.StallAccountingError(); err != 0 {
			t.Errorf("%s: warm ledger not closed: error %d", cfg.Name, err)
		}
	}
}
