// Package uarch implements the cycle-level out-of-order timing model of the
// paper's evaluation (Table 1): a fetch unit with a McFarling-style gshare
// predictor and an instruction cache, decode/rename, split INT/FP issue
// windows, per-subsystem functional units, a load/store port with
// store-address disambiguation, a data cache, and in-order commit. The
// conventional and augmented (FPa) microarchitectures are identical except
// for the instructions the compiled binary routes to the FP subsystem.
package uarch

// GsharePredictor is McFarling's gshare: the branch PC is XORed with a
// global history register to index a table of 2-bit saturating counters
// (Table 1: 32K 2-bit counters, 15-bit global history). Unconditional
// control transfers are predicted perfectly, per the paper.
type GsharePredictor struct {
	counters    []uint8
	history     uint64
	historyBits uint
	mask        uint64

	Lookups     int64
	Mispredicts int64
}

// NewGshare builds a predictor with nCounters 2-bit counters (power of two)
// and historyBits of global history.
func NewGshare(nCounters int, historyBits uint) *GsharePredictor {
	return &GsharePredictor{
		counters:    make([]uint8, nCounters),
		historyBits: historyBits,
		mask:        uint64(nCounters - 1),
	}
}

// Reset clears the counters, history, and statistics, keeping the table.
func (p *GsharePredictor) Reset() {
	clear(p.counters)
	p.history = 0
	p.Lookups, p.Mispredicts = 0, 0
}

func (p *GsharePredictor) index(pc int) uint64 {
	return (uint64(pc) ^ p.history) & p.mask
}

// PredictAndUpdate predicts the branch at pc, then trains on the actual
// outcome, returning whether the prediction was correct.
func (p *GsharePredictor) PredictAndUpdate(pc int, taken bool) bool {
	idx := p.index(pc)
	pred := p.counters[idx] >= 2
	if taken {
		if p.counters[idx] < 3 {
			p.counters[idx]++
		}
	} else {
		if p.counters[idx] > 0 {
			p.counters[idx]--
		}
	}
	p.history = ((p.history << 1) | b2u(taken)) & ((1 << p.historyBits) - 1)
	p.Lookups++
	if pred != taken {
		p.Mispredicts++
		return false
	}
	return true
}

// Accuracy returns the fraction of correct conditional-branch predictions.
func (p *GsharePredictor) Accuracy() float64 {
	if p.Lookups == 0 {
		return 1
	}
	return 1 - float64(p.Mispredicts)/float64(p.Lookups)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
