package uarch_test

import (
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/uarch"
)

// BenchmarkPipelineLoop times the uarch simulator's main pipeline loop on
// both Table 1 machine configurations, driving the same integer loop the
// timing sanity tests use on a warm reusable Machine (the steady state the
// allocation-free refactor targets; allocs/op should read 0). The timeline
// flight recorder is armed, so the number also covers the always-on
// telemetry cost. Run with -benchmem and feed the output to `fpistat
// record -gobench` to track the simulator's host-side cost in the
// run-record store.
func BenchmarkPipelineLoop(b *testing.B) {
	res, _, err := codegen.CompileSource(loopSrc, codegen.Options{Scheme: codegen.SchemeAdvanced, Analysis: true})
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			m := uarch.NewMachine(cfg)
			m.SetTimelineWidth(1024)
			if _, _, err := m.Run(res.Prog); err != nil {
				b.Fatalf("warm-up run: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Run(res.Prog); err != nil {
					b.Fatalf("run: %v", err)
				}
			}
		})
	}
}

// BenchmarkRunSampled times the sampled-timing fast mode on the same loop
// and warm Machine, at the default sampling parameters — the direct
// comparison point for BenchmarkPipelineLoop (same workload, same configs;
// the gap is what sampling buys). Also a steady-state allocation watch for
// the fast path: allocs/op must stay a small constant (the sampler struct
// and the estimate's rescaled histograms), independent of program length.
func BenchmarkRunSampled(b *testing.B) {
	res, _, err := codegen.CompileSource(loopSrc, codegen.Options{Scheme: codegen.SchemeAdvanced, Analysis: true})
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	sc := uarch.DefaultSampleConfig()
	for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			m := uarch.NewMachine(cfg)
			if _, _, err := m.RunSampled(res.Prog, sc); err != nil {
				b.Fatalf("warm-up run: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.RunSampled(res.Prog, sc); err != nil {
					b.Fatalf("run: %v", err)
				}
			}
		})
	}
}
