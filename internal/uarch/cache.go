package uarch

// Cache is a set-associative cache with LRU replacement, used for both the
// instruction cache (64KB, 2-way, 128-byte lines) and the data cache (32KB,
// 2-way, 32-byte lines, write-back, write-allocate) of Table 1. The way
// state is stored in flat sets×ways arrays (row-major by set) so a lookup
// touches one contiguous stripe, and Reset recycles the arrays.
type Cache struct {
	sets      int
	ways      int
	lineShift uint

	tags  []uint64
	valid []bool
	dirty []bool
	lru   []int64 // last-touch stamps
	stamp int64

	Accesses   int64
	Misses     int64
	Writebacks int64
}

// NewCache builds a cache of size bytes with the given associativity and
// line size (both powers of two).
func NewCache(size, ways, lineSize int) *Cache {
	sets := size / (ways * lineSize)
	c := &Cache{sets: sets, ways: ways}
	for lineSize > 1 {
		lineSize >>= 1
		c.lineShift++
	}
	n := sets * ways
	c.tags = make([]uint64, n)
	c.valid = make([]bool, n)
	c.dirty = make([]bool, n)
	c.lru = make([]int64, n)
	return c
}

// Reset invalidates every line and zeroes the statistics, keeping the
// arrays.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.valid)
	clear(c.dirty)
	clear(c.lru)
	c.stamp = 0
	c.Accesses, c.Misses, c.Writebacks = 0, 0, 0
}

// Access looks up addr, filling on miss (write-allocate). write marks the
// line dirty. It reports whether the access hit.
func (c *Cache) Access(addr int64, write bool) bool {
	c.Accesses++
	c.stamp++
	line := uint64(addr) >> c.lineShift
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	base := set * c.ways
	for w := base; w < base+c.ways; w++ {
		if c.valid[w] && c.tags[w] == tag {
			c.lru[w] = c.stamp
			if write {
				c.dirty[w] = true
			}
			return true
		}
	}
	c.Misses++
	// Fill: evict LRU way.
	victim := base
	for w := base + 1; w < base+c.ways; w++ {
		if !c.valid[w] {
			victim = w
			break
		}
		if c.lru[w] < c.lru[victim] {
			victim = w
		}
	}
	if c.valid[victim] && c.dirty[victim] {
		c.Writebacks++
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = write
	c.lru[victim] = c.stamp
	return false
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
