package uarch

// Cache is a set-associative cache with LRU replacement, used for both the
// instruction cache (64KB, 2-way, 128-byte lines) and the data cache (32KB,
// 2-way, 32-byte lines, write-back, write-allocate) of Table 1.
type Cache struct {
	sets      int
	ways      int
	lineShift uint

	tags  [][]uint64
	valid [][]bool
	dirty [][]bool
	lru   [][]int64 // last-touch stamps
	stamp int64

	Accesses   int64
	Misses     int64
	Writebacks int64
}

// NewCache builds a cache of size bytes with the given associativity and
// line size (both powers of two).
func NewCache(size, ways, lineSize int) *Cache {
	sets := size / (ways * lineSize)
	c := &Cache{sets: sets, ways: ways}
	for lineSize > 1 {
		lineSize >>= 1
		c.lineShift++
	}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.dirty = make([][]bool, sets)
	c.lru = make([][]int64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.dirty[i] = make([]bool, ways)
		c.lru[i] = make([]int64, ways)
	}
	return c
}

// Access looks up addr, filling on miss (write-allocate). write marks the
// line dirty. It reports whether the access hit.
func (c *Cache) Access(addr int64, write bool) bool {
	c.Accesses++
	c.stamp++
	line := uint64(addr) >> c.lineShift
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.stamp
			if write {
				c.dirty[set][w] = true
			}
			return true
		}
	}
	c.Misses++
	// Fill: evict LRU way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	if c.valid[set][victim] && c.dirty[set][victim] {
		c.Writebacks++
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.dirty[set][victim] = write
	c.lru[set][victim] = c.stamp
	return false
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
