package uarch

// Config holds the machine parameters of Table 1.
type Config struct {
	Name string

	FetchWidth  int
	DecodeWidth int // decode/rename width
	RetireWidth int
	IssueWidth  int // max ops issued per cycle across both subsystems

	IntWindow   int // integer issue-window entries
	FpWindow    int
	MaxInFlight int

	IntALUs   int
	FpALUs    int
	LdStPorts int

	IntPhysRegs int
	FpPhysRegs  int

	// Branch predictor.
	BpredCounters int
	BpredHistory  uint

	// Instruction cache.
	ICacheSize, ICacheWays, ICacheLine int
	ICacheHit, ICacheMissPenalty       int

	// Data cache.
	DCacheSize, DCacheWays, DCacheLine int
	DCacheHit, DCacheMissPenalty       int

	// FPaExtraLatency models the §6.6 hardware-cost discussion: if the FP
	// subsystem cannot support single-cycle integer operations, FPa
	// integer ops take 1+FPaExtraLatency cycles. 0 reproduces the paper's
	// headline assumption.
	FPaExtraLatency int
}

// Config4Way is the 4-way (2 int + 2 fp) machine of Table 1.
func Config4Way() Config {
	return Config{
		Name:        "4-way",
		FetchWidth:  4,
		DecodeWidth: 4,
		RetireWidth: 4,
		IssueWidth:  4,
		IntWindow:   16,
		FpWindow:    16,
		MaxInFlight: 32,
		IntALUs:     2,
		FpALUs:      2,
		LdStPorts:   1,
		IntPhysRegs: 48,
		FpPhysRegs:  48,

		BpredCounters: 32 * 1024,
		BpredHistory:  15,

		ICacheSize: 64 * 1024, ICacheWays: 2, ICacheLine: 128,
		ICacheHit: 1, ICacheMissPenalty: 6,

		DCacheSize: 32 * 1024, DCacheWays: 2, DCacheLine: 32,
		DCacheHit: 1, DCacheMissPenalty: 6,
	}
}

// Config8Way is the 8-way (4 int + 4 fp) machine of Table 1.
func Config8Way() Config {
	c := Config4Way()
	c.Name = "8-way"
	c.FetchWidth = 8
	c.DecodeWidth = 8
	c.RetireWidth = 8
	c.IssueWidth = 8
	c.IntWindow = 32
	c.FpWindow = 32
	c.MaxInFlight = 64
	c.IntALUs = 4
	c.FpALUs = 4
	c.LdStPorts = 2
	c.IntPhysRegs = 80
	c.FpPhysRegs = 80
	return c
}
