package uarch

import "fpint/internal/isa"

// UnknownPC is the pseudo-PC that absorbs cycles no instruction is
// responsible for (pipeline fill/drain while the machine is empty). Keeping
// these cycles in the profile — instead of dropping them — is what makes the
// per-PC attribution closed: Σ per-PC cycles == Stats.Cycles exactly.
const UnknownPC = -1

// PCSample accumulates the cycles and retirements charged to one PC.
type PCSample struct {
	// Cycles is the total cycles charged to this PC (active + all stalls).
	Cycles int64
	// Active counts cycles in which this PC was the oldest instruction
	// issued (retirement-ordered attribution of useful work).
	Active int64
	// Stall[cause] counts non-issuing cycles blamed on this PC, split by
	// stall cause (same causes as Stats.StallBySub).
	Stall [NumStallCauses]int64
	// BySub splits the charged cycles by the subsystem of the instruction
	// at fault (INT / FP / FPa). For UnknownPC everything lands on INT,
	// whose core owns the front end.
	BySub [3]int64
	// Retired counts dynamic instructions retired at this PC.
	Retired int64
}

// CycleProfile attributes every simulated cycle to the PC responsible for
// it. Attach one to a Pipeline with AttachProfile before feeding events.
//
// Charging rules, applied once per cycle:
//   - A cycle in which at least one instruction issued is charged to the
//     oldest instruction that issued that cycle (the one retirement is
//     waiting on).
//   - A stall cycle is charged to the instruction classifyStall blames:
//     the dependence-stalled consumer, the mispredicted branch, the
//     instruction stuck at dispatch, or the latency-draining commit head.
//     An I-cache-miss cycle is charged to the instruction whose fetch
//     missed.
//   - Fill/drain cycles with no responsible instruction go to UnknownPC.
//
// Exactly one PC is charged per cycle, so the per-PC cycle counts form a
// closed ledger over Stats.Cycles, mirroring the aggregate stall-ledger
// invariant (StallAccountingError == 0) at per-PC granularity.
type CycleProfile struct {
	// Samples maps PC (or UnknownPC) to its accumulated sample.
	Samples map[int]*PCSample
	// Cycles is the total number of cycles charged.
	Cycles int64
}

// NewCycleProfile returns an empty profile.
func NewCycleProfile() *CycleProfile {
	return &CycleProfile{Samples: make(map[int]*PCSample)}
}

func (cp *CycleProfile) sample(pc int) *PCSample {
	s := cp.Samples[pc]
	if s == nil {
		s = &PCSample{}
		cp.Samples[pc] = s
	}
	return s
}

// chargeActive charges one issue-active cycle to pc.
func (cp *CycleProfile) chargeActive(pc int, sub isa.Subsystem) {
	s := cp.sample(pc)
	s.Cycles++
	s.Active++
	s.BySub[sub]++
	cp.Cycles++
}

// chargeStall charges one stall cycle of the given cause to pc.
func (cp *CycleProfile) chargeStall(pc int, cause StallCause, sub isa.Subsystem) {
	s := cp.sample(pc)
	s.Cycles++
	s.Stall[cause]++
	s.BySub[sub]++
	cp.Cycles++
}

// retire records one instruction retiring at pc.
func (cp *CycleProfile) retire(pc int) {
	cp.sample(pc).Retired++
}

// TotalAttributed returns Σ per-PC cycles; equal to Cycles by construction
// and to Stats.Cycles after Finish when the profile was attached up front.
func (cp *CycleProfile) TotalAttributed() int64 {
	var n int64
	for _, s := range cp.Samples {
		n += s.Cycles
	}
	return n
}

// AttachProfile enables per-PC cycle attribution on the pipeline and
// returns the profile, which is populated as the simulation advances and
// complete after Finish. Attach before feeding any events.
func (p *Pipeline) AttachProfile() *CycleProfile {
	p.profile = NewCycleProfile()
	return p.profile
}
