package uarch

import (
	"testing"

	"fpint/internal/isa"
)

// buildProfProg assembles a small program with a loop, a load, and FPa
// traffic so the profiler sees active cycles, RAW stalls, and retirements
// across several PCs.
func buildProfProg() *isa.Program {
	prog := &isa.Program{
		FuncEntry:  map[string]int{"main": 0},
		GlobalAddr: map[string]int64{"g": 8},
		DataWords:  map[int64]uint64{8: 5},
		DataTop:    16,
	}
	prog.Insts = []isa.Inst{
		{Op: isa.LI, Rd: 8, Imm: 8, SrcLine: 1},                       // 0: addr of g
		{Op: isa.LW, Rd: 9, Rs: 8, SrcLine: 2},                        // 1: n = g
		{Op: isa.LI, Rd: 10, Imm: 0, SrcLine: 3},                      // 2: sum = 0
		{Op: isa.ADD, Rd: 10, Rs: 10, Rt: 9, SrcLine: 4},              // 3: sum += n
		{Op: isa.SUB, Rd: 9, Rs: 9, Imm: 1, UseImm: true, SrcLine: 5}, // 4: n--
		{Op: isa.BNEZ, Rs: 9, Target: 3, SrcLine: 5},                  // 5: loop
		{Op: isa.CP2FP, Rd: 1, Rs: 10, SrcLine: 6},                    // 6: to FPa
		{Op: isa.ADDA, Rd: 2, Rs: 1, Rt: 1, SrcLine: 6},
		{Op: isa.CP2INT, Rd: 11, Rs: 2, SrcLine: 6},
		{Op: isa.MOV, Rd: isa.RegV0, Rs: 11, SrcLine: 7},
		{Op: isa.HALT, SrcLine: 7},
	}
	for range prog.Insts {
		prog.FuncOf = append(prog.FuncOf, "main")
	}
	return prog
}

// TestCycleProfileClosedLedger checks the per-PC attribution invariant on
// both Table 1 machine configurations: every simulated cycle is charged to
// exactly one PC, so the per-PC sums reproduce Stats.Cycles and the
// per-cause splits are internally consistent.
func TestCycleProfileClosedLedger(t *testing.T) {
	for _, cfg := range []Config{Config4Way(), Config8Way()} {
		t.Run(cfg.Name, func(t *testing.T) {
			prog := buildProfProg()
			_, st, prof, err := RunProfiled(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st.StallAccountingError() != 0 {
				t.Fatalf("aggregate stall ledger not closed: %d", st.StallAccountingError())
			}
			if prof.Cycles != st.Cycles {
				t.Fatalf("profile charged %d cycles, simulator ran %d", prof.Cycles, st.Cycles)
			}
			if got := prof.TotalAttributed(); got != st.Cycles {
				t.Fatalf("Σ per-PC cycles = %d, want %d", got, st.Cycles)
			}
			var active, retired int64
			for pc, s := range prof.Samples {
				var stall int64
				for _, n := range s.Stall {
					stall += n
				}
				if s.Active+stall != s.Cycles {
					t.Fatalf("pc %d: active %d + stalls %d != cycles %d", pc, s.Active, stall, s.Cycles)
				}
				var bySub int64
				for _, n := range s.BySub {
					bySub += n
				}
				if bySub != s.Cycles {
					t.Fatalf("pc %d: subsystem split %d != cycles %d", pc, bySub, s.Cycles)
				}
				active += s.Active
				retired += s.Retired
			}
			if active != st.IssueActiveCycles {
				t.Fatalf("Σ active = %d, want IssueActiveCycles %d", active, st.IssueActiveCycles)
			}
			if retired != st.Instructions {
				t.Fatalf("Σ retired = %d, want Instructions %d", retired, st.Instructions)
			}
			// The loop body must dominate the profile: PCs 3..5 carry the
			// dynamic weight.
			var loop int64
			for pc := 3; pc <= 5; pc++ {
				if s := prof.Samples[pc]; s != nil {
					loop += s.Cycles
				}
			}
			if loop == 0 {
				t.Fatal("no cycles attributed to the loop body")
			}
		})
	}
}

// TestProfileDetached checks that a pipeline without an attached profile
// still runs (nil-profile paths) and reports no profile.
func TestProfileDetached(t *testing.T) {
	prog := buildProfProg()
	_, st, err := Run(prog, Config4Way())
	if err != nil {
		t.Fatal(err)
	}
	if st.StallAccountingError() != 0 {
		t.Fatalf("stall ledger not closed: %d", st.StallAccountingError())
	}
}
