//go:build race

package uarch_test

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation performs bookkeeping allocations that would make
// testing.AllocsPerRun report false positives.
const raceEnabled = true
