package uarch

import (
	"fpint/internal/isa"
	"fpint/internal/obs/timeline"
)

// tlSnapshot is the cumulative counter state at a window boundary. Every
// window is the exact difference of two boundary snapshots, so the
// recorded timeline closes against the run's final ledger by construction
// — no second accounting to drift out of sync.
type tlSnapshot struct {
	cycle        int64
	instructions int64
	issueActive  int64
	issuedINT    int64
	issuedFP     int64
	issuedFPa    int64
	loads        int64
	stores       int64
	intOccSum    int64
	fpOccSum     int64
	robOccSum    int64
	bpLookups    int64
	bpMisp       int64
	icAcc        int64
	icMiss       int64
	dcAcc        int64
	dcMiss       int64
	faults       int64
	stalls       [3][NumStallCauses]int64
}

func (s *tlSnapshot) capture(p *Pipeline) {
	s.cycle = p.cycle
	s.instructions = p.stats.Instructions
	s.issueActive = p.stats.IssueActiveCycles
	s.issuedINT = p.stats.IssuedINT
	s.issuedFP = p.stats.IssuedFP
	s.issuedFPa = p.stats.IssuedFPa
	s.loads = p.stats.Loads
	s.stores = p.stats.Stores
	s.intOccSum = p.occIntSum
	s.fpOccSum = p.occFpSum
	s.robOccSum = p.occROBSum
	s.bpLookups = p.bpred.Lookups
	s.bpMisp = p.bpred.Mispredicts
	s.icAcc = p.icache.Accesses
	s.icMiss = p.icache.Misses
	s.dcAcc = p.dcache.Accesses
	s.dcMiss = p.dcache.Misses
	s.faults = p.stats.FaultsInjected
	s.stalls = p.stats.StallBySub
}

// tlStride is the length of one window's flattened stall matrix.
const tlStride = 3 * NumStallCauses

// TimelineRecorder samples the pipeline's cumulative counters at
// fixed-width cycle boundaries into struct-of-arrays columns. The columns
// are recycled across runs on a warm Machine (reset truncates, append
// reuses capacity), so once a machine has run a program, re-running with
// the recorder armed allocates nothing — the property the zero-alloc
// test pins with the recorder enabled.
//
// In fast (sampled-timing) mode the pipeline clock only advances during
// detailed windows, so the recorded timeline covers the detailed
// warmup+measured cycles contiguously; functional-only bpred/cache
// traffic between detailed windows lands in the delta of the next
// recorded window.
type TimelineRecorder struct {
	width        int64
	nextBoundary int64
	base         tlSnapshot
	closed       bool

	n            int
	startCycle   []int64
	cycles       []int64
	instructions []int64
	issueActive  []int64
	issuedINT    []int64
	issuedFP     []int64
	issuedFPa    []int64
	loads        []int64
	stores       []int64
	intOccSum    []int64
	fpOccSum     []int64
	robOccSum    []int64
	bpLookups    []int64
	bpMisp       []int64
	icAcc        []int64
	icMiss       []int64
	dcAcc        []int64
	dcMiss       []int64
	faults       []int64
	stalls       []int64 // n × tlStride, row-major [sub][cause]
}

// reset rearms the recorder for a new run of the given window width,
// keeping column capacity.
func (r *TimelineRecorder) reset(width int64) {
	if width < 1 {
		width = 1
	}
	r.width = width
	r.nextBoundary = width
	r.base = tlSnapshot{}
	r.closed = false
	r.n = 0
	r.startCycle = r.startCycle[:0]
	r.cycles = r.cycles[:0]
	r.instructions = r.instructions[:0]
	r.issueActive = r.issueActive[:0]
	r.issuedINT = r.issuedINT[:0]
	r.issuedFP = r.issuedFP[:0]
	r.issuedFPa = r.issuedFPa[:0]
	r.loads = r.loads[:0]
	r.stores = r.stores[:0]
	r.intOccSum = r.intOccSum[:0]
	r.fpOccSum = r.fpOccSum[:0]
	r.robOccSum = r.robOccSum[:0]
	r.bpLookups = r.bpLookups[:0]
	r.bpMisp = r.bpMisp[:0]
	r.icAcc = r.icAcc[:0]
	r.icMiss = r.icMiss[:0]
	r.dcAcc = r.dcAcc[:0]
	r.dcMiss = r.dcMiss[:0]
	r.faults = r.faults[:0]
	r.stalls = r.stalls[:0]
}

// roll closes the window ending at the current cycle: it captures a
// boundary snapshot, appends the delta against the previous boundary as
// one window, and advances the boundary. Called from the pipeline's
// per-cycle step when the clock reaches nextBoundary, and from flush for
// the final partial window.
func (r *TimelineRecorder) roll(p *Pipeline) {
	var now tlSnapshot
	now.capture(p)
	b := &r.base
	r.startCycle = append(r.startCycle, b.cycle)
	r.cycles = append(r.cycles, now.cycle-b.cycle)
	r.instructions = append(r.instructions, now.instructions-b.instructions)
	r.issueActive = append(r.issueActive, now.issueActive-b.issueActive)
	r.issuedINT = append(r.issuedINT, now.issuedINT-b.issuedINT)
	r.issuedFP = append(r.issuedFP, now.issuedFP-b.issuedFP)
	r.issuedFPa = append(r.issuedFPa, now.issuedFPa-b.issuedFPa)
	r.loads = append(r.loads, now.loads-b.loads)
	r.stores = append(r.stores, now.stores-b.stores)
	r.intOccSum = append(r.intOccSum, now.intOccSum-b.intOccSum)
	r.fpOccSum = append(r.fpOccSum, now.fpOccSum-b.fpOccSum)
	r.robOccSum = append(r.robOccSum, now.robOccSum-b.robOccSum)
	r.bpLookups = append(r.bpLookups, now.bpLookups-b.bpLookups)
	r.bpMisp = append(r.bpMisp, now.bpMisp-b.bpMisp)
	r.icAcc = append(r.icAcc, now.icAcc-b.icAcc)
	r.icMiss = append(r.icMiss, now.icMiss-b.icMiss)
	r.dcAcc = append(r.dcAcc, now.dcAcc-b.dcAcc)
	r.dcMiss = append(r.dcMiss, now.dcMiss-b.dcMiss)
	r.faults = append(r.faults, now.faults-b.faults)
	for sub := 0; sub < 3; sub++ {
		for c := 0; c < NumStallCauses; c++ {
			r.stalls = append(r.stalls, now.stalls[sub][c]-b.stalls[sub][c])
		}
	}
	r.n++
	r.base = now
	r.nextBoundary = now.cycle + r.width
}

// flush closes the final partial window, if any cycles have elapsed since
// the last boundary. Idempotent; called when the pipeline drains.
func (r *TimelineRecorder) flush(p *Pipeline) {
	if r.closed {
		return
	}
	r.closed = true
	if p.cycle > r.base.cycle {
		r.roll(p)
	}
}

// Windows returns the number of windows recorded so far.
func (r *TimelineRecorder) Windows() int { return r.n }

// Build renders the recording as an fpint-timeline/v1 document. The
// document totals come from the final boundary snapshot — the pipeline's
// own cumulative counters — so Validate genuinely cross-checks the window
// sums against the run. Build allocates; call it after the run, not from
// the measured region.
func (r *TimelineRecorder) Build(program string, cfg Config) *timeline.Timeline {
	t := &timeline.Timeline{
		Schema:            timeline.Schema,
		Program:           program,
		Config:            cfg.Name,
		WindowWidth:       r.width,
		IssueWidth:        cfg.IssueWidth,
		TotalCycles:       r.base.cycle,
		TotalInstructions: r.base.instructions,
		Subsystems:        make([]string, 3),
		StallCauses:       make([]string, NumStallCauses),
		Windows:           make([]timeline.Window, r.n),
	}
	for sub := 0; sub < 3; sub++ {
		t.Subsystems[sub] = isa.Subsystem(sub).String()
	}
	for c := 0; c < NumStallCauses; c++ {
		t.StallCauses[c] = StallCause(c).String()
	}
	for i := 0; i < r.n; i++ {
		t.Windows[i] = timeline.Window{
			Index:            i,
			StartCycle:       r.startCycle[i],
			Cycles:           r.cycles[i],
			Instructions:     r.instructions[i],
			IssueActive:      r.issueActive[i],
			IssuedINT:        r.issuedINT[i],
			IssuedFP:         r.issuedFP[i],
			IssuedFPa:        r.issuedFPa[i],
			Loads:            r.loads[i],
			Stores:           r.stores[i],
			IntOccSum:        r.intOccSum[i],
			FpOccSum:         r.fpOccSum[i],
			ROBOccSum:        r.robOccSum[i],
			BpredLookups:     r.bpLookups[i],
			BpredMispredicts: r.bpMisp[i],
			ICacheAccesses:   r.icAcc[i],
			ICacheMisses:     r.icMiss[i],
			DCacheAccesses:   r.dcAcc[i],
			DCacheMisses:     r.dcMiss[i],
			Faults:           r.faults[i],
			Stalls:           append([]int64(nil), r.stalls[i*tlStride:(i+1)*tlStride]...),
		}
	}
	return t
}

// AttachTimeline arms a fresh flight recorder with the given window width
// (in cycles) on the pipeline. Attach after Reset and before feeding
// events; the recorder samples at window boundaries inside the pipeline
// loop and closes its final partial window when Finish drains. Machine
// users should prefer SetTimelineWidth, which recycles one recorder
// across runs.
func (p *Pipeline) AttachTimeline(width int64) *TimelineRecorder {
	r := &TimelineRecorder{}
	r.reset(width)
	p.rec = r
	return r
}

// SetTimelineWidth arms the machine's flight recorder: every subsequent
// run (detailed, profiled, injected, or sampled) records a timeline with
// the given window width in cycles. Width 0 disables recording; negative
// widths are treated as 1. The recorder is machine-owned and recycled
// across runs, preserving the warm machine's zero-allocation property.
func (m *Machine) SetTimelineWidth(width int64) {
	m.tlWidth = width
	if width > 0 && m.rec == nil {
		m.rec = &TimelineRecorder{}
	}
}

// armTimeline rearms the machine's recorder on its freshly reset
// pipeline; no-op when recording is disabled.
func (m *Machine) armTimeline() {
	if m.tlWidth > 0 {
		m.rec.reset(m.tlWidth)
		m.pipe.rec = m.rec
	}
}

// Timeline builds the fpint-timeline/v1 document for the machine's most
// recent run, or nil when no recorder is armed. The document is a fresh
// copy and remains valid across later runs.
func (m *Machine) Timeline(program string) *timeline.Timeline {
	if m.tlWidth <= 0 || m.rec == nil {
		return nil
	}
	return m.rec.Build(program, m.cfg)
}
