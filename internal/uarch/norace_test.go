//go:build !race

package uarch_test

const raceEnabled = false
