package codegen

import (
	"fmt"

	"fpint/internal/core"
	"fpint/internal/ir"
	"fpint/internal/isa"
)

// partInfo answers partition queries during selection. A nil partition
// means the conventional (baseline) compilation: everything integer stays
// in the INT subsystem.
type partInfo struct {
	p *core.Partition
	g *core.Graph

	copyInstr    map[int]bool // instr ID whose def value gets an INT→FPa copy
	dupInstr     map[int]bool // instr ID duplicated into FPa
	outCopyInstr map[int]bool // instr ID whose FPa value is copied back to INT
	paramCopy    map[int]bool // parameter index copied INT→FPa at entry
}

func newPartInfo(p *core.Partition) *partInfo {
	pi := &partInfo{
		p:            p,
		copyInstr:    make(map[int]bool),
		dupInstr:     make(map[int]bool),
		outCopyInstr: make(map[int]bool),
		paramCopy:    make(map[int]bool),
	}
	if p == nil {
		return pi
	}
	pi.g = p.G
	fill := func(set map[core.NodeID]bool, instrs, params map[int]bool) {
		for id := range set {
			n := pi.g.Nodes[id]
			if n.Instr != nil {
				instrs[n.Instr.ID] = true
			} else if params != nil {
				params[n.ParamIdx] = true
			}
		}
	}
	fill(p.CopyNodes, pi.copyInstr, pi.paramCopy)
	fill(p.DupNodes, pi.dupInstr, nil)
	fill(p.OutCopyNodes, pi.outCopyInstr, nil)
	return pi
}

// mainFPa reports whether the (non-split) instruction executes in FPa.
func (pi *partInfo) mainFPa(in *ir.Instr) bool {
	if pi.p == nil {
		return false
	}
	id, ok := pi.g.NodeForInstr(in.ID)
	return ok && pi.p.InFPa(id)
}

// loadValFPa reports whether an integer load's value lands in the FP file.
func (pi *partInfo) loadValFPa(in *ir.Instr) bool {
	if pi.p == nil {
		return false
	}
	id, ok := pi.g.LoadValNode(in.ID)
	return ok && pi.p.InFPa(id)
}

// storeValFPa reports whether an integer store's value comes from the FP file.
func (pi *partInfo) storeValFPa(in *ir.Instr) bool {
	if pi.p == nil {
		return false
	}
	id, ok := pi.g.StoreValNode(in.ID)
	return ok && pi.p.InFPa(id)
}

var intALU = map[ir.Op]isa.Opcode{
	ir.OpAdd: isa.ADD, ir.OpSub: isa.SUB, ir.OpMul: isa.MUL,
	ir.OpDiv: isa.DIV, ir.OpRem: isa.REM,
	ir.OpAnd: isa.AND, ir.OpOr: isa.OR, ir.OpXor: isa.XOR, ir.OpNor: isa.NOR,
	ir.OpShl: isa.SLL, ir.OpShrA: isa.SRA, ir.OpShrL: isa.SRL,
	ir.OpCmpEQ: isa.SEQ, ir.OpCmpNE: isa.SNE, ir.OpCmpLT: isa.SLT,
	ir.OpCmpLE: isa.SLE, ir.OpCmpGT: isa.SGT, ir.OpCmpGE: isa.SGE,
}

var fpaALU = map[ir.Op]isa.Opcode{
	ir.OpAdd: isa.ADDA, ir.OpSub: isa.SUBA,
	ir.OpAnd: isa.ANDA, ir.OpOr: isa.ORA, ir.OpXor: isa.XORA, ir.OpNor: isa.NORA,
	ir.OpShl: isa.SLLA, ir.OpShrA: isa.SRAA, ir.OpShrL: isa.SRLA,
	ir.OpCmpEQ: isa.SEQA, ir.OpCmpNE: isa.SNEA, ir.OpCmpLT: isa.SLTA,
	ir.OpCmpLE: isa.SLEA, ir.OpCmpGT: isa.SGTA, ir.OpCmpGE: isa.SGEA,
}

var floatALU = map[ir.Op]isa.Opcode{
	ir.OpFAdd: isa.FADD, ir.OpFSub: isa.FSUB, ir.OpFMul: isa.FMUL,
	ir.OpFDiv: isa.FDIV, ir.OpFNeg: isa.FNEG,
	ir.OpFCmpEQ: isa.FSEQ, ir.OpFCmpNE: isa.FSNE, ir.OpFCmpLT: isa.FSLT,
	ir.OpFCmpLE: isa.FSLE, ir.OpFCmpGT: isa.FSGT, ir.OpFCmpGE: isa.FSGE,
}

// selector lowers one IR function to machine IR.
type selector struct {
	fn   *ir.Func
	pi   *partInfo
	mf   *mfunc
	cur  *mblock
	plan *FPArgPlan

	intHome map[ir.VReg]int
	fpHome  map[ir.VReg]int

	// fpNeeded marks vregs some FP-file consumer reads (FPa instructions,
	// duplicates, FPa stores/branches, FP-passed call arguments);
	// intNeeded marks vregs some integer-file consumer reads (INT
	// instructions, addresses, int-passed call arguments, returns, CVTIF).
	// FPa definitions emit an FPa→INT copy only when intNeeded — this is
	// what lets the interprocedural FP-argument extension drop the §6.4
	// out-copies that FP passing makes unnecessary.
	fpNeeded  map[ir.VReg]bool
	intNeeded map[ir.VReg]bool

	// curLine/curIROp are the debug provenance of the IR instruction being
	// selected; emit stamps them onto every machine instruction so copies,
	// duplicates, and other expansion glue inherit the site's source line.
	curLine int
	curIROp uint8
}

// maxRegArgs is how many arguments of each class fit in registers; the
// compiler rejects functions needing more (none of the workloads do).
const maxRegArgs = 4

func selectFunc(fn *ir.Func, p *core.Partition, plan *FPArgPlan) (*mfunc, error) {
	s := &selector{
		fn:        fn,
		pi:        newPartInfo(p),
		mf:        newMfunc(fn.Name),
		plan:      plan,
		intHome:   make(map[ir.VReg]int),
		fpHome:    make(map[ir.VReg]int),
		fpNeeded:  make(map[ir.VReg]bool),
		intNeeded: make(map[ir.VReg]bool),
	}
	s.mf.line = fn.Line
	// Frame-local array slots occupy the bottom of the frame.
	s.mf.slotOff = make([]int64, len(fn.LocalSlots))
	var off int64
	for i, words := range fn.LocalSlots {
		s.mf.slotOff[i] = off
		off += words * 8
	}
	s.mf.localWords = off / 8

	s.computeNeeds()
	if err := s.emitAll(); err != nil {
		return nil, err
	}
	return s.mf, nil
}

// computeNeeds scans the function and records, per virtual register, which
// register files its consumers read from. The sets mirror exactly the
// intOf/fpOf reads the instruction selector performs, so a definition can
// emit precisely the cross-file moves its uses require.
func (s *selector) computeNeeds() {
	intNeed := func(v ir.VReg) {
		if s.fn.VRegType(v) == ir.I64 {
			s.intNeeded[v] = true
		}
	}
	fpNeed := func(v ir.VReg) {
		if s.fn.VRegType(v) == ir.I64 {
			s.fpNeeded[v] = true
		}
	}
	for _, b := range s.fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				intNeed(in.Args[0])
			case ir.OpStore:
				intNeed(in.Args[1])
				if !in.IsFloat {
					if s.pi.storeValFPa(in) {
						fpNeed(in.Args[0])
					} else {
						intNeed(in.Args[0])
					}
				}
			case ir.OpBr:
				if s.pi.mainFPa(in) {
					fpNeed(in.Args[0])
				} else {
					intNeed(in.Args[0])
				}
			case ir.OpCvtIF:
				intNeed(in.Args[0])
			case ir.OpCall:
				switch in.Sym {
				case "print":
					intNeed(in.Args[0])
				case "printf_":
					// float argument; no integer-file need
				default:
					for j, a := range in.Args {
						if s.fn.VRegType(a) != ir.I64 {
							continue
						}
						if s.plan.FPPassed(in.Sym, j) {
							fpNeed(a)
						} else {
							intNeed(a)
						}
					}
				}
			case ir.OpRet:
				if len(in.Args) == 1 && s.fn.VRegType(in.Args[0]) == ir.I64 {
					intNeed(in.Args[0])
				}
			case ir.OpJmp, ir.OpNop, ir.OpAddrGlobal, ir.OpAddrLocal, ir.OpConst:
				// no register reads
			case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg,
				ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE,
				ir.OpFCmpGT, ir.OpFCmpGE, ir.OpCvtFI:
				// F64 reads only
			default:
				// Integer ALU and copies.
				if s.pi.mainFPa(in) {
					for _, a := range in.Args {
						fpNeed(a)
					}
				} else {
					for _, a := range in.Args {
						intNeed(a)
					}
				}
			}
			// Duplicated instructions re-read their operands from the FP
			// file (except re-loads, which reuse the INT-side address).
			if in.Dst != 0 && s.pi.dupInstr[in.ID] && in.Op != ir.OpLoad {
				for _, a := range in.Args {
					fpNeed(a)
				}
			}
		}
	}
}

func (s *selector) intOf(v ir.VReg) int {
	if r, ok := s.intHome[v]; ok {
		return r
	}
	r := s.mf.newVirt(isa.IntReg)
	s.intHome[v] = r
	return r
}

func (s *selector) fpOf(v ir.VReg) int {
	if r, ok := s.fpHome[v]; ok {
		return r
	}
	r := s.mf.newVirt(isa.FpReg)
	s.fpHome[v] = r
	return r
}

func (s *selector) emit(m minst) {
	if m.line == 0 {
		m.line = s.curLine
		m.irop = s.curIROp
	}
	s.cur.insts = append(s.cur.insts, m)
}

func (s *selector) emitAll() error {
	// Create machine blocks mirroring IR blocks, in the same layout order.
	blockByID := make(map[int]*mblock)
	for _, b := range s.fn.Blocks {
		mb := &mblock{id: b.ID}
		for _, sc := range b.Succs {
			mb.succs = append(mb.succs, sc.ID)
		}
		s.mf.blocks = append(s.mf.blocks, mb)
		blockByID[b.ID] = mb
	}
	// Epilogue block: all returns jump here.
	epi := &mblock{id: epilogueBlockID}
	s.mf.blocks = append(s.mf.blocks, epi)

	// Parameter intake in the entry block, attributed to the declaration.
	s.cur = blockByID[s.fn.Entry.ID]
	s.curLine, s.curIROp = s.fn.Line, 0
	intIdx, fpIdx := 0, 0
	for i, pv := range s.fn.Params {
		if s.fn.VRegType(pv) == ir.F64 {
			if fpIdx >= maxRegArgs {
				return fmt.Errorf("codegen: %s: too many float parameters", s.fn.Name)
			}
			s.emit(minst{op: isa.FMOV, rd: s.fpOf(pv), rs: int(isa.FRegA0) + fpIdx, rt: noReg, target: -1})
			fpIdx++
			continue
		}
		if s.plan.FPPassed(s.fn.Name, i) {
			// §6.6 interprocedural extension: the integer argument arrives
			// in an FP register; move it within the FP file and copy to the
			// integer file only if some consumer needs it there.
			if fpIdx >= maxRegArgs {
				return fmt.Errorf("codegen: %s: too many FP-passed parameters", s.fn.Name)
			}
			s.emit(minst{op: isa.MOVA, rd: s.fpOf(pv), rs: int(isa.FRegA0) + fpIdx, rt: noReg, target: -1})
			fpIdx++
			if s.intNeeded[pv] {
				s.emit(minst{op: isa.CP2INT, rd: s.intOf(pv), rs: s.fpOf(pv), rt: noReg, target: -1})
			}
			continue
		}
		if intIdx >= maxRegArgs {
			return fmt.Errorf("codegen: %s: too many integer parameters", s.fn.Name)
		}
		s.emit(minst{op: isa.MOV, rd: s.intOf(pv), rs: isa.RegA0 + intIdx, rt: noReg, target: -1})
		intIdx++
		if s.pi.paramCopy[i] || s.fpNeeded[pv] {
			s.emit(minst{op: isa.CP2FP, rd: s.fpOf(pv), rs: s.intOf(pv), rt: noReg, target: -1})
		}
	}

	for _, b := range s.fn.Blocks {
		s.cur = blockByID[b.ID]
		for _, in := range b.Instrs {
			if err := s.instr(in, b); err != nil {
				return err
			}
		}
	}

	// Epilogue body (frame teardown) is synthesized during assembly; here
	// it only carries the return jump.
	epi.insts = append(epi.insts, minst{op: isa.JR, rd: noReg, rs: isa.RegRA, rt: noReg, target: -1, line: s.fn.Line})
	return nil
}

func (s *selector) instr(in *ir.Instr, b *ir.Block) error {
	s.curLine, s.curIROp = in.Line, uint8(in.Op)
	fpa := s.pi.mainFPa(in)
	switch in.Op {
	case ir.OpNop:
		return nil

	case ir.OpConst:
		if in.IsFloat {
			s.emit(minst{op: isa.LID, rd: s.fpOf(in.Dst), rs: noReg, rt: noReg, fimm: in.FImm, target: -1})
			return nil
		}
		if fpa {
			s.emit(minst{op: isa.LIA, rd: s.fpOf(in.Dst), rs: noReg, rt: noReg, imm: in.Imm, target: -1})
			s.afterFpaDef(in)
			return nil
		}
		s.emit(minst{op: isa.LI, rd: s.intOf(in.Dst), rs: noReg, rt: noReg, imm: in.Imm, target: -1})
		s.afterIntDef(in)
		return nil

	case ir.OpCopy:
		if s.fn.VRegType(in.Dst) == ir.F64 {
			s.emit(minst{op: isa.FMOV, rd: s.fpOf(in.Dst), rs: s.fpOf(in.Args[0]), rt: noReg, target: -1})
			return nil
		}
		if fpa {
			s.emit(minst{op: isa.MOVA, rd: s.fpOf(in.Dst), rs: s.fpArg(in.Args[0]), rt: noReg, target: -1})
			s.afterFpaDef(in)
			return nil
		}
		s.emit(minst{op: isa.MOV, rd: s.intOf(in.Dst), rs: s.intOf(in.Args[0]), rt: noReg, target: -1})
		s.afterIntDef(in)
		return nil

	case ir.OpAddrGlobal:
		if fpa {
			s.emit(minst{op: isa.LIA, rd: s.fpOf(in.Dst), rs: noReg, rt: noReg, sym: in.Sym, imm: in.Imm, target: -1})
			s.afterFpaDef(in)
			return nil
		}
		s.emit(minst{op: isa.LI, rd: s.intOf(in.Dst), rs: noReg, rt: noReg, sym: in.Sym, imm: in.Imm, target: -1})
		s.afterIntDef(in)
		return nil

	case ir.OpAddrLocal:
		// SP + frame offset of the slot. Local array slots occupy the
		// bottom of the frame, so the offset is final at selection time.
		tmp := s.mf.newVirt(isa.IntReg)
		s.emit(minst{op: isa.LI, rd: tmp, rs: noReg, rt: noReg, imm: s.mf.slotOff[in.Imm], target: -1})
		s.emit(minst{op: isa.ADD, rd: s.intOf(in.Dst), rs: isa.RegSP, rt: tmp, target: -1})
		s.afterIntDef(in)
		return nil

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNor,
		ir.OpShl, ir.OpShrA, ir.OpShrL,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		rt2 := func(intSide bool) int {
			if in.ImmArg {
				return noReg
			}
			if intSide {
				return s.intOf(in.Args[1])
			}
			return s.fpArg(in.Args[1])
		}
		if fpa {
			op, ok := fpaALU[in.Op]
			if !ok {
				return fmt.Errorf("codegen: %s: op %s assigned to FPa but unsupported there", s.fn.Name, in.Op)
			}
			s.emit(minst{op: op, rd: s.fpOf(in.Dst), rs: s.fpArg(in.Args[0]), rt: rt2(false), imm: in.Imm, useImm: in.ImmArg, target: -1})
			s.afterFpaDef(in)
			return nil
		}
		s.emit(minst{op: intALU[in.Op], rd: s.intOf(in.Dst), rs: s.intOf(in.Args[0]), rt: rt2(true), imm: in.Imm, useImm: in.ImmArg, target: -1})
		s.afterIntDef(in)
		return nil

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		s.emit(minst{op: floatALU[in.Op], rd: s.fpOf(in.Dst), rs: s.fpOf(in.Args[0]), rt: s.fpOf(in.Args[1]), target: -1})
		return nil
	case ir.OpFNeg:
		s.emit(minst{op: isa.FNEG, rd: s.fpOf(in.Dst), rs: s.fpOf(in.Args[0]), rt: noReg, target: -1})
		return nil

	case ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		// The comparison executes in the FP subsystem and delivers an
		// integer truth value; codegen materializes it in the integer file
		// and mirrors it to the FP file when FPa consumers exist.
		s.emit(minst{op: floatALU[in.Op], rd: s.intOf(in.Dst), rs: s.fpOf(in.Args[0]), rt: s.fpOf(in.Args[1]), target: -1})
		s.mirrorFixedDef(in.Dst)
		return nil

	case ir.OpCvtIF:
		s.emit(minst{op: isa.CVTIF, rd: s.fpOf(in.Dst), rs: s.intOf(in.Args[0]), rt: noReg, target: -1})
		return nil
	case ir.OpCvtFI:
		s.emit(minst{op: isa.CVTFI, rd: s.intOf(in.Dst), rs: s.fpOf(in.Args[0]), rt: noReg, target: -1})
		s.mirrorFixedDef(in.Dst)
		return nil

	case ir.OpLoad:
		base := s.intOf(in.Args[0])
		if in.IsFloat {
			s.emit(minst{op: isa.LD, rd: s.fpOf(in.Dst), rs: base, rt: noReg, imm: in.Imm, target: -1})
			return nil
		}
		if s.pi.loadValFPa(in) {
			s.emit(minst{op: isa.LWFA, rd: s.fpOf(in.Dst), rs: base, rt: noReg, imm: in.Imm, target: -1})
			// A fixed-FP consumer (CvtIF) may still read the value from
			// the integer file even though no partitionable INT node does.
			s.afterFpaDef(in)
			return nil
		}
		s.emit(minst{op: isa.LW, rd: s.intOf(in.Dst), rs: base, rt: noReg, imm: in.Imm, target: -1})
		// Duplicated load value: re-load into the FP file (the duplicate
		// uses the INT-side address, where backward slices stop).
		if s.pi.dupInstr[in.ID] {
			s.emit(minst{op: isa.LWFA, rd: s.fpOf(in.Dst), rs: base, rt: noReg, imm: in.Imm, target: -1, isDup: true})
		} else if s.pi.copyInstr[in.ID] {
			s.emit(minst{op: isa.CP2FP, rd: s.fpOf(in.Dst), rs: s.intOf(in.Dst), rt: noReg, target: -1})
		}
		return nil

	case ir.OpStore:
		base := s.intOf(in.Args[1])
		if in.IsFloat {
			s.emit(minst{op: isa.SD, rd: noReg, rs: s.fpOf(in.Args[0]), rt: base, imm: in.Imm, target: -1})
			return nil
		}
		if s.pi.storeValFPa(in) {
			s.emit(minst{op: isa.SWFA, rd: noReg, rs: s.fpArg(in.Args[0]), rt: base, imm: in.Imm, target: -1})
			return nil
		}
		s.emit(minst{op: isa.SW, rd: noReg, rs: s.intOf(in.Args[0]), rt: base, imm: in.Imm, target: -1})
		return nil

	case ir.OpCall:
		return s.call(in)

	case ir.OpBr:
		cond := in.Args[0]
		if fpa {
			s.emit(minst{op: isa.BNEZA, rd: noReg, rs: s.fpArg(cond), rt: noReg, target: b.Succs[0].ID})
		} else {
			s.emit(minst{op: isa.BNEZ, rd: noReg, rs: s.intOf(cond), rt: noReg, target: b.Succs[0].ID})
		}
		s.emit(minst{op: isa.J, rd: noReg, rs: noReg, rt: noReg, target: b.Succs[1].ID})
		return nil

	case ir.OpJmp:
		s.emit(minst{op: isa.J, rd: noReg, rs: noReg, rt: noReg, target: b.Succs[0].ID})
		return nil

	case ir.OpRet:
		if len(in.Args) == 1 {
			if s.fn.VRegType(in.Args[0]) == ir.F64 {
				s.emit(minst{op: isa.FMOV, rd: int(isa.FRegV0), rs: s.fpOf(in.Args[0]), rt: noReg, target: -1})
			} else {
				s.emit(minst{op: isa.MOV, rd: isa.RegV0, rs: s.intOf(in.Args[0]), rt: noReg, target: -1})
			}
		}
		s.emit(minst{op: isa.J, rd: noReg, rs: noReg, rt: noReg, target: epilogueBlockID})
		return nil
	}
	return fmt.Errorf("codegen: %s: unhandled IR op %s", s.fn.Name, in.Op)
}

// fpArg returns the FP-file home of an integer value consumed by an FPa
// instruction.
func (s *selector) fpArg(v ir.VReg) int { return s.fpOf(v) }

// afterIntDef emits the partition-mandated INT→FPa transfer for an integer
// definition executed in INT.
func (s *selector) afterIntDef(in *ir.Instr) {
	if s.pi.copyInstr[in.ID] {
		s.emit(minst{op: isa.CP2FP, rd: s.fpOf(in.Dst), rs: s.intOf(in.Dst), rt: noReg, target: -1})
		return
	}
	if s.pi.dupInstr[in.ID] {
		s.emitDup(in)
	}
}

// emitDup re-executes an INT definition on the FPa side, reading FP-file
// homes of its operands.
func (s *selector) emitDup(in *ir.Instr) {
	switch in.Op {
	case ir.OpConst:
		s.emit(minst{op: isa.LIA, rd: s.fpOf(in.Dst), rs: noReg, rt: noReg, imm: in.Imm, target: -1, isDup: true})
	case ir.OpAddrGlobal:
		s.emit(minst{op: isa.LIA, rd: s.fpOf(in.Dst), rs: noReg, rt: noReg, sym: in.Sym, imm: in.Imm, target: -1, isDup: true})
	case ir.OpCopy:
		s.emit(minst{op: isa.MOVA, rd: s.fpOf(in.Dst), rs: s.fpOf(in.Args[0]), rt: noReg, target: -1, isDup: true})
	default:
		op, ok := fpaALU[in.Op]
		if !ok {
			// Cannot happen for a validated partition; fall back to a copy.
			s.emit(minst{op: isa.CP2FP, rd: s.fpOf(in.Dst), rs: s.intOf(in.Dst), rt: noReg, target: -1})
			return
		}
		rt := noReg
		if !in.ImmArg {
			rt = s.fpOf(in.Args[1])
		}
		s.emit(minst{op: op, rd: s.fpOf(in.Dst), rs: s.fpOf(in.Args[0]), rt: rt, imm: in.Imm, useImm: in.ImmArg, target: -1, isDup: true})
	}
}

// afterFpaDef emits the FPa→INT copy for values some integer-file consumer
// actually reads (calling-convention positions, fixed-FP consumers). With
// the interprocedural FP-argument extension, arguments that travel in FP
// registers stop generating integer-file needs, so the §6.4 out-copy
// disappears here automatically.
func (s *selector) afterFpaDef(in *ir.Instr) {
	if s.intNeeded[in.Dst] {
		s.emit(minst{op: isa.CP2INT, rd: s.intOf(in.Dst), rs: s.fpOf(in.Dst), rt: noReg, target: -1})
	}
}

// mirrorFixedDef mirrors an integer value produced by a fixed-FP
// instruction into the FP file when FPa consumers need it.
func (s *selector) mirrorFixedDef(v ir.VReg) {
	if s.fpNeeded[v] {
		s.emit(minst{op: isa.CP2FP, rd: s.fpOf(v), rs: s.intOf(v), rt: noReg, target: -1})
	}
}

func (s *selector) call(in *ir.Instr) error {
	// Builtin traps.
	switch in.Sym {
	case "print":
		s.emit(minst{op: isa.PRNI, rd: noReg, rs: s.intOf(in.Args[0]), rt: noReg, target: -1})
		return nil
	case "printf_":
		s.emit(minst{op: isa.PRNF, rd: noReg, rs: s.fpOf(in.Args[0]), rt: noReg, target: -1})
		return nil
	}
	intIdx, fpIdx := 0, 0
	for j, a := range in.Args {
		if s.fn.VRegType(a) == ir.F64 {
			if fpIdx >= maxRegArgs {
				return fmt.Errorf("codegen: call %s: too many float arguments", in.Sym)
			}
			s.emit(minst{op: isa.FMOV, rd: int(isa.FRegA0) + fpIdx, rs: s.fpOf(a), rt: noReg, target: -1})
			fpIdx++
			continue
		}
		if s.plan.FPPassed(in.Sym, j) {
			if fpIdx >= maxRegArgs {
				return fmt.Errorf("codegen: call %s: too many FP-passed arguments", in.Sym)
			}
			s.emit(minst{op: isa.MOVA, rd: int(isa.FRegA0) + fpIdx, rs: s.fpOf(a), rt: noReg, target: -1})
			fpIdx++
			continue
		}
		if intIdx >= maxRegArgs {
			return fmt.Errorf("codegen: call %s: too many integer arguments", in.Sym)
		}
		s.emit(minst{op: isa.MOV, rd: isa.RegA0 + intIdx, rs: s.intOf(a), rt: noReg, target: -1})
		intIdx++
	}
	s.emit(minst{op: isa.JAL, rd: noReg, rs: noReg, rt: noReg, sym: in.Sym, target: -1})
	if in.Dst != 0 {
		if s.fn.VRegType(in.Dst) == ir.F64 {
			s.emit(minst{op: isa.FMOV, rd: s.fpOf(in.Dst), rs: int(isa.FRegV0), rt: noReg, target: -1})
		} else {
			s.emit(minst{op: isa.MOV, rd: s.intOf(in.Dst), rs: isa.RegV0, rt: noReg, target: -1})
			// Call results copied into FPa per the partition.
			s.afterIntDef(in)
			if s.fpNeeded[in.Dst] && !s.pi.copyInstr[in.ID] && !s.pi.dupInstr[in.ID] {
				s.emit(minst{op: isa.CP2FP, rd: s.fpOf(in.Dst), rs: s.intOf(in.Dst), rt: noReg, target: -1})
			}
		}
	}
	return nil
}
