package codegen_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/fperr"
	"fpint/internal/interp"
	"fpint/internal/sim"
)

const ladderSrc = `
int reg_tick[66];
int deleted;
void delete_equiv_reg(int regno) { deleted += regno; }
int main() {
	for (int i = 0; i < 66; i++) reg_tick[i] = i - 3;
	for (int regno = 0; regno < 66; regno++) {
		if (reg_tick[regno] & 1) {
			delete_equiv_reg(regno);
			reg_tick[regno]++;
		}
	}
	return deleted;
}`

// corruptPartition plants a verifier-detectable partitioner bug: a pinned
// INT node (a load/store address, call, or return) assigned to FPa.
func corruptPartition(part *core.Partition) bool {
	for _, n := range part.G.Nodes {
		if n.Class == core.ClassPinInt {
			part.Assign[n.ID] = core.SubFPa
			return true
		}
	}
	return false
}

// The degradation-ladder acceptance test: inject a partitioner fault into
// the advanced scheme, observe that it fails verification, that basic is
// selected instead, and that the degraded program's output still matches
// the reference interpreter.
func TestLadderFallsBackToBasicOnInjectedFault(t *testing.T) {
	mod, prof, err := codegen.FrontendPipeline(ladderSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	res, err := codegen.CompileWithFallback(mod, codegen.Options{
		Scheme:  codegen.SchemeAdvanced,
		Profile: prof,
		PartitionHook: func(fn string, part *core.Partition) {
			if part.Scheme == "advanced" && fn == "main" {
				corrupted = corruptPartition(part) || corrupted
			}
		},
	})
	if err != nil {
		t.Fatalf("ladder crashed instead of degrading: %v", err)
	}
	if !corrupted {
		t.Fatal("fault was never injected; test is vacuous")
	}
	if res.Fallback == nil {
		t.Fatal("corrupt advanced partition compiled without fallback")
	}
	if res.Fallback.Requested != codegen.SchemeAdvanced || res.Fallback.Used != codegen.SchemeBasic {
		t.Fatalf("fallback %s→%s, want advanced→basic", res.Fallback.Requested, res.Fallback.Used)
	}
	if len(res.Fallback.Causes) != 1 || !strings.Contains(res.Fallback.Causes[0], "partition verifier") {
		t.Fatalf("fallback cause does not name the verifier: %v", res.Fallback.Causes)
	}
	// The fallback must be visible in the partition audit trail.
	noted := false
	for _, p := range res.Partitions {
		if p != nil && p.Audit != nil {
			for _, note := range p.Audit.Notes {
				if strings.Contains(note, "degraded") {
					noted = true
				}
			}
		}
	}
	if !noted {
		t.Error("fallback not recorded in any partition audit trail")
	}
	// Degraded success maps to exit code 4.
	derr := res.DegradedError()
	if fperr.ClassOf(derr) != fperr.ClassDegraded || fperr.ExitCode(derr) != 4 {
		t.Fatalf("DegradedError class=%v exit=%d, want degraded/4", fperr.ClassOf(derr), fperr.ExitCode(derr))
	}
	// And the degraded program is still correct: output matches interp.
	out, err := sim.New(res.Prog).Run()
	if err != nil {
		t.Fatalf("degraded program run: %v", err)
	}
	if out.Ret != ref.Ret || out.Output != ref.Output {
		t.Fatalf("degraded program diverged: ret %d vs %d", out.Ret, ref.Ret)
	}
}

// A panicking partitioner stage must be recovered and degraded, not crash
// the toolchain.
func TestLadderRecoversFromPartitionerPanic(t *testing.T) {
	mod, prof, err := codegen.FrontendPipeline(ladderSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.CompileWithFallback(mod, codegen.Options{
		Scheme:  codegen.SchemeAdvanced,
		Profile: prof,
		PartitionHook: func(fn string, part *core.Partition) {
			if part.Scheme == "advanced" {
				panic("synthetic partitioner bug")
			}
		},
	})
	if err != nil {
		t.Fatalf("panic escaped the ladder: %v", err)
	}
	if res.Fallback == nil || res.Fallback.Used != codegen.SchemeBasic {
		t.Fatalf("expected fallback to basic after panic, got %+v", res.Fallback)
	}
	if !strings.Contains(strings.Join(res.Fallback.Causes, " "), "panicked") {
		t.Fatalf("cause does not mention the panic: %v", res.Fallback.Causes)
	}
}

// When every partitioning scheme is broken, the ladder lands on
// conventional INT-only compilation and the program is still correct.
func TestLadderFallsToConventional(t *testing.T) {
	mod, prof, err := codegen.FrontendPipeline(ladderSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.CompileWithFallback(mod, codegen.Options{
		Scheme:  codegen.SchemeAdvanced,
		Profile: prof,
		PartitionHook: func(fn string, part *core.Partition) {
			if fn == "main" {
				corruptPartition(part) // every scheme's partition is corrupted
			}
		},
	})
	if err != nil {
		t.Fatalf("ladder crashed: %v", err)
	}
	if res.Fallback == nil || res.Fallback.Used != codegen.SchemeNone {
		t.Fatalf("expected fallback to conventional, got %+v", res.Fallback)
	}
	if len(res.Fallback.Causes) != 2 {
		t.Fatalf("expected advanced and basic causes, got %v", res.Fallback.Causes)
	}
	out, err := sim.New(res.Prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret != ref.Ret {
		t.Fatalf("conventional fallback diverged: %d vs %d", out.Ret, ref.Ret)
	}
}

// A healthy compile must not degrade, and its DegradedError must be nil
// (exit code 0).
func TestLadderNoFallbackWhenHealthy(t *testing.T) {
	res, _, err := codegen.CompileSourceWithFallback(ladderSrc, codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback != nil {
		t.Fatalf("healthy compile degraded: %+v", res.Fallback)
	}
	if derr := res.DegradedError(); derr != nil || fperr.ExitCode(derr) != 0 {
		t.Fatalf("healthy compile reports degradation: %v", derr)
	}
}

// Frontend failures are input errors (exit 2), not internal ones.
func TestLadderFrontendErrorIsInputClass(t *testing.T) {
	_, _, err := codegen.CompileSourceWithFallback("int main( {", codegen.Options{Scheme: codegen.SchemeAdvanced})
	if err == nil {
		t.Fatal("bad program accepted")
	}
	if fperr.ClassOf(err) != fperr.ClassInput || fperr.ExitCode(err) != 2 {
		t.Fatalf("frontend error class=%v exit=%d, want input/2", fperr.ClassOf(err), fperr.ExitCode(err))
	}
}

// Every testdata program must pass the static partition verifier under
// every partitioning scheme: a healthy toolchain never degrades on the
// checked-in corpus. This is the CI verifier stage.
func TestVerifierOverTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []codegen.Options{
			{Scheme: codegen.SchemeBasic},
			{Scheme: codegen.SchemeAdvanced},
			{Scheme: codegen.SchemeBalanced},
			{Scheme: codegen.SchemeBasic, Analysis: true},
			{Scheme: codegen.SchemeAdvanced, Analysis: true},
		} {
			res, _, err := codegen.CompileSourceWithFallback(string(data), opts)
			if err != nil {
				t.Errorf("%s/%v: %v", filepath.Base(file), opts.Scheme, err)
				continue
			}
			if res.Fallback != nil {
				t.Errorf("%s/%v (analysis=%v): verifier rejected a healthy partition: %v",
					filepath.Base(file), opts.Scheme, opts.Analysis, res.Fallback.Causes)
			}
		}
	}
}

// The ladder for each requested scheme always ends at conventional
// compilation, and the balanced ladder passes through advanced.
func TestLadderShape(t *testing.T) {
	for _, scheme := range []codegen.Scheme{
		codegen.SchemeNone, codegen.SchemeBasic, codegen.SchemeAdvanced, codegen.SchemeBalanced,
	} {
		res, _, err := codegen.CompileSourceWithFallback(ladderSrc, codegen.Options{Scheme: scheme})
		if err != nil || res.Fallback != nil {
			t.Fatalf("%v: healthy ladder compile failed: err=%v fallback=%+v", scheme, err, res.Fallback)
		}
	}
}
