package codegen

import (
	"encoding/json"
	"io"

	"fpint/internal/core"
	"fpint/internal/ir"
	"fpint/internal/obs"
)

// CompileReport is the machine-readable compile-report document shared by
// `fpic -json` and the fpintd daemon's compile/partition responses: the
// scheme that produced the code, each function's code-size and spill stats
// plus its partition audit trail, the pass log, and the degradation-ladder
// fallback record when the requested scheme failed. The JSON shape is
// pinned by the fpic golden tests; both producers emit the identical
// document.
type CompileReport struct {
	Scheme   string                        `json:"scheme"`
	Fallback *Fallback                     `json:"fallback,omitempty"`
	Funcs    map[string]*CompileFuncReport `json:"funcs"`
	Passes   []obs.PassRecord              `json:"passes,omitempty"`
}

// CompileFuncReport is one function's row in the compile report.
type CompileFuncReport struct {
	StaticInsts int         `json:"staticInsts"`
	SpillSlots  int         `json:"spillSlots"`
	SpillLoads  int         `json:"spillLoads"`
	SpillStores int         `json:"spillStores"`
	Audit       *core.Audit `json:"audit,omitempty"`
}

// BuildCompileReport assembles the report for a compiled module. The
// scheme string names the *requested* scheme; res.Fallback records the
// rung that actually produced the code when they differ. A nil plog omits
// the pass section.
func BuildCompileReport(scheme string, fns []*ir.Func, res *Result, plog *obs.PassLog) *CompileReport {
	doc := &CompileReport{Scheme: scheme, Fallback: res.Fallback, Funcs: make(map[string]*CompileFuncReport)}
	for _, fn := range fns {
		cf := &CompileFuncReport{}
		if st := res.Stats[fn.Name]; st != nil {
			cf.StaticInsts = st.StaticInsts
			cf.SpillSlots = st.SpillSlots
			cf.SpillLoads = st.SpillLoads
			cf.SpillStores = st.SpillStores
		}
		if p := res.Partitions[fn.Name]; p != nil {
			cf.Audit = p.Audit
		}
		doc.Funcs[fn.Name] = cf
	}
	if plog != nil {
		doc.Passes = plog.Records
	}
	return doc
}

// WriteJSON encodes the report with two-space indentation; map keys are
// marshalled sorted, so the document is deterministic.
func (r *CompileReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
