package codegen

import (
	"fmt"
	"math"
	"time"

	"fpint/internal/analysis"
	"fpint/internal/core"
	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/isa"
	"fpint/internal/obs"
)

// Scheme selects the partitioning scheme applied during compilation.
type Scheme int

// Schemes.
const (
	SchemeNone     Scheme = iota // conventional compilation (baseline)
	SchemeBasic                  // §5 basic partitioning
	SchemeAdvanced               // §6 advanced partitioning
	SchemeBalanced               // §6.6 extension: advanced + load-balance cap
	SchemeOptimal                // exact branch-and-bound partition oracle
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeBasic:
		return "basic"
	case SchemeAdvanced:
		return "advanced"
	case SchemeBalanced:
		return "balanced"
	case SchemeOptimal:
		return "optimal"
	}
	return "conventional"
}

// Options configures compilation.
type Options struct {
	Scheme  Scheme
	Cost    core.CostParams
	Profile *interp.Profile // may be nil (probabilistic estimates are used)

	// MaxFPaFraction caps the FPa partition's estimated dynamic weight for
	// SchemeBalanced (default 0.5 when unset).
	MaxFPaFraction float64

	// Analysis enables the static-analysis sharpened partitioning: the
	// alias and value-range analyses run before graph construction and
	// their address oracle unpins load/store address nodes proven to be
	// in-bounds accesses to known objects, letting whole address-compute
	// slices become offload candidates. Every unpin is recorded in the
	// partition audit trail and re-checked by the partition verifier.
	Analysis bool

	// InterprocFPArgs enables the §6.6 interprocedural extension: integer
	// arguments whose producers are FPa-resident at every call site of a
	// callee that wants them in FPa are passed in FP registers, collapsing
	// the caller's FPa→INT copy and the callee's INT→FPa copy into one
	// FP-file move.
	InterprocFPArgs bool

	// PassLog, when non-nil, receives one record per backend stage
	// (partition, select, regalloc) per function, with wall time and the
	// machine-instruction counts produced.
	PassLog *obs.PassLog

	// Frontend bounds the frontend's self-profile interpreter run (see
	// FrontendBudget). The zero value keeps the interpreter defaults; a
	// service compiling untrusted source sets a step budget and a
	// cancellation hook so an adversarial program cannot pin a worker in
	// the profile stage.
	Frontend FrontendBudget

	// PartitionHook, when non-nil, runs after each function's partition
	// has been computed and validated and may mutate it in place. It
	// exists for the differential-testing subsystem to inject known-bad
	// partitions (fault injection, bypassing Validate); production callers
	// leave it nil.
	PartitionHook func(fn string, part *core.Partition)

	// Oracle bounds SchemeOptimal's exact search per function (zero values
	// select core.DefaultOracleLimits). Components that exceed the limits
	// fall back to the greedy assignment and are reported degraded in
	// Result.Oracle.
	Oracle core.OracleLimits
}

// FuncStat records per-function compilation statistics.
type FuncStat struct {
	StaticInsts int
	SpillSlots  int
	SpillLoads  int
	SpillStores int
}

// Result is a compiled program plus metadata.
type Result struct {
	Prog       *isa.Program
	Partitions map[string]*core.Partition // nil entries under SchemeNone
	Stats      map[string]*FuncStat

	// Fallback is set by CompileWithFallback when the requested scheme
	// failed and a simpler rung of the degradation ladder produced this
	// result; nil for a direct compile.
	Fallback *Fallback

	// Oracle holds the per-function greedy-vs-optimal gap reports when the
	// compile ran SchemeOptimal; nil otherwise.
	Oracle map[string]*core.OracleReport
}

// Compile lowers an optimized IR module to an executable program, applying
// the selected partitioning scheme per function.
func Compile(mod *ir.Module, opts Options) (*Result, error) {
	res := &Result{
		Partitions: make(map[string]*core.Partition),
		Stats:      make(map[string]*FuncStat),
	}
	prog := &isa.Program{
		FuncEntry:  make(map[string]int),
		GlobalAddr: make(map[string]int64),
		DataWords:  make(map[int64]uint64),
	}
	res.Prog = prog

	// Data segment layout (byte address 0 is kept unused, matching the IR
	// interpreter so functional results can be cross-checked).
	addr := int64(8)
	for _, g := range mod.Globals {
		prog.GlobalAddr[g.Name] = addr
		for i, v := range g.InitInt {
			prog.DataWords[addr+int64(i)*8] = uint64(v)
		}
		for i, v := range g.InitFlt {
			prog.DataWords[addr+int64(i)*8] = math.Float64bits(v)
		}
		addr += g.Words * 8
	}
	prog.DataTop = addr

	// Start stub.
	prog.Insts = append(prog.Insts,
		isa.Inst{Op: isa.JAL, Sym: "main"},
		isa.Inst{Op: isa.HALT},
	)
	prog.FuncOf = append(prog.FuncOf, "_start", "_start")

	type patch struct {
		idx int
		sym string
	}
	callPatches := []patch{{idx: 0, sym: "main"}}

	// Phase 1: partition every function (the interprocedural argument plan
	// needs all partitions before any code is selected).
	var facts *analysis.Facts
	if opts.Analysis && opts.Scheme != SchemeNone {
		facts = analysis.AnalyzeModule(mod)
	}
	graphs := make(map[string]*core.Graph)
	// oracleMemo caches solved components across the module's functions by
	// structural signature (SchemeOptimal only).
	var oracleMemo *core.OracleMemo
	for _, fn := range mod.Funcs {
		var part *core.Partition
		if opts.Scheme != SchemeNone {
			partStart := time.Now()
			var oracle core.AddrOracle
			if facts != nil {
				if ff := facts.Funcs[fn.Name]; ff != nil {
					oracle = ff
				}
			}
			g := core.BuildGraphWithOracle(fn, opts.Profile, oracle)
			graphs[fn.Name] = g
			switch opts.Scheme {
			case SchemeBasic:
				part = core.BasicPartition(g)
			case SchemeAdvanced:
				part = core.AdvancedPartition(g, opts.Cost)
			case SchemeBalanced:
				frac := opts.MaxFPaFraction
				if frac == 0 {
					frac = 0.5
				}
				part = core.BalancedPartition(g, opts.Cost, frac)
			case SchemeOptimal:
				if oracleMemo == nil {
					oracleMemo = core.NewOracleMemo()
				}
				var rep *core.OracleReport
				part, rep = core.OptimalPartition(g, opts.Cost, opts.Oracle, oracleMemo)
				if res.Oracle == nil {
					res.Oracle = make(map[string]*core.OracleReport)
				}
				res.Oracle[fn.Name] = rep
			}
			if err := part.Validate(); err != nil {
				return nil, fmt.Errorf("codegen: partition invalid: %v", err)
			}
			if opts.PartitionHook != nil {
				opts.PartitionHook(fn.Name, part)
			}
			opts.PassLog.Add("partition", fn.Name, time.Since(partStart).Nanoseconds(),
				len(g.Nodes), len(g.Nodes))
		}
		res.Partitions[fn.Name] = part
	}

	var plan *FPArgPlan
	if opts.InterprocFPArgs && opts.Scheme != SchemeNone && opts.Scheme != SchemeBasic {
		plan = planFPArgs(mod, graphs, res.Partitions)
	}

	// Phase 2: select, allocate, and lower each function.
	for _, fn := range mod.Funcs {
		part := res.Partitions[fn.Name]

		selStart := time.Now()
		mf, err := selectFunc(fn, part, plan)
		if err != nil {
			return nil, err
		}
		opts.PassLog.Add("select", fn.Name, time.Since(selStart).Nanoseconds(),
			countFuncInstrs(fn), countMInstrs(mf))

		raStart := time.Now()
		ra := regalloc(mf)
		addFrame(mf, ra)
		opts.PassLog.Add("regalloc", fn.Name, time.Since(raStart).Nanoseconds(), 0, countMInstrs(mf))

		// Lower to flat instructions with block layout and fallthrough
		// elision.
		base := len(prog.Insts)
		prog.FuncEntry[fn.Name] = base
		blockIdx := make(map[int]int) // block id -> instruction index
		// First pass: compute start offsets assuming no elision; second
		// pass emits with elision of jumps to the immediately next block.
		var lowered []isa.Inst
		pending := 0
		startOf := make(map[int]int)
		for bi, b := range mf.blocks {
			startOf[b.id] = pending
			for ii := range b.insts {
				m := &b.insts[ii]
				if m.op == isa.J && m.target != -1 && bi+1 < len(mf.blocks) && mf.blocks[bi+1].id == m.target && ii == len(b.insts)-1 {
					continue // fallthrough
				}
				pending++
			}
		}
		for bi, b := range mf.blocks {
			blockIdx[b.id] = base + startOf[b.id]
			for ii := range b.insts {
				m := &b.insts[ii]
				if m.op == isa.J && m.target != -1 && bi+1 < len(mf.blocks) && mf.blocks[bi+1].id == m.target && ii == len(b.insts)-1 {
					continue
				}
				li, err := lowerInst(m)
				if err != nil {
					return nil, fmt.Errorf("codegen: %s: %v", fn.Name, err)
				}
				if m.op == isa.JAL {
					callPatches = append(callPatches, patch{idx: len(prog.Insts) + len(lowered), sym: m.sym})
				}
				if m.sym != "" && (m.op == isa.LI || m.op == isa.LIA) {
					ga, ok := prog.GlobalAddr[m.sym]
					if !ok {
						return nil, fmt.Errorf("codegen: %s: unknown global %q", fn.Name, m.sym)
					}
					li.Imm += ga
					li.Sym = m.sym
				}
				lowered = append(lowered, li)
			}
		}
		// Resolve intra-function branch targets.
		for i := range lowered {
			in := &lowered[i]
			if isa.IsCondBranch(in.Op) || (in.Op == isa.J && in.Sym == "") {
				tgt, ok := blockIdx[in.Target]
				if !ok {
					return nil, fmt.Errorf("codegen: %s: unresolved branch target %d", fn.Name, in.Target)
				}
				in.Target = tgt
			}
		}
		prog.Insts = append(prog.Insts, lowered...)
		for range lowered {
			prog.FuncOf = append(prog.FuncOf, fn.Name)
		}
		res.Stats[fn.Name] = &FuncStat{
			StaticInsts: len(lowered),
			SpillSlots:  ra.SpillSlots,
			SpillLoads:  ra.SpillLoads,
			SpillStores: ra.SpillStores,
		}
	}

	// Link calls.
	for _, p := range callPatches {
		entry, ok := prog.FuncEntry[p.sym]
		if !ok {
			return nil, fmt.Errorf("codegen: call to undefined function %q", p.sym)
		}
		prog.Insts[p.idx].Target = entry
	}
	return res, nil
}

// lowerInst converts an allocated machine instruction to the packed ISA
// form. Register fields must be physical by now.
func lowerInst(m *minst) (isa.Inst, error) {
	check := func(r int) (uint8, error) {
		if r == noReg {
			return 0, nil
		}
		if r < 0 || r >= 32 {
			return 0, fmt.Errorf("unallocated register %d in %v", r, *m)
		}
		return uint8(r), nil
	}
	rd, err := check(m.rd)
	if err != nil {
		return isa.Inst{}, err
	}
	rs, err := check(m.rs)
	if err != nil {
		return isa.Inst{}, err
	}
	rt, err := check(m.rt)
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Inst{
		Op: m.op, Rd: rd, Rs: rs, Rt: rt,
		Imm: m.imm, FImm: m.fimm, Target: m.target, Sym: m.sym,
		IsDup: m.isDup, UseImm: m.useImm,
		SrcLine: int32(m.line), IROp: m.irop,
	}, nil
}

// addFrame synthesizes the prologue and epilogue:
//
//	frame: [local arrays][spill slots][RA][saved callee regs]
//
// SP is lowered by the frame size on entry and restored on exit. RA is
// always saved (simplicity over leaf-function optimization; identical for
// baseline and partitioned code).
func addFrame(f *mfunc, ra regallocStats) {
	savedBase := (f.localWords + f.spillWords) * 8
	nSaves := int64(1 + len(ra.UsedCalleeInt) + len(ra.UsedCalleeFp))
	frame := savedBase + nSaves*8
	if frame%16 != 0 {
		frame += 16 - frame%16
	}
	f.usedCalleeInt = ra.UsedCalleeInt
	f.usedCalleeFp = ra.UsedCalleeFp

	var pro []minst
	pro = append(pro,
		minst{op: isa.LI, rd: isa.RegK0, rs: noReg, rt: noReg, imm: frame, target: -1},
		minst{op: isa.SUB, rd: isa.RegSP, rs: isa.RegSP, rt: isa.RegK0, target: -1},
		minst{op: isa.SW, rd: noReg, rs: isa.RegRA, rt: isa.RegSP, imm: savedBase, target: -1},
	)
	off := savedBase + 8
	for _, r := range ra.UsedCalleeInt {
		pro = append(pro, minst{op: isa.SW, rd: noReg, rs: r, rt: isa.RegSP, imm: off, target: -1})
		off += 8
	}
	for _, r := range ra.UsedCalleeFp {
		pro = append(pro, minst{op: isa.SD, rd: noReg, rs: r, rt: isa.RegSP, imm: off, target: -1})
		off += 8
	}
	for i := range pro {
		pro[i].line = f.line
	}
	entry := f.blocks[0]
	entry.insts = append(pro, entry.insts...)

	// Epilogue: restore in reverse, bump SP, return (the JR is already the
	// last instruction of the epilogue block).
	var epi []minst
	epi = append(epi, minst{op: isa.LW, rd: isa.RegRA, rs: isa.RegSP, rt: noReg, imm: savedBase, target: -1})
	off = savedBase + 8
	for _, r := range ra.UsedCalleeInt {
		epi = append(epi, minst{op: isa.LW, rd: r, rs: isa.RegSP, rt: noReg, imm: off, target: -1})
		off += 8
	}
	for _, r := range ra.UsedCalleeFp {
		epi = append(epi, minst{op: isa.LD, rd: r, rs: isa.RegSP, rt: noReg, imm: off, target: -1})
		off += 8
	}
	epi = append(epi,
		minst{op: isa.LI, rd: isa.RegK0, rs: noReg, rt: noReg, imm: frame, target: -1},
		minst{op: isa.ADD, rd: isa.RegSP, rs: isa.RegSP, rt: isa.RegK0, target: -1},
	)
	for i := range epi {
		epi[i].line = f.line
	}
	epiBlk := f.blocks[len(f.blocks)-1]
	epiBlk.insts = append(epi, epiBlk.insts...)
}

// countFuncInstrs counts a function's IR instructions.
func countFuncInstrs(fn *ir.Func) int {
	n := 0
	for _, b := range fn.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// countMInstrs counts a machine function's instructions across blocks.
func countMInstrs(mf *mfunc) int {
	n := 0
	for _, b := range mf.blocks {
		n += len(b.insts)
	}
	return n
}

// CompileSource is a convenience used by tests, tools, and examples: it
// runs the full pipeline (parse → check → lower → optimize → profile →
// partition → codegen) on mini-C source text.
func CompileSource(src string, opts Options) (*Result, *ir.Module, error) {
	mod, prof, err := FrontendPipeline(src)
	if err != nil {
		return nil, nil, err
	}
	if opts.Profile == nil {
		opts.Profile = prof
	}
	r, err := Compile(mod, opts)
	return r, mod, err
}
