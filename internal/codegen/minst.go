// Package codegen lowers partitioned IR into the target ISA: instruction
// selection honoring the INT/FPa partition (including copy and duplicate
// insertion), per-register-file linear-scan register allocation with
// spilling (register allocation runs after partitioning, per §7.1), calling
// conventions, and final program assembly.
package codegen

import (
	"fmt"

	"fpint/internal/isa"
)

// noReg marks an unused register field.
const noReg = -1

// Machine registers: 0–31 are physical, 32+ are virtual (per class).
const firstVirtual = 32

// minst is a machine instruction before register allocation: register
// fields are ints so they can hold virtual register numbers.
type minst struct {
	op   isa.Opcode
	rd   int
	rs   int
	rt   int
	imm  int64
	fimm float64
	sym  string
	// target is the IR block ID this control transfer goes to
	// (epilogueBlockID for returns); -1 when not a local branch.
	target int
	// isDup marks FPa duplicates of INT instructions (§7.2 accounting).
	isDup bool
	// useImm marks immediate-form ALU instructions (rt unused, imm is the
	// second operand).
	useImm bool
	// line is the 1-based source line inherited from the IR instruction
	// this was selected from (0 = synthesized); irop is the numeric ir.Op.
	// Both flow into isa.Inst as debug provenance.
	line int
	irop uint8
}

// epilogueBlockID is the pseudo-target of return jumps.
const epilogueBlockID = -2

func (m minst) String() string {
	return fmt.Sprintf("%v rd=%d rs=%d rt=%d imm=%d sym=%q tgt=%d",
		m.op, m.rd, m.rs, m.rt, m.imm, m.sym, m.target)
}

// regClasses returns the register class of each operand field of op.
// Fields that the op does not use are reported as IntReg; defsUses
// determines which fields matter.
func regClasses(op isa.Opcode) (rd, rs, rt isa.RegClass) {
	switch op {
	case isa.LID, isa.FMOV, isa.FNEG:
		return isa.FpReg, isa.FpReg, isa.FpReg
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		return isa.FpReg, isa.FpReg, isa.FpReg
	case isa.FSEQ, isa.FSNE, isa.FSLT, isa.FSLE, isa.FSGT, isa.FSGE:
		return isa.IntReg, isa.FpReg, isa.FpReg
	case isa.CVTIF:
		return isa.FpReg, isa.IntReg, isa.IntReg
	case isa.CVTFI:
		return isa.IntReg, isa.FpReg, isa.FpReg
	case isa.LD, isa.LWFA:
		return isa.FpReg, isa.IntReg, isa.IntReg // dest fp, base int
	case isa.SD, isa.SWFA:
		return isa.IntReg, isa.FpReg, isa.IntReg // src fp, base int
	case isa.PRNF:
		return isa.IntReg, isa.FpReg, isa.IntReg
	case isa.LIA, isa.MOVA, isa.ADDA, isa.SUBA, isa.ANDA, isa.ORA,
		isa.XORA, isa.NORA, isa.SLLA, isa.SRAA, isa.SRLA,
		isa.SEQA, isa.SNEA, isa.SLTA, isa.SLEA, isa.SGTA, isa.SGEA,
		isa.BNEZA:
		return isa.FpReg, isa.FpReg, isa.FpReg
	case isa.CP2FP:
		return isa.FpReg, isa.IntReg, isa.IntReg
	case isa.CP2INT:
		return isa.IntReg, isa.FpReg, isa.FpReg
	}
	return isa.IntReg, isa.IntReg, isa.IntReg
}

// defsUses reports which operand fields op defines and uses:
// dDef — rd is written; sUse/tUse — rs/rt are read.
func defsUses(op isa.Opcode) (dDef, sUse, tUse bool) {
	switch op {
	case isa.NOP, isa.HALT, isa.J:
		return false, false, false
	case isa.JAL:
		return false, false, false // RA def handled as a clobber
	case isa.JR, isa.PRNI, isa.PRNF, isa.BNEZ, isa.BEQZ, isa.BNEZA:
		return false, true, false
	case isa.SW, isa.SD, isa.SWFA:
		return false, true, true // rs = value, rt = base
	case isa.LI, isa.LID, isa.LIA:
		return true, false, false
	case isa.MOV, isa.FMOV, isa.MOVA, isa.FNEG, isa.CVTIF, isa.CVTFI,
		isa.CP2FP, isa.CP2INT, isa.LW, isa.LD, isa.LWFA:
		return true, true, false
	}
	// Three-operand ALU forms.
	return true, true, true
}

// mblock is a machine basic block mirroring an IR block.
type mblock struct {
	id    int // IR block ID (or epilogueBlockID)
	insts []minst
	succs []int // successor block IDs (for liveness)
}

// mfunc is a function in machine IR.
type mfunc struct {
	name       string
	line       int // source line of the function declaration (debug info)
	blocks     []*mblock
	nextVirt   [2]int  // next virtual register per class
	localWords int64   // frame words used by IR local slots
	slotOff    []int64 // byte offset of each IR local slot within the frame

	// Filled by register allocation / assembly.
	spillWords    int64
	usedCalleeInt []int
	usedCalleeFp  []int
}

func newMfunc(name string) *mfunc {
	f := &mfunc{name: name}
	f.nextVirt[isa.IntReg] = firstVirtual
	f.nextVirt[isa.FpReg] = firstVirtual
	return f
}

func (f *mfunc) newVirt(class isa.RegClass) int {
	n := f.nextVirt[class]
	f.nextVirt[class]++
	return n
}
