package codegen_test

import (
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/interp"
	"fpint/internal/isa"
	"fpint/internal/sim"
)

// compileRun compiles and runs under the given scheme, returning results
// and stats.
func compileRun(t *testing.T, src string, scheme codegen.Scheme) (*codegen.Result, *sim.Result) {
	t.Helper()
	res, _, err := codegen.CompileSource(src, codegen.Options{Scheme: scheme})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := sim.New(res.Prog).Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, res.Prog.Disassemble())
	}
	return res, out
}

// TestConstantsRematerializedNotSpilled: a loop that keeps many distinct
// constants live must not allocate spill slots for them — they get
// re-materialized.
func TestConstantsRematerializedNotSpilled(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int a[64];\nint main() {\nint s = 0;\n")
	sb.WriteString("for (int i = 0; i < 64; i++) {\n int v = a[i];\n s += ")
	// 30 distinct large constants (too big a set to keep in registers all
	// at once alongside the loop state).
	for k := 0; k < 30; k++ {
		if k > 0 {
			sb.WriteString(" + ")
		}
		sb.WriteString("((v ^ ")
		sb.WriteString(strings.Repeat("1", 1)) // keep source readable
		sb.WriteString("000")
		sb.WriteByte(byte('0' + k%10))
		sb.WriteByte(byte('0' + k/10))
		sb.WriteString(") & 255)")
	}
	sb.WriteString(";\n}\nreturn s & 1048575;\n}\n")
	src := sb.String()

	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.Compile(mod, codegen.Options{Scheme: codegen.SchemeNone, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.New(res.Prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret != ref.Ret {
		t.Fatalf("ret %d != %d", out.Ret, ref.Ret)
	}
	st := res.Stats["main"]
	if st.SpillSlots > 2 {
		t.Errorf("constants consumed %d spill slots; expected rematerialization", st.SpillSlots)
	}
}

// TestCalleeSavedPreservedAcrossCalls: a value live across a call must
// survive (allocated callee-saved or spilled), even under pressure.
func TestCalleeSavedAcrossCalls(t *testing.T) {
	src := `
int g;
int clobber(int x) {
	int a = x+1; int b = x+2; int c = x+3; int d = x+4;
	int e = x+5; int f = x+6; int h = x+7; int i = x+8;
	g += a+b+c+d+e+f+h+i;
	return g & 1023;
}
int main() {
	int keep1 = 111; int keep2 = 222; int keep3 = 333; int keep4 = 444;
	int keep5 = 555; int keep6 = 666; int keep7 = 777; int keep8 = 888;
	int keep9 = 999; int keepA = 123; int keepB = 456; int keepC = 789;
	int s = 0;
	for (int i = 0; i < 10; i++) {
		s += clobber(i);
		s += keep1 + keep2 + keep3 + keep4 + keep5 + keep6;
		s += keep7 + keep8 + keep9 + keepA + keepB + keepC;
		keep1 += i; keep5 ^= s; keep9 -= i; keepC += s & 7;
	}
	return s & 16777215;
}`
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []codegen.Scheme{codegen.SchemeNone, codegen.SchemeAdvanced} {
		res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.New(res.Prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if out.Ret != ref.Ret {
			t.Fatalf("%v: ret %d != %d", scheme, out.Ret, ref.Ret)
		}
	}
}

// TestNoReservedRegistersAllocated: generated code never assigns computed
// values to the reserved scratch registers outside spill sequences, and
// never writes R0.
func TestReservedRegisterDiscipline(t *testing.T) {
	w := strings.Repeat("x = (x ^ 17) + (x >> 2); y = y + x;\n", 8)
	src := "int main() {\nint x = 5;\nint y = 0;\nfor (int i = 0; i < 50; i++) {\n" + w + "}\nreturn (x ^ y) & 1048575;\n}"
	res, _ := compileRun(t, src, codegen.SchemeAdvanced)
	for i, in := range res.Prog.Insts {
		// Zero register is never a destination of ALU results in our
		// selection (LI/MOV to $0 would be meaningless).
		dDef := in.Op != isa.SW && in.Op != isa.SD && in.Op != isa.SWFA &&
			in.Op != isa.J && in.Op != isa.JAL && in.Op != isa.JR &&
			in.Op != isa.BNEZ && in.Op != isa.BEQZ && in.Op != isa.BNEZA &&
			in.Op != isa.HALT && in.Op != isa.NOP && in.Op != isa.PRNI && in.Op != isa.PRNF
		if dDef && isaIntDest(in.Op) && in.Rd == isa.RegZero {
			t.Errorf("inst %d writes $0: %s", i, in)
		}
	}
}

func isaIntDest(op isa.Opcode) bool {
	switch op {
	case isa.LI, isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM,
		isa.AND, isa.OR, isa.XOR, isa.NOR, isa.SLL, isa.SRA, isa.SRL,
		isa.SEQ, isa.SNE, isa.SLT, isa.SLE, isa.SGT, isa.SGE, isa.LW,
		isa.CP2INT, isa.CVTFI, isa.FSEQ, isa.FSNE, isa.FSLT, isa.FSLE,
		isa.FSGT, isa.FSGE:
		return true
	}
	return false
}

// TestDeepRecursionStackDiscipline: recursive calls with frame-local
// arrays must not corrupt each other's frames.
func TestDeepRecursionFrames(t *testing.T) {
	src := `
int mix(int v[], int n) { return v[0]*3 + v[1]*5 + n; }
int walk(int n) {
	int buf[2];
	buf[0] = n;
	buf[1] = n * 2;
	if (n <= 0) return 0;
	int below = walk(n - 1);
	return mix(buf, below) & 1048575;
}
int main() { return walk(40); }`
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []codegen.Scheme{codegen.SchemeNone, codegen.SchemeBasic, codegen.SchemeAdvanced} {
		res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.New(res.Prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if out.Ret != ref.Ret {
			t.Fatalf("%v: ret %d != %d", scheme, out.Ret, ref.Ret)
		}
	}
}

// TestFloatRegisterPressure exercises the FP-file allocator including
// callee-saved FP registers across calls.
func TestFloatRegisterPressure(t *testing.T) {
	src := `
float acc;
float touch(float x) { acc += x; return x * 0.5; }
int main() {
	float a = 1.0; float b = 2.0; float c = 3.0; float d = 4.0;
	float e = 5.0; float f = 6.0; float g = 7.0; float h = 8.0;
	float s = 0.0;
	for (int i = 0; i < 10; i++) {
		s = s + a + b + c + d + e + f + g + h;
		s = s + touch(s);
		a = a * 1.25; e = e - 0.5;
	}
	return (int) (s * 10.0);
}`
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.Compile(mod, codegen.Options{Scheme: codegen.SchemeAdvanced, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.New(res.Prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret != ref.Ret {
		t.Fatalf("ret %d != %d", out.Ret, ref.Ret)
	}
}
