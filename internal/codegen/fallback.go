package codegen

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"fpint/internal/core"
	"fpint/internal/fperr"
	"fpint/internal/ir"
)

// Fallback records one trip down the degradation ladder: which scheme the
// user asked for, which one actually produced the program, and why each
// abandoned rung failed.
type Fallback struct {
	Requested Scheme
	Used      Scheme
	// Causes holds one entry per abandoned rung, in ladder order.
	Causes []string
}

// MarshalJSON renders schemes by name so the -json audit document is
// readable without the Scheme enum.
func (f *Fallback) MarshalJSON() ([]byte, error) {
	type doc struct {
		Requested string   `json:"requested"`
		Used      string   `json:"used"`
		Causes    []string `json:"causes"`
	}
	return json.Marshal(doc{Requested: f.Requested.String(), Used: f.Used.String(), Causes: f.Causes})
}

// ladder returns the schemes to try, strongest first: each rung removes the
// machinery the previous one depended on, ending at conventional INT-only
// compilation, which has no partitioner to fail.
func ladder(s Scheme) []Scheme {
	switch s {
	case SchemeOptimal:
		return []Scheme{SchemeOptimal, SchemeAdvanced, SchemeBasic, SchemeNone}
	case SchemeBalanced:
		return []Scheme{SchemeBalanced, SchemeAdvanced, SchemeBasic, SchemeNone}
	case SchemeAdvanced:
		return []Scheme{SchemeAdvanced, SchemeBasic, SchemeNone}
	case SchemeBasic:
		return []Scheme{SchemeBasic, SchemeNone}
	}
	return []Scheme{SchemeNone}
}

// compileVerified runs Compile with the static partition verifier armed
// after every function's partition (and after any PartitionHook mutation),
// converting partitioner panics into classified errors instead of crashes.
func compileVerified(mod *ir.Module, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fperr.New(fperr.ClassInternal, "%s scheme panicked: %v", opts.Scheme, r)
		}
	}()
	var verifyErrs []error
	userHook := opts.PartitionHook
	opts.PartitionHook = func(fn string, part *core.Partition) {
		if userHook != nil {
			userHook(fn, part)
		}
		if verr := core.VerifyPartition(part); verr != nil {
			verifyErrs = append(verifyErrs, verr)
		}
	}
	res, err = Compile(mod, opts)
	if err != nil {
		return nil, fperr.Wrap(fperr.ClassInternal, err)
	}
	if len(verifyErrs) > 0 {
		return nil, fperr.Wrap(fperr.ClassInternal, errors.Join(verifyErrs...))
	}
	return res, nil
}

// CompileWithFallback compiles mod down the degradation ladder. The
// requested scheme runs first, checked by the static partition verifier; if
// its partitioner panics or emits a partition violating the paper's
// invariants, the next-simpler scheme is tried — advanced falls back to
// basic, then to conventional INT-only compilation — so a partitioner bug
// degrades performance, never correctness, and never crashes the toolchain.
//
// On fallback, Result.Fallback is set and a note is appended to every
// surviving partition audit; callers that must distinguish degraded success
// (exit code 4) use Result.DegradedError. The returned error is non-nil
// only when every rung — including conventional compilation — failed, and
// is then classified internal.
func CompileWithFallback(mod *ir.Module, opts Options) (*Result, error) {
	requested := opts.Scheme
	var causes []string
	for _, rung := range ladder(requested) {
		opts.Scheme = rung
		res, err := compileVerified(mod, opts)
		if err != nil {
			causes = append(causes, fmt.Sprintf("%s: %v", rung, err))
			continue
		}
		if rung != requested {
			res.Fallback = &Fallback{Requested: requested, Used: rung, Causes: causes}
			note := fmt.Sprintf("degraded: %s scheme failed, compiled with %s instead (%s)",
				requested, rung, strings.Join(causes, "; "))
			for _, p := range res.Partitions {
				if p != nil && p.Audit != nil {
					p.Audit.Notes = append(p.Audit.Notes, note)
				}
			}
		}
		return res, nil
	}
	return nil, fperr.New(fperr.ClassInternal,
		"every scheme failed, including conventional compilation: %s", strings.Join(causes, "; "))
}

// CompileSourceWithFallback is CompileSource with the degradation ladder:
// frontend failures are input errors; backend failures walk the ladder.
// Frontend stages report to opts.PassLog when one is attached, so a traced
// compile+simulate job carries the full frontend→backend span sequence.
func CompileSourceWithFallback(src string, opts Options) (*Result, *ir.Module, error) {
	mod, prof, err := FrontendPipelineBudgeted(src, opts.PassLog, opts.Frontend)
	if err != nil {
		return nil, nil, fperr.Wrap(fperr.ClassInput, err)
	}
	if opts.Profile == nil {
		opts.Profile = prof
	}
	r, err := CompileWithFallback(mod, opts)
	return r, mod, err
}

// DegradedError returns a degraded-class error describing the fallback this
// result took, or nil when the requested scheme succeeded directly. The
// program in the result is correct either way; the error class exists so
// scripts observe silent scheme downgrades (exit code 4).
func (r *Result) DegradedError() error {
	if r == nil {
		return nil
	}
	if r.Fallback != nil {
		return fperr.New(fperr.ClassDegraded, "compiled with %s after %s failed: %s",
			r.Fallback.Used, r.Fallback.Requested, strings.Join(r.Fallback.Causes, "; "))
	}
	// SchemeOptimal compiles successfully even when the exact search hits
	// its caps, but the result is then only greedy-optimal — surface that
	// the same way a ladder fallback is surfaced (exit code 4).
	var degraded []string
	for _, name := range sortedReportNames(r.Oracle) {
		if err := r.Oracle[name].Err(); err != nil {
			degraded = append(degraded, err.Error())
		}
	}
	if len(degraded) > 0 {
		return fperr.New(fperr.ClassDegraded, "%s", strings.Join(degraded, "; "))
	}
	return nil
}

// sortedReportNames returns the oracle report keys in deterministic order.
func sortedReportNames(m map[string]*core.OracleReport) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
