package codegen

import (
	"fpint/internal/core"
	"fpint/internal/ir"
)

// FPArgPlan records, per function, which integer parameters are passed in
// floating-point registers instead of integer registers — the
// interprocedural improvement §6.6 sketches ("it might be possible to
// reduce some of the copy overheads across calls by passing integer
// arguments in floating-point registers").
//
// A parameter qualifies when (a) the callee's partition wants the value in
// FPa (the parameter dummy node carries an INT→FPa copy), and (b) at every
// call site in the module, every reaching producer of that argument is
// FPa-resident. Then the caller's FPa→INT copy and the callee's INT→FPa
// copy both collapse into a single FP-file move.
type FPArgPlan struct {
	byFunc map[string][]bool
}

// FPPassed reports whether argument i of fn travels in an FP register.
func (p *FPArgPlan) FPPassed(fn string, i int) bool {
	if p == nil {
		return false
	}
	args := p.byFunc[fn]
	return i < len(args) && args[i]
}

// planFPArgs computes the plan for a module given every function's RDG and
// partition (nil entries disable the function).
func planFPArgs(mod *ir.Module, graphs map[string]*core.Graph, parts map[string]*core.Partition) *FPArgPlan {
	plan := &FPArgPlan{byFunc: make(map[string][]bool)}

	// Candidates: parameters whose dummy node carries an INT→FPa copy.
	called := make(map[string]bool)
	for _, fn := range mod.Funcs {
		p := parts[fn.Name]
		g := graphs[fn.Name]
		if p == nil || g == nil {
			continue
		}
		cand := make([]bool, len(fn.Params))
		for id := range p.CopyNodes {
			n := g.Nodes[id]
			if n.Kind == core.KindParam && fn.VRegType(fn.Params[n.ParamIdx]) == ir.I64 {
				cand[n.ParamIdx] = true
			}
		}
		plan.byFunc[fn.Name] = cand
	}

	// Veto pass over every call site: each argument must be produced
	// entirely in FPa wherever the function is called.
	for _, fn := range mod.Funcs {
		p := parts[fn.Name]
		g := graphs[fn.Name]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				cand, ok := plan.byFunc[in.Sym]
				if !ok {
					continue // builtin or unknown
				}
				called[in.Sym] = true
				for i := range cand {
					if !cand[i] {
						continue
					}
					if p == nil || g == nil {
						cand[i] = false
						continue
					}
					producers, argOK := g.ArgProducers(in, i)
					if !argOK || len(producers) == 0 {
						cand[i] = false
						continue
					}
					for _, prod := range producers {
						if !p.InFPa(prod) {
							cand[i] = false
							break
						}
					}
				}
			}
		}
	}

	// Functions never called keep int passing; enforce the FP argument
	// register budget (float parameters claim slots first, in order).
	for _, fn := range mod.Funcs {
		cand := plan.byFunc[fn.Name]
		if cand == nil {
			continue
		}
		if !called[fn.Name] {
			for i := range cand {
				cand[i] = false
			}
			continue
		}
		fpSlots := 0
		for i, pv := range fn.Params {
			if fn.VRegType(pv) == ir.F64 {
				fpSlots++
				continue
			}
			if cand[i] {
				if fpSlots >= maxRegArgs {
					cand[i] = false
					continue
				}
				fpSlots++
			}
		}
	}
	return plan
}
