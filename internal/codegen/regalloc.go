package codegen

import (
	"sort"

	"fpint/internal/isa"
)

// Register pools per class. Argument/return registers (A0–A3, V0, F0,
// F12–F15) and scratch registers are excluded so short physical live ranges
// around calls never conflict with allocations.
var (
	intCallerSaved = []int{8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 3, 28, 30}
	intCalleeSaved = []int{16, 17, 18, 19, 20, 21, 22, 23}
	fpCallerSaved  = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 24, 25, 26, 27, 28, 29}
	fpCalleeSaved  = []int{16, 17, 18, 19, 20, 21, 22, 23}
)

// Spill scratch registers per class.
const (
	intScratch1 = isa.RegAT // spilled rs
	intScratch2 = isa.RegK0 // spilled rt
	intScratchD = isa.RegK1 // spilled rd
	fpScratch1  = isa.FRegS0
	fpScratch2  = isa.FRegS1
)

// interval is a live interval of one virtual register in linear position
// space.
type interval struct {
	vreg       int
	start, end int
	uses       int // static def/use occurrences (spill-cost proxy)
	crossCall  bool
	reg        int // assigned physical register, or -1 when spilled
	slot       int // spill slot index when spilled
}

// allocResult is the outcome of allocation for one register class.
type allocResult struct {
	assign     map[int]int   // virtual -> physical
	spillSlot  map[int]int   // virtual -> spill slot index (within class-shared space)
	remat      map[int]minst // virtual -> constant-materializing template
	usedCallee []int
}

// regalloc allocates both register files of f and rewrites its blocks,
// returning the number of spill slots consumed and the callee-saved
// registers used. Spill slots are shared across classes (each slot is one
// 8-byte word).
type regallocStats struct {
	SpillSlots    int
	SpillLoads    int // static count of inserted reload instructions
	SpillStores   int
	UsedCalleeInt []int
	UsedCalleeFp  []int
}

func regalloc(f *mfunc) regallocStats {
	nextSlot := 0
	stats := regallocStats{}
	for _, class := range []isa.RegClass{isa.IntReg, isa.FpReg} {
		// Linear positions: posAt[bi][ii] is the position of instruction
		// ii of block bi. Recomputed per class because the previous class's
		// spill rewrite may have inserted instructions.
		posAt := make([][]int, len(f.blocks))
		blockStart := make(map[int]int) // block id -> first position
		blockEnd := make(map[int]int)
		pos := 0
		for bi, b := range f.blocks {
			blockStart[b.id] = pos
			posAt[bi] = make([]int, len(b.insts))
			for ii := range b.insts {
				posAt[bi][ii] = pos
				pos++
			}
			if len(b.insts) == 0 {
				pos++ // phantom position so empty blocks have a span
			}
			blockEnd[b.id] = pos - 1
		}
		var callPositions []int
		for bi, b := range f.blocks {
			for ii, m := range b.insts {
				if m.op == isa.JAL {
					callPositions = append(callPositions, posAt[bi][ii])
				}
			}
		}
		res := allocateClass(f, class, posAt, blockStart, blockEnd, callPositions, &nextSlot)
		if class == isa.IntReg {
			stats.UsedCalleeInt = res.usedCallee
		} else {
			stats.UsedCalleeFp = res.usedCallee
		}
		l, s := rewrite(f, class, res)
		stats.SpillLoads += l
		stats.SpillStores += s
	}
	stats.SpillSlots = nextSlot
	f.spillWords = int64(nextSlot)
	return stats
}

// classOperands returns the (field, class, isDef) triples of an instruction
// restricted to virtual registers of the wanted class.
type operandRef struct {
	val   *int
	isDef bool
}

func virtOperands(m *minst, class isa.RegClass) []operandRef {
	rdC, rsC, rtC := regClasses(m.op)
	dDef, sUse, tUse := defsUses(m.op)
	var out []operandRef
	if sUse && rsC == class && m.rs >= firstVirtual {
		out = append(out, operandRef{&m.rs, false})
	}
	if tUse && rtC == class && m.rt >= firstVirtual {
		out = append(out, operandRef{&m.rt, false})
	}
	if dDef && rdC == class && m.rd >= firstVirtual {
		out = append(out, operandRef{&m.rd, true})
	}
	return out
}

// rematCandidates finds virtual registers of the class whose single
// definition materializes a constant (LI/LIA/LID): spilling them needs no
// stack slot — the constant is re-materialized at each use, as production
// register allocators do.
func rematCandidates(f *mfunc, class isa.RegClass) map[int]minst {
	defCount := make(map[int]int)
	tmpl := make(map[int]minst)
	for _, b := range f.blocks {
		for ii := range b.insts {
			m := &b.insts[ii]
			for _, op := range virtOperands(m, class) {
				if !op.isDef {
					continue
				}
				defCount[*op.val]++
				switch m.op {
				case isa.LI, isa.LIA, isa.LID:
					tmpl[*op.val] = *m
				default:
					delete(tmpl, *op.val)
				}
			}
		}
	}
	out := make(map[int]minst)
	for v, t := range tmpl {
		if defCount[v] == 1 {
			out[v] = t
		}
	}
	return out
}

func allocateClass(f *mfunc, class isa.RegClass, posAt [][]int,
	blockStart, blockEnd map[int]int, callPositions []int, nextSlot *int) allocResult {

	rematable := rematCandidates(f, class)

	// Block-level liveness of virtual registers.
	use := make(map[int]map[int]bool)
	def := make(map[int]map[int]bool)
	liveIn := make(map[int]map[int]bool)
	liveOut := make(map[int]map[int]bool)
	blockByID := make(map[int]*mblock)
	for _, b := range f.blocks {
		blockByID[b.id] = b
		u := make(map[int]bool)
		d := make(map[int]bool)
		for ii := range b.insts {
			m := &b.insts[ii]
			for _, op := range virtOperands(m, class) {
				if op.isDef {
					d[*op.val] = true
				} else if !d[*op.val] {
					u[*op.val] = true
				}
			}
		}
		use[b.id] = u
		def[b.id] = d
		liveIn[b.id] = make(map[int]bool)
		liveOut[b.id] = make(map[int]bool)
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.blocks) - 1; i >= 0; i-- {
			b := f.blocks[i]
			out := make(map[int]bool)
			for _, sid := range b.succs {
				for v := range liveIn[sid] {
					out[v] = true
				}
			}
			liveOut[b.id] = out
			in := make(map[int]bool)
			for v := range out {
				if !def[b.id][v] {
					in[v] = true
				}
			}
			for v := range use[b.id] {
				in[v] = true
			}
			if len(in) != len(liveIn[b.id]) {
				liveIn[b.id] = in
				changed = true
				continue
			}
			for v := range in {
				if !liveIn[b.id][v] {
					liveIn[b.id] = in
					changed = true
					break
				}
			}
		}
	}

	// Intervals.
	starts := make(map[int]int)
	ends := make(map[int]int)
	useCount := make(map[int]int)
	touch := func(v, p int) {
		if s, ok := starts[v]; !ok || p < s {
			starts[v] = p
		}
		if e, ok := ends[v]; !ok || p > e {
			ends[v] = p
		}
	}
	for bi, b := range f.blocks {
		for ii := range b.insts {
			m := &b.insts[ii]
			p := posAt[bi][ii]
			for _, op := range virtOperands(m, class) {
				touch(*op.val, p)
				useCount[*op.val]++
			}
		}
		for v := range liveIn[b.id] {
			touch(v, blockStart[b.id])
		}
		for v := range liveOut[b.id] {
			touch(v, blockEnd[b.id])
		}
	}
	var ivs []*interval
	for v := range starts {
		iv := &interval{vreg: v, start: starts[v], end: ends[v], uses: useCount[v], reg: -1, slot: -1}
		for _, cp := range callPositions {
			if iv.start < cp && iv.end > cp {
				iv.crossCall = true
				break
			}
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(a, b int) bool {
		if ivs[a].start != ivs[b].start {
			return ivs[a].start < ivs[b].start
		}
		return ivs[a].vreg < ivs[b].vreg
	})

	caller, callee := intCallerSaved, intCalleeSaved
	if class == isa.FpReg {
		caller, callee = fpCallerSaved, fpCalleeSaved
	}
	isCallee := make(map[int]bool, len(callee))
	for _, r := range callee {
		isCallee[r] = true
	}

	free := make(map[int]bool)
	for _, r := range caller {
		free[r] = true
	}
	for _, r := range callee {
		free[r] = true
	}
	var active []*interval
	res := allocResult{
		assign:    make(map[int]int),
		spillSlot: make(map[int]int),
		remat:     make(map[int]minst),
	}
	usedCallee := make(map[int]bool)

	expire := func(pos int) {
		kept := active[:0]
		for _, a := range active {
			if a.end < pos {
				free[a.reg] = true
			} else {
				kept = append(kept, a)
			}
		}
		active = kept
	}
	pick := func(iv *interval) int {
		if iv.crossCall {
			for _, r := range callee {
				if free[r] {
					return r
				}
			}
			return -1
		}
		for _, r := range caller {
			if free[r] {
				return r
			}
		}
		for _, r := range callee {
			if free[r] {
				return r
			}
		}
		return -1
	}
	spill := func(iv *interval) {
		if t, ok := rematable[iv.vreg]; ok {
			res.remat[iv.vreg] = t
			return
		}
		iv.slot = *nextSlot
		*nextSlot++
		res.spillSlot[iv.vreg] = iv.slot
	}
	for _, iv := range ivs {
		expire(iv.start)
		r := pick(iv)
		if r < 0 {
			// Pick a spill victim by lowest static use count (a cheap
			// spill-cost proxy: loop-carried values accumulate uses and are
			// kept in registers), breaking ties toward the furthest end.
			// Candidates are active intervals whose register this interval
			// could legally use.
			var victim *interval
			better := func(a, b *interval) bool { // is a a better victim than b?
				if b == nil {
					return true
				}
				// Rematerializable intervals spill for free (no memory
				// traffic), so they are always preferred victims.
				_, aRemat := rematable[a.vreg]
				_, bRemat := rematable[b.vreg]
				if aRemat != bRemat {
					return aRemat
				}
				if a.uses != b.uses {
					return a.uses < b.uses
				}
				return a.end > b.end
			}
			for _, a := range active {
				if iv.crossCall && !isCallee[a.reg] {
					continue
				}
				if better(a, victim) {
					victim = a
				}
			}
			if victim != nil && better(victim, iv) {
				r = victim.reg
				victim.reg = -1
				delete(res.assign, victim.vreg)
				spill(victim)
				kept := active[:0]
				for _, a := range active {
					if a != victim {
						kept = append(kept, a)
					}
				}
				active = kept
			} else {
				spill(iv)
				continue
			}
		}
		iv.reg = r
		free[r] = false
		if isCallee[r] {
			usedCallee[r] = true
		}
		res.assign[iv.vreg] = r
		active = append(active, iv)
	}
	for _, iv := range ivs {
		if iv.reg >= 0 {
			res.assign[iv.vreg] = iv.reg
		}
	}
	for r := range usedCallee {
		res.usedCallee = append(res.usedCallee, r)
	}
	sort.Ints(res.usedCallee)
	return res
}

// rewrite applies an allocation to the function: virtual registers become
// physical, spilled values go through frame slots via scratch registers.
// Spill slots live right above the local-array area: offset
// (localWords + slot) * 8 from SP.
func rewrite(f *mfunc, class isa.RegClass, res allocResult) (loads, stores int) {
	s1, s2 := intScratch1, intScratch2
	sd := intScratchD
	loadOp, storeOp := isa.LW, isa.SW
	if class == isa.FpReg {
		s1, s2, sd = fpScratch1, fpScratch2, fpScratch1
		loadOp, storeOp = isa.LD, isa.SD
	}
	slotOff := func(slot int) int64 { return (f.localWords + int64(slot)) * 8 }

	for _, b := range f.blocks {
		var out []minst
		for _, m := range b.insts {
			ops := virtOperands(&m, class)
			// Uses first.
			usedScratch := make(map[int]int) // vreg -> scratch already loaded
			nextScratch := s1
			for _, op := range ops {
				if op.isDef {
					continue
				}
				v := *op.val
				if r, ok := res.assign[v]; ok {
					*op.val = r
					continue
				}
				if sc, done := usedScratch[v]; done {
					*op.val = sc
					continue
				}
				if t, ok := res.remat[v]; ok {
					sc := nextScratch
					nextScratch = s2
					t.rd = sc
					out = append(out, t)
					usedScratch[v] = sc
					*op.val = sc
					continue
				}
				slot, ok := res.spillSlot[v]
				if !ok {
					continue
				}
				sc := nextScratch
				nextScratch = s2
				out = append(out, minst{op: loadOp, rd: sc, rs: isa.RegSP, rt: noReg, imm: slotOff(slot), target: -1, line: m.line, irop: m.irop})
				loads++
				usedScratch[v] = sc
				*op.val = sc
			}
			var defStore *minst
			dropInst := false
			for _, op := range ops {
				if !op.isDef {
					continue
				}
				v := *op.val
				if r, ok := res.assign[v]; ok {
					*op.val = r
					continue
				}
				if _, ok := res.remat[v]; ok {
					// The single definition of a rematerialized constant is
					// dead: every use re-materializes it in place.
					dropInst = true
					continue
				}
				slot, ok := res.spillSlot[v]
				if !ok {
					continue
				}
				*op.val = sd
				defStore = &minst{op: storeOp, rd: noReg, rs: sd, rt: isa.RegSP, imm: slotOff(slot), target: -1, line: m.line, irop: m.irop}
			}
			if dropInst {
				continue
			}
			out = append(out, m)
			if defStore != nil {
				out = append(out, *defStore)
				stores++
			}
		}
		b.insts = out
	}
	return loads, stores
}
