package codegen_test

import (
	"testing"

	"fpint/internal/codegen"
)

// benchSrc exercises the backend's expensive paths: several functions, an
// address-heavy loop the analyses can unpin, and enough live values to
// make register allocation work.
const benchSrc = `
int a[256];
int b[256];

int mix(int x, int y) {
	return (x * 31 + y) ^ (x >> 3);
}

int fill(int seed) {
	int s = seed;
	for (int i = 0; i < 256; i++) {
		a[i] = mix(s, i);
		b[i] = a[i] ^ (i << 2);
		s = s + b[i];
	}
	return s;
}

int main() {
	int acc = 0;
	for (int rep = 0; rep < 4; rep++) {
		acc = acc + fill(rep);
		for (int i = 0; i < 256; i++) acc = acc + a[i] * b[i];
	}
	return acc & 1048575;
}`

// BenchmarkCodegenHotPath times the backend proper — partitioning,
// instruction selection, register allocation — with the frontend run once
// outside the loop, under both the basic and analysis-sharpened advanced
// schemes. Run with -benchmem and feed the output to `fpistat record
// -gobench` to track compile-time cost in the run-record store.
func BenchmarkCodegenHotPath(b *testing.B) {
	mod, prof, err := codegen.FrontendPipeline(benchSrc)
	if err != nil {
		b.Fatalf("frontend: %v", err)
	}
	schemes := []struct {
		name     string
		scheme   codegen.Scheme
		analysis bool
	}{
		{"basic", codegen.SchemeBasic, false},
		{"advanced_analysis", codegen.SchemeAdvanced, true},
	}
	for _, s := range schemes {
		s := s
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codegen.Compile(mod, codegen.Options{
					Scheme: s.scheme, Profile: prof, Analysis: s.analysis,
				}); err != nil {
					b.Fatalf("compile: %v", err)
				}
			}
		})
	}
}
