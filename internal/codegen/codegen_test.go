package codegen_test

import (
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/interp"
	"fpint/internal/sim"
)

// crossCheck compiles src under all three schemes and verifies that each
// compiled program produces exactly the IR interpreter's result and output.
func crossCheck(t *testing.T, name, src string) {
	t.Helper()
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		t.Fatalf("%s: frontend: %v", name, err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatalf("%s: interp: %v", name, err)
	}
	for _, scheme := range []codegen.Scheme{codegen.SchemeNone, codegen.SchemeBasic, codegen.SchemeAdvanced} {
		res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme, Profile: prof})
		if err != nil {
			t.Fatalf("%s/%s: compile: %v", name, scheme, err)
		}
		m := sim.New(res.Prog)
		out, err := m.Run()
		if err != nil {
			t.Fatalf("%s/%s: run: %v\n%s", name, scheme, err, res.Prog.Disassemble())
		}
		if out.Ret != ref.Ret {
			t.Errorf("%s/%s: ret = %d, interp says %d", name, scheme, out.Ret, ref.Ret)
		}
		if out.Output != ref.Output {
			t.Errorf("%s/%s: output = %q, interp says %q", name, scheme, out.Output, ref.Output)
		}
	}
}

func TestCrossCheckBasics(t *testing.T) {
	crossCheck(t, "const", `int main() { return 42; }`)
	crossCheck(t, "arith", `
int main() {
	int a = 7; int b = 3;
	return a*b + a/b - a%b + (a<<b) + (a>>1) + (a&b) + (a|b) + (a^b) + ~a + -b;
}`)
	crossCheck(t, "loop", `
int main() {
	int s = 0;
	for (int i = 0; i < 100; i++) s += i;
	return s;
}`)
}

func TestCrossCheckMemory(t *testing.T) {
	crossCheck(t, "globals", `
int total;
int a[64];
int main() {
	for (int i = 0; i < 64; i++) a[i] = i*i;
	total = 0;
	for (int i = 0; i < 64; i++) total += a[i];
	return total & 65535;
}`)
	crossCheck(t, "init", `
int k = 5;
int tab[4] = {10, 20, 30, 40};
int main() { return k + tab[2] + tab[3]; }`)
	crossCheck(t, "localarr", `
int sum3(int v[]) { return v[0] + v[1] + v[2]; }
int main() {
	int buf[3];
	buf[0] = 4; buf[1] = 8; buf[2] = 15;
	return sum3(buf);
}`)
}

func TestCrossCheckCalls(t *testing.T) {
	crossCheck(t, "fib", `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main() { return fib(15); }`)
	crossCheck(t, "multiarg", `
int mix(int a, int b, int c, int d) { return a*1000 + b*100 + c*10 + d; }
int main() { return mix(1, 2, 3, 4); }`)
	crossCheck(t, "callintense", `
int g;
int bump(int x) { g += x; return g; }
int main() {
	int s = 0;
	for (int i = 0; i < 40; i++) s += bump(i & 7);
	return s & 1048575;
}`)
}

func TestCrossCheckGccFragment(t *testing.T) {
	crossCheck(t, "gcc", `
int regs_invalidated_by_call = 12297829382473034410;
int reg_tick[66];
int deleted;
void delete_equiv_reg(int regno) { deleted += regno; }
void invalidate_for_call() {
	for (int regno = 0; regno < 66; regno++) {
		if (regs_invalidated_by_call & (1 << regno)) {
			delete_equiv_reg(regno);
			if (reg_tick[regno] >= 0) reg_tick[regno]++;
		}
	}
}
int main() {
	for (int i = 0; i < 66; i++) reg_tick[i] = i - 3;
	invalidate_for_call();
	int s = deleted;
	for (int i = 0; i < 66; i++) s += reg_tick[i];
	return s;
}`)
}

func TestCrossCheckFloats(t *testing.T) {
	crossCheck(t, "fpsum", `
float a[32];
float b[32];
float c[32];
int main() {
	for (int i = 0; i < 32; i++) { a[i] = (float) i; b[i] = (float) (i*2); }
	for (int i = 0; i < 32; i++) c[i] = a[i] + b[i];
	float s = 0.0;
	for (int i = 0; i < 32; i++) s += c[i];
	return (int) s;
}`)
	crossCheck(t, "fmix", `
float scale(float x, float k) { return x * k; }
int main() {
	float s = 0.5;
	int n = 0;
	for (int i = 1; i <= 10; i++) {
		s = scale(s, 1.5);
		if (s > 5.0) n++;
	}
	return n * 100 + (int) s;
}`)
}

func TestCrossCheckPrint(t *testing.T) {
	crossCheck(t, "print", `
int main() {
	for (int i = 0; i < 5; i++) print(i*i);
	printf_(3.25);
	return 0;
}`)
}

func TestCrossCheckRandLikeFunction(t *testing.T) {
	crossCheck(t, "rand", `
int seed;
int rnd() {
	seed = seed * 1103515245 + 12345;
	return (seed >> 16) & 32767;
}
int main() {
	seed = 42;
	int s = 0;
	for (int i = 0; i < 500; i++) s ^= rnd();
	return s;
}`)
}

func TestCrossCheckSpillPressure(t *testing.T) {
	// Force many simultaneously-live values to exercise the spiller.
	crossCheck(t, "pressure", `
int main() {
	int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
	int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
	int k = 11; int l = 12; int m = 13; int n = 14; int o = 15;
	int p = 16; int q = 17; int r = 18; int s = 19; int t = 20;
	int u = 21; int v = 22; int w = 23; int x = 24; int y = 25;
	int total = 0;
	for (int it = 0; it < 10; it++) {
		total += a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+s+t+u+v+w+x+y;
		a++; b+=2; c+=3; d+=4; e+=5; f+=6; g+=7; h+=8; i+=9; j+=10;
		k++; l+=2; m+=3; n+=4; o+=5; p+=6; q+=7; r+=8; s+=9; t+=10;
		u++; v+=2; w+=3; x+=4; y+=5;
	}
	return total + a + y;
}`)
}

func TestCrossCheckShortCircuitAndTernary(t *testing.T) {
	crossCheck(t, "logic", `
int g;
int bump() { g++; return 0; }
int main() {
	g = 0;
	int acc = 0;
	for (int i = 0; i < 20; i++) {
		if (i > 3 && i < 15 || i == 1) acc += i;
		acc += (i % 3 == 0) ? 2 : 1;
		if (i > 100 && bump()) acc = 9999;
	}
	return acc * 100 + g;
}`)
}

func TestStatsAndOffload(t *testing.T) {
	src := `
int regs = 12297829382473034410;
int tick[66];
int main() {
	int hits = 0;
	for (int rep = 0; rep < 20; rep++)
		for (int r = 0; r < 66; r++)
			if (regs & (1 << r)) {
				if (tick[r] >= 0) tick[r]++;
				hits++;
			}
	return hits;
}`
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(scheme codegen.Scheme) *sim.Result {
		res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme, Profile: prof})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		out, err := sim.New(res.Prog).Run()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		return out
	}
	base := run(codegen.SchemeNone)
	basic := run(codegen.SchemeBasic)
	adv := run(codegen.SchemeAdvanced)

	if base.Stats.OffloadFraction() != 0 {
		t.Errorf("baseline offloaded %f", base.Stats.OffloadFraction())
	}
	if basic.Stats.OffloadFraction() <= 0 {
		t.Errorf("basic scheme offloaded nothing")
	}
	if adv.Stats.OffloadFraction() < basic.Stats.OffloadFraction() {
		t.Errorf("advanced offload %.3f < basic %.3f",
			adv.Stats.OffloadFraction(), basic.Stats.OffloadFraction())
	}
	if basic.Stats.Copies != 0 || basic.Stats.Dups != 0 {
		t.Errorf("basic scheme executed transfers: %d copies, %d dups",
			basic.Stats.Copies, basic.Stats.Dups)
	}
	// §7.2: the advanced scheme's dynamic-instruction overhead stays small.
	growth := float64(adv.Stats.Total-base.Stats.Total) / float64(base.Stats.Total)
	if growth > 0.10 {
		t.Errorf("advanced scheme grew dynamic instructions by %.1f%%", growth*100)
	}
}
