package codegen_test

import (
	"errors"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/difftest"
	"fpint/internal/interp"
	"fpint/internal/isa"
	"fpint/internal/sim"
)

// interprocSrc has a hot helper whose integer argument is produced by
// FPa-resident computation at its only call site, and consumed by
// FPa-resident computation inside — the exact shape the §6.6
// interprocedural extension targets.
const interprocSrc = `
int out[256];
int classify(int v) {
	int c = 0;
	if (v > 192) c = 3;
	else if (v > 128) c = 2;
	else if (v > 64) c = 1;
	return c;
}
int main() {
	int s = 0;
	for (int rep = 0; rep < 30; rep++) {
		for (int i = 0; i < 256; i++) {
			int x = out[i];
			int y = (x ^ ((rep << 5) + rep)) + (x >> 2); // FPa-able producer
			s += classify(y & 255);
			out[i] = y & 1023;
		}
	}
	return s & 1048575;
}
`

func TestInterprocFPArgsCorrect(t *testing.T) {
	mod, prof, err := codegen.FrontendPipeline(interprocSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ipa := range []bool{false, true} {
		res, err := codegen.Compile(mod, codegen.Options{
			Scheme: codegen.SchemeAdvanced, Profile: prof, InterprocFPArgs: ipa,
		})
		if err != nil {
			t.Fatalf("ipa=%v: %v", ipa, err)
		}
		out, err := sim.New(res.Prog).Run()
		if err != nil {
			t.Fatalf("ipa=%v: %v", ipa, err)
		}
		if out.Ret != ref.Ret {
			t.Fatalf("ipa=%v: ret=%d want %d", ipa, out.Ret, ref.Ret)
		}
	}
}

func TestInterprocFPArgsReduceCopies(t *testing.T) {
	mod, prof, err := codegen.FrontendPipeline(interprocSrc)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(ipa bool) *sim.Result {
		res, err := codegen.Compile(mod, codegen.Options{
			Scheme: codegen.SchemeAdvanced, Profile: prof, InterprocFPArgs: ipa,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.New(res.Prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	off := runWith(false)
	on := runWith(true)
	// If the plan fired, the copy count drops; it must never rise, and
	// correctness holds either way (previous test).
	if on.Stats.Copies > off.Stats.Copies {
		t.Errorf("FP-passing increased copies: %d -> %d", off.Stats.Copies, on.Stats.Copies)
	}
	if on.Stats.Copies == off.Stats.Copies {
		t.Logf("plan did not fire (copies %d); acceptable but unexpected for this kernel", on.Stats.Copies)
	} else {
		t.Logf("copies: %d -> %d; MOVA count %d", off.Stats.Copies, on.Stats.Copies, on.Stats.ByOp[isa.MOVA])
	}
}

// TestInterprocVetoedWhenProducerIsINT: a call site whose argument comes
// from INT-resident computation must veto FP passing.
func TestInterprocVetoedWhenProducerIsINT(t *testing.T) {
	src := `
int tab[64];
int helper(int v) {
	int r = 0;
	for (int i = 0; i < 4; i++) r ^= (v << i);
	return r;
}
int main() {
	int s = 0;
	for (int i = 0; i < 64; i++) {
		// The argument is the loop induction value used for addressing —
		// firmly INT-resident.
		s += helper(i) + tab[i];
	}
	return s & 65535;
}`
	mod, prof, err := codegen.FrontendPipeline(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(mod).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.Compile(mod, codegen.Options{
		Scheme: codegen.SchemeAdvanced, Profile: prof, InterprocFPArgs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.New(res.Prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret != ref.Ret {
		t.Fatalf("ret=%d want %d", out.Ret, ref.Ret)
	}
}

// TestDifferentialInterproc runs the random-program differential suite with
// the interprocedural extension enabled (shared difftest generator/oracle).
func TestDifferentialInterproc(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	for i := 0; i < n; i++ {
		seed := int64(777 + i)
		src := difftest.NewGenerator(seed, difftest.DefaultGenConfig()).Program()
		err := difftest.Check(src, difftest.Options{Interproc: true})
		if err != nil && !errors.Is(err, difftest.ErrSkip) {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}
