package codegen

import (
	"fmt"

	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/irgen"
	"fpint/internal/lang"
	"fpint/internal/opt"
)

// FrontendPipeline runs parse → check → lower → optimize and produces a
// self-profile by executing the optimized IR once (the profile-guided cost
// model's input, standing in for the paper's training runs — the workloads
// are deterministic, so self-profiling is faithful).
func FrontendPipeline(src string) (*ir.Module, *interp.Profile, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("parse: %w", err)
	}
	if err := lang.Check(prog); err != nil {
		return nil, nil, fmt.Errorf("check: %w", err)
	}
	mod, err := irgen.Lower(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("lower: %w", err)
	}
	opt.Optimize(mod)
	for _, fn := range mod.Funcs {
		if err := fn.Verify(); err != nil {
			return nil, nil, fmt.Errorf("verify: %w", err)
		}
	}
	res, err := interp.New(mod).Run()
	if err != nil {
		return nil, nil, fmt.Errorf("profile run: %w", err)
	}
	return mod, res.Profile, nil
}
