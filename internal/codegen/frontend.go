package codegen

import (
	"fmt"
	"time"

	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/irgen"
	"fpint/internal/lang"
	"fpint/internal/obs"
	"fpint/internal/opt"
)

// FrontendPipeline runs parse → check → lower → optimize and produces a
// self-profile by executing the optimized IR once (the profile-guided cost
// model's input, standing in for the paper's training runs — the workloads
// are deterministic, so self-profiling is faithful).
func FrontendPipeline(src string) (*ir.Module, *interp.Profile, error) {
	return FrontendPipelineObserved(src, nil)
}

// FrontendBudget bounds the frontend's self-profile interpreter run — the
// one stage of compilation that executes the user's program and therefore
// inherits its runtime. A long-running service cannot afford an unbounded
// profile run on adversarial input: StepLimit caps the dynamic IR
// instruction count (0 keeps the interpreter's 2e9 default) and RunHook is
// the cooperative cancellation check threaded into the interpreter step
// loop (see interp.Machine.SetRunHook), so a job deadline aborts the
// profile run the same way it aborts a simulation.
type FrontendBudget struct {
	StepLimit int64
	RunHook   func(steps int64) error
	// HookEvery is the RunHook cadence in steps (0 = the interpreter's
	// default interval).
	HookEvery int64
}

// FrontendPipelineObserved is FrontendPipeline with per-stage and per-pass
// instrumentation: every frontend stage and every optimizer pass appends a
// record (name, unit, wall time, IR instruction delta) to plog. A nil plog
// disables instrumentation.
func FrontendPipelineObserved(src string, plog *obs.PassLog) (*ir.Module, *interp.Profile, error) {
	return FrontendPipelineBudgeted(src, plog, FrontendBudget{})
}

// FrontendPipelineBudgeted is FrontendPipelineObserved with the
// self-profile run bounded by budget.
func FrontendPipelineBudgeted(src string, plog *obs.PassLog, budget FrontendBudget) (*ir.Module, *interp.Profile, error) {
	stage := func(name string, mod *ir.Module, start time.Time, before int) {
		if plog == nil {
			return
		}
		after := 0
		if mod != nil {
			after = moduleInstrs(mod)
		}
		plog.Add(name, "module", time.Since(start).Nanoseconds(), before, after)
	}

	start := time.Now()
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("parse: %w", err)
	}
	stage("parse", nil, start, 0)

	start = time.Now()
	if err := lang.Check(prog); err != nil {
		return nil, nil, fmt.Errorf("check: %w", err)
	}
	stage("check", nil, start, 0)

	start = time.Now()
	mod, err := irgen.Lower(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("lower: %w", err)
	}
	stage("lower", mod, start, 0)

	opt.OptimizeObserved(mod, plog.Observer())
	for _, fn := range mod.Funcs {
		if err := fn.Verify(); err != nil {
			return nil, nil, fmt.Errorf("verify: %w", err)
		}
	}

	start = time.Now()
	before := moduleInstrs(mod)
	im := interp.New(mod)
	if budget.StepLimit > 0 {
		im.SetStepLimit(budget.StepLimit)
	}
	if budget.RunHook != nil {
		im.SetRunHook(budget.RunHook, budget.HookEvery)
	}
	res, err := im.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("profile run: %w", err)
	}
	stage("profile", mod, start, before)
	return mod, res.Profile, nil
}

// moduleInstrs counts the module's IR instructions.
func moduleInstrs(mod *ir.Module) int {
	n := 0
	for _, fn := range mod.Funcs {
		for _, b := range fn.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}
