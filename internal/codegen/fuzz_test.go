package codegen_test

import (
	"errors"
	"testing"

	"fpint/internal/core"
	"fpint/internal/difftest"
)

// These tests drive the shared difftest generator and oracle (the former
// package-private program generator was folded into internal/difftest, so
// the fuzz CLI, the go-fuzz targets, and this suite all draw from one
// corpus). Each check compiles the program under every scheme and demands
// bit-exact agreement with the IR interpreter plus the partition-audit and
// dynamic-counter invariants.

// TestDifferentialRandomPrograms is the broadest end-to-end property test
// of the partitioning + codegen stack.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		seed := int64(20260705 + i)
		src := difftest.NewGenerator(seed, difftest.DefaultGenConfig()).Program()
		err := difftest.Check(src, difftest.Options{Interproc: true, CheckProfit: true})
		if err != nil && !errors.Is(err, difftest.ErrSkip) {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestDifferentialRandomCostParams additionally varies the cost-model
// constants, which changes which copies/duplicates are inserted.
func TestDifferentialRandomCostParams(t *testing.T) {
	params := []core.CostParams{
		{OCopy: 3, ODupl: 1.5}, {OCopy: 3, ODupl: 2.9}, {OCopy: 4, ODupl: 2},
		{OCopy: 6, ODupl: 1.5}, {OCopy: 6, ODupl: 5.9}, {OCopy: 100, ODupl: 1.5},
		{OCopy: 1.1, ODupl: 1.05},
	}
	for i := 0; i < 12; i++ {
		seed := int64(42 + i)
		src := difftest.NewGenerator(seed, difftest.DefaultGenConfig()).Program()
		for _, pc := range params {
			err := difftest.Check(src, difftest.Options{Cost: pc, CheckProfit: true})
			if err != nil && !errors.Is(err, difftest.ErrSkip) {
				t.Fatalf("seed %d cost %+v: %v\n%s", seed, pc, err, src)
			}
		}
	}
}
