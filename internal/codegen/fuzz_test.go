package codegen_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/interp"
	"fpint/internal/sim"
)

// progGen generates random (but always well-formed and terminating) mini-C
// programs for differential testing: every compiled variant must agree
// with the IR interpreter.
type progGen struct {
	r   *rand.Rand
	sb  strings.Builder
	nfn int
}

func (g *progGen) pick(opts ...string) string { return opts[g.r.Intn(len(opts))] }

// intExpr produces an integer expression over the names in scope, bounded
// in depth. Division and remainder are guarded by construction (divisor is
// a nonzero constant).
func (g *progGen) intExpr(scope []string, depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if len(scope) > 0 && g.r.Intn(2) == 0 {
			return scope[g.r.Intn(len(scope))]
		}
		return fmt.Sprintf("%d", g.r.Intn(2001)-1000)
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(scope, depth-1),
			g.pick("+", "-", "*", "&", "|", "^"), g.intExpr(scope, depth-1))
	case 1:
		return fmt.Sprintf("(%s %s %d)", g.intExpr(scope, depth-1),
			g.pick("/", "%"), g.r.Intn(9)+1)
	case 2:
		return fmt.Sprintf("(%s %s %d)", g.intExpr(scope, depth-1),
			g.pick("<<", ">>"), g.r.Intn(8))
	case 3:
		return fmt.Sprintf("(%s %s %s ? %s : %s)",
			g.intExpr(scope, depth-1), g.pick("<", ">", "<=", ">=", "==", "!="),
			g.intExpr(scope, depth-1), g.intExpr(scope, depth-1), g.intExpr(scope, depth-1))
	case 4:
		return fmt.Sprintf("(~%s)", g.intExpr(scope, depth-1))
	case 5:
		// Written as 0-x: a bare -x followed by a negative literal would
		// lex as the decrement operator.
		return fmt.Sprintf("(0 - %s)", g.intExpr(scope, depth-1))
	case 6:
		return fmt.Sprintf("(!%s)", g.intExpr(scope, depth-1))
	default:
		return fmt.Sprintf("(%s %s %s)",
			g.condExpr(scope, depth-1), g.pick("&&", "||"), g.condExpr(scope, depth-1))
	}
}

func (g *progGen) condExpr(scope []string, depth int) string {
	return fmt.Sprintf("(%s %s %s)", g.intExpr(scope, depth),
		g.pick("<", ">", "==", "!="), g.intExpr(scope, depth))
}

// stmts emits n statements. Loops are bounded counted loops; induction
// variables are readable inside the body but never assignment targets
// (write), so every generated program terminates.
func (g *progGen) stmts(read, write []string, depth, n int) {
	for i := 0; i < n; i++ {
		switch g.r.Intn(6) {
		case 0, 1:
			if len(write) > 0 {
				v := write[g.r.Intn(len(write))]
				fmt.Fprintf(&g.sb, "%s %s= %s;\n", v, g.pick("", "+", "-", "^", "&", "|"), g.intExpr(read, 2))
				continue
			}
			fallthrough
		case 2:
			fmt.Fprintf(&g.sb, "acc += arr[(%s) & 15];\n", g.intExpr(read, 2))
		case 3:
			fmt.Fprintf(&g.sb, "arr[(%s) & 15] = %s;\n", g.intExpr(read, 1), g.intExpr(read, 2))
		case 4:
			fmt.Fprintf(&g.sb, "if (%s) {\n", g.condExpr(read, 1))
			if depth > 0 {
				g.stmts(read, write, depth-1, 1+g.r.Intn(2))
			} else {
				fmt.Fprintf(&g.sb, "acc ^= 3;\n")
			}
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&g.sb, "} else {\n")
				if depth > 0 {
					g.stmts(read, write, depth-1, 1)
				} else {
					fmt.Fprintf(&g.sb, "acc += 1;\n")
				}
			}
			fmt.Fprintf(&g.sb, "}\n")
		case 5:
			iv := fmt.Sprintf("i%d_%d", depth, g.r.Intn(1000))
			fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s++) {\n", iv, iv, 2+g.r.Intn(12), iv)
			if depth > 0 {
				g.stmts(append(read, iv), write, depth-1, 1+g.r.Intn(2))
			} else {
				fmt.Fprintf(&g.sb, "acc += %s;\n", iv)
			}
			fmt.Fprintf(&g.sb, "}\n")
		}
	}
}

func (g *progGen) gen() string {
	g.sb.Reset()
	fmt.Fprintf(&g.sb, "int arr[16];\nint acc;\n")
	// A couple of helper functions that main calls.
	g.nfn = g.r.Intn(3)
	for f := 0; f < g.nfn; f++ {
		fmt.Fprintf(&g.sb, "int helper%d(int a, int b) {\n", f)
		g.stmts([]string{"a", "b"}, []string{"a", "b"}, 1, 2)
		fmt.Fprintf(&g.sb, "return %s;\n}\n", g.intExpr([]string{"a", "b"}, 2))
	}
	fmt.Fprintf(&g.sb, "int main() {\nint x = %d;\nint y = %d;\n", g.r.Intn(100), g.r.Intn(100))
	g.stmts([]string{"x", "y"}, []string{"x", "y"}, 2, 4+g.r.Intn(4))
	for f := 0; f < g.nfn; f++ {
		fmt.Fprintf(&g.sb, "acc += helper%d(x & 1023, y & 1023);\n", f)
	}
	fmt.Fprintf(&g.sb, "return (acc ^ x ^ y) & 1048575;\n}\n")
	return g.sb.String()
}

// TestDifferentialRandomPrograms compiles randomly generated programs under
// all three schemes and demands bit-exact agreement with the IR
// interpreter. This is the broadest end-to-end property test of the
// partitioning + codegen stack.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	g := &progGen{r: rand.New(rand.NewSource(20260705))}
	for i := 0; i < n; i++ {
		src := g.gen()
		mod, prof, err := codegen.FrontendPipeline(src)
		if err != nil {
			t.Fatalf("program %d: frontend: %v\n%s", i, err, src)
		}
		ref, err := interp.New(mod).Run()
		if err != nil {
			t.Fatalf("program %d: interp: %v\n%s", i, err, src)
		}
		for _, scheme := range []codegen.Scheme{codegen.SchemeNone, codegen.SchemeBasic, codegen.SchemeAdvanced} {
			res, err := codegen.Compile(mod, codegen.Options{Scheme: scheme, Profile: prof})
			if err != nil {
				t.Fatalf("program %d/%v: compile: %v\n%s", i, scheme, err, src)
			}
			m := sim.New(res.Prog)
			m.SetStepLimit(100_000_000)
			out, err := m.Run()
			if err != nil {
				t.Fatalf("program %d/%v: run: %v\n%s", i, scheme, err, src)
			}
			if out.Ret != ref.Ret {
				t.Fatalf("program %d/%v: ret=%d interp=%d\n%s\n%s",
					i, scheme, out.Ret, ref.Ret, src, res.Prog.Disassemble())
			}
		}
	}
}

// TestDifferentialRandomCostParams additionally varies the cost-model
// constants, which changes which copies/duplicates are inserted.
func TestDifferentialRandomCostParams(t *testing.T) {
	g := &progGen{r: rand.New(rand.NewSource(42))}
	params := []struct{ oc, od float64 }{
		{3, 1.5}, {3, 2.9}, {4, 2}, {6, 1.5}, {6, 5.9}, {100, 1.5}, {1.1, 1.05},
	}
	for i := 0; i < 12; i++ {
		src := g.gen()
		mod, prof, err := codegen.FrontendPipeline(src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		ref, err := interp.New(mod).Run()
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		for _, pc := range params {
			res, err := codegen.Compile(mod, codegen.Options{
				Scheme:  codegen.SchemeAdvanced,
				Profile: prof,
				Cost:    costParams(pc.oc, pc.od),
			})
			if err != nil {
				t.Fatalf("program %d o=%v: %v\n%s", i, pc, err, src)
			}
			out, err := sim.New(res.Prog).Run()
			if err != nil {
				t.Fatalf("program %d o=%v: %v", i, pc, err)
			}
			if out.Ret != ref.Ret {
				t.Fatalf("program %d o=%v: ret=%d interp=%d\n%s", i, pc, out.Ret, ref.Ret, src)
			}
		}
	}
}

func costParams(oc, od float64) core.CostParams { return core.CostParams{OCopy: oc, ODupl: od} }
