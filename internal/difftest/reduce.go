package difftest

import (
	"fpint/internal/lang"
)

// Reduce shrinks a failing program to a (locally) minimal reproducer. The
// predicate fails must report whether a candidate source still exhibits
// the original failure; Reduce greedily applies AST-level mutations —
// deleting functions, globals, and statements, unwrapping control
// structures, and collapsing expressions to literals or operands — and
// keeps each one that preserves the failure, iterating to a fixpoint.
//
// The returned source is canonical (printed from the AST). If even the
// canonical form of the input no longer fails, Reduce returns the input
// unchanged and false.
func Reduce(src string, fails func(string) bool) (string, bool) {
	prog, err := lang.Parse(src)
	if err != nil {
		// Not printable; line-based reduction is pointless for a parser
		// crash reproducer, so return as-is.
		return src, false
	}
	cur, err := Print(prog)
	if err != nil {
		// Unprintable AST: keep the original reproducer rather than crash.
		return src, false
	}
	if !fails(cur) {
		return src, false
	}

	// Greedy fixpoint: enumerate mutation sites on the current program,
	// try each in order, restart from the first one that keeps failing.
	// Budget bounds the total number of candidate evaluations.
	budget := 4000
	for budget > 0 {
		improved := false
		n := countMutations(cur)
		for k := 0; k < n && budget > 0; k++ {
			cand, ok := applyMutation(cur, k)
			if !ok || cand == cur {
				continue
			}
			budget--
			if fails(cand) {
				cur = cand
				improved = true
				break // re-enumerate against the smaller program
			}
		}
		if !improved {
			break
		}
	}
	return cur, true
}

// countMutations parses src and counts its mutation sites.
func countMutations(src string) int {
	prog, err := lang.Parse(src)
	if err != nil {
		return 0
	}
	// Checking fills in expression types, which literal replacement needs.
	if err := lang.Check(prog); err != nil {
		return 0
	}
	m := &mutator{target: -1}
	m.program(prog)
	return m.count
}

// applyMutation parses src, applies the k-th mutation site, and prints the
// result. ok is false when the mutated program no longer parses or checks
// (e.g. a deleted declaration still has uses); such candidates are
// discarded without consuming predicate budget.
func applyMutation(src string, k int) (string, bool) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", false
	}
	if err := lang.Check(prog); err != nil {
		return "", false
	}
	m := &mutator{target: k}
	m.program(prog)
	if !m.applied {
		return "", false
	}
	out, perr := Print(prog)
	if perr != nil {
		return "", false
	}
	p2, err := lang.Parse(out)
	if err != nil {
		return "", false
	}
	if err := lang.Check(p2); err != nil {
		return "", false
	}
	return out, true
}

// mutator walks the AST in a deterministic order, assigning consecutive
// indices to mutation opportunities. When the counter hits target, the
// mutation is applied in place.
type mutator struct {
	count   int
	target  int
	applied bool
}

// hit reports whether the current site is the target.
func (m *mutator) hit() bool {
	h := m.count == m.target
	m.count++
	if h {
		m.applied = true
	}
	return h
}

func (m *mutator) program(p *lang.Program) {
	// Deleting whole functions first gives the biggest wins.
	for i := 0; i < len(p.Funcs); i++ {
		if p.Funcs[i].Name == "main" {
			continue
		}
		if m.hit() {
			p.Funcs = append(p.Funcs[:i], p.Funcs[i+1:]...)
			return
		}
	}
	for i := 0; i < len(p.Globals); i++ {
		if m.hit() {
			p.Globals = append(p.Globals[:i], p.Globals[i+1:]...)
			return
		}
		// Dropping just the initializer is a smaller step that survives
		// when the global itself is still referenced.
		if len(p.Globals[i].InitInt) > 0 || len(p.Globals[i].InitFlt) > 0 {
			if m.hit() {
				p.Globals[i].InitInt = nil
				p.Globals[i].InitFlt = nil
				return
			}
		}
	}
	for _, f := range p.Funcs {
		m.block(f.Body)
		if m.applied {
			return
		}
	}
	// Expression-level mutations last: they fire once statement-level
	// reduction has converged.
	for _, f := range p.Funcs {
		m.exprStmts(f.Body)
		if m.applied {
			return
		}
	}
}

// block enumerates statement-level mutations within b.
func (m *mutator) block(b *lang.BlockStmt) {
	for i := 0; i < len(b.Stmts); i++ {
		if m.hit() {
			b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
			return
		}
		if repl, ok := unwrap(b.Stmts[i]); ok {
			if m.hit() {
				b.Stmts[i] = repl
				return
			}
		}
		if ifs, ok := b.Stmts[i].(*lang.IfStmt); ok && ifs.Else != nil {
			if m.hit() {
				ifs.Else = nil
				return
			}
		}
		// Recurse into nested blocks.
		for _, nested := range nestedBlocks(b.Stmts[i]) {
			m.block(nested)
			if m.applied {
				return
			}
		}
	}
}

// unwrap proposes replacing a control statement by its body.
func unwrap(s lang.Stmt) (lang.Stmt, bool) {
	switch st := s.(type) {
	case *lang.IfStmt:
		return st.Then, true
	case *lang.WhileStmt:
		return st.Body, true
	case *lang.DoWhileStmt:
		return st.Body, true
	case *lang.ForStmt:
		return st.Body, true
	case *lang.BlockStmt:
		if len(st.Stmts) == 1 {
			return st.Stmts[0], true
		}
	}
	return nil, false
}

// nestedBlocks returns the statement lists nested inside s, wrapping
// single-statement bodies so deletion sites inside them are reachable.
func nestedBlocks(s lang.Stmt) []*lang.BlockStmt {
	asBlock := func(x lang.Stmt) *lang.BlockStmt {
		if x == nil {
			return nil
		}
		if b, ok := x.(*lang.BlockStmt); ok {
			return b
		}
		return nil
	}
	var out []*lang.BlockStmt
	switch st := s.(type) {
	case *lang.BlockStmt:
		out = append(out, st)
	case *lang.IfStmt:
		if b := asBlock(st.Then); b != nil {
			out = append(out, b)
		}
		if b := asBlock(st.Else); b != nil {
			out = append(out, b)
		}
	case *lang.WhileStmt:
		if b := asBlock(st.Body); b != nil {
			out = append(out, b)
		}
	case *lang.DoWhileStmt:
		if b := asBlock(st.Body); b != nil {
			out = append(out, b)
		}
	case *lang.ForStmt:
		if b := asBlock(st.Body); b != nil {
			out = append(out, b)
		}
	}
	return out
}

// exprStmts enumerates expression-level mutations within every statement
// of b (recursively).
func (m *mutator) exprStmts(b *lang.BlockStmt) {
	for _, s := range b.Stmts {
		m.stmtExprs(s)
		if m.applied {
			return
		}
	}
}

func (m *mutator) stmtExprs(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.BlockStmt:
		m.exprStmts(st)
	case *lang.VarDeclStmt:
		if st.Init != nil {
			st.Init = m.expr(st.Init)
		}
	case *lang.ExprStmt:
		st.X = m.expr(st.X)
	case *lang.IfStmt:
		st.Cond = m.expr(st.Cond)
		if !m.applied {
			m.stmtExprs(st.Then)
		}
		if !m.applied && st.Else != nil {
			m.stmtExprs(st.Else)
		}
	case *lang.WhileStmt:
		st.Cond = m.expr(st.Cond)
		if !m.applied {
			m.stmtExprs(st.Body)
		}
	case *lang.DoWhileStmt:
		st.Cond = m.expr(st.Cond)
		if !m.applied {
			m.stmtExprs(st.Body)
		}
	case *lang.ForStmt:
		if st.Init != nil {
			m.stmtExprs(st.Init)
		}
		if !m.applied && st.Cond != nil {
			st.Cond = m.expr(st.Cond)
		}
		if !m.applied && st.Post != nil {
			st.Post = m.expr(st.Post)
		}
		if !m.applied {
			m.stmtExprs(st.Body)
		}
	case *lang.ReturnStmt:
		if st.X != nil {
			st.X = m.expr(st.X)
		}
	}
}

// zeroLit builds a zero literal of e's checked type.
func zeroLit(e lang.Expr) lang.Expr {
	if e.ExprType() == lang.TypeFloat {
		return &lang.FloatLit{}
	}
	return &lang.IntLit{}
}

// expr enumerates mutations of e and returns the (possibly replaced)
// expression. Candidates may still be type-incorrect (e.g. promoting a
// float operand of a comparison into an int slot); applyMutation's
// re-check discards those.
func (m *mutator) expr(e lang.Expr) lang.Expr {
	if m.applied {
		return e
	}
	switch x := e.(type) {
	case *lang.IntLit:
		if x.Val != 0 && m.hit() {
			return &lang.IntLit{Val: 0, Pos: x.Pos}
		}
		return x
	case *lang.FloatLit:
		if x.Val != 0 && m.hit() {
			return &lang.FloatLit{Val: 0, Pos: x.Pos}
		}
		return x
	case *lang.Ident:
		return x
	case *lang.IndexExpr:
		if m.hit() {
			return zeroLit(x)
		}
		x.Idx = m.expr(x.Idx)
		return x
	case *lang.CallExpr:
		if m.hit() {
			return zeroLit(x)
		}
		for i := range x.Args {
			x.Args[i] = m.expr(x.Args[i])
			if m.applied {
				return x
			}
		}
		return x
	case *lang.UnaryExpr:
		if m.hit() {
			return x.X
		}
		x.X = m.expr(x.X)
		return x
	case *lang.BinaryExpr:
		if m.hit() {
			return x.L
		}
		if m.hit() {
			return x.R
		}
		if m.hit() {
			return zeroLit(x)
		}
		x.L = m.expr(x.L)
		if !m.applied {
			x.R = m.expr(x.R)
		}
		return x
	case *lang.CondExpr:
		if m.hit() {
			return x.Then
		}
		if m.hit() {
			return x.Else
		}
		x.Cond = m.expr(x.Cond)
		if !m.applied {
			x.Then = m.expr(x.Then)
		}
		if !m.applied {
			x.Else = m.expr(x.Else)
		}
		return x
	case *lang.AssignExpr:
		// Keep the assignment shape; shrink only the right-hand side.
		x.Rhs = m.expr(x.Rhs)
		return x
	case *lang.IncDecExpr:
		return x
	}
	return e
}
