package difftest

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"fpint/internal/lang"
)

// Print renders a lang AST back to parseable source. The output is
// canonical: every composite expression is parenthesized, every control
// body is braced, and negative literals are spelled as subtractions so no
// token pair can re-lex as `--`. Print(Parse(src)) must always re-parse
// and re-check to a semantically identical program; the reducer depends on
// this round trip to apply AST-level mutations.
//
// An AST node the printer does not know (a new statement or expression
// kind the grammar grew without a matching printer case) is returned as an
// error, not a panic: the fuzz driver and reducer treat it as an
// unprintable candidate and move on rather than crashing the whole run.
func Print(p *lang.Program) (string, error) {
	var pr printer
	for _, g := range p.Globals {
		pr.global(g)
	}
	for _, f := range p.Funcs {
		pr.fn(f)
	}
	return pr.sb.String(), pr.err
}

type printer struct {
	sb     strings.Builder
	indent int
	err    error
}

// fail records the first unprintable node; printing continues so the error
// message can carry the partial output for debugging.
func (pr *printer) fail(format string, args ...any) {
	if pr.err == nil {
		pr.err = fmt.Errorf(format, args...)
	}
}

func (pr *printer) line(format string, args ...any) {
	pr.sb.WriteString(strings.Repeat("  ", pr.indent))
	fmt.Fprintf(&pr.sb, format, args...)
	pr.sb.WriteByte('\n')
}

// floatToken renders a float value as a single lexable token (digits,
// a mandatory dot, no exponent, no sign).
func floatToken(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if strings.ContainsAny(s, "eE") {
		s = strconv.FormatFloat(v, 'f', -1, 64)
	}
	if !strings.Contains(s, ".") {
		s += ".0"
	}
	return s
}

// floatExprStr renders a float value as an expression, handling signs and
// non-finite values that have no literal spelling.
func floatExprStr(v float64) string {
	switch {
	case math.IsNaN(v):
		return "(0.0 / 0.0)"
	case math.IsInf(v, 1):
		return "(1.0 / 0.0)"
	case math.IsInf(v, -1):
		return "(0.0 - (1.0 / 0.0))"
	case math.Signbit(v):
		return fmt.Sprintf("(0.0 - %s)", floatToken(-v))
	default:
		return floatToken(v)
	}
}

func intExprStr(v int64) string {
	if v < 0 {
		// Spelled as a subtraction so `x - -5` cannot lex as decrement;
		// also sidesteps the unrepresentable -MinInt64 negation.
		return fmt.Sprintf("(0 - %s)", strconv.FormatUint(uint64(-(v+1))+1, 10))
	}
	return strconv.FormatInt(v, 10)
}

func (pr *printer) global(g *lang.GlobalDecl) {
	base := g.Type
	if g.Type.IsArray() {
		base = g.Type.Elem()
	}
	var init string
	switch {
	case g.Type.IsArray() && (len(g.InitInt) > 0 || len(g.InitFlt) > 0):
		var parts []string
		for _, v := range g.InitInt {
			parts = append(parts, strconv.FormatInt(v, 10))
		}
		for _, v := range g.InitFlt {
			parts = append(parts, signedFloatToken(v))
		}
		init = fmt.Sprintf(" = {%s}", strings.Join(parts, ", "))
	case !g.Type.IsArray() && len(g.InitInt) > 0:
		init = fmt.Sprintf(" = %d", g.InitInt[0])
	case !g.Type.IsArray() && len(g.InitFlt) > 0:
		init = fmt.Sprintf(" = %s", signedFloatToken(g.InitFlt[0]))
	}
	if g.Type.IsArray() {
		pr.line("%s %s[%d]%s;", base, g.Name, g.ArrayLen, init)
	} else {
		pr.line("%s %s%s;", base, g.Name, init)
	}
}

// signedFloatToken is the global-initializer form, where the parser accepts
// a leading minus directly.
func signedFloatToken(v float64) string {
	if math.Signbit(v) && !math.IsNaN(v) {
		return "-" + floatToken(-v)
	}
	return floatToken(v)
}

func (pr *printer) fn(f *lang.FuncDecl) {
	var params []string
	for _, p := range f.Params {
		if p.Type.IsArray() {
			params = append(params, fmt.Sprintf("%s %s[]", p.Type.Elem(), p.Name))
		} else {
			params = append(params, fmt.Sprintf("%s %s", p.Type, p.Name))
		}
	}
	pr.line("%s %s(%s) {", f.Ret, f.Name, strings.Join(params, ", "))
	pr.indent++
	for _, s := range f.Body.Stmts {
		pr.stmt(s)
	}
	pr.indent--
	pr.line("}")
}

// braced prints s as a braced body regardless of its concrete kind.
func (pr *printer) braced(s lang.Stmt) {
	if b, ok := s.(*lang.BlockStmt); ok {
		for _, inner := range b.Stmts {
			pr.stmt(inner)
		}
		return
	}
	if s != nil {
		pr.stmt(s)
	}
}

func (pr *printer) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.BlockStmt:
		pr.line("{")
		pr.indent++
		for _, inner := range st.Stmts {
			pr.stmt(inner)
		}
		pr.indent--
		pr.line("}")
	case *lang.VarDeclStmt:
		if st.Type.IsArray() {
			pr.line("%s %s[%d];", st.Type.Elem(), st.Name, st.ArrayLen)
		} else if st.Init != nil {
			pr.line("%s %s = %s;", st.Type, st.Name, pr.expr(st.Init))
		} else {
			pr.line("%s %s;", st.Type, st.Name)
		}
	case *lang.ExprStmt:
		pr.line("%s;", pr.expr(st.X))
	case *lang.IfStmt:
		pr.line("if (%s) {", pr.expr(st.Cond))
		pr.indent++
		pr.braced(st.Then)
		pr.indent--
		if st.Else != nil {
			pr.line("} else {")
			pr.indent++
			pr.braced(st.Else)
			pr.indent--
		}
		pr.line("}")
	case *lang.WhileStmt:
		pr.line("while (%s) {", pr.expr(st.Cond))
		pr.indent++
		pr.braced(st.Body)
		pr.indent--
		pr.line("}")
	case *lang.DoWhileStmt:
		pr.line("do {")
		pr.indent++
		pr.braced(st.Body)
		pr.indent--
		pr.line("} while (%s);", pr.expr(st.Cond))
	case *lang.ForStmt:
		init := ""
		switch is := st.Init.(type) {
		case *lang.VarDeclStmt:
			if is.Init != nil {
				init = fmt.Sprintf("%s %s = %s", is.Type, is.Name, pr.expr(is.Init))
			} else {
				init = fmt.Sprintf("%s %s", is.Type, is.Name)
			}
		case *lang.ExprStmt:
			init = pr.expr(is.X)
		}
		cond, post := "", ""
		if st.Cond != nil {
			cond = pr.expr(st.Cond)
		}
		if st.Post != nil {
			post = pr.expr(st.Post)
		}
		pr.line("for (%s; %s; %s) {", init, cond, post)
		pr.indent++
		pr.braced(st.Body)
		pr.indent--
		pr.line("}")
	case *lang.ReturnStmt:
		if st.X != nil {
			pr.line("return %s;", pr.expr(st.X))
		} else {
			pr.line("return;")
		}
	case *lang.BreakStmt:
		pr.line("break;")
	case *lang.ContinueStmt:
		pr.line("continue;")
	default:
		pr.fail("difftest: unknown stmt %T", s)
	}
}

var unarySpelling = map[lang.UnaryOp]string{
	lang.UnNeg: "-", lang.UnNot: "!", lang.UnBitNot: "~",
}

func (pr *printer) expr(e lang.Expr) string {
	switch x := e.(type) {
	case *lang.IntLit:
		return intExprStr(x.Val)
	case *lang.FloatLit:
		return floatExprStr(x.Val)
	case *lang.Ident:
		return x.Name
	case *lang.IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Base.Name, pr.expr(x.Idx))
	case *lang.CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = pr.expr(a)
		}
		return fmt.Sprintf("%s(%s)", x.Fn, strings.Join(args, ", "))
	case *lang.UnaryExpr:
		return fmt.Sprintf("(%s%s)", unarySpelling[x.Op], pr.expr(x.X))
	case *lang.BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", pr.expr(x.L), x.Op, pr.expr(x.R))
	case *lang.CondExpr:
		return fmt.Sprintf("(%s ? %s : %s)", pr.expr(x.Cond), pr.expr(x.Then), pr.expr(x.Else))
	case *lang.AssignExpr:
		op := "="
		if x.OpValid {
			op = x.Op.String() + "="
		}
		return fmt.Sprintf("(%s %s %s)", pr.expr(x.Lhs), op, pr.expr(x.Rhs))
	case *lang.IncDecExpr:
		if x.Decr {
			return pr.expr(x.Lhs) + "--"
		}
		return pr.expr(x.Lhs) + "++"
	default:
		pr.fail("difftest: unknown expr %T", e)
		return "0"
	}
}
