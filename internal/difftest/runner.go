package difftest

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fpint/internal/core"
	"fpint/internal/sim"
)

// Failure is one sweep failure: the seed, the full generated program, the
// oracle's verdict, and (when reduction ran) the minimal reproducer.
// Analysis records whether the sweep's oracle ran the analysis-sharpened
// scheme cases, so a reduced crasher replays with the same partitions;
// Fast records whether the sampled-timing fast-mode stage ran, so a
// fast-found crasher replays through the fast oracle too; Optimal records
// whether the exact-oracle scheme case ran, so a crasher found by the
// branch-and-bound partition replays through it as well.
type Failure struct {
	Seed     int64
	Src      string
	Err      error
	Analysis bool
	Fast     bool
	Optimal  bool
	Reduced  string // empty when reduction was skipped or did not apply
}

// SweepResult summarizes a deterministic differential sweep.
type SweepResult struct {
	Ran      int // programs the oracle fully judged
	Skipped  int // reference step-budget exhaustions
	Failures []Failure
}

// Sweep generates n programs from consecutive seeds (seed, seed+1, …),
// checks each against the oracle, and optionally reduces every failure to
// a minimal reproducer. It is fully deterministic in (seed, n, gcfg, o).
func Sweep(seed int64, n int, gcfg GenConfig, o Options, reduce bool) SweepResult {
	var res SweepResult
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		src := NewGenerator(s, gcfg).Program()
		err := Check(src, o)
		if errors.Is(err, ErrSkip) {
			res.Skipped++
			continue
		}
		res.Ran++
		if err == nil {
			continue
		}
		f := Failure{Seed: s, Src: src, Err: err, Analysis: o.Analysis, Fast: o.FastTiming, Optimal: o.Optimal}
		if reduce {
			f.Reduced = ReduceFailure(src, err, o)
		}
		res.Failures = append(res.Failures, f)
	}
	return res
}

// ReduceFailure shrinks src while it keeps failing in the same class as
// origErr: frontend rejections must stay frontend rejections, oracle
// mismatches must stay mismatches (of any stage — chasing the exact stage
// overfits the reducer to incidental detail). Reduction normally runs with
// the timing model off; functional divergence is what defines the bug,
// and the timing model re-runs the same functional simulation anyway. The
// exception is a stage-"fast" mismatch, which only manifests inside the
// sampled-timing stage, so that stage (and the timing model it requires)
// stays on.
func ReduceFailure(src string, origErr error, o Options) string {
	wasFrontend := errors.Is(origErr, ErrFrontend)
	ro := o
	ro.Timing = false
	ro.FastTiming = false
	var mm *Mismatch
	if errors.As(origErr, &mm) && mm.Stage == "fast" {
		ro.Timing = true
		ro.FastTiming = true
	}
	pred := func(cand string) bool {
		err := Check(cand, ro)
		if err == nil || errors.Is(err, ErrSkip) {
			return false
		}
		return errors.Is(err, ErrFrontend) == wasFrontend
	}
	red, ok := Reduce(src, pred)
	if !ok {
		return ""
	}
	return red
}

// WriteCrasher persists a failure as a standalone reproducer under dir
// (conventionally testdata/crashers/). The file name is derived from a
// hash of the reproducer so re-finding the same bug is idempotent. It
// returns the written path.
func WriteCrasher(dir string, f Failure) (string, error) {
	body := f.Reduced
	if body == "" {
		body = f.Src
	}
	sum := sha256.Sum256([]byte(body))
	name := fmt.Sprintf("crasher-%x.c", sum[:6])
	var sb strings.Builder
	fmt.Fprintf(&sb, "// fpifuzz reproducer (seed %d)\n", f.Seed)
	analysisState := "off"
	if f.Analysis {
		analysisState = "on"
	}
	fmt.Fprintf(&sb, "// analysis: %s\n", analysisState)
	if f.Fast {
		fmt.Fprintf(&sb, "// fast: on\n")
	}
	if f.Optimal {
		fmt.Fprintf(&sb, "// scheme: optimal\n")
	}
	for _, line := range strings.Split(strings.TrimRight(f.Err.Error(), "\n"), "\n") {
		fmt.Fprintf(&sb, "// %s\n", line)
	}
	sb.WriteString(body)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// InjectFlip is a PartitionHook that plants the acceptance-criterion bug:
// it flips main's first flexible, INT-assigned plain node that reads an
// uncopied INT-side value into FPa. The selector only materializes an
// INT→FPa copy when the partition mandates one, so the flipped node reads
// a never-written FP register — exactly the class of miscompile the
// differential oracle exists to catch.
// InjectFastSkew is a FastHook that plants the fast-mode acceptance bug:
// it corrupts the sampled run's architectural exit value before the
// oracle compares it against the reference — the minimal stand-in for a
// fast path that stops being functionally bit-identical. The oracle must
// flag it as a stage-"fast" mismatch and persist it through the same
// crasher workflow as any miscompile.
func InjectFastSkew(cfgName string, res *sim.Result) {
	res.Ret ^= 1
}

func InjectFlip(fn string, part *core.Partition) {
	if fn != "main" {
		return
	}
	for _, n := range part.G.Nodes {
		if n.Class != core.ClassFlex || n.Kind != core.KindPlain {
			continue
		}
		if part.Assign[n.ID] != core.SubINT {
			continue
		}
		hasUncopiedIntParent := false
		for _, p := range n.Parents {
			if part.Assign[p] == core.SubINT && !part.CopyNodes[p] && !part.DupNodes[p] {
				hasUncopiedIntParent = true
				break
			}
		}
		if !hasUncopiedIntParent {
			continue
		}
		part.Assign[n.ID] = core.SubFPa
		return
	}
}
